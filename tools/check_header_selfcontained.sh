#!/usr/bin/env bash
# Verifies that every header in the tree compiles standalone, i.e. that each
# header includes everything it uses instead of relying on what its includers
# happen to pull in first. Run from the repo root (the `header_selfcontained`
# CMake target does this for you):
#
#   tools/check_header_selfcontained.sh
#
# Exit status is 0 iff every header compiles on its own.

set -u

cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
CXXFLAGS="-std=c++20 -Wall -Wextra -fsyntax-only -Isrc -Ibench -Itests"

fail=0
checked=0

for header in $(find src bench tests -name '*.h' | sort); do
    checked=$((checked + 1))
    # Include each header the way the tree does: paths relative to the
    # include roots (-Isrc -Ibench), not to the repo root.
    inc="${header#src/}"
    inc="${inc#bench/}"
    inc="${inc#tests/}"
    tu="$(mktemp --suffix=.cc)"
    printf '#include "%s"\n' "$inc" > "$tu"
    if ! out="$($CXX $CXXFLAGS "$tu" 2>&1)"; then
        fail=$((fail + 1))
        echo "FAIL $header"
        echo "$out" | sed 's/^/    /'
    fi
    rm -f "$tu"
done

if [ "$fail" -eq 0 ]; then
    echo "OK: all $checked headers are self-contained"
else
    echo "$fail of $checked headers are NOT self-contained"
    exit 1
fi
