#!/usr/bin/env python3
"""Fail CI when a benchmark speedup regresses below its floor.

Usage:
    check_bench_floor.py BENCH_artifact.json tools/bench_floors.json
                         [--allow-smoke]

The first argument is an artifact written by a harness-based bench
driver (bench/harness.h): BENCH_kernels.json or BENCH_runtime.json.
The second maps speedup names (the "name" field of the artifact's
"speedups" entries) to minimum acceptable factors, either flat
({name: floor}) or sectioned by the artifact's "schema" field
({schema: {name: floor}}) so one floors file can gate several bench
drivers. Floors are deliberately far below locally observed numbers
so only genuine regressions -- not shared-runner noise -- trip them.

A floor entry is either a bare number or a dict:

    {"floor": 1.5}                       -- same as the bare number
    {"floor": 3.0, "ceil": 4.5}          -- two-sided gate, for
        speedups computed from *deterministic* modeled statistics
        (e.g. the stream-cache trsp ratios in BENCH_runtime.json):
        a value above the ceiling means the accounting broke, not
        that the code got faster
    {"floor": 0.7, "note": "..."}        -- note is documentation
        carried next to the number (JSON has no comments)

Exit status: 0 if every configured floor holds, 1 on any violation or
missing speedup, 2 on usage/artifact errors. Artifacts produced with
--smoke (one timing iteration) are rejected unless --allow-smoke is
given, because their timings are meaningless.
"""

import json
import sys


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--allow-smoke"}
    if len(args) != 2 or unknown:
        sys.stderr.write(__doc__)
        return 2

    bench_path, floors_path = args
    try:
        with open(bench_path) as f:
            bench = json.load(f)
        with open(floors_path) as f:
            floors = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if bench.get("mode") == "smoke" and "--allow-smoke" not in flags:
        print(
            "error: artifact was produced with --smoke; its timings "
            "are meaningless for floor checks (pass --allow-smoke "
            "to override)",
            file=sys.stderr,
        )
        return 2

    if floors and all(
        isinstance(v, dict) and "floor" not in v
        for v in floors.values()
    ):
        # Sectioned floors file: select the artifact's section by its
        # schema so one file can gate several bench drivers. (An
        # entry dict is recognized by its "floor" key, so a flat file
        # of dict entries is not mistaken for sections.)
        schema = bench.get("schema")
        if schema not in floors:
            print(
                f"error: no floors section for schema '{schema}' in "
                f"{floors_path} (sections: {sorted(floors)})",
                file=sys.stderr,
            )
            return 2
        floors = floors[schema]

    measured = {s["name"]: s["speedup"] for s in bench.get("speedups", [])}
    failures = 0
    print(f"{'speedup':<50} {'floor':>8} {'actual':>8}")
    for name, entry in sorted(floors.items()):
        if isinstance(entry, dict):
            floor = entry["floor"]
            ceil = entry.get("ceil")
        else:
            floor, ceil = entry, None
        actual = measured.get(name)
        if actual is None:
            print(f"{name:<50} {floor:>8.2f}  MISSING")
            failures += 1
            continue
        if actual < floor:
            status = "REGRESSED"
        elif ceil is not None and actual > ceil:
            status = f"ABOVE CEIL {ceil:.2f} (accounting bug?)"
        else:
            status = "ok"
        print(f"{name:<50} {floor:>8.2f} {actual:>8.2f}  {status}")
        if status != "ok":
            failures += 1

    if failures:
        print(f"\n{failures} floor violation(s)", file=sys.stderr)
        return 1
    print("\nall floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
