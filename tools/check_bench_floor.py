#!/usr/bin/env python3
"""Fail CI when a benchmark speedup or latency regresses past its gate.

Usage:
    check_bench_floor.py BENCH_a.json [BENCH_b.json ...]
                         tools/bench_floors.json [--allow-smoke]

The last positional argument is the floors file; every one before it
is an artifact written by a harness-based bench driver
(bench/harness.h): BENCH_kernels.json, BENCH_runtime.json,
BENCH_serving.json, BENCH_tenant.json. All artifacts are checked in
one run and every violation across all of them is reported before
the non-zero exit, so one CI step gates the whole bench fleet. The
floors file maps gate names to thresholds, either flat
({name: floor}) or sectioned by each artifact's "schema" field
({schema: {name: floor}}). Thresholds are deliberately far from
locally observed numbers so only genuine regressions -- not
shared-runner noise -- trip them.

A gate entry is either a bare number or a dict:

    {"floor": 1.5}                       -- same as the bare number;
        gates the artifact's "speedups" entry of that name: actual
        speedup must be >= floor
    {"floor": 3.0, "ceil": 4.5}          -- two-sided gate, for
        speedups computed from *deterministic* modeled statistics
        (e.g. the stream-cache trsp ratios in BENCH_runtime.json or
        the tenant fairness share in BENCH_tenant.json): a value
        outside the band means the accounting broke, not that the
        code got faster
    {"max_ns": 5e7}                      -- gates the artifact's
        "results" entry of that name instead: its ns_per_op must be
        <= max_ns. Used for latency SLOs (serving p99 under load)
        and per-request throughput floors
    {"floor": 0.7, "note": "..."}        -- note is documentation
        carried next to the number (JSON has no comments)

Exit status: 0 if every configured gate holds, 1 on any violation or
missing entry, 2 on usage/artifact errors. Artifacts produced with
--smoke (one timing iteration) are rejected unless --allow-smoke is
given, because their timings are meaningless.
"""

import json
import sys


def check_artifact(bench_path, bench, floors, floors_path):
    """Check one artifact against its floors; return failure count."""
    if floors and all(
        isinstance(v, dict) and "floor" not in v and "max_ns" not in v
        for v in floors.values()
    ):
        # Sectioned floors file: select the artifact's section by its
        # schema so one file can gate several bench drivers. (An
        # entry dict is recognized by its "floor"/"max_ns" key, so a
        # flat file of dict entries is not mistaken for sections.)
        schema = bench.get("schema")
        if schema not in floors:
            print(
                f"error: no floors section for schema '{schema}' in "
                f"{floors_path} (sections: {sorted(floors)})",
                file=sys.stderr,
            )
            return 1
        floors = floors[schema]

    measured = {s["name"]: s["speedup"] for s in bench.get("speedups", [])}
    results = {r["name"]: r["ns_per_op"] for r in bench.get("results", [])}
    failures = 0
    print(f"== {bench_path}")
    print(f"{'gate':<50} {'bound':>12} {'actual':>12}")
    for name, entry in sorted(floors.items()):
        if isinstance(entry, dict) and "max_ns" in entry:
            # Latency gate against the "results" table.
            max_ns = entry["max_ns"]
            actual = results.get(name)
            if actual is None:
                print(f"{name:<50} {max_ns:>12.0f}  MISSING")
                failures += 1
                continue
            status = "ok" if actual <= max_ns else "REGRESSED"
            print(
                f"{name:<50} {max_ns:>12.0f} {actual:>12.0f}  "
                f"{status}"
            )
            if status != "ok":
                failures += 1
            continue
        if isinstance(entry, dict):
            floor = entry["floor"]
            ceil = entry.get("ceil")
        else:
            floor, ceil = entry, None
        actual = measured.get(name)
        if actual is None:
            print(f"{name:<50} {floor:>12.2f}  MISSING")
            failures += 1
            continue
        if actual < floor:
            status = "REGRESSED"
        elif ceil is not None and actual > ceil:
            status = f"ABOVE CEIL {ceil:.2f} (accounting bug?)"
        else:
            status = "ok"
        print(f"{name:<50} {floor:>12.2f} {actual:>12.2f}  {status}")
        if status != "ok":
            failures += 1
    return failures


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--allow-smoke"}
    if len(args) < 2 or unknown:
        sys.stderr.write(__doc__)
        return 2

    bench_paths, floors_path = args[:-1], args[-1]
    try:
        with open(floors_path) as f:
            floors = json.load(f)
        benches = []
        for p in bench_paths:
            with open(p) as f:
                benches.append(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    for path, bench in zip(bench_paths, benches):
        if bench.get("mode") == "smoke" and "--allow-smoke" not in flags:
            print(
                f"error: {path} was produced with --smoke; its "
                "timings are meaningless for floor checks (pass "
                "--allow-smoke to override)",
                file=sys.stderr,
            )
            return 2

    failures = 0
    for i, (path, bench) in enumerate(zip(bench_paths, benches)):
        if i:
            print()
        failures += check_artifact(path, bench, floors, floors_path)

    if failures:
        print(f"\n{failures} floor violation(s)", file=sys.stderr)
        return 1
    print("\nall floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
