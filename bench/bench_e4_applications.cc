/**
 * @file
 * E4 — the seven application kernels on every platform (paper
 * Fig. 11/12 analogue: speedups over the CPU for SIMDRAM:1/4/16 and
 * the comparison against Ambit; headline: up to 2.5x over Ambit).
 */

#include <cstdio>

#include "apps/bitweaving.h"
#include "apps/brightness.h"
#include "apps/knn.h"
#include "apps/nn.h"
#include "apps/tpch.h"
#include "bench_common.h"

using namespace simdram;

int
main()
{
    auto engines = standardEngines();
    bench::ShapeChecks checks;

    struct AppRow
    {
        std::string name;
        std::vector<double> latency_ms;
        std::vector<double> energy_mj;
    };
    std::vector<AppRow> rows;

    auto price = [&](const std::string &name, auto costFn) {
        AppRow row;
        row.name = name;
        for (auto &e : engines) {
            const KernelCost c = costFn(*e);
            row.latency_ms.push_back(c.latencyNs() * 1e-6);
            row.energy_mj.push_back(c.energyPj() * 1e-9);
        }
        rows.push_back(std::move(row));
    };

    const size_t n = size_t{1} << 22;
    price("vgg13",
          [&](BulkEngine &e) { return nnCost(e, vgg13()); });
    price("vgg16",
          [&](BulkEngine &e) { return nnCost(e, vgg16()); });
    price("lenet",
          [&](BulkEngine &e) { return nnCost(e, lenet()); });
    price("knn", [&](BulkEngine &e) {
        return knnCost(e, {n, 64, 16});
    });
    price("tpch", [&](BulkEngine &e) { return tpchCost(e, n); });
    price("bitweaving", [&](BulkEngine &e) {
        return bitweavingCost(e, {n, 12});
    });
    price("brightness", [&](BulkEngine &e) {
        return brightnessCost(e, {n, 16});
    });

    std::printf("E4: application kernels — latency (ms)\n\n");
    std::printf("%-11s |", "kernel");
    for (auto &e : engines)
        std::printf(" %10s", e->name().c_str());
    std::printf("\n");
    bench::rule(13 + 11 * static_cast<int>(engines.size()));
    for (const auto &r : rows) {
        std::printf("%-11s |", r.name.c_str());
        for (double v : r.latency_ms)
            std::printf(" %10.3f", v);
        std::printf("\n");
    }

    std::printf("\nSpeedup over CPU / over Ambit "
                "(SIMDRAM:1, :4, :16):\n");
    std::printf("%-11s | %23s | %23s\n", "kernel", "vs CPU",
                "vs Ambit");
    bench::rule(65);
    bool always_beats_ambit = true;
    double best_ambit_speedup = 0;
    for (const auto &r : rows) {
        std::printf("%-11s |", r.name.c_str());
        for (int cfg = 3; cfg <= 5; ++cfg)
            std::printf(" %6.1fx", r.latency_ms[0] /
                                       r.latency_ms[cfg]);
        std::printf("   |");
        for (int cfg = 3; cfg <= 5; ++cfg) {
            const double s = r.latency_ms[2] / r.latency_ms[cfg];
            std::printf(" %6.1fx", s);
        }
        std::printf("\n");
        const double s1 = r.latency_ms[2] / r.latency_ms[3];
        if (s1 <= 1.0)
            always_beats_ambit = false;
        best_ambit_speedup = std::max(best_ambit_speedup, s1);
    }

    std::printf("\nEnergy (mJ):\n%-11s |", "kernel");
    for (auto &e : engines)
        std::printf(" %10s", e->name().c_str());
    std::printf("\n");
    bench::rule(13 + 11 * static_cast<int>(engines.size()));
    bool energy_beats_cpu = true;
    for (const auto &r : rows) {
        std::printf("%-11s |", r.name.c_str());
        for (double v : r.energy_mj)
            std::printf(" %10.3f", v);
        std::printf("\n");
        if (r.energy_mj[3] >= r.energy_mj[0])
            energy_beats_cpu = false;
    }

    bool simdram16_beats_cpu = true;
    for (const auto &r : rows)
        if (r.latency_ms[5] >= r.latency_ms[0])
            simdram16_beats_cpu = false;

    checks.expect(always_beats_ambit,
                  "SIMDRAM:1 beats Ambit on every kernel");
    checks.expect(best_ambit_speedup >= 1.5 &&
                      best_ambit_speedup <= 6.0,
                  "peak kernel speedup over Ambit in the paper's "
                  "band (paper: up to 2.5x)");
    checks.expect(simdram16_beats_cpu,
                  "SIMDRAM:16 beats the CPU on every kernel");
    checks.expect(energy_beats_cpu,
                  "SIMDRAM uses less energy than the CPU on every "
                  "kernel");
    return checks.finish();
}
