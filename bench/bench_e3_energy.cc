/**
 * @file
 * E3 — energy efficiency of the 16 operations on every platform
 * (paper Fig. 10 analogue; headlines: 257x/31x the energy
 * efficiency of CPU/GPU, up to 2.5x Ambit).
 *
 * 16 Mi elements; efficiency in GOps/J plus the normalized view.
 */

#include <cmath>
#include <cstdio>

#include "apps/engine.h"
#include "bench_common.h"

using namespace simdram;

int
main()
{
    constexpr size_t kElements = size_t{1} << 24;
    auto engines = standardEngines();
    bench::ShapeChecks checks;

    std::printf("E3: energy efficiency, %zu Mi elements (GOps/J)\n\n",
                kElements >> 20);
    std::printf("%-9s %3s |", "op", "w");
    for (auto &e : engines)
        std::printf(" %10s", e->name().c_str());
    std::printf("\n");
    bench::rule(14 + 11 * static_cast<int>(engines.size()));

    std::vector<double> log_norm(engines.size(), 0.0);
    int cases = 0;
    double best_vs_ambit = 0;
    bool simdram_beats_ambit_everywhere = true;

    for (OpKind op : kAllOps) {
        for (size_t w : {8u, 16u, 32u}) {
            std::vector<double> eff;
            for (auto &e : engines)
                eff.push_back(e->opCost(op, w, kElements)
                                  .efficiencyGopsPerJoule());
            std::printf("%-9s %3zu |", toString(op).c_str(), w);
            for (double v : eff)
                std::printf(" %10.1f", v);
            std::printf("\n");

            for (size_t i = 0; i < engines.size(); ++i)
                log_norm[i] += std::log(eff[i] / eff[0]);
            ++cases;

            // SIMDRAM energy is bank-count independent; compare :1.
            if (eff[3] < eff[2])
                simdram_beats_ambit_everywhere = false;
            best_vs_ambit = std::max(best_vs_ambit, eff[3] / eff[2]);
        }
    }

    std::printf("\nGeometric-mean efficiency normalized to CPU:\n");
    std::vector<double> gmean(engines.size());
    for (size_t i = 0; i < engines.size(); ++i) {
        gmean[i] = std::exp(log_norm[i] / cases);
        std::printf("  %-10s %8.1fx\n", engines[i]->name().c_str(),
                    gmean[i]);
    }

    checks.expect(gmean[3] > 50,
                  "SIMDRAM mean efficiency >50x the CPU (paper: "
                  "257x)");
    checks.expect(gmean[3] > gmean[1] * 3,
                  "SIMDRAM mean efficiency >3x the GPU (paper: 31x)");
    checks.expect(gmean[1] > gmean[0],
                  "GPU more efficient than CPU");
    checks.expect(simdram_beats_ambit_everywhere,
                  "SIMDRAM more energy-efficient than Ambit on "
                  "every operation");
    checks.expect(best_vs_ambit >= 1.8 && best_vs_ambit <= 6.0,
                  "peak advantage over Ambit in the paper's band "
                  "(paper: up to 2.5x)");
    const double e1 =
        engines[3]->opCost(OpKind::Add, 32, kElements).energyPj;
    const double e16 =
        engines[5]->opCost(OpKind::Add, 32, kElements).energyPj;
    checks.expect(std::abs(e1 - e16) < 1e-6,
                  "bank parallelism changes latency, not energy");
    return checks.finish();
}
