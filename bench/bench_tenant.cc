/**
 * @file
 * Multi-tenant service benchmarks: the weighted-fair scheduler's
 * actual share split and the cost of the tenant indirection layer.
 * Emits BENCH_tenant.json (schema simdram-bench-tenant-v1).
 *
 * Two gated pairs:
 *  - "tenant/fairness-share (w3 vs w1)": two tenants with weights
 *    3:1 backlog the manual-dispatch scheduler with equal-cost
 *    streams sized so both queues run dry on the same DRR sweep;
 *    the recorded pair is each tenant's dispatched instruction
 *    count over the whole run. DETERMINISTIC — the ratio is the
 *    weight ratio, exactly 3.0; outside the gated band the
 *    scheduler (or its accounting) broke, not the timing.
 *  - "tenant/isolation-overhead (raw vs tenant)": host wall ns per
 *    stream for the same stream sequence submitted straight to the
 *    StreamExecutor vs through a single-tenant TenantExecutor
 *    (translation, quota check, pending queue, scheduler thread,
 *    reaper roll-up). Wall clock, so the CI band is loose; it exists
 *    to catch the indirection becoming pathological.
 *
 * Plus ungated context numbers: per-tenant p50/p99 under a 2-tenant
 * weighted load, and the flood-shed rate with a bounded quota.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "runtime/stream_executor.h"
#include "tenant/tenant_executor.h"

namespace
{

using namespace simdram;

DramConfig
tenantCfg()
{
    return DramConfig::forTesting(256, 512);
}

constexpr size_t kDevices = 2;
constexpr size_t kLanes = 256;

/** Executor options: submit-time lint on for every tenant stream. */
StreamExecutorOptions
lintedExOpts()
{
    StreamExecutorOptions opts;
    opts.lintMode = LintMode::Warn;
    return opts;
}

/** Asserts every stream the executor saw analyzed clean. */
void
checkLintClean(const StreamExecutor &ex, const char *what)
{
    if (ex.lintDiagnosticCount() != 0)
        bench::fail(std::string(what) +
                    " streams did not analyze clean");
}

/** The repeatable unit stream: a trsp round trip on one object. */
std::vector<BbopInstr>
bounce(uint16_t obj)
{
    return {BbopInstr::trsp(obj, 8), BbopInstr::trspInv(obj, 8)};
}

/** Dispatched-instruction split of a weights 3:1 deterministic run. */
void
fairnessPair(simdram::bench::Harness &h, bool smoke)
{
    DeviceGroup g(tenantCfg(), kDevices);
    StreamExecutor ex(g, lintedExOpts());
    TenantExecutorOptions opts;
    opts.manualDispatch = true; // DRR order decided by weights alone
    opts.recordDispatchOrder = true;
    opts.quantumInstructions = 2; // == bounce() cost
    TenantExecutor te(ex, opts);
    TenantConfig c3, c1;
    c3.name = "w3";
    c3.weight = 3;
    c1.name = "w1";
    c1.weight = 1;
    const uint32_t t3 = te.registerTenant(c3);
    const uint32_t t1 = te.registerTenant(c1);
    const uint16_t o3 = te.defineObject(t3, kLanes, 8);
    const uint16_t o1 = te.defineObject(t1, kLanes, 8);

    // Backlogs proportional to the weights, all streams equal cost:
    // both queues empty on the same sweep, so the whole-run split is
    // the steady-state share with no end effects.
    const size_t per = smoke ? 4 : 32;
    for (size_t i = 0; i < 3 * per; ++i)
        te.submit(t3, bounce(o3));
    for (size_t i = 0; i < per; ++i)
        te.submit(t1, bounce(o1));
    te.drain();

    // The share is measured from the DISPATCH ORDER, not from the
    // completion totals (after a full drain every scheduler shows
    // the offered 3:1). The half-run window sits strictly inside the
    // both-backlogged region, where DRR hands w3 exactly three slots
    // per w1 slot.
    const std::vector<uint32_t> order = te.dispatchOrder();
    const size_t window = order.size() / 2;
    size_t instr3 = 0, instr1 = 0;
    for (size_t i = 0; i < window; ++i)
        (order[i] == t3 ? instr3 : instr1) += 2; // bounce() cost
    // The "ns" slot carries dispatched instructions: the speedup
    // pair below is then the instruction-share ratio, a pure count.
    h.record("tenant/fair/w3/window-instructions", 1,
             static_cast<double>(instr3));
    h.record("tenant/fair/w1/window-instructions", 1,
             static_cast<double>(instr1));
    h.speedup("tenant/fairness-share (w3 vs w1)",
              "tenant/fair/w3/window-instructions",
              "tenant/fair/w1/window-instructions");
    // Context: the weighted tenants' latency split under contention.
    h.record("tenant/fair/w3/p99", 1, te.latency(t3).p99());
    h.record("tenant/fair/w1/p99", 1, te.latency(t1).p99());
    std::printf("  [fair] window %zu: w3 %zu instr, w1 %zu instr\n",
                window, instr3, instr1);
    checkLintClean(ex, "fairness");
}

/** @return Host ns per stream, submit+drain closed loop (raw). */
double
rawWall(size_t streams)
{
    using clock = std::chrono::steady_clock;
    DeviceGroup g(tenantCfg(), kDevices);
    StreamExecutor ex(g, lintedExOpts());
    const uint16_t o = ex.defineObject(kLanes, 8);
    ex.submit(bounce(o)).wait(); // warm the worker + layout path
    const auto t0 = clock::now();
    for (size_t i = 0; i < streams; ++i)
        ex.submit(bounce(o));
    ex.sync();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0)
            .count() /
        static_cast<double>(streams);
    checkLintClean(ex, "raw bounce");
    return ns;
}

/** @return Host ns per stream through a single-tenant executor. */
double
tenantWall(size_t streams)
{
    using clock = std::chrono::steady_clock;
    DeviceGroup g(tenantCfg(), kDevices);
    StreamExecutor ex(g, lintedExOpts());
    TenantExecutor te(ex); // auto dispatch: the served configuration
    const uint32_t t = te.registerTenant({/*name=*/"solo"});
    const uint16_t o = te.defineObject(t, kLanes, 8);
    te.submit(t, bounce(o)).wait();
    const auto t0 = clock::now();
    for (size_t i = 0; i < streams; ++i)
        te.submit(t, bounce(o));
    te.drain();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0)
            .count() /
        static_cast<double>(streams);
    checkLintClean(ex, "tenant bounce");
    return ns;
}

/** Flood-shed context: a quota-bounded flooder vs a victim. */
void
floodContext(simdram::bench::Harness &h, bool smoke)
{
    DeviceGroup g(tenantCfg(), kDevices);
    StreamExecutor ex(g, lintedExOpts());
    TenantExecutorOptions opts;
    opts.manualDispatch = true;
    TenantExecutor te(ex, opts);
    TenantConfig flood;
    flood.name = "flood";
    flood.maxPendingStreams = 8;
    flood.onFull = TenantQuotaPolicy::Shed;
    const uint32_t tf = te.registerTenant(flood);
    const uint32_t tv = te.registerTenant({/*name=*/"victim"});
    const uint16_t of = te.defineObject(tf, kLanes, 8);
    const uint16_t ov = te.defineObject(tv, kLanes, 8);

    const size_t offered = smoke ? 16 : 256;
    for (size_t i = 0; i < offered; ++i) {
        try {
            te.submit(tf, bounce(of));
        } catch (const TenantQuotaError &) {
        }
        if (i % 8 == 0)
            te.submit(tv, bounce(ov));
    }
    te.drain();
    const TenantStats sf = te.stats(tf);
    h.record("tenant/flood/shed-rate-pct", 1,
             100.0 * static_cast<double>(sf.shed) /
                 static_cast<double>(offered));
    h.record("tenant/flood/victim-p99", 1, te.latency(tv).p99());
    checkLintClean(ex, "flood");
}

} // namespace

int
main(int argc, char **argv)
{
    using simdram::bench::Options;
    Options defaults;
    defaults.out = "BENCH_tenant.json";
    defaults.schema = "simdram-bench-tenant-v1";
    const Options opts =
        simdram::bench::parseArgs(argc, argv, defaults);
    simdram::bench::Harness h(opts);

    fairnessPair(h, opts.smoke);

    // Isolation overhead: best of several passes on each side (the
    // standard least-disturbed estimator for wall-clock pairs).
    const size_t streams = opts.smoke ? 16 : 400;
    const size_t reps = opts.smoke ? 1 : 5;
    double raw = 0.0, ten = 0.0;
    for (size_t r = 0; r < reps; ++r) {
        const double a = rawWall(streams);
        if (r == 0 || a < raw)
            raw = a;
        const double b = tenantWall(streams);
        if (r == 0 || b < ten)
            ten = b;
    }
    h.record("tenant/overhead/raw/wall", kLanes, raw);
    h.record("tenant/overhead/tenant/wall", kLanes, ten);
    // factor = tenant / raw: >1 means the tenant layer costs time.
    h.speedup("tenant/isolation-overhead (raw vs tenant)",
              "tenant/overhead/tenant/wall",
              "tenant/overhead/raw/wall");

    floodContext(h, opts.smoke);

    return h.finish();
}
