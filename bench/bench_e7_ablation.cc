/**
 * @file
 * E7 — ablation of the framework's design choices (DESIGN.md): how
 * much of SIMDRAM's advantage comes from (a) the MAJ/NOT node set,
 * (b) step-1 MIG optimization, and (c) step-2 greedy allocation.
 *
 * Variants, per operation at width 32 (DRAM command macro-ops):
 *   ambit        — AND/OR/NOT gates, fixed per-gate recipes
 *   naive+naive  — mechanical MIG lowering, naive allocation
 *   naive+greedy — mechanical MIG lowering, greedy allocation
 *   synth+greedy — optimizer-cleaned lowering, greedy allocation
 *   expert+greedy— production SIMDRAM (expert MIG + optimizer)
 */

#include <cstdio>

#include "ambit/ambit_synth.h"
#include "bench_common.h"
#include "ops/library.h"
#include "uprog/allocator.h"

using namespace simdram;

int
main()
{
    OperationLibrary lib;
    bench::ShapeChecks checks;
    constexpr size_t kWidth = 32;

    std::printf("E7: ablation at width %zu (command macro-ops)\n\n",
                kWidth);
    std::printf("%-9s | %8s %12s %13s %13s %14s\n", "op", "ambit",
                "naive+naive", "naive+greedy", "synth+greedy",
                "expert+greedy");
    bench::rule(78);

    bool greedy_never_worse = true;
    bool expert_best = true;
    bool majority_wins = true;

    for (OpKind op :
         {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Gt,
          OpKind::Bitcount, OpKind::IfElse, OpKind::Relu}) {
        const auto ambit = compileAmbit(lib.aoig(op, kWidth));
        CompileOptions naive_opts;
        naive_opts.greedy = false;
        const auto nn =
            compileMig(lib.migNaive(op, kWidth), naive_opts);
        const auto ng = compileMig(lib.migNaive(op, kWidth));
        const auto sg = compileMig(lib.migSynth(op, kWidth));
        const auto eg = compileMig(lib.mig(op, kWidth));

        std::printf("%-9s | %8zu %12zu %13zu %13zu %14zu\n",
                    toString(op).c_str(), ambit.ops.size(),
                    nn.ops.size(), ng.ops.size(), sg.ops.size(),
                    eg.ops.size());

        if (ng.ops.size() > nn.ops.size())
            greedy_never_worse = false;
        if (eg.ops.size() > sg.ops.size())
            expert_best = false;
        if (eg.ops.size() >= ambit.ops.size())
            majority_wins = false;
    }

    checks.expect(greedy_never_worse,
                  "greedy allocation never issues more commands "
                  "than naive allocation");
    checks.expect(expert_best,
                  "expert MIG construction never loses to the "
                  "synthesized lowering");
    checks.expect(majority_wins,
                  "full SIMDRAM pipeline beats Ambit on every "
                  "ablated operation");
    return checks.finish();
}
