/**
 * @file
 * E6 — area overhead (paper section 5: "incurring less than 1% DRAM
 * area overhead").
 */

#include <cstdio>

#include "area/area_model.h"
#include "bench_common.h"

using namespace simdram;

int
main()
{
    const DramConfig cfg = DramConfig::simdramConfig(16);
    const auto items = areaReport(cfg);
    bench::ShapeChecks checks;

    std::printf("E6: area overhead (analytic model, 22nm-class "
                "densities)\n\n");
    std::printf("%-32s %-17s %10s %9s\n", "component", "where",
                "area (mm^2)", "% of die");
    bench::rule(72);
    for (const auto &it : items)
        std::printf("%-32s %-17s %10.4f %8.3f%%\n",
                    it.component.c_str(), it.where.c_str(),
                    it.areaMm2, it.percent);

    double dram_pct = 0, mc_pct = 0;
    for (const auto &it : items) {
        if (it.component == "TOTAL in-DRAM")
            dram_pct = it.percent;
        if (it.component == "TOTAL controller-side")
            mc_pct = it.percent;
    }

    checks.expect(dram_pct < 1.0,
                  "in-DRAM overhead below 1% of the DRAM chip "
                  "(the paper's headline)");
    checks.expect(dram_pct > 0.1,
                  "in-DRAM overhead is not understated (>0.1%)");
    checks.expect(mc_pct < 0.1,
                  "controller-side units are a negligible fraction "
                  "of a CPU die");
    return checks.finish();
}
