/**
 * @file
 * E2 — throughput of the 16 operations on every platform (paper
 * Fig. 9 analogue: SIMDRAM:1/4/16 vs CPU, GPU, and Ambit; the paper
 * headline is up to 5.1x Ambit and large average factors over the
 * CPU).
 *
 * 16 Mi elements per operation; throughput in GOps/s, plus the
 * normalized-to-CPU view the paper plots.
 */

#include <cmath>
#include <cstdio>

#include "apps/engine.h"
#include "bench_common.h"

using namespace simdram;

int
main()
{
    constexpr size_t kElements = size_t{1} << 24;
    auto engines = standardEngines();
    bench::ShapeChecks checks;

    std::printf("E2: throughput, %zu Mi elements (GOps/s)\n\n",
                kElements >> 20);
    std::printf("%-9s %3s |", "op", "w");
    for (auto &e : engines)
        std::printf(" %10s", e->name().c_str());
    std::printf("\n");
    bench::rule(14 + 11 * static_cast<int>(engines.size()));

    // Geometric-mean accumulator of per-engine throughput normalized
    // to the CPU (engine 0).
    std::vector<double> log_norm(engines.size(), 0.0);
    int cases = 0;
    bool simdram16_beats_ambit = true;
    double best_vs_ambit = 0;

    for (OpKind op : kAllOps) {
        for (size_t w : {8u, 16u, 32u}) {
            std::vector<double> gops;
            for (auto &e : engines)
                gops.push_back(
                    e->opCost(op, w, kElements).throughputGops());
            std::printf("%-9s %3zu |", toString(op).c_str(), w);
            for (double g : gops)
                std::printf(" %10.2f", g);
            std::printf("\n");

            for (size_t i = 0; i < engines.size(); ++i)
                log_norm[i] += std::log(gops[i] / gops[0]);
            ++cases;

            const double ambit = gops[2];
            const double s1 = gops[3], s16 = gops[5];
            if (s16 < ambit)
                simdram16_beats_ambit = false;
            best_vs_ambit = std::max(best_vs_ambit, s1 / ambit);
        }
    }

    std::printf("\nGeometric-mean throughput normalized to CPU:\n");
    std::vector<double> gmean(engines.size());
    for (size_t i = 0; i < engines.size(); ++i) {
        gmean[i] = std::exp(log_norm[i] / cases);
        std::printf("  %-10s %8.2fx\n", engines[i]->name().c_str(),
                    gmean[i]);
    }

    // Engine order: CPU, GPU, Ambit, SIMDRAM:1, :4, :16.
    checks.expect(gmean[5] > gmean[0] * 10,
                  "SIMDRAM:16 mean throughput >10x the CPU");
    checks.expect(gmean[5] > gmean[1],
                  "SIMDRAM:16 mean throughput beats the GPU");
    checks.expect(gmean[1] > gmean[0],
                  "GPU sits between CPU and SIMDRAM:16");
    checks.expect(gmean[3] > gmean[2],
                  "SIMDRAM:1 mean throughput beats Ambit");
    checks.expect(simdram16_beats_ambit,
                  "SIMDRAM:16 beats Ambit on every operation");
    checks.expect(best_vs_ambit >= 2.0 && best_vs_ambit <= 6.5,
                  "peak SIMDRAM:1 advantage over Ambit in the "
                  "paper's band (paper: up to 5.1x)");
    checks.expect(gmean[5] / gmean[3] > 8,
                  "16 banks scale throughput close to linearly");
    return checks.finish();
}
