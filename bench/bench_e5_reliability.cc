/**
 * @file
 * E5 — reliability under process variation (paper section 5: "we
 * evaluate the reliability of SIMDRAM under different degrees of
 * manufacturing process variation, and observe that it guarantees
 * correct operation as the DRAM process technology node scales down
 * to smaller sizes").
 *
 * Monte-Carlo per-TRA failure rates across technology nodes and
 * variation corners, plus the implied whole-operation success
 * probability for 32-bit addition.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "exec/processor.h"
#include "ops/library.h"
#include "reliability/montecarlo.h"
#include "uprog/allocator.h"

using namespace simdram;

namespace
{

/**
 * Cross-check: inject the Monte-Carlo per-TRA failure rate into the
 * *functional* simulator and measure how many output lanes of an
 * 8-bit addition actually corrupt.
 */
double
functionalErrorRate(double p_tra_bit, uint64_t seed)
{
    const size_t n = 4096;
    Processor p(DramConfig::forTesting(4096, 256));
    const auto a = p.alloc(n, 8);
    const auto b = p.alloc(n, 8);
    const auto y = p.alloc(n, 8);
    Rng rng(seed);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xff;
        db[i] = rng.next() & 0xff;
    }
    p.store(a, da);
    p.store(b, db);
    p.device().bank(0).subarray(0).enableTraFaults(p_tra_bit, seed);
    p.run(OpKind::Add, y, a, b);
    const auto got = p.load(y);
    size_t wrong = 0;
    for (size_t i = 0; i < n; ++i)
        if (got[i] != ((da[i] + db[i]) & 0xff))
            ++wrong;
    return static_cast<double>(wrong) / static_cast<double>(n);
}

} // namespace

int
main()
{
    constexpr size_t kSamples = 400000;
    const double fracs[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25};
    bench::ShapeChecks checks;

    std::printf("E5: per-TRA failure rate vs process variation "
                "(%zu MC samples/point)\n\n",
                kSamples);
    std::printf("%-6s |", "node");
    for (double f : fracs)
        std::printf("   sigma=%2.0f%%", f * 100);
    std::printf("\n");
    bench::rule(8 + 12 * 6);

    std::vector<std::vector<double>> rate(techNodes().size());
    for (size_t ni = 0; ni < techNodes().size(); ++ni) {
        const auto &node = techNodes()[ni];
        std::printf("%-6s |", node.name.c_str());
        for (double f : fracs) {
            const auto r = traFailureRate(
                node, VariationParams::uniform(f), kSamples,
                1000 + ni);
            rate[ni].push_back(r.traFailureRate);
            std::printf("  %10.2e", r.traFailureRate);
        }
        std::printf("\n");
    }

    // Whole-operation success for 32-bit addition on the smallest
    // node (the paper's "guarantees correct operation" claim).
    OperationLibrary lib;
    const auto prog = compileMig(lib.mig(OpKind::Add, 32));
    const size_t tras = prog.apCount() +
                        [&] {
                            size_t n = 0;
                            for (const auto &op : prog.ops)
                                if (op.src.rowsRaised() == 3)
                                    ++n;
                            return n;
                        }();
    std::printf("\n32-bit addition issues %zu TRAs; operation "
                "success probability on %s:\n",
                tras, techNodes().back().name.c_str());
    for (size_t fi = 0; fi < 6; ++fi)
        std::printf("  sigma=%2.0f%%: %.6f\n", fracs[fi] * 100,
                    opSuccessProbability(rate.back()[fi], tras));

    // ---- Functional cross-check: inject per-TRA failure rates into
    // ---- the bit-level simulator and watch outputs corrupt. -------
    std::printf("\nFault injection into the functional simulator "
                "(8-bit addition, 4096 lanes):\n");
    std::printf("  %-18s %-18s\n", "per-TRA-bit p", "lane error rate");
    std::vector<double> func_rate;
    for (double pb : {0.0, 1e-4, 1e-3, 1e-2}) {
        const double r = functionalErrorRate(pb, 77);
        func_rate.push_back(r);
        std::printf("  %-18.0e %-18.4f\n", pb, r);
    }

    // Shape checks.
    bool zero_at_nominal = true;
    for (const auto &node_rates : rate)
        if (node_rates[0] != 0.0 || node_rates[1] > 1e-4)
            zero_at_nominal = false;
    checks.expect(zero_at_nominal,
                  "correct operation at nominal variation (<=5%) on "
                  "every node");

    bool monotonic = true;
    for (const auto &node_rates : rate)
        for (size_t i = 1; i < node_rates.size(); ++i)
            if (node_rates[i] + 1e-9 < node_rates[i - 1])
                monotonic = false;
    checks.expect(monotonic,
                  "failure rate non-decreasing in variation");

    checks.expect(rate.back().back() >= rate.front().back(),
                  "smaller technology nodes are no more reliable at "
                  "the worst corner");
    checks.expect(rate.back().back() > 0,
                  "extreme corner (25%) shows failures (model is "
                  "not vacuous)");
    checks.expect(opSuccessProbability(rate.back()[1], tras) >
                      0.9999,
                  "32-bit addition is reliable at 5% variation on "
                  "the smallest node");
    checks.expect(func_rate[0] == 0.0,
                  "functional path: no injected faults, no wrong "
                  "lanes");
    checks.expect(func_rate[1] < func_rate[2] &&
                      func_rate[2] < func_rate[3],
                  "functional lane error rate grows with the "
                  "injected per-TRA failure rate");
    checks.expect(func_rate[3] > 0.1,
                  "1% per-TRA-bit faults visibly corrupt an 8-bit "
                  "addition (dozens of TRAs per result)");
    return checks.finish();
}
