/**
 * @file
 * Minimal vendored micro-benchmark harness.
 *
 * A self-contained replacement for google-benchmark so the kernel
 * benchmarks build in every environment (bench_micro remains an
 * optional google-benchmark front-end for the same kernels). The
 * harness auto-calibrates an inner iteration count to a target wall
 * time, repeats each benchmark several times, reports the best rep
 * (the standard microbenchmark estimator: least-disturbed run), and
 * writes machine-readable JSON — BENCH_kernels.json — including
 * named speedup pairs so the perf trajectory of a kernel vs. its
 * retained reference path is tracked across PRs.
 *
 * Usage:
 *   Harness h(parseArgs(argc, argv));
 *   h.run("bitrow/majority3/fused", lanes, [&] { ... one op ... });
 *   h.speedup("majority3 fused vs seed", "bitrow/majority3/seed",
 *             "bitrow/majority3/fused");
 *   return h.finish();
 *
 * Flags: --smoke (1 rep, 1 inner iteration — CI wiring check),
 *        --out=FILE (default BENCH_kernels.json),
 *        --min-time-ms=N (calibration target per rep, default 20),
 *        --reps=N (default 5).
 */

#ifndef SIMDRAM_BENCH_HARNESS_H
#define SIMDRAM_BENCH_HARNESS_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace simdram
{
namespace bench
{

/** Aborts the bench run with a message (sanity check failed). */
[[noreturn]] inline void
fail(const std::string &msg)
{
    std::fprintf(stderr, "BENCH FAILURE: %s\n", msg.c_str());
    std::exit(1);
}

/** Compiler barrier: keeps result objects from being optimized out. */
inline void
doNotOptimize(const void *p)
{
#if defined(_MSC_VER)
    volatile const void *sink = p;
    (void)sink;
#else
    asm volatile("" : : "g"(p) : "memory");
#endif
}

/** Harness configuration (see file comment for the flags). */
struct Options
{
    bool smoke = false;
    std::string out = "BENCH_kernels.json";
    double min_time_ms = 20.0;
    size_t reps = 5;
    /** Schema tag written to the JSON artifact. */
    std::string schema = "simdram-bench-kernels-v1";
};

/**
 * Parses the harness command-line flags (unknown flags are fatal).
 * @p defaults seeds the options, so drivers with their own artifact
 * name/schema (bench_runtime) pass them here and flags still win.
 */
inline Options
parseArgs(int argc, char **argv, Options defaults = Options{})
{
    Options o = std::move(defaults);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--smoke") {
            o.smoke = true;
        } else if (a.rfind("--out=", 0) == 0) {
            o.out = a.substr(6);
        } else if (a.rfind("--min-time-ms=", 0) == 0) {
            o.min_time_ms = std::stod(a.substr(14));
        } else if (a.rfind("--reps=", 0) == 0) {
            o.reps = static_cast<size_t>(std::stoul(a.substr(7)));
        } else {
            std::fprintf(stderr,
                         "unknown flag: %s\n"
                         "usage: %s [--smoke] [--out=FILE] "
                         "[--min-time-ms=N] [--reps=N]\n",
                         a.c_str(), argv[0]);
            std::exit(2);
        }
    }
    return o;
}

/** Times registered benchmarks and renders a table plus JSON. */
class Harness
{
  public:
    explicit Harness(Options opts) : opts_(std::move(opts)) {}

    /**
     * Times @p fn (one operation per call).
     *
     * @param name Result name, slash-namespaced ("bitrow/maj3/fused").
     * @param items Items processed per op (lanes, elements); reported
     *        as items/s so differently-shaped kernels compare.
     * @param fn The operation under test.
     */
    template <class F>
    void
    run(const std::string &name, size_t items, F &&fn)
    {
        using clock = std::chrono::steady_clock;
        // Calibrate the inner count so one rep lasts ~min_time_ms.
        uint64_t inner = 1;
        if (!opts_.smoke) {
            for (;;) {
                const auto t0 = clock::now();
                for (uint64_t i = 0; i < inner; ++i)
                    fn();
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        clock::now() - t0)
                        .count();
                if (ms >= opts_.min_time_ms || inner >= (1ULL << 30))
                    break;
                const double scale =
                    ms > 0.1 ? opts_.min_time_ms / ms * 1.2 : 16.0;
                inner = std::max<uint64_t>(
                    inner + 1,
                    static_cast<uint64_t>(
                        static_cast<double>(inner) * scale));
            }
        }

        const size_t reps = opts_.smoke ? 1 : opts_.reps;
        double best_ns = 0.0;
        for (size_t r = 0; r < reps; ++r) {
            const auto t0 = clock::now();
            for (uint64_t i = 0; i < inner; ++i)
                fn();
            const double ns =
                std::chrono::duration<double, std::nano>(clock::now() -
                                                         t0)
                    .count() /
                static_cast<double>(inner);
            if (r == 0 || ns < best_ns)
                best_ns = ns;
        }

        Result res;
        res.name = name;
        res.ns_per_op = best_ns;
        res.items = items;
        res.inner = inner;
        res.reps = reps;
        results_.push_back(res);
        std::printf("%-40s %14.1f ns/op %12.1f Mitems/s\n",
                    name.c_str(), best_ns,
                    best_ns > 0.0
                        ? static_cast<double>(items) / best_ns * 1e3
                        : 0.0);
        std::fflush(stdout);
    }

    /**
     * Records a result whose per-operation time was measured (or
     * modeled) externally — e.g. the simulated DRAM latency of a
     * stream from DramStats, where wall clock would measure the
     * simulator host instead of the simulated machine. The entry
     * participates in tables, JSON, and speedup pairs exactly like a
     * run() result.
     */
    void
    record(const std::string &name, size_t items, double ns_per_op)
    {
        Result res;
        res.name = name;
        res.ns_per_op = ns_per_op;
        res.items = items;
        res.inner = 1;
        res.reps = 1;
        results_.push_back(res);
        std::printf("%-40s %14.1f ns/op %12.1f Mitems/s\n",
                    name.c_str(), ns_per_op,
                    ns_per_op > 0.0
                        ? static_cast<double>(items) / ns_per_op *
                              1e3
                        : 0.0);
        std::fflush(stdout);
    }

    /**
     * Records a named speedup pair: how much faster @p fast_name ran
     * than @p slow_name. Both must have been run already.
     */
    void
    speedup(const std::string &name, const std::string &slow_name,
            const std::string &fast_name)
    {
        const Result *slow = find(slow_name);
        const Result *fast = find(fast_name);
        if (slow == nullptr || fast == nullptr) {
            std::fprintf(stderr, "speedup %s: unknown result name\n",
                         name.c_str());
            std::exit(2);
        }
        Speedup s;
        s.name = name;
        s.baseline = slow_name;
        s.fast = fast_name;
        s.factor =
            fast->ns_per_op > 0.0 ? slow->ns_per_op / fast->ns_per_op
                                  : 0.0;
        speedups_.push_back(s);
    }

    /** Prints the speedup table, writes JSON; @return exit code. */
    int
    finish() const
    {
        if (!speedups_.empty()) {
            std::printf("\nSpeedups (baseline / fast):\n");
            for (const Speedup &s : speedups_)
                std::printf("  %-44s %6.2fx\n", s.name.c_str(),
                            s.factor);
        }
        std::ofstream os(opts_.out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts_.out.c_str());
            return 1;
        }
        os << "{\n  \"schema\": \"" << opts_.schema << "\",\n";
        os << "  \"mode\": \"" << (opts_.smoke ? "smoke" : "full")
           << "\",\n";
        // SIMDRAM_USE_AVX2 is a PUBLIC define of the simdram target:
        // it reports whether the *library kernels* were built with
        // the AVX2 intrinsic path (this TU itself is not compiled
        // with -mavx2).
#if defined(SIMDRAM_USE_AVX2)
        os << "  \"avx2\": true,\n";
#else
        os << "  \"avx2\": false,\n";
#endif
        os << "  \"results\": [\n";
        for (size_t i = 0; i < results_.size(); ++i) {
            const Result &r = results_[i];
            os << "    {\"name\": \"" << r.name
               << "\", \"ns_per_op\": " << r.ns_per_op
               << ", \"items_per_op\": " << r.items
               << ", \"inner_iterations\": " << r.inner
               << ", \"reps\": " << r.reps << "}"
               << (i + 1 < results_.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"speedups\": [\n";
        for (size_t i = 0; i < speedups_.size(); ++i) {
            const Speedup &s = speedups_[i];
            os << "    {\"name\": \"" << s.name << "\", \"baseline\": \""
               << s.baseline << "\", \"fast\": \"" << s.fast
               << "\", \"speedup\": " << s.factor << "}"
               << (i + 1 < speedups_.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("\nwrote %s (%zu results, %zu speedups)\n",
                    opts_.out.c_str(), results_.size(),
                    speedups_.size());
        return 0;
    }

  private:
    struct Result
    {
        std::string name;
        double ns_per_op = 0.0;
        size_t items = 0;
        uint64_t inner = 0;
        size_t reps = 0;
    };

    struct Speedup
    {
        std::string name;
        std::string baseline;
        std::string fast;
        double factor = 0.0;
    };

    const Result *
    find(const std::string &name) const
    {
        for (const Result &r : results_)
            if (r.name == name)
                return &r;
        return nullptr;
    }

    Options opts_;
    std::vector<Result> results_;
    std::vector<Speedup> speedups_;
};

} // namespace bench
} // namespace simdram

#endif // SIMDRAM_BENCH_HARNESS_H
