/**
 * @file
 * Serving-harness benchmarks: end-to-end request latency and
 * throughput of the RequestCoalescer front-end over the
 * StreamExecutor, on the knn-query workload. Emits
 * BENCH_serving.json (schema simdram-bench-serving-v1).
 *
 * Three kinds of numbers:
 *  - "serving/knn/batched/wall" vs "serving/knn/per-request/wall":
 *    host wall time per request, 8-way coalescing vs batch capacity
 *    1. The headline speedup pair — coalescing amortizes stream
 *    dispatch, transposition, and readback over the batch — is
 *    floor-gated in CI.
 *  - "serving/sweep/load-*": an offered-load sweep. Capacity is
 *    estimated from the batched measurement, then requests are
 *    paced at fixed fractions of it through a fresh coalescer and
 *    the latency histogram's p50/p99/p999 plus the achieved
 *    inter-completion time are recorded. The p99 at half load is
 *    floor-gated (max_ns) in CI.
 *  - "serving/sweep/load-2.0/shed-rate-pct": at 2x overload with a
 *    bounded admission budget, the fraction of requests shed —
 *    recorded so the trajectory of the admission path is visible.
 *
 * All numbers are host wall clock (the simulator's own speed), so
 * floors are deliberately loose for shared CI runners.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "serve/request_coalescer.h"
#include "serve/workloads.h"

namespace
{

using namespace simdram;

// Wide rows + deep subarrays so a full 8-slot batch of every class
// object co-locates on each device (see CoalescerOptions::maxBatch).
DramConfig
servingCfg()
{
    DramConfig cfg = DramConfig::forTesting(4096, 1024);
    cfg.computeBanks = 2;
    return cfg;
}

constexpr size_t kDevices = 2;
constexpr size_t kMaxBatch = 8;
constexpr double kLingerUs = 200.0;

// SMALL per-request shape: serving is about many small independent
// queries, where per-stream fixed costs (dispatch, worker wakeup,
// readback round-trip) dominate the lane-proportional compute that
// coalescing cannot reduce. This is exactly where batching pays.
KnnServeSpec
servingSpec()
{
    return KnnServeSpec{/*refs=*/256, /*dims=*/4, /*bits=*/16};
}

std::vector<std::vector<uint64_t>>
makeRefs(const KnnServeSpec &spec)
{
    Rng rng(7);
    std::vector<std::vector<uint64_t>> cols(
        spec.dims, std::vector<uint64_t>(spec.refs));
    for (auto &col : cols)
        for (auto &v : col)
            v = rng.below(1000);
    return cols;
}

/** A pool of distinct pre-built requests, cycled through by index. */
std::vector<std::vector<std::vector<uint64_t>>>
makeRequestPool(const KnnServeSpec &spec, size_t n)
{
    Rng rng(23);
    std::vector<std::vector<std::vector<uint64_t>>> pool;
    pool.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::vector<uint64_t> coords(spec.dims);
        for (auto &c : coords)
            c = rng.below(1000);
        pool.push_back(knnQueryRequest(spec, coords));
    }
    return pool;
}

/** Executor options: submit-time lint on for every served batch. */
StreamExecutorOptions
servingExOpts()
{
    StreamExecutorOptions opts;
    opts.lintMode = LintMode::Warn;
    return opts;
}

/** A device group + executor + coalescer serving the knn class. */
struct ServeRig
{
    DeviceGroup group;
    StreamExecutor ex;
    RequestCoalescer co;
    uint32_t cls;

    ServeRig(const KnnServeSpec &spec,
             const std::vector<std::vector<uint64_t>> &refs,
             CoalescerOptions opts)
        : group(servingCfg(), kDevices),
          ex(group, servingExOpts()),
          co(ex, opts),
          cls(co.registerClass(knnQueryClass(spec, refs)))
    {}

    ~ServeRig()
    {
        // Every coalescer-fused batch program must analyze clean.
        if (ex.lintDiagnosticCount() != 0)
            bench::fail("served batch programs did not analyze "
                        "clean");
    }
};

/**
 * Submits @p reqs pool requests back to back and drains; @return
 * host ns per request. @p warmup extra requests run first (and are
 * excluded) so the class objects exist and the stream cache holds
 * the reference columns.
 */
double
measureClosedLoop(ServeRig &rig,
                  const std::vector<std::vector<
                      std::vector<uint64_t>>> &pool,
                  size_t reqs, size_t warmup)
{
    using clock = std::chrono::steady_clock;
    for (size_t i = 0; i < warmup; ++i)
        rig.co.submit(rig.cls, pool[i % pool.size()]);
    rig.co.drain();

    const auto t0 = clock::now();
    for (size_t i = 0; i < reqs; ++i)
        rig.co.submit(rig.cls, pool[i % pool.size()]);
    rig.co.drain();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0)
            .count();
    return ns / static_cast<double>(reqs);
}

/** One offered-load sweep point, recorded into the harness. */
void
sweepPoint(simdram::bench::Harness &h, const KnnServeSpec &spec,
           const std::vector<std::vector<uint64_t>> &refs,
           const std::vector<std::vector<
               std::vector<uint64_t>>> &pool,
           double capacityNsPerReq, double loadFactor, size_t reqs,
           const std::string &label)
{
    using clock = std::chrono::steady_clock;
    // Bounded budget: at overload the Shed path engages instead of
    // the queue growing without bound.
    ServeRig rig(spec, refs,
                 CoalescerOptions{kMaxBatch, kLingerUs,
                                  /*maxPending=*/4 * kMaxBatch,
                                  AdmissionPolicy::Shed});
    // Warm the class objects so setup cost is not a sweep artifact.
    rig.co.submit(rig.cls, pool[0]);
    rig.co.drain();

    const double interNs = capacityNsPerReq / loadFactor;
    size_t shed = 0;
    const auto start = clock::now();
    for (size_t i = 0; i < reqs; ++i) {
        // Open-loop pacing: spin to this request's arrival time.
        const auto due =
            start + std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double, std::nano>(
                            interNs * static_cast<double>(i)));
        while (clock::now() < due) {
        }
        try {
            rig.co.submit(rig.cls, pool[i % pool.size()]);
        } catch (const RequestShedError &) {
            ++shed;
        }
    }
    rig.co.drain();
    const double wallNs =
        std::chrono::duration<double, std::nano>(clock::now() -
                                                 start)
            .count();
    const uint64_t completed = rig.co.completedRequests();

    const LatencyHistogram &lat = rig.co.latency();
    h.record("serving/sweep/" + label + "/p50", 1, lat.p50());
    h.record("serving/sweep/" + label + "/p99", 1, lat.p99());
    h.record("serving/sweep/" + label + "/p999", 1, lat.p999());
    // Achieved inter-completion time: lower = higher throughput.
    h.record("serving/sweep/" + label + "/completion-interval",
             spec.refs,
             completed > 0 ? wallNs / static_cast<double>(completed)
                           : 0.0);
    h.record("serving/sweep/" + label + "/shed-rate-pct", 1,
             reqs > 0 ? 100.0 * static_cast<double>(shed) /
                            static_cast<double>(reqs)
                      : 0.0);
    std::printf("  [%s] offered 1/%.0fns, completed %llu, shed %zu\n",
                label.c_str(), interNs,
                static_cast<unsigned long long>(completed), shed);
}

} // namespace

int
main(int argc, char **argv)
{
    using simdram::bench::Options;
    Options defaults;
    defaults.out = "BENCH_serving.json";
    defaults.schema = "simdram-bench-serving-v1";
    simdram::bench::Harness h(
        simdram::bench::parseArgs(argc, argv, defaults));
    const Options opts =
        simdram::bench::parseArgs(argc, argv, defaults);

    const KnnServeSpec spec = servingSpec();
    const auto refs = makeRefs(spec);
    const auto pool = makeRequestPool(spec, 16);

    const size_t reqs = opts.smoke ? 8 : 512;
    const size_t warmup = opts.smoke ? 2 : 32;
    const size_t repsOf = opts.smoke ? 1 : 5;

    // Closed-loop per-request cost, batched vs unbatched: best of
    // several passes over one warm rig (the standard least-disturbed
    // estimator; the harness's run() would re-enter the measurement
    // uncalibrated, so the reps are explicit here).
    double batchedNs = 0.0, perReqNs = 0.0;
    {
        ServeRig rig(spec, refs,
                     CoalescerOptions{kMaxBatch, kLingerUs, 0,
                                      AdmissionPolicy::Shed});
        for (size_t r = 0; r < repsOf; ++r) {
            const double ns =
                measureClosedLoop(rig, pool, reqs, warmup);
            if (r == 0 || ns < batchedNs)
                batchedNs = ns;
        }
    }
    {
        ServeRig rig(spec, refs,
                     CoalescerOptions{/*maxBatch=*/1,
                                      /*maxLingerUs=*/0.0, 0,
                                      AdmissionPolicy::Shed});
        for (size_t r = 0; r < repsOf; ++r) {
            const double ns =
                measureClosedLoop(rig, pool, reqs, warmup);
            if (r == 0 || ns < perReqNs)
                perReqNs = ns;
        }
    }
    h.record("serving/knn/batched/wall", spec.refs, batchedNs);
    h.record("serving/knn/per-request/wall", spec.refs, perReqNs);
    h.speedup("serving/batched-vs-per-request (knn)",
              "serving/knn/per-request/wall",
              "serving/knn/batched/wall");

    // Offered-load sweep, paced against the measured capacity.
    const size_t sweepReqs = opts.smoke ? 8 : 256;
    for (const auto &[factor, label] :
         {std::pair<double, const char *>{0.5, "load-0.5"},
          {1.0, "load-1.0"},
          {2.0, "load-2.0"}})
        sweepPoint(h, spec, refs, pool, batchedNs, factor,
                   sweepReqs, label);

    return h.finish();
}
