/**
 * @file
 * Shared helpers for the bench binaries: table printing and shape
 * checking (every bench prints the paper-style table, then a list of
 * PASS/FAIL assertions about the *shape* of the result — see
 * EXPERIMENTS.md for what "reproduced" means on this substrate).
 */

#ifndef SIMDRAM_BENCH_BENCH_COMMON_H
#define SIMDRAM_BENCH_BENCH_COMMON_H

#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace simdram
{
namespace bench
{

/** Collects shape-check results and renders the final verdict. */
class ShapeChecks
{
  public:
    /** Records one named check. */
    void
    expect(bool ok, const std::string &what)
    {
        results_.push_back({ok, what});
        if (!ok)
            ++failures_;
    }

    /** Prints all checks; @return process exit code. */
    int
    finish() const
    {
        std::printf("\nShape checks:\n");
        for (const auto &[ok, what] : results_)
            std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL",
                        what.c_str());
        std::printf("%zu/%zu shape checks passed\n",
                    results_.size() - failures_, results_.size());
        return failures_ == 0 ? 0 : 1;
    }

  private:
    std::vector<std::pair<bool, std::string>> results_;
    size_t failures_ = 0;
};

/** Prints a rule line matching the given width. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace bench
} // namespace simdram

#endif // SIMDRAM_BENCH_BENCH_COMMON_H
