/**
 * @file
 * E8 — transposition (system-integration) overhead: the cost of
 * moving operands between the CPU's horizontal layout and SIMDRAM's
 * vertical layout, relative to the computation performed on them
 * (paper section 4: the transposition unit lets both layouts
 * coexist; only data that participates in in-DRAM computation pays
 * the conversion, and it pays it once per residence, not per
 * operation).
 *
 * For each operation: the one-off transposition cost (store two
 * operands + load one result) against K in-DRAM operations executed
 * while the data is resident, K in {1, 4, 16, 64} — the reuse
 * pattern of every real kernel (NN layers, scans, image pipelines
 * chain many bbops between transpositions).
 */

#include <cstdio>

#include "apps/engine.h"
#include "bench_common.h"

using namespace simdram;

namespace
{

/** Analytic transposition cost mirroring TranspositionUnit. */
double
transferNs(const DramConfig &cfg, size_t elements, size_t bits)
{
    const size_t lanes = cfg.rowBits;
    const size_t segments = (elements + lanes - 1) / lanes;
    const size_t per_bank =
        (segments + cfg.computeBanks - 1) / cfg.computeBanks;
    const size_t bursts = (lanes + 511) / 512;
    const double per_row = cfg.timing.tRcd +
                           static_cast<double>(bursts) *
                               cfg.timing.tBurst +
                           cfg.timing.tRp;
    return static_cast<double>(per_bank) *
           static_cast<double>(bits) * per_row;
}

} // namespace

int
main()
{
    const DramConfig cfg = DramConfig::simdramConfig(16);
    InDramEngine engine(cfg, Backend::Simdram, "SIMDRAM:16");
    bench::ShapeChecks checks;
    constexpr size_t kElements = size_t{1} << 24;

    std::printf("E8: transposition overhead on SIMDRAM:16, "
                "%zu Mi elements\n\n",
                kElements >> 20);
    std::printf("%-9s %4s | %11s %11s | %8s %8s %8s %8s\n", "op",
                "w", "compute(us)", "io(us)", "K=1", "K=4", "K=16",
                "K=64");
    bench::rule(78);

    struct Case
    {
        OpKind op;
        size_t w;
    };
    const Case cases[] = {{OpKind::Add, 8},
                          {OpKind::Add, 32},
                          {OpKind::Gt, 32},
                          {OpKind::Mul, 32}};

    double add8_k16 = 0, mul32_k1 = 0, add8_k1 = 0;
    for (const auto &c : cases) {
        const double compute =
            engine.opCost(c.op, c.w, kElements).latencyNs;
        const auto sig = signatureOf(c.op, c.w);
        const double io = 2.0 * transferNs(cfg, kElements, c.w) +
                          transferNs(cfg, kElements, sig.outWidth);
        std::printf("%-9s %4zu | %11.1f %11.1f |", toString(c.op).c_str(),
                    c.w, compute * 1e-3, io * 1e-3);
        for (int k : {1, 4, 16, 64}) {
            const double overhead = io / (k * compute);
            std::printf(" %7.1f%%", overhead * 100);
            if (c.op == OpKind::Add && c.w == 8 && k == 16)
                add8_k16 = overhead;
            if (c.op == OpKind::Add && c.w == 8 && k == 1)
                add8_k1 = overhead;
            if (c.op == OpKind::Mul && c.w == 32 && k == 1)
                mul32_k1 = overhead;
        }
        std::printf("\n");
    }

    std::printf("\n(io = store two operands + load one result, "
                "paid once per residence;\n K = in-DRAM operations "
                "executed while the data is resident)\n");

    checks.expect(mul32_k1 < 0.10,
                  "transposition is minor even for a single complex "
                  "operation (mul32 < 10%)");
    checks.expect(add8_k16 < 0.15,
                  "a short 16-op pipeline amortizes transposition "
                  "below 15% for the cheapest operation");
    checks.expect(add8_k1 > mul32_k1,
                  "relative overhead shrinks as compute grows");
    return checks.finish();
}
