/**
 * @file
 * E1 — circuit and μProgram sizes (paper Fig. 1 motivation + the
 * per-operation command-count comparison underlying every
 * throughput result).
 *
 * Prints, for each of the 16 operations at widths 8/16/32/64:
 * AND/OR/NOT gate count, MAJ/NOT gate count, and the number of DRAM
 * command macro-ops (AAP+AP) for the Ambit baseline and for SIMDRAM
 * with naive and greedy allocation.
 */

#include <cstdio>

#include "ambit/ambit_synth.h"
#include "bench_common.h"
#include "ops/library.h"
#include "uprog/allocator.h"

using namespace simdram;

int
main()
{
    OperationLibrary lib;
    bench::ShapeChecks checks;

    std::printf("E1: circuit and microprogram sizes "
                "(gates / DRAM command macro-ops)\n\n");

    // --- Fig. 1 motivation: the full adder ----------------------------
    {
        Circuit aoig;
        WordGates ga(aoig, GateStyle::Aoig);
        const Lit a = aoig.addInput("a");
        const Lit b = aoig.addInput("b");
        const Lit cin = aoig.addInput("cin");
        const auto fa_a = ga.fullAdder(a, b, cin);
        aoig.addOutput("s", fa_a.sum[0]);
        aoig.addOutput("c", fa_a.carry);

        Circuit mig;
        WordGates gm(mig, GateStyle::Mig);
        const Lit a2 = mig.addInput("a");
        const Lit b2 = mig.addInput("b");
        const Lit c2 = mig.addInput("cin");
        const auto fa_m = gm.fullAdder(a2, b2, c2);
        mig.addOutput("s", fa_m.sum[0]);
        mig.addOutput("c", fa_m.carry);

        std::printf("Full adder (paper Fig. 1): AND/OR/NOT = %zu "
                    "gates, MAJ/NOT = %zu gates\n\n",
                    aoig.topoOrder().size(), mig.topoOrder().size());
        checks.expect(mig.topoOrder().size() == 3,
                      "MAJ/NOT full adder uses exactly 3 gates");
        checks.expect(mig.topoOrder().size() <
                          aoig.topoOrder().size(),
                      "MAJ/NOT full adder smaller than AND/OR/NOT");
    }

    std::printf("%-9s %4s | %6s %6s | %8s %8s %8s | %6s\n", "op",
                "w", "AOIG", "MIG", "Ambit", "naive", "greedy",
                "ratio");
    bench::rule(76);

    double worst_ratio = 0, best_ratio = 1e9, ratio_sum = 0;
    int ratio_count = 0;
    bool simdram_always_fewer = true;

    for (OpKind op : kAllOps) {
        for (size_t w : {8u, 16u, 32u, 64u}) {
            const auto &aoig = lib.aoig(op, w);
            const auto &mig = lib.mig(op, w);
            const auto ambit = compileAmbit(aoig);
            CompileOptions naive_opts;
            naive_opts.greedy = false;
            const auto naive = compileMig(mig, naive_opts);
            const auto greedy = compileMig(mig);

            const size_t ambit_cmds = ambit.ops.size();
            const size_t greedy_cmds = greedy.ops.size();
            const double ratio =
                static_cast<double>(ambit_cmds) / greedy_cmds;
            std::printf(
                "%-9s %4zu | %6zu %6zu | %8zu %8zu %8zu | %5.2fx\n",
                toString(op).c_str(), w, aoig.topoOrder().size(),
                mig.topoOrder().size(), ambit_cmds,
                naive.ops.size(), greedy_cmds, ratio);

            if (greedy_cmds >= ambit_cmds)
                simdram_always_fewer = false;
            worst_ratio = std::max(worst_ratio, ratio);
            best_ratio = std::min(best_ratio, ratio);
            ratio_sum += ratio;
            ++ratio_count;
        }
    }

    std::printf("\nAmbit/SIMDRAM command ratio: min %.2fx, "
                "mean %.2fx, max %.2fx\n",
                best_ratio, ratio_sum / ratio_count, worst_ratio);

    checks.expect(simdram_always_fewer,
                  "SIMDRAM needs fewer DRAM commands than Ambit for "
                  "every operation and width");
    checks.expect(worst_ratio >= 2.0 && worst_ratio <= 6.5,
                  "maximum command-count advantage in the paper's "
                  "band (paper: up to 5.1x throughput)");
    checks.expect(ratio_sum / ratio_count >= 1.5,
                  "mean command-count advantage >= 1.5x");
    return checks.finish();
}
