/**
 * @file
 * Google-benchmark microbenchmarks: throughput of the simulator's
 * hot kernels (bitwise majority, transposition, subarray commands,
 * μProgram compilation) and a measured host add that sanity-checks
 * the CPU roofline model's order of magnitude on this machine.
 */

#include <benchmark/benchmark.h>

#include "baseline/cpu_model.h"
#include "baseline/host_kernels.h"
#include "common/rng.h"
#include "dram/subarray.h"
#include "layout/transpose.h"
#include "ops/library.h"
#include "uprog/allocator.h"

namespace
{

using namespace simdram;

void
BM_BitRowMajority(benchmark::State &state)
{
    const size_t bits = static_cast<size_t>(state.range(0));
    BitRow a(bits), b(bits), c(bits);
    Rng rng(1);
    for (size_t w = 0; w < a.wordCount(); ++w) {
        a.setWord(w, rng.next());
        b.setWord(w, rng.next());
        c.setWord(w, rng.next());
    }
    for (auto _ : state) {
        auto m = BitRow::majority3(a, b, c);
        benchmark::DoNotOptimize(m);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * bits / 8);
}
BENCHMARK(BM_BitRowMajority)->Arg(65536)->Arg(1 << 20);

void
BM_Transpose64(benchmark::State &state)
{
    uint64_t m[64];
    Rng rng(2);
    for (auto &w : m)
        w = rng.next();
    for (auto _ : state) {
        transpose64(m);
        benchmark::DoNotOptimize(m[0]);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_Transpose64);

void
BM_SubarrayAap(benchmark::State &state)
{
    DramConfig cfg = DramConfig::forTesting(65536, 64);
    Subarray sub(cfg);
    for (auto _ : state) {
        sub.aap(RowAddr::data(0), RowAddr::data(1));
        benchmark::DoNotOptimize(sub.stats().aaps);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SubarrayAap);

void
BM_CompileAdd(benchmark::State &state)
{
    OperationLibrary lib;
    const Circuit &mig = lib.mig(OpKind::Add,
                                 static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto prog = compileMig(mig);
        benchmark::DoNotOptimize(prog.ops.size());
    }
}
BENCHMARK(BM_CompileAdd)->Arg(8)->Arg(32);

void
BM_HostAdd32Measured(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::vector<uint32_t> a(n), b(n), out(n);
    Rng rng(3);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<uint32_t>(rng.next());
        b[i] = static_cast<uint32_t>(rng.next());
    }
    for (auto _ : state) {
        hostAdd32(a.data(), b.data(), out.data(), n);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    // 12 bytes move per element: compare GB/s against
    // cpuParams().memBwGBs to sanity-check the roofline's order of
    // magnitude on this machine.
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) * n * 12);
}
BENCHMARK(BM_HostAdd32Measured)->Arg(1 << 20)->Arg(1 << 24);

} // namespace

BENCHMARK_MAIN();
