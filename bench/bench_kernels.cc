/**
 * @file
 * Hot-kernel benchmarks on the vendored harness (no google-benchmark
 * dependency): BitRow bulk logic, layout transposition, and μProgram
 * replay, each measured against its retained reference path so
 * BENCH_kernels.json records the speedup of every optimization.
 *
 * Kernel shapes follow the modeled hardware: BitRow ops run on
 * 65,536-lane rows (one full 8 KiB DRAM row), transposition on a
 * 4,096-element cache-line stream, and replay end-to-end through
 * Processor::run on a two-bank device.
 */

#include <cstdint>
#include <vector>

#include "harness.h"
#include "common/bitrow.h"
#include "common/kernels_ref.h"
#include "common/rng.h"
#include "exec/processor.h"
#include "layout/transpose.h"

namespace
{

using namespace simdram;
using bench::doNotOptimize;

BitRow
randomRow(size_t bits, Rng &rng)
{
    BitRow r(bits);
    for (size_t w = 0; w + 1 < r.wordCount(); ++w)
        r.setWord(w, rng.next());
    if (r.wordCount() > 0)
        r.setWord(r.wordCount() - 1, rng.next() & r.lastWordMask());
    return r;
}

void
benchBitRow(bench::Harness &h)
{
    const size_t kLanes = 65536; // one full 8 KiB DRAM row
    Rng rng(0xb17);
    const BitRow a = randomRow(kLanes, rng);
    const BitRow b = randomRow(kLanes, rng);
    const BitRow c = randomRow(kLanes, rng);
    BitRow out(kLanes);

    h.run("bitrow/majority3/ref_bitwise", kLanes, [&] {
        const BitRow r = refkernel::majority3(a, b, c);
        doNotOptimize(&r);
    });
    h.run("bitrow/majority3/seed_alloc", kLanes, [&] {
        const BitRow r = BitRow::majority3(a, b, c);
        doNotOptimize(&r);
    });
    h.run("bitrow/majority3/fused", kLanes, [&] {
        BitRow::majority3Into(out, a, b, c);
        doNotOptimize(&out);
    });

    h.run("bitrow/select/ref_bitwise", kLanes, [&] {
        const BitRow r = refkernel::select(a, b, c);
        doNotOptimize(&r);
    });
    h.run("bitrow/select/fused", kLanes, [&] {
        BitRow::selectInto(out, a, b, c);
        doNotOptimize(&out);
    });

    h.run("bitrow/andnot/fused", kLanes, [&] {
        BitRow::andNotInto(out, a, b);
        doNotOptimize(&out);
    });
    h.run("bitrow/not/fused", kLanes, [&] {
        out.assignNot(a);
        doNotOptimize(&out);
    });

    h.run("bitrow/popcount/ref_bitwise", kLanes, [&] {
        const size_t n = refkernel::popcount(a);
        doNotOptimize(&n);
    });
    h.run("bitrow/popcount/word", kLanes, [&] {
        const size_t n = a.popcount();
        doNotOptimize(&n);
    });

    h.speedup("bitrow majority3 fused vs seed",
              "bitrow/majority3/seed_alloc", "bitrow/majority3/fused");
    h.speedup("bitrow majority3 fused vs bitwise ref",
              "bitrow/majority3/ref_bitwise", "bitrow/majority3/fused");
    h.speedup("bitrow select fused vs bitwise ref",
              "bitrow/select/ref_bitwise", "bitrow/select/fused");
    h.speedup("bitrow popcount word vs bitwise ref",
              "bitrow/popcount/ref_bitwise", "bitrow/popcount/word");
}

void
benchTranspose(bench::Harness &h)
{
    const size_t kN = 4096;
    const size_t kBits = 32;
    Rng rng(0x7a5);
    std::vector<uint64_t> elems(kN);
    for (auto &e : elems)
        e = rng.next() & 0xffffffffULL;

    h.run("transpose/e2r/ref_bitwise", kN, [&] {
        const auto rows =
            refkernel::elementsToRows(elems.data(), kN, kBits, kN);
        doNotOptimize(&rows);
    });
    h.run("transpose/e2r/tiled", kN, [&] {
        const auto rows = elementsToRows(elems.data(), kN, kBits, kN);
        doNotOptimize(&rows);
    });

    const auto rows = elementsToRows(elems.data(), kN, kBits, kN);
    std::vector<const BitRow *> ptrs(rows.size());
    for (size_t j = 0; j < rows.size(); ++j)
        ptrs[j] = &rows[j];
    std::vector<uint64_t> back(kN);
    h.run("transpose/r2e/ref_bitwise", kN, [&] {
        const auto e = refkernel::rowsToElements(rows, kN);
        doNotOptimize(&e);
    });
    h.run("transpose/r2e/tiled", kN, [&] {
        rowsToElementsInto(ptrs.data(), rows.size(), back.data(), kN);
        doNotOptimize(&back);
    });

    h.speedup("transpose e2r tiled vs bitwise ref",
              "transpose/e2r/ref_bitwise", "transpose/e2r/tiled");
    h.speedup("transpose r2e tiled vs bitwise ref",
              "transpose/r2e/ref_bitwise", "transpose/r2e/tiled");
}

/** A processor with a stored 32-bit add ready to replay. */
struct ReplayFixture
{
    Processor proc;
    Processor::VecHandle a, b, y, w, s;

    ReplayFixture(DramConfig cfg, ReplayMode mode, size_t n)
        : proc(cfg)
    {
        proc.setReplayMode(mode);
        Rng rng(0x9e9);
        std::vector<uint64_t> da(n), db(n);
        for (size_t i = 0; i < n; ++i) {
            da[i] = rng.next() & 0xffffffffULL;
            db[i] = rng.next() & 0xffffffffULL;
        }
        a = proc.alloc(n, 32);
        b = proc.alloc(n, 32);
        y = proc.alloc(n, 32);
        w = proc.alloc(n, 32);
        s = proc.alloc(n, 32);
        proc.store(a, da);
        proc.store(b, db);
    }
};

void
benchReplay(bench::Harness &h)
{
    // Wide rows: two compute banks x 4,096-lane subarrays; 16,384
    // elements = 2 segments per bank. Row copies dominate here.
    DramConfig cfg = DramConfig::forTesting(4096, 768);
    cfg.computeBanks = 2;
    const size_t kN = 4 * 4096;

    ReplayFixture ref(cfg, ReplayMode::Reference, kN);
    ReplayFixture fast(cfg, ReplayMode::Batched, kN);

    h.run("replay/add32/reference", kN,
          [&] { ref.proc.run(OpKind::Add, ref.y, ref.a, ref.b); });
    h.run("replay/add32/batched", kN,
          [&] { fast.proc.run(OpKind::Add, fast.y, fast.a, fast.b); });

    // Narrow rows (1,024 lanes, 8 segments): per-command binding and
    // accounting overhead dominates, which is what the plan removes.
    DramConfig small = DramConfig::forTesting(1024, 768);
    small.computeBanks = 2;
    const size_t kM = 8 * 1024;

    ReplayFixture sref(small, ReplayMode::Reference, kM);
    ReplayFixture sfast(small, ReplayMode::Batched, kM);

    h.run("replay/add32-narrow/reference", kM,
          [&] { sref.proc.run(OpKind::Add, sref.y, sref.a, sref.b); });
    h.run("replay/add32-narrow/batched", kM, [&] {
        sfast.proc.run(OpKind::Add, sfast.y, sfast.a, sfast.b);
    });

    // Zero-copy staging path: the RowClone-dominated work around a
    // kernel — broadcast a constant (C0/C1 interning), shift (pure
    // row copies), then the add. The batched path aliases CoW
    // payloads for every plain AAP; the reference path pays the
    // seed's eager row copies.
    h.run("replay/add32-cow/reference", kN, [&] {
        ref.proc.fillConstant(ref.w, 0x55aa55aaULL);
        ref.proc.shiftLeft(ref.s, ref.a, 1);
        ref.proc.run(OpKind::Add, ref.y, ref.s, ref.w);
    });
    h.run("replay/add32-cow/batched", kN, [&] {
        fast.proc.fillConstant(fast.w, 0x55aa55aaULL);
        fast.proc.shiftLeft(fast.s, fast.a, 1);
        fast.proc.run(OpKind::Add, fast.y, fast.s, fast.w);
    });

    h.run("processor/e2e/add32", kN, [&] {
        fast.proc.run(OpKind::Add, fast.y, fast.a, fast.b);
        const auto out = fast.proc.load(fast.y);
        doNotOptimize(&out);
    });

    h.speedup("uprog replay batched vs reference",
              "replay/add32/reference", "replay/add32/batched");
    h.speedup("uprog replay batched vs reference (narrow)",
              "replay/add32-narrow/reference",
              "replay/add32-narrow/batched");
    h.speedup("replay/add32-cow", "replay/add32-cow/reference",
              "replay/add32-cow/batched");
}

} // namespace

int
main(int argc, char **argv)
{
    simdram::bench::Options opts = simdram::bench::parseArgs(argc, argv);
    simdram::bench::Harness h(opts);
    benchBitRow(h);
    benchTranspose(h);
    benchReplay(h);
    return h.finish();
}
