/**
 * @file
 * Multi-device runtime benchmarks: throughput scaling of bbop
 * streams over a DeviceGroup at 1/2/4/8 devices, through the
 * asynchronous StreamExecutor. Emits BENCH_runtime.json.
 *
 * Two kinds of numbers per configuration:
 *  - "modeled": the simulated machine's throughput, from the
 *    per-stream DramStats latency (devices execute concurrently, so
 *    the stream latency is the slowest device's shard). This is the
 *    paper-style metric and is deterministic.
 *  - "wall": host wall clock of submit+wait, i.e. the simulator's
 *    own speed. It only scales with devices when the host has cores
 *    to back the worker threads, so the headline speedup pairs are
 *    the modeled ones.
 *
 * The wide-row workload matches bench_kernels' replay shape scaled
 * up: 4,096-lane subarrays, two compute banks per device, 64 Ki
 * 32-bit elements (16 segments), streams of 4 chained adds.
 */

#include <cstdint>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"

namespace
{

using namespace simdram;

DramConfig
deviceCfg()
{
    // Wide rows so row-copy work dominates; 1,024 rows per subarray
    // so three 32-bit vectors co-locate even with all 16 segments on
    // one device.
    DramConfig cfg = DramConfig::forTesting(4096, 1024);
    cfg.computeBanks = 2;
    return cfg;
}

constexpr size_t kElements = 16 * 4096; // 16 segments
constexpr size_t kOpsPerStream = 4;

/** A group + executor with a, b, y transposed and ready. */
struct RuntimeFixture
{
    DeviceGroup group;
    StreamExecutor ex;
    uint16_t a, b, y;

    explicit RuntimeFixture(size_t devices,
                            StreamExecutorOptions opts = {})
        : group(deviceCfg(), devices),
          ex(group, opts),
          a(ex.defineObject(kElements, 32)),
          b(ex.defineObject(kElements, 32)),
          y(ex.defineObject(kElements, 32))
    {
        Rng rng(0x5ca1e + devices);
        std::vector<uint64_t> da(kElements), db(kElements);
        for (size_t i = 0; i < kElements; ++i) {
            da[i] = rng.next() & 0xffffffffULL;
            db[i] = rng.next() & 0xffffffffULL;
        }
        ex.writeObject(a, da);
        ex.writeObject(b, db);
        ex.submit({BbopInstr::trsp(a, 32), BbopInstr::trsp(b, 32),
                   BbopInstr::trsp(y, 32)})
            .wait();
    }

    std::vector<BbopInstr>
    addStream() const
    {
        std::vector<BbopInstr> s;
        for (size_t i = 0; i < kOpsPerStream; ++i)
            s.push_back(
                BbopInstr::binary(OpKind::Add, 32, y, a, b));
        return s;
    }
};

void
benchWideRow(bench::Harness &h, size_t devices)
{
    RuntimeFixture f(devices);
    const std::vector<BbopInstr> stream = f.addStream();
    const size_t items = kElements * kOpsPerStream;
    const std::string tag = "d" + std::to_string(devices);

    // Modeled: simulated latency of one stream (deterministic).
    const StreamResult r = f.ex.submit(stream).wait();
    h.record("runtime/add32-wide/modeled/" + tag, items,
             r.compute.latencyNs);

    // Wall clock: how fast the simulator executes the stream.
    h.run("runtime/add32-wide/wall/" + tag, items,
          [&] { f.ex.submit(stream).wait(); });
}

void
benchBoundedPipeline(bench::Harness &h, size_t devices)
{
    // Backpressure path: a deep pipeline of streams against bounded
    // per-device queues (depth 4, Block). Submission runs ahead of
    // the devices until it hits the bound, so this times the steady
    // saturated state of the service rather than one stream at a
    // time.
    RuntimeFixture f(devices,
                     {/*maxQueuedStreams=*/4,
                      BackpressurePolicy::Block});
    const std::vector<BbopInstr> stream = f.addStream();
    constexpr size_t kPipeline = 8;
    const size_t items = kElements * kOpsPerStream * kPipeline;
    h.run("runtime/add32-wide/wall-bounded-q4/d" +
              std::to_string(devices),
          items, [&] {
              std::vector<StreamHandle> hs;
              hs.reserve(kPipeline);
              for (size_t i = 0; i < kPipeline; ++i)
                  hs.push_back(f.ex.submit(stream));
              for (auto &x : hs)
                  x.wait();
          });
    std::printf("   bounded queue high watermark: %zu\n",
                f.ex.queueHighWatermark());
}

void
benchBrightnessStream(bench::Harness &h, size_t devices)
{
    // The brightness kernel's 3-op stream (add, compare, select) on
    // 16-bit pixels: a mixed-width stream with a predicated op.
    DeviceGroup group(deviceCfg(), devices);
    StreamExecutor ex(group);
    const uint16_t img = ex.defineObject(kElements, 16);
    const uint16_t delta = ex.defineObject(kElements, 16);
    const uint16_t cap = ex.defineObject(kElements, 16);
    const uint16_t sum = ex.defineObject(kElements, 16);
    const uint16_t ovf = ex.defineObject(kElements, 1);
    const uint16_t out = ex.defineObject(kElements, 16);

    Rng rng(0xb1d);
    std::vector<uint64_t> pix(kElements);
    for (auto &p : pix)
        p = rng.below(256);
    ex.writeObject(img, pix);
    ex.submit({BbopInstr::trsp(img, 16), BbopInstr::trsp(delta, 16),
               BbopInstr::init(delta, 16, 70),
               BbopInstr::trsp(cap, 16),
               BbopInstr::init(cap, 16, 255),
               BbopInstr::trsp(sum, 16), BbopInstr::trsp(ovf, 1),
               BbopInstr::trsp(out, 16)})
        .wait();

    const std::vector<BbopInstr> kernel = {
        BbopInstr::binary(OpKind::Add, 16, sum, img, delta),
        BbopInstr::binary(OpKind::Gt, 16, ovf, sum, cap),
        BbopInstr::predicated(OpKind::IfElse, 16, out, cap, sum,
                              ovf),
    };
    const StreamResult r = ex.submit(kernel).wait();
    h.record("runtime/brightness/modeled/d" +
                 std::to_string(devices),
             kElements * kernel.size(), r.compute.latencyNs);
}

} // namespace

int
main(int argc, char **argv)
{
    simdram::bench::Options defaults;
    defaults.out = "BENCH_runtime.json";
    defaults.schema = "simdram-bench-runtime-v1";
    simdram::bench::Options opts =
        simdram::bench::parseArgs(argc, argv, defaults);
    simdram::bench::Harness h(opts);

    for (size_t devices : {1, 2, 4, 8}) {
        std::printf("-- %zu device%s --\n", devices,
                    devices == 1 ? "" : "s");
        benchWideRow(h, devices);
        benchBrightnessStream(h, devices);
        if (devices == 1 || devices == 4)
            benchBoundedPipeline(h, devices);
    }

    h.speedup("runtime wide-row throughput 2 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d2");
    h.speedup("runtime wide-row throughput 4 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d4");
    h.speedup("runtime wide-row throughput 8 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d8");
    h.speedup("runtime brightness throughput 4 devices vs 1",
              "runtime/brightness/modeled/d1",
              "runtime/brightness/modeled/d4");
    h.speedup("runtime wide-row wall clock 4 devices vs 1",
              "runtime/add32-wide/wall/d1",
              "runtime/add32-wide/wall/d4");
    return h.finish();
}
