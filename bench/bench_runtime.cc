/**
 * @file
 * Multi-device runtime benchmarks: throughput scaling of bbop
 * streams over a DeviceGroup at 1/2/4/8 devices, through the
 * asynchronous StreamExecutor. Emits BENCH_runtime.json.
 *
 * Two kinds of numbers per configuration:
 *  - "modeled": the simulated machine's throughput, from the
 *    per-stream DramStats latency (devices execute concurrently, so
 *    the stream latency is the slowest device's shard). This is the
 *    paper-style metric and is deterministic.
 *  - "wall": host wall clock of submit+wait, i.e. the simulator's
 *    own speed. It only scales with devices when the host has cores
 *    to back the worker threads, so the headline speedup pairs are
 *    the modeled ones.
 *
 * The wide-row workload matches bench_kernels' replay shape scaled
 * up: 4,096-lane subarrays, two compute banks per device, 64 Ki
 * 32-bit elements (16 segments), streams of 4 chained adds.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace
{

using namespace simdram;

DramConfig
deviceCfg()
{
    // Wide rows so row-copy work dominates; 1,024 rows per subarray
    // so three 32-bit vectors co-locate even with all 16 segments on
    // one device.
    DramConfig cfg = DramConfig::forTesting(4096, 1024);
    cfg.computeBanks = 2;
    return cfg;
}

constexpr size_t kElements = 16 * 4096; // 16 segments
constexpr size_t kOpsPerStream = 4;

/**
 * This fixture measures raw stream dispatch + execution of
 * kOpsPerStream chained adds, so the scalar passes stay off (they
 * would only add submit-side host work here — the ping-pong chain
 * below has nothing for them to remove). The submit-time lint runs
 * in Warn mode; the fixture asserts at teardown that every stream
 * analyzed clean.
 */
StreamExecutorOptions
rawStreamOpts(StreamExecutorOptions opts)
{
    opts.enableDeadWriteElim = false;
    opts.enableTrspHoist = false;
    opts.lintMode = LintMode::Warn;
    return opts;
}

/** A group + executor with a, b, y transposed and ready. */
struct RuntimeFixture
{
    DeviceGroup group;
    StreamExecutor ex;
    uint16_t a, b, y;

    explicit RuntimeFixture(size_t devices,
                            StreamExecutorOptions opts = {})
        : group(deviceCfg(), devices),
          ex(group, rawStreamOpts(opts)),
          a(ex.defineObject(kElements, 32)),
          b(ex.defineObject(kElements, 32)),
          y(ex.defineObject(kElements, 32))
    {
        Rng rng(0x5ca1e + devices);
        std::vector<uint64_t> da(kElements), db(kElements);
        for (size_t i = 0; i < kElements; ++i) {
            da[i] = rng.next() & 0xffffffffULL;
            db[i] = rng.next() & 0xffffffffULL;
        }
        ex.writeObject(a, da);
        ex.writeObject(b, db);
        StreamBuilder sb(ex);
        sb.trsp(a).trsp(b).trsp(y).submit().wait();
    }

    ~RuntimeFixture()
    {
        if (ex.lintDiagnosticCount() != 0)
            bench::fail("runtime fixture streams did not analyze "
                        "clean");
    }

    StreamHandle
    submitAdds()
    {
        // Chained adds ping-pong between y and a so every
        // intermediate result is read by the next op — a live chain
        // (the ISA forbids in-place ops, and identical repeated adds
        // would be dead writes). Only three vectors total: the device
        // config co-locates exactly three 32-bit vectors per
        // subarray, so a fourth scratch object would land elsewhere
        // and trip the Processor's co-location check.
        // y = a+b, a = y+b, y = a+b, ...
        StreamBuilder sb(ex);
        uint16_t dst = y, src = a;
        for (size_t i = 0; i < kOpsPerStream; ++i) {
            sb.binary(OpKind::Add, dst, src, b);
            std::swap(dst, src);
        }
        return sb.submit();
    }
};

void
benchWideRow(bench::Harness &h, size_t devices)
{
    RuntimeFixture f(devices);
    const size_t items = kElements * kOpsPerStream;
    const std::string tag = "d" + std::to_string(devices);

    // Modeled: simulated latency of one stream (deterministic).
    const StreamResult r = f.submitAdds().wait();
    h.record("runtime/add32-wide/modeled/" + tag, items,
             r.compute.latencyNs);

    // Wall clock: how fast the simulator executes the stream.
    h.run("runtime/add32-wide/wall/" + tag, items,
          [&] { f.submitAdds().wait(); });
}

void
benchBoundedPipeline(bench::Harness &h, size_t devices)
{
    // Backpressure path: a deep pipeline of streams against bounded
    // per-device queues (depth 4, Block). Submission runs ahead of
    // the devices until it hits the bound, so this times the steady
    // saturated state of the service rather than one stream at a
    // time.
    RuntimeFixture f(devices,
                     {/*maxQueuedStreams=*/4,
                      BackpressurePolicy::Block});
    constexpr size_t kPipeline = 8;
    const size_t items = kElements * kOpsPerStream * kPipeline;
    h.run("runtime/add32-wide/wall-bounded-q4/d" +
              std::to_string(devices),
          items, [&] {
              std::vector<StreamHandle> hs;
              hs.reserve(kPipeline);
              for (size_t i = 0; i < kPipeline; ++i)
                  hs.push_back(f.submitAdds());
              for (auto &x : hs)
                  x.wait();
          });
    std::printf("   bounded queue high watermark: %zu\n",
                f.ex.queueHighWatermark());
}

void
benchBrightnessStream(bench::Harness &h, size_t devices)
{
    // The brightness kernel's 3-op stream (add, compare, select) on
    // 16-bit pixels: a mixed-width stream with a predicated op.
    DeviceGroup group(deviceCfg(), devices);
    StreamExecutorOptions exOpts;
    exOpts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, exOpts);
    const uint16_t img = ex.defineObject(kElements, 16);
    const uint16_t delta = ex.defineObject(kElements, 16);
    const uint16_t cap = ex.defineObject(kElements, 16);
    const uint16_t sum = ex.defineObject(kElements, 16);
    const uint16_t ovf = ex.defineObject(kElements, 1);
    const uint16_t out = ex.defineObject(kElements, 16);

    Rng rng(0xb1d);
    std::vector<uint64_t> pix(kElements);
    for (auto &p : pix)
        p = rng.below(256);
    ex.writeObject(img, pix);
    StreamBuilder b(ex);
    b.trsp(img)
        .trsp(delta)
        .init(delta, 70)
        .trsp(cap)
        .init(cap, 255)
        .trsp(sum)
        .trsp(ovf)
        .trsp(out)
        .submit()
        .wait();

    constexpr size_t kKernelOps = 3;
    const StreamResult r = b.binary(OpKind::Add, sum, img, delta)
                               .binary(OpKind::Gt, ovf, sum, cap)
                               .predicated(OpKind::IfElse, out, cap,
                                           sum, ovf)
                               .submit()
                               .wait();
    h.record("runtime/brightness/modeled/d" +
                 std::to_string(devices),
             kElements * kKernelOps, r.compute.latencyNs);
    if (ex.lintDiagnosticCount() != 0)
        bench::fail("brightness streams did not analyze clean");
}

void
benchStreamCache(bench::Harness &h, size_t devices)
{
    // knn-shaped pipeline: kQ queries against one resident reference
    // set of kDims columns, each per-(query, dimension) stream
    // self-contained (it re-transposes its reference column). The
    // stream cache elides every re-transpose after the first query;
    // the recorded metric is the *modeled* transposition-unit
    // latency summed over the distance streams, which is
    // deterministic — the cached/uncached ratio is exactly kQ.
    constexpr size_t kE = 8 * 4096; // 8 segments
    constexpr size_t kDims = 8, kQ = 4;
    constexpr uint8_t w = 16;
    const std::string tag = "d" + std::to_string(devices);

    for (int cached = 0; cached <= 1; ++cached) {
        DeviceGroup group(deviceCfg(), devices);
        StreamExecutorOptions opts;
        opts.enableStreamCache = cached != 0;
        opts.lintMode = LintMode::Warn;
        StreamExecutor ex(group, opts);

        Rng rng(0xca4e);
        std::vector<uint16_t> oref(kDims);
        for (auto &o : oref)
            o = ex.defineObject(kE, w);
        const uint16_t oq = ex.defineObject(kE, w);
        const uint16_t od = ex.defineObject(kE, w);
        const uint16_t oabs = ex.defineObject(kE, w);
        const uint16_t oa = ex.defineObject(kE, w);
        const uint16_t ob = ex.defineObject(kE, w);
        std::vector<uint64_t> col(kE);
        for (size_t d = 0; d < kDims; ++d) {
            for (auto &v : col)
                v = rng.below(1000);
            ex.writeObject(oref[d], col);
        }
        StreamBuilder b(ex);
        b.trsp(oq).trsp(od).trsp(oabs).trsp(oa).trsp(ob).submit()
            .wait();

        std::vector<StreamHandle> handles;
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t q = 0; q < kQ; ++q) {
            handles.push_back(b.init(oa, 0).submit());
            PingPong acc{oa, ob};
            for (size_t d = 0; d < kDims; ++d) {
                b.trsp(oref[d])
                    .init(oq, 13 + 17 * q + d)
                    .binary(OpKind::Sub, od, oref[d], oq)
                    .unary(OpKind::Abs, oabs, od)
                    .accumulate(acc, oabs);
                handles.push_back(b.submit());
            }
        }
        double trsp_ns = 0.0;
        size_t hits = 0;
        for (auto &x : handles) {
            const StreamResult r = x.wait();
            trsp_ns += r.transfer.latencyNs;
            hits += r.cachedInstructions;
        }
        const double wall_ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const char *mode = cached != 0 ? "cached" : "uncached";
        h.record("stream/knn-trsp/" + std::string(mode) + "/" + tag,
                 kE * kDims * kQ, trsp_ns);
        h.record("stream/knn-wall/" + std::string(mode) + "/" + tag,
                 kE * kDims * kQ, wall_ns);
        std::printf("   %s: %zu stream-cache hits\n", mode, hits);
        if (ex.lintDiagnosticCount() != 0)
            bench::fail("knn-trsp streams did not analyze clean");
    }
}

void
benchFusedKnn(bench::Harness &h, size_t devices)
{
    // The benchStreamCache pipeline again, but measuring the WHOLE
    // pipeline (setup transposes included) two ways:
    //  - "cached": one submission per stream, runtime trsp/init cache
    //    on. Transposition work = 5 setup trsps + the first query's
    //    8 reference trsps (later queries hit the cache) = 13.
    //  - "fused": the identical program as ONE multi-segment
    //    StreamBuilder submission through the optimizer passes. The
    //    5 setup trsps are dead writes (each image is fully
    //    overwritten before it is read), and trsp-hoisting drops the
    //    24 re-transposes of queries 1..3, leaving 8.
    // Both metrics are the deterministic modeled transposition-unit
    // latency, so the speedup is exactly 13/8 = 1.625. (Dead-write
    // elimination also prunes queries whose accumulator nothing
    // reads before the next query resets it — dead code in the
    // program as written; that affects only compute statistics, not
    // this transfer metric.)
    constexpr size_t kE = 8 * 4096; // 8 segments
    constexpr size_t kDims = 8, kQ = 4;
    constexpr uint8_t w = 16;
    const std::string tag = "d" + std::to_string(devices);

    for (int fused = 0; fused <= 1; ++fused) {
        DeviceGroup group(deviceCfg(), devices);
        StreamExecutorOptions exOpts; // cache and all passes on
        exOpts.lintMode = LintMode::Warn;
        StreamExecutor ex(group, exOpts);

        Rng rng(0xfa5e);
        std::vector<uint16_t> oref(kDims);
        for (auto &o : oref)
            o = ex.defineObject(kE, w);
        const uint16_t oq = ex.defineObject(kE, w);
        const uint16_t od = ex.defineObject(kE, w);
        const uint16_t oabs = ex.defineObject(kE, w);
        const uint16_t oa = ex.defineObject(kE, w);
        const uint16_t ob = ex.defineObject(kE, w);
        std::vector<uint64_t> col(kE);
        for (size_t d = 0; d < kDims; ++d) {
            for (auto &v : col)
                v = rng.below(1000);
            ex.writeObject(oref[d], col);
        }

        StreamBuilder b(ex);
        std::vector<StreamHandle> handles;
        const auto boundary = [&] {
            if (fused != 0)
                b.nextStream();
            else
                handles.push_back(b.submit());
        };
        b.trsp(oq).trsp(od).trsp(oabs).trsp(oa).trsp(ob);
        boundary();
        for (size_t q = 0; q < kQ; ++q) {
            b.init(oa, 0);
            boundary();
            PingPong acc{oa, ob};
            for (size_t d = 0; d < kDims; ++d) {
                b.trsp(oref[d])
                    .init(oq, 13 + 17 * q + d)
                    .binary(OpKind::Sub, od, oref[d], oq)
                    .unary(OpKind::Abs, oabs, od)
                    .accumulate(acc, oabs);
                boundary();
            }
        }
        if (fused != 0)
            for (auto &x : b.submitAll())
                handles.push_back(std::move(x));

        double trsp_ns = 0.0;
        size_t optimized = 0;
        for (auto &x : handles) {
            const StreamResult r = x.wait();
            trsp_ns += r.transfer.latencyNs;
            optimized += r.optimizedInstructions;
        }
        const char *mode = fused != 0 ? "fused" : "cached";
        h.record("stream/knn-pipeline/" + std::string(mode) + "/" +
                     tag,
                 kE * kDims * kQ, trsp_ns);
        std::printf("   %s: %zu instructions optimized away\n", mode,
                    optimized);
        if (ex.lintDiagnosticCount() != 0)
            bench::fail("knn-pipeline streams did not analyze "
                        "clean");
    }
}

void
benchIntegrity(bench::Harness &h, size_t devices)
{
    // Recovery-overhead sweep: the same wide-row add stream under
    // each integrity mode. Off must be indistinguishable from the
    // baseline wall numbers (the detection machinery is fully
    // bypassed); Checksum pays host-side shadow simulation and
    // verification readback (wall only — modeled device work is
    // untouched); DualModular re-executes every bbop op, so its
    // modeled compute latency is exactly 2x Off's.
    const std::string tag = "d" + std::to_string(devices);
    const struct
    {
        IntegrityMode mode;
        const char *name;
    } sweep[] = {
        {IntegrityMode::Off, "off"},
        {IntegrityMode::Checksum, "checksum"},
        {IntegrityMode::DualModular, "dual"},
    };
    for (const auto &s : sweep) {
        StreamExecutorOptions opts;
        opts.integrityMode = s.mode;
        RuntimeFixture f(devices, opts);
        const size_t items = kElements * kOpsPerStream;
        const StreamResult r = f.submitAdds().wait();
        h.record("runtime/integrity/" + std::string(s.name) +
                     "/modeled/" + tag,
                 items, r.compute.latencyNs);
        h.run("runtime/integrity/" + std::string(s.name) + "/wall/" +
                  tag,
              items, [&] { f.submitAdds().wait(); });
    }
}

} // namespace

int
main(int argc, char **argv)
{
    simdram::bench::Options defaults;
    defaults.out = "BENCH_runtime.json";
    defaults.schema = "simdram-bench-runtime-v1";
    simdram::bench::Options opts =
        simdram::bench::parseArgs(argc, argv, defaults);
    simdram::bench::Harness h(opts);

    for (size_t devices : {1, 2, 4, 8}) {
        std::printf("-- %zu device%s --\n", devices,
                    devices == 1 ? "" : "s");
        benchWideRow(h, devices);
        benchBrightnessStream(h, devices);
        if (devices == 1 || devices == 4) {
            benchBoundedPipeline(h, devices);
            benchStreamCache(h, devices);
            benchFusedKnn(h, devices);
        }
        if (devices == 4)
            benchIntegrity(h, devices);
    }

    h.speedup("runtime wide-row throughput 2 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d2");
    h.speedup("runtime wide-row throughput 4 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d4");
    h.speedup("runtime wide-row throughput 8 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d8");
    h.speedup("runtime brightness throughput 4 devices vs 1",
              "runtime/brightness/modeled/d1",
              "runtime/brightness/modeled/d4");
    h.speedup("runtime wide-row wall clock 4 devices vs 1",
              "runtime/add32-wide/wall/d1",
              "runtime/add32-wide/wall/d4");
    // Deterministic: modeled transposition work of the knn-shaped
    // pipeline, uncached vs cached (= the query count, exactly).
    h.speedup("stream/knn-cached", "stream/knn-trsp/uncached/d4",
              "stream/knn-trsp/cached/d4");
    // Deterministic: whole-pipeline transposition work, per-stream
    // submissions + runtime cache vs one fused submission through
    // the optimizer passes (= 13/8, exactly).
    h.speedup("stream/knn-fused", "stream/knn-pipeline/cached/d4",
              "stream/knn-pipeline/fused/d4");
    h.speedup("stream/knn-cached wall 4 devices",
              "stream/knn-wall/uncached/d4",
              "stream/knn-wall/cached/d4");
    // Two-sided gate: IntegrityMode::Off must not perturb the hot
    // path (same config as the baseline wall runs above, measured
    // through the integrity sweep's fixture).
    h.speedup("runtime integrity off wall overhead",
              "runtime/add32-wide/wall/d4",
              "runtime/integrity/off/wall/d4");
    // Deterministic: DualModular re-executes every bbop op, so its
    // modeled compute latency is exactly 2x Off's (recorded as the
    // "slow" side so the factor reads as the cost multiplier).
    h.speedup("runtime integrity dual modeled cost",
              "runtime/integrity/dual/modeled/d4",
              "runtime/integrity/off/modeled/d4");
    // Informational (wall): the host-side price of detection.
    h.speedup("runtime integrity checksum wall cost",
              "runtime/integrity/checksum/wall/d4",
              "runtime/integrity/off/wall/d4");
    return h.finish();
}
