/**
 * @file
 * Multi-device runtime benchmarks: throughput scaling of bbop
 * streams over a DeviceGroup at 1/2/4/8 devices, through the
 * asynchronous StreamExecutor. Emits BENCH_runtime.json.
 *
 * Two kinds of numbers per configuration:
 *  - "modeled": the simulated machine's throughput, from the
 *    per-stream DramStats latency (devices execute concurrently, so
 *    the stream latency is the slowest device's shard). This is the
 *    paper-style metric and is deterministic.
 *  - "wall": host wall clock of submit+wait, i.e. the simulator's
 *    own speed. It only scales with devices when the host has cores
 *    to back the worker threads, so the headline speedup pairs are
 *    the modeled ones.
 *
 * The wide-row workload matches bench_kernels' replay shape scaled
 * up: 4,096-lane subarrays, two compute banks per device, 64 Ki
 * 32-bit elements (16 segments), streams of 4 chained adds.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"

namespace
{

using namespace simdram;

DramConfig
deviceCfg()
{
    // Wide rows so row-copy work dominates; 1,024 rows per subarray
    // so three 32-bit vectors co-locate even with all 16 segments on
    // one device.
    DramConfig cfg = DramConfig::forTesting(4096, 1024);
    cfg.computeBanks = 2;
    return cfg;
}

constexpr size_t kElements = 16 * 4096; // 16 segments
constexpr size_t kOpsPerStream = 4;

/** A group + executor with a, b, y transposed and ready. */
struct RuntimeFixture
{
    DeviceGroup group;
    StreamExecutor ex;
    uint16_t a, b, y;

    explicit RuntimeFixture(size_t devices,
                            StreamExecutorOptions opts = {})
        : group(deviceCfg(), devices),
          ex(group, opts),
          a(ex.defineObject(kElements, 32)),
          b(ex.defineObject(kElements, 32)),
          y(ex.defineObject(kElements, 32))
    {
        Rng rng(0x5ca1e + devices);
        std::vector<uint64_t> da(kElements), db(kElements);
        for (size_t i = 0; i < kElements; ++i) {
            da[i] = rng.next() & 0xffffffffULL;
            db[i] = rng.next() & 0xffffffffULL;
        }
        ex.writeObject(a, da);
        ex.writeObject(b, db);
        ex.submit({BbopInstr::trsp(a, 32), BbopInstr::trsp(b, 32),
                   BbopInstr::trsp(y, 32)})
            .wait();
    }

    std::vector<BbopInstr>
    addStream() const
    {
        std::vector<BbopInstr> s;
        for (size_t i = 0; i < kOpsPerStream; ++i)
            s.push_back(
                BbopInstr::binary(OpKind::Add, 32, y, a, b));
        return s;
    }
};

void
benchWideRow(bench::Harness &h, size_t devices)
{
    RuntimeFixture f(devices);
    const std::vector<BbopInstr> stream = f.addStream();
    const size_t items = kElements * kOpsPerStream;
    const std::string tag = "d" + std::to_string(devices);

    // Modeled: simulated latency of one stream (deterministic).
    const StreamResult r = f.ex.submit(stream).wait();
    h.record("runtime/add32-wide/modeled/" + tag, items,
             r.compute.latencyNs);

    // Wall clock: how fast the simulator executes the stream.
    h.run("runtime/add32-wide/wall/" + tag, items,
          [&] { f.ex.submit(stream).wait(); });
}

void
benchBoundedPipeline(bench::Harness &h, size_t devices)
{
    // Backpressure path: a deep pipeline of streams against bounded
    // per-device queues (depth 4, Block). Submission runs ahead of
    // the devices until it hits the bound, so this times the steady
    // saturated state of the service rather than one stream at a
    // time.
    RuntimeFixture f(devices,
                     {/*maxQueuedStreams=*/4,
                      BackpressurePolicy::Block});
    const std::vector<BbopInstr> stream = f.addStream();
    constexpr size_t kPipeline = 8;
    const size_t items = kElements * kOpsPerStream * kPipeline;
    h.run("runtime/add32-wide/wall-bounded-q4/d" +
              std::to_string(devices),
          items, [&] {
              std::vector<StreamHandle> hs;
              hs.reserve(kPipeline);
              for (size_t i = 0; i < kPipeline; ++i)
                  hs.push_back(f.ex.submit(stream));
              for (auto &x : hs)
                  x.wait();
          });
    std::printf("   bounded queue high watermark: %zu\n",
                f.ex.queueHighWatermark());
}

void
benchBrightnessStream(bench::Harness &h, size_t devices)
{
    // The brightness kernel's 3-op stream (add, compare, select) on
    // 16-bit pixels: a mixed-width stream with a predicated op.
    DeviceGroup group(deviceCfg(), devices);
    StreamExecutor ex(group);
    const uint16_t img = ex.defineObject(kElements, 16);
    const uint16_t delta = ex.defineObject(kElements, 16);
    const uint16_t cap = ex.defineObject(kElements, 16);
    const uint16_t sum = ex.defineObject(kElements, 16);
    const uint16_t ovf = ex.defineObject(kElements, 1);
    const uint16_t out = ex.defineObject(kElements, 16);

    Rng rng(0xb1d);
    std::vector<uint64_t> pix(kElements);
    for (auto &p : pix)
        p = rng.below(256);
    ex.writeObject(img, pix);
    ex.submit({BbopInstr::trsp(img, 16), BbopInstr::trsp(delta, 16),
               BbopInstr::init(delta, 16, 70),
               BbopInstr::trsp(cap, 16),
               BbopInstr::init(cap, 16, 255),
               BbopInstr::trsp(sum, 16), BbopInstr::trsp(ovf, 1),
               BbopInstr::trsp(out, 16)})
        .wait();

    const std::vector<BbopInstr> kernel = {
        BbopInstr::binary(OpKind::Add, 16, sum, img, delta),
        BbopInstr::binary(OpKind::Gt, 16, ovf, sum, cap),
        BbopInstr::predicated(OpKind::IfElse, 16, out, cap, sum,
                              ovf),
    };
    const StreamResult r = ex.submit(kernel).wait();
    h.record("runtime/brightness/modeled/d" +
                 std::to_string(devices),
             kElements * kernel.size(), r.compute.latencyNs);
}

void
benchStreamCache(bench::Harness &h, size_t devices)
{
    // knn-shaped pipeline: kQ queries against one resident reference
    // set of kDims columns, each per-(query, dimension) stream
    // self-contained (it re-transposes its reference column). The
    // stream cache elides every re-transpose after the first query;
    // the recorded metric is the *modeled* transposition-unit
    // latency summed over the distance streams, which is
    // deterministic — the cached/uncached ratio is exactly kQ.
    constexpr size_t kE = 8 * 4096; // 8 segments
    constexpr size_t kDims = 8, kQ = 4;
    constexpr uint8_t w = 16;
    const std::string tag = "d" + std::to_string(devices);

    for (int cached = 0; cached <= 1; ++cached) {
        DeviceGroup group(deviceCfg(), devices);
        StreamExecutorOptions opts;
        opts.enableStreamCache = cached != 0;
        StreamExecutor ex(group, opts);

        Rng rng(0xca4e);
        std::vector<uint16_t> oref(kDims);
        for (auto &o : oref)
            o = ex.defineObject(kE, w);
        const uint16_t oq = ex.defineObject(kE, w);
        const uint16_t od = ex.defineObject(kE, w);
        const uint16_t oabs = ex.defineObject(kE, w);
        const uint16_t oa = ex.defineObject(kE, w);
        const uint16_t ob = ex.defineObject(kE, w);
        std::vector<uint64_t> col(kE);
        for (size_t d = 0; d < kDims; ++d) {
            for (auto &v : col)
                v = rng.below(1000);
            ex.writeObject(oref[d], col);
        }
        ex.submit({BbopInstr::trsp(oq, w), BbopInstr::trsp(od, w),
                   BbopInstr::trsp(oabs, w), BbopInstr::trsp(oa, w),
                   BbopInstr::trsp(ob, w)})
            .wait();

        std::vector<StreamHandle> handles;
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t q = 0; q < kQ; ++q) {
            handles.push_back(ex.submit({BbopInstr::init(oa, w, 0)}));
            bool into_b = true;
            for (size_t d = 0; d < kDims; ++d) {
                const uint16_t acc_src = into_b ? oa : ob;
                const uint16_t acc_dst = into_b ? ob : oa;
                handles.push_back(ex.submit(
                    {BbopInstr::trsp(oref[d], w),
                     BbopInstr::init(oq, w, 13 + 17 * q + d),
                     BbopInstr::binary(OpKind::Sub, w, od, oref[d],
                                       oq),
                     BbopInstr::unary(OpKind::Abs, w, oabs, od),
                     BbopInstr::binary(OpKind::Add, w, acc_dst,
                                       acc_src, oabs)}));
                into_b = !into_b;
            }
        }
        double trsp_ns = 0.0;
        size_t hits = 0;
        for (auto &x : handles) {
            const StreamResult r = x.wait();
            trsp_ns += r.transfer.latencyNs;
            hits += r.cachedInstructions;
        }
        const double wall_ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const char *mode = cached != 0 ? "cached" : "uncached";
        h.record("stream/knn-trsp/" + std::string(mode) + "/" + tag,
                 kE * kDims * kQ, trsp_ns);
        h.record("stream/knn-wall/" + std::string(mode) + "/" + tag,
                 kE * kDims * kQ, wall_ns);
        std::printf("   %s: %zu stream-cache hits\n", mode, hits);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    simdram::bench::Options defaults;
    defaults.out = "BENCH_runtime.json";
    defaults.schema = "simdram-bench-runtime-v1";
    simdram::bench::Options opts =
        simdram::bench::parseArgs(argc, argv, defaults);
    simdram::bench::Harness h(opts);

    for (size_t devices : {1, 2, 4, 8}) {
        std::printf("-- %zu device%s --\n", devices,
                    devices == 1 ? "" : "s");
        benchWideRow(h, devices);
        benchBrightnessStream(h, devices);
        if (devices == 1 || devices == 4) {
            benchBoundedPipeline(h, devices);
            benchStreamCache(h, devices);
        }
    }

    h.speedup("runtime wide-row throughput 2 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d2");
    h.speedup("runtime wide-row throughput 4 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d4");
    h.speedup("runtime wide-row throughput 8 devices vs 1",
              "runtime/add32-wide/modeled/d1",
              "runtime/add32-wide/modeled/d8");
    h.speedup("runtime brightness throughput 4 devices vs 1",
              "runtime/brightness/modeled/d1",
              "runtime/brightness/modeled/d4");
    h.speedup("runtime wide-row wall clock 4 devices vs 1",
              "runtime/add32-wide/wall/d1",
              "runtime/add32-wide/wall/d4");
    // Deterministic: modeled transposition work of the knn-shaped
    // pipeline, uncached vs cached (= the query count, exactly).
    h.speedup("stream/knn-cached", "stream/knn-trsp/uncached/d4",
              "stream/knn-trsp/cached/d4");
    h.speedup("stream/knn-cached wall 4 devices",
              "stream/knn-wall/uncached/d4",
              "stream/knn-wall/cached/d4");
    return h.finish();
}
