/**
 * @file
 * Shared BitRow helpers for the test suites: random rows that respect
 * the padding invariant, and a checker for that invariant.
 */

#ifndef SIMDRAM_TESTS_BITROW_TESTUTIL_H
#define SIMDRAM_TESTS_BITROW_TESTUTIL_H

#include <cstddef>

#include "common/bitrow.h"
#include "common/rng.h"

namespace simdram
{
namespace testutil
{

/** @return A @p bits-wide row of random words with clean padding. */
inline BitRow
randomRow(size_t bits, Rng &rng)
{
    BitRow r(bits);
    for (size_t w = 0; w + 1 < r.wordCount(); ++w)
        r.setWord(w, rng.next());
    if (r.wordCount() > 0)
        r.setWord(r.wordCount() - 1, rng.next() & r.lastWordMask());
    return r;
}

/** @return True if the padding bits above width() are all zero. */
inline bool
paddingClear(const BitRow &r)
{
    if (r.wordCount() == 0)
        return true;
    return (r.word(r.wordCount() - 1) & ~r.lastWordMask()) == 0;
}

} // namespace testutil
} // namespace simdram

#endif // SIMDRAM_TESTS_BITROW_TESTUTIL_H
