/**
 * @file
 * Tests for the application kernels: functional verification on the
 * SIMDRAM substrate (and Ambit, where it matters) plus sanity checks
 * of the analytic cost engines.
 */

#include <gtest/gtest.h>

#include "apps/bitweaving.h"
#include "apps/brightness.h"
#include "apps/knn.h"
#include "apps/nn.h"
#include "apps/tpch.h"

namespace simdram
{
namespace
{

DramConfig
appCfg()
{
    return DramConfig::forTesting(256, 512);
}

TEST(AppsFunctional, ConvTileOnSimdram)
{
    Processor p(appCfg());
    EXPECT_TRUE(nnVerifyConvTile(p));
}

TEST(AppsFunctional, ConvTileOnAmbit)
{
    Processor p(appCfg(), Backend::Ambit);
    EXPECT_TRUE(nnVerifyConvTile(p));
}

TEST(AppsFunctional, KnnOnSimdram)
{
    Processor p(appCfg());
    EXPECT_TRUE(knnVerify(p));
}

TEST(AppsFunctional, TpchOnSimdram)
{
    Processor p(appCfg());
    EXPECT_TRUE(tpchVerify(p));
}

TEST(AppsFunctional, TpchOnAmbit)
{
    Processor p(appCfg(), Backend::Ambit);
    EXPECT_TRUE(tpchVerify(p));
}

TEST(AppsFunctional, BitweavingOnSimdram)
{
    Processor p(appCfg());
    EXPECT_TRUE(bitweavingVerify(p));
}

TEST(AppsFunctional, BrightnessOnSimdram)
{
    Processor p(appCfg());
    EXPECT_TRUE(brightnessVerify(p));
}

TEST(AppsFunctional, BrightnessOnAmbit)
{
    Processor p(appCfg(), Backend::Ambit);
    EXPECT_TRUE(brightnessVerify(p));
}

TEST(AppsWorkloads, LineitemIsDeterministic)
{
    const auto a = makeLineitem(100, 3);
    const auto b = makeLineitem(100, 3);
    EXPECT_EQ(a.shipdate, b.shipdate);
    EXPECT_EQ(a.price, b.price);
    for (size_t i = 0; i < 100; ++i) {
        EXPECT_GE(a.quantity[i], 1u);
        EXPECT_LE(a.quantity[i], 50u);
        EXPECT_LE(a.discount[i], 10u);
    }
}

TEST(AppsModels, NetworkGeometry)
{
    EXPECT_GT(vgg16().macs(), vgg13().macs());
    EXPECT_GT(vgg13().macs(), lenet().macs());
    // VGG-16 is ~15.3 GMACs at 224x224 (conv) + ~123M (fc).
    EXPECT_NEAR(vgg16().macs() / 1e9, 15.5, 1.0);
}

TEST(AppsCost, AllKernelsPositiveOnAllEngines)
{
    auto engines = standardEngines();
    ASSERT_EQ(engines.size(), 6u);
    for (auto &e : engines) {
        const auto k1 = knnCost(*e, {1 << 16, 16, 16});
        const auto k2 = tpchCost(*e, 1 << 16);
        const auto k3 = bitweavingCost(*e, {1 << 16, 12});
        const auto k4 = brightnessCost(*e, {1 << 16, 16});
        const auto k5 = nnCost(*e, lenet());
        for (const auto *k : {&k1, &k2, &k3, &k4, &k5}) {
            EXPECT_GT(k->latencyNs(), 0.0) << e->name();
            EXPECT_GT(k->energyPj(), 0.0) << e->name();
        }
    }
}

TEST(AppsCost, MoreBanksReduceLatencyNotEnergy)
{
    InDramEngine one(DramConfig::simdramConfig(1), Backend::Simdram,
                     "SIMDRAM:1");
    InDramEngine sixteen(DramConfig::simdramConfig(16),
                         Backend::Simdram, "SIMDRAM:16");
    const BitweavingSpec spec{1 << 22, 12};
    const auto c1 = bitweavingCost(one, spec);
    const auto c16 = bitweavingCost(sixteen, spec);
    EXPECT_GT(c1.latencyNs(), c16.latencyNs());
    EXPECT_NEAR(c1.energyPj(), c16.energyPj(), 1e-6)
        << "bank parallelism must not change total energy";
}

TEST(AppsCost, SimdramBeatsAmbitOnEveryKernel)
{
    InDramEngine simdram(DramConfig::simdramConfig(1),
                         Backend::Simdram, "SIMDRAM:1");
    InDramEngine ambit(DramConfig::simdramConfig(1), Backend::Ambit,
                       "Ambit");
    const size_t n = 1 << 20;
    struct Case
    {
        const char *name;
        double simdram_ns;
        double ambit_ns;
    };
    std::vector<Case> cases = {
        {"knn", knnCost(simdram, {n, 16, 16}).latencyNs(),
         knnCost(ambit, {n, 16, 16}).latencyNs()},
        {"tpch", tpchCost(simdram, n).latencyNs(),
         tpchCost(ambit, n).latencyNs()},
        {"bitweaving", bitweavingCost(simdram, {n, 12}).latencyNs(),
         bitweavingCost(ambit, {n, 12}).latencyNs()},
        {"brightness", brightnessCost(simdram, {n, 16}).latencyNs(),
         brightnessCost(ambit, {n, 16}).latencyNs()},
        {"lenet", nnCost(simdram, lenet()).latencyNs(),
         nnCost(ambit, lenet()).latencyNs()},
    };
    for (const auto &c : cases) {
        EXPECT_LT(c.simdram_ns, c.ambit_ns) << c.name;
        // The paper reports up to 2.5x for kernels; allow a wider
        // sanity band for the shape check.
        EXPECT_LT(c.ambit_ns / c.simdram_ns, 6.0) << c.name;
    }
}

TEST(AppsCost, EngineNamesAreDistinct)
{
    auto engines = standardEngines();
    std::set<std::string> names;
    for (auto &e : engines)
        names.insert(e->name());
    EXPECT_EQ(names.size(), engines.size());
}

} // namespace
} // namespace simdram
