/**
 * @file
 * Unit tests for the DRAM substrate: configuration, subarray command
 * semantics (TRA majority, DCC negation, RowClone copies), and the
 * bank/device aggregation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "dram/device.h"

namespace simdram
{
namespace
{

DramConfig
tinyCfg()
{
    return DramConfig::forTesting(64, 64);
}

BitRow
pattern(size_t width, uint64_t bits)
{
    BitRow r(width);
    for (size_t i = 0; i < width && i < 64; ++i)
        if ((bits >> i) & 1)
            r.set(i, true);
    return r;
}

TEST(DramConfig, ValidateRejectsZeroGeometry)
{
    DramConfig cfg = tinyCfg();
    cfg.banks = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(DramConfig, ValidateRejectsBadComputeBanks)
{
    DramConfig cfg = tinyCfg();
    cfg.computeBanks = cfg.banks + 1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(DramConfig, ValidateRejectsNonWordRows)
{
    DramConfig cfg = tinyCfg();
    cfg.rowBits = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(DramConfig, TimingMacrosFollowDecomposition)
{
    DramTiming t;
    EXPECT_DOUBLE_EQ(t.apNs(), t.tRas + t.tRp);
    EXPECT_DOUBLE_EQ(t.aapNs(), 2 * t.tRas + t.tRp);
}

TEST(DramConfig, EnergyScalesWithRowWidth)
{
    DramConfig full = DramConfig::simdramConfig(1);
    DramConfig half = full;
    half.rowBits = full.rowBits / 2;
    EXPECT_DOUBLE_EQ(half.actEnergyPj(1), full.actEnergyPj(1) / 2.0);
}

TEST(DramConfig, TripleActivationCostsMore)
{
    DramConfig cfg = tinyCfg();
    EXPECT_GT(cfg.actEnergyPj(3), cfg.actEnergyPj(2));
    EXPECT_GT(cfg.actEnergyPj(2), cfg.actEnergyPj(1));
}

TEST(Subarray, ConstantRowsInitialized)
{
    Subarray sub(tinyCfg());
    EXPECT_TRUE(sub.peek(SpecialRow::C0).allZero());
    EXPECT_TRUE(sub.peek(SpecialRow::C1).allOne());
}

TEST(Subarray, AapCopiesDataRowToDataRow)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0xdeadbeef12345678ULL);
    sub.pokeData(3, v);
    sub.aap(RowAddr::data(3), RowAddr::data(7));
    EXPECT_EQ(sub.peekData(7), v);
    EXPECT_EQ(sub.peekData(3), v) << "source must be preserved";
}

TEST(Subarray, AapCopiesIntoComputeRow)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0xff00ff00ff00ff00ULL);
    sub.pokeData(0, v);
    sub.aap(RowAddr::data(0), RowAddr::row(SpecialRow::T2));
    EXPECT_EQ(sub.peek(SpecialRow::T2), v);
}

TEST(Subarray, DualDestinationWritesBothRows)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0x123456789abcdef0ULL);
    sub.pokeData(0, v);
    sub.aap(RowAddr::data(0), RowAddr::row(DualAddr::T0T1));
    EXPECT_EQ(sub.peek(SpecialRow::T0), v);
    EXPECT_EQ(sub.peek(SpecialRow::T1), v);
}

TEST(Subarray, DualFirstActivationPanics)
{
    Subarray sub(tinyCfg());
    EXPECT_THROW(sub.ap(RowAddr::row(DualAddr::T0T1)), PanicError);
}

TEST(Subarray, TraComputesMajorityInPlace)
{
    Subarray sub(tinyCfg());
    const BitRow a = pattern(64, 0x0f0f0f0f0f0f0f0fULL);
    const BitRow b = pattern(64, 0x00ff00ff00ff00ffULL);
    const BitRow c = pattern(64, 0x3333333333333333ULL);
    sub.poke(SpecialRow::T0, a);
    sub.poke(SpecialRow::T1, b);
    sub.poke(SpecialRow::T2, c);
    sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    const BitRow expect = BitRow::majority3(a, b, c);
    // TRA is destructive: all three rows hold the result.
    EXPECT_EQ(sub.peek(SpecialRow::T0), expect);
    EXPECT_EQ(sub.peek(SpecialRow::T1), expect);
    EXPECT_EQ(sub.peek(SpecialRow::T2), expect);
}

TEST(Subarray, TraWithAapCopiesResultOut)
{
    Subarray sub(tinyCfg());
    const BitRow a = pattern(64, 0xaaaaaaaaaaaaaaaaULL);
    const BitRow b = pattern(64, 0xccccccccccccccccULL);
    const BitRow c = pattern(64, 0xf0f0f0f0f0f0f0f0ULL);
    sub.poke(SpecialRow::T1, a);
    sub.poke(SpecialRow::T2, b);
    sub.poke(SpecialRow::T3, c);
    sub.aap(RowAddr::row(TripleAddr::T1T2T3), RowAddr::data(9));
    EXPECT_EQ(sub.peekData(9), BitRow::majority3(a, b, c));
}

TEST(Subarray, AndViaControlRow)
{
    // The Ambit AND idiom: MAJ(a, b, 0).
    Subarray sub(tinyCfg());
    const BitRow a = pattern(64, 0b1100);
    const BitRow b = pattern(64, 0b1010);
    sub.pokeData(0, a);
    sub.pokeData(1, b);
    sub.aap(RowAddr::data(0), RowAddr::row(SpecialRow::T0));
    sub.aap(RowAddr::data(1), RowAddr::row(SpecialRow::T1));
    sub.aap(RowAddr::row(SpecialRow::C0), RowAddr::row(SpecialRow::T2));
    sub.aap(RowAddr::row(TripleAddr::T0T1T2), RowAddr::data(5));
    EXPECT_EQ(sub.peekData(5), a & b);
}

TEST(Subarray, OrViaControlRow)
{
    Subarray sub(tinyCfg());
    const BitRow a = pattern(64, 0b1100);
    const BitRow b = pattern(64, 0b1010);
    sub.pokeData(0, a);
    sub.pokeData(1, b);
    sub.aap(RowAddr::data(0), RowAddr::row(SpecialRow::T0));
    sub.aap(RowAddr::data(1), RowAddr::row(SpecialRow::T1));
    sub.aap(RowAddr::row(SpecialRow::C1), RowAddr::row(SpecialRow::T2));
    sub.aap(RowAddr::row(TripleAddr::T0T1T2), RowAddr::data(5));
    EXPECT_EQ(sub.peekData(5), a | b);
}

TEST(Subarray, DccNegativePortReadsComplement)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0x5555aaaa5555aaaaULL);
    sub.pokeData(0, v);
    // Ambit NOT: copy into the cell, read the negated port.
    sub.aap(RowAddr::data(0), RowAddr::row(SpecialRow::DCC0P));
    sub.aap(RowAddr::row(SpecialRow::DCC0N), RowAddr::data(4));
    EXPECT_EQ(sub.peekData(4), ~v);
}

TEST(Subarray, DccNegativePortWriteStoresComplement)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0x00ff00ff00ff00ffULL);
    sub.pokeData(0, v);
    // Writing v through the N port leaves the cell holding !v, so
    // the P port then reads !v.
    sub.aap(RowAddr::data(0), RowAddr::row(SpecialRow::DCC1N));
    sub.aap(RowAddr::row(SpecialRow::DCC1P), RowAddr::data(4));
    EXPECT_EQ(sub.peekData(4), ~v);
}

TEST(Subarray, DccTripleUsesCellValue)
{
    Subarray sub(tinyCfg());
    const BitRow a = pattern(64, 0x1111222233334444ULL);
    const BitRow b = pattern(64, 0x9999aaaabbbbccccULL);
    const BitRow c = pattern(64, 0x5a5a5a5a5a5a5a5aULL);
    sub.poke(SpecialRow::DCC0P, a);
    sub.poke(SpecialRow::T1, b);
    sub.poke(SpecialRow::T2, c);
    sub.ap(RowAddr::row(TripleAddr::DCC0T1T2));
    EXPECT_EQ(sub.peek(SpecialRow::DCC0P),
              BitRow::majority3(a, b, c));
}

TEST(Subarray, ConstantRowsAreWriteProtected)
{
    Subarray sub(tinyCfg());
    sub.pokeData(0, pattern(64, 0xff));
    EXPECT_THROW(sub.aap(RowAddr::data(0),
                         RowAddr::row(SpecialRow::C0)),
                 PanicError);
}

TEST(Subarray, StatsCountCommands)
{
    Subarray sub(tinyCfg());
    sub.pokeData(0, pattern(64, 1));
    sub.aap(RowAddr::data(0), RowAddr::data(1));
    sub.ap(RowAddr::data(0));
    const DramStats &s = sub.stats();
    EXPECT_EQ(s.aaps, 1u);
    EXPECT_EQ(s.aps, 1u);
    EXPECT_EQ(s.activates, 3u);
    EXPECT_EQ(s.precharges, 2u);
    EXPECT_GT(s.energyPj, 0.0);
    DramTiming t;
    EXPECT_DOUBLE_EQ(s.latencyNs, t.aapNs() + t.apNs());
}

TEST(Subarray, TraCountsAsMultiActivate)
{
    Subarray sub(tinyCfg());
    sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    EXPECT_EQ(sub.stats().multiActivates, 1u);
    EXPECT_EQ(sub.stats().activates, 0u);
}

TEST(Subarray, ResetStatsKeepsContents)
{
    Subarray sub(tinyCfg());
    const BitRow v = pattern(64, 0x77);
    sub.pokeData(0, v);
    sub.aap(RowAddr::data(0), RowAddr::data(1));
    sub.resetStats();
    EXPECT_EQ(sub.stats().aaps, 0u);
    EXPECT_EQ(sub.peekData(1), v);
}

TEST(Subarray, OutOfRangePanics)
{
    Subarray sub(tinyCfg());
    EXPECT_THROW(sub.peekData(10000), PanicError);
    EXPECT_THROW(sub.ap(RowAddr::data(10000)), PanicError);
}

TEST(Bank, LazyMaterialization)
{
    DramConfig cfg = tinyCfg();
    Bank bank(cfg);
    EXPECT_FALSE(bank.materialized(0));
    bank.subarray(0).ap(RowAddr::data(0));
    EXPECT_TRUE(bank.materialized(0));
    EXPECT_FALSE(bank.materialized(1));
}

TEST(Bank, SerialStatsAddLatency)
{
    DramConfig cfg = tinyCfg();
    Bank bank(cfg);
    bank.subarray(0).ap(RowAddr::data(0));
    bank.subarray(1).ap(RowAddr::data(0));
    const DramStats s = bank.serialStats();
    EXPECT_EQ(s.aps, 2u);
    EXPECT_DOUBLE_EQ(s.latencyNs, 2 * cfg.timing.apNs());
}

TEST(Device, ParallelStatsTakeMaxAcrossBanks)
{
    DramConfig cfg = tinyCfg();
    DramDevice dev(cfg);
    dev.bank(0).subarray(0).ap(RowAddr::data(0));
    dev.bank(0).subarray(0).ap(RowAddr::data(0));
    dev.bank(1).subarray(0).ap(RowAddr::data(0));
    const DramStats s = dev.parallelStats();
    EXPECT_EQ(s.aps, 3u);
    EXPECT_DOUBLE_EQ(s.latencyNs, 2 * cfg.timing.apNs());
    const DramStats ser = dev.serialStats();
    EXPECT_DOUBLE_EQ(ser.latencyNs, 3 * cfg.timing.apNs());
}

TEST(Device, HostTransferCostsBandwidthAndEnergy)
{
    DramConfig cfg = tinyCfg();
    DramDevice dev(cfg);
    DramStats s;
    const double lat = dev.hostTransfer(1024, s);
    EXPECT_GT(lat, 0.0);
    EXPECT_EQ(s.reads, 16u); // 1024 B / 64 B bursts
    EXPECT_DOUBLE_EQ(s.energyPj,
                     1024 * 8 * cfg.energy.eIoPjPerBit);
}

TEST(Device, RowAddrToStringForms)
{
    EXPECT_EQ(toString(RowAddr::data(17)), "D17");
    EXPECT_EQ(toString(RowAddr::row(SpecialRow::DCC0N)), "DCC0N");
    EXPECT_EQ(toString(RowAddr::row(DualAddr::T2T3)), "DUAL(T2,T3)");
    EXPECT_EQ(toString(RowAddr::row(TripleAddr::DCC1T0T3)),
              "TRA(DCC1P,T0,T3)");
}

} // namespace
} // namespace simdram
