/**
 * @file
 * Tests for the fault-tolerant execution pipeline: the TRA fault
 * injector (deterministic plans and statistical rates), integrity
 * detection under Checksum and DualModular, retry recovery to
 * bit-exact results, typed fault/deadline errors with device
 * attribution and restored state, device quarantine with healthy-
 * device and host fallback, StreamHandle::waitFor readiness probing,
 * destruction with in-flight streams, and the tenant/serve surfacing
 * of fault outcomes. Runs under ThreadSanitizer and ASan/UBSan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "dram/fault_injector.h"
#include "runtime/stream_executor.h"
#include "serve/request_coalescer.h"
#include "stream/stream_builder.h"
#include "stream_testutil.h"
#include "tenant/tenant_executor.h"

namespace simdram
{
namespace
{

using testutil::randomData;
using testutil::testCfg;

/** y = a + a, with the operands round-tripped through the layout. */
std::vector<BbopInstr>
addStream(uint16_t a, uint16_t y)
{
    return {BbopInstr::trsp(a, 8), BbopInstr::trsp(y, 8),
            BbopInstr::binary(OpKind::Add, 8, y, a, a),
            BbopInstr::trspInv(y, 8)};
}

StreamExecutorOptions
faultOpts(IntegrityMode mode, size_t attempts, size_t quarantine = 0,
          double deadlineUs = 0.0)
{
    StreamExecutorOptions o;
    o.integrityMode = mode;
    o.retryPolicy.maxAttempts = attempts;
    o.quarantineFaultThreshold = quarantine;
    o.deadlineUs = deadlineUs;
    return o;
}

/**
 * Pins device @p d's mutex from a dedicated thread (constructor
 * returns once it is held) until release() — so a test can stall that
 * device's worker deterministically without itself holding a device
 * lock while calling into the executor.
 */
class DevicePin
{
  public:
    DevicePin(DeviceGroup &g, size_t d)
    {
        th_ = std::thread([&g, d, this] {
            auto hold = g.lockDevice(d);
            std::unique_lock<std::mutex> lock(mu_);
            pinned_ = true;
            cv_.notify_all();
            cv_.wait(lock, [&] { return released_; });
        });
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return pinned_; });
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            released_ = true;
        }
        cv_.notify_all();
        th_.join();
    }

    ~DevicePin()
    {
        if (th_.joinable())
            release();
    }

  private:
    std::thread th_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool pinned_ = false, released_ = false;
};

// ---------------------------------------------------------------
// FaultInjector unit behaviour
// ---------------------------------------------------------------

TEST(FaultInjector, DeterministicPlanFiresExactOrdinals)
{
    auto inj = FaultInjector::deterministic(FaultPlan{{0, 2}});
    EXPECT_TRUE(inj->sampleTra());  // ordinal 0
    EXPECT_FALSE(inj->sampleTra()); // ordinal 1
    EXPECT_TRUE(inj->sampleTra());  // ordinal 2
    EXPECT_FALSE(inj->sampleTra()); // ordinal 3
    EXPECT_EQ(inj->trasObserved(), 4u);
    EXPECT_EQ(inj->trasFailed(), 2u);
    EXPECT_DOUBLE_EQ(inj->empiricalFailureRate(), 0.5);

    inj->reset();
    EXPECT_EQ(inj->trasObserved(), 0u);
    EXPECT_DOUBLE_EQ(inj->empiricalFailureRate(), 0.0);
    EXPECT_TRUE(inj->sampleTra()); // the plan replays from ordinal 0
}

TEST(FaultInjector, StatisticalRateEndpointsAndDeterminism)
{
    auto always = FaultInjector::statistical(1.0, 7);
    auto never = FaultInjector::statistical(0.0, 7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always->sampleTra());
        EXPECT_FALSE(never->sampleTra());
    }
    EXPECT_EQ(always->trasFailed(), 100u);
    EXPECT_EQ(never->trasFailed(), 0u);

    // A statistical injector tracks its configured rate (binomial
    // sigma at n=20000, p=0.3 is ~0.0032; 0.02 is > 6 sigma)...
    auto inj = FaultInjector::statistical(0.3, 99);
    const size_t n = 20000;
    for (size_t i = 0; i < n; ++i)
        inj->sampleTra();
    EXPECT_EQ(inj->trasObserved(), n);
    EXPECT_NEAR(inj->empiricalFailureRate(), 0.3, 0.02);

    // ...and reset() replays the identical Bernoulli sequence.
    const uint64_t failed = inj->trasFailed();
    inj->reset();
    for (size_t i = 0; i < n; ++i)
        inj->sampleTra();
    EXPECT_EQ(inj->trasFailed(), failed);
}

TEST(FaultInjector, InjectedFaultsAreCountedInStreamStats)
{
    // IntegrityMode::Off: corruption flows through undetected, but
    // every corrupted TRA is charged to the stream's DramStats.
    DeviceGroup g(testCfg(), 1);
    g.setFaultInjector(0,
                       FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
    StreamExecutor ex(g);
    const size_t n = 100;
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, randomData(n, 0xff, 3));

    const StreamResult r = ex.submit(addStream(a, y)).wait();
    EXPECT_EQ(r.compute.traFaults, 3u);
    EXPECT_EQ(r.attempts, 1u); // Off: no detection, no retry
    EXPECT_EQ(r.faultsDetected, 0u);
    EXPECT_EQ(g.faultInjector(0)->trasFailed(), 3u);
    EXPECT_GT(g.faultInjector(0)->trasObserved(), 3u);
    EXPECT_EQ(ex.deviceFaultCount(0), 0u);
}

// ---------------------------------------------------------------
// Detection + retry recovery (the E2E acceptance scenario)
// ---------------------------------------------------------------

/**
 * The deterministic end-to-end recovery scenario: a FaultPlan
 * corrupts the first TRAs of device 0 (of 4), the integrity check
 * detects it, the retry re-executes from the restored snapshot, and
 * the final images are bit-exact with a fault-free run.
 */
void
expectDetectAndRecover(IntegrityMode mode)
{
    DeviceGroup g(testCfg(), 4);
    g.setFaultInjector(0,
                       FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
    StreamExecutor ex(g, faultOpts(mode, /*attempts=*/2));
    const size_t n = 700; // shards on devices 0..2
    const auto da = randomData(n, 0xff, 17);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    const StreamResult r = ex.submit(addStream(a, y)).wait();
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_GE(r.faultsDetected, 1u);
    EXPECT_EQ(r.recoveredOnDevice, -1); // retry, not quarantine
    EXPECT_GE(ex.deviceFaultCount(0), 1u);
    EXPECT_EQ(ex.deviceFaultCount(1), 0u);
    EXPECT_TRUE(ex.deviceHealthy(0)); // no quarantine configured
    EXPECT_EQ(ex.quarantinedDeviceCount(), 0u);

    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
    EXPECT_EQ(ex.readObject(a), da); // inputs untouched
}

TEST(FaultTolerance, ChecksumDetectsAndRetryRecoversBitExact)
{
    expectDetectAndRecover(IntegrityMode::Checksum);
}

TEST(FaultTolerance, DualModularDetectsAndRetryRecoversBitExact)
{
    expectDetectAndRecover(IntegrityMode::DualModular);
}

TEST(FaultTolerance, ExhaustedRetryBudgetIsTypedAndRestored)
{
    // Every TRA corrupts: both attempts fail, the stream surfaces
    // the attributed StreamFaultError, and the device is rolled back
    // to its pre-stream state (a faulted stream is side-effect-free).
    DeviceGroup g(testCfg(), 1);
    g.setFaultInjector(0, FaultInjector::statistical(1.0, 5));
    StreamExecutor ex(g,
                      faultOpts(IntegrityMode::Checksum, /*attempts=*/2));
    const size_t n = 100;
    const auto da = randomData(n, 0xff, 23);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);
    const auto y0 = ex.readObject(y);

    StreamHandle h = ex.submit(addStream(a, y));
    EXPECT_TRUE(h.waitFor(60e6)); // readiness, even for an error
    try {
        h.wait();
        FAIL() << "expected StreamFaultError";
    } catch (const StreamFaultError &e) {
        EXPECT_EQ(e.device(), 0u);
        EXPECT_NE(std::string(e.what()).find("integrity"),
                  std::string::npos);
    }
    EXPECT_EQ(ex.deviceFaultCount(0), 2u);
    EXPECT_EQ(ex.readObject(a), da); // restored
    EXPECT_EQ(ex.readObject(y), y0); // restored

    // Silence the injector: the SAME program must now succeed, and
    // the rollback must have invalidated the stream cache (the
    // re-submitted trsp's must re-execute, not elide stale lanes).
    g.setFaultInjector(0, nullptr);
    const StreamResult r = ex.submit(addStream(a, y)).wait();
    EXPECT_EQ(r.attempts, 1u);
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

// ---------------------------------------------------------------
// Quarantine recovery
// ---------------------------------------------------------------

TEST(FaultTolerance, QuarantineReExecutesOnHealthyDevice)
{
    DeviceGroup g(testCfg(), 4);
    g.setFaultInjector(0,
                       FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
    StreamExecutor ex(g, faultOpts(IntegrityMode::Checksum,
                                   /*attempts=*/3, /*quarantine=*/1));
    const size_t n = 700;
    const auto da = randomData(n, 0xff, 31);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    // First fault trips the threshold: instead of burning retries,
    // the stream drains through a healthy device and still succeeds.
    const StreamResult r = ex.submit(addStream(a, y)).wait();
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_GE(r.faultsDetected, 1u);
    EXPECT_GE(r.recoveredOnDevice, 1);
    EXPECT_FALSE(ex.deviceHealthy(0));
    EXPECT_TRUE(ex.deviceHealthy(1));
    EXPECT_TRUE(ex.deviceHealthy(2));
    EXPECT_TRUE(ex.deviceHealthy(3));
    EXPECT_EQ(ex.quarantinedDeviceCount(), 1u);
    auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;

    // The quarantine is sticky: later streams route their ops around
    // device 0 from the start and stay bit-exact.
    const auto da2 = randomData(n, 0xff, 37);
    ex.writeObject(a, da2);
    const StreamResult r2 = ex.submit(addStream(a, y)).wait();
    EXPECT_GE(r2.recoveredOnDevice, 1);
    out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da2[i] * 2) & 0xff) << i;
}

TEST(FaultTolerance, QuarantineFallsBackToHostWhenNoDeviceIsHealthy)
{
    DeviceGroup g(testCfg(), 1);
    g.setFaultInjector(0,
                       FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
    StreamExecutor ex(g, faultOpts(IntegrityMode::DualModular,
                                   /*attempts=*/2, /*quarantine=*/1));
    const size_t n = 120;
    const auto da = randomData(n, 0xff, 41);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    const StreamResult r = ex.submit(addStream(a, y)).wait();
    EXPECT_EQ(r.recoveredOnDevice, -2); // the host reference path
    EXPECT_EQ(ex.quarantinedDeviceCount(), 1u);
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

// ---------------------------------------------------------------
// Deadlines and waitFor
// ---------------------------------------------------------------

TEST(FaultTolerance, DeadlineExpiryIsTypedUnderAStalledDevice)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, faultOpts(IntegrityMode::Off, /*attempts=*/1,
                                   /*quarantine=*/0,
                                   /*deadlineUs=*/2000.0));
    const size_t n = 300; // shards on both devices
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, randomData(n, 0xff, 47));

    StreamHandle h;
    {
        DevicePin pin(g, 0);
        h = ex.submit(addStream(a, y));
        // The pinned device cannot start the stream; burn well past
        // the 2 ms deadline while probing (non-blocking readiness).
        EXPECT_FALSE(h.waitFor(20e3));
        EXPECT_FALSE(h.done());
    }
    // Released: the worker picks the stream up only to find its
    // deadline long gone, and fails it typed instead of running late.
    EXPECT_TRUE(h.waitFor(60e6));
    EXPECT_THROW(h.wait(), StreamDeadlineError);
}

TEST(FaultTolerance, WaitForIsANonConsumingReadinessProbe)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 300;
    const auto da = randomData(n, 0xff, 53);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    StreamHandle h;
    {
        DevicePin pin(g, 0);
        h = ex.submit(addStream(a, y));
        EXPECT_FALSE(h.waitFor(5e3));
        EXPECT_FALSE(h.done());
    }
    EXPECT_TRUE(h.waitFor(60e6));
    EXPECT_TRUE(h.waitFor(0.0)); // re-probing stays true
    EXPECT_TRUE(h.done());
    const StreamResult r = h.wait(); // the probe consumed nothing
    EXPECT_EQ(r.attempts, 1u);
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

// ---------------------------------------------------------------
// Destruction with in-flight streams
// ---------------------------------------------------------------

TEST(FaultTolerance, ExecutorDestructionWithInFlightStreams)
{
    // Streams still queued (some of them faulting and retrying) when
    // the executor is destroyed: the destructor must drain cleanly
    // with nobody waiting on the handles. TSan/ASan guard this.
    DeviceGroup g(testCfg(), 2);
    g.setFaultInjector(
        0, FaultInjector::deterministic(FaultPlan{{0, 5, 9}}));
    {
        StreamExecutor ex(g, faultOpts(IntegrityMode::Checksum,
                                       /*attempts=*/2));
        const size_t n = 300;
        const uint16_t a = ex.defineObject(n, 8);
        const uint16_t y = ex.defineObject(n, 8);
        ex.writeObject(a, randomData(n, 0xff, 59));
        ex.submit({BbopInstr::trsp(a, 8), BbopInstr::trsp(y, 8)});
        for (int i = 0; i < 6; ++i)
            ex.submit({BbopInstr::binary(OpKind::Add, 8, y, a, a)});
        // No wait(), no sync(): handles are dropped on the floor.
    }
    SUCCEED();
}

TEST(FaultTolerance, TenantDestructionWithInFlightStreams)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    {
        TenantExecutor te(ex);
        const uint32_t t0 = te.registerTenant({/*name=*/"t0"});
        const uint32_t t1 = te.registerTenant({/*name=*/"t1"});
        const size_t n = 200;
        for (uint32_t t : {t0, t1}) {
            const uint16_t a = te.defineObject(t, n, 8);
            const uint16_t y = te.defineObject(t, n, 8);
            te.writeObject(t, a, randomData(n, 0xff, 61 + t));
            te.submit(t, {BbopInstr::trsp(a, 8),
                          BbopInstr::trsp(y, 8)});
            for (int i = 0; i < 4; ++i)
                te.submit(t, {BbopInstr::binary(OpKind::Add, 8, y, a,
                                                a)});
        }
        // Destroy with streams pending in the DRR queues.
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// Tenant surfacing of fault outcomes
// ---------------------------------------------------------------

TEST(FaultTolerance, TenantStatsSplitFaultOutcomes)
{
    DeviceGroup g(testCfg(), 2);
    g.setFaultInjector(0,
                       FaultInjector::deterministic(FaultPlan{{0, 1, 2}}));
    StreamExecutor ex(g,
                      faultOpts(IntegrityMode::Checksum, /*attempts=*/2));
    TenantExecutor te(ex);
    const uint32_t t = te.registerTenant({/*name=*/"alice"});
    const size_t n = 300;
    const auto da = randomData(n, 0xff, 67);
    const uint16_t a = te.defineObject(t, n, 8);
    const uint16_t y = te.defineObject(t, n, 8);
    te.writeObject(t, a, da);

    // Recovered-by-retry: completes, and the roll-up records the
    // detection and the extra attempt against THIS tenant.
    te.submit(t, addStream(a, y)).wait();
    te.drain();
    TenantStats s = te.stats(t);
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_GE(s.faultsDetected, 1u);
    EXPECT_EQ(s.retriedStreams, 1u);
    EXPECT_EQ(s.recoveredStreams, 0u);
    EXPECT_EQ(s.faultedStreams, 0u);
    EXPECT_EQ(s.deadlineExpiredStreams, 0u);
    const auto out = te.readObject(t, y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;

    // Unrecoverable: every TRA corrupts, the budget exhausts, and
    // the failure is classified as a FAULT (not a generic error).
    g.setFaultInjector(0, FaultInjector::statistical(1.0, 71));
    EXPECT_THROW(te.submit(t, addStream(a, y)).wait(),
                 StreamFaultError);
    te.drain();
    s = te.stats(t);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.faultedStreams, 1u);
    EXPECT_EQ(s.deadlineExpiredStreams, 0u);
    EXPECT_GE(s.faultsDetected, 3u);

    // The fleet roll-up agrees with the single tenant.
    const TenantStats fleet = te.fleetStats();
    EXPECT_EQ(fleet.faultedStreams, s.faultedStreams);
    EXPECT_EQ(fleet.faultsDetected, s.faultsDetected);
    EXPECT_EQ(fleet.retriedStreams, s.retriedStreams);
}

TEST(FaultTolerance, TenantStatsCountDeadlineExpiries)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, faultOpts(IntegrityMode::Off, /*attempts=*/1,
                                   /*quarantine=*/0,
                                   /*deadlineUs=*/2000.0));
    TenantExecutor te(ex);
    const uint32_t t = te.registerTenant({/*name=*/"bob"});
    const size_t n = 300;
    const uint16_t a = te.defineObject(t, n, 8);
    const uint16_t y = te.defineObject(t, n, 8);
    te.writeObject(t, a, randomData(n, 0xff, 73));

    TenantStreamHandle h;
    {
        DevicePin pin(g, 0);
        h = te.submit(t, addStream(a, y));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_THROW(h.wait(), StreamDeadlineError);
    te.drain();
    const TenantStats s = te.stats(t);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.deadlineExpiredStreams, 1u);
    EXPECT_EQ(s.faultedStreams, 0u);
}

// ---------------------------------------------------------------
// Serve-layer surfacing: per-request fault mapping + dispatcher
// robustness
// ---------------------------------------------------------------

/** requestInputs=1 class computing out = in + in over 8-bit lanes. */
RequestClassSpec
doubleClass(size_t elements)
{
    RequestClassSpec spec;
    spec.name = "double";
    spec.elements = elements;
    spec.bits = 8;
    spec.requestInputs = 1;
    spec.emit = [](StreamBuilder &b, const BatchLayout &layout) {
        b.binary(OpKind::Add, layout.output, layout.request[0],
                 layout.request[0]);
    };
    return spec;
}

TEST(FaultTolerance, CoalescerMapsFaultsToPerRequestErrors)
{
    DeviceGroup g(testCfg(), 1);
    g.setFaultInjector(0, FaultInjector::statistical(1.0, 79));
    StreamExecutor ex(g,
                      faultOpts(IntegrityMode::Checksum, /*attempts=*/1));
    RequestCoalescer co(ex, CoalescerOptions{/*maxBatch=*/2,
                                             /*maxLingerUs=*/0.0,
                                             /*maxPending=*/0,
                                             AdmissionPolicy::Shed});
    const size_t n = 100;
    const uint32_t cls = co.registerClass(doubleClass(n));
    const auto d0 = randomData(n, 0xff, 83);
    const auto d1 = randomData(n, 0xff, 89);

    ServeFuture f0 = co.submit(cls, {d0});
    ServeFuture f1 = co.submit(cls, {d1});
    for (ServeFuture *f : {&f0, &f1}) {
        try {
            f->wait();
            FAIL() << "expected RequestFaultError";
        } catch (const RequestFaultError &e) {
            // Typed per-request, with device attribution and the
            // class named — not a batch-wide opaque collapse.
            EXPECT_EQ(e.device(), 0);
            EXPECT_NE(std::string(e.what()).find("double"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(co.completedRequests(), 2u);
    EXPECT_EQ(co.failedRequests(), 2u);
    EXPECT_EQ(co.faultedRequests(), 2u);
    EXPECT_EQ(co.deadlineExpiredRequests(), 0u);
    EXPECT_EQ(co.pendingRequests(), 0u);

    // The class's objects survived (faulted streams restore device
    // state): with the injector silenced the service heals in place.
    g.setFaultInjector(0, nullptr);
    ServeFuture f2 = co.submit(cls, {d0});
    ServeFuture f3 = co.submit(cls, {d1});
    EXPECT_EQ(f2.wait().output,
              [&] {
                  std::vector<uint64_t> e(n);
                  for (size_t i = 0; i < n; ++i)
                      e[i] = (d0[i] * 2) & 0xff;
                  return e;
              }());
    f3.wait();
    EXPECT_EQ(co.faultedRequests(), 2u); // unchanged
}

TEST(FaultTolerance, CoalescerThrowingSubmissionFulfilsEverySlot)
{
    // A class whose pipeline is rejected at SUBMIT time (it reads a
    // scratch object that was never written or transposed): the
    // batch's submission throws inside the dispatcher, and every
    // slot's future must still complete with the error — a throwing
    // batch must never strand a ServeFuture or wedge drain().
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    RequestCoalescer co(ex, CoalescerOptions{/*maxBatch=*/2,
                                             /*maxLingerUs=*/0.0,
                                             /*maxPending=*/0,
                                             AdmissionPolicy::Shed});
    const size_t n = 64;
    RequestClassSpec bad;
    bad.name = "reads-unwritten-scratch";
    bad.elements = n;
    bad.bits = 8;
    bad.requestInputs = 1;
    bad.emit = [](StreamBuilder &b, const BatchLayout &layout) {
        const uint16_t s = layout.scratch(0, 8);
        b.binary(OpKind::Add, layout.output, s, layout.request[0]);
    };
    const uint32_t cls = co.registerClass(bad);

    ServeFuture f0 = co.submit(cls, {randomData(n, 0xff, 97)});
    ServeFuture f1 = co.submit(cls, {randomData(n, 0xff, 101)});
    EXPECT_THROW(f0.wait(), BbopError);
    EXPECT_THROW(f1.wait(), BbopError);
    EXPECT_EQ(co.completedRequests(), 2u);
    EXPECT_EQ(co.failedRequests(), 2u);
    EXPECT_EQ(co.faultedRequests(), 0u); // not an in-DRAM fault
    co.drain(); // must return: nothing stranded
    EXPECT_EQ(co.pendingRequests(), 0u);

    // The coalescer still serves well-formed classes afterwards.
    const uint32_t good = co.registerClass(doubleClass(n));
    const auto d = randomData(n, 0xff, 103);
    ServeFuture f2 = co.submit(good, {d});
    ServeFuture f3 = co.submit(good, {d});
    const ServeResult r = f2.wait();
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(r.output[i], (d[i] * 2) & 0xff) << i;
    f3.wait();
}

TEST(FaultTolerance, CoalescerObjectSetupIsFailureAtomicUnderQuota)
{
    // Front-ending a tenant whose object quota cannot hold the
    // class's object group: ensureObjects must release everything it
    // defined (failure-atomic), fail the batch's futures, and leave
    // the tenant with zero live objects.
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t t =
        te.registerTenant({/*name=*/"tight", /*weight=*/1,
                           /*maxObjects=*/1});
    RequestCoalescer co(te.view(t),
                        CoalescerOptions{/*maxBatch=*/1,
                                         /*maxLingerUs=*/0.0,
                                         /*maxPending=*/0,
                                         AdmissionPolicy::Shed,
                                         /*tenantTag=*/"tight"});
    const size_t n = 64;
    const uint32_t cls = co.registerClass(doubleClass(n));
    ServeFuture f = co.submit(cls, {randomData(n, 0xff, 107)});
    EXPECT_THROW(f.wait(), TenantQuotaError);
    co.drain();
    EXPECT_EQ(co.pendingRequests(), 0u);
    EXPECT_EQ(te.stats(t).liveObjects, 0u); // nothing half-defined
}

} // namespace
} // namespace simdram
