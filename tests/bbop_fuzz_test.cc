/**
 * @file
 * Differential fuzz test of the unified bbop validation rules.
 *
 * Random bbop streams — mostly valid, deliberately corrupted with
 * some probability — are executed through both entry points of the
 * ISA: per-instruction through a BbopDispatcher driving one
 * Processor, and stream-level through a StreamExecutor over a
 * 2-device DeviceGroup with bounded queues. Both run the shared
 * BbopValidator (src/isa/validate.cc), so:
 *
 *  - every stream must be accepted or rejected by both paths
 *    identically, with the identical BbopError message;
 *  - accepted streams must leave bit-exact identical object state
 *    (checked via a differential trsp_inv sweep over the table).
 *
 * Run under ThreadSanitizer in CI: accepted streams exercise the
 * executor's worker threads and backpressure paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "isa/dispatcher.h"
#include "runtime/stream_executor.h"

namespace simdram
{
namespace
{

constexpr size_t kN = 300; ///< Elements (crosses a shard boundary).

/** The fuzz object table: {elements, bits} per object id. */
const std::vector<std::pair<size_t, size_t>> kTable = {
    {kN, 8},     // d0
    {kN, 8},     // d1
    {kN, 8},     // d2
    {kN, 16},    // d3
    {kN, 16},    // d4
    {kN, 16},    // d5
    {kN, 1},     // d6
    {kN, 1},     // d7
    {kN, 4},     // d8: bitcount.8 output
    {kN, 5},     // d9: bitcount.16 output
    {kN / 2, 8}, // d10: element-count mismatch bait
};

/** Stateful generator of mostly-valid bbop instructions. */
class StreamGen
{
  public:
    explicit StreamGen(uint64_t seed) : rng_(seed)
    {
        vert_.assign(kTable.size(), false);
    }

    /**
     * @return A fresh stream against an all-horizontal table: a
     *         random trsp prologue (so the body finds vertical
     *         operands), then mostly-valid body instructions.
     */
    std::vector<BbopInstr>
    stream()
    {
        std::fill(vert_.begin(), vert_.end(), false);
        std::vector<BbopInstr> s;
        for (uint16_t id = 0; id < kTable.size(); ++id) {
            if (rng_.below(100) < 60) {
                s.push_back(BbopInstr::trsp(
                    id,
                    static_cast<uint8_t>(kTable[id].second)));
                vert_[id] = true;
            }
        }
        const size_t len = 3 + rng_.below(6);
        for (size_t i = 0; i < len; ++i) {
            BbopInstr instr = valid();
            if (rng_.below(100) < 20)
                corrupt(instr);
            else
                applyLayout(instr);
            s.push_back(instr);
        }
        return s;
    }

  private:
    /** @return A random object id with @p bits (full-size only). */
    uint16_t
    pick(size_t bits)
    {
        std::vector<uint16_t> pool;
        for (uint16_t id = 0; id < kTable.size(); ++id)
            if (kTable[id].second == bits &&
                kTable[id].first == kN)
                pool.push_back(id);
        return pool[rng_.below(pool.size())];
    }

    /** @return As pick(), preferring already-vertical objects. */
    uint16_t
    pickVertical(size_t bits)
    {
        std::vector<uint16_t> pool;
        for (uint16_t id = 0; id < kTable.size(); ++id)
            if (kTable[id].second == bits &&
                kTable[id].first == kN && vert_[id])
                pool.push_back(id);
        if (pool.empty())
            return pick(bits); // generator will lean on trsp first
        return pool[rng_.below(pool.size())];
    }

    BbopInstr
    valid()
    {
        const auto kind = rng_.below(10);
        // Lean towards transposes early so op streams find vertical
        // operands, and towards ops once the table is warmed up.
        if (kind < 3) {
            const uint16_t id =
                static_cast<uint16_t>(rng_.below(kTable.size()));
            return BbopInstr::trsp(
                id, static_cast<uint8_t>(kTable[id].second));
        }
        if (kind == 3) {
            const uint16_t id = pickVertical(
                rng_.below(2) ? 8 : 16);
            return BbopInstr::trspInv(
                id, static_cast<uint8_t>(kTable[id].second));
        }
        if (kind == 4) {
            const size_t bits = rng_.below(2) ? 8 : 16;
            const uint16_t id = pickVertical(bits);
            return BbopInstr::init(
                id, static_cast<uint8_t>(bits),
                rng_.below(uint64_t{1} << bits));
        }
        if (kind == 5) {
            const size_t bits = rng_.below(2) ? 8 : 16;
            uint16_t dst = pickVertical(bits);
            const uint16_t src = pickVertical(bits);
            while (dst == src)
                dst = pick(bits);
            return BbopInstr::shift(
                rng_.below(2) != 0, static_cast<uint8_t>(bits),
                dst, src, static_cast<uint8_t>(rng_.below(bits)));
        }

        // An operation with a satisfiable signature.
        const size_t w = rng_.below(2) ? 8 : 16;
        const size_t pick_op =
            rng_.below(kAllOps.size() + kExtensionOps.size());
        const OpKind op =
            pick_op < kAllOps.size()
                ? kAllOps[pick_op]
                : kExtensionOps[pick_op - kAllOps.size()];
        const OpSignature sig = signatureOf(op, w);
        const uint16_t src1 = pickVertical(w);
        uint16_t dst = pickVertical(sig.outWidth);
        while (dst == src1)
            dst = pick(sig.outWidth);
        if (sig.numInputs == 1)
            return BbopInstr::unary(op, static_cast<uint8_t>(w),
                                    dst, src1);
        uint16_t src2 = pickVertical(w);
        while (src2 == dst)
            src2 = pick(w);
        if (!sig.hasSel)
            return BbopInstr::binary(op, static_cast<uint8_t>(w),
                                     dst, src1, src2);
        uint16_t sel = pickVertical(1);
        while (sel == dst)
            sel = pick(1);
        return BbopInstr::predicated(op, static_cast<uint8_t>(w),
                                     dst, src1, src2, sel);
    }

    /** Mutates one field of @p instr into (likely) invalidity. */
    void
    corrupt(BbopInstr &instr)
    {
        switch (rng_.below(6)) {
          case 0:
            instr.width = static_cast<uint8_t>(
                rng_.below(2) ? 0 : 65 + rng_.below(32));
            break;
          case 1:
            instr.dst = static_cast<uint16_t>(
                kTable.size() + rng_.below(50));
            break;
          case 2:
            instr.src1 = static_cast<uint16_t>(
                kTable.size() + rng_.below(50));
            break;
          case 3:
            instr.opcode =
                static_cast<BbopOpcode>(6 + rng_.below(10));
            break;
          case 4:
            instr.op = static_cast<OpKind>(kOpKindCount +
                                           rng_.below(10));
            break;
          default:
            instr.src1 = instr.dst; // likely in-place / shape error
            break;
        }
    }

    /** Tracks layout effects of an instruction assumed valid. */
    void
    applyLayout(const BbopInstr &instr)
    {
        if (instr.opcode == BbopOpcode::Trsp &&
            instr.dst < vert_.size())
            vert_[instr.dst] = true;
    }

    Rng rng_;
    std::vector<bool> vert_;
};

DramConfig
fuzzCfg()
{
    return DramConfig::forTesting(256, 512);
}

/** One side of the differential: the dispatcher, per-instruction. */
struct DispatcherSide
{
    Processor proc;
    BbopDispatcher disp;

    explicit DispatcherSide(const std::vector<
                            std::vector<uint64_t>> &data)
        : proc(fuzzCfg()), disp(proc)
    {
        for (size_t id = 0; id < kTable.size(); ++id) {
            disp.defineObject(kTable[id].first, kTable[id].second);
            disp.writeObject(static_cast<uint16_t>(id), data[id]);
        }
    }

    /** @return The BbopError message, or "" when accepted. */
    std::string
    run(const std::vector<BbopInstr> &stream)
    {
        try {
            for (const BbopInstr &i : stream)
                disp.exec(i);
        } catch (const BbopError &e) {
            return e.what();
        }
        return "";
    }
};

/** The other side: the async executor over a sharded 2-device group. */
struct ExecutorSide
{
    DeviceGroup group;
    StreamExecutor ex;

    explicit ExecutorSide(const std::vector<
                          std::vector<uint64_t>> &data)
        : group(fuzzCfg(), 2),
          ex(group, {/*maxQueuedStreams=*/2,
                     BackpressurePolicy::Block})
    {
        for (size_t id = 0; id < kTable.size(); ++id) {
            ex.defineObject(kTable[id].first, kTable[id].second);
            ex.writeObject(static_cast<uint16_t>(id), data[id]);
        }
    }

    std::string
    run(const std::vector<BbopInstr> &stream)
    {
        try {
            ex.submit(stream).wait();
        } catch (const BbopError &e) {
            return e.what();
        }
        return "";
    }
};

std::vector<std::vector<uint64_t>>
randomTableData(uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint64_t>> data;
    for (const auto &[elements, bits] : kTable) {
        const uint64_t mask = (uint64_t{1} << bits) - 1;
        std::vector<uint64_t> v(elements);
        for (auto &x : v)
            x = rng.next() & mask;
        data.push_back(std::move(v));
    }
    return data;
}

TEST(BbopFuzz, DispatcherAndStreamValidationAgree)
{
    constexpr size_t kStreams = 40;
    size_t accepted = 0, rejected = 0;
    StreamGen gen(0xf22);

    for (size_t s = 0; s < kStreams; ++s) {
        const std::vector<BbopInstr> stream = gen.stream();
        const auto data = randomTableData(1000 + s);
        DispatcherSide d(data);
        ExecutorSide e(data);

        const std::string derr = d.run(stream);
        const std::string eerr = e.run(stream);
        EXPECT_EQ(derr.empty(), eerr.empty())
            << "stream " << s << ": dispatcher said '" << derr
            << "', executor said '" << eerr << "'";
        EXPECT_EQ(derr, eerr) << "stream " << s;
        if (!derr.empty()) {
            ++rejected;
            continue;
        }
        ++accepted;

        // Bit-exact state: sweep the table with trsp_inv. The sweep
        // itself is differential — an object left horizontal rejects
        // the trsp_inv on both sides with the same error.
        for (uint16_t id = 0; id < kTable.size(); ++id) {
            const auto w =
                static_cast<uint8_t>(kTable[id].second);
            const std::string dinv =
                d.run({BbopInstr::trspInv(id, w)});
            const std::string einv =
                e.run({BbopInstr::trspInv(id, w)});
            EXPECT_EQ(dinv, einv) << "stream " << s << " d" << id;
            EXPECT_EQ(d.disp.readObject(id), e.ex.readObject(id))
                << "stream " << s << " object d" << id;
        }
    }

    // The generator must exercise both verdicts, or the test is
    // vacuous.
    EXPECT_GT(accepted, 5u);
    EXPECT_GT(rejected, 5u);
}

TEST(BbopFuzz, CorruptedEncodingsRejectedBeforeAnyEffect)
{
    // Encoded-word fuzz: random bit flips over valid encodings. A
    // word that no longer decodes must reject the whole stream with
    // no effect on either side; a word that decodes goes through the
    // shared validator like any other.
    Rng rng(0xec0de);
    StreamGen gen(0xbeef);
    for (size_t s = 0; s < 20; ++s) {
        const std::vector<BbopInstr> stream = gen.stream();
        std::vector<uint64_t> words;
        for (const BbopInstr &i : stream) {
            uint64_t w = 0;
            try {
                w = encodeBbop(i);
            } catch (const FatalError &) {
                // Corrupted widths can be unencodable; encode a
                // trsp placeholder and corrupt it below instead.
                w = encodeBbop(BbopInstr::trsp(0, 8));
            }
            if (rng.below(100) < 25)
                w ^= uint64_t{1} << rng.below(64);
            words.push_back(w);
        }

        const auto data = randomTableData(5000 + s);
        ExecutorSide e(data);
        DispatcherSide d(data);

        std::string derr, eerr;
        try {
            std::vector<BbopInstr> decoded;
            for (uint64_t w : words)
                decoded.push_back(decodeBbop(w));
            for (const BbopInstr &i : decoded)
                d.disp.exec(i);
        } catch (const BbopError &err) {
            derr = err.what();
        }
        try {
            e.ex.submit(words).wait();
        } catch (const BbopError &err) {
            eerr = err.what();
        }
        EXPECT_EQ(derr, eerr) << "stream " << s;
    }
}

} // namespace
} // namespace simdram
