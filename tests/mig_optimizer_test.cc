/**
 * @file
 * Tests for the framework's step-1 transformations: AOIG -> MIG
 * conversion, sweeping, and the MIG optimizer. Every transformation
 * must preserve function (checked exhaustively for small circuits).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "logic/equiv.h"
#include "logic/mig.h"
#include "logic/optimizer.h"
#include "ops/library.h"

namespace simdram
{
namespace
{

TEST(ToMig, AndBecomesMajWithZero)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkAnd(a, b));
    const Circuit m = toMig(c);
    EXPECT_TRUE(m.isMig());
    EXPECT_EQ(m.gateCount(NodeKind::Maj3), 1u);
    const auto eq = checkEquivalence(c, m);
    EXPECT_TRUE(eq.equivalent) << eq.message;
    EXPECT_TRUE(eq.exhaustive);
}

TEST(ToMig, PreservesBusStructure)
{
    Circuit c;
    const auto a = c.addInputBus("a", 3);
    const auto b = c.addInputBus("b", 3);
    std::vector<Lit> y;
    for (int i = 0; i < 3; ++i)
        y.push_back(c.mkOr(a[i], b[i]));
    c.addOutputBus("y", y);

    const Circuit m = toMig(c);
    ASSERT_NE(m.inputBus("a"), nullptr);
    ASSERT_NE(m.outputBus("y"), nullptr);
    EXPECT_EQ(m.inputBus("a")->size(), 3u);
    EXPECT_EQ(m.outputBus("y")->size(), 3u);
    EXPECT_EQ(m.inputBusNames(), c.inputBusNames());
}

TEST(Sweep, RemovesDeadGates)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit live = c.mkAnd(a, b);
    c.mkOr(a, b); // dead
    c.addOutput("y", live);
    const Circuit s = sweep(c);
    EXPECT_EQ(s.gateCount(), 1u);
    EXPECT_TRUE(checkEquivalence(c, s).equivalent);
}

TEST(Optimizer, RejectsNonMig)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkAnd(a, b));
    EXPECT_THROW(optimizeMig(c), FatalError);
}

TEST(Optimizer, DistributivityShrinksSharedPair)
{
    // M(M(x,y,u), M(x,y,v), z) -> M(x, y, M(u,v,z)): 3 -> 2 gates.
    Circuit c;
    const Lit x = c.addInput("x");
    const Lit y = c.addInput("y");
    const Lit u = c.addInput("u");
    const Lit v = c.addInput("v");
    const Lit z = c.addInput("z");
    const Lit p = c.mkMaj(x, y, u);
    const Lit q = c.mkMaj(x, y, v);
    c.addOutput("out", c.mkMaj(p, q, z));
    ASSERT_EQ(c.topoOrder().size(), 3u);

    OptReport rep;
    const Circuit o = optimizeMig(c, &rep);
    EXPECT_EQ(rep.gatesBefore, 3u);
    EXPECT_EQ(rep.gatesAfter, 2u);
    const auto eq = checkEquivalence(c, o);
    EXPECT_TRUE(eq.equivalent) << eq.message;
    EXPECT_TRUE(eq.exhaustive);
}

TEST(Optimizer, DistributivityRequiresSingleFanout)
{
    // If the shared children have other consumers, the rewrite would
    // not reduce size; the result must still be equivalent.
    Circuit c;
    const Lit x = c.addInput("x");
    const Lit y = c.addInput("y");
    const Lit u = c.addInput("u");
    const Lit v = c.addInput("v");
    const Lit z = c.addInput("z");
    const Lit p = c.mkMaj(x, y, u);
    const Lit q = c.mkMaj(x, y, v);
    c.addOutput("out", c.mkMaj(p, q, z));
    c.addOutput("p", p); // extra fanout
    const Circuit o = optimizeMig(c);
    EXPECT_TRUE(checkEquivalence(c, o).equivalent);
}

TEST(Optimizer, ReportsDepth)
{
    OperationLibrary lib;
    const Circuit &naive = lib.migNaive(OpKind::Add, 4);
    OptReport rep;
    optimizeMig(naive, &rep);
    EXPECT_GT(rep.depthBefore, 0u);
    EXPECT_GT(rep.depthAfter, 0u);
    EXPECT_GE(rep.gatesBefore, rep.gatesAfter);
}

TEST(Optimizer, IdempotentOnOptimizedCircuit)
{
    OperationLibrary lib;
    const Circuit &m = lib.mig(OpKind::Add, 8);
    OptReport rep;
    const Circuit again = optimizeMig(m, &rep);
    EXPECT_EQ(rep.gatesBefore, rep.gatesAfter);
    EXPECT_TRUE(checkEquivalence(m, again).equivalent);
}

/** Parameterized equivalence across the whole op library. */
class MigPipelineTest
    : public ::testing::TestWithParam<std::tuple<OpKind, size_t>>
{
};

TEST_P(MigPipelineTest, AllVariantsEquivalent)
{
    const auto [op, width] = GetParam();
    OperationLibrary lib;
    const Circuit &aoig = lib.aoig(op, width);
    const Circuit &naive = lib.migNaive(op, width);
    const Circuit &synth = lib.migSynth(op, width);
    const Circuit &mig = lib.mig(op, width);

    EXPECT_TRUE(aoig.isAoig());
    EXPECT_TRUE(naive.isMig());
    EXPECT_TRUE(synth.isMig());
    EXPECT_TRUE(mig.isMig());

    auto r1 = checkEquivalence(aoig, naive);
    EXPECT_TRUE(r1.equivalent) << "naive: " << r1.message;
    auto r2 = checkEquivalence(aoig, synth);
    EXPECT_TRUE(r2.equivalent) << "synth: " << r2.message;
    auto r3 = checkEquivalence(aoig, mig);
    EXPECT_TRUE(r3.equivalent) << "mig: " << r3.message;

    // The optimizer must never grow the naive conversion.
    EXPECT_LE(synth.topoOrder().size(), naive.topoOrder().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, MigPipelineTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{2}, size_t{4},
                                         size_t{7})),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace simdram
