/**
 * @file
 * Differential tests: every vectorized / fused kernel checked
 * bit-exact against the retained bit-at-a-time reference
 * implementations (common/kernels_ref.h) over randomized widths,
 * including non-multiple-of-64 and zero-width edge rows, plus the
 * batched ReplayPlan path checked against the seed ControlUnit path
 * at the subarray level.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bitrow_testutil.h"
#include "common/bitrow.h"
#include "common/kernels_ref.h"
#include "common/rng.h"
#include "dram/subarray.h"
#include "exec/control_unit.h"
#include "exec/replay_plan.h"
#include "layout/transpose.h"

namespace simdram
{
namespace
{

using testutil::paddingClear;
using testutil::randomRow;

/** Widths covering word boundaries, padding, and degenerate rows. */
const size_t kWidths[] = {0,   1,   5,   63,  64,  65, 127,
                          128, 130, 192, 255, 320, 1000};

TEST(KernelDiff, Majority3MatchesReference)
{
    Rng rng(0xd1f);
    for (size_t w : kWidths) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        const BitRow c = randomRow(w, rng);
        const BitRow expect = refkernel::majority3(a, b, c);
        EXPECT_EQ(BitRow::majority3(a, b, c), expect) << "w=" << w;
        BitRow out;
        BitRow::majority3Into(out, a, b, c);
        EXPECT_EQ(out, expect) << "w=" << w;
        EXPECT_TRUE(paddingClear(out)) << "w=" << w;
        // Aliasing the output onto an input is element-wise safe.
        BitRow alias = a;
        BitRow::majority3Into(alias, alias, b, c);
        EXPECT_EQ(alias, expect) << "w=" << w;
    }
}

TEST(KernelDiff, SelectMatchesReference)
{
    Rng rng(0x5e1);
    for (size_t w : kWidths) {
        const BitRow sel = randomRow(w, rng);
        const BitRow t = randomRow(w, rng);
        const BitRow f = randomRow(w, rng);
        const BitRow expect = refkernel::select(sel, t, f);
        EXPECT_EQ(BitRow::select(sel, t, f), expect) << "w=" << w;
        BitRow out;
        BitRow::selectInto(out, sel, t, f);
        EXPECT_EQ(out, expect) << "w=" << w;
        EXPECT_TRUE(paddingClear(out)) << "w=" << w;
    }
}

TEST(KernelDiff, NotAndNotMatchReference)
{
    Rng rng(0xa2d);
    for (size_t w : kWidths) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);

        BitRow not_a;
        not_a.assignNot(a);
        EXPECT_EQ(not_a, refkernel::bitNot(a)) << "w=" << w;
        EXPECT_EQ(~a, refkernel::bitNot(a)) << "w=" << w;
        EXPECT_TRUE(paddingClear(not_a)) << "w=" << w;

        BitRow andnot;
        BitRow::andNotInto(andnot, a, b);
        EXPECT_EQ(andnot, refkernel::andNot(a, b)) << "w=" << w;
        EXPECT_TRUE(paddingClear(andnot)) << "w=" << w;
    }
}

TEST(KernelDiff, BitwiseOperatorsMatchReference)
{
    Rng rng(0xb0b);
    for (size_t w : kWidths) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        BitRow expect_and(w), expect_or(w), expect_xor(w);
        for (size_t i = 0; i < w; ++i) {
            expect_and.set(i, a.get(i) && b.get(i));
            expect_or.set(i, a.get(i) || b.get(i));
            expect_xor.set(i, a.get(i) != b.get(i));
        }
        EXPECT_EQ(a & b, expect_and) << "w=" << w;
        EXPECT_EQ(a | b, expect_or) << "w=" << w;
        EXPECT_EQ(a ^ b, expect_xor) << "w=" << w;
    }
}

TEST(KernelDiff, PopcountMatchesReference)
{
    Rng rng(0x9c9);
    for (size_t w : kWidths) {
        const BitRow a = randomRow(w, rng);
        EXPECT_EQ(a.popcount(), refkernel::popcount(a)) << "w=" << w;
    }
}

TEST(KernelDiff, AapIntoCopies)
{
    Rng rng(0xc0c);
    for (size_t w : kWidths) {
        const BitRow a = randomRow(w, rng);
        BitRow dst; // shape adopted from the source
        a.aapInto(dst);
        EXPECT_EQ(dst, a) << "w=" << w;
        // Reusing a differently-shaped destination also works.
        BitRow reused(7, true);
        a.aapInto(reused);
        EXPECT_EQ(reused, a) << "w=" << w;
    }
}

TEST(KernelDiff, TransposeMatchesReferenceRandomShapes)
{
    Rng rng(0x7e7);
    for (int round = 0; round < 60; ++round) {
        const size_t lanes = 1 + rng.below(300);
        const size_t n = rng.below(lanes + 1);
        const size_t bits = rng.below(70);
        std::vector<uint64_t> elems(n);
        const uint64_t mask =
            bits >= 64 ? ~0ULL
                       : (bits == 0 ? 0 : (1ULL << bits) - 1);
        for (auto &e : elems)
            e = rng.next() & mask;

        const auto fast = elementsToRows(elems.data(), n, bits, lanes);
        const auto ref =
            refkernel::elementsToRows(elems.data(), n, bits, lanes);
        ASSERT_EQ(fast.size(), ref.size());
        for (size_t j = 0; j < fast.size(); ++j) {
            EXPECT_EQ(fast[j], ref[j])
                << "row " << j << " lanes=" << lanes << " n=" << n
                << " bits=" << bits;
            EXPECT_TRUE(paddingClear(fast[j]));
        }

        EXPECT_EQ(rowsToElements(fast, n),
                  refkernel::rowsToElements(ref, n))
            << "lanes=" << lanes << " n=" << n << " bits=" << bits;
    }
}

TEST(KernelDiff, TransposeZeroAndEdgeShapes)
{
    Rng rng(0xede);
    // Zero bits: no rows.
    EXPECT_TRUE(elementsToRows(nullptr, 0, 0, 64).empty());
    // Zero elements: all-zero rows of the right shape.
    const auto rows = elementsToRows(nullptr, 0, 8, 100);
    ASSERT_EQ(rows.size(), 8u);
    for (const auto &r : rows) {
        EXPECT_EQ(r.width(), 100u);
        EXPECT_TRUE(r.allZero());
    }
    EXPECT_TRUE(rowsToElements(rows, 0).empty());
    // Bit rows beyond 64 are zero (elements are 64-bit).
    std::vector<uint64_t> elems = {rng.next(), rng.next()};
    const auto wide = elementsToRows(elems.data(), 2, 70, 64);
    ASSERT_EQ(wide.size(), 70u);
    for (size_t j = 64; j < 70; ++j)
        EXPECT_TRUE(wide[j].allZero()) << j;
}

/**
 * ReplayPlan vs the seed ControlUnit path on a hand-written μProgram
 * covering every operand kind: data rows, special rows, negated DCC
 * ports, dual destinations, and triple (TRA) sources, across input /
 * output / scratch regions.
 */
TEST(KernelDiff, ReplayPlanMatchesControlUnit)
{
    MicroProgram prog;
    prog.inputRegions = {{"a", 2}, {"b", 1}};
    prog.outputRegions = {{"y", 2}};
    prog.scratchRows = 2;
    // Virtual rows: a=0..1, b=2, y=3..4, scratch=5..6.
    prog.ops = {
        MicroOp::aap(RowAddr::data(0), RowAddr::row(DualAddr::T0T1)),
        MicroOp::aap(RowAddr::data(2), RowAddr::row(SpecialRow::T2)),
        MicroOp::ap(RowAddr::row(TripleAddr::T0T1T2)),
        MicroOp::aap(RowAddr::row(TripleAddr::T0T1T2),
                     RowAddr::data(5)),
        MicroOp::aap(RowAddr::data(1), RowAddr::row(SpecialRow::DCC0N)),
        MicroOp::aap(RowAddr::row(SpecialRow::DCC0N), RowAddr::data(6)),
        MicroOp::aap(RowAddr::data(6), RowAddr::row(SpecialRow::T3)),
        MicroOp::aap(RowAddr::row(TripleAddr::DCC1T0T3),
                     RowAddr::data(3)),
        MicroOp::aap(RowAddr::data(5), RowAddr::data(4)),
    };

    const DramConfig cfg = DramConfig::forTesting(192, 64);
    Subarray ref_sub(cfg);
    Subarray fast_sub(cfg);
    ref_sub.useReferencePath(true);

    Rng rng(0xe41);
    for (size_t row = 0; row < 8; ++row) {
        const BitRow v = randomRow(cfg.rowBits, rng);
        ref_sub.pokeData(row, v);
        fast_sub.pokeData(row, v);
    }

    // Map virtual regions onto the poked rows: rebase inputs/outputs
    // onto rows 0..7 so the initial contents matter.
    const std::vector<uint32_t> bases = {0, 2, 3, 5};

    ControlUnit cu;
    cu.execute(ref_sub, prog, {bases[0], bases[1]}, {bases[2]},
               bases[3]);

    ReplayPlan plan(prog, cfg);
    ASSERT_EQ(plan.regionCount(), bases.size());
    ASSERT_EQ(plan.opCount(), prog.ops.size());
    plan.replay(fast_sub, bases);

    for (size_t row = 0; row < cfg.rowsPerSubarray; ++row)
        ASSERT_EQ(fast_sub.peekData(row), ref_sub.peekData(row))
            << "data row " << row;
    for (SpecialRow s :
         {SpecialRow::T0, SpecialRow::T1, SpecialRow::T2,
          SpecialRow::T3, SpecialRow::DCC0P, SpecialRow::DCC1P})
        EXPECT_EQ(fast_sub.peek(s), ref_sub.peek(s)) << toString(s);

    const DramStats &rs = ref_sub.stats();
    const DramStats &fs = fast_sub.stats();
    EXPECT_EQ(fs.activates, rs.activates);
    EXPECT_EQ(fs.multiActivates, rs.multiActivates);
    EXPECT_EQ(fs.precharges, rs.precharges);
    EXPECT_EQ(fs.aaps, rs.aaps);
    EXPECT_EQ(fs.aps, rs.aps);
    EXPECT_DOUBLE_EQ(fs.latencyNs, rs.latencyNs);
    EXPECT_DOUBLE_EQ(fs.energyPj, rs.energyPj);
}

/** Batched replay across segments sharing a subarray stays exact. */
TEST(KernelDiff, ReplayBatchSharedSubarrayMatchesSerial)
{
    MicroProgram prog;
    prog.inputRegions = {{"a", 2}};
    prog.outputRegions = {{"y", 2}};
    prog.scratchRows = 1;
    prog.ops = {
        MicroOp::aap(RowAddr::data(0), RowAddr::row(DualAddr::T0T1)),
        MicroOp::aap(RowAddr::data(1), RowAddr::row(SpecialRow::T2)),
        MicroOp::aap(RowAddr::row(TripleAddr::T0T1T2),
                     RowAddr::data(2)),
        MicroOp::aap(RowAddr::row(SpecialRow::T0), RowAddr::data(3)),
        MicroOp::aap(RowAddr::data(2), RowAddr::data(4)),
    };

    const DramConfig cfg = DramConfig::forTesting(128, 64);
    Subarray serial(cfg);
    Subarray batched(cfg);
    Rng rng(0xbeb);
    for (size_t row = 0; row < 20; ++row) {
        const BitRow v = randomRow(cfg.rowBits, rng);
        serial.pokeData(row, v);
        batched.pokeData(row, v);
    }

    // Two segments living in the same subarray: rows 0.. and 10.. .
    const std::vector<uint32_t> seg0 = {0, 2, 4};
    const std::vector<uint32_t> seg1 = {10, 12, 14};

    ReplayPlan plan(prog, cfg);
    plan.replay(serial, seg0);
    plan.replay(serial, seg1);

    std::vector<ReplayPlan::SegmentBinding> segs(2);
    segs[0].sub = &batched;
    segs[0].bases = seg0;
    segs[1].sub = &batched;
    segs[1].bases = seg1;
    plan.replayBatch(segs);

    for (size_t row = 0; row < cfg.rowsPerSubarray; ++row)
        ASSERT_EQ(batched.peekData(row), serial.peekData(row))
            << "data row " << row;
    EXPECT_EQ(batched.stats().aaps, serial.stats().aaps);
    EXPECT_DOUBLE_EQ(batched.stats().latencyNs,
                     serial.stats().latencyNs);
    EXPECT_DOUBLE_EQ(batched.stats().energyPj,
                     serial.stats().energyPj);
}

} // namespace
} // namespace simdram
