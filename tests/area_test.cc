/**
 * @file
 * Tests for the analytic area model: the paper's headline claim is
 * that SIMDRAM adds less than 1% DRAM chip area.
 */

#include <gtest/gtest.h>

#include "area/area_model.h"

namespace simdram
{
namespace
{

TEST(Area, DramOverheadBelowOnePercent)
{
    const DramConfig cfg = DramConfig::simdramConfig(16);
    EXPECT_LT(dramOverheadPercent(cfg), 1.0);
    EXPECT_GT(dramOverheadPercent(cfg), 0.0);
}

TEST(Area, ReportContainsAllComponents)
{
    const DramConfig cfg = DramConfig::simdramConfig(1);
    const auto items = areaReport(cfg);
    ASSERT_EQ(items.size(), 7u);
    bool has_trsp = false, has_uprog = false, has_rows = false;
    for (const auto &it : items) {
        if (it.component == "transposition unit")
            has_trsp = true;
        if (it.component.find("μProgram") != std::string::npos)
            has_uprog = true;
        if (it.component.find("rows") != std::string::npos)
            has_rows = true;
        EXPECT_GT(it.areaMm2, 0.0) << it.component;
        EXPECT_GT(it.percent, 0.0) << it.component;
    }
    EXPECT_TRUE(has_trsp);
    EXPECT_TRUE(has_uprog);
    EXPECT_TRUE(has_rows);
}

TEST(Area, MoreRowsPerSubarrayLowersOverhead)
{
    DramConfig small = DramConfig::simdramConfig(1);
    small.rowsPerSubarray = 512;
    DramConfig big = DramConfig::simdramConfig(1);
    big.rowsPerSubarray = 1024;
    EXPECT_GT(dramOverheadPercent(small),
              dramOverheadPercent(big));
}

TEST(Area, ControllerSideIsTiny)
{
    const auto items = areaReport(DramConfig::simdramConfig(1));
    for (const auto &it : items) {
        if (it.component == "TOTAL controller-side") {
            EXPECT_LT(it.percent, 0.1)
                << "controller additions must be well under 0.1% "
                   "of a CPU die";
        }
    }
}

TEST(Area, TotalsAreSumOfParts)
{
    const auto items = areaReport(DramConfig::simdramConfig(1));
    double dram_sum = 0, mc_sum = 0, dram_total = 0, mc_total = 0;
    for (const auto &it : items) {
        if (it.component.rfind("TOTAL", 0) == 0) {
            if (it.where == "DRAM chip")
                dram_total = it.areaMm2;
            else
                mc_total = it.areaMm2;
        } else if (it.where == "DRAM chip") {
            dram_sum += it.areaMm2;
        } else {
            mc_sum += it.areaMm2;
        }
    }
    EXPECT_NEAR(dram_sum, dram_total, 1e-12);
    EXPECT_NEAR(mc_sum, mc_total, 1e-12);
}

} // namespace
} // namespace simdram
