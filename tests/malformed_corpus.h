/**
 * @file
 * The shared malformed/well-formed bbop stream corpus.
 *
 * One malformed stream per validator rule family, plus the two
 * canonical well-formed streams, all shaped against the same
 * five-object table (two 8-bit, one 16-bit, one 1-bit object of
 * kCorpusElements elements, plus one 8-bit object of half that).
 * isa_test runs the corpus through the dispatcher and the stream
 * executor (identical typed rejection on both paths); analysis_test
 * runs it through the static analyzer (the analyzer may only ever be
 * stricter than the validator, never looser).
 */

#ifndef SIMDRAM_TESTS_MALFORMED_CORPUS_H
#define SIMDRAM_TESTS_MALFORMED_CORPUS_H

#include <utility>
#include <vector>

#include "isa/bbop.h"

namespace simdram
{
namespace testcorpus
{

inline constexpr size_t kCorpusElements = 16;

/** The shared object-table shapes: {elements, bits} per object id. */
inline std::vector<std::pair<size_t, size_t>>
corpusShapes()
{
    const size_t n = kCorpusElements;
    return {{n, 8}, {n, 8}, {n, 16}, {n, 1}, {n / 2, 8}};
}

/**
 * Malformed streams, one per validator rule family. Objects: d0/d1
 * 8-bit, d2 16-bit, d3 1-bit (n elements), d4 8-bit (n/2 elements).
 */
inline const std::vector<std::vector<BbopInstr>> &
malformedStreams()
{
    static const std::vector<std::vector<BbopInstr>> bad = {
        // Width range (width 0 / width > 64).
        {[] { auto i = BbopInstr::trsp(0, 8); i.width = 0; return i; }()},
        {[] { auto i = BbopInstr::trsp(0, 8); i.width = 65; return i; }()},
        // Unknown ids in every operand position.
        {BbopInstr::trsp(99, 8)},
        {BbopInstr::trsp(0, 8), BbopInstr::unary(OpKind::Relu, 8, 0, 99)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::binary(OpKind::Add, 8, 0, 1, 99)},
        // Trsp / trsp_inv width and layout.
        {BbopInstr::trsp(0, 16)},
        {BbopInstr::trspInv(0, 8)},
        {BbopInstr::trsp(0, 8), BbopInstr::trspInv(0, 16)},
        // Init width (the unification fix) and immediate. (A bare
        // init needs no preceding trsp: full vertical writes
        // establish the layout — see FullVerticalWritesEstablishLayout.)
        {BbopInstr::trsp(0, 8), BbopInstr::init(0, 8, 0x100)},
        // Shift shape / in-place / width.
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(2, 16),
         BbopInstr::shift(true, 8, 2, 0, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::shift(true, 8, 0, 0, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::shift(false, 16, 0, 1, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(4, 8),
         BbopInstr::shift(true, 8, 0, 4, 1)},
        // Op signature: layout, widths, in-place, element counts,
        // predicate width, unknown operation / opcode.
        {BbopInstr::trsp(0, 8), BbopInstr::unary(OpKind::Relu, 8, 0, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::unary(OpKind::Relu, 16, 0, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::binary(OpKind::Gt, 8, 0, 1, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::binary(OpKind::Add, 8, 0, 0, 1)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::trsp(2, 16),
         BbopInstr::binary(OpKind::Add, 8, 0, 1, 2)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(4, 8),
         BbopInstr::unary(OpKind::Relu, 8, 0, 4)},
        {BbopInstr::trsp(0, 8), BbopInstr::trsp(1, 8),
         BbopInstr::trsp(2, 16),
         BbopInstr::predicated(OpKind::IfElse, 8, 0, 1, 1, 2)},
        {[] {
            auto i = BbopInstr::unary(OpKind::Relu, 8, 0, 1);
            i.op = static_cast<OpKind>(31);
            return i;
        }()},
        {[] {
            auto i = BbopInstr::trsp(0, 8);
            i.opcode = static_cast<BbopOpcode>(9);
            return i;
        }()},
    };
    return bad;
}

/**
 * Well-formed streams against the same table: both validator entry
 * points must accept them, and the analyzer must report zero Error
 * findings (Warnings — e.g. a dead write — are allowed).
 */
inline const std::vector<std::vector<BbopInstr>> &
wellFormedStreams()
{
    static const std::vector<std::vector<BbopInstr>> ok = {
        {BbopInstr::trsp(0, 8),    BbopInstr::trsp(1, 8),
         BbopInstr::trsp(3, 1),    BbopInstr::init(0, 8, 0x2d),
         BbopInstr::binary(OpKind::Add, 8, 1, 0, 0),
         BbopInstr::binary(OpKind::Gt, 8, 3, 0, 1),
         BbopInstr::shift(true, 8, 1, 0, 2),
         BbopInstr::predicated(OpKind::IfElse, 8, 1, 0, 0, 3),
         BbopInstr::trspInv(1, 8)},
        // Every destination established by a full vertical write
        // (shift, op, init), no trsp required first.
        {BbopInstr::trsp(1, 8),
         BbopInstr::shift(true, 8, 0, 1, 2),
         BbopInstr::binary(OpKind::Gt, 8, 3, 0, 1),
         BbopInstr::init(2, 16, 7),
         BbopInstr::trspInv(3, 1)},
    };
    return ok;
}

} // namespace testcorpus
} // namespace simdram

#endif // SIMDRAM_TESTS_MALFORMED_CORPUS_H
