/**
 * @file
 * Unit tests for BitRow, the packed row representation underlying the
 * whole functional simulator.
 */

#include <gtest/gtest.h>

#include "common/bitrow.h"

namespace simdram
{
namespace
{

TEST(BitRow, DefaultIsEmpty)
{
    BitRow r;
    EXPECT_EQ(r.width(), 0u);
    EXPECT_EQ(r.wordCount(), 0u);
    EXPECT_TRUE(r.allZero());
}

TEST(BitRow, ConstructZeroFilled)
{
    BitRow r(130);
    EXPECT_EQ(r.width(), 130u);
    EXPECT_EQ(r.wordCount(), 3u);
    EXPECT_TRUE(r.allZero());
    EXPECT_FALSE(r.allOne());
    EXPECT_EQ(r.popcount(), 0u);
}

TEST(BitRow, ConstructOneFilledRespectsPadding)
{
    BitRow r(70, true);
    EXPECT_TRUE(r.allOne());
    EXPECT_EQ(r.popcount(), 70u);
    // Padding bits in the last word must stay zero.
    EXPECT_EQ(r.word(1), (1ULL << 6) - 1);
}

TEST(BitRow, SetGetRoundTrip)
{
    BitRow r(100);
    r.set(0, true);
    r.set(63, true);
    r.set(64, true);
    r.set(99, true);
    EXPECT_TRUE(r.get(0));
    EXPECT_TRUE(r.get(63));
    EXPECT_TRUE(r.get(64));
    EXPECT_TRUE(r.get(99));
    EXPECT_FALSE(r.get(1));
    EXPECT_EQ(r.popcount(), 4u);
    r.set(63, false);
    EXPECT_FALSE(r.get(63));
    EXPECT_EQ(r.popcount(), 3u);
}

TEST(BitRow, FillChangesEverything)
{
    BitRow r(65);
    r.fill(true);
    EXPECT_TRUE(r.allOne());
    r.fill(false);
    EXPECT_TRUE(r.allZero());
}

TEST(BitRow, InvertRespectsPadding)
{
    BitRow r(65);
    r.set(3, true);
    r.invert();
    EXPECT_FALSE(r.get(3));
    EXPECT_TRUE(r.get(0));
    EXPECT_EQ(r.popcount(), 64u);
    // Double inversion restores.
    r.invert();
    EXPECT_EQ(r.popcount(), 1u);
}

TEST(BitRow, BitwiseOperators)
{
    BitRow a(8), b(8);
    a.set(0, true);
    a.set(1, true);
    b.set(1, true);
    b.set(2, true);

    const BitRow and_r = a & b;
    const BitRow or_r = a | b;
    const BitRow xor_r = a ^ b;
    EXPECT_EQ(and_r.popcount(), 1u);
    EXPECT_TRUE(and_r.get(1));
    EXPECT_EQ(or_r.popcount(), 3u);
    EXPECT_EQ(xor_r.popcount(), 2u);
    EXPECT_TRUE(xor_r.get(0));
    EXPECT_TRUE(xor_r.get(2));
}

TEST(BitRow, EqualityOperator)
{
    BitRow a(10), b(10);
    EXPECT_EQ(a, b);
    a.set(5, true);
    EXPECT_NE(a, b);
    b.set(5, true);
    EXPECT_EQ(a, b);
}

TEST(BitRow, Majority3TruthTable)
{
    // All eight input combinations, one per lane.
    BitRow a(8), b(8), c(8);
    for (size_t i = 0; i < 8; ++i) {
        a.set(i, i & 1);
        b.set(i, i & 2);
        c.set(i, i & 4);
    }
    const BitRow m = BitRow::majority3(a, b, c);
    for (size_t i = 0; i < 8; ++i) {
        const int ones = ((i >> 0) & 1) + ((i >> 1) & 1) +
                         ((i >> 2) & 1);
        EXPECT_EQ(m.get(i), ones >= 2) << "lane " << i;
    }
}

TEST(BitRow, Majority3IsSymmetric)
{
    BitRow a(64), b(64), c(64);
    for (size_t i = 0; i < 64; ++i) {
        a.set(i, (i * 7) % 3 == 0);
        b.set(i, (i * 5) % 4 == 1);
        c.set(i, (i * 3) % 5 == 2);
    }
    const BitRow m1 = BitRow::majority3(a, b, c);
    const BitRow m2 = BitRow::majority3(c, a, b);
    const BitRow m3 = BitRow::majority3(b, c, a);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(m1, m3);
}

TEST(BitRow, SelectMuxesPerLane)
{
    BitRow sel(4), t(4), f(4);
    sel.set(0, true);
    sel.set(2, true);
    t.fill(true);
    const BitRow r = BitRow::select(sel, t, f);
    EXPECT_TRUE(r.get(0));
    EXPECT_FALSE(r.get(1));
    EXPECT_TRUE(r.get(2));
    EXPECT_FALSE(r.get(3));
}

TEST(BitRow, ToStringLsbFirst)
{
    BitRow r(6);
    r.set(0, true);
    r.set(3, true);
    EXPECT_EQ(r.toString(), "100100");
}

TEST(BitRow, ToStringTruncates)
{
    BitRow r(100, true);
    const std::string s = r.toString(10);
    EXPECT_EQ(s, "1111111111...");
}

TEST(BitRow, MajorityMatchesBooleanFormula)
{
    // MAJ(a,b,c) == ab | bc | ac on random words.
    BitRow a(192), b(192), c(192);
    uint64_t x = 0x243f6a8885a308d3ULL;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (size_t w = 0; w < a.wordCount(); ++w) {
        a.setWord(w, next());
        b.setWord(w, next());
        c.setWord(w, next());
    }
    const BitRow m = BitRow::majority3(a, b, c);
    const BitRow formula = (a & b) | (b & c) | (a & c);
    EXPECT_EQ(m, formula);
}

} // namespace
} // namespace simdram
