/**
 * @file
 * Unit tests for circuit simulation and the vertical packing helpers.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "logic/simulate.h"

namespace simdram
{
namespace
{

BitRow
rowOf(std::initializer_list<int> bits)
{
    BitRow r(bits.size());
    size_t i = 0;
    for (int b : bits)
        r.set(i++, b != 0);
    return r;
}

TEST(Simulate, AndGateTruthTable)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkAnd(a, b));
    const auto out = simulate(c, {rowOf({0, 0, 1, 1}),
                                  rowOf({0, 1, 0, 1})});
    EXPECT_EQ(out[0], rowOf({0, 0, 0, 1}));
}

TEST(Simulate, OrGateTruthTable)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkOr(a, b));
    const auto out = simulate(c, {rowOf({0, 0, 1, 1}),
                                  rowOf({0, 1, 0, 1})});
    EXPECT_EQ(out[0], rowOf({0, 1, 1, 1}));
}

TEST(Simulate, MajGateTruthTable)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit x = c.addInput("x");
    c.addOutput("y", c.mkMaj(a, b, x));
    const auto out = simulate(c, {rowOf({0, 1, 0, 1, 0, 1, 0, 1}),
                                  rowOf({0, 0, 1, 1, 0, 0, 1, 1}),
                                  rowOf({0, 0, 0, 0, 1, 1, 1, 1})});
    EXPECT_EQ(out[0], rowOf({0, 0, 0, 1, 0, 1, 1, 1}));
}

TEST(Simulate, ComplementedEdgesAndOutputs)
{
    Circuit c;
    const Lit a = c.addInput("a");
    c.addOutput("y", Circuit::litNot(a));
    const auto out = simulate(c, {rowOf({0, 1})});
    EXPECT_EQ(out[0], rowOf({1, 0}));
}

TEST(Simulate, ConstantOutput)
{
    Circuit c;
    c.addInput("a");
    c.addOutput("zero", Circuit::kLit0);
    c.addOutput("one", Circuit::kLit1);
    const auto out = simulate(c, {rowOf({0, 1, 0})});
    EXPECT_TRUE(out[0].allZero());
    EXPECT_TRUE(out[1].allOne());
}

TEST(Simulate, RejectsWrongInputCount)
{
    Circuit c;
    c.addInput("a");
    c.addOutput("y", Circuit::kLit0);
    EXPECT_THROW(simulate(c, {}), FatalError);
}

TEST(Simulate, RejectsMismatchedWidths)
{
    Circuit c;
    c.addInput("a");
    c.addInput("b");
    c.addOutput("y", Circuit::kLit0);
    EXPECT_THROW(simulate(c, {BitRow(4), BitRow(8)}), FatalError);
}

TEST(PackVertical, RoundTrip)
{
    const std::vector<uint64_t> elems = {0, 1, 5, 255, 170, 3};
    const auto rows = packVertical(elems, 8);
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(unpackVertical(rows), elems);
}

TEST(PackVertical, RowJHoldsBitJ)
{
    const std::vector<uint64_t> elems = {0b01, 0b10, 0b11};
    const auto rows = packVertical(elems, 2);
    EXPECT_TRUE(rows[0].get(0));
    EXPECT_FALSE(rows[0].get(1));
    EXPECT_TRUE(rows[0].get(2));
    EXPECT_FALSE(rows[1].get(0));
    EXPECT_TRUE(rows[1].get(1));
    EXPECT_TRUE(rows[1].get(2));
}

TEST(SimulateBuses, RippleAdderOnBuses)
{
    // Build a 4-bit adder directly from full adders.
    Circuit c;
    const auto a = c.addInputBus("a", 4);
    const auto b = c.addInputBus("b", 4);
    std::vector<Lit> sum(4);
    Lit carry = Circuit::kLit0;
    for (int i = 0; i < 4; ++i) {
        const Lit cout = c.mkMaj(a[i], b[i], carry);
        const Lit inner = c.mkMaj(a[i], b[i], Circuit::litNot(carry));
        sum[i] = c.mkMaj(Circuit::litNot(cout), inner, carry);
        carry = cout;
    }
    c.addOutputBus("y", sum);

    std::map<std::string, std::vector<uint64_t>> in;
    in["a"] = {0, 3, 7, 15, 9};
    in["b"] = {0, 5, 9, 1, 9};
    const auto out = simulateBuses(c, in, 5);
    const std::vector<uint64_t> expect = {0, 8, 0, 0, 2}; // mod 16
    EXPECT_EQ(out.at("y"), expect);
}

TEST(SimulateBuses, MissingBusRejected)
{
    Circuit c;
    c.addInputBus("a", 2);
    c.addOutputBus("y", *c.inputBus("a"));
    std::map<std::string, std::vector<uint64_t>> in;
    EXPECT_THROW(simulateBuses(c, in, 1), FatalError);
}

} // namespace
} // namespace simdram
