/**
 * @file
 * Tests for the MIG-to-μProgram compiler (framework step 2): the
 * compiled command sequences must compute the right values on the
 * DRAM model, respect the scratch budget, and cost what the analytic
 * model says they cost.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "exec/control_unit.h"
#include "logic/simulate.h"
#include "ops/library.h"
#include "uprog/allocator.h"

namespace simdram
{
namespace
{

/**
 * Executes @p prog on a fresh subarray with vertically packed
 * random inputs and returns the output elements, checking the
 * analytic cost model against the subarray's accounting.
 */
std::vector<uint64_t>
runProgram(const Circuit & /*circuit*/, const MicroProgram &prog,
           const std::map<std::string, std::vector<uint64_t>> &ins,
           size_t lanes)
{
    DramConfig cfg = DramConfig::forTesting(256, 512);
    cfg.scratchRows = 160;
    Subarray sub(cfg);

    // Bind regions bottom-up: inputs, then outputs, then scratch at
    // the fixed scratch base.
    std::vector<uint32_t> in_bases, out_bases;
    uint32_t next = 0;
    for (const auto &r : prog.inputRegions) {
        in_bases.push_back(next);
        const auto rows = packVertical(ins.at(r.name), r.rows);
        for (size_t j = 0; j < r.rows; ++j) {
            BitRow padded(cfg.rowBits);
            for (size_t i = 0; i < lanes; ++i)
                padded.set(i, rows[j].get(i));
            sub.pokeData(next + j, padded);
        }
        next += static_cast<uint32_t>(r.rows);
    }
    for (const auto &r : prog.outputRegions) {
        out_bases.push_back(next);
        next += static_cast<uint32_t>(r.rows);
    }
    const uint32_t scratch_base = static_cast<uint32_t>(
        cfg.rowsPerSubarray - cfg.scratchRows);
    EXPECT_LE(prog.scratchRows, cfg.scratchRows);

    ControlUnit cu;
    cu.execute(sub, prog, in_bases, out_bases, scratch_base);

    // Analytic model must match the functional accounting exactly.
    const DramStats &s = sub.stats();
    EXPECT_EQ(s.aaps, prog.aapCount());
    EXPECT_EQ(s.aps, prog.apCount());
    EXPECT_DOUBLE_EQ(s.latencyNs, prog.latencyNs(cfg.timing));
    EXPECT_DOUBLE_EQ(s.energyPj, prog.energyPj(cfg));

    // Collect outputs.
    std::vector<BitRow> out_rows;
    const size_t out_width = prog.outputRowCount();
    for (size_t j = 0; j < out_width; ++j) {
        BitRow r(lanes);
        const BitRow &full = sub.peekData(out_bases[0] + j);
        for (size_t i = 0; i < lanes; ++i)
            r.set(i, full.get(i));
        out_rows.push_back(r);
    }
    return unpackVertical(out_rows);
}

TEST(Compiler, RejectsNonMig)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkAnd(a, b));
    EXPECT_THROW(compileMig(c), FatalError);
}

TEST(Compiler, SingleMajIsFourMacroOps)
{
    Circuit c;
    const auto a = c.addInputBus("a", 1);
    const auto b = c.addInputBus("b", 1);
    c.addOutputBus("y", {c.mkMaj(a[0], b[0], Circuit::kLit0)});
    CompileReport rep;
    const auto prog = compileMig(c, {}, &rep);
    // Two operand loads + one constant load + one merged TRA/copy.
    EXPECT_EQ(rep.aaps + rep.aps, 4u);
    EXPECT_EQ(rep.migGates, 1u);
}

TEST(Compiler, ReportMatchesProgram)
{
    OperationLibrary lib;
    CompileReport rep;
    const auto prog = compileMig(lib.mig(OpKind::Add, 8), {}, &rep);
    EXPECT_EQ(rep.aaps, prog.aapCount());
    EXPECT_EQ(rep.aps, prog.apCount());
    EXPECT_EQ(rep.scratchRows, prog.scratchRows);
}

TEST(Compiler, GreedyBeatsNaive)
{
    OperationLibrary lib;
    for (OpKind op : {OpKind::Add, OpKind::Mul, OpKind::Gt,
                      OpKind::Bitcount}) {
        CompileReport greedy_rep, naive_rep;
        compileMig(lib.mig(op, 16), {}, &greedy_rep);
        CompileOptions naive;
        naive.greedy = false;
        compileMig(lib.mig(op, 16), naive, &naive_rep);
        EXPECT_LT(greedy_rep.aaps + greedy_rep.aps,
                  naive_rep.aaps + naive_rep.aps)
            << toString(op);
    }
}

TEST(Compiler, ScratchBudgetEnforced)
{
    OperationLibrary lib;
    CompileOptions opts;
    opts.maxScratchRows = 1;
    EXPECT_THROW(compileMig(lib.mig(OpKind::Mul, 16), opts),
                 FatalError);
}

TEST(Compiler, ProgramListingIsReadable)
{
    OperationLibrary lib;
    const auto prog = compileMig(lib.mig(OpKind::Add, 4));
    const std::string s = prog.toString();
    EXPECT_NE(s.find("AAP"), std::string::npos);
    EXPECT_NE(s.find("TRA"), std::string::npos);
    EXPECT_NE(s.find("inputs: a[4] b[4]"), std::string::npos);
}

TEST(Compiler, VirtualRowLayout)
{
    OperationLibrary lib;
    const auto prog = compileMig(lib.mig(OpKind::Add, 8));
    EXPECT_EQ(prog.inputRowCount(), 16u);
    EXPECT_EQ(prog.outputRowCount(), 8u);
    EXPECT_EQ(prog.virtualRowCount(),
              24u + prog.scratchRows);
}

TEST(EstimateCompute, ScalesWithSegmentsAndBanks)
{
    OperationLibrary lib;
    const auto prog = compileMig(lib.mig(OpKind::Add, 8));
    DramConfig cfg = DramConfig::simdramConfig(4);

    const auto one = estimateCompute(prog, cfg.rowBits, cfg);
    const auto four = estimateCompute(prog, 4 * cfg.rowBits, cfg);
    const auto five = estimateCompute(prog, 5 * cfg.rowBits, cfg);
    // Four segments across four banks: same latency, 4x energy.
    EXPECT_DOUBLE_EQ(four.latencyNs, one.latencyNs);
    EXPECT_DOUBLE_EQ(four.energyPj, 4 * one.energyPj);
    // Fifth segment serializes behind a bank.
    EXPECT_DOUBLE_EQ(five.latencyNs, 2 * one.latencyNs);
}

/** End-to-end functional check per (op, width, policy). */
class CompiledOpTest
    : public ::testing::TestWithParam<
          std::tuple<OpKind, size_t, bool>>
{
};

TEST_P(CompiledOpTest, ComputesReferenceValues)
{
    const auto [op, width, greedy] = GetParam();
    OperationLibrary lib;
    const Circuit &mig = lib.mig(op, width);
    CompileOptions opts;
    opts.greedy = greedy;
    const auto prog = compileMig(mig, opts);

    const auto sig = signatureOf(op, width);
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    Rng rng(0xabc + width + (greedy ? 1 : 0));
    const size_t lanes = 200;
    std::map<std::string, std::vector<uint64_t>> in;
    for (size_t i = 0; i < lanes; ++i) {
        in["a"].push_back(rng.next() & mask);
        if (sig.numInputs == 2)
            in["b"].push_back(rng.next() & mask);
        if (sig.hasSel)
            in["sel"].push_back(rng.next() & 1);
    }

    const auto got = runProgram(mig, prog, in, lanes);
    ASSERT_EQ(got.size(), lanes);
    for (size_t i = 0; i < lanes; ++i) {
        const uint64_t expect = referenceOp(
            op, width, in["a"][i],
            sig.numInputs == 2 ? in["b"][i] : 0,
            sig.hasSel ? in["sel"][i] != 0 : false);
        ASSERT_EQ(got[i], expect)
            << toString(op) << " w=" << width << " lane " << i
            << " greedy=" << greedy;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CompiledOpTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{4}, size_t{8}),
                       ::testing::Bool()),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_greedy" : "_naive");
    });

} // namespace
} // namespace simdram
