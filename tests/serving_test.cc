/**
 * @file
 * Tests for the serving front-end (src/serve): per-request results
 * bit-exact against unbatched and host references, the typed
 * side-effect-free shed path, deadline-linger flush determinism, the
 * corrected StreamResult wallNs/e2eNs semantics under Block
 * backpressure, the latency histogram's bucket math and quantile
 * accuracy, and a getter-vs-submitter hammer for the executor's
 * lifetime counters. Runs under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/stream_executor.h"
#include "serve/latency_histogram.h"
#include "serve/request_coalescer.h"
#include "serve/workloads.h"
#include "stream_testutil.h"
#include "tenant/tenant_executor.h"

namespace simdram
{
namespace
{

using testutil::randomData;
using testutil::testCfg;

KnnServeSpec
knnSpec()
{
    return KnnServeSpec{/*refs=*/96, /*dims=*/4, /*bits=*/16};
}

std::vector<std::vector<uint64_t>>
knnRefs(const KnnServeSpec &spec, uint64_t seed)
{
    std::vector<std::vector<uint64_t>> cols;
    for (size_t d = 0; d < spec.dims; ++d)
        cols.push_back(randomData(spec.refs, 0xff, seed + d));
    return cols;
}

std::vector<uint64_t>
knnCoords(const KnnServeSpec &spec, uint64_t seed)
{
    return randomData(spec.dims, 0xff, seed);
}

// ---- bit-exactness: batched == unbatched == host --------------------

TEST(Serving, BatchedKnnResultsBitExactVsUnbatchedAndHost)
{
    const KnnServeSpec spec = knnSpec();
    const auto refs = knnRefs(spec, 11);
    constexpr size_t kRequests = 10; // 2 full batches + a partial

    // Batched side: 4-way coalescing, zero linger (flush as soon as
    // the dispatcher sees work) — partial batches still come out.
    DeviceGroup gb(testCfg(), 2);
    StreamExecutor exb(gb);
    RequestCoalescer batched(
        exb, CoalescerOptions{/*maxBatch=*/4, /*maxLingerUs=*/0.0,
                              /*maxPending=*/0,
                              AdmissionPolicy::Shed});
    const uint32_t clsB = batched.registerClass(
        knnQueryClass(spec, refs));

    // Unbatched side: same classes, batch capacity 1 — every request
    // runs alone, the per-request baseline.
    DeviceGroup gu(testCfg(), 2);
    StreamExecutor exu(gu);
    RequestCoalescer unbatched(
        exu, CoalescerOptions{/*maxBatch=*/1, /*maxLingerUs=*/0.0,
                              /*maxPending=*/0,
                              AdmissionPolicy::Shed});
    const uint32_t clsU = unbatched.registerClass(
        knnQueryClass(spec, refs));

    std::vector<std::vector<uint64_t>> queries;
    std::vector<ServeFuture> fb, fu;
    for (size_t r = 0; r < kRequests; ++r) {
        queries.push_back(knnCoords(spec, 100 + r));
        fb.push_back(batched.submit(
            clsB, knnQueryRequest(spec, queries.back())));
        fu.push_back(unbatched.submit(
            clsU, knnQueryRequest(spec, queries.back())));
    }
    for (size_t r = 0; r < kRequests; ++r) {
        const ServeResult rb = fb[r].wait();
        const ServeResult ru = fu[r].wait();
        const auto host = knnQueryHost(spec, refs, queries[r]);
        ASSERT_EQ(rb.output.size(), spec.refs);
        EXPECT_EQ(rb.output, host) << "batched vs host, req " << r;
        EXPECT_EQ(ru.output, host) << "unbatched vs host, req " << r;
        EXPECT_GE(rb.batchSize, 1u);
        EXPECT_LE(rb.batchSize, 4u);
        EXPECT_EQ(ru.batchSize, 1u);
        EXPECT_GE(rb.totalNs, rb.executeNs);
        EXPECT_GE(rb.batchStreams, 1u);
    }
    EXPECT_EQ(batched.completedRequests(), kRequests);
    EXPECT_EQ(batched.latency().count(), kRequests);
    EXPECT_GE(batched.dispatchedBatches(), 3u); // ceil(10/4)
    // Coalescing actually coalesced: fewer batches than requests.
    EXPECT_LT(batched.dispatchedBatches(),
              unbatched.dispatchedBatches());
}

TEST(Serving, BrightnessAndTpchClassesMatchHost)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/3, /*maxLingerUs=*/0.0,
                             /*maxPending=*/0,
                             AdmissionPolicy::Shed});

    const BrightnessTileSpec bspec{/*pixels=*/64, /*bits=*/16,
                                   /*cap=*/240};
    const TpchFilterSpec tspec{/*rows=*/80, /*bits=*/32};
    const uint32_t bcls = co.registerClass(brightnessTileClass(bspec));
    const uint32_t tcls = co.registerClass(tpchFilterClass(tspec));

    // Interleave the two classes: they must never mix batches.
    std::vector<ServeFuture> bf, tf;
    std::vector<std::vector<uint64_t>> tiles, chunks;
    for (size_t r = 0; r < 5; ++r) {
        tiles.push_back(randomData(bspec.pixels, 0xff, 30 + r));
        chunks.push_back(randomData(tspec.rows, 0xffff, 60 + r));
        bf.push_back(co.submit(
            bcls, brightnessTileRequest(bspec, tiles.back(),
                                        /*delta=*/20 + r)));
        tf.push_back(co.submit(
            tcls, tpchFilterRequest(tspec, chunks.back(),
                                    /*threshold=*/0x8000)));
    }
    for (size_t r = 0; r < 5; ++r) {
        EXPECT_EQ(bf[r].wait().output,
                  brightnessTileHost(bspec, tiles[r], 20 + r));
        EXPECT_EQ(tf[r].wait().output,
                  tpchFilterHost(tspec, chunks[r], 0x8000));
    }
    EXPECT_EQ(co.completedRequests(), 10u);
}

// ---- admission control ----------------------------------------------

TEST(Serving, ShedPathIsTypedAndSideEffectFree)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    // Batch capacity above the offered load + huge linger: admitted
    // requests stay pending until an explicit flush, so the budget
    // deterministically fills.
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/8,
                             /*maxLingerUs=*/60e6,
                             /*maxPending=*/2,
                             AdmissionPolicy::Shed});
    const TpchFilterSpec spec{/*rows=*/32, /*bits=*/16};
    const uint32_t cls = co.registerClass(tpchFilterClass(spec));

    const auto c0 = randomData(spec.rows, 0xfff, 1);
    const auto c1 = randomData(spec.rows, 0xfff, 2);
    ServeFuture f0 = co.submit(cls, tpchFilterRequest(spec, c0, 100));
    ServeFuture f1 = co.submit(cls, tpchFilterRequest(spec, c1, 200));
    EXPECT_EQ(co.pendingRequests(), 2u);

    // Budget full: the third submit sheds with the TYPED error...
    EXPECT_THROW(co.submit(cls, tpchFilterRequest(spec, c0, 300)),
                 RequestShedError);
    // ...and RequestShedError is not a BbopError (the caller can
    // tell "saturated" from "malformed").
    try {
        co.submit(cls, tpchFilterRequest(spec, c0, 300));
        FAIL() << "expected shed";
    } catch (const RequestShedError &e) {
        EXPECT_NE(std::string(e.what()).find("budget"),
                  std::string::npos);
    }
    EXPECT_EQ(co.shedRequests(), 2u);
    // Zero side effects: nothing extra admitted or batched.
    EXPECT_EQ(co.pendingRequests(), 2u);

    // The admitted requests still complete, correctly.
    co.flush();
    EXPECT_EQ(f0.wait().output, tpchFilterHost(spec, c0, 100));
    EXPECT_EQ(f1.wait().output, tpchFilterHost(spec, c1, 200));

    // The coalescer remains fully usable after shedding.
    ServeFuture f2 = co.submit(cls, tpchFilterRequest(spec, c1, 50));
    co.flush();
    EXPECT_EQ(f2.wait().output, tpchFilterHost(spec, c1, 50));
    EXPECT_EQ(co.completedRequests(), 3u);
    EXPECT_EQ(co.shedRequests(), 2u);
}

// ---- batching policy: deadline linger -------------------------------

TEST(Serving, LingerDeadlineFlushesPartialBatchWithoutFlushCall)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    // Capacity far above the offered load: only the linger deadline
    // can close the batch.
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/16,
                             /*maxLingerUs=*/50e3, // 50 ms
                             /*maxPending=*/0,
                             AdmissionPolicy::Shed});
    const BrightnessTileSpec spec{/*pixels=*/32, /*bits=*/16,
                                  /*cap=*/200};
    const uint32_t cls = co.registerClass(brightnessTileClass(spec));

    std::vector<std::vector<uint64_t>> tiles;
    std::vector<ServeFuture> fs;
    for (size_t r = 0; r < 3; ++r) {
        tiles.push_back(randomData(spec.pixels, 0xff, 7 + r));
        fs.push_back(co.submit(
            cls, brightnessTileRequest(spec, tiles[r], 10)));
    }
    // No flush(): completion must come from the deadline alone, and
    // all three requests ride ONE batch (deterministic: they were
    // all admitted long before the 50 ms deadline expired).
    for (size_t r = 0; r < 3; ++r) {
        const ServeResult res = fs[r].wait();
        EXPECT_EQ(res.output,
                  brightnessTileHost(spec, tiles[r], 10));
        EXPECT_EQ(res.batchSize, 3u);
        // The linger shows up in the queue share of the breakdown.
        EXPECT_GE(res.queueNs, 10e6); // well above 10 ms
        EXPECT_GE(res.totalNs, res.queueNs);
    }
    EXPECT_EQ(co.dispatchedBatches(), 1u);
}

// ---- satellite 1: wallNs is true end-to-end -------------------------

/** Pins device @p d's mutex from a dedicated thread (copied from
 *  runtime_test) to deterministically stall that device's worker. */
class DevicePin
{
  public:
    DevicePin(DeviceGroup &g, size_t d)
    {
        th_ = std::thread([&g, d, this] {
            auto hold = g.lockDevice(d);
            std::unique_lock<std::mutex> lock(mu_);
            pinned_ = true;
            cv_.notify_all();
            cv_.wait(lock, [&] { return released_; });
        });
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return pinned_; });
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            released_ = true;
        }
        cv_.notify_all();
        th_.join();
    }

    ~DevicePin()
    {
        if (th_.joinable())
            release();
    }

  private:
    std::thread th_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool pinned_ = false, released_ = false;
};

TEST(Serving, WallNsIncludesBlockBackpressureWait)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g, {/*maxQueuedStreams=*/1,
                          BackpressurePolicy::Block});
    const size_t n = 64;
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, randomData(n, 0xff, 3));

    DevicePin pin(g, 0);
    // Stream A: the worker pops it and stalls on the pinned device.
    StreamHandle ha = ex.submit({BbopInstr::trsp(a, 8),
                                 BbopInstr::trsp(y, 8)});
    // Stream B fills the (bound-1) queue once A is in flight; poll
    // until the submit no longer blocks instantly.
    StreamHandle hb = ex.submit(
        {BbopInstr::binary(OpKind::Add, 8, y, a, a)});

    // Stream C must Block-wait in submit() until the pin releases.
    std::atomic<bool> submitted{false};
    StreamHandle hc;
    std::thread blocked([&] {
        hc = ex.submit({BbopInstr::trspInv(y, 8)});
        submitted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(submitted.load()); // genuinely blocked
    pin.release();
    blocked.join();

    const StreamResult rc = hc.wait();
    // The blocked stream spent >= ~60 ms in admission; both the
    // breakdown AND the end-to-end wall time must show it.
    EXPECT_GE(rc.backpressureWaitNs, 40e6);
    EXPECT_GE(rc.wallNs, rc.backpressureWaitNs);
    EXPECT_EQ(rc.e2eNs(), rc.wallNs);
    EXPECT_GE(rc.serviceNs(), 0.0);
    EXPECT_LE(rc.serviceNs(), rc.wallNs);
    EXPECT_NEAR(rc.serviceNs(),
                rc.wallNs - rc.backpressureWaitNs, 1.0);

    // The invariant holds for every stream, blocked or not.
    for (const StreamHandle *h : {&ha, &hb, &hc}) {
        const StreamResult r =
            const_cast<StreamHandle *>(h)->wait();
        EXPECT_GE(r.e2eNs(), r.backpressureWaitNs);
        EXPECT_GE(r.wallNs, 0.0);
    }
}

// ---- satellite 2: counter getters vs concurrent submitters ----------

TEST(Serving, LifetimeCounterGettersAreRaceFreeUnderHammer)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutorOptions opts;
    opts.enableStreamCache = true;
    StreamExecutor ex(g, opts);
    const size_t n = 128;

    constexpr size_t kSubmitters = 2, kRounds = 25;
    std::vector<uint16_t> objs;
    for (size_t t = 0; t < kSubmitters; ++t) {
        objs.push_back(ex.defineObject(n, 8)); // src
        objs.push_back(ex.defineObject(n, 8)); // dst
        ex.writeObject(objs[2 * t], randomData(n, 0xff, t));
    }

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r)
        readers.emplace_back([&] {
            uint64_t sink = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                sink += ex.queueHighWatermark();
                sink += ex.cacheHits();
                sink += ex.cacheTrspHits();
                sink += ex.cacheInitHits();
                sink += ex.optimizedInstructionCount();
            }
            // Keep the loop observable so it cannot be elided.
            EXPECT_GE(sink, 0u);
        });

    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t)
        submitters.emplace_back([&, t] {
            const uint16_t src = objs[2 * t], dst = objs[2 * t + 1];
            // Repeated trsp's of the same object exercise the cache
            // counters while the readers spin.
            for (size_t i = 0; i < kRounds; ++i)
                ex.submit({BbopInstr::trsp(src, 8),
                           BbopInstr::trsp(dst, 8),
                           BbopInstr::binary(OpKind::Add, 8, dst,
                                             src, src)})
                    .wait();
        });
    for (auto &th : submitters)
        th.join();
    stop.store(true);
    for (auto &th : readers)
        th.join();

    EXPECT_GE(ex.cacheTrspHits(), 1u);
    EXPECT_EQ(ex.cacheHits(),
              ex.cacheTrspHits() + ex.cacheInitHits());
}

// ---- histogram ------------------------------------------------------

TEST(LatencyHistogram, BucketBoundsContainTheirValues)
{
    for (uint64_t v : {0ULL, 1ULL, 7ULL, 8ULL, 9ULL, 100ULL,
                       1000ULL, 123456ULL, 1ULL << 40,
                       (1ULL << 40) + 12345ULL, ~0ULL}) {
        const size_t idx = LatencyHistogram::bucketOf(v);
        ASSERT_LT(idx, LatencyHistogram::kBuckets) << v;
        EXPECT_LE(LatencyHistogram::bucketLowNs(idx), v) << v;
        if (v == ~0ULL) // top bucket's bound saturates at max
            EXPECT_EQ(LatencyHistogram::bucketHighNs(idx), v);
        else
            EXPECT_GT(LatencyHistogram::bucketHighNs(idx), v) << v;
    }
    // Buckets tile the range: consecutive bounds meet exactly.
    for (size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i)
        ASSERT_EQ(LatencyHistogram::bucketHighNs(i),
                  LatencyHistogram::bucketLowNs(i + 1))
            << i;
}

TEST(LatencyHistogram, QuantilesWithinLogLinearError)
{
    LatencyHistogram h;
    // 98 fast samples at 10 us, 1 at 1 ms, 1 at 100 ms: the quantile
    // ranks (ceil(q * 100)) land at samples 50, 99, and 100.
    for (int i = 0; i < 98; ++i)
        h.record(10e3);
    h.record(1e6);
    h.record(100e6);
    EXPECT_EQ(h.count(), 100u);
    // Log-linear buckets bound relative error at 2^-3 = 12.5%.
    EXPECT_NEAR(h.p50(), 10e3, 10e3 * 0.125);
    EXPECT_NEAR(h.p99(), 1e6, 1e6 * 0.125);
    EXPECT_NEAR(h.p999(), 100e6, 100e6 * 0.125);
    EXPECT_DOUBLE_EQ(h.maxNs(), 100e6);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAllCounted)
{
    LatencyHistogram h;
    constexpr int kThreads = 4, kPer = 5000;
    std::vector<std::thread> ths;
    for (int t = 0; t < kThreads; ++t)
        ths.emplace_back([&h, t] {
            for (int i = 0; i < kPer; ++i)
                h.record(1e3 * (t + 1));
        });
    for (auto &th : ths)
        th.join();
    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPer);
    EXPECT_DOUBLE_EQ(h.maxNs(), 4e3);
    EXPECT_GE(h.p999(), h.p50());
}

// ---- coalescer under concurrent submitters (TSan food) --------------

TEST(Serving, ConcurrentSubmittersEachGetTheirOwnResult)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/4, /*maxLingerUs=*/500.0,
                             /*maxPending=*/16,
                             AdmissionPolicy::Block});
    const TpchFilterSpec spec{/*rows=*/48, /*bits=*/16};
    const uint32_t cls = co.registerClass(tpchFilterClass(spec));

    constexpr size_t kThreads = 4, kPer = 6;
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> ths;
    for (size_t t = 0; t < kThreads; ++t)
        ths.emplace_back([&, t] {
            for (size_t i = 0; i < kPer; ++i) {
                const auto col =
                    randomData(spec.rows, 0xfff, t * 100 + i);
                const uint64_t thr = 0x700 + t * 16 + i;
                ServeFuture f = co.submit(
                    cls, tpchFilterRequest(spec, col, thr));
                if (f.wait().output !=
                    tpchFilterHost(spec, col, thr))
                    mismatches.fetch_add(1);
            }
        });
    for (auto &th : ths)
        th.join();
    co.drain(); // settle the pending counter before inspecting it
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(co.completedRequests(), kThreads * kPer);
    EXPECT_EQ(co.latency().count(), kThreads * kPer);
    EXPECT_EQ(co.pendingRequests(), 0u);
    EXPECT_GT(co.latency().p999(), 0.0);
}

// ---- histogram merge / snapshot -------------------------------------

TEST(LatencyHistogram, MergeEqualsConcatenatedSamples)
{
    LatencyHistogram a, b, ref;
    Rng rng(91);
    for (int i = 0; i < 400; ++i) {
        // Spread across many octaves so both the linear and the
        // log-linear bucket regions carry counts.
        const double ns =
            static_cast<double>(rng.next() % (1ull << (i % 30)));
        (i % 2 ? a : b).record(ns);
        ref.record(ns);
    }

    // merge() must be bucket-wise: the merged histogram is
    // indistinguishable from one that recorded the concatenation.
    LatencyHistogram merged = a.snapshot();
    merged.merge(b);
    EXPECT_EQ(merged.count(), ref.count());
    EXPECT_EQ(merged.count(), a.count() + b.count());
    EXPECT_DOUBLE_EQ(merged.maxNs(), ref.maxNs());
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(merged.quantileNs(q), ref.quantileNs(q))
            << "q=" << q;

    // Merged quantiles stay monotone in q.
    double prev = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const double v = merged.quantileNs(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }

    // A snapshot is an independent copy: recording into the source
    // afterwards must not leak through.
    const LatencyHistogram snap = a.snapshot();
    const uint64_t before = snap.count();
    a.record(1e6);
    EXPECT_EQ(snap.count(), before);
    EXPECT_EQ(a.count(), before + 1);

    // Self-merge would double-count in place; it is rejected.
    EXPECT_THROW(a.merge(a), FatalError);
}

// ---- coalescer edge cases -------------------------------------------

TEST(Serving, DrainWithNoClassesAndReuseAfterDrain)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/4, /*maxLingerUs=*/60e6,
                             /*maxPending=*/0,
                             AdmissionPolicy::Shed});

    // Nothing registered, nothing submitted: drain() must return
    // immediately, and so must a second drain right behind it.
    co.drain();
    co.drain();
    EXPECT_EQ(co.completedRequests(), 0u);
    EXPECT_EQ(co.pendingRequests(), 0u);

    // The coalescer is not a one-shot: registration and submission
    // still work after draining, and a drain-with-work then a drain-
    // with-nothing both settle.
    const TpchFilterSpec spec{/*rows=*/32, /*bits=*/16};
    const uint32_t cls = co.registerClass(tpchFilterClass(spec));
    const auto col = randomData(spec.rows, 0xfff, 8);
    ServeFuture f = co.submit(cls, tpchFilterRequest(spec, col, 99));
    co.drain();
    EXPECT_TRUE(f.done());
    EXPECT_EQ(f.wait().output, tpchFilterHost(spec, col, 99));
    co.drain();
    ServeFuture f2 = co.submit(cls, tpchFilterRequest(spec, col, 7));
    co.drain();
    EXPECT_EQ(f2.wait().output, tpchFilterHost(spec, col, 7));
    EXPECT_EQ(co.completedRequests(), 2u);
}

TEST(Serving, ShedMessageNamesTenantTag)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    CoalescerOptions opts{/*maxBatch=*/8, /*maxLingerUs=*/60e6,
                          /*maxPending=*/1, AdmissionPolicy::Shed};
    opts.tenantTag = "acme";
    RequestCoalescer co(ex, opts);
    const TpchFilterSpec spec{/*rows=*/32, /*bits=*/16};
    const uint32_t cls = co.registerClass(tpchFilterClass(spec));
    const auto col = randomData(spec.rows, 0xfff, 9);

    ServeFuture f = co.submit(cls, tpchFilterRequest(spec, col, 1));
    try {
        co.submit(cls, tpchFilterRequest(spec, col, 2));
        FAIL() << "expected shed";
    } catch (const RequestShedError &e) {
        EXPECT_NE(std::string(e.what()).find("[tenant acme]"),
                  std::string::npos)
            << e.what();
    }
    co.flush();
    EXPECT_EQ(f.wait().output, tpchFilterHost(spec, col, 1));
}

// ---- the serving stack over a tenant view ---------------------------

TEST(Serving, CoalescerRunsUnmodifiedOverTenantView)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t tid = te.registerTenant({/*name=*/"serving"});
    const TpchFilterSpec spec{/*rows=*/48, /*bits=*/16};

    {
        // The whole coalescer — batch objects, shared columns,
        // dispatcher — runs against the tenant's namespace.
        RequestCoalescer co(
            te.view(tid),
            CoalescerOptions{/*maxBatch=*/3, /*maxLingerUs=*/0.0,
                             /*maxPending=*/0,
                             AdmissionPolicy::Shed});
        const uint32_t cls = co.registerClass(tpchFilterClass(spec));
        std::vector<ServeFuture> fs;
        std::vector<std::vector<uint64_t>> cols;
        for (size_t r = 0; r < 6; ++r) {
            cols.push_back(randomData(spec.rows, 0xfff, 70 + r));
            fs.push_back(co.submit(
                cls, tpchFilterRequest(spec, cols.back(),
                                       /*threshold=*/0x400 + r)));
        }
        for (size_t r = 0; r < 6; ++r)
            EXPECT_EQ(fs[r].wait().output,
                      tpchFilterHost(spec, cols[r], 0x400 + r))
                << r;
        co.drain();
    }

    // Everything it did is attributed to the tenant.
    const TenantStats s = te.stats(tid);
    EXPECT_GT(s.executed, 0u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_GT(s.liveObjects, 0u);
    EXPECT_GT(s.instructions, 0u);
    const TenantStats fleet = te.fleetStats();
    EXPECT_EQ(fleet.executed, s.executed);
}

} // namespace
} // namespace simdram
