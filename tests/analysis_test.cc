/**
 * @file
 * Tests for the StreamIR static analyzer (src/analysis): every lint
 * rule on a seeded-defect corpus (positive AND negative per rule),
 * the analyzer-vs-validator differential over the shared malformed
 * corpus (the analyzer may only ever be stricter, never looser), the
 * submit-time wiring (Strict rejection semantics, Warn accumulation
 * and drain, lint-over-the-optimized-program), translation validation
 * of the optimizer passes over randomized programs in every pass
 * combination, and Warn-mode cleanliness of the request coalescer's
 * fused batch programs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/stream_analyzer.h"
#include "common/rng.h"
#include "malformed_corpus.h"
#include "runtime/stream_executor.h"
#include "serve/request_coalescer.h"
#include "serve/workloads.h"
#include "stream/passes.h"
#include "stream/stream_ir.h"
#include "stream_testutil.h"

namespace simdram
{
namespace
{

using testutil::noPassesOpts;
using testutil::randomData;
using testutil::testCfg;

/** Four same-shaped 8-bit objects: a, b, y, z. */
BbopObjectTable
smallTable()
{
    BbopObjectTable t;
    for (int i = 0; i < 4; ++i)
        t.define(16, 8);
    return t;
}

constexpr uint16_t kA = 0, kB = 1, kY = 2, kZ = 3;

AnalysisResult
analyze(const std::vector<BbopInstr> &stream,
        const BbopObjectView &view,
        EntryAssumption entry = EntryAssumption::FromView)
{
    return analyzeStream(StreamIR::lift(stream), view,
                         AnalyzerOptions{entry});
}

// ---- rule corpus: one positive and one negative per rule ------------

TEST(Lint, ReadUnwrittenFlagged)
{
    const BbopObjectTable t = smallTable();
    // Standalone (Unwritten entry): the very first trsp reads a host
    // image nothing produced.
    const AnalysisResult pos = analyze({BbopInstr::trsp(kA, 8)}, t,
                                       EntryAssumption::Unwritten);
    ASSERT_EQ(pos.diagnostics.size(), 1u);
    EXPECT_EQ(pos.diagnostics[0].rule, LintRule::ReadUnwritten);
    EXPECT_EQ(pos.diagnostics[0].severity, LintSeverity::Error);
    EXPECT_EQ(pos.diagnostics[0].node, 0u);
    EXPECT_EQ(pos.diagnostics[0].obj, kA);

    // The identical stream is fine at submit time, where defineObject
    // has zero-filled the host image.
    EXPECT_TRUE(analyze({BbopInstr::trsp(kA, 8)}, t,
                        EntryAssumption::FromView)
                    .diagnostics.empty());

    // Unwritten entry is satisfied by an in-program write.
    EXPECT_TRUE(analyze({BbopInstr::init(kA, 8, 1),
                         BbopInstr::unary(OpKind::Relu, 8, kY, kA)},
                        t, EntryAssumption::Unwritten)
                    .diagnostics.empty());
}

TEST(Lint, ReadUnwrittenSuppressesMalformedOnSameNode)
{
    const BbopObjectTable t = smallTable();
    // The validator also rejects this (op source not vertical); the
    // dataflow rule keeps the attribution.
    const AnalysisResult r =
        analyze({BbopInstr::unary(OpKind::Relu, 8, kY, kA)}, t,
                EntryAssumption::Unwritten);
    EXPECT_EQ(r.count(LintRule::ReadUnwritten), 1u);
    EXPECT_EQ(r.count(LintRule::Malformed), 0u);
}

TEST(Lint, LayoutMismatchOnTrspOverFreshVertical)
{
    const BbopObjectTable t = smallTable();
    // After the Add, y's current value lives in the vertical image;
    // the closing trsp would clobber it with the stale host copy. The
    // ISA validator ACCEPTS this stream — only the analyzer sees it.
    const std::vector<BbopInstr> pos = {
        BbopInstr::trsp(kA, 8),
        BbopInstr::trsp(kB, 8),
        BbopInstr::binary(OpKind::Add, 8, kY, kA, kB),
        BbopInstr::unary(OpKind::Relu, 8, kA, kY), // keeps y read
        BbopInstr::trsp(kY, 8),
    };
    const AnalysisResult r = analyze(pos, t);
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].rule, LintRule::LayoutMismatch);
    EXPECT_EQ(r.diagnostics[0].severity, LintSeverity::Error);
    EXPECT_EQ(r.diagnostics[0].node, 4u);
    EXPECT_EQ(r.diagnostics[0].obj, kY);

    // Reading the CURRENT image instead (trsp_inv copies the fresh
    // vertical value out) is clean.
    std::vector<BbopInstr> neg = pos;
    neg.back() = BbopInstr::trspInv(kY, 8);
    EXPECT_TRUE(analyze(neg, t).diagnostics.empty());
}

TEST(Lint, DeadWriteAnchoredToTheDeadWriter)
{
    const BbopObjectTable t = smallTable();
    const AnalysisResult pos =
        analyze({BbopInstr::init(kA, 8, 1), BbopInstr::init(kA, 8, 2)},
                t);
    ASSERT_EQ(pos.diagnostics.size(), 1u);
    EXPECT_EQ(pos.diagnostics[0].rule, LintRule::DeadWrite);
    EXPECT_EQ(pos.diagnostics[0].severity, LintSeverity::Warning);
    EXPECT_EQ(pos.diagnostics[0].node, 0u) << "anchored to the writer";
    EXPECT_EQ(pos.errorCount(), 0u);

    // A read between the writes keeps the first one live.
    EXPECT_TRUE(analyze({BbopInstr::init(kA, 8, 1),
                         BbopInstr::unary(OpKind::Relu, 8, kY, kA),
                         BbopInstr::init(kA, 8, 2)},
                        t)
                    .diagnostics.empty());
}

TEST(Lint, RedundantTrspFiresExactlyWhereHoistWouldElide)
{
    const BbopObjectTable t = smallTable();
    // init leaves both images coincident; the trsp is a no-op.
    const AnalysisResult pos =
        analyze({BbopInstr::init(kA, 8, 5), BbopInstr::trsp(kA, 8)},
                t);
    ASSERT_EQ(pos.diagnostics.size(), 1u);
    EXPECT_EQ(pos.diagnostics[0].rule, LintRule::RedundantTrsp);
    EXPECT_EQ(pos.diagnostics[0].severity, LintSeverity::Warning);
    EXPECT_EQ(pos.diagnostics[0].node, 1u);

    // Entry is NOT assumed coincident even FromView: a leading trsp
    // never fires (cross-submission redundancy is the runtime stream
    // cache's job).
    EXPECT_TRUE(analyze({BbopInstr::trsp(kA, 8)}, t)
                    .diagnostics.empty());
}

TEST(Lint, RedundantInitOnRebroadcastConstant)
{
    const BbopObjectTable t = smallTable();
    const std::vector<BbopInstr> pos = {
        BbopInstr::init(kA, 8, 7),
        BbopInstr::init(kB, 8, 3),
        BbopInstr::binary(OpKind::Add, 8, kY, kA, kB),
        BbopInstr::init(kA, 8, 7), // same constant, still in place
    };
    const AnalysisResult r = analyze(pos, t);
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].rule, LintRule::RedundantInit);
    EXPECT_EQ(r.diagnostics[0].node, 3u);

    // A different constant is a real (live) rewrite.
    std::vector<BbopInstr> neg = pos;
    neg.back() = BbopInstr::init(kA, 8, 8);
    EXPECT_TRUE(analyze(neg, t).diagnostics.empty());
}

TEST(Lint, SelfAliasOnInPlaceOpAndShift)
{
    const BbopObjectTable t = smallTable();
    for (const auto &pos :
         {std::vector<BbopInstr>{
              BbopInstr::trsp(kA, 8), BbopInstr::trsp(kB, 8),
              BbopInstr::binary(OpKind::Add, 8, kA, kA, kB)},
          {BbopInstr::trsp(kA, 8),
           BbopInstr::shift(true, 8, kA, kA, 1)}}) {
        const AnalysisResult r = analyze(pos, t);
        EXPECT_EQ(r.count(LintRule::SelfAlias), 1u);
        // The validator rejects these too; the specific rule keeps
        // the attribution.
        EXPECT_EQ(r.count(LintRule::Malformed), 0u);
    }
    EXPECT_TRUE(analyze({BbopInstr::trsp(kA, 8),
                         BbopInstr::trsp(kB, 8),
                         BbopInstr::binary(OpKind::Add, 8, kY, kA,
                                           kB)},
                        t)
                    .diagnostics.empty());
}

TEST(Lint, ShiftOverflowIsStrictlyNewOverTheValidator)
{
    const BbopObjectTable t = smallTable();
    const std::vector<BbopInstr> pos = {
        BbopInstr::trsp(kA, 8),
        BbopInstr::shift(true, 8, kY, kA, 8), // >= width: always 0
    };
    const AnalysisResult r = analyze(pos, t);
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].rule, LintRule::ShiftOverflow);
    EXPECT_EQ(r.diagnostics[0].severity, LintSeverity::Error);
    EXPECT_EQ(r.diagnostics[0].node, 1u);

    std::vector<BbopInstr> neg = pos;
    neg.back() = BbopInstr::shift(true, 8, kY, kA, 7);
    EXPECT_TRUE(analyze(neg, t).diagnostics.empty());
}

TEST(Lint, MalformedWrapsValidatorRejections)
{
    const BbopObjectTable t = smallTable();
    const AnalysisResult r = analyze({BbopInstr::trsp(99, 8)}, t);
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].rule, LintRule::Malformed);
    EXPECT_EQ(r.diagnostics[0].severity, LintSeverity::Error);
    // Messages carry the stable rule id prefix.
    EXPECT_EQ(r.diagnostics[0].message.rfind("malformed: ", 0), 0u);
}

// ---- differential vs the BbopValidator over the shared corpus -------

TEST(LintDifferential, AnalyzerStricterThanValidatorNeverLooser)
{
    BbopObjectTable t;
    for (auto [elements, bits] : testcorpus::corpusShapes())
        t.define(elements, bits);

    // Every validator-rejected stream must carry at least one
    // Error-severity finding (the analyzer is never looser) ...
    const auto &bad = testcorpus::malformedStreams();
    for (size_t s = 0; s < bad.size(); ++s) {
        const AnalysisResult r = analyze(bad[s], t);
        EXPECT_GE(r.errorCount(), 1u)
            << "malformed stream " << s
            << " accepted by the analyzer";
    }

    // ... and every validator-accepted stream analyzes Error-free
    // (Warnings — dead writes the optimizer would remove — are fine).
    for (const auto &ok : testcorpus::wellFormedStreams())
        EXPECT_EQ(analyze(ok, t).errorCount(), 0u);
}

// ---- submit-time wiring ---------------------------------------------

TEST(LintSubmit, StrictRejectsTypedAndSideEffectFree)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutorOptions opts = noPassesOpts(false);
    opts.lintMode = LintMode::Strict;
    StreamExecutor ex(g, opts);
    const uint16_t a = ex.defineObject(16, 8);
    const uint16_t y = ex.defineObject(16, 8);

    // Validator-legal, lint-illegal: the rejection is the lint's.
    const std::vector<BbopInstr> overflow = {
        BbopInstr::trsp(a, 8),
        BbopInstr::shift(true, 8, y, a, 8),
    };
    EXPECT_THROW(ex.submit(overflow), StreamLintError);
    // StreamLintError is a BbopError: callers' existing typed
    // rejection handling covers Strict mode unchanged.
    EXPECT_THROW(ex.submit(overflow), BbopError);

    // Side-effect-free: nothing published, nothing queued, and the
    // executor still accepts well-formed work afterwards.
    EXPECT_EQ(ex.lintDiagnosticCount(), 0u);
    EXPECT_TRUE(ex.drainDiagnostics().empty());
    ex.submit({BbopInstr::init(a, 8, 42)}).wait();
    EXPECT_EQ(ex.readObject(a), std::vector<uint64_t>(16, 42));

    // Warnings do not reject in Strict mode; they accumulate.
    ex.submit({BbopInstr::init(y, 8, 1), BbopInstr::init(y, 8, 2)})
        .wait();
    EXPECT_EQ(ex.lintDiagnosticCount(), 1u);
}

TEST(LintSubmit, WarnAccumulatesAndDrains)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutorOptions opts = noPassesOpts(false);
    opts.lintMode = LintMode::Warn;
    StreamExecutor ex(g, opts);
    const uint16_t a = ex.defineObject(16, 8);
    const uint16_t y = ex.defineObject(16, 8);

    // Warn accepts Errors too — it only reports.
    ex.submit({BbopInstr::trsp(a, 8),
               BbopInstr::shift(true, 8, y, a, 8)})
        .wait();
    ex.submit({BbopInstr::init(a, 8, 1), BbopInstr::init(a, 8, 2)})
        .wait();
    EXPECT_EQ(ex.lintDiagnosticCount(), 2u);

    const std::vector<StreamDiagnostic> d = ex.drainDiagnostics();
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0].rule, LintRule::ShiftOverflow);
    EXPECT_EQ(d[1].rule, LintRule::DeadWrite);
    // The counter is the lifetime total; the buffer drains once.
    EXPECT_TRUE(ex.drainDiagnostics().empty());
    EXPECT_EQ(ex.lintDiagnosticCount(), 2u);
}

TEST(LintSubmit, LintRunsOverTheOptimizedProgram)
{
    // The same redundant-trsp stream: with the hoisting pass ON the
    // redundancy is gone before the lint looks (what executes is
    // clean); with passes OFF the lint reports what will execute.
    const std::vector<BbopInstr> redundant = {
        BbopInstr::init(0, 8, 5),
        BbopInstr::trsp(0, 8),
    };
    {
        DeviceGroup g(testCfg(), 2);
        StreamExecutorOptions opts; // passes on by default
        opts.lintMode = LintMode::Strict;
        StreamExecutor ex(g, opts);
        ex.defineObject(16, 8);
        ex.submit(redundant).wait();
        EXPECT_EQ(ex.lintDiagnosticCount(), 0u);
    }
    {
        DeviceGroup g(testCfg(), 2);
        StreamExecutorOptions opts = noPassesOpts(false);
        opts.lintMode = LintMode::Warn;
        StreamExecutor ex(g, opts);
        ex.defineObject(16, 8);
        ex.submit(redundant).wait();
        EXPECT_EQ(ex.lintDiagnosticCount(), 1u);
        const auto d = ex.drainDiagnostics();
        ASSERT_EQ(d.size(), 1u);
        EXPECT_EQ(d[0].rule, LintRule::RedundantTrsp);
    }
}

// ---- translation validation -----------------------------------------

/**
 * Generates validator-legal random programs over the small table by
 * tracking the executor's layout rules (which objects are vertical,
 * whose host image is current) and only emitting legal choices.
 * Warnings (dead writes, redundancies) occur naturally; Error-level
 * defects cannot.
 */
struct ProgramGen
{
    Rng rng;
    std::vector<bool> vertical{false, false, false, false};
    std::vector<bool> hostCurrent{true, true, true, true};

    explicit ProgramGen(uint64_t seed) : rng(seed) {}

    uint16_t pick() { return static_cast<uint16_t>(rng.below(4)); }

    std::vector<BbopInstr>
    make(size_t len)
    {
        std::vector<BbopInstr> out;
        while (out.size() < len) {
            const uint16_t a = pick(), b = pick(), d = pick();
            switch (rng.below(6)) {
              case 0:
                if (hostCurrent[a]) {
                    out.push_back(BbopInstr::trsp(a, 8));
                    vertical[a] = true;
                }
                break;
              case 1:
                if (vertical[a]) {
                    out.push_back(BbopInstr::trspInv(a, 8));
                    hostCurrent[a] = true;
                }
                break;
              case 2:
                out.push_back(
                    BbopInstr::init(a, 8, rng.below(200)));
                vertical[a] = true;
                hostCurrent[a] = true;
                break;
              case 3:
                if (vertical[a] && vertical[b] && d != a && d != b) {
                    out.push_back(
                        BbopInstr::binary(OpKind::Add, 8, d, a, b));
                    vertical[d] = true;
                    hostCurrent[d] = false;
                }
                break;
              case 4:
                if (vertical[a] && d != a) {
                    out.push_back(
                        BbopInstr::unary(OpKind::Relu, 8, d, a));
                    vertical[d] = true;
                    hostCurrent[d] = false;
                }
                break;
              case 5:
                if (vertical[a] && d != a) {
                    out.push_back(BbopInstr::shift(
                        rng.below(2) == 0, 8, d, a,
                        1 + static_cast<uint16_t>(rng.below(7))));
                    vertical[d] = true;
                    hostCurrent[d] = false;
                }
                break;
            }
        }
        return out;
    }
};

TEST(TranslationValidationTest, AllPassCombosPreserveFactsRandomized)
{
    const BbopObjectTable t = smallTable();
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        const std::vector<BbopInstr> prog =
            ProgramGen(seed).make(24);
        for (unsigned combo = 0; combo < 8; ++combo) {
            const PassOptions popts{(combo & 1) != 0,
                                    (combo & 2) != 0,
                                    (combo & 4) != 0};
            StreamIR validated = StreamIR::lift(prog);
            const TranslationValidation tv = runPassesValidated(
                validated, popts, t,
                AnalyzerOptions{EntryAssumption::FromView});
            EXPECT_TRUE(tv.ok())
                << "seed " << seed << " combo " << combo << ": "
                << (tv.failures.empty()
                        ? ""
                        : tv.failures.front().pass + ": " +
                              tv.failures.front().message);

            // The validated pipeline is the production pipeline: the
            // resulting IR and stats must match runPasses exactly.
            StreamIR plain = StreamIR::lift(prog);
            const PassStats ps = runPasses(plain, popts);
            EXPECT_EQ(tv.stats.hoisted, ps.hoisted);
            EXPECT_EQ(tv.stats.deadEliminated, ps.deadEliminated);
            EXPECT_EQ(tv.stats.fusedSegments, ps.fusedSegments);
            ASSERT_EQ(validated.nodes.size(), plain.nodes.size());
            EXPECT_EQ(validated.segments, plain.segments);
            for (size_t n = 0; n < plain.nodes.size(); ++n) {
                EXPECT_EQ(validated.nodes[n].dead,
                          plain.nodes[n].dead)
                    << "node " << n;
                EXPECT_EQ(validated.nodes[n].segment,
                          plain.nodes[n].segment)
                    << "node " << n;
            }
        }
    }
}

TEST(TranslationValidationTest, ValidatedExecutorMatchesReference)
{
    // End-to-end: a validatePasses executor (passes on, every pass
    // checked at submit time) must stay bit-exact against the
    // passes-off reference on randomized programs.
    StreamExecutorOptions vopts; // passes on
    vopts.validatePasses = true;
    vopts.lintMode = LintMode::Warn;
    for (uint64_t seed = 21; seed <= 24; ++seed) {
        testutil::DiffRig rig(2, vopts, noPassesOpts(false));
        for (int i = 0; i < 4; ++i)
            rig.define(16, 8);
        for (int i = 0; i < 4; ++i)
            rig.write(static_cast<uint16_t>(i),
                      randomData(16, 0xff, seed * 10 + i));
        ProgramGen gen(seed);
        for (int s = 0; s < 3; ++s)
            rig.run(gen.make(16));
        rig.expectSameImages();
    }
}

// ---- the coalescer's fused batch programs analyze clean -------------

TEST(LintAdoption, CoalescedBatchProgramsAnalyzeClean)
{
    const KnnServeSpec spec{/*refs=*/96, /*dims=*/4, /*bits=*/16};
    std::vector<std::vector<uint64_t>> refs;
    for (size_t d = 0; d < spec.dims; ++d)
        refs.push_back(randomData(spec.refs, 0xff, 31 + d));

    DeviceGroup g(testCfg(), 2);
    StreamExecutorOptions opts;
    opts.lintMode = LintMode::Warn;
    StreamExecutor ex(g, opts);
    RequestCoalescer co(
        ex, CoalescerOptions{/*maxBatch=*/4, /*maxLingerUs=*/0.0,
                             /*maxPending=*/0,
                             AdmissionPolicy::Shed});
    const uint32_t cls = co.registerClass(knnQueryClass(spec, refs));
    for (size_t r = 0; r < 10; ++r)
        co.submit(cls, knnQueryRequest(spec,
                                       randomData(spec.dims, 0xff,
                                                  100 + r)));
    co.drain();
    EXPECT_GE(co.completedRequests(), 10u);
    EXPECT_EQ(ex.lintDiagnosticCount(), 0u)
        << "a coalescer-fused batch program did not analyze clean";
}

} // namespace
} // namespace simdram
