/**
 * @file
 * Tests for the multi-tenant stream service (src/tenant): namespace
 * isolation (foreign/released ids are typed, synchronous, side-effect-
 * free rejections; one tenant's compute never touches another's
 * data), object and stream quotas under both Shed and Block, the
 * deterministic deficit-weighted round-robin dispatch order, the
 * flooding-tenant isolation guarantee, malformed-stream containment,
 * per-tenant observability roll-ups summing to the fleet totals, and
 * leak-free teardown via releaseObject/unregisterTenant. Runs under
 * ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "runtime/stream_executor.h"
#include "stream_testutil.h"
#include "tenant/tenant_executor.h"

namespace simdram
{
namespace
{

using testutil::randomData;
using testutil::testCfg;

void
expectSameStats(const DramStats &a, const DramStats &b)
{
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.multiActivates, b.multiActivates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.aaps, b.aaps);
    EXPECT_EQ(a.aps, b.aps);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

/** y = a + a over @p n 8-bit lanes, as one stream. */
std::vector<BbopInstr>
doubleStream(uint16_t a, uint16_t y)
{
    return {BbopInstr::trsp(a, 8), BbopInstr::trsp(y, 8),
            BbopInstr::binary(OpKind::Add, 8, y, a, a),
            BbopInstr::trspInv(y, 8), BbopInstr::trspInv(a, 8)};
}

/** A repeatable 2-instruction no-op-ish stream (trsp round trip). */
std::vector<BbopInstr>
bounceStream(uint16_t a)
{
    return {BbopInstr::trsp(a, 8), BbopInstr::trspInv(a, 8)};
}

// ---- namespace isolation --------------------------------------------

TEST(Tenant, NamespacesAreIsolatedAndForeignIdsRejected)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);

    const uint32_t ta = te.registerTenant({/*name=*/"alice"});
    const uint32_t tb = te.registerTenant({/*name=*/"bob"});
    const size_t n = 200;

    // Both tenants get virtual id 0 and 1 — same names, different
    // physical objects.
    const uint16_t aa = te.defineObject(ta, n, 8);
    const uint16_t ay = te.defineObject(ta, n, 8);
    const uint16_t ba = te.defineObject(tb, n, 8);
    EXPECT_EQ(aa, ba);
    const uint16_t by = te.defineObject(tb, n, 8);
    EXPECT_EQ(ay, by);

    const auto da = randomData(n, 0xff, 1);
    const auto db = randomData(n, 0xff, 2);
    te.writeObject(ta, aa, da);
    te.writeObject(tb, ba, db);

    // Alice computes into HER vid 1; Bob's vid 1 must stay intact.
    te.submit(ta, doubleStream(aa, ay)).wait();
    const auto outA = te.readObject(ta, ay);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(outA[i], (da[i] * 2) & 0xff) << i;
    EXPECT_EQ(te.readObject(tb, ba), db);

    // An id beyond the tenant's namespace is rejected synchronously
    // with the typed BbopError — even though the PHYSICAL executor
    // has more objects than either tenant's table.
    const uint64_t beforeA = te.stats(ta).submitted;
    EXPECT_THROW(te.submit(ta, bounceStream(/*vid=*/2)), BbopError);
    EXPECT_THROW(te.objectShape(ta, 2), BbopError);
    EXPECT_THROW(te.readObject(ta, 7), BbopError);
    EXPECT_THROW(te.writeObject(ta, 7, da), BbopError);
    // ... and side-effect-free: nothing was admitted or shed.
    EXPECT_EQ(te.stats(ta).submitted, beforeA);
    EXPECT_EQ(te.stats(ta).shed, 0u);
    te.drain();
    EXPECT_EQ(te.stats(ta).failed, 0u);

    // Shapes resolve through the translation.
    EXPECT_EQ(te.objectShape(tb, ba).elements, n);
}

TEST(Tenant, MalformedStreamFailsOnlyItsOwner)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t ta = te.registerTenant({"alice"});
    const uint32_t tb = te.registerTenant({"bob"});
    const size_t n = 150;
    const uint16_t aa = te.defineObject(ta, n, 8);
    const uint16_t ay = te.defineObject(ta, n, 8);
    const uint16_t ba = te.defineObject(tb, n, 8);
    const uint16_t by = te.defineObject(tb, n, 8);
    const auto db = randomData(n, 0xff, 5);
    te.writeObject(tb, ba, db);

    // Alice's stream is addressable but malformed (Op on an object
    // still in horizontal layout): admitted, rejected at dispatch by
    // the validator, error delivered through HER handle only.
    TenantStreamHandle bad = te.submit(
        ta, {BbopInstr::binary(OpKind::Add, 8, ay, aa, aa)});
    TenantStreamHandle good = te.submit(tb, doubleStream(ba, by));
    EXPECT_THROW(bad.wait(), BbopError);
    const auto outB = good.wait();
    EXPECT_GT(outB.instructions, 0u);
    const auto img = te.readObject(tb, by);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(img[i], (db[i] * 2) & 0xff) << i;

    te.drain();
    EXPECT_EQ(te.stats(ta).failed, 1u);
    EXPECT_EQ(te.stats(ta).executed, 0u);
    EXPECT_EQ(te.stats(tb).failed, 0u);
    EXPECT_EQ(te.stats(tb).executed, 1u);
    // The failed stream still counts as submitted, and Alice keeps
    // working afterwards.
    EXPECT_EQ(te.stats(ta).submitted, 1u);
    te.submit(ta, bounceStream(aa)).wait();
    EXPECT_EQ(te.stats(ta).executed, 1u);
}

// ---- quotas ---------------------------------------------------------

TEST(Tenant, ObjectQuotasThrowTypedAndSideEffectFree)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    TenantConfig cfg;
    cfg.name = "bounded";
    cfg.maxObjects = 2;
    cfg.maxObjectBits = 100 * 8 * 2;
    const uint32_t t = te.registerTenant(cfg);
    const uint32_t other = te.registerTenant({"free"});

    const uint16_t a = te.defineObject(t, 100, 8);
    // Bit budget: a second 100x8 object fits exactly; 101x8 would
    // not, and the rejection must leave the budget untouched.
    EXPECT_THROW(te.defineObject(t, 101, 8), TenantQuotaError);
    EXPECT_EQ(te.stats(t).liveObjects, 1u);
    EXPECT_EQ(te.stats(t).liveObjectBits, 100u * 8u);
    const uint16_t b = te.defineObject(t, 100, 8);
    // Object-count budget now exhausted.
    EXPECT_THROW(te.defineObject(t, 10, 8), TenantQuotaError);
    EXPECT_EQ(te.stats(t).liveObjects, 2u);

    // Quotas are per tenant: the unbounded tenant is unaffected.
    te.defineObject(other, 300, 8);

    // Releasing frees budget; the namespace slot is tombstoned, not
    // reused — the new object gets a NEW virtual id.
    te.releaseObject(t, a);
    EXPECT_EQ(te.stats(t).liveObjects, 1u);
    const uint16_t c = te.defineObject(t, 100, 8);
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
    EXPECT_THROW(te.submit(t, bounceStream(a)), BbopError);
    te.submit(t, bounceStream(c)).wait();
}

TEST(Tenant, StreamQuotaShedsTypedAndSideEffectFree)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutorOptions opts;
    opts.manualDispatch = true; // nothing drains until drain()
    TenantExecutor te(ex, opts);
    TenantConfig cfg;
    cfg.name = "shedder";
    cfg.maxPendingStreams = 2;
    cfg.onFull = TenantQuotaPolicy::Shed;
    const uint32_t t = te.registerTenant(cfg);
    const uint16_t a = te.defineObject(t, 100, 8);

    TenantStreamHandle h1 = te.submit(t, bounceStream(a));
    TenantStreamHandle h2 = te.submit(t, bounceStream(a));
    EXPECT_THROW(te.submit(t, bounceStream(a)), TenantQuotaError);
    EXPECT_EQ(te.stats(t).submitted, 2u);
    EXPECT_EQ(te.stats(t).shed, 1u);

    te.drain();
    EXPECT_TRUE(h1.done());
    EXPECT_TRUE(h2.done());
    EXPECT_EQ(te.stats(t).executed, 2u);
    // Quota freed: admission works again.
    te.submit(t, bounceStream(a));
    te.drain();
    EXPECT_EQ(te.stats(t).executed, 3u);
    EXPECT_EQ(te.fleetStats().shed, 1u);
}

TEST(Tenant, StreamQuotaBlocksUntilCompletion)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    // Auto dispatch: the scheduler thread drains while the submitter
    // blocks on its quota.
    TenantExecutor te(ex);
    TenantConfig cfg;
    cfg.name = "blocker";
    cfg.maxPendingStreams = 1;
    cfg.onFull = TenantQuotaPolicy::Block;
    const uint32_t t = te.registerTenant(cfg);
    const uint16_t a = te.defineObject(t, 100, 8);

    // Every submit past the first must wait for its predecessor; all
    // are eventually admitted, none shed.
    constexpr size_t kStreams = 12;
    for (size_t i = 0; i < kStreams; ++i)
        te.submit(t, bounceStream(a));
    te.drain();
    EXPECT_EQ(te.stats(t).submitted, kStreams);
    EXPECT_EQ(te.stats(t).executed, kStreams);
    EXPECT_EQ(te.stats(t).shed, 0u);
}

// ---- weighted-fair scheduling ---------------------------------------

TEST(Tenant, DeficitRoundRobinDispatchOrderIsDeterministic)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutorOptions opts;
    opts.manualDispatch = true;
    opts.recordDispatchOrder = true;
    opts.quantumInstructions = 2; // == bounceStream cost
    TenantExecutor te(ex, opts);
    TenantConfig ca, cb;
    ca.name = "w1";
    ca.weight = 1;
    cb.name = "w3";
    cb.weight = 3;
    const uint32_t ta = te.registerTenant(ca);
    const uint32_t tb = te.registerTenant(cb);
    const uint16_t oa = te.defineObject(ta, 100, 8);
    const uint16_t ob = te.defineObject(tb, 100, 8);

    // Backlog both queues BEFORE any dispatch, then drain: the DRR
    // order depends only on weights and queue contents. Each stream
    // costs 2 instructions; per sweep w1 may dispatch 1 and w3 may
    // dispatch 3.
    for (int i = 0; i < 2; ++i)
        te.submit(ta, bounceStream(oa));
    for (int i = 0; i < 6; ++i)
        te.submit(tb, bounceStream(ob));
    te.drain();

    const std::vector<uint32_t> want = {ta, tb, tb, tb,
                                        ta, tb, tb, tb};
    EXPECT_EQ(te.dispatchOrder(), want);
    EXPECT_EQ(te.stats(ta).executed, 2u);
    EXPECT_EQ(te.stats(tb).executed, 6u);
}

TEST(Tenant, FloodingTenantCannotStallOrStarveVictim)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutorOptions opts;
    opts.manualDispatch = true;
    opts.recordDispatchOrder = true;
    opts.quantumInstructions = 2;
    TenantExecutor te(ex, opts);
    TenantConfig flood;
    flood.name = "flooder";
    flood.maxPendingStreams = 8;
    flood.onFull = TenantQuotaPolicy::Shed;
    const uint32_t tf = te.registerTenant(flood);
    const uint32_t tv = te.registerTenant({"victim"});
    const uint16_t of = te.defineObject(tf, 100, 8);
    const uint16_t ov = te.defineObject(tv, 100, 8);

    // The flooder hammers 100 submissions: its quota sheds the
    // excess without ever touching the victim.
    size_t shed = 0;
    for (int i = 0; i < 100; ++i) {
        try {
            te.submit(tf, bounceStream(of));
        } catch (const TenantQuotaError &) {
            ++shed;
        }
    }
    constexpr size_t kVictim = 4;
    for (size_t i = 0; i < kVictim; ++i)
        te.submit(tv, bounceStream(ov));
    te.drain();

    EXPECT_EQ(shed, 92u);
    EXPECT_EQ(te.stats(tf).shed, 92u);
    EXPECT_EQ(te.stats(tf).executed, 8u);
    EXPECT_EQ(te.stats(tv).executed, kVictim);
    EXPECT_EQ(te.stats(tv).shed, 0u);

    // Equal weights: while both are backlogged the victim dispatches
    // every other slot, so its i-th stream sits at position <=
    // 2 * (i + 1) — a hard bound on flooding-induced queueing delay.
    const auto order = te.dispatchOrder();
    size_t seen = 0;
    for (size_t pos = 0; pos < order.size(); ++pos) {
        if (order[pos] != tv)
            continue;
        ++seen;
        EXPECT_LE(pos + 1, 2 * seen)
            << "victim stream " << seen << " delayed to " << pos;
    }
    EXPECT_EQ(seen, kVictim);
}

// ---- observability roll-ups -----------------------------------------

TEST(Tenant, PerTenantRollupsSumToFleetTotals)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const size_t n = 150;
    constexpr size_t kTenants = 3;
    std::vector<uint32_t> tids;
    std::vector<uint16_t> as, ys;
    for (size_t i = 0; i < kTenants; ++i) {
        TenantConfig cfg;
        cfg.name = "t" + std::to_string(i);
        cfg.weight = i + 1;
        tids.push_back(te.registerTenant(cfg));
        as.push_back(te.defineObject(tids[i], n, 8));
        ys.push_back(te.defineObject(tids[i], n, 8));
        te.writeObject(tids[i], as[i],
                       randomData(n, 0xff, 40 + i));
    }

    // Different per-tenant load, submitted concurrently (the
    // scheduler and reaper threads race the submitters — the TSan
    // meat of this suite).
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kTenants; ++i)
        threads.emplace_back([&, i] {
            te.submit(tids[i], doubleStream(as[i], ys[i]));
            for (size_t k = 0; k < 2 * (i + 1); ++k)
                te.submit(tids[i], bounceStream(as[i]));
        });
    for (auto &th : threads)
        th.join();
    te.drain();

    TenantStats sum;
    uint64_t latCount = 0;
    for (size_t i = 0; i < kTenants; ++i) {
        const TenantStats s = te.stats(tids[i]);
        EXPECT_EQ(s.submitted, 1u + 2u * (i + 1));
        EXPECT_EQ(s.executed, s.submitted);
        sum.compute = merge(sum.compute, s.compute);
        sum.transfer = merge(sum.transfer, s.transfer);
        sum.submitted += s.submitted;
        sum.executed += s.executed;
        sum.failed += s.failed;
        sum.shed += s.shed;
        sum.instructions += s.instructions;
        sum.cachedInstructions += s.cachedInstructions;
        sum.optimizedInstructions += s.optimizedInstructions;
        sum.liveObjects += s.liveObjects;
        sum.liveObjectBits += s.liveObjectBits;
        EXPECT_EQ(te.latency(tids[i]).count(), s.executed);
        latCount += te.latency(tids[i]).count();
    }

    // The fleet roll-up is accumulated independently in the same
    // code paths; under drain() the per-tenant sums must match it
    // exactly — counters add, DramStats merge.
    const TenantStats fleet = te.fleetStats();
    expectSameStats(sum.compute, fleet.compute);
    expectSameStats(sum.transfer, fleet.transfer);
    EXPECT_EQ(sum.submitted, fleet.submitted);
    EXPECT_EQ(sum.executed, fleet.executed);
    EXPECT_EQ(sum.failed, fleet.failed);
    EXPECT_EQ(sum.shed, fleet.shed);
    EXPECT_EQ(sum.instructions, fleet.instructions);
    EXPECT_EQ(sum.cachedInstructions, fleet.cachedInstructions);
    EXPECT_EQ(sum.optimizedInstructions, fleet.optimizedInstructions);
    EXPECT_EQ(sum.liveObjects, fleet.liveObjects);
    EXPECT_EQ(sum.liveObjectBits, fleet.liveObjectBits);

    // Merged latency: fleet quantiles rank over every tenant's
    // samples, and the histogram merge preserves the sample count.
    const LatencyHistogram fl = te.fleetLatency();
    EXPECT_EQ(fl.count(), latCount);
    EXPECT_LE(te.latency(tids[0]).quantileNs(0.5),
              te.latency(tids[0]).quantileNs(0.99));
    EXPECT_GE(fl.maxNs(),
              std::max({te.latency(tids[0]).maxNs(),
                        te.latency(tids[1]).maxNs(),
                        te.latency(tids[2]).maxNs()}));
}

TEST(Tenant, StreamResultAggregatesSegmentsAndE2e)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t t = te.registerTenant({"solo"});
    const size_t n = 150;
    const uint16_t a = te.defineObject(t, n, 8);
    const uint16_t y = te.defineObject(t, n, 8);
    te.writeObject(t, a, randomData(n, 0xff, 9));

    const TenantStreamResult r =
        te.submit(t, doubleStream(a, y)).wait();
    ASSERT_GE(r.segments.size(), 1u);
    size_t instr = 0;
    for (const auto &s : r.segments)
        instr += s.instructions;
    EXPECT_EQ(r.instructions, instr);
    EXPECT_EQ(r.instructions, 5u);
    EXPECT_GT(r.compute.aaps + r.compute.aps, 0u);
    EXPECT_GT(r.e2eNs, 0.0);
    // e2e covers queueing + all segments, so it dominates any single
    // segment's service time.
    EXPECT_GE(r.e2eNs, r.segments.front().serviceNs());
}

// ---- teardown -------------------------------------------------------

TEST(Tenant, ReleaseAndUnregisterTearDownCleanly)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t t1 = te.registerTenant({"doomed"});
    const uint32_t t2 = te.registerTenant({"survivor"});
    const size_t n = 200;
    const uint16_t d1 = te.defineObject(t1, n, 8);
    const uint16_t s1 = te.defineObject(t2, n, 8);
    const auto ds = randomData(n, 0xff, 21);
    te.writeObject(t2, s1, ds);

    // Streams in flight when the teardown starts: release/unregister
    // must drain first, never yank rows under a running stream.
    for (int i = 0; i < 6; ++i)
        te.submit(t1, bounceStream(d1));
    for (int i = 0; i < 6; ++i)
        te.submit(t2, bounceStream(s1));
    te.unregisterTenant(t1);

    EXPECT_EQ(te.tenantCount(), 1u);
    EXPECT_EQ(te.fleetStats().liveObjects, 1u);
    // The dead id is poison...
    EXPECT_THROW(te.defineObject(t1, 10, 8), FatalError);
    EXPECT_THROW(te.submit(t1, bounceStream(d1)), FatalError);
    // ... the survivor is untouched and still serving ...
    te.drain();
    EXPECT_EQ(te.stats(t2).executed, 6u);
    EXPECT_EQ(te.readObject(t2, s1), ds);
    // ... and the released rows are reusable by a new tenant.
    const uint32_t t3 = te.registerTenant({"reborn"});
    const uint16_t d3 = te.defineObject(t3, n, 8);
    te.writeObject(t3, d3, ds);
    te.submit(t3, bounceStream(d3)).wait();
    EXPECT_EQ(te.readObject(t3, d3), ds);
}

// ---- per-tenant views -----------------------------------------------

TEST(Tenant, ViewIsAFullStreamServiceInTenantScope)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    TenantExecutor te(ex);
    const uint32_t ta = te.registerTenant({"viewed"});
    const uint32_t tb = te.registerTenant({"other"});
    StreamService &view = te.view(ta);
    const size_t n = 150;

    // Claim an id in the OTHER tenant first so physical and virtual
    // ids diverge: the view must still resolve its own id 0.
    const uint16_t bo = te.defineObject(tb, n, 8);
    (void)bo;
    const uint16_t a = view.defineObject(n, 8);
    const uint16_t y = view.defineObject(n, 8);
    EXPECT_EQ(a, 0u);
    const auto da = randomData(n, 0xff, 33);
    view.writeObject(a, da);

    // Single-stream submit returns a physical handle; sync() is a
    // per-tenant drain.
    StreamHandle h = view.submit(doubleStream(a, y));
    view.sync();
    EXPECT_TRUE(h.done());
    const auto out = view.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
    EXPECT_EQ(view.objectShape(a).elements, n);

    // View ops are tenant ops: they show up in the tenant's roll-up
    // and respect its namespace.
    EXPECT_EQ(te.stats(ta).executed, 1u);
    EXPECT_EQ(te.stats(ta).liveObjects, 2u);
    EXPECT_THROW(view.submit(bounceStream(/*vid=*/9)), BbopError);
    view.releaseObject(y);
    EXPECT_EQ(te.stats(ta).liveObjects, 1u);
    EXPECT_THROW(view.readObject(y), BbopError);
}

} // namespace
} // namespace simdram
