/**
 * @file
 * Tests for the CPU/GPU roofline models and the host kernels.
 */

#include <gtest/gtest.h>

#include "baseline/cpu_model.h"
#include "baseline/host_kernels.h"
#include "common/error.h"
#include "common/rng.h"

namespace simdram
{
namespace
{

TEST(Baseline, BytesPerElementShapes)
{
    // add32: two 4B inputs + one 4B output.
    EXPECT_DOUBLE_EQ(bytesPerElement(OpKind::Add, 32), 12.0);
    // relu8: one input byte + one output byte.
    EXPECT_DOUBLE_EQ(bytesPerElement(OpKind::Relu, 8), 2.0);
    // eq32: two 4B inputs + a 1-bit output.
    EXPECT_DOUBLE_EQ(bytesPerElement(OpKind::Eq, 32), 8.125);
    // if_else8: two inputs + sel bit + output.
    EXPECT_DOUBLE_EQ(bytesPerElement(OpKind::IfElse, 8), 3.125);
}

TEST(Baseline, MemoryBoundLatency)
{
    const auto p = cpuParams();
    const size_t n = 1 << 20;
    const auto r = modelRun(p, OpKind::Add, 32, n);
    const double bytes = 12.0 * n;
    EXPECT_DOUBLE_EQ(r.latencyNs, bytes / p.memBwGBs);
    EXPECT_GT(r.throughputGops(), 0.0);
}

TEST(Baseline, DivHitsAluCeilingOnCpu)
{
    const auto p = cpuParams();
    const size_t n = 1 << 20;
    const auto r = modelRun(p, OpKind::Div, 32, n);
    EXPECT_DOUBLE_EQ(r.latencyNs,
                     static_cast<double>(n) / p.aluGopsDiv);
}

TEST(Baseline, GpuFasterThanCpu)
{
    const size_t n = 1 << 20;
    const auto c = modelRun(cpuParams(), OpKind::Add, 32, n);
    const auto g = modelRun(gpuParams(), OpKind::Add, 32, n);
    EXPECT_LT(g.latencyNs, c.latencyNs);
    EXPECT_LT(g.energyPj, c.energyPj);
}

TEST(Baseline, EnergyScalesWithElements)
{
    const auto p = cpuParams();
    const auto r1 = modelRun(p, OpKind::Add, 32, 1000);
    const auto r2 = modelRun(p, OpKind::Add, 32, 2000);
    EXPECT_DOUBLE_EQ(r2.energyPj, 2 * r1.energyPj);
}

TEST(Baseline, WiderElementsMoveMoreBytes)
{
    const auto p = cpuParams();
    const auto r8 = modelRun(p, OpKind::Add, 8, 1 << 20);
    const auto r64 = modelRun(p, OpKind::Add, 64, 1 << 20);
    EXPECT_GT(r64.latencyNs, r8.latencyNs);
}

TEST(HostKernels, MatchesReferenceOp)
{
    Rng rng(6);
    std::vector<uint64_t> a(500), b(500), sel(500);
    for (size_t i = 0; i < 500; ++i) {
        a[i] = rng.next();
        b[i] = rng.next();
        sel[i] = rng.next() & 1;
    }
    for (OpKind op : kAllOps) {
        const auto sig = signatureOf(op, 16);
        const auto out = hostBulkOp(
            op, 16, a, sig.numInputs == 2 ? b : std::vector<uint64_t>(),
            sig.hasSel ? sel : std::vector<uint64_t>());
        for (size_t i = 0; i < 500; ++i) {
            const uint64_t expect = referenceOp(
                op, 16, a[i], sig.numInputs == 2 ? b[i] : 0,
                sig.hasSel && (sel[i] & 1));
            ASSERT_EQ(out[i], expect) << toString(op) << " " << i;
        }
    }
}

TEST(HostKernels, SizeMismatchRejected)
{
    std::vector<uint64_t> a(4, 0), b(5, 0);
    EXPECT_THROW(hostBulkOp(OpKind::Add, 8, a, b), FatalError);
}

TEST(HostKernels, Add32Vectorized)
{
    std::vector<uint32_t> a(100), b(100), out(100);
    for (size_t i = 0; i < 100; ++i) {
        a[i] = static_cast<uint32_t>(i * 3);
        b[i] = static_cast<uint32_t>(i * 5);
    }
    hostAdd32(a.data(), b.data(), out.data(), 100);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], a[i] + b[i]);
}

} // namespace
} // namespace simdram
