/**
 * @file
 * End-to-end tests of the Processor public API: allocation, layout
 * conversion, execution of every operation on every backend, bank
 * parallelism, and misuse diagnostics.
 */

#include <gtest/gtest.h>

#include "baseline/host_kernels.h"
#include "common/error.h"
#include "common/rng.h"
#include "exec/processor.h"

namespace simdram
{
namespace
{

DramConfig
testCfg()
{
    return DramConfig::forTesting(256, 512);
}

TEST(Processor, StoreLoadRoundTrip)
{
    Processor p(testCfg());
    const auto v = p.alloc(300, 16); // spans 2 segments of 256 lanes
    Rng rng(1);
    std::vector<uint64_t> data(300);
    for (auto &x : data)
        x = rng.next() & 0xffff;
    p.store(v, data);
    EXPECT_EQ(p.load(v), data);
    EXPECT_GT(p.transferStats().energyPj, 0.0);
}

TEST(Processor, AllocRejectsEmpty)
{
    Processor p(testCfg());
    EXPECT_THROW(p.alloc(0, 8), FatalError);
    EXPECT_THROW(p.alloc(8, 0), FatalError);
}

TEST(Processor, StoreRejectsWrongSize)
{
    Processor p(testCfg());
    const auto v = p.alloc(10, 8);
    EXPECT_THROW(p.store(v, std::vector<uint64_t>(11, 0)),
                 FatalError);
}

TEST(Processor, InvalidHandleRejected)
{
    Processor p(testCfg());
    Processor::VecHandle bogus;
    EXPECT_THROW(p.load(bogus), FatalError);
}

TEST(Processor, WidthMismatchRejected)
{
    Processor p(testCfg());
    const auto a = p.alloc(10, 8);
    const auto b = p.alloc(10, 16);
    const auto y = p.alloc(10, 8);
    EXPECT_THROW(p.run(OpKind::Add, y, a, b), FatalError);
}

TEST(Processor, DestinationWidthChecked)
{
    Processor p(testCfg());
    const auto a = p.alloc(10, 8);
    const auto b = p.alloc(10, 8);
    const auto y = p.alloc(10, 4); // eq needs 1-bit dst
    EXPECT_THROW(p.run(OpKind::Eq, y, a, b), FatalError);
}

TEST(Processor, ArityChecked)
{
    Processor p(testCfg());
    const auto a = p.alloc(10, 8);
    const auto y = p.alloc(10, 8);
    EXPECT_THROW(p.run(OpKind::Add, y, a), FatalError);
    EXPECT_THROW(p.run(OpKind::Relu, y, a, a), FatalError);
}

TEST(Processor, InPlaceExecutionRejected)
{
    Processor p(testCfg());
    const auto a = p.alloc(10, 8);
    const auto b = p.alloc(10, 8);
    p.store(a, std::vector<uint64_t>(10, 1));
    p.store(b, std::vector<uint64_t>(10, 2));
    EXPECT_THROW(p.run(OpKind::Add, a, a, b), FatalError);
}

TEST(Processor, MultiSegmentComputation)
{
    // 600 elements over 256-lane subarrays: 3 segments, 1 bank.
    Processor p(testCfg());
    const size_t n = 600;
    const auto a = p.alloc(n, 8);
    const auto b = p.alloc(n, 8);
    const auto y = p.alloc(n, 8);
    Rng rng(2);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xff;
        db[i] = rng.next() & 0xff;
    }
    p.store(a, da);
    p.store(b, db);
    p.run(OpKind::Add, y, a, b);
    const auto got = p.load(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], (da[i] + db[i]) & 0xff) << i;
}

TEST(Processor, BankParallelismReducesLatency)
{
    DramConfig cfg1 = testCfg();
    cfg1.computeBanks = 1;
    DramConfig cfg2 = testCfg();
    cfg2.computeBanks = 2;

    const size_t n = 512; // two segments
    std::vector<uint64_t> da(n, 3), db(n, 4);

    Processor p1(cfg1), p2(cfg2);
    for (Processor *p : {&p1, &p2}) {
        const auto a = p->alloc(n, 8);
        const auto b = p->alloc(n, 8);
        const auto y = p->alloc(n, 8);
        p->store(a, da);
        p->store(b, db);
        p->run(OpKind::Add, y, a, b);
        EXPECT_EQ(p->load(y), std::vector<uint64_t>(n, 7));
    }
    const auto s1 = p1.computeStats();
    const auto s2 = p2.computeStats();
    EXPECT_EQ(s1.aaps, s2.aaps) << "same total work";
    EXPECT_DOUBLE_EQ(s2.latencyNs, s1.latencyNs / 2)
        << "two banks halve the serialized latency";
}

TEST(Processor, StatsResetWorks)
{
    Processor p(testCfg());
    const auto a = p.alloc(10, 4);
    const auto y = p.alloc(10, 4);
    p.store(a, std::vector<uint64_t>(10, 5));
    p.run(OpKind::Relu, y, a);
    EXPECT_GT(p.computeStats().aaps, 0u);
    p.resetStats();
    EXPECT_EQ(p.computeStats().aaps, 0u);
    EXPECT_DOUBLE_EQ(p.transferStats().energyPj, 0.0);
}

TEST(Processor, ProgramCacheIsPerWidth)
{
    Processor p(testCfg());
    const auto &p8 = p.program(OpKind::Add, 8);
    const auto &p16 = p.program(OpKind::Add, 16);
    EXPECT_NE(&p8, &p16);
    EXPECT_EQ(&p8, &p.program(OpKind::Add, 8));
    EXPECT_GT(p16.ops.size(), p8.ops.size());
}

TEST(Processor, SixtyFourBitOperations)
{
    // 64-bit vectors stress the row allocator (3 x 64 rows + deep
    // scratch) and the full carry chain.
    DramConfig cfg = DramConfig::forTesting(256, 768);
    Rng rng(0x64);
    const size_t n = 300;
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next();
        db[i] = rng.next();
    }
    for (OpKind op : {OpKind::Add, OpKind::Sub, OpKind::Gt,
                      OpKind::BitXor}) {
        Processor p(cfg);
        const auto sig = signatureOf(op, 64);
        const auto a = p.alloc(n, 64);
        const auto b = p.alloc(n, 64);
        const auto y = p.alloc(n, sig.outWidth);
        p.store(a, da);
        p.store(b, db);
        p.run(op, y, a, b);
        const auto got = p.load(y);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], referenceOp(op, 64, da[i], db[i]))
                << toString(op) << " lane " << i;
    }
}

TEST(Processor, BackendNames)
{
    EXPECT_STREQ(toString(Backend::Simdram), "SIMDRAM");
    EXPECT_STREQ(toString(Backend::SimdramNaive), "SIMDRAM-naive");
    EXPECT_STREQ(toString(Backend::Ambit), "Ambit");
}

/** Every op x width x backend, end to end vs the host kernels. */
class ProcessorOpTest
    : public ::testing::TestWithParam<
          std::tuple<OpKind, size_t, Backend>>
{
};

TEST_P(ProcessorOpTest, MatchesHostKernels)
{
    const auto [op, width, backend] = GetParam();
    Processor p(testCfg(), backend);
    const auto sig = signatureOf(op, width);
    const size_t n = 300; // crosses a segment boundary
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);

    Rng rng(0x9e3 + width);
    std::vector<uint64_t> da(n), db(n), ds(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & mask;
        db[i] = rng.next() & mask;
        ds[i] = rng.next() & 1;
    }

    const auto a = p.alloc(n, width);
    const auto b = p.alloc(n, width);
    const auto sel = p.alloc(n, 1);
    const auto y = p.alloc(n, sig.outWidth);
    p.store(a, da);
    if (sig.numInputs == 2)
        p.store(b, db);
    if (sig.hasSel)
        p.store(sel, ds);

    if (sig.numInputs == 1)
        p.run(op, y, a);
    else if (!sig.hasSel)
        p.run(op, y, a, b);
    else
        p.run(op, y, a, b, sel);

    const auto got = p.load(y);
    const auto expect = hostBulkOp(op, width, da,
                                   sig.numInputs == 2
                                       ? db
                                       : std::vector<uint64_t>(),
                                   sig.hasSel
                                       ? ds
                                       : std::vector<uint64_t>());
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], expect[i])
            << toString(op) << " w=" << width << " lane " << i
            << " backend=" << toString(backend);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ProcessorOpTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{8}, size_t{16}),
                       ::testing::Values(Backend::Simdram,
                                         Backend::Ambit)),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param)) + "_" +
               (std::get<2>(info.param) == Backend::Simdram
                    ? "simdram"
                    : "ambit");
    });

/** Compares the full DRAM state of two processors' devices. */
void
expectSameDeviceState(Processor &a, Processor &b)
{
    DramDevice &da = a.device();
    DramDevice &db = b.device();
    ASSERT_EQ(da.bankCount(), db.bankCount());
    for (size_t bank = 0; bank < da.bankCount(); ++bank) {
        Bank &ba = da.bank(bank);
        Bank &bb = db.bank(bank);
        ASSERT_EQ(ba.subarrayCount(), bb.subarrayCount());
        for (size_t s = 0; s < ba.subarrayCount(); ++s) {
            ASSERT_EQ(ba.materialized(s), bb.materialized(s))
                << "bank " << bank << " sub " << s;
            if (!ba.materialized(s))
                continue;
            Subarray &sa = ba.subarray(s);
            Subarray &sb = bb.subarray(s);
            for (size_t row = 0; row < sa.dataRowCount(); ++row)
                ASSERT_EQ(sa.peekData(row), sb.peekData(row))
                    << "bank " << bank << " sub " << s << " row "
                    << row;
            for (SpecialRow sr :
                 {SpecialRow::T0, SpecialRow::T1, SpecialRow::T2,
                  SpecialRow::T3, SpecialRow::DCC0P,
                  SpecialRow::DCC1P})
                ASSERT_EQ(sa.peek(sr), sb.peek(sr))
                    << "bank " << bank << " sub " << s << " "
                    << toString(sr);
        }
    }
}

/** Compares DramStats: counters exactly, doubles to the last ulps. */
void
expectSameStats(const DramStats &a, const DramStats &b)
{
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.multiActivates, b.multiActivates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.aaps, b.aaps);
    EXPECT_EQ(a.aps, b.aps);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    // The batched plan adds one precomputed aggregate per segment
    // where the reference path accumulates per command; the sums can
    // differ in the last ulps.
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

/**
 * Replay equivalence: for each OpKind x backend x width, the batched
 * ReplayPlan path must produce the same memory state and the same
 * DramStats as the seed per-segment ControlUnit path.
 */
class ReplayEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<OpKind, size_t, Backend>>
{
};

TEST_P(ReplayEquivalenceTest, BatchedMatchesReference)
{
    const auto [op, width, backend] = GetParam();
    Processor pref(testCfg(), backend);
    Processor pbat(testCfg(), backend);
    pref.setReplayMode(ReplayMode::Reference);
    pbat.setReplayMode(ReplayMode::Batched);

    const auto sig = signatureOf(op, width);
    const size_t n = 300; // crosses a segment boundary
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    Rng rng(0x5eed + width);
    std::vector<uint64_t> da(n), db(n), ds(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & mask;
        db[i] = rng.next() & mask;
        ds[i] = rng.next() & 1;
    }

    auto runOn = [&](Processor &p) {
        const auto a = p.alloc(n, width);
        const auto b = p.alloc(n, width);
        const auto sel = p.alloc(n, 1);
        const auto y = p.alloc(n, sig.outWidth);
        p.store(a, da);
        if (sig.numInputs == 2)
            p.store(b, db);
        if (sig.hasSel)
            p.store(sel, ds);
        if (sig.numInputs == 1)
            p.run(op, y, a);
        else if (!sig.hasSel)
            p.run(op, y, a, b);
        else
            p.run(op, y, a, b, sel);
        return p.load(y);
    };

    const auto out_ref = runOn(pref);
    const auto out_bat = runOn(pbat);
    EXPECT_EQ(out_bat, out_ref);
    expectSameDeviceState(pbat, pref);
    expectSameStats(pbat.computeStats(), pref.computeStats());
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ReplayEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{8}, size_t{16}),
                       ::testing::Values(Backend::Simdram,
                                         Backend::SimdramNaive,
                                         Backend::Ambit)),
    [](const auto &info) {
        const Backend b = std::get<2>(info.param);
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param)) + "_" +
               (b == Backend::Simdram
                    ? "simdram"
                    : (b == Backend::SimdramNaive ? "naive"
                                                  : "ambit"));
    });

// ---------------------------------------------------------------
// free(): segment recycling and misuse diagnostics
// ---------------------------------------------------------------

TEST(Processor, FreeRecyclesSegmentsForSameShape)
{
    Processor p(testCfg());
    // Exhaust the data rows with same-shape vectors...
    std::vector<Processor::VecHandle> held;
    for (;;) {
        try {
            held.push_back(p.alloc(256, 16));
        } catch (const FatalError &) {
            break;
        }
    }
    ASSERT_GT(held.size(), 2u);
    // ... so only recycling can satisfy further allocations: the
    // bump pointer itself is spent.
    EXPECT_THROW(p.alloc(256, 16), FatalError);
    p.free(held.back());
    held.pop_back();
    const auto again = p.alloc(256, 16);
    // The recycled vector is fully usable.
    std::vector<uint64_t> data(256, 0x1234);
    p.store(again, data);
    EXPECT_EQ(p.load(again), data);
    // A free of shape A does not satisfy shape B (exact row-count
    // match keeps the co-location guarantee).
    p.free(held.back());
    held.pop_back();
    EXPECT_THROW(p.alloc(256, 32), FatalError);
    EXPECT_NO_THROW(p.alloc(256, 16));
}

TEST(Processor, FreedHandleIsPoison)
{
    Processor p(testCfg());
    const auto v = p.alloc(64, 8);
    const auto w = p.alloc(64, 8);
    p.free(v);
    EXPECT_THROW(p.load(v), FatalError);
    EXPECT_THROW(p.store(v, std::vector<uint64_t>(64, 0)),
                 FatalError);
    EXPECT_THROW(p.run(OpKind::Add, w, v, v), FatalError);
    EXPECT_THROW(p.free(v), FatalError); // double free
    // The untouched handle keeps working.
    std::vector<uint64_t> data(64, 9);
    p.store(w, data);
    EXPECT_EQ(p.load(w), data);
}

} // namespace
} // namespace simdram
