/**
 * @file
 * Cross-module integration tests: full pipelines from circuits
 * through μPrograms to DRAM execution, analytic-vs-functional cost
 * agreement, and multi-operation bbop programs on every backend.
 */

#include <gtest/gtest.h>

#include "apps/engine.h"
#include "common/rng.h"
#include "isa/dispatcher.h"
#include "logic/equiv.h"

namespace simdram
{
namespace
{

/**
 * The analytic engine (used by all application numbers) must agree
 * exactly with what the functional Processor measures for the same
 * configuration and element count.
 */
TEST(Integration, AnalyticMatchesFunctionalCost)
{
    DramConfig cfg = DramConfig::forTesting(256, 512);
    cfg.computeBanks = 2;
    Processor proc(cfg);
    InDramEngine engine(cfg, Backend::Simdram, "SIMDRAM");

    const size_t n = 700; // 3 segments over 2 banks
    const auto a = proc.alloc(n, 8);
    const auto b = proc.alloc(n, 8);
    const auto y = proc.alloc(n, 8);
    proc.store(a, std::vector<uint64_t>(n, 11));
    proc.store(b, std::vector<uint64_t>(n, 22));
    proc.resetStats();
    proc.run(OpKind::Add, y, a, b);

    const auto functional = proc.computeStats();
    const auto analytic = engine.opCost(OpKind::Add, 8, n);
    EXPECT_DOUBLE_EQ(functional.latencyNs, analytic.latencyNs);
    EXPECT_DOUBLE_EQ(functional.energyPj, analytic.energyPj);
}

TEST(Integration, ReluOfAddPipeline)
{
    // y = relu(a + b) with signed 8-bit values, via bbop programs,
    // on all three backends.
    const size_t n = 500;
    Rng rng(17);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xff;
        db[i] = rng.next() & 0xff;
    }

    for (Backend backend : {Backend::Simdram, Backend::SimdramNaive,
                            Backend::Ambit}) {
        Processor proc(DramConfig::forTesting(256, 512), backend);
        BbopDispatcher d(proc);
        const uint16_t a = d.defineObject(n, 8);
        const uint16_t b = d.defineObject(n, 8);
        const uint16_t t = d.defineObject(n, 8);
        const uint16_t y = d.defineObject(n, 8);
        d.writeObject(a, da);
        d.writeObject(b, db);
        d.exec({BbopInstr::trsp(a, 8), BbopInstr::trsp(b, 8),
                BbopInstr::trsp(t, 8), BbopInstr::trsp(y, 8),
                BbopInstr::binary(OpKind::Add, 8, t, a, b),
                BbopInstr::unary(OpKind::Relu, 8, y, t),
                BbopInstr::trspInv(y, 8)});
        const auto &out = d.readObject(y);
        for (size_t i = 0; i < n; ++i) {
            const uint64_t sum = (da[i] + db[i]) & 0xff;
            const uint64_t expect = (sum & 0x80) ? 0 : sum;
            ASSERT_EQ(out[i], expect)
                << toString(backend) << " lane " << i;
        }
    }
}

TEST(Integration, ReplayModesAgreeOnPipeline)
{
    // A pipeline mixing μProgram replay with the row-bookkeeping
    // paths (fillConstant, shifts) must be identical — results and
    // statistics — under the reference and batched replay modes.
    const size_t n = 700; // 3 segments
    Rng rng(41);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xffff;
        db[i] = rng.next() & 0xffff;
    }

    auto runPipeline = [&](ReplayMode mode, DramStats &stats) {
        DramConfig cfg = DramConfig::forTesting(256, 512);
        cfg.computeBanks = 2;
        Processor p(cfg);
        p.setReplayMode(mode);
        const auto a = p.alloc(n, 16);
        const auto b = p.alloc(n, 16);
        const auto t = p.alloc(n, 16);
        const auto u = p.alloc(n, 16);
        const auto y = p.alloc(n, 16);
        p.store(a, da);
        p.store(b, db);
        p.run(OpKind::Add, t, a, b);
        p.shiftLeft(u, t, 3);
        p.fillConstant(y, 0);
        p.run(OpKind::Max, y, u, b);
        stats = p.computeStats();
        return p.load(y);
    };

    DramStats ref_stats, bat_stats;
    const auto ref = runPipeline(ReplayMode::Reference, ref_stats);
    const auto bat = runPipeline(ReplayMode::Batched, bat_stats);
    EXPECT_EQ(bat, ref);
    EXPECT_EQ(bat_stats.aaps, ref_stats.aaps);
    EXPECT_EQ(bat_stats.aps, ref_stats.aps);
    EXPECT_EQ(bat_stats.activates, ref_stats.activates);
    EXPECT_EQ(bat_stats.multiActivates, ref_stats.multiActivates);
    EXPECT_EQ(bat_stats.precharges, ref_stats.precharges);
    EXPECT_DOUBLE_EQ(bat_stats.latencyNs, ref_stats.latencyNs);
    EXPECT_DOUBLE_EQ(bat_stats.energyPj, ref_stats.energyPj);

    // Sanity: the result is what the pipeline computes.
    for (size_t i = 0; i < n; ++i) {
        const uint64_t sum = (da[i] + db[i]) & 0xffff;
        const uint64_t shifted = (sum << 3) & 0xffff;
        ASSERT_EQ(ref[i], std::max(shifted, db[i])) << i;
    }
}

TEST(Integration, PredicatedSaturatingAdd)
{
    // Brightness-style saturation via a three-op bbop program.
    const size_t n = 300;
    Processor proc(DramConfig::forTesting(256, 512));
    BbopDispatcher d(proc);
    Rng rng(23);
    std::vector<uint64_t> img(n);
    for (auto &v : img)
        v = rng.below(256);

    const uint16_t a = d.defineObject(n, 16);
    const uint16_t delta = d.defineObject(n, 16);
    const uint16_t cap = d.defineObject(n, 16);
    const uint16_t sum = d.defineObject(n, 16);
    const uint16_t ovf = d.defineObject(n, 1);
    const uint16_t y = d.defineObject(n, 16);
    d.writeObject(a, img);
    d.writeObject(delta, std::vector<uint64_t>(n, 100));
    d.writeObject(cap, std::vector<uint64_t>(n, 255));
    for (uint16_t obj : {a, delta, cap, sum, y})
        d.exec(BbopInstr::trsp(obj, 16));
    d.exec(BbopInstr::trsp(ovf, 1));

    d.exec(BbopInstr::binary(OpKind::Add, 16, sum, a, delta));
    d.exec(BbopInstr::binary(OpKind::Gt, 16, ovf, sum, cap));
    d.exec(BbopInstr::predicated(OpKind::IfElse, 16, y, cap, sum,
                                 ovf));
    d.exec(BbopInstr::trspInv(y, 16));

    const auto &out = d.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], std::min<uint64_t>(img[i] + 100, 255));
}

TEST(Integration, NaiveAndGreedyAgreeFunctionally)
{
    const size_t n = 256;
    Rng rng(31);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xffff;
        db[i] = rng.next() & 0xffff;
    }
    std::vector<uint64_t> out_greedy, out_naive;
    for (Backend backend :
         {Backend::Simdram, Backend::SimdramNaive}) {
        Processor proc(DramConfig::forTesting(256, 512), backend);
        const auto a = proc.alloc(n, 16);
        const auto b = proc.alloc(n, 16);
        const auto y = proc.alloc(n, 16);
        proc.store(a, da);
        proc.store(b, db);
        proc.run(OpKind::Mul, y, a, b);
        if (backend == Backend::Simdram)
            out_greedy = proc.load(y);
        else
            out_naive = proc.load(y);
    }
    EXPECT_EQ(out_greedy, out_naive);
}

TEST(Integration, GreedyUsesFewerCommandsEndToEnd)
{
    const size_t n = 256;
    DramStats greedy_stats, naive_stats;
    for (Backend backend :
         {Backend::Simdram, Backend::SimdramNaive}) {
        Processor proc(DramConfig::forTesting(256, 512), backend);
        const auto a = proc.alloc(n, 16);
        const auto b = proc.alloc(n, 16);
        const auto y = proc.alloc(n, 16);
        proc.store(a, std::vector<uint64_t>(n, 5));
        proc.store(b, std::vector<uint64_t>(n, 9));
        proc.resetStats();
        proc.run(OpKind::Add, y, a, b);
        if (backend == Backend::Simdram)
            greedy_stats = proc.computeStats();
        else
            naive_stats = proc.computeStats();
    }
    EXPECT_LT(greedy_stats.aaps + greedy_stats.aps,
              naive_stats.aaps + naive_stats.aps);
}

TEST(Integration, OptimizerNeverBreaksCompiledExecution)
{
    // Compile the *unoptimized* naive MIG and the optimized MIG of
    // the same op; both must produce identical in-DRAM results.
    OperationLibrary lib;
    const size_t n = 200;
    Rng rng(41);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xff;
        db[i] = rng.next() & 0xff;
    }

    // Equivalence at the circuit level is checked elsewhere; here we
    // additionally check the full compile+execute path end to end.
    const auto eq = checkEquivalence(lib.migNaive(OpKind::Gt, 8),
                                     lib.mig(OpKind::Gt, 8));
    EXPECT_TRUE(eq.equivalent) << eq.message;

    Processor proc(DramConfig::forTesting(256, 512));
    const auto a = proc.alloc(n, 8);
    const auto b = proc.alloc(n, 8);
    const auto y = proc.alloc(n, 1);
    proc.store(a, da);
    proc.store(b, db);
    proc.run(OpKind::Gt, y, a, b);
    const auto got = proc.load(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], da[i] > db[i] ? 1u : 0u);
}

} // namespace
} // namespace simdram
