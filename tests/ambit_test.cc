/**
 * @file
 * Tests for the Ambit baseline compiler: recipe shapes, functional
 * correctness, and the SIMDRAM-vs-Ambit command-count relationship
 * the paper's comparison rests on.
 */

#include <gtest/gtest.h>

#include "ambit/ambit_synth.h"
#include "common/error.h"
#include "common/rng.h"
#include "exec/control_unit.h"
#include "logic/simulate.h"
#include "ops/library.h"
#include "uprog/allocator.h"

namespace simdram
{
namespace
{

TEST(Ambit, RejectsMig)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("y", c.mkMaj(a, b, Circuit::kLit0));
    EXPECT_THROW(compileAmbit(c), FatalError);
}

TEST(Ambit, AndRecipeIsFourAaps)
{
    Circuit c;
    const auto a = c.addInputBus("a", 1);
    const auto b = c.addInputBus("b", 1);
    c.addOutputBus("y", {c.mkAnd(a[0], b[0])});
    CompileReport rep;
    const auto prog = compileAmbit(c, &rep);
    // AAP(a,T0) AAP(b,T1) AAP(C0,T2) AAP(TRA,dst) + output copy.
    EXPECT_EQ(prog.aapCount(), 5u);
    EXPECT_EQ(prog.apCount(), 0u);
}

TEST(Ambit, NotCostsTwoExtraAaps)
{
    Circuit c1, c2;
    {
        const auto a = c1.addInputBus("a", 1);
        const auto b = c1.addInputBus("b", 1);
        c1.addOutputBus("y", {c1.mkAnd(a[0], b[0])});
    }
    {
        const auto a = c2.addInputBus("a", 1);
        const auto b = c2.addInputBus("b", 1);
        c2.addOutputBus("y",
                        {c2.mkAnd(Circuit::litNot(a[0]), b[0])});
    }
    const auto p1 = compileAmbit(c1);
    const auto p2 = compileAmbit(c2);
    EXPECT_EQ(p2.aapCount(), p1.aapCount() + 1u);
}

TEST(Ambit, SimdramNeedsFewerCommandsOnArithmetic)
{
    OperationLibrary lib;
    for (OpKind op : {OpKind::Add, OpKind::Sub, OpKind::Mul,
                      OpKind::Div, OpKind::Bitcount,
                      OpKind::IfElse}) {
        const auto ambit = compileAmbit(lib.aoig(op, 16));
        const auto simdram = compileMig(lib.mig(op, 16));
        const size_t ambit_cmds = ambit.ops.size();
        const size_t simdram_cmds = simdram.ops.size();
        EXPECT_LT(simdram_cmds, ambit_cmds) << toString(op);
        // The paper reports up to ~5x; sanity-bound the ratio.
        EXPECT_LT(static_cast<double>(ambit_cmds) / simdram_cmds,
                  8.0)
            << toString(op);
    }
}

TEST(Ambit, AdditionRatioInPaperBand)
{
    OperationLibrary lib;
    const auto ambit = compileAmbit(lib.aoig(OpKind::Add, 32));
    const auto simdram = compileMig(lib.mig(OpKind::Add, 32));
    const double ratio = static_cast<double>(ambit.ops.size()) /
                         static_cast<double>(simdram.ops.size());
    // MAJ-based addition should need 2x-5x fewer activations.
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 5.5);
}

/** Functional correctness of Ambit-compiled operations. */
class AmbitOpTest
    : public ::testing::TestWithParam<std::tuple<OpKind, size_t>>
{
};

TEST_P(AmbitOpTest, ComputesReferenceValues)
{
    const auto [op, width] = GetParam();
    OperationLibrary lib;
    const Circuit &aoig = lib.aoig(op, width);
    const auto prog = compileAmbit(aoig);

    DramConfig cfg = DramConfig::forTesting(256, 512);
    cfg.scratchRows = 224;
    ASSERT_LE(prog.scratchRows, cfg.scratchRows);
    Subarray sub(cfg);

    const auto sig = signatureOf(op, width);
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    Rng rng(0x777 + width);
    const size_t lanes = cfg.rowBits;
    std::map<std::string, std::vector<uint64_t>> in;
    for (size_t i = 0; i < lanes; ++i) {
        in["a"].push_back(rng.next() & mask);
        if (sig.numInputs == 2)
            in["b"].push_back(rng.next() & mask);
        if (sig.hasSel)
            in["sel"].push_back(rng.next() & 1);
    }

    std::vector<uint32_t> in_bases, out_bases;
    uint32_t next = 0;
    for (const auto &r : prog.inputRegions) {
        in_bases.push_back(next);
        const auto rows = packVertical(in.at(r.name), r.rows);
        for (size_t j = 0; j < r.rows; ++j)
            sub.pokeData(next + j, rows[j]);
        next += static_cast<uint32_t>(r.rows);
    }
    for (const auto &r : prog.outputRegions) {
        out_bases.push_back(next);
        next += static_cast<uint32_t>(r.rows);
    }

    ControlUnit cu;
    cu.execute(sub, prog, in_bases, out_bases,
               static_cast<uint32_t>(cfg.rowsPerSubarray -
                                     cfg.scratchRows));

    std::vector<BitRow> out_rows;
    for (size_t j = 0; j < prog.outputRowCount(); ++j)
        out_rows.push_back(sub.peekData(out_bases[0] + j));
    const auto got = unpackVertical(out_rows);

    for (size_t i = 0; i < lanes; ++i) {
        const uint64_t expect = referenceOp(
            op, width, in["a"][i],
            sig.numInputs == 2 ? in["b"][i] : 0,
            sig.hasSel ? in["sel"][i] != 0 : false);
        ASSERT_EQ(got[i], expect)
            << toString(op) << " w=" << width << " lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AmbitOpTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{4}, size_t{8})),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace simdram
