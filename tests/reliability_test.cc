/**
 * @file
 * Tests for the process-variation reliability model: nominal
 * correctness, monotonic degradation with variation, the
 * technology-scaling trend, and the whole-operation failure math.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/fault_injector.h"
#include "reliability/montecarlo.h"

namespace simdram
{
namespace
{

TEST(Variation, NodesAreOrderedByCellCap)
{
    const auto &nodes = techNodes();
    for (size_t i = 1; i < nodes.size(); ++i)
        EXPECT_LT(nodes[i].cellCapFf, nodes[i - 1].cellCapFf);
}

TEST(Variation, UniformKnobSetsAllSigmas)
{
    const auto v = VariationParams::uniform(0.1);
    EXPECT_DOUBLE_EQ(v.sigmaCellCap, 0.1);
    EXPECT_DOUBLE_EQ(v.sigmaBlCap, 0.1);
    EXPECT_DOUBLE_EQ(v.sigmaVdd, 0.1);
    EXPECT_DOUBLE_EQ(v.senseOffsetMv, 10.0);
}

TEST(Variation, NoVariationNeverFails)
{
    Rng rng(1);
    const auto &node = techNodes().back(); // smallest node
    const auto var = VariationParams::uniform(0.0);
    for (int pattern = 0; pattern < 8; ++pattern) {
        const std::array<bool, 3> bits = {
            (pattern & 1) != 0, (pattern & 2) != 0,
            (pattern & 4) != 0};
        for (int i = 0; i < 100; ++i)
            EXPECT_TRUE(sampleTra(node, var, bits, rng))
                << "pattern " << pattern;
    }
}

TEST(MonteCarlo, ZeroVariationZeroFailures)
{
    for (const auto &node : techNodes()) {
        const auto r = traFailureRate(
            node, VariationParams::uniform(0.0), 20000);
        EXPECT_EQ(r.failures, 0u) << node.name;
    }
}

TEST(MonteCarlo, NominalVariationIsReliable)
{
    // Realistic manufacturing variation (~5%) must keep TRA solid.
    const auto r = traFailureRate(
        techNodes()[2], VariationParams::uniform(0.05), 100000);
    EXPECT_LT(r.traFailureRate, 1e-3);
}

TEST(MonteCarlo, FailureRateMonotonicInVariation)
{
    const auto &node = techNodes()[3];
    double prev = -1.0;
    for (double frac : {0.0, 0.10, 0.20, 0.30}) {
        const auto r = traFailureRate(
            node, VariationParams::uniform(frac), 60000);
        EXPECT_GE(r.traFailureRate, prev) << "frac " << frac;
        prev = r.traFailureRate;
    }
    EXPECT_GT(prev, 0.0) << "30% variation must show failures";
}

TEST(MonteCarlo, SmallerNodeIsNoMoreReliable)
{
    const auto var = VariationParams::uniform(0.22);
    const auto big = traFailureRate(techNodes().front(), var,
                                    200000);
    const auto small = traFailureRate(techNodes().back(), var,
                                      200000);
    EXPECT_GE(small.traFailureRate, big.traFailureRate);
}

TEST(MonteCarlo, Deterministic)
{
    const auto &node = techNodes()[1];
    const auto var = VariationParams::uniform(0.25);
    const auto a = traFailureRate(node, var, 10000, 9);
    const auto b = traFailureRate(node, var, 10000, 9);
    EXPECT_EQ(a.failures, b.failures);
}

TEST(MonteCarlo, InjectorReproducesModelRate)
{
    // The runtime experiences the model's predictions through the
    // TRA fault injector: a statistical injector driven at the
    // Monte-Carlo rate must show the same empirical failure rate,
    // within the binomial sampling tolerance of both estimates.
    const auto &node = techNodes()[3];
    const auto var = VariationParams::uniform(0.30);
    const auto mc = traFailureRate(node, var, 60000, 11);
    const double p = mc.traFailureRate;
    ASSERT_GT(p, 0.0) << "model must predict failures at 30%";
    ASSERT_LT(p, 1.0);

    const size_t trials = 200000;
    auto inj = FaultInjector::statistical(p, 17);
    for (size_t i = 0; i < trials; ++i)
        inj->sampleTra();
    EXPECT_EQ(inj->trasObserved(), trials);

    // 5-sigma band of the injector's binomial draw plus the model
    // estimate's own standard error.
    const double tol =
        5.0 * (std::sqrt(p * (1.0 - p) / double(trials)) +
               std::sqrt(p * (1.0 - p) / 60000.0));
    EXPECT_NEAR(inj->empiricalFailureRate(), p, tol);

    // Determinism: same rate and seed, same fault schedule.
    auto rerun = FaultInjector::statistical(p, 17);
    for (size_t i = 0; i < trials; ++i)
        rerun->sampleTra();
    EXPECT_EQ(rerun->trasFailed(), inj->trasFailed());
}

TEST(OpSuccess, Math)
{
    EXPECT_DOUBLE_EQ(opSuccessProbability(0.0, 1000000), 1.0);
    EXPECT_DOUBLE_EQ(opSuccessProbability(1.0, 1), 0.0);
    EXPECT_NEAR(opSuccessProbability(1e-6, 1000), 0.999, 1e-4);
    // More TRAs -> lower success.
    EXPECT_LT(opSuccessProbability(1e-4, 10000),
              opSuccessProbability(1e-4, 100));
}

} // namespace
} // namespace simdram
