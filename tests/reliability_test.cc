/**
 * @file
 * Tests for the process-variation reliability model: nominal
 * correctness, monotonic degradation with variation, the
 * technology-scaling trend, and the whole-operation failure math.
 */

#include <gtest/gtest.h>

#include "reliability/montecarlo.h"

namespace simdram
{
namespace
{

TEST(Variation, NodesAreOrderedByCellCap)
{
    const auto &nodes = techNodes();
    for (size_t i = 1; i < nodes.size(); ++i)
        EXPECT_LT(nodes[i].cellCapFf, nodes[i - 1].cellCapFf);
}

TEST(Variation, UniformKnobSetsAllSigmas)
{
    const auto v = VariationParams::uniform(0.1);
    EXPECT_DOUBLE_EQ(v.sigmaCellCap, 0.1);
    EXPECT_DOUBLE_EQ(v.sigmaBlCap, 0.1);
    EXPECT_DOUBLE_EQ(v.sigmaVdd, 0.1);
    EXPECT_DOUBLE_EQ(v.senseOffsetMv, 10.0);
}

TEST(Variation, NoVariationNeverFails)
{
    Rng rng(1);
    const auto &node = techNodes().back(); // smallest node
    const auto var = VariationParams::uniform(0.0);
    for (int pattern = 0; pattern < 8; ++pattern) {
        const std::array<bool, 3> bits = {
            (pattern & 1) != 0, (pattern & 2) != 0,
            (pattern & 4) != 0};
        for (int i = 0; i < 100; ++i)
            EXPECT_TRUE(sampleTra(node, var, bits, rng))
                << "pattern " << pattern;
    }
}

TEST(MonteCarlo, ZeroVariationZeroFailures)
{
    for (const auto &node : techNodes()) {
        const auto r = traFailureRate(
            node, VariationParams::uniform(0.0), 20000);
        EXPECT_EQ(r.failures, 0u) << node.name;
    }
}

TEST(MonteCarlo, NominalVariationIsReliable)
{
    // Realistic manufacturing variation (~5%) must keep TRA solid.
    const auto r = traFailureRate(
        techNodes()[2], VariationParams::uniform(0.05), 100000);
    EXPECT_LT(r.traFailureRate, 1e-3);
}

TEST(MonteCarlo, FailureRateMonotonicInVariation)
{
    const auto &node = techNodes()[3];
    double prev = -1.0;
    for (double frac : {0.0, 0.10, 0.20, 0.30}) {
        const auto r = traFailureRate(
            node, VariationParams::uniform(frac), 60000);
        EXPECT_GE(r.traFailureRate, prev) << "frac " << frac;
        prev = r.traFailureRate;
    }
    EXPECT_GT(prev, 0.0) << "30% variation must show failures";
}

TEST(MonteCarlo, SmallerNodeIsNoMoreReliable)
{
    const auto var = VariationParams::uniform(0.22);
    const auto big = traFailureRate(techNodes().front(), var,
                                    200000);
    const auto small = traFailureRate(techNodes().back(), var,
                                      200000);
    EXPECT_GE(small.traFailureRate, big.traFailureRate);
}

TEST(MonteCarlo, Deterministic)
{
    const auto &node = techNodes()[1];
    const auto var = VariationParams::uniform(0.25);
    const auto a = traFailureRate(node, var, 10000, 9);
    const auto b = traFailureRate(node, var, 10000, 9);
    EXPECT_EQ(a.failures, b.failures);
}

TEST(OpSuccess, Math)
{
    EXPECT_DOUBLE_EQ(opSuccessProbability(0.0, 1000000), 1.0);
    EXPECT_DOUBLE_EQ(opSuccessProbability(1.0, 1), 0.0);
    EXPECT_NEAR(opSuccessProbability(1e-6, 1000), 0.999, 1e-4);
    // More TRAs -> lower success.
    EXPECT_LT(opSuccessProbability(1e-4, 10000),
              opSuccessProbability(1e-4, 100));
}

} // namespace
} // namespace simdram
