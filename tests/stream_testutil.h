/**
 * @file
 * Shared differential-testing rig for the StreamExecutor: a pair of
 * executors over independent but identically configured DeviceGroups,
 * where every action runs on both and the object images must stay
 * bit-exact while only one side may skip or optimize work. Used by
 * stream_cache_test (runtime cache on vs off, passes off) and
 * stream_ir_test (optimizer passes on vs off, cache off).
 */

#ifndef SIMDRAM_TESTS_STREAM_TESTUTIL_H
#define SIMDRAM_TESTS_STREAM_TESTUTIL_H

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_ir.h"

namespace simdram
{
namespace testutil
{

inline DramConfig
testCfg()
{
    return DramConfig::forTesting(256, 512);
}

inline std::vector<uint64_t>
randomData(size_t n, uint64_t mask, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> v(n);
    for (auto &x : v)
        x = rng.next() & mask;
    return v;
}

/**
 * Executor options with every optimizer pass off; @p cache selects
 * the runtime trsp/init cache. The cache tests use this on both rig
 * sides so pass removals cannot perturb elision accounting; the pass
 * tests use it (cache off) as the reference side.
 */
inline StreamExecutorOptions
noPassesOpts(bool cache)
{
    StreamExecutorOptions o;
    o.enableStreamCache = cache;
    o.enableFusion = false;
    o.enableDeadWriteElim = false;
    o.enableTrspHoist = false;
    return o;
}

/**
 * A pair of executors over independent but identically configured
 * groups: every action runs on both, and the object images must stay
 * bit-exact while only the "opt" side may skip or remove work. The
 * "ref" side must be constructed with the runtime cache disabled
 * (run() asserts it never elides).
 */
struct DiffRig
{
    DeviceGroup go, gr;
    StreamExecutor opt, ref;
    std::vector<uint16_t> ids;

    DiffRig(size_t devices, const StreamExecutorOptions &optOpts,
            const StreamExecutorOptions &refOpts)
        : go(testCfg(), devices),
          gr(testCfg(), devices),
          opt(go, optOpts),
          ref(gr, refOpts)
    {}

    uint16_t
    define(size_t n, size_t bits)
    {
        const uint16_t a = opt.defineObject(n, bits);
        const uint16_t b = ref.defineObject(n, bits);
        EXPECT_EQ(a, b);
        ids.push_back(a);
        return a;
    }

    void
    write(uint16_t id, const std::vector<uint64_t> &data)
    {
        opt.writeObject(id, data);
        ref.writeObject(id, data);
    }

    /** Submits on both; returns (opt, ref) results. */
    std::pair<StreamResult, StreamResult>
    run(const std::vector<BbopInstr> &stream)
    {
        StreamResult ro = opt.submit(stream).wait();
        StreamResult rr = ref.submit(stream).wait();
        EXPECT_EQ(rr.cachedInstructions, 0u);
        EXPECT_EQ(ro.instructions, rr.instructions);
        return {ro, rr};
    }

    /**
     * Submits the same multi-segment program on both sides and waits
     * for every handle; returns (opt, ref) per-segment results.
     */
    std::pair<std::vector<StreamResult>, std::vector<StreamResult>>
    runIR(const StreamIR &ir)
    {
        std::vector<StreamResult> ro, rr;
        for (auto &h : opt.submit(ir))
            ro.push_back(h.wait());
        for (auto &h : ref.submit(ir))
            rr.push_back(h.wait());
        return {std::move(ro), std::move(rr)};
    }

    /** Every object's host image must match bit-exactly. */
    void
    expectSameImages()
    {
        for (uint16_t id : ids)
            ASSERT_EQ(opt.readObject(id), ref.readObject(id))
                << "object " << id;
    }
};

} // namespace testutil
} // namespace simdram

#endif // SIMDRAM_TESTS_STREAM_TESTUTIL_H
