/**
 * @file
 * Tests for the bbop ISA: encoding round-trips, assembly printing,
 * and the dispatcher's end-to-end execution model.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "isa/dispatcher.h"
#include "malformed_corpus.h"
#include "runtime/stream_executor.h"

namespace simdram
{
namespace
{

TEST(Bbop, EncodeDecodeRoundTripAllOps)
{
    for (OpKind op : kAllOps) {
        const BbopInstr i =
            BbopInstr::predicated(op, 32, 1, 2, 3, 4);
        const BbopInstr back = decodeBbop(encodeBbop(i));
        EXPECT_EQ(back, i) << toString(op);
    }
}

TEST(Bbop, EncodeDecodeTranspose)
{
    const BbopInstr t = BbopInstr::trsp(100, 16);
    EXPECT_EQ(decodeBbop(encodeBbop(t)), t);
    const BbopInstr ti = BbopInstr::trspInv(100, 16);
    EXPECT_EQ(decodeBbop(encodeBbop(ti)), ti);
}

TEST(Bbop, FieldsSurviveExtremes)
{
    BbopInstr i = BbopInstr::binary(OpKind::XorRed, 64, 0xffe,
                                    0, 0xffe);
    const BbopInstr back = decodeBbop(encodeBbop(i));
    EXPECT_EQ(back.dst, 0xffe);
    EXPECT_EQ(back.width, 64);
}

TEST(Bbop, EncodeRejectsBadWidth)
{
    BbopInstr i = BbopInstr::trsp(0, 16);
    i.width = 0;
    EXPECT_THROW(encodeBbop(i), FatalError);
    i.width = 100;
    EXPECT_THROW(encodeBbop(i), FatalError);
}

TEST(Bbop, AsmForms)
{
    EXPECT_EQ(toAsm(BbopInstr::trsp(3, 32)), "bbop_trsp.32 d3");
    EXPECT_EQ(toAsm(BbopInstr::binary(OpKind::Add, 32, 2, 0, 1)),
              "bbop_add.32 d2, d0, d1");
    EXPECT_EQ(toAsm(BbopInstr::unary(OpKind::Relu, 8, 1, 0)),
              "bbop_relu.8 d1, d0");
    EXPECT_EQ(
        toAsm(BbopInstr::predicated(OpKind::IfElse, 16, 3, 0, 1, 2)),
        "bbop_if_else.16 d3, d0, d1, d2");
}

class DispatcherTest : public ::testing::Test
{
  protected:
    DispatcherTest()
        : proc_(DramConfig::forTesting(256, 512)), disp_(proc_)
    {
    }

    Processor proc_;
    BbopDispatcher disp_;
};

TEST_F(DispatcherTest, EndToEndAddProgram)
{
    const size_t n = 300;
    Rng rng(5);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xffff;
        db[i] = rng.next() & 0xffff;
    }

    const uint16_t a = disp_.defineObject(n, 16);
    const uint16_t b = disp_.defineObject(n, 16);
    const uint16_t y = disp_.defineObject(n, 16);
    disp_.writeObject(a, da);
    disp_.writeObject(b, db);

    disp_.exec({BbopInstr::trsp(a, 16), BbopInstr::trsp(b, 16),
                BbopInstr::trsp(y, 16),
                BbopInstr::binary(OpKind::Add, 16, y, a, b),
                BbopInstr::trspInv(y, 16)});

    const auto &out = disp_.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] + db[i]) & 0xffff) << i;
}

TEST_F(DispatcherTest, OpOnHorizontalObjectRejected)
{
    const uint16_t a = disp_.defineObject(8, 8);
    const uint16_t y = disp_.defineObject(8, 8);
    disp_.exec(BbopInstr::trsp(y, 8));
    EXPECT_THROW(disp_.exec(BbopInstr::unary(OpKind::Relu, 8, y, a)),
                 FatalError);
}

TEST_F(DispatcherTest, TrspInvBeforeTrspRejected)
{
    const uint16_t a = disp_.defineObject(8, 8);
    EXPECT_THROW(disp_.exec(BbopInstr::trspInv(a, 8)), FatalError);
}

TEST_F(DispatcherTest, TrspWidthMismatchRejected)
{
    const uint16_t a = disp_.defineObject(8, 8);
    EXPECT_THROW(disp_.exec(BbopInstr::trsp(a, 16)), FatalError);
}

TEST_F(DispatcherTest, BadObjectIdRejectedTyped)
{
    // Unknown object ids surface as the typed BbopError (a subtype
    // of FatalError), so stream-level machinery can tell a malformed
    // stream apart from other fatal conditions.
    EXPECT_THROW(disp_.exec(BbopInstr::trsp(999, 8)), BbopError);
    EXPECT_THROW(disp_.exec(BbopInstr::binary(OpKind::Add, 8, 0,
                                              500, 501)),
                 BbopError);
}

TEST_F(DispatcherTest, UnknownOpcodeRejectedNotSilentlyRun)
{
    // The seed dispatcher fell through to the Op path on opcodes it
    // did not know; they must be rejected instead.
    const uint16_t a = disp_.defineObject(8, 8);
    const uint16_t y = disp_.defineObject(8, 8);
    disp_.exec(BbopInstr::trsp(a, 8));
    disp_.exec(BbopInstr::trsp(y, 8));
    BbopInstr bogus = BbopInstr::unary(OpKind::Relu, 8, y, a);
    bogus.opcode = static_cast<BbopOpcode>(9);
    EXPECT_THROW(disp_.exec(bogus), BbopError);
    BbopInstr bad_op = BbopInstr::unary(OpKind::Relu, 8, y, a);
    bad_op.op = static_cast<OpKind>(31);
    EXPECT_THROW(disp_.exec(bad_op), BbopError);
}

TEST_F(DispatcherTest, OpWidthMismatchRejected)
{
    const uint16_t a = disp_.defineObject(8, 8);
    const uint16_t y = disp_.defineObject(8, 8);
    disp_.exec(BbopInstr::trsp(a, 8));
    disp_.exec(BbopInstr::trsp(y, 8));
    // The instruction width must match the source object; the seed
    // silently priced the program at the object's width instead.
    EXPECT_THROW(disp_.exec(BbopInstr::unary(OpKind::Relu, 16, y,
                                             a)),
                 BbopError);
    // And the destination must match the operation's output width:
    // a comparison writes a 1-bit mask, not an 8-bit object.
    const uint16_t b = disp_.defineObject(8, 8);
    disp_.exec(BbopInstr::trsp(b, 8));
    EXPECT_THROW(disp_.exec(BbopInstr::binary(OpKind::Gt, 8, y, a,
                                              b)),
                 BbopError);
    // A second-source width mismatch is typed too.
    const uint16_t c16 = disp_.defineObject(8, 16);
    disp_.exec(BbopInstr::trsp(c16, 16));
    EXPECT_THROW(disp_.exec(BbopInstr::binary(OpKind::Add, 8, y, a,
                                              c16)),
                 BbopError);
}

TEST_F(DispatcherTest, InitShiftAndInPlaceValidated)
{
    const uint16_t a = disp_.defineObject(8, 8);
    const uint16_t b = disp_.defineObject(8, 8);
    const uint16_t w16 = disp_.defineObject(8, 16);
    disp_.exec(BbopInstr::trsp(a, 8));
    disp_.exec(BbopInstr::trsp(b, 8));
    disp_.exec(BbopInstr::trsp(w16, 16));
    // Init immediate wider than the object.
    EXPECT_THROW(disp_.exec(BbopInstr::init(a, 8, 0x100)),
                 BbopError);
    // Shift shape mismatch, in-place shift, and width mismatch.
    EXPECT_THROW(disp_.exec(BbopInstr::shift(true, 8, w16, a, 1)),
                 BbopError);
    EXPECT_THROW(disp_.exec(BbopInstr::shift(true, 8, a, a, 1)),
                 BbopError);
    EXPECT_THROW(disp_.exec(BbopInstr::shift(true, 16, a, b, 1)),
                 BbopError);
    // In-place operation.
    EXPECT_THROW(disp_.exec(BbopInstr::binary(OpKind::Add, 8, a,
                                              a, b)),
                 BbopError);
    // TrspInv width mismatch.
    EXPECT_THROW(disp_.exec(BbopInstr::trspInv(a, 16)), BbopError);
}

TEST(BbopDecode, MalformedEncodingsRejectedTyped)
{
    // Unknown opcode bits.
    EXPECT_THROW(decodeBbop(0xf), BbopError);
    // Op instruction with an operation field beyond OpKind.
    const uint64_t bad_op =
        encodeBbop(BbopInstr::binary(OpKind::Add, 8, 0, 1, 2)) |
        (uint64_t{0x1f} << 4);
    EXPECT_THROW(decodeBbop(bad_op), BbopError);
    // Width 0 and width > 64.
    uint64_t w = encodeBbop(BbopInstr::trsp(3, 16));
    w &= ~(uint64_t{0x7f} << 9);
    EXPECT_THROW(decodeBbop(w), BbopError);
    w |= uint64_t{100} << 9;
    EXPECT_THROW(decodeBbop(w), BbopError);
    // Valid encodings still round-trip.
    const BbopInstr ok = BbopInstr::binary(OpKind::Add, 8, 0, 1, 2);
    EXPECT_EQ(decodeBbop(encodeBbop(ok)), ok);
}

// ---------------------------------------------------------------
// Validator unification: both entry points (the dispatcher and the
// stream executor) run the same BbopValidator, so every malformed
// stream must be rejected with the same typed BbopError by both.
// ---------------------------------------------------------------

/**
 * Runs @p stream through both paths against identically shaped
 * object tables (two 8-bit, one 16-bit, one 1-bit object of @p n
 * elements, plus one 8-bit object of n/2 elements) and returns
 * {dispatcher error, executor error} ("" = accepted).
 */
std::pair<std::string, std::string>
rejectionOnBothPaths(const std::vector<BbopInstr> &stream)
{
    const DramConfig cfg = DramConfig::forTesting(256, 512);

    Processor proc(cfg);
    BbopDispatcher disp(proc);
    DeviceGroup group(cfg, 2);
    StreamExecutor ex(group);
    for (auto [elements, bits] : testcorpus::corpusShapes()) {
        disp.defineObject(elements, bits);
        ex.defineObject(elements, bits);
    }

    std::string disp_err, ex_err;
    try {
        for (const BbopInstr &i : stream)
            disp.exec(i);
    } catch (const BbopError &e) {
        disp_err = e.what();
    }
    try {
        ex.submit(stream).wait();
    } catch (const BbopError &e) {
        ex_err = e.what();
    }
    return {disp_err, ex_err};
}

TEST(ValidatorUnification, MalformedStreamsRejectIdenticallyTyped)
{
    // The corpus lives in malformed_corpus.h (one stream per rule
    // family, same shared object table) so analysis_test can run the
    // analyzer-vs-validator differential over the identical streams.
    const auto &bad = testcorpus::malformedStreams();

    for (size_t s = 0; s < bad.size(); ++s) {
        const auto [disp_err, ex_err] = rejectionOnBothPaths(bad[s]);
        EXPECT_FALSE(disp_err.empty())
            << "stream " << s << " accepted by the dispatcher";
        EXPECT_FALSE(ex_err.empty())
            << "stream " << s << " accepted by the stream executor";
        EXPECT_EQ(disp_err, ex_err) << "stream " << s;
    }
}

TEST(ValidatorUnification, InitWidthMismatchRejectedByBothPaths)
{
    // Regression for the gap unification surfaced: bbop_init was the
    // only opcode whose width field was never checked against the
    // object, so both paths accepted a bbop_init.8 on a 16-bit
    // object. They must now throw the same BbopError.
    const std::vector<BbopInstr> stream = {
        BbopInstr::trsp(2, 16), // d2 is the 16-bit object
        BbopInstr::init(2, 8, 5),
    };
    const auto [disp_err, ex_err] = rejectionOnBothPaths(stream);
    EXPECT_FALSE(disp_err.empty());
    EXPECT_EQ(disp_err, ex_err);
    EXPECT_NE(disp_err.find("bbop_init: width mismatch"),
              std::string::npos)
        << disp_err;
}

TEST(ValidatorUnification, ValidStreamsAcceptedByBothPaths)
{
    for (const auto &ok : testcorpus::wellFormedStreams()) {
        const auto [disp_err, ex_err] = rejectionOnBothPaths(ok);
        EXPECT_EQ(disp_err, "");
        EXPECT_EQ(ex_err, "");
    }
}

TEST(ValidatorUnification, FullVerticalWritesEstablishLayout)
{
    // Relaxed layout rules (isa/validate.h): init, op and shift
    // destinations fully write the vertical image, so they ESTABLISH
    // the vertical layout rather than requiring it — that is what
    // lets the stream optimizer drop a trsp whose image is
    // overwritten before being read. Reads still require it, so a
    // stream whose first touch of an object is a READ stays rejected
    // (see the trspInv / op-source cases in the bad list above).
    // Every destination below is an object nothing transposed:
    // d0 via a shift, d3 via an op, d2 via an init; trsp_inv then
    // READS the op-established d3.
    const std::vector<BbopInstr> ok = {
        BbopInstr::trsp(1, 8),
        BbopInstr::shift(true, 8, 0, 1, 2),
        BbopInstr::binary(OpKind::Gt, 8, 3, 0, 1),
        BbopInstr::init(2, 16, 7),
        BbopInstr::trspInv(3, 1),
    };
    const auto [disp_err, ex_err] = rejectionOnBothPaths(ok);
    EXPECT_EQ(disp_err, "");
    EXPECT_EQ(ex_err, "");

    // Both paths produce the written image, not stale data: an
    // init-first object reads back its constant on the dispatcher
    // and the executor alike.
    const size_t n = 12;
    const DramConfig cfg = DramConfig::forTesting(256, 512);
    Processor proc(cfg);
    BbopDispatcher disp(proc);
    DeviceGroup group(cfg, 2);
    StreamExecutor ex(group);
    disp.defineObject(n, 8);
    ex.defineObject(n, 8);
    const std::vector<BbopInstr> s = {
        BbopInstr::init(0, 8, 42),
        BbopInstr::trspInv(0, 8),
    };
    for (const BbopInstr &i : s)
        disp.exec(i);
    ex.submit(s).wait();
    EXPECT_EQ(disp.readObject(0), std::vector<uint64_t>(n, 42));
    EXPECT_EQ(ex.readObject(0), std::vector<uint64_t>(n, 42));
}

TEST_F(DispatcherTest, WriteKeepsVerticalCoherent)
{
    const size_t n = 10;
    const uint16_t a = disp_.defineObject(n, 8);
    const uint16_t y = disp_.defineObject(n, 8);
    disp_.writeObject(a, std::vector<uint64_t>(n, 1));
    disp_.exec(BbopInstr::trsp(a, 8));
    disp_.exec(BbopInstr::trsp(y, 8));
    // Rewriting after transposition updates the vertical copy.
    disp_.writeObject(a, std::vector<uint64_t>(n, 9));
    disp_.exec(BbopInstr::unary(OpKind::Relu, 8, y, a));
    disp_.exec(BbopInstr::trspInv(y, 8));
    EXPECT_EQ(disp_.readObject(y), std::vector<uint64_t>(n, 9));
}

} // namespace
} // namespace simdram
