/**
 * @file
 * Property-based tests: algebraic identities of the operation set,
 * executed end-to-end on the simulated DRAM device across a sweep of
 * element widths. Each property is checked on random data *through
 * the full stack* (circuit -> μProgram -> TRA execution ->
 * transposition), so a violation anywhere in the pipeline surfaces
 * as a broken identity.
 */

#include <gtest/gtest.h>

#include "bitrow_testutil.h"
#include "common/bitrow.h"
#include "common/rng.h"
#include "exec/processor.h"
#include "layout/transpose.h"

namespace simdram
{
namespace
{

using testutil::paddingClear;
using testutil::randomRow;

// ---- BitRow kernel properties (no DRAM stack involved) ---------------

TEST(BitRowProperty, DeMorganIdentities)
{
    Rng rng(0xde30);
    for (size_t w : {size_t{1}, size_t{63}, size_t{64}, size_t{130}}) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        EXPECT_EQ(~(a & b), ~a | ~b) << "w=" << w;
        EXPECT_EQ(~(a | b), ~a & ~b) << "w=" << w;
        EXPECT_EQ(~(a ^ b), (~a) ^ b) << "w=" << w;
    }
}

TEST(BitRowProperty, MajoritySelectIdentities)
{
    Rng rng(0x3a14);
    for (size_t w : {size_t{5}, size_t{64}, size_t{200}}) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        const BitRow c = randomRow(w, rng);
        const BitRow zeros(w, false);
        const BitRow ones(w, true);
        // MAJ(a, b, 0) = a AND b; MAJ(a, b, 1) = a OR b.
        EXPECT_EQ(BitRow::majority3(a, b, zeros), a & b) << "w=" << w;
        EXPECT_EQ(BitRow::majority3(a, b, ones), a | b) << "w=" << w;
        // When a and b agree the majority is a; otherwise c decides:
        // MAJ(a, b, c) = select(a XOR b, c, a).
        EXPECT_EQ(BitRow::majority3(a, b, c),
                  BitRow::select(a ^ b, c, a))
            << "w=" << w;
        // select with equal arms is the arm, independent of sel.
        EXPECT_EQ(BitRow::select(a, b, b), b) << "w=" << w;
        // MAJ is invariant under argument rotation.
        EXPECT_EQ(BitRow::majority3(a, b, c),
                  BitRow::majority3(c, a, b))
            << "w=" << w;
    }
}

TEST(BitRowProperty, PaddingInvariantAfterEveryMutatingOp)
{
    Rng rng(0x9ad5);
    for (size_t w : {size_t{1}, size_t{65}, size_t{130}, size_t{191}}) {
        BitRow r = randomRow(w, rng);
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        const BitRow c = randomRow(w, rng);

        r.fill(true);
        EXPECT_TRUE(paddingClear(r)) << "fill w=" << w;
        r.invert();
        EXPECT_TRUE(paddingClear(r)) << "invert w=" << w;
        r.set(w - 1, true);
        EXPECT_TRUE(paddingClear(r)) << "set w=" << w;
        r &= a;
        EXPECT_TRUE(paddingClear(r)) << "&= w=" << w;
        r |= b;
        EXPECT_TRUE(paddingClear(r)) << "|= w=" << w;
        r ^= c;
        EXPECT_TRUE(paddingClear(r)) << "^= w=" << w;
        r.assignNot(a);
        EXPECT_TRUE(paddingClear(r)) << "assignNot w=" << w;
        a.aapInto(r);
        EXPECT_TRUE(paddingClear(r)) << "aapInto w=" << w;
        BitRow::andNotInto(r, a, b);
        EXPECT_TRUE(paddingClear(r)) << "andNotInto w=" << w;
        BitRow::majority3Into(r, a, b, c);
        EXPECT_TRUE(paddingClear(r)) << "majority3Into w=" << w;
        BitRow::selectInto(r, a, b, c);
        EXPECT_TRUE(paddingClear(r)) << "selectInto w=" << w;
        r.setWord(r.wordCount() - 1, rng.next() & r.lastWordMask());
        r.trimLast();
        EXPECT_TRUE(paddingClear(r)) << "setWord+trimLast w=" << w;
        // popcount must agree with the width-bounded count, which is
        // only true while the invariant holds.
        size_t bits = 0;
        for (size_t i = 0; i < w; ++i)
            bits += r.get(i) ? 1 : 0;
        EXPECT_EQ(r.popcount(), bits) << "w=" << w;
    }
}

TEST(BitRowProperty, TransposeRoundTripRandomShapes)
{
    Rng rng(0x707);
    for (int round = 0; round < 80; ++round) {
        const size_t lanes = 1 + rng.below(260);
        const size_t n = rng.below(lanes + 1);
        const size_t bits = 1 + rng.below(64);
        const uint64_t mask =
            bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
        std::vector<uint64_t> elems(n);
        for (auto &e : elems)
            e = rng.next() & mask;

        // rowsToElements ∘ elementsToRows is the identity on the
        // element side for any (n, bits, lanes).
        const auto rows = elementsToRows(elems.data(), n, bits, lanes);
        EXPECT_EQ(rowsToElements(rows, n), elems)
            << "lanes=" << lanes << " n=" << n << " bits=" << bits;
    }
}

/** Fixture providing a device and random operand vectors. */
class PropertyTest : public ::testing::TestWithParam<size_t>
{
  protected:
    static constexpr size_t kN = 200;

    PropertyTest()
        : proc_(DramConfig::forTesting(256, 768)),
          width_(GetParam()),
          mask_(width_ >= 64 ? ~0ULL : ((1ULL << width_) - 1))
    {
        Rng rng(0xbeef00 + width_);
        da_.resize(kN);
        db_.resize(kN);
        for (size_t i = 0; i < kN; ++i) {
            da_[i] = rng.next() & mask_;
            db_[i] = rng.next() & mask_;
        }
        a_ = proc_.alloc(kN, width_);
        b_ = proc_.alloc(kN, width_);
        proc_.store(a_, da_);
        proc_.store(b_, db_);
    }

    /** Runs a binary op into a fresh vector and loads the result. */
    std::vector<uint64_t>
    run2(OpKind op, const Processor::VecHandle &x,
         const Processor::VecHandle &y)
    {
        const auto sig = signatureOf(op, width_);
        auto out = proc_.alloc(kN, sig.outWidth);
        proc_.run(op, out, x, y);
        return proc_.load(out);
    }

    /** Runs a unary op into a fresh vector and loads the result. */
    std::vector<uint64_t>
    run1(OpKind op, const Processor::VecHandle &x)
    {
        const auto sig = signatureOf(op, width_);
        auto out = proc_.alloc(kN, sig.outWidth);
        proc_.run(op, out, x);
        return proc_.load(out);
    }

    Processor proc_;
    size_t width_;
    uint64_t mask_;
    std::vector<uint64_t> da_, db_;
    Processor::VecHandle a_, b_;
};

TEST_P(PropertyTest, AddIsCommutative)
{
    EXPECT_EQ(run2(OpKind::Add, a_, b_), run2(OpKind::Add, b_, a_));
}

TEST_P(PropertyTest, MulIsCommutative)
{
    EXPECT_EQ(run2(OpKind::Mul, a_, b_), run2(OpKind::Mul, b_, a_));
}

TEST_P(PropertyTest, BitwiseOpsAreCommutative)
{
    EXPECT_EQ(run2(OpKind::BitAnd, a_, b_),
              run2(OpKind::BitAnd, b_, a_));
    EXPECT_EQ(run2(OpKind::BitOr, a_, b_),
              run2(OpKind::BitOr, b_, a_));
    EXPECT_EQ(run2(OpKind::BitXor, a_, b_),
              run2(OpKind::BitXor, b_, a_));
}

TEST_P(PropertyTest, SubUndoesAdd)
{
    // (a + b) - b == a, modulo 2^w.
    auto sum = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, sum, a_, b_);
    auto back = proc_.alloc(kN, width_);
    proc_.run(OpKind::Sub, back, sum, b_);
    EXPECT_EQ(proc_.load(back), da_);
}

TEST_P(PropertyTest, MinPlusMaxEqualsAPlusB)
{
    auto mn = proc_.alloc(kN, width_);
    auto mx = proc_.alloc(kN, width_);
    proc_.run(OpKind::Min, mn, a_, b_);
    proc_.run(OpKind::Max, mx, a_, b_);
    auto s1 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, s1, mn, mx);
    auto s2 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, s2, a_, b_);
    EXPECT_EQ(proc_.load(s1), proc_.load(s2));
}

TEST_P(PropertyTest, RelationalTrichotomy)
{
    // Exactly one of a>b, a==b, b>a holds per lane.
    const auto gt = run2(OpKind::Gt, a_, b_);
    const auto eq = run2(OpKind::Eq, a_, b_);
    const auto lt = run2(OpKind::Gt, b_, a_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(gt[i] + eq[i] + lt[i], 1u) << i;
}

TEST_P(PropertyTest, GeIsGtOrEq)
{
    const auto ge = run2(OpKind::Ge, a_, b_);
    const auto gt = run2(OpKind::Gt, a_, b_);
    const auto eq = run2(OpKind::Eq, a_, b_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(ge[i], gt[i] | eq[i]) << i;
}

TEST_P(PropertyTest, ShiftLeftIsDoubling)
{
    // a << 1 == a + a.
    auto shifted = proc_.alloc(kN, width_);
    proc_.shiftLeft(shifted, a_, 1);
    auto doubled = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, doubled, a_, a_);
    EXPECT_EQ(proc_.load(shifted), proc_.load(doubled));
}

TEST_P(PropertyTest, XorIsAddWithoutCarryOfDisjoint)
{
    // If a & b == 0 lane-wise, then a ^ b == a + b. Force
    // disjointness: lo keeps only low bits, hi only high bits.
    std::vector<uint64_t> lo(kN), hi(kN);
    for (size_t i = 0; i < kN; ++i) {
        lo[i] = da_[i] & (mask_ >> ((width_ + 1) / 2));
        hi[i] = (db_[i] << (width_ - width_ / 2)) & mask_;
    }
    auto vl = proc_.alloc(kN, width_);
    auto vh = proc_.alloc(kN, width_);
    proc_.store(vl, lo);
    proc_.store(vh, hi);
    EXPECT_EQ(run2(OpKind::BitXor, vl, vh),
              run2(OpKind::Add, vl, vh));
}

TEST_P(PropertyTest, BitcountOfComplementsSumsToWidth)
{
    if (signatureOf(OpKind::Bitcount, width_).outWidth > 63)
        GTEST_SKIP();
    auto nota = proc_.alloc(kN, width_);
    // ~a = mask ^ a.
    auto vmask = proc_.alloc(kN, width_);
    proc_.fillConstant(vmask, mask_);
    proc_.run(OpKind::BitXor, nota, a_, vmask);
    const auto c1 = run1(OpKind::Bitcount, a_);
    const auto c2 = run1(OpKind::Bitcount, nota);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(c1[i] + c2[i], width_) << i;
}

TEST_P(PropertyTest, XorRedIsBitcountParity)
{
    const auto parity = run1(OpKind::XorRed, a_);
    const auto count = run1(OpKind::Bitcount, a_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(parity[i], count[i] & 1) << i;
}

TEST_P(PropertyTest, IfElseWithEqualArmsIsIdentity)
{
    auto sel = proc_.alloc(kN, 1);
    std::vector<uint64_t> sels(kN);
    Rng rng(9);
    for (auto &s : sels)
        s = rng.next() & 1;
    proc_.store(sel, sels);
    auto out = proc_.alloc(kN, width_);
    proc_.run(OpKind::IfElse, out, a_, a_, sel);
    EXPECT_EQ(proc_.load(out), da_);
}

TEST_P(PropertyTest, DeMorgan)
{
    // ~(a & b) == ~a | ~b via BitXor with the all-ones mask.
    auto vmask = proc_.alloc(kN, width_);
    proc_.fillConstant(vmask, mask_);
    auto ab = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitAnd, ab, a_, b_);
    auto lhs = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitXor, lhs, ab, vmask);

    auto na = proc_.alloc(kN, width_);
    auto nb = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitXor, na, a_, vmask);
    proc_.run(OpKind::BitXor, nb, b_, vmask);
    auto rhs = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitOr, rhs, na, nb);
    EXPECT_EQ(proc_.load(lhs), proc_.load(rhs));
}

TEST_P(PropertyTest, DivMulBoundsQuotient)
{
    // q = a/b satisfies q*b <= a < (q+1)*b for b != 0 (host-side
    // arithmetic on the loaded quotient; the in-DRAM division is
    // what is under test).
    const auto q = run2(OpKind::Div, a_, b_);
    for (size_t i = 0; i < kN; ++i) {
        if (db_[i] == 0)
            continue;
        EXPECT_LE(q[i] * db_[i], da_[i]) << i;
        EXPECT_GT((q[i] + 1) * db_[i], da_[i]) << i;
    }
}

TEST_P(PropertyTest, AbsIsIdempotent)
{
    if (width_ < 2)
        GTEST_SKIP();
    auto abs1 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Abs, abs1, a_);
    auto abs2 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Abs, abs2, abs1);
    // |x| is non-negative unless x is INT_MIN, where |x| == x.
    EXPECT_EQ(proc_.load(abs2), proc_.load(abs1));
}

TEST_P(PropertyTest, ReluIsIdempotentAndBounded)
{
    if (width_ < 2)
        GTEST_SKIP();
    const auto r1 = run1(OpKind::Relu, a_);
    auto vr = proc_.alloc(kN, width_);
    proc_.store(vr, r1);
    const auto r2 = run1(OpKind::Relu, vr);
    EXPECT_EQ(r2, r1);
    const uint64_t sign = 1ULL << (width_ - 1);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(r1[i] & sign, 0u) << "relu output is non-negative";
}

INSTANTIATE_TEST_SUITE_P(Widths, PropertyTest,
                         ::testing::Values(size_t{2}, size_t{5},
                                           size_t{8}, size_t{13},
                                           size_t{16}, size_t{24}),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

} // namespace
} // namespace simdram
