/**
 * @file
 * Property-based tests: algebraic identities of the operation set,
 * executed end-to-end on the simulated DRAM device across a sweep of
 * element widths. Each property is checked on random data *through
 * the full stack* (circuit -> μProgram -> TRA execution ->
 * transposition), so a violation anywhere in the pipeline surfaces
 * as a broken identity.
 */

#include <gtest/gtest.h>

#include "bitrow_testutil.h"
#include "common/bitrow.h"
#include "common/rng.h"
#include "dram/subarray.h"
#include "exec/processor.h"
#include "layout/transpose.h"

namespace simdram
{
namespace
{

using testutil::paddingClear;
using testutil::randomRow;

// ---- BitRow kernel properties (no DRAM stack involved) ---------------

TEST(BitRowProperty, DeMorganIdentities)
{
    Rng rng(0xde30);
    for (size_t w : {size_t{1}, size_t{63}, size_t{64}, size_t{130}}) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        EXPECT_EQ(~(a & b), ~a | ~b) << "w=" << w;
        EXPECT_EQ(~(a | b), ~a & ~b) << "w=" << w;
        EXPECT_EQ(~(a ^ b), (~a) ^ b) << "w=" << w;
    }
}

TEST(BitRowProperty, MajoritySelectIdentities)
{
    Rng rng(0x3a14);
    for (size_t w : {size_t{5}, size_t{64}, size_t{200}}) {
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        const BitRow c = randomRow(w, rng);
        const BitRow zeros(w, false);
        const BitRow ones(w, true);
        // MAJ(a, b, 0) = a AND b; MAJ(a, b, 1) = a OR b.
        EXPECT_EQ(BitRow::majority3(a, b, zeros), a & b) << "w=" << w;
        EXPECT_EQ(BitRow::majority3(a, b, ones), a | b) << "w=" << w;
        // When a and b agree the majority is a; otherwise c decides:
        // MAJ(a, b, c) = select(a XOR b, c, a).
        EXPECT_EQ(BitRow::majority3(a, b, c),
                  BitRow::select(a ^ b, c, a))
            << "w=" << w;
        // select with equal arms is the arm, independent of sel.
        EXPECT_EQ(BitRow::select(a, b, b), b) << "w=" << w;
        // MAJ is invariant under argument rotation.
        EXPECT_EQ(BitRow::majority3(a, b, c),
                  BitRow::majority3(c, a, b))
            << "w=" << w;
    }
}

TEST(BitRowProperty, PaddingInvariantAfterEveryMutatingOp)
{
    Rng rng(0x9ad5);
    for (size_t w : {size_t{1}, size_t{65}, size_t{130}, size_t{191}}) {
        BitRow r = randomRow(w, rng);
        const BitRow a = randomRow(w, rng);
        const BitRow b = randomRow(w, rng);
        const BitRow c = randomRow(w, rng);

        r.fill(true);
        EXPECT_TRUE(paddingClear(r)) << "fill w=" << w;
        r.invert();
        EXPECT_TRUE(paddingClear(r)) << "invert w=" << w;
        r.set(w - 1, true);
        EXPECT_TRUE(paddingClear(r)) << "set w=" << w;
        r &= a;
        EXPECT_TRUE(paddingClear(r)) << "&= w=" << w;
        r |= b;
        EXPECT_TRUE(paddingClear(r)) << "|= w=" << w;
        r ^= c;
        EXPECT_TRUE(paddingClear(r)) << "^= w=" << w;
        r.assignNot(a);
        EXPECT_TRUE(paddingClear(r)) << "assignNot w=" << w;
        a.aapInto(r);
        EXPECT_TRUE(paddingClear(r)) << "aapInto w=" << w;
        BitRow::andNotInto(r, a, b);
        EXPECT_TRUE(paddingClear(r)) << "andNotInto w=" << w;
        BitRow::majority3Into(r, a, b, c);
        EXPECT_TRUE(paddingClear(r)) << "majority3Into w=" << w;
        BitRow::selectInto(r, a, b, c);
        EXPECT_TRUE(paddingClear(r)) << "selectInto w=" << w;
        r.setWord(r.wordCount() - 1, rng.next() & r.lastWordMask());
        r.trimLast();
        EXPECT_TRUE(paddingClear(r)) << "setWord+trimLast w=" << w;
        // popcount must agree with the width-bounded count, which is
        // only true while the invariant holds.
        size_t bits = 0;
        for (size_t i = 0; i < w; ++i)
            bits += r.get(i) ? 1 : 0;
        EXPECT_EQ(r.popcount(), bits) << "w=" << w;
    }
}

TEST(BitRowProperty, TransposeRoundTripRandomShapes)
{
    Rng rng(0x707);
    for (int round = 0; round < 80; ++round) {
        const size_t lanes = 1 + rng.below(260);
        const size_t n = rng.below(lanes + 1);
        const size_t bits = 1 + rng.below(64);
        const uint64_t mask =
            bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
        std::vector<uint64_t> elems(n);
        for (auto &e : elems)
            e = rng.next() & mask;

        // rowsToElements ∘ elementsToRows is the identity on the
        // element side for any (n, bits, lanes).
        const auto rows = elementsToRows(elems.data(), n, bits, lanes);
        EXPECT_EQ(rowsToElements(rows, n), elems)
            << "lanes=" << lanes << " n=" << n << " bits=" << bits;
    }
}

// ---- Copy-on-write aliasing invariants -------------------------------
//
// BitRow copies share one refcounted payload; every mutator must
// detach first. These properties pin the contract the zero-copy
// replay engine is built on: writing through one alias never changes
// another, and never costs DRAM commands.

TEST(BitRowCow, CopiesShareUntilWritten)
{
    Rng rng(0xc04);
    for (size_t w : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                     size_t{130}}) {
        const BitRow a = randomRow(w, rng);
        BitRow b = a;
        EXPECT_TRUE(a.sharesStorageWith(b)) << "w=" << w;
        EXPECT_EQ(a, b);

        const BitRow snapshot = a.clone();
        EXPECT_FALSE(snapshot.sharesStorageWith(a));

        b.set(w / 2, !b.get(w / 2)); // detach-on-write
        EXPECT_FALSE(a.sharesStorageWith(b)) << "w=" << w;
        EXPECT_EQ(a, snapshot) << "w=" << w; // alias untouched
        EXPECT_NE(a, b) << "w=" << w;
        EXPECT_TRUE(paddingClear(a) && paddingClear(b));
    }
    // Width-0 rows: copies are trivially independent and every
    // operation is a no-op that must not crash.
    BitRow z0;
    BitRow z1 = z0;
    EXPECT_FALSE(z0.sharesStorageWith(z1));
    z1.fill(true);
    z1.invert();
    z1.trimLast();
    EXPECT_EQ(z0, z1);
    EXPECT_EQ(z1.popcount(), 0u);
}

TEST(BitRowCow, RandomizedAliasGraphNeverLeaksWrites)
{
    // A pool of rows per width, aliased and mutated at random, is
    // mirrored against an eager bit-vector model: after every
    // operation every row must still match its model — a CoW bug
    // (write through a shared payload without detach) shows up as a
    // "spooky" change to some other row.
    Rng rng(0xa11a5);
    for (size_t w : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                     size_t{65}, size_t{100}, size_t{130}}) {
        constexpr size_t kPool = 5;
        std::vector<BitRow> rows;
        std::vector<std::vector<bool>> model(
            kPool, std::vector<bool>(w, false));
        for (size_t i = 0; i < kPool; ++i) {
            rows.push_back(randomRow(w, rng));
            for (size_t j = 0; j < w; ++j)
                model[i][j] = rows[i].get(j);
        }

        auto check = [&](int round, int op) {
            for (size_t i = 0; i < kPool; ++i) {
                ASSERT_TRUE(paddingClear(rows[i]))
                    << "w=" << w << " round=" << round
                    << " op=" << op << " row=" << i;
                ASSERT_EQ(rows[i].width(), w);
                for (size_t j = 0; j < w; ++j)
                    ASSERT_EQ(rows[i].get(j), model[i][j])
                        << "w=" << w << " round=" << round
                        << " op=" << op << " row=" << i
                        << " bit=" << j;
            }
        };

        for (int round = 0; round < 200; ++round) {
            const size_t i = rng.below(kPool);
            const size_t j = rng.below(kPool);
            const size_t k = rng.below(kPool);
            const int op = static_cast<int>(rng.below(10));
            switch (op) {
              case 0: // copy-assignment aliases
                rows[i] = rows[j];
                model[i] = model[j];
                break;
              case 1: // aapInto (RowClone) aliases
                rows[j].aapInto(rows[i]);
                model[i] = model[j];
                break;
              case 2: // eager copy
                rows[i].copyFrom(rows[j]);
                model[i] = model[j];
                break;
              case 3: // single-bit write detaches
                if (w > 0) {
                    const size_t pos = rng.below(w);
                    const bool v = rng.below(2) != 0;
                    rows[i].set(pos, v);
                    model[i][pos] = v;
                }
                break;
              case 4: { // raw word write detaches
                if (w == 0)
                    break;
                const size_t wi = rng.below(rows[i].wordCount());
                uint64_t v = rng.next();
                if (wi + 1 == rows[i].wordCount())
                    v &= rows[i].lastWordMask();
                rows[i].setWord(wi, v);
                for (size_t b = 0; b < 64; ++b)
                    if (wi * 64 + b < w)
                        model[i][wi * 64 + b] = (v >> b) & 1;
                break;
              }
              case 5: { // fill detaches
                const bool v = rng.below(2) != 0;
                rows[i].fill(v);
                model[i].assign(w, v);
                break;
              }
              case 6: // invert detaches
                rows[i].invert();
                for (size_t b = 0; b < w; ++b)
                    model[i][b] = !model[i][b];
                break;
              case 7: // fused NOT into a (possibly aliased) dst
                rows[i].assignNot(rows[j]);
                for (size_t b = 0; b < w; ++b)
                    model[i][b] = !model[j][b];
                break;
              case 8: { // fused majority, any aliasing allowed
                std::vector<bool> out(w);
                for (size_t b = 0; b < w; ++b) {
                    const int s = (model[i][b] ? 1 : 0) +
                                  (model[j][b] ? 1 : 0) +
                                  (model[k][b] ? 1 : 0);
                    out[b] = s >= 2;
                }
                BitRow::majority3Into(rows[i], rows[i], rows[j],
                                      rows[k]);
                model[i] = out;
                break;
              }
              case 9: // bulk XOR read-modify-write
                rows[i] ^= rows[j];
                for (size_t b = 0; b < w; ++b)
                    model[i][b] = model[i][b] != model[j][b];
                break;
            }
            check(round, op);
        }
    }
}

/** DramStats counter equality (counters only; no doubles here). */
void
expectStatsUntouched(const DramStats &a, const DramStats &b)
{
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.multiActivates, b.multiActivates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.aaps, b.aaps);
    EXPECT_EQ(a.aps, b.aps);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(BitRowCow, SubarrayConstantInternsSurviveAliasMutation)
{
    // aap(C0 -> D0) interns the constant row's payload into the data
    // row. Overwriting the data row afterwards (the transposition
    // unit's in-place word writes) must detach, leaving C0 pristine
    // and consuming no DRAM commands.
    const DramConfig cfg = DramConfig::forTesting(128, 64);
    Subarray sub(cfg);
    sub.aap(RowAddr::row(SpecialRow::C0), RowAddr::data(0));
    sub.aap(RowAddr::row(SpecialRow::C1), RowAddr::data(1));
    EXPECT_TRUE(sub.peekData(0).allZero());
    EXPECT_TRUE(sub.peekData(1).allOne());

    const DramStats before = sub.stats();
    BitRow &d0 = sub.pokeDataRow(0);
    d0.setWord(0, 0xdeadbeefULL);
    BitRow &d1 = sub.pokeDataRow(1);
    d1.setWord(1, 0x3ULL & d1.lastWordMask());
    // The constants are untouched, and the backdoor writes (CoW
    // detaches included) issued no commands.
    EXPECT_TRUE(sub.peek(SpecialRow::C0).allZero());
    EXPECT_TRUE(sub.peek(SpecialRow::C1).allOne());
    expectStatsUntouched(sub.stats(), before);
}

TEST(BitRowCow, SubarrayDccNegativePortAliasing)
{
    // A read through a DCC negative port materializes the complement;
    // cloning it into a data row and then mutating either side must
    // not leak through the alias graph. (Non-multiple-of-64 widths
    // are covered at the BitRow level above; subarray rows are
    // hardware-shaped, i.e. multiples of 64.)
    const DramConfig cfg = DramConfig::forTesting(128, 64);
    Subarray sub(cfg);
    Rng rng(0xdcc);
    const BitRow v = randomRow(cfg.rowBits, rng);
    sub.poke(SpecialRow::DCC0P, v);

    // D2 <- DCC0N (complement read), D3 <- D2 (plain RowClone).
    sub.aap(RowAddr::row(SpecialRow::DCC0N), RowAddr::data(2));
    sub.aap(RowAddr::data(2), RowAddr::data(3));
    EXPECT_EQ(sub.peekData(2), ~v);
    EXPECT_EQ(sub.peekData(3), ~v);

    const DramStats before = sub.stats();
    // Mutate the middle of the alias chain.
    BitRow &d2 = sub.pokeDataRow(2);
    d2.set(99, !d2.get(99));
    EXPECT_EQ(sub.peek(SpecialRow::DCC0P), v);   // cell untouched
    EXPECT_EQ(sub.peekData(3), ~v);              // sibling untouched
    EXPECT_NE(sub.peekData(2), ~v);
    expectStatsUntouched(sub.stats(), before);

    // And writing through the negative port stores the complement
    // without disturbing the aliased data rows.
    sub.poke(SpecialRow::DCC0N, v);
    EXPECT_EQ(sub.peek(SpecialRow::DCC0P), ~v);
    EXPECT_EQ(sub.peekData(3), ~v);
    EXPECT_TRUE(paddingClear(sub.peekData(3)));
}

/** Fixture providing a device and random operand vectors. */
class PropertyTest : public ::testing::TestWithParam<size_t>
{
  protected:
    static constexpr size_t kN = 200;

    PropertyTest()
        : proc_(DramConfig::forTesting(256, 768)),
          width_(GetParam()),
          mask_(width_ >= 64 ? ~0ULL : ((1ULL << width_) - 1))
    {
        Rng rng(0xbeef00 + width_);
        da_.resize(kN);
        db_.resize(kN);
        for (size_t i = 0; i < kN; ++i) {
            da_[i] = rng.next() & mask_;
            db_[i] = rng.next() & mask_;
        }
        a_ = proc_.alloc(kN, width_);
        b_ = proc_.alloc(kN, width_);
        proc_.store(a_, da_);
        proc_.store(b_, db_);
    }

    /** Runs a binary op into a fresh vector and loads the result. */
    std::vector<uint64_t>
    run2(OpKind op, const Processor::VecHandle &x,
         const Processor::VecHandle &y)
    {
        const auto sig = signatureOf(op, width_);
        auto out = proc_.alloc(kN, sig.outWidth);
        proc_.run(op, out, x, y);
        return proc_.load(out);
    }

    /** Runs a unary op into a fresh vector and loads the result. */
    std::vector<uint64_t>
    run1(OpKind op, const Processor::VecHandle &x)
    {
        const auto sig = signatureOf(op, width_);
        auto out = proc_.alloc(kN, sig.outWidth);
        proc_.run(op, out, x);
        return proc_.load(out);
    }

    Processor proc_;
    size_t width_;
    uint64_t mask_;
    std::vector<uint64_t> da_, db_;
    Processor::VecHandle a_, b_;
};

TEST_P(PropertyTest, AddIsCommutative)
{
    EXPECT_EQ(run2(OpKind::Add, a_, b_), run2(OpKind::Add, b_, a_));
}

TEST_P(PropertyTest, MulIsCommutative)
{
    EXPECT_EQ(run2(OpKind::Mul, a_, b_), run2(OpKind::Mul, b_, a_));
}

TEST_P(PropertyTest, BitwiseOpsAreCommutative)
{
    EXPECT_EQ(run2(OpKind::BitAnd, a_, b_),
              run2(OpKind::BitAnd, b_, a_));
    EXPECT_EQ(run2(OpKind::BitOr, a_, b_),
              run2(OpKind::BitOr, b_, a_));
    EXPECT_EQ(run2(OpKind::BitXor, a_, b_),
              run2(OpKind::BitXor, b_, a_));
}

TEST_P(PropertyTest, SubUndoesAdd)
{
    // (a + b) - b == a, modulo 2^w.
    auto sum = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, sum, a_, b_);
    auto back = proc_.alloc(kN, width_);
    proc_.run(OpKind::Sub, back, sum, b_);
    EXPECT_EQ(proc_.load(back), da_);
}

TEST_P(PropertyTest, MinPlusMaxEqualsAPlusB)
{
    auto mn = proc_.alloc(kN, width_);
    auto mx = proc_.alloc(kN, width_);
    proc_.run(OpKind::Min, mn, a_, b_);
    proc_.run(OpKind::Max, mx, a_, b_);
    auto s1 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, s1, mn, mx);
    auto s2 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, s2, a_, b_);
    EXPECT_EQ(proc_.load(s1), proc_.load(s2));
}

TEST_P(PropertyTest, RelationalTrichotomy)
{
    // Exactly one of a>b, a==b, b>a holds per lane.
    const auto gt = run2(OpKind::Gt, a_, b_);
    const auto eq = run2(OpKind::Eq, a_, b_);
    const auto lt = run2(OpKind::Gt, b_, a_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(gt[i] + eq[i] + lt[i], 1u) << i;
}

TEST_P(PropertyTest, GeIsGtOrEq)
{
    const auto ge = run2(OpKind::Ge, a_, b_);
    const auto gt = run2(OpKind::Gt, a_, b_);
    const auto eq = run2(OpKind::Eq, a_, b_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(ge[i], gt[i] | eq[i]) << i;
}

TEST_P(PropertyTest, ShiftLeftIsDoubling)
{
    // a << 1 == a + a.
    auto shifted = proc_.alloc(kN, width_);
    proc_.shiftLeft(shifted, a_, 1);
    auto doubled = proc_.alloc(kN, width_);
    proc_.run(OpKind::Add, doubled, a_, a_);
    EXPECT_EQ(proc_.load(shifted), proc_.load(doubled));
}

TEST_P(PropertyTest, XorIsAddWithoutCarryOfDisjoint)
{
    // If a & b == 0 lane-wise, then a ^ b == a + b. Force
    // disjointness: lo keeps only low bits, hi only high bits.
    std::vector<uint64_t> lo(kN), hi(kN);
    for (size_t i = 0; i < kN; ++i) {
        lo[i] = da_[i] & (mask_ >> ((width_ + 1) / 2));
        hi[i] = (db_[i] << (width_ - width_ / 2)) & mask_;
    }
    auto vl = proc_.alloc(kN, width_);
    auto vh = proc_.alloc(kN, width_);
    proc_.store(vl, lo);
    proc_.store(vh, hi);
    EXPECT_EQ(run2(OpKind::BitXor, vl, vh),
              run2(OpKind::Add, vl, vh));
}

TEST_P(PropertyTest, BitcountOfComplementsSumsToWidth)
{
    if (signatureOf(OpKind::Bitcount, width_).outWidth > 63)
        GTEST_SKIP();
    auto nota = proc_.alloc(kN, width_);
    // ~a = mask ^ a.
    auto vmask = proc_.alloc(kN, width_);
    proc_.fillConstant(vmask, mask_);
    proc_.run(OpKind::BitXor, nota, a_, vmask);
    const auto c1 = run1(OpKind::Bitcount, a_);
    const auto c2 = run1(OpKind::Bitcount, nota);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(c1[i] + c2[i], width_) << i;
}

TEST_P(PropertyTest, XorRedIsBitcountParity)
{
    const auto parity = run1(OpKind::XorRed, a_);
    const auto count = run1(OpKind::Bitcount, a_);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(parity[i], count[i] & 1) << i;
}

TEST_P(PropertyTest, IfElseWithEqualArmsIsIdentity)
{
    auto sel = proc_.alloc(kN, 1);
    std::vector<uint64_t> sels(kN);
    Rng rng(9);
    for (auto &s : sels)
        s = rng.next() & 1;
    proc_.store(sel, sels);
    auto out = proc_.alloc(kN, width_);
    proc_.run(OpKind::IfElse, out, a_, a_, sel);
    EXPECT_EQ(proc_.load(out), da_);
}

TEST_P(PropertyTest, DeMorgan)
{
    // ~(a & b) == ~a | ~b via BitXor with the all-ones mask.
    auto vmask = proc_.alloc(kN, width_);
    proc_.fillConstant(vmask, mask_);
    auto ab = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitAnd, ab, a_, b_);
    auto lhs = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitXor, lhs, ab, vmask);

    auto na = proc_.alloc(kN, width_);
    auto nb = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitXor, na, a_, vmask);
    proc_.run(OpKind::BitXor, nb, b_, vmask);
    auto rhs = proc_.alloc(kN, width_);
    proc_.run(OpKind::BitOr, rhs, na, nb);
    EXPECT_EQ(proc_.load(lhs), proc_.load(rhs));
}

TEST_P(PropertyTest, DivMulBoundsQuotient)
{
    // q = a/b satisfies q*b <= a < (q+1)*b for b != 0 (host-side
    // arithmetic on the loaded quotient; the in-DRAM division is
    // what is under test).
    const auto q = run2(OpKind::Div, a_, b_);
    for (size_t i = 0; i < kN; ++i) {
        if (db_[i] == 0)
            continue;
        EXPECT_LE(q[i] * db_[i], da_[i]) << i;
        EXPECT_GT((q[i] + 1) * db_[i], da_[i]) << i;
    }
}

TEST_P(PropertyTest, AbsIsIdempotent)
{
    if (width_ < 2)
        GTEST_SKIP();
    auto abs1 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Abs, abs1, a_);
    auto abs2 = proc_.alloc(kN, width_);
    proc_.run(OpKind::Abs, abs2, abs1);
    // |x| is non-negative unless x is INT_MIN, where |x| == x.
    EXPECT_EQ(proc_.load(abs2), proc_.load(abs1));
}

TEST_P(PropertyTest, ReluIsIdempotentAndBounded)
{
    if (width_ < 2)
        GTEST_SKIP();
    const auto r1 = run1(OpKind::Relu, a_);
    auto vr = proc_.alloc(kN, width_);
    proc_.store(vr, r1);
    const auto r2 = run1(OpKind::Relu, vr);
    EXPECT_EQ(r2, r1);
    const uint64_t sign = 1ULL << (width_ - 1);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(r1[i] & sign, 0u) << "relu output is non-negative";
}

INSTANTIATE_TEST_SUITE_P(Widths, PropertyTest,
                         ::testing::Values(size_t{2}, size_t{5},
                                           size_t{8}, size_t{13},
                                           size_t{16}, size_t{24}),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

} // namespace
} // namespace simdram
