/**
 * @file
 * Tests for the BulkEngine layer (src/apps/engine.h): the standard
 * engine roster, InDramEngine's μProgram cache, and the invariant
 * promised in the header's doc comment — estimateCompute() pricing
 * matches the functional simulator's accounting exactly.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/engine.h"
#include "common/rng.h"
#include "exec/processor.h"
#include "uprog/program.h"

namespace simdram
{
namespace
{

DramConfig
engineCfg()
{
    return DramConfig::forTesting(256, 512);
}

TEST(StandardEngines, RosterMatchesDocComment)
{
    // engine.h promises: CPU, GPU, Ambit (1 bank), SIMDRAM:1,
    // SIMDRAM:4, SIMDRAM:16 — in that order.
    auto engines = standardEngines();
    ASSERT_EQ(engines.size(), 6u);
    EXPECT_EQ(engines[0]->name(), "CPU");
    EXPECT_EQ(engines[1]->name(), "GPU");
    EXPECT_EQ(engines[2]->name(), "Ambit");
    EXPECT_EQ(engines[3]->name(), "SIMDRAM:1");
    EXPECT_EQ(engines[4]->name(), "SIMDRAM:4");
    EXPECT_EQ(engines[5]->name(), "SIMDRAM:16");
}

TEST(InDramEngineCache, ProgramIsCompiledOnceAndReused)
{
    InDramEngine e(engineCfg(), Backend::Simdram, "SIMDRAM:test");

    const MicroProgram &first = e.program(OpKind::Add, 8);
    const MicroProgram &again = e.program(OpKind::Add, 8);
    // Cache hit must hand back the very same object, not a recompile.
    EXPECT_EQ(&first, &again);

    // Distinct (op, width) keys get distinct programs.
    const MicroProgram &wider = e.program(OpKind::Add, 16);
    const MicroProgram &other = e.program(OpKind::BitXor, 8);
    EXPECT_NE(&first, &wider);
    EXPECT_NE(&first, &other);

    // The first entry must survive later insertions (stable storage).
    EXPECT_EQ(&first, &e.program(OpKind::Add, 8));
}

TEST(InDramEngineCache, OpCostIsStableAcrossCalls)
{
    InDramEngine e(engineCfg(), Backend::Simdram, "SIMDRAM:test");
    const auto r1 = e.opCost(OpKind::Mul, 8, 1000);
    const auto r2 = e.opCost(OpKind::Mul, 8, 1000);
    EXPECT_DOUBLE_EQ(r1.latencyNs, r2.latencyNs);
    EXPECT_DOUBLE_EQ(r1.energyPj, r2.energyPj);
    EXPECT_EQ(r1.engine, "SIMDRAM:test");
    EXPECT_EQ(r1.elements, 1000u);
}

/**
 * Runs op over @p elements elements on a real Processor and returns
 * the simulator's compute accounting.
 */
DramStats
simulateOp(const DramConfig &cfg, Backend backend, OpKind op,
           size_t width, size_t elements)
{
    Processor p(cfg, backend);
    auto a = p.alloc(elements, width);
    auto b = p.alloc(elements, width);
    auto y = p.alloc(elements, width);
    Rng rng(7);
    std::vector<uint64_t> da(elements), db(elements);
    const uint64_t mask =
        width == 64 ? ~0ull : ((1ull << width) - 1);
    for (size_t i = 0; i < elements; ++i) {
        da[i] = rng.next() & mask;
        db[i] = rng.next() & mask;
    }
    p.store(a, da);
    p.store(b, db);
    p.resetStats(); // isolate compute from transposition traffic
    p.run(op, y, a, b);
    return p.computeStats();
}

/** Verifies the engine.h invariant for one (cfg, backend, shape). */
void
expectEstimateMatchesSimulator(const DramConfig &cfg,
                               Backend backend, OpKind op,
                               size_t width, size_t elements)
{
    SCOPED_TRACE(std::string(toString(backend)) + " " +
                 toString(op) + " w=" + std::to_string(width) +
                 " n=" + std::to_string(elements));

    const DramStats sim =
        simulateOp(cfg, backend, op, width, elements);

    InDramEngine e(cfg, backend, "engine-under-test");
    const RunResult priced = e.opCost(op, width, elements);
    EXPECT_DOUBLE_EQ(priced.latencyNs, sim.latencyNs);
    EXPECT_DOUBLE_EQ(priced.energyPj, sim.energyPj);

    // The command counts must agree too, not just the totals.
    const DramStats est =
        estimateCompute(e.program(op, width), elements, cfg);
    EXPECT_EQ(est.aaps, sim.aaps);
    EXPECT_EQ(est.aps, sim.aps);
}

TEST(EstimateMatchesSimulator, SingleSegmentSimdram)
{
    const DramConfig cfg = engineCfg();
    expectEstimateMatchesSimulator(cfg, Backend::Simdram,
                                   OpKind::Add, 8, cfg.rowBits);
}

TEST(EstimateMatchesSimulator, PartialSegmentSimdram)
{
    const DramConfig cfg = engineCfg();
    // A ragged tail still occupies (and is charged for) a full
    // segment's rows.
    expectEstimateMatchesSimulator(cfg, Backend::Simdram,
                                   OpKind::Add, 8,
                                   cfg.rowBits / 2 + 3);
}

TEST(EstimateMatchesSimulator, MultiSegmentSerializesInOneBank)
{
    const DramConfig cfg = engineCfg();
    expectEstimateMatchesSimulator(cfg, Backend::Simdram,
                                   OpKind::Sub, 8, 3 * cfg.rowBits);
}

TEST(EstimateMatchesSimulator, MultiBankRunsInParallel)
{
    DramConfig cfg = engineCfg();
    cfg.computeBanks = 2;
    cfg.validate();
    expectEstimateMatchesSimulator(cfg, Backend::Simdram,
                                   OpKind::Add, 8, 2 * cfg.rowBits);
}

TEST(EstimateMatchesSimulator, AmbitBackend)
{
    const DramConfig cfg = engineCfg();
    expectEstimateMatchesSimulator(cfg, Backend::Ambit, OpKind::BitAnd,
                                   8, cfg.rowBits);
}

TEST(EstimateMatchesSimulator, WiderElements)
{
    const DramConfig cfg = engineCfg();
    expectEstimateMatchesSimulator(cfg, Backend::Simdram,
                                   OpKind::Add, 16, cfg.rowBits);
}

} // namespace
} // namespace simdram
