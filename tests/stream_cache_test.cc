/**
 * @file
 * Tests for the StreamExecutor's stream-level trsp/init cache:
 * differential bit-exactness of a cached executor against an
 * uncached one over identical stream sequences, invalidation after
 * every kind of write (bbop op/shift/init outputs, writeObject),
 * the DeviceGroup mutation-generation tag, skip accounting, and the
 * knn/nn runtime paths' reduced trsp counts. Runs under
 * ThreadSanitizer in CI (the cache decision path is submit-side, the
 * skip path is worker-side).
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "apps/knn.h"
#include "apps/nn.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream_testutil.h"

namespace simdram
{
namespace
{

using testutil::DiffRig;
using testutil::noPassesOpts;
using testutil::randomData;
using testutil::testCfg;

/**
 * Cache on vs cache off, with the optimizer passes disabled on both
 * sides: these tests assert exact elision counts per instruction, and
 * a pass removing (say) a duplicate init would change which
 * instructions the runtime cache ever sees. The pass-vs-no-pass
 * differential lives in stream_ir_test.
 */
DiffRig
cacheRig(size_t devices)
{
    return DiffRig(devices, noPassesOpts(/*cache=*/true),
                   noPassesOpts(/*cache=*/false));
}

class StreamCacheTest : public ::testing::TestWithParam<size_t>
{
};

INSTANTIATE_TEST_SUITE_P(Devices, StreamCacheTest,
                         ::testing::Values(1, 4),
                         [](const auto &info) {
                             return "d" +
                                    std::to_string(info.param);
                         });

TEST_P(StreamCacheTest, RepeatedTrspIsElidedBitExact)
{
    DiffRig rig = cacheRig(GetParam());
    const size_t n = 300; // crosses a shard boundary at 4 devices
    const uint16_t a = rig.define(n, 16);
    const uint16_t y = rig.define(n, 16);
    rig.write(a, randomData(n, 0xffff, 1));

    // First transposition of everything: nothing to elide.
    const auto r0 = rig.run(
        {BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16)});
    EXPECT_EQ(r0.first.cachedInstructions, 0u);
    EXPECT_GT(r0.first.transfer.activates, 0u);

    // Re-transposing unchanged objects: both elided, zero transfer
    // work on the cached side, and the op in between still executes.
    const auto r1 = rig.run(
        {BbopInstr::trsp(a, 16),
         BbopInstr::unary(OpKind::Abs, 16, y, a),
         BbopInstr::trsp(a, 16)});
    EXPECT_EQ(r1.first.cachedInstructions, 2u);
    EXPECT_EQ(r1.first.transfer.activates, 0u);
    EXPECT_GT(r1.second.transfer.activates, 0u);
    EXPECT_EQ(r1.first.compute.aaps, r1.second.compute.aaps);

    // y was written by the op: its trsp_inv must execute.
    const auto r2 = rig.run({BbopInstr::trspInv(y, 16)});
    EXPECT_EQ(r2.first.cachedInstructions, 0u);
    rig.expectSameImages();
    EXPECT_EQ(rig.opt.cacheHits(), 2u);
    EXPECT_EQ(rig.ref.cacheHits(), 0u);
}

TEST_P(StreamCacheTest, InitElidedOnlyWhenValueUnchanged)
{
    DiffRig rig = cacheRig(GetParam());
    const size_t n = 300;
    const uint16_t a = rig.define(n, 16);
    rig.run({BbopInstr::trsp(a, 16), BbopInstr::init(a, 16, 0x2d)});

    // Same value again: elided. Different value: runs.
    const auto r0 = rig.run({BbopInstr::init(a, 16, 0x2d)});
    EXPECT_EQ(r0.first.cachedInstructions, 1u);
    EXPECT_EQ(r0.first.compute.aaps, 0u);
    const auto r1 = rig.run({BbopInstr::init(a, 16, 0x2e)});
    EXPECT_EQ(r1.first.cachedInstructions, 0u);
    EXPECT_GT(r1.first.compute.aaps, 0u);

    // And a trsp of the freshly initialized object is redundant
    // (vertical and host images are both the constant).
    const auto r2 = rig.run({BbopInstr::trsp(a, 16)});
    EXPECT_EQ(r2.first.cachedInstructions, 1u);
    rig.expectSameImages();
    for (uint64_t v : rig.opt.readObject(a))
        ASSERT_EQ(v, 0x2eu);
}

TEST_P(StreamCacheTest, EveryWriteKindInvalidates)
{
    DiffRig rig = cacheRig(GetParam());
    const size_t n = 300;
    const uint16_t a = rig.define(n, 16);
    const uint16_t y = rig.define(n, 16);
    rig.write(a, randomData(n, 0xffff, 7));
    rig.run({BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16)});

    // 1. bbop op output: the trsp_inv of y must re-run.
    rig.run({BbopInstr::unary(OpKind::Abs, 16, y, a)});
    const auto r1 = rig.run({BbopInstr::trspInv(y, 16)});
    EXPECT_EQ(r1.first.cachedInstructions, 0u);

    // 2. shift output invalidates its destination...
    rig.run({BbopInstr::shift(true, 16, y, a, 3)});
    const auto r2 = rig.run({BbopInstr::trspInv(y, 16)});
    EXPECT_EQ(r2.first.cachedInstructions, 0u);
    // ...but its *source* stays clean.
    const auto r2b = rig.run({BbopInstr::trsp(a, 16)});
    EXPECT_EQ(r2b.first.cachedInstructions, 1u);

    // 3. bbop_init rewrites both images coherently: a trsp after it
    // is redundant.
    rig.run({BbopInstr::init(y, 16, 9)});
    const auto r3 = rig.run({BbopInstr::trsp(y, 16)});
    EXPECT_EQ(r3.first.cachedInstructions, 1u);

    // 4. writeObject: vertical is kept coherent for a transposed
    // object, so trsp stays elidable — but the data is new, so an
    // init of the old constant must run.
    rig.write(y, randomData(n, 0xffff, 8));
    const auto r4 = rig.run(
        {BbopInstr::trsp(y, 16), BbopInstr::init(y, 16, 9)});
    EXPECT_EQ(r4.first.cachedInstructions, 1u); // the trsp only
    EXPECT_GT(r4.first.compute.aaps, 0u);

    rig.expectSameImages();
}

TEST(StreamCache, DeviceGroupMutationGenerationTracksWrites)
{
    // The cache tags entries with DeviceGroup::mutationGen(); every
    // group-level write API must advance it (reads must not), so a
    // caller writing a vector out-of-band invalidates any cache
    // entry derived from it.
    DeviceGroup g(testCfg(), 2);
    const auto a = g.alloc(300, 16);
    const auto b = g.alloc(300, 16);
    const auto y = g.alloc(300, 16);
    const uint64_t g0 = g.mutationGen(a);

    g.store(a, randomData(300, 0xffff, 2));
    const uint64_t g1 = g.mutationGen(a);
    EXPECT_GT(g1, g0);

    (void)g.load(a); // reads don't advance
    EXPECT_EQ(g.mutationGen(a), g1);

    g.fillConstant(a, 5);
    const uint64_t g2 = g.mutationGen(a);
    EXPECT_GT(g2, g1);

    g.store(b, randomData(300, 0xffff, 3));
    g.shiftLeft(y, a, 2); // dst advances, src does not
    EXPECT_EQ(g.mutationGen(a), g2);
    EXPECT_GT(g.mutationGen(y), 0u);

    const uint64_t yg = g.mutationGen(y);
    g.run(OpKind::Add, y, a, b);
    EXPECT_GT(g.mutationGen(y), yg);
    EXPECT_EQ(g.mutationGen(a), g2);
}

TEST_P(StreamCacheTest, MixedPipelineStaysBitExactUnderChurn)
{
    // Randomized differential churn: a pipeline of streams mixing
    // trsp / trsp_inv / init / ops / shifts / host writes, submitted
    // without waiting, must leave every object bit-exact between the
    // cached and uncached executors.
    DiffRig rig = cacheRig(GetParam());
    const size_t n = 520; // 3 segments
    const uint16_t a = rig.define(n, 16);
    const uint16_t b = rig.define(n, 16);
    const uint16_t y = rig.define(n, 16);
    rig.write(a, randomData(n, 0xffff, 21));
    rig.write(b, randomData(n, 0xffff, 22));
    rig.run({BbopInstr::trsp(a, 16), BbopInstr::trsp(b, 16),
             BbopInstr::trsp(y, 16)});

    Rng rng(0xc0ffee);
    std::vector<StreamHandle> hc, hu;
    auto submitBoth = [&](const std::vector<BbopInstr> &s) {
        hc.push_back(rig.opt.submit(s));
        hu.push_back(rig.ref.submit(s));
    };
    for (int round = 0; round < 60; ++round) {
        switch (rng.below(6)) {
          case 0:
            submitBoth({BbopInstr::trsp(a, 16),
                        BbopInstr::binary(OpKind::Add, 16, y, a,
                                          b)});
            break;
          case 1:
            submitBoth({BbopInstr::trsp(b, 16),
                        BbopInstr::binary(OpKind::Sub, 16, y, a, b),
                        BbopInstr::trspInv(y, 16)});
            break;
          case 2: {
            const uint64_t imm = rng.below(100);
            submitBoth({BbopInstr::init(b, 16, imm),
                        BbopInstr::init(b, 16, imm)}); // dupe
            break;
          }
          case 3:
            submitBoth({BbopInstr::shift(rng.below(2) != 0, 16, y,
                                         a, rng.below(8)),
                        BbopInstr::trspInv(y, 16)});
            break;
          case 4:
            // writeObject drains both executors, then the pipeline
            // refills.
            rig.write(a, randomData(n, 0xffff, 1000 + round));
            break;
          case 5:
            submitBoth(
                {BbopInstr::trsp(y, 16), BbopInstr::trsp(a, 16)});
            break;
        }
    }
    size_t cached_hits = 0;
    for (auto &h : hc)
        cached_hits += h.wait().cachedInstructions;
    for (auto &h : hu)
        EXPECT_EQ(h.wait().cachedInstructions, 0u);

    rig.expectSameImages();
    EXPECT_EQ(rig.opt.cacheHits(), cached_hits);
    EXPECT_GT(rig.opt.cacheHits(), 0u);
    EXPECT_EQ(rig.ref.cacheHits(), 0u);
}

// ---- App runtime paths: reduced trsp counts, bit-exact --------------

TEST_P(StreamCacheTest, KnnStreamsStopRetransposingTheReferenceSet)
{
    const size_t devices = GetParam();
    DeviceGroup gc(testCfg(), devices);
    DeviceGroup gu(testCfg(), devices);
    KnnStreamReport cached, uncached;
    // knnVerify itself checks result correctness against the host
    // for every query (hence cached and uncached agree bit-exactly)
    // and asserts the expected cache-hit floor internally.
    ASSERT_TRUE(knnVerify(gc, 321, /*stream_cache=*/true, &cached));
    ASSERT_TRUE(
        knnVerify(gu, 321, /*stream_cache=*/false, &uncached));
    EXPECT_EQ(cached.streams, uncached.streams);
    EXPECT_EQ(uncached.cachedInstructions, 0u);
    EXPECT_GT(cached.cachedInstructions, 0u);
    // The cached run pays strictly less transposition-unit work.
    EXPECT_LT(cached.transferActivates, uncached.transferActivates);
}

TEST_P(StreamCacheTest, NnTapStreamsStopRetransposingActivations)
{
    const size_t devices = GetParam();
    DeviceGroup gc(testCfg(), devices);
    DeviceGroup gu(testCfg(), devices);
    NnStreamReport cached, uncached;
    ASSERT_TRUE(
        nnVerifyConvTile(gc, 123, /*stream_cache=*/true, &cached));
    ASSERT_TRUE(nnVerifyConvTile(gu, 123, /*stream_cache=*/false,
                                 &uncached));
    EXPECT_EQ(cached.streams, uncached.streams);
    EXPECT_EQ(uncached.cachedInstructions, 0u);
    // Every per-tap trsp is elided on the cached side.
    EXPECT_GE(cached.cachedInstructions, cached.streams);
    EXPECT_LT(cached.transferActivates, uncached.transferActivates);
}

} // namespace
} // namespace simdram
