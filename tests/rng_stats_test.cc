/**
 * @file
 * Unit tests for the deterministic RNG and the statistics types.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace simdram
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const double mean = 3.0, sigma = 2.0;
    double sum = 0, sumsq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(mean, sigma);
        sum += g;
        sumsq += g * g;
    }
    const double m = sum / n;
    const double var = sumsq / n - m * m;
    EXPECT_NEAR(m, mean, 0.05);
    EXPECT_NEAR(std::sqrt(var), sigma, 0.05);
}

TEST(DramStats, AccumulateAddsEverything)
{
    DramStats a, b;
    a.aaps = 3;
    a.latencyNs = 10;
    a.energyPj = 5;
    b.aaps = 2;
    b.latencyNs = 7;
    b.energyPj = 4;
    a += b;
    EXPECT_EQ(a.aaps, 5u);
    EXPECT_DOUBLE_EQ(a.latencyNs, 17.0);
    EXPECT_DOUBLE_EQ(a.energyPj, 9.0);
}

TEST(DramStats, ParallelMergeTakesMaxLatency)
{
    DramStats a, b;
    a.latencyNs = 10;
    a.energyPj = 5;
    b.latencyNs = 7;
    b.energyPj = 4;
    a.mergeParallel(b);
    EXPECT_DOUBLE_EQ(a.latencyNs, 10.0);
    EXPECT_DOUBLE_EQ(a.energyPj, 9.0);
}

TEST(DramStats, FreeOperatorPlusIsSerial)
{
    DramStats a, b;
    a.aaps = 3;
    a.reads = 1;
    a.latencyNs = 10;
    a.energyPj = 5;
    b.aaps = 2;
    b.writes = 4;
    b.latencyNs = 7;
    b.energyPj = 4;
    const DramStats c = a + b;
    EXPECT_EQ(c.aaps, 5u);
    EXPECT_EQ(c.reads, 1u);
    EXPECT_EQ(c.writes, 4u);
    EXPECT_DOUBLE_EQ(c.latencyNs, 17.0);
    EXPECT_DOUBLE_EQ(c.energyPj, 9.0);
    // Operands untouched.
    EXPECT_EQ(a.aaps, 3u);
    EXPECT_EQ(b.aaps, 2u);
}

TEST(DramStats, FreeMergeIsParallel)
{
    DramStats a, b;
    a.aaps = 3;
    a.latencyNs = 10;
    a.energyPj = 5;
    b.aaps = 2;
    b.latencyNs = 7;
    b.energyPj = 4;
    const DramStats c = merge(a, b);
    EXPECT_EQ(c.aaps, 5u);
    EXPECT_DOUBLE_EQ(c.latencyNs, 10.0);
    EXPECT_DOUBLE_EQ(c.energyPj, 9.0);
    // Merging with a default object is the identity.
    const DramStats d = merge(DramStats{}, b);
    EXPECT_EQ(d.aaps, 2u);
    EXPECT_DOUBLE_EQ(d.latencyNs, 7.0);
}

TEST(DramStats, DiffRecoversSnapshotDelta)
{
    DramStats before, delta;
    before.aaps = 3;
    before.activates = 9;
    before.latencyNs = 10;
    before.energyPj = 5;
    delta.aaps = 4;
    delta.precharges = 2;
    delta.latencyNs = 2.5;
    delta.energyPj = 1.5;
    const DramStats after = before + delta;
    const DramStats d = diff(after, before);
    EXPECT_EQ(d.aaps, 4u);
    EXPECT_EQ(d.activates, 0u);
    EXPECT_EQ(d.precharges, 2u);
    EXPECT_DOUBLE_EQ(d.latencyNs, 2.5);
    EXPECT_DOUBLE_EQ(d.energyPj, 1.5);
}

TEST(DramStats, ResetClears)
{
    DramStats a;
    a.aaps = 1;
    a.latencyNs = 2;
    a.reset();
    EXPECT_EQ(a.aaps, 0u);
    EXPECT_DOUBLE_EQ(a.latencyNs, 0.0);
}

TEST(DramStats, SummaryMentionsCounters)
{
    DramStats a;
    a.aaps = 42;
    EXPECT_NE(a.summary().find("AAP=42"), std::string::npos);
}

TEST(RunResult, ThroughputMath)
{
    RunResult r;
    r.elements = 1000;
    r.latencyNs = 500.0;
    EXPECT_DOUBLE_EQ(r.throughputGops(), 2.0);
}

TEST(RunResult, EfficiencyMath)
{
    RunResult r;
    r.elements = 1000;
    r.energyPj = 2000.0; // 2e-9 J -> 0.5e12 ops/J = 500 Gops/J
    EXPECT_DOUBLE_EQ(r.efficiencyGopsPerJoule(), 500.0);
}

TEST(RunResult, ZeroGuards)
{
    RunResult r;
    EXPECT_DOUBLE_EQ(r.throughputGops(), 0.0);
    EXPECT_DOUBLE_EQ(r.efficiencyGopsPerJoule(), 0.0);
}

} // namespace
} // namespace simdram
