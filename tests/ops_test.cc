/**
 * @file
 * Tests for the operation library: signatures, golden references,
 * and exhaustive/randomized functional checks of every generated
 * circuit against referenceOp().
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "logic/simulate.h"
#include "ops/library.h"

namespace simdram
{
namespace
{

TEST(OpKind, NamesAreStable)
{
    EXPECT_EQ(toString(OpKind::Add), "add");
    EXPECT_EQ(toString(OpKind::AndRed), "and_red");
    EXPECT_EQ(toString(OpKind::Bitcount), "bitcount");
    EXPECT_EQ(toString(OpKind::IfElse), "if_else");
    EXPECT_EQ(toString(OpKind::XorRed), "xor_red");
}

TEST(OpKind, SignatureShapes)
{
    const auto add = signatureOf(OpKind::Add, 32);
    EXPECT_EQ(add.numInputs, 2u);
    EXPECT_FALSE(add.hasSel);
    EXPECT_EQ(add.outWidth, 32u);

    const auto relu = signatureOf(OpKind::Relu, 16);
    EXPECT_EQ(relu.numInputs, 1u);
    EXPECT_EQ(relu.outWidth, 16u);

    const auto eq = signatureOf(OpKind::Eq, 32);
    EXPECT_EQ(eq.outWidth, 1u);

    const auto ifelse = signatureOf(OpKind::IfElse, 8);
    EXPECT_TRUE(ifelse.hasSel);
    EXPECT_EQ(ifelse.numInputs, 2u);

    const auto bc = signatureOf(OpKind::Bitcount, 8);
    EXPECT_EQ(bc.outWidth, 4u); // 0..8 needs 4 bits
    EXPECT_EQ(signatureOf(OpKind::Bitcount, 32).outWidth, 6u);
}

TEST(OpKind, ReferenceSpotChecks)
{
    EXPECT_EQ(referenceOp(OpKind::Add, 8, 200, 100), 44u);
    EXPECT_EQ(referenceOp(OpKind::Sub, 8, 5, 10), 251u);
    EXPECT_EQ(referenceOp(OpKind::Abs, 8, 0xFF, 0), 1u);
    EXPECT_EQ(referenceOp(OpKind::Relu, 8, 0x80, 0), 0u);
    EXPECT_EQ(referenceOp(OpKind::Relu, 8, 0x7F, 0), 0x7Fu);
    EXPECT_EQ(referenceOp(OpKind::Div, 8, 100, 7), 14u);
    EXPECT_EQ(referenceOp(OpKind::Div, 8, 100, 0), 255u);
    EXPECT_EQ(referenceOp(OpKind::Mul, 8, 20, 20), 144u);
    EXPECT_EQ(referenceOp(OpKind::Bitcount, 8, 0xF0, 0), 4u);
    EXPECT_EQ(referenceOp(OpKind::AndRed, 4, 0xF, 0), 1u);
    EXPECT_EQ(referenceOp(OpKind::AndRed, 4, 0xE, 0), 0u);
    EXPECT_EQ(referenceOp(OpKind::XorRed, 4, 0x7, 0), 1u);
    EXPECT_EQ(referenceOp(OpKind::IfElse, 8, 1, 2, true), 1u);
    EXPECT_EQ(referenceOp(OpKind::IfElse, 8, 1, 2, false), 2u);
    EXPECT_EQ(referenceOp(OpKind::Max, 8, 3, 200), 200u);
    EXPECT_EQ(referenceOp(OpKind::Min, 8, 3, 200), 3u);
}

TEST(OpLibrary, WidthBoundsEnforced)
{
    EXPECT_THROW(buildOpCircuit(OpKind::Add, 0, GateStyle::Mig),
                 FatalError);
    EXPECT_THROW(buildOpCircuit(OpKind::Add, 65, GateStyle::Mig),
                 FatalError);
    EXPECT_THROW(buildOpCircuit(OpKind::Abs, 1, GateStyle::Mig),
                 FatalError);
    EXPECT_NO_THROW(buildOpCircuit(OpKind::IfElse, 1,
                                   GateStyle::Mig));
}

TEST(OpLibrary, CachingReturnsSameObject)
{
    OperationLibrary lib;
    const Circuit &a = lib.mig(OpKind::Add, 8);
    const Circuit &b = lib.mig(OpKind::Add, 8);
    EXPECT_EQ(&a, &b);
}

TEST(OpLibrary, ExpertMigSmallerOnArithmetic)
{
    OperationLibrary lib;
    for (OpKind op : {OpKind::Add, OpKind::Sub, OpKind::Mul,
                      OpKind::Div, OpKind::Bitcount}) {
        const size_t aoig = lib.aoig(op, 16).topoOrder().size();
        const size_t mig = lib.mig(op, 16).topoOrder().size();
        EXPECT_LT(mig, aoig) << toString(op)
            << ": MAJ/NOT must need fewer gates";
    }
}

/**
 * Functional check of the production MIG for every operation and a
 * sweep of widths: simulate over many lanes and compare against the
 * scalar reference. Exhaustive over both operands at small widths.
 */
class OpFunctionalTest
    : public ::testing::TestWithParam<std::tuple<OpKind, size_t>>
{
};

TEST_P(OpFunctionalTest, MigMatchesReference)
{
    const auto [op, width] = GetParam();
    if ((op == OpKind::Abs || op == OpKind::Relu) && width < 2)
        GTEST_SKIP();
    OperationLibrary lib;
    const Circuit &mig = lib.mig(op, width);
    const auto sig = signatureOf(op, width);

    // Build the lane workload: exhaustive when cheap, random tail.
    std::vector<uint64_t> as, bs, sels;
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    if (width <= 5 && sig.numInputs == 2) {
        for (uint64_t a = 0; a <= mask; ++a)
            for (uint64_t b = 0; b <= mask; ++b) {
                as.push_back(a);
                bs.push_back(b);
                sels.push_back((a ^ b) & 1);
            }
    } else {
        Rng rng(0x5151 + width);
        for (int i = 0; i < 2000; ++i) {
            as.push_back(rng.next() & mask);
            bs.push_back(rng.next() & mask);
            sels.push_back(rng.next() & 1);
        }
        // Edge lanes.
        for (uint64_t v :
             {uint64_t{0}, uint64_t{1}, mask, mask - 1, mask >> 1}) {
            as.push_back(v & mask);
            bs.push_back(mask - (v & mask));
            sels.push_back(1);
        }
    }

    std::map<std::string, std::vector<uint64_t>> in;
    in["a"] = as;
    if (sig.numInputs == 2)
        in["b"] = bs;
    if (sig.hasSel)
        in["sel"] = sels;
    const auto out = simulateBuses(mig, in, as.size());
    const auto &ys = out.at("y");
    for (size_t i = 0; i < as.size(); ++i) {
        const uint64_t expect = referenceOp(
            op, width, as[i], sig.numInputs == 2 ? bs[i] : 0,
            sels[i] != 0);
        ASSERT_EQ(ys[i], expect)
            << toString(op) << " w=" << width << " a=" << as[i]
            << " b=" << bs[i];
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpFunctionalTest,
    ::testing::Combine(::testing::ValuesIn(kAllOps),
                       ::testing::Values(size_t{4}, size_t{8},
                                         size_t{16}, size_t{32})),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace simdram
