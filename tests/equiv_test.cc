/**
 * @file
 * Unit tests for the equivalence checker itself.
 */

#include <gtest/gtest.h>

#include "logic/equiv.h"

namespace simdram
{
namespace
{

TEST(Equiv, IdenticalCircuitsEquivalent)
{
    Circuit a;
    const Lit x = a.addInput("x");
    const Lit y = a.addInput("y");
    a.addOutput("o", a.mkAnd(x, y));

    Circuit b;
    const Lit x2 = b.addInput("x");
    const Lit y2 = b.addInput("y");
    b.addOutput("o", b.mkAnd(x2, y2));

    const auto r = checkEquivalence(a, b);
    EXPECT_TRUE(r.equivalent);
    EXPECT_TRUE(r.exhaustive);
}

TEST(Equiv, DeMorganHolds)
{
    Circuit a;
    {
        const Lit x = a.addInput("x");
        const Lit y = a.addInput("y");
        a.addOutput("o", Circuit::litNot(a.mkAnd(x, y)));
    }
    Circuit b;
    {
        const Lit x = b.addInput("x");
        const Lit y = b.addInput("y");
        b.addOutput("o", b.mkOr(Circuit::litNot(x),
                                Circuit::litNot(y)));
    }
    EXPECT_TRUE(checkEquivalence(a, b).equivalent);
}

TEST(Equiv, DetectsAndVsOr)
{
    Circuit a;
    {
        const Lit x = a.addInput("x");
        const Lit y = a.addInput("y");
        a.addOutput("o", a.mkAnd(x, y));
    }
    Circuit b;
    {
        const Lit x = b.addInput("x");
        const Lit y = b.addInput("y");
        b.addOutput("o", b.mkOr(x, y));
    }
    const auto r = checkEquivalence(a, b);
    EXPECT_FALSE(r.equivalent);
    EXPECT_FALSE(r.message.empty());
    EXPECT_NE(r.message.find("output 0"), std::string::npos);
}

TEST(Equiv, DetectsInputCountMismatch)
{
    Circuit a;
    a.addInput("x");
    a.addOutput("o", Circuit::kLit0);
    Circuit b;
    b.addOutput("o", Circuit::kLit0);
    EXPECT_FALSE(checkEquivalence(a, b).equivalent);
}

TEST(Equiv, DetectsOutputCountMismatch)
{
    Circuit a;
    a.addInput("x");
    a.addOutput("o", Circuit::kLit0);
    Circuit b;
    b.addInput("x");
    b.addOutput("o", Circuit::kLit0);
    b.addOutput("o2", Circuit::kLit1);
    EXPECT_FALSE(checkEquivalence(a, b).equivalent);
}

TEST(Equiv, ConstantCircuits)
{
    Circuit a;
    a.addOutput("o", Circuit::kLit1);
    Circuit b;
    b.addOutput("o", Circuit::kLit1);
    EXPECT_TRUE(checkEquivalence(a, b).equivalent);

    Circuit d;
    d.addOutput("o", Circuit::kLit0);
    EXPECT_FALSE(checkEquivalence(a, d).equivalent);
}

TEST(Equiv, LargeCircuitsUseRandomStrategy)
{
    // 20 inputs exceeds the exhaustive limit.
    Circuit a, b;
    std::vector<Lit> xs_a, xs_b;
    for (int i = 0; i < 20; ++i) {
        xs_a.push_back(a.addInput("x" + std::to_string(i)));
        xs_b.push_back(b.addInput("x" + std::to_string(i)));
    }
    Lit acc_a = Circuit::kLit0, acc_b = Circuit::kLit0;
    for (int i = 0; i < 20; ++i) {
        acc_a = a.mkOr(acc_a, xs_a[i]);
        acc_b = b.mkOr(acc_b, xs_b[i]);
    }
    a.addOutput("o", acc_a);
    b.addOutput("o", acc_b);
    const auto r = checkEquivalence(a, b);
    EXPECT_TRUE(r.equivalent);
    EXPECT_FALSE(r.exhaustive);
}

TEST(Equiv, RandomStrategyFindsSingleMintermBug)
{
    // Differ only on the all-ones assignment of 18 inputs: random
    // vectors are unlikely to hit it, but AND-reduction structure
    // means... actually make the difference broad enough: differ on
    // any assignment where the two top inputs are set.
    Circuit a, b;
    std::vector<Lit> xs_a, xs_b;
    for (int i = 0; i < 18; ++i) {
        xs_a.push_back(a.addInput("x" + std::to_string(i)));
        xs_b.push_back(b.addInput("x" + std::to_string(i)));
    }
    a.addOutput("o", a.mkAnd(xs_a[0], xs_a[1]));
    b.addOutput("o", b.mkOr(xs_b[0], xs_b[1]));
    EXPECT_FALSE(checkEquivalence(a, b).equivalent);
}

} // namespace
} // namespace simdram
