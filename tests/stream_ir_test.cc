/**
 * @file
 * Tests for the stream IR layer (src/stream): effectsOf() read/write
 * sets, lift/lower round-trips, each optimizer pass in isolation
 * (trsp/init hoisting, dead-write elimination, segment fusion), the
 * StreamBuilder's width derivation and ping-pong accumulate helper,
 * the executor's pass toggles and split cache counters, and a
 * randomized differential check that a passes-on executor stays
 * bit-exact with a passes-off one over multi-segment programs. Runs
 * under ThreadSanitizer in CI alongside stream_cache_test.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/stream_executor.h"
#include "stream/passes.h"
#include "stream/stream_builder.h"
#include "stream_testutil.h"

namespace simdram
{
namespace
{

using testutil::DiffRig;
using testutil::noPassesOpts;
using testutil::randomData;
using testutil::testCfg;

/** Optimizer passes on, runtime cache off (isolates the passes). */
StreamExecutorOptions
passOpts()
{
    StreamExecutorOptions o;
    o.enableStreamCache = false;
    return o;
}

/** Passes-on vs all-off rig: only the opt side may remove work. */
DiffRig
passRig(size_t devices)
{
    return DiffRig(devices, passOpts(), noPassesOpts(/*cache=*/false));
}

bool
hasAccess(const BbopAccess *list, size_t n, uint16_t obj, BbopLoc loc)
{
    for (size_t i = 0; i < n; ++i)
        if (list[i].obj == obj && list[i].loc == loc)
            return true;
    return false;
}

// ---- effectsOf: the dataflow seam the passes are built on -----------

TEST(StreamEffects, EveryOpcodeReportsItsReadsAndFullWrites)
{
    const auto et = effectsOf(BbopInstr::trsp(3, 16));
    EXPECT_TRUE(hasAccess(et.reads, et.numReads, 3, BbopLoc::Host));
    EXPECT_TRUE(hasAccess(et.writes, et.numWrites, 3, BbopLoc::Vert));

    const auto ei = effectsOf(BbopInstr::trspInv(3, 16));
    EXPECT_TRUE(hasAccess(ei.reads, ei.numReads, 3, BbopLoc::Vert));
    EXPECT_TRUE(hasAccess(ei.writes, ei.numWrites, 3, BbopLoc::Host));

    // init coherently rewrites BOTH images.
    const auto en = effectsOf(BbopInstr::init(3, 16, 7));
    EXPECT_EQ(en.numReads, 0u);
    EXPECT_TRUE(hasAccess(en.writes, en.numWrites, 3, BbopLoc::Vert));
    EXPECT_TRUE(hasAccess(en.writes, en.numWrites, 3, BbopLoc::Host));

    const auto eb =
        effectsOf(BbopInstr::binary(OpKind::Add, 16, 2, 0, 1));
    EXPECT_TRUE(hasAccess(eb.reads, eb.numReads, 0, BbopLoc::Vert));
    EXPECT_TRUE(hasAccess(eb.reads, eb.numReads, 1, BbopLoc::Vert));
    EXPECT_TRUE(hasAccess(eb.writes, eb.numWrites, 2, BbopLoc::Vert));

    const auto ep = effectsOf(
        BbopInstr::predicated(OpKind::IfElse, 16, 2, 0, 1, 4));
    EXPECT_TRUE(hasAccess(ep.reads, ep.numReads, 4, BbopLoc::Vert));

    const auto es = effectsOf(BbopInstr::shift(true, 16, 2, 0, 3));
    EXPECT_TRUE(hasAccess(es.reads, es.numReads, 0, BbopLoc::Vert));
    EXPECT_TRUE(hasAccess(es.writes, es.numWrites, 2, BbopLoc::Vert));
}

// ---- IR round-trips -------------------------------------------------

TEST(StreamIRTest, LiftLowerRoundTripsUnchangedPrograms)
{
    const std::vector<BbopInstr> stream = {
        BbopInstr::trsp(0, 16),
        BbopInstr::unary(OpKind::Abs, 16, 1, 0),
        BbopInstr::trspInv(1, 16),
    };
    const StreamIR ir = StreamIR::lift(stream);
    EXPECT_EQ(ir.segments, 1u);
    EXPECT_EQ(ir.liveCount(), stream.size());
    const auto segs = ir.lower();
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0], stream);
}

TEST(StreamIRTest, LowerSkipsDeadAndKeepsEmptySegmentSlots)
{
    StreamIR ir;
    ir.segments = 2;
    ir.nodes.push_back({BbopInstr::trsp(0, 16), 0, true});
    ir.nodes.push_back({BbopInstr::init(0, 16, 5), 1, false});
    const auto segs = ir.lower();
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_TRUE(segs[0].empty());
    ASSERT_EQ(segs[1].size(), 1u);
    EXPECT_EQ(ir.liveCount(), 1u);
}

// ---- The passes, each in isolation ----------------------------------

TEST(StreamPasses, HoistRemovesTrspOfUnchangedObject)
{
    // The second trsp(a) re-transposes an image nothing wrote.
    StreamIR ir = StreamIR::lift({
        BbopInstr::trsp(0, 16),
        BbopInstr::unary(OpKind::Abs, 16, 1, 0),
        BbopInstr::trsp(0, 16),
    });
    const PassStats s =
        runPasses(ir, {/*trspHoist=*/true, /*deadWriteElim=*/false,
                       /*fusion=*/false});
    EXPECT_EQ(s.hoisted, 1u);
    EXPECT_EQ(s.deadEliminated, 0u);
    const auto segs = ir.lower();
    ASSERT_EQ(segs[0].size(), 2u);
    EXPECT_EQ(segs[0][1], BbopInstr::unary(OpKind::Abs, 16, 1, 0));
}

TEST(StreamPasses, HoistRemovesInitOnlyWhenConstantMatches)
{
    StreamIR ir = StreamIR::lift({
        BbopInstr::init(0, 16, 7),
        BbopInstr::unary(OpKind::Abs, 16, 1, 0),
        BbopInstr::init(0, 16, 7), // same constant: redundant
        BbopInstr::init(0, 16, 9), // different: must stay
    });
    const PassStats s =
        runPasses(ir, {/*trspHoist=*/true, /*deadWriteElim=*/false,
                       /*fusion=*/false});
    EXPECT_EQ(s.hoisted, 1u);
    EXPECT_EQ(ir.liveCount(), 3u);
}

TEST(StreamPasses, DeadWriteElimKeepsOnlyTheLastWriter)
{
    // trsp's vertical image and trspInv's host image are both fully
    // overwritten by the init before anything reads them.
    StreamIR ir = StreamIR::lift({
        BbopInstr::trsp(0, 16),
        BbopInstr::trspInv(0, 16),
        BbopInstr::init(0, 16, 7),
    });
    const PassStats s =
        runPasses(ir, {/*trspHoist=*/false, /*deadWriteElim=*/true,
                       /*fusion=*/false});
    EXPECT_EQ(s.deadEliminated, 2u);
    const auto segs = ir.lower();
    ASSERT_EQ(segs[0].size(), 1u);
    EXPECT_EQ(segs[0][0], BbopInstr::init(0, 16, 7));
}

TEST(StreamPasses, DeadWriteElimSpareReadersAndLiveOutWrites)
{
    // Every write here is read (or live-out): nothing to remove.
    StreamIR ir = StreamIR::lift({
        BbopInstr::trsp(0, 16),
        BbopInstr::unary(OpKind::Abs, 16, 1, 0),
        BbopInstr::trsp(0, 16), // live-out (hoist's job, not DWE's)
    });
    const PassStats s =
        runPasses(ir, {/*trspHoist=*/false, /*deadWriteElim=*/true,
                       /*fusion=*/false});
    EXPECT_EQ(s.deadEliminated, 0u);
    EXPECT_EQ(ir.liveCount(), 3u);
}

TEST(StreamPasses, FusionMergesAdjacentSegmentsSharingOperands)
{
    StreamIR ir;
    ir.segments = 3;
    // s0 and s1 share object 0 -> fuse; s2 touches only object 2.
    ir.nodes.push_back({BbopInstr::trsp(0, 16), 0});
    ir.nodes.push_back({BbopInstr::unary(OpKind::Abs, 16, 1, 0), 1});
    ir.nodes.push_back({BbopInstr::trsp(2, 16), 2});
    const PassStats s =
        runPasses(ir, {/*trspHoist=*/false, /*deadWriteElim=*/false,
                       /*fusion=*/true});
    EXPECT_EQ(s.fusedSegments, 1u);
    EXPECT_EQ(ir.segments, 2u);
    const auto segs = ir.lower();
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].size(), 2u);
    EXPECT_EQ(segs[1].size(), 1u);
}

// ---- StreamBuilder --------------------------------------------------

TEST(StreamBuilderTest, DerivesWidthsFromTheObjectTable)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);
    const uint16_t b2 = ex.defineObject(100, 16);
    const uint16_t m = ex.defineObject(100, 1);

    StreamBuilder b(ex);
    b.trsp(a).trsp(b2).binary(OpKind::Gt, m, a, b2);
    // ^ width of the COMPARISON comes from src1 (16), not dst (1).
    const StreamIR ir = b.build();
    ASSERT_EQ(ir.nodes.size(), 3u);
    EXPECT_EQ(ir.nodes[0].instr, BbopInstr::trsp(a, 16));
    EXPECT_EQ(ir.nodes[2].instr.width, 16);
    EXPECT_EQ(ir.nodes[2].instr.dst, m);

    EXPECT_THROW(b.trsp(999), BbopError); // unknown object
}

TEST(StreamBuilderTest, NextStreamSplitsAndGuardsSingleStreamPaths)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);

    StreamBuilder b(ex);
    b.nextStream(); // no-op on an empty program
    b.trsp(a).nextStream().init(a, 3);
    EXPECT_EQ(b.build().segments, 2u);
    // Encoded words and single-handle submit carry no segment
    // boundaries: both refuse a split program.
    EXPECT_THROW(b.encodeStream(), BbopError);
    EXPECT_THROW(b.submit(), BbopError);

    auto handles = b.submitAll();
    ASSERT_EQ(handles.size(), 2u);
    handles[0].wait();
    handles[1].wait();
    EXPECT_EQ(b.size(), 0u); // submitAll resets the builder
    for (uint64_t v : ex.readObject(a))
        ASSERT_EQ(v, 3u);
}

TEST(StreamBuilderTest, PingPongAccumulateAlternatesScratch)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    const uint16_t oa = ex.defineObject(100, 16);
    const uint16_t ob = ex.defineObject(100, 16);
    const uint16_t ov = ex.defineObject(100, 16);

    PingPong acc{oa, ob};
    EXPECT_EQ(acc.src(), oa);
    EXPECT_EQ(acc.dst(), ob);

    StreamBuilder b(ex);
    b.accumulate(acc, ov).accumulate(acc, ov).accumulate(acc, ov);
    const StreamIR ir = b.build();
    ASSERT_EQ(ir.nodes.size(), 3u);
    EXPECT_EQ(ir.nodes[0].instr,
              BbopInstr::binary(OpKind::Add, 16, ob, oa, ov));
    EXPECT_EQ(ir.nodes[1].instr,
              BbopInstr::binary(OpKind::Add, 16, oa, ob, ov));
    EXPECT_EQ(ir.nodes[2].instr,
              BbopInstr::binary(OpKind::Add, 16, ob, oa, ov));
    // After an odd number of steps the sum lives in the pong object.
    EXPECT_EQ(acc.result(), ob);
}

TEST(StreamBuilderTest, UnknownIdsThrowTypedWithoutMutating)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);
    const uint16_t c = ex.defineObject(100, 16);
    const uint16_t d = ex.defineObject(100, 16);
    const uint16_t bad = 999; // never defined

    StreamBuilder b(ex);
    b.trsp(a); // a known prefix the failures must not disturb

    // Every fluent method, every operand position: the typed
    // BbopError fires at BUILD time and the program is unmutated —
    // not just the width-source operand (src1 for ops, dst for
    // shifts), which widthOf() already covered, but every other
    // operand too.
    const auto unchanged = [&] { return b.size() == 1; };
    EXPECT_THROW(b.trsp(bad), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.trspInv(bad), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.init(bad, 7), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.unary(OpKind::Abs, bad, a), BbopError); // dst
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.unary(OpKind::Abs, a, bad), BbopError); // src1
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.binary(OpKind::Add, bad, a, c), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.binary(OpKind::Add, a, bad, c), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.binary(OpKind::Add, a, c, bad), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.predicated(OpKind::IfElse, bad, a, c, d),
                 BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.predicated(OpKind::IfElse, a, bad, c, d),
                 BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.predicated(OpKind::IfElse, a, c, bad, d),
                 BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.predicated(OpKind::IfElse, a, c, d, bad),
                 BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.shiftLeft(bad, a, 1), BbopError); // dst
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.shiftLeft(a, bad, 1), BbopError); // src
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.shiftRight(bad, a, 1), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_THROW(b.shiftRight(a, bad, 1), BbopError);
    EXPECT_TRUE(unchanged());
    PingPong acc{a, c};
    EXPECT_THROW(b.accumulate(acc, bad), BbopError);
    EXPECT_TRUE(unchanged());
    EXPECT_EQ(acc.src(), a); // a failed step must not flip

    // The builder stays fully usable: finish a real program on it.
    b.trsp(c)
        .trsp(d)
        .binary(OpKind::Add, d, a, c)
        .trspInv(d);
    EXPECT_EQ(b.build().nodes.size(), 5u);
    ex.writeObject(a, std::vector<uint64_t>(100, 5));
    ex.writeObject(c, std::vector<uint64_t>(100, 2));
    b.submit().wait();
    for (uint64_t v : ex.readObject(d))
        ASSERT_EQ(v, 7u);
}

TEST(StreamBuilderTest, WidthSourceAsymmetryOpsFromSrc1ShiftsFromDst)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    const uint16_t wide = ex.defineObject(100, 16);
    const uint16_t narrow = ex.defineObject(100, 8);

    StreamBuilder b(ex);
    // Operations take their element width from src1...
    b.binary(OpKind::Add, narrow, wide, wide);
    // ...shifts take it from dst.
    b.shiftLeft(narrow, wide, 1);
    b.shiftRight(wide, narrow, 1);
    const StreamIR ir = b.build();
    ASSERT_EQ(ir.nodes.size(), 3u);
    EXPECT_EQ(ir.nodes[0].instr.width, 16); // src1 = wide
    EXPECT_EQ(ir.nodes[1].instr.width, 8);  // dst = narrow
    EXPECT_EQ(ir.nodes[2].instr.width, 16); // dst = wide
}

// ---- Executor integration: toggles, counters, handles ---------------

TEST(StreamExecutorPasses, TogglesSelectWhichPassesRun)
{
    const std::vector<std::pair<bool, bool>> combos = {
        {true, true}, {true, false}, {false, true}, {false, false}};
    for (const auto &[hoist, dwe] : combos) {
        DeviceGroup g(testCfg(), 2);
        StreamExecutorOptions o;
        o.enableStreamCache = false;
        o.enableTrspHoist = hoist;
        o.enableDeadWriteElim = dwe;
        StreamExecutor ex(g, o);
        const uint16_t a = ex.defineObject(300, 16);
        const uint16_t y = ex.defineObject(300, 16);
        ex.writeObject(a, randomData(300, 0xffff, 3));

        // trsp(y) is a dead write (the Abs fully overwrites y before
        // anything reads it); the second trsp(a) is a redundant
        // re-transpose (nothing wrote a since the first). Each
        // toggle removes exactly its own instruction.
        const StreamResult r =
            ex.submit({BbopInstr::trsp(y, 16),
                       BbopInstr::trsp(a, 16),
                       BbopInstr::unary(OpKind::Abs, 16, y, a),
                       BbopInstr::trsp(a, 16)})
                .wait();
        const size_t expected =
            (hoist ? 1u : 0u) + (dwe ? 1u : 0u);
        EXPECT_EQ(r.optimizedInstructions, expected)
            << "hoist=" << hoist << " dwe=" << dwe;
        EXPECT_EQ(r.instructions, 4u); // as-submitted count
        EXPECT_EQ(ex.optimizedInstructionCount(), expected);
    }
}

TEST(StreamExecutorPasses, FusionMergesSubmittedSegmentsIntoOneJob)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, passOpts());
    const uint16_t a = ex.defineObject(300, 16);
    const uint16_t y = ex.defineObject(300, 16);
    ex.writeObject(a, randomData(300, 0xffff, 4));

    StreamBuilder b(ex);
    b.trsp(a)
        .nextStream()
        .unary(OpKind::Abs, y, a)
        .nextStream()
        .trspInv(y);
    auto handles = b.submitAll();
    // Each adjacent segment pair shares an operand, so fusion merges
    // all three into ONE device pass whose single handle reports
    // every as-submitted instruction.
    ASSERT_EQ(handles.size(), 1u);
    const StreamResult r = handles[0].wait();
    EXPECT_EQ(r.instructions, 3u);
    EXPECT_EQ(r.optimizedInstructions, 0u);
}

TEST(StreamExecutorPasses, SplitCacheCountersAttributeTrspAndInit)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, noPassesOpts(/*cache=*/true));
    const uint16_t a = ex.defineObject(300, 16);
    ex.writeObject(a, randomData(300, 0xffff, 5));

    ex.submit({BbopInstr::trsp(a, 16)}).wait();
    const StreamResult rt =
        ex.submit({BbopInstr::trsp(a, 16)}).wait(); // elided: trsp
    EXPECT_EQ(rt.cachedTrspInstructions, 1u);
    EXPECT_EQ(rt.cachedInitInstructions, 0u);
    EXPECT_EQ(rt.cachedInstructions, 1u);

    ex.submit({BbopInstr::init(a, 16, 6)}).wait();
    const StreamResult ri =
        ex.submit({BbopInstr::init(a, 16, 6)}).wait(); // elided: init
    EXPECT_EQ(ri.cachedTrspInstructions, 0u);
    EXPECT_EQ(ri.cachedInitInstructions, 1u);

    EXPECT_EQ(ex.cacheTrspHits(), 1u);
    EXPECT_EQ(ex.cacheInitHits(), 1u);
    EXPECT_EQ(ex.cacheHits(),
              ex.cacheTrspHits() + ex.cacheInitHits());
}

// ---- Randomized differential: passes on vs off ----------------------

class StreamIRDiffTest : public ::testing::TestWithParam<size_t>
{
};

INSTANTIATE_TEST_SUITE_P(Devices, StreamIRDiffTest,
                         ::testing::Values(1, 4),
                         [](const auto &info) {
                             return "d" +
                                    std::to_string(info.param);
                         });

TEST_P(StreamIRDiffTest, RandomProgramsStayBitExact)
{
    // Random multi-segment programs over a small object set, run on a
    // passes-on executor and a passes-off reference: images must stay
    // bit-exact even though the opt side removes and fuses work.
    DiffRig rig = passRig(GetParam());
    const size_t n = 520; // 3 segments per object at 256 lanes
    const uint16_t a = rig.define(n, 16);
    const uint16_t b = rig.define(n, 16);
    const uint16_t y = rig.define(n, 16);
    const uint16_t m = rig.define(n, 1);
    rig.write(a, randomData(n, 0xffff, 31));
    rig.write(b, randomData(n, 0xffff, 32));
    // Establish every layout once so any later instruction is valid.
    rig.run({BbopInstr::trsp(a, 16), BbopInstr::trsp(b, 16),
             BbopInstr::trsp(y, 16), BbopInstr::trsp(m, 1)});

    Rng rng(0x1eaf);
    size_t optimized = 0;
    const uint16_t v16[] = {a, b, y};
    for (int round = 0; round < 40; ++round) {
        StreamBuilder builder(rig.opt); // widths only; not submitted
        const size_t nsegs = 1 + rng.below(3);
        for (size_t s = 0; s < nsegs; ++s) {
            if (s > 0)
                builder.nextStream();
            const size_t len = 1 + rng.below(5);
            for (size_t i = 0; i < len; ++i) {
                const uint16_t o1 = v16[rng.below(3)];
                uint16_t dst = v16[rng.below(3)];
                while (dst == o1)
                    dst = v16[rng.below(3)];
                switch (rng.below(8)) {
                  case 0:
                    builder.trsp(o1);
                    break;
                  case 1:
                    builder.trspInv(o1);
                    break;
                  case 2:
                    builder.init(o1, rng.below(100));
                    break;
                  case 3:
                    builder.unary(OpKind::Abs, dst, o1);
                    break;
                  case 4:
                    // src1 == src2 is legal; only in-place (dst
                    // aliasing an operand) is not.
                    builder.binary(rng.below(2) != 0 ? OpKind::Add
                                                     : OpKind::Sub,
                                   dst, o1, o1);
                    break;
                  case 5:
                    builder.binary(OpKind::Gt, m, o1, dst);
                    break;
                  case 6:
                    builder.predicated(OpKind::IfElse, dst, o1, o1,
                                       m);
                    break;
                  case 7:
                    builder.shiftLeft(dst, o1,
                                      1 + rng.below(7));
                    break;
                }
            }
        }
        const auto [ro, rr] = rig.runIR(builder.build());
        size_t ocount = 0, rcount = 0;
        for (const auto &r : ro) {
            optimized += r.optimizedInstructions;
            ocount += r.instructions;
        }
        for (const auto &r : rr) {
            EXPECT_EQ(r.optimizedInstructions, 0u);
            rcount += r.instructions;
        }
        EXPECT_EQ(ocount, rcount); // as-submitted totals agree
        if (round % 10 == 9)
            rig.expectSameImages();
        if (round == 20) // host write churn drains both pipelines
            rig.write(a, randomData(n, 0xffff, 100 + round));
    }
    // One guaranteed-removable program so the assertion below cannot
    // go stale if the random mix changes.
    const auto [ro, rr] = rig.runIR(StreamIR::lift(
        {BbopInstr::trsp(a, 16),
         BbopInstr::unary(OpKind::Abs, 16, y, a),
         BbopInstr::trsp(a, 16)}));
    optimized += ro.front().optimizedInstructions;
    rig.expectSameImages();
    EXPECT_GT(optimized, 0u);
    EXPECT_EQ(rig.opt.optimizedInstructionCount(), optimized);
    EXPECT_EQ(rig.ref.optimizedInstructionCount(), 0u);
}

} // namespace
} // namespace simdram
