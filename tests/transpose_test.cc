/**
 * @file
 * Tests for the transposition kernels and the transposition unit
 * (layout conversion + cost accounting).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "layout/transpose.h"
#include "layout/transposition_unit.h"
#include "logic/simulate.h"

namespace simdram
{
namespace
{

TEST(Transpose64, IsInvolution)
{
    uint64_t m[64], orig[64];
    Rng rng(1);
    for (int i = 0; i < 64; ++i)
        orig[i] = m[i] = rng.next();
    transpose64(m);
    transpose64(m);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(m[i], orig[i]) << i;
}

TEST(ElementsToRows, MatchesNaivePacking)
{
    Rng rng(2);
    std::vector<uint64_t> elems(150);
    for (auto &v : elems)
        v = rng.next();
    const auto fast = elementsToRows(elems.data(), elems.size(), 40,
                                     192);
    const auto naive = packVertical(elems, 40);
    ASSERT_EQ(fast.size(), naive.size());
    for (size_t j = 0; j < fast.size(); ++j)
        for (size_t i = 0; i < elems.size(); ++i)
            ASSERT_EQ(fast[j].get(i), naive[j].get(i))
                << "row " << j << " lane " << i;
}

TEST(ElementsToRows, RoundTrip)
{
    Rng rng(3);
    for (size_t n : {1u, 63u, 64u, 65u, 200u}) {
        std::vector<uint64_t> elems(n);
        for (auto &v : elems)
            v = rng.next() & 0xffffffffULL;
        const auto rows =
            elementsToRows(elems.data(), n, 32, ((n + 63) / 64) * 64);
        EXPECT_EQ(rowsToElements(rows, n), elems) << "n=" << n;
    }
}

TEST(ElementsToRows, LanesBeyondElementsAreZero)
{
    std::vector<uint64_t> elems = {~0ULL, ~0ULL};
    const auto rows = elementsToRows(elems.data(), 2, 8, 128);
    for (const auto &r : rows) {
        for (size_t i = 2; i < 128; ++i)
            ASSERT_FALSE(r.get(i));
        EXPECT_TRUE(r.get(0));
        EXPECT_TRUE(r.get(1));
    }
}

TEST(ElementsToRows, TooManyElementsRejected)
{
    std::vector<uint64_t> elems(10);
    EXPECT_THROW(elementsToRows(elems.data(), 10, 8, 8), FatalError);
}

TEST(TranspositionUnit, StoreLoadRoundTrip)
{
    DramConfig cfg = DramConfig::forTesting(256, 64);
    Subarray sub(cfg);
    TranspositionUnit tu(cfg);

    Rng rng(4);
    std::vector<uint64_t> data(200);
    for (auto &v : data)
        v = rng.next() & 0xffff;
    tu.storeVertical(sub, 5, 16, data.data(), data.size());
    const auto back = tu.loadVertical(sub, 5, 16, data.size());
    EXPECT_EQ(back, data);
}

TEST(TranspositionUnit, CostsScaleWithRows)
{
    DramConfig cfg = DramConfig::forTesting(256, 64);
    Subarray sub(cfg);
    TranspositionUnit tu(cfg);
    std::vector<uint64_t> data(100, 7);

    tu.storeVertical(sub, 0, 8, data.data(), data.size());
    const double lat8 = tu.stats().latencyNs;
    const double pj8 = tu.stats().energyPj;
    tu.resetStats();
    tu.storeVertical(sub, 0, 16, data.data(), data.size());
    EXPECT_NEAR(tu.stats().latencyNs, 2 * lat8, 1e-9);
    EXPECT_NEAR(tu.stats().energyPj, 2 * pj8, 1e-9);
}

TEST(TranspositionUnit, AccountsIoEnergyPerBit)
{
    DramConfig cfg = DramConfig::forTesting(256, 64);
    Subarray sub(cfg);
    TranspositionUnit tu(cfg);
    std::vector<uint64_t> data(64, 1);
    tu.storeVertical(sub, 0, 8, data.data(), data.size());
    // 8 rows x 64 bits of payload + 8 act/pre pairs.
    const double expected_io = 8.0 * 64.0 * cfg.energy.eIoPjPerBit;
    const double expected_rows =
        8.0 * (cfg.actEnergyPj(1) + cfg.preEnergyPj());
    EXPECT_NEAR(tu.stats().energyPj, expected_io + expected_rows,
                1e-6);
}

TEST(TranspositionUnit, RejectsOverflow)
{
    DramConfig cfg = DramConfig::forTesting(64, 64);
    Subarray sub(cfg);
    TranspositionUnit tu(cfg);
    std::vector<uint64_t> data(100, 0);
    EXPECT_THROW(tu.storeVertical(sub, 0, 8, data.data(), 100),
                 FatalError);
}

} // namespace
} // namespace simdram
