/**
 * @file
 * Tests for the word-level gate builders in both gate styles, using
 * simulation against integer arithmetic as the oracle.
 */

#include <gtest/gtest.h>

#include "logic/simulate.h"
#include "ops/wordgates.h"

namespace simdram
{
namespace
{

/** Builds a circuit around one WordGates construct and simulates. */
class WordGatesTest : public ::testing::TestWithParam<GateStyle>
{
  protected:
    GateStyle style() const { return GetParam(); }
};

TEST_P(WordGatesTest, BitGatesTruthTables)
{
    Circuit c;
    WordGates g(c, style());
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    c.addOutput("and", g.land(a, b));
    c.addOutput("or", g.lor(a, b));
    c.addOutput("xor", g.lxor(a, b));

    BitRow ra(4), rb(4);
    for (int i = 0; i < 4; ++i) {
        ra.set(i, i & 1);
        rb.set(i, i & 2);
    }
    const auto out = simulate(c, {ra, rb});
    for (int i = 0; i < 4; ++i) {
        const bool av = i & 1, bv = i & 2;
        EXPECT_EQ(out[0].get(i), av && bv);
        EXPECT_EQ(out[1].get(i), av || bv);
        EXPECT_EQ(out[2].get(i), av != bv);
    }
}

TEST_P(WordGatesTest, MuxSelects)
{
    Circuit c;
    WordGates g(c, style());
    const Lit s = c.addInput("s");
    const Lit t = c.addInput("t");
    const Lit f = c.addInput("f");
    c.addOutput("y", g.mux(s, t, f));
    BitRow rs(8), rt(8), rf(8);
    for (int i = 0; i < 8; ++i) {
        rs.set(i, i & 1);
        rt.set(i, i & 2);
        rf.set(i, i & 4);
    }
    const auto out = simulate(c, {rs, rt, rf});
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[0].get(i), (i & 1) ? bool(i & 2) : bool(i & 4));
}

TEST_P(WordGatesTest, FullAdderTruthTable)
{
    Circuit c;
    WordGates g(c, style());
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit cin = c.addInput("cin");
    const auto fa = g.fullAdder(a, b, cin);
    c.addOutput("sum", fa.sum[0]);
    c.addOutput("carry", fa.carry);

    BitRow ra(8), rb(8), rc(8);
    for (int i = 0; i < 8; ++i) {
        ra.set(i, i & 1);
        rb.set(i, i & 2);
        rc.set(i, i & 4);
    }
    const auto out = simulate(c, {ra, rb, rc});
    for (int i = 0; i < 8; ++i) {
        const int total = (i & 1 ? 1 : 0) + (i & 2 ? 1 : 0) +
                          (i & 4 ? 1 : 0);
        EXPECT_EQ(out[0].get(i), (total & 1) != 0) << "sum " << i;
        EXPECT_EQ(out[1].get(i), total >= 2) << "carry " << i;
    }
}

TEST_P(WordGatesTest, MigFullAdderUsesThreeMaj)
{
    if (style() != GateStyle::Mig)
        GTEST_SKIP();
    Circuit c;
    WordGates g(c, GateStyle::Mig);
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit cin = c.addInput("cin");
    const auto fa = g.fullAdder(a, b, cin);
    c.addOutput("sum", fa.sum[0]);
    c.addOutput("carry", fa.carry);
    // The paper's Fig.-1 construction: exactly 3 MAJ gates.
    EXPECT_EQ(c.topoOrder().size(), 3u);
}

TEST_P(WordGatesTest, AdderMatchesInteger)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 6);
    const auto b = c.addInputBus("b", 6);
    const auto r = g.add(a, b);
    c.addOutputBus("y", r.sum);
    c.addOutput("carry", r.carry);

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 64; x += 7)
        for (uint64_t y = 0; y < 64; y += 5) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    const auto out = simulateBuses(c, in, in["a"].size());
    for (size_t i = 0; i < in["a"].size(); ++i)
        EXPECT_EQ(out.at("y")[i], (in["a"][i] + in["b"][i]) & 63);
}

TEST_P(WordGatesTest, SubCarryIsNoBorrow)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 5);
    const auto b = c.addInputBus("b", 5);
    const auto r = g.sub(a, b);
    c.addOutputBus("y", r.sum);
    c.addOutput("noborrow", r.carry);

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 32; x += 3)
        for (uint64_t y = 0; y < 32; y += 4) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    const size_t n = in["a"].size();
    const auto out = simulateBuses(c, in, n);
    // noborrow flag is returned as a second output bus "noborrow".
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.at("y")[i], (in["a"][i] - in["b"][i]) & 31);
        EXPECT_EQ(out.at("noborrow")[i],
                  in["a"][i] >= in["b"][i] ? 1u : 0u);
    }
}

TEST_P(WordGatesTest, CompareUnsigned)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 5);
    const auto b = c.addInputBus("b", 5);
    const auto cmp = g.compareUnsigned(a, b);
    c.addOutput("gt", cmp.gt);
    c.addOutput("eq", cmp.eq);

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 32; x += 2)
        for (uint64_t y = 0; y < 32; y += 3) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    in["a"].push_back(17);
    in["b"].push_back(17);
    const size_t n = in["a"].size();
    const auto out = simulateBuses(c, in, n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.at("gt")[i], in["a"][i] > in["b"][i] ? 1u : 0u);
        EXPECT_EQ(out.at("eq")[i],
                  in["a"][i] == in["b"][i] ? 1u : 0u);
    }
}

TEST_P(WordGatesTest, CompareSignedFlipsSignBit)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 4);
    const auto b = c.addInputBus("b", 4);
    const auto cmp = g.compareSigned(a, b);
    c.addOutput("gt", cmp.gt);

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 16; ++x)
        for (uint64_t y = 0; y < 16; ++y) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    const size_t n = in["a"].size();
    const auto out = simulateBuses(c, in, n);
    auto sval = [](uint64_t v) {
        return v >= 8 ? static_cast<int>(v) - 16
                      : static_cast<int>(v);
    };
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out.at("gt")[i],
                  sval(in["a"][i]) > sval(in["b"][i]) ? 1u : 0u);
}

TEST_P(WordGatesTest, MultiplyLowBits)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 6);
    const auto b = c.addInputBus("b", 6);
    c.addOutputBus("y", g.mulLow(a, b));

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 64; x += 5)
        for (uint64_t y = 0; y < 64; y += 7) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    const size_t n = in["a"].size();
    const auto out = simulateBuses(c, in, n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out.at("y")[i], (in["a"][i] * in["b"][i]) & 63);
}

TEST_P(WordGatesTest, DivideExhaustive5Bit)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 5);
    const auto b = c.addInputBus("b", 5);
    c.addOutputBus("y", g.divUnsigned(a, b));

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 32; ++x)
        for (uint64_t y = 0; y < 32; ++y) {
            in["a"].push_back(x);
            in["b"].push_back(y);
        }
    const size_t n = in["a"].size();
    const auto out = simulateBuses(c, in, n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t expect =
            in["b"][i] == 0 ? 31 : in["a"][i] / in["b"][i];
        EXPECT_EQ(out.at("y")[i], expect)
            << in["a"][i] << "/" << in["b"][i];
    }
}

TEST_P(WordGatesTest, PopcountAllWidths)
{
    for (size_t w : {3u, 8u, 13u}) {
        Circuit c;
        WordGates g(c, style());
        const auto a = c.addInputBus("a", w);
        c.addOutputBus("y", g.popcount(a));

        std::map<std::string, std::vector<uint64_t>> in;
        for (uint64_t x = 0; x < (1ULL << std::min<size_t>(w, 10));
             ++x)
            in["a"].push_back(x % (1ULL << w));
        const size_t n = in["a"].size();
        const auto out = simulateBuses(c, in, n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(out.at("y")[i],
                      static_cast<uint64_t>(
                          __builtin_popcountll(in["a"][i])))
                << "w=" << w;
    }
}

TEST_P(WordGatesTest, Reductions)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 6);
    c.addOutput("and", g.reduceAnd(a));
    c.addOutput("or", g.reduceOr(a));
    c.addOutput("xor", g.reduceXor(a));

    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 64; ++x)
        in["a"].push_back(x);
    const auto out = simulateBuses(c, in, 64);
    for (uint64_t x = 0; x < 64; ++x) {
        EXPECT_EQ(out.at("and")[x], x == 63 ? 1u : 0u);
        EXPECT_EQ(out.at("or")[x], x != 0 ? 1u : 0u);
        EXPECT_EQ(out.at("xor")[x],
                  static_cast<uint64_t>(__builtin_popcountll(x) & 1));
    }
}

TEST_P(WordGatesTest, NegateIsTwosComplement)
{
    Circuit c;
    WordGates g(c, style());
    const auto a = c.addInputBus("a", 5);
    c.addOutputBus("y", g.negate(a));
    std::map<std::string, std::vector<uint64_t>> in;
    for (uint64_t x = 0; x < 32; ++x)
        in["a"].push_back(x);
    const auto out = simulateBuses(c, in, 32);
    for (uint64_t x = 0; x < 32; ++x)
        EXPECT_EQ(out.at("y")[x], (-x) & 31);
}

INSTANTIATE_TEST_SUITE_P(BothStyles, WordGatesTest,
                         ::testing::Values(GateStyle::Aoig,
                                           GateStyle::Mig),
                         [](const auto &info) {
                             return std::string(
                                 toString(info.param));
                         });

} // namespace
} // namespace simdram
