/**
 * @file
 * Unit tests for the circuit DAG: literals, structural hashing, the
 * construction-time simplification rules, and graph introspection.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "logic/circuit.h"

namespace simdram
{
namespace
{

TEST(Circuit, LiteralHelpers)
{
    EXPECT_EQ(Circuit::lit(5), 10u);
    EXPECT_EQ(Circuit::lit(5, true), 11u);
    EXPECT_EQ(Circuit::litNode(11), 5u);
    EXPECT_TRUE(Circuit::litCompl(11));
    EXPECT_FALSE(Circuit::litCompl(10));
    EXPECT_EQ(Circuit::litNot(10), 11u);
    EXPECT_EQ(Circuit::litNot(Circuit::kLit0), Circuit::kLit1);
}

TEST(Circuit, FreshCircuitHasOnlyConstant)
{
    Circuit c;
    EXPECT_EQ(c.nodeCount(), 1u);
    EXPECT_EQ(c.gateCount(), 0u);
    EXPECT_EQ(c.inputCount(), 0u);
}

TEST(Circuit, AddInputAssignsNames)
{
    Circuit c;
    const Lit a = c.addInput("x");
    EXPECT_EQ(c.inputCount(), 1u);
    EXPECT_EQ(c.inputName(0), "x");
    EXPECT_FALSE(Circuit::litCompl(a));
}

TEST(Circuit, InputBusNaming)
{
    Circuit c;
    const auto bus = c.addInputBus("a", 3);
    EXPECT_EQ(bus.size(), 3u);
    EXPECT_EQ(c.inputName(1), "a[1]");
    ASSERT_NE(c.inputBus("a"), nullptr);
    EXPECT_EQ(c.inputBus("a")->size(), 3u);
    EXPECT_EQ(c.inputBus("nope"), nullptr);
}

TEST(Circuit, DuplicateBusRejected)
{
    Circuit c;
    c.addInputBus("a", 2);
    EXPECT_THROW(c.addInputBus("a", 2), FatalError);
}

TEST(Circuit, AndSimplifications)
{
    Circuit c;
    const Lit a = c.addInput("a");
    EXPECT_EQ(c.mkAnd(a, Circuit::kLit0), Circuit::kLit0);
    EXPECT_EQ(c.mkAnd(a, Circuit::kLit1), a);
    EXPECT_EQ(c.mkAnd(a, a), a);
    EXPECT_EQ(c.mkAnd(a, Circuit::litNot(a)), Circuit::kLit0);
    EXPECT_EQ(c.gateCount(), 0u);
}

TEST(Circuit, OrSimplifications)
{
    Circuit c;
    const Lit a = c.addInput("a");
    EXPECT_EQ(c.mkOr(a, Circuit::kLit0), a);
    EXPECT_EQ(c.mkOr(a, Circuit::kLit1), Circuit::kLit1);
    EXPECT_EQ(c.mkOr(a, a), a);
    EXPECT_EQ(c.mkOr(a, Circuit::litNot(a)), Circuit::kLit1);
    EXPECT_EQ(c.gateCount(), 0u);
}

TEST(Circuit, MajAxioms)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    // M(x,x,y) = x
    EXPECT_EQ(c.mkMaj(a, a, b), a);
    // M(x,!x,y) = y
    EXPECT_EQ(c.mkMaj(a, Circuit::litNot(a), b), b);
    // M(0,1,y) = y
    EXPECT_EQ(c.mkMaj(Circuit::kLit0, Circuit::kLit1, b), b);
    EXPECT_EQ(c.gateCount(), 0u);
}

TEST(Circuit, StructuralHashingSharesGates)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit g1 = c.mkAnd(a, b);
    const Lit g2 = c.mkAnd(b, a); // commuted
    EXPECT_EQ(g1, g2);
    EXPECT_EQ(c.gateCount(), 1u);
    const Lit m1 = c.mkMaj(a, b, g1);
    const Lit m2 = c.mkMaj(g1, a, b);
    EXPECT_EQ(m1, m2);
}

TEST(Circuit, ComplementCanonicalization)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit x = c.addInput("x");
    // M(!a,!b,!x) must be stored as !M(a,b,x).
    const Lit m1 = c.mkMaj(Circuit::litNot(a), Circuit::litNot(b),
                           Circuit::litNot(x));
    const Lit m2 = c.mkMaj(a, b, x);
    EXPECT_EQ(m1, Circuit::litNot(m2));
    EXPECT_EQ(c.gateCount(), 1u);
}

TEST(Circuit, IsMigAndIsAoig)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    EXPECT_TRUE(c.isMig());
    EXPECT_TRUE(c.isAoig());
    c.mkAnd(a, b);
    EXPECT_FALSE(c.isMig());
    EXPECT_TRUE(c.isAoig());

    Circuit m;
    const Lit x = m.addInput("x");
    const Lit y = m.addInput("y");
    m.mkMaj(x, y, Circuit::kLit0);
    EXPECT_TRUE(m.isMig());
    EXPECT_FALSE(m.isAoig());
}

TEST(Circuit, DepthFollowsLongestPath)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit g1 = c.mkAnd(a, b);
    const Lit g2 = c.mkAnd(g1, a);
    const Lit g3 = c.mkAnd(g2, b);
    c.addOutput("y", g3);
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, TopoOrderExcludesDeadGates)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit live = c.mkAnd(a, b);
    c.mkOr(a, b); // dead
    c.addOutput("y", live);
    EXPECT_EQ(c.gateCount(), 2u);
    EXPECT_EQ(c.topoOrder().size(), 1u);
}

TEST(Circuit, TopoOrderFaninsBeforeFanouts)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit x = c.addInput("x");
    const Lit g1 = c.mkMaj(a, b, x);
    const Lit g2 = c.mkMaj(g1, a, Circuit::kLit0);
    c.addOutput("y", g2);
    const auto order = c.topoOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], Circuit::litNode(g1));
    EXPECT_EQ(order[1], Circuit::litNode(g2));
}

TEST(Circuit, FanoutCountsIncludeOutputs)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit g1 = c.mkAnd(a, b);
    const Lit g2 = c.mkOr(g1, a);
    c.addOutput("y1", g2);
    c.addOutput("y2", g1);
    const auto fo = c.fanoutCounts();
    EXPECT_EQ(fo[Circuit::litNode(g1)], 2u); // g2 + output
    EXPECT_EQ(fo[Circuit::litNode(g2)], 1u);
    EXPECT_EQ(fo[Circuit::litNode(a)], 2u);
}

TEST(Circuit, OutputBusBookkeeping)
{
    Circuit c;
    const auto a = c.addInputBus("a", 2);
    c.addOutputBus("y", {a[0], Circuit::litNot(a[1])});
    ASSERT_NE(c.outputBus("y"), nullptr);
    EXPECT_EQ(c.outputs().size(), 2u);
    EXPECT_EQ(c.outputName(0), "y[0]");
    EXPECT_EQ(c.outputName(1), "y[1]");
}

TEST(Circuit, GateCountByKind)
{
    Circuit c;
    const Lit a = c.addInput("a");
    const Lit b = c.addInput("b");
    const Lit x = c.addInput("x");
    c.mkAnd(a, b);
    c.mkOr(a, b);
    c.mkMaj(a, b, x);
    EXPECT_EQ(c.gateCount(NodeKind::And2), 1u);
    EXPECT_EQ(c.gateCount(NodeKind::Or2), 1u);
    EXPECT_EQ(c.gateCount(NodeKind::Maj3), 1u);
    EXPECT_EQ(c.gateCount(), 3u);
}

} // namespace
} // namespace simdram
