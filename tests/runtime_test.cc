/**
 * @file
 * Tests for the multi-device runtime: DeviceGroup sharding geometry,
 * bit-exact equivalence of sharded (sync and async) execution with a
 * single-Processor reference for every OpKind x width x backend,
 * stats equality against per-shard runs, the StreamExecutor's typed
 * per-stream rejection, and a concurrency stress test (run under
 * ThreadSanitizer in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "apps/bitweaving.h"
#include "apps/brightness.h"
#include "apps/knn.h"
#include "apps/nn.h"
#include "apps/tpch.h"
#include "common/error.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"

namespace simdram
{
namespace
{

DramConfig
testCfg()
{
    return DramConfig::forTesting(256, 512);
}

/** Compares DramStats: counters exactly, doubles to the last ulps. */
void
expectSameStats(const DramStats &a, const DramStats &b)
{
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.multiActivates, b.multiActivates);
    EXPECT_EQ(a.precharges, b.precharges);
    EXPECT_EQ(a.aaps, b.aaps);
    EXPECT_EQ(a.aps, b.aps);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

std::vector<uint64_t>
randomData(size_t n, uint64_t mask, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> v(n);
    for (auto &x : v)
        x = rng.next() & mask;
    return v;
}

// ---------------------------------------------------------------
// DeviceGroup: sharding geometry and synchronous operation
// ---------------------------------------------------------------

TEST(DeviceGroup, ShardGeometryIsSegmentAligned)
{
    DeviceGroup g(testCfg(), 3);
    // 300 elements over 256-lane segments = 2 segments: device 0
    // takes the full first segment, device 1 the 44-lane remainder,
    // device 2 is empty.
    const auto v = g.alloc(300, 16);
    EXPECT_EQ(g.shardOffset(v, 0), 0u);
    EXPECT_EQ(g.shardElements(v, 0), 256u);
    EXPECT_EQ(g.shardOffset(v, 1), 256u);
    EXPECT_EQ(g.shardElements(v, 1), 44u);
    EXPECT_EQ(g.shardElements(v, 2), 0u);

    // 1000 elements = 4 segments: one per device plus one extra on
    // device 0 (front-loaded distribution).
    DeviceGroup g3(testCfg(), 3);
    const auto w = g3.alloc(1000, 8);
    EXPECT_EQ(g3.shardElements(w, 0), 512u);
    EXPECT_EQ(g3.shardElements(w, 1), 256u);
    EXPECT_EQ(g3.shardElements(w, 2), 232u);
    EXPECT_EQ(g3.shardOffset(w, 2), 768u);
}

TEST(DeviceGroup, RejectsMisuse)
{
    EXPECT_THROW(DeviceGroup(testCfg(), 0), FatalError);
    DeviceGroup g(testCfg(), 2);
    EXPECT_THROW(g.alloc(0, 8), FatalError);
    EXPECT_THROW(g.device(2), FatalError);
    ShardedVec bogus;
    EXPECT_THROW(g.load(bogus), FatalError);
}

TEST(DeviceGroup, StoreLoadRoundTripAcrossDevices)
{
    DeviceGroup g(testCfg(), 4);
    const auto v = g.alloc(700, 16); // 3 segments over 4 devices
    const auto data = randomData(700, 0xffff, 0x11);
    g.store(v, data);
    EXPECT_EQ(g.load(v), data);
    EXPECT_GT(g.transferStats().energyPj, 0.0);
}

TEST(DeviceGroup, FillConstantAndShift)
{
    DeviceGroup g(testCfg(), 2);
    const auto a = g.alloc(300, 16);
    const auto b = g.alloc(300, 16);
    g.fillConstant(a, 0x2d);
    g.shiftLeft(b, a, 3);
    for (uint64_t x : g.load(b))
        EXPECT_EQ(x, uint64_t{0x2d} << 3);
    g.shiftRight(b, a, 2);
    for (uint64_t x : g.load(b))
        EXPECT_EQ(x, uint64_t{0x2d} >> 2);
}

TEST(DeviceGroup, StatsEqualSumOfPerShardRuns)
{
    const size_t n = 300;
    const auto da = randomData(n, 0xffff, 1);
    const auto db = randomData(n, 0xffff, 2);

    DeviceGroup g(testCfg(), 2);
    const auto a = g.alloc(n, 16);
    const auto b = g.alloc(n, 16);
    const auto y = g.alloc(n, 16);
    g.store(a, da);
    g.store(b, db);
    g.resetStats();
    g.run(OpKind::Add, y, a, b);

    // The same shards on standalone processors: the group's merged
    // stats must equal the merge of the per-shard runs exactly.
    DramStats expect_compute;
    for (size_t d = 0; d < 2; ++d) {
        const size_t off = g.shardOffset(a, d);
        const size_t cnt = g.shardElements(a, d);
        ASSERT_GT(cnt, 0u);
        Processor p(testCfg());
        const auto pa = p.alloc(cnt, 16);
        const auto pb = p.alloc(cnt, 16);
        const auto py = p.alloc(cnt, 16);
        p.store(pa, da.data() + off, cnt);
        p.store(pb, db.data() + off, cnt);
        p.resetStats();
        p.run(OpKind::Add, py, pa, pb);
        expect_compute = merge(expect_compute, p.computeStats());
    }
    expectSameStats(g.computeStats(), expect_compute);
}

// ---------------------------------------------------------------
// Sharded determinism: sync and async execution vs one Processor
// ---------------------------------------------------------------

class ShardedDeterminismTest
    : public ::testing::TestWithParam<
          std::tuple<OpKind, size_t, Backend>>
{
};

TEST_P(ShardedDeterminismTest, MatchesSingleProcessor)
{
    const auto [op, width, backend] = GetParam();
    const auto sig = signatureOf(op, width);
    const size_t n = 300; // crosses a segment boundary
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    const auto da = randomData(n, mask, 0x5eed + width);
    const auto db = randomData(n, mask, 0xfeed + width);
    const auto ds = randomData(n, 1, 0xd5 + width);

    // Reference: the whole vector on one processor.
    Processor pref(testCfg(), backend);
    std::vector<uint64_t> out_ref;
    {
        const auto a = pref.alloc(n, width);
        const auto b = pref.alloc(n, width);
        const auto sel = pref.alloc(n, 1);
        const auto y = pref.alloc(n, sig.outWidth);
        pref.store(a, da);
        if (sig.numInputs == 2)
            pref.store(b, db);
        if (sig.hasSel)
            pref.store(sel, ds);
        if (sig.numInputs == 1)
            pref.run(op, y, a);
        else if (!sig.hasSel)
            pref.run(op, y, a, b);
        else
            pref.run(op, y, a, b, sel);
        out_ref = pref.load(y);
    }

    // Sharded, synchronous: 3 devices (shards of 256, 44, and 0
    // elements) through DeviceGroup::run.
    DeviceGroup group(testCfg(), 3, backend);
    {
        const auto a = group.alloc(n, width);
        const auto b = group.alloc(n, width);
        const auto sel = group.alloc(n, 1);
        const auto y = group.alloc(n, sig.outWidth);
        group.store(a, da);
        if (sig.numInputs == 2)
            group.store(b, db);
        if (sig.hasSel)
            group.store(sel, ds);
        if (sig.numInputs == 1)
            group.run(op, y, a);
        else if (!sig.hasSel)
            group.run(op, y, a, b);
        else
            group.run(op, y, a, b, sel);
        EXPECT_EQ(group.load(y), out_ref) << "sync path";
    }

    // Sharded, asynchronous: the same operation as a bbop stream
    // through the StreamExecutor's worker threads.
    {
        StreamExecutor ex(group);
        const auto w8 = static_cast<uint8_t>(width);
        const uint16_t a = ex.defineObject(n, width);
        const uint16_t b = ex.defineObject(n, width);
        const uint16_t sel = ex.defineObject(n, 1);
        const uint16_t y = ex.defineObject(n, sig.outWidth);
        ex.writeObject(a, da);
        std::vector<BbopInstr> stream;
        stream.push_back(BbopInstr::trsp(a, w8));
        stream.push_back(BbopInstr::trsp(
            y, static_cast<uint8_t>(sig.outWidth)));
        if (sig.numInputs == 1) {
            stream.push_back(BbopInstr::unary(op, w8, y, a));
        } else if (!sig.hasSel) {
            ex.writeObject(b, db);
            stream.push_back(BbopInstr::trsp(b, w8));
            stream.push_back(BbopInstr::binary(op, w8, y, a, b));
        } else {
            ex.writeObject(b, db);
            ex.writeObject(sel, ds);
            stream.push_back(BbopInstr::trsp(b, w8));
            stream.push_back(BbopInstr::trsp(sel, 1));
            stream.push_back(
                BbopInstr::predicated(op, w8, y, a, b, sel));
        }
        stream.push_back(BbopInstr::trspInv(
            y, static_cast<uint8_t>(sig.outWidth)));
        const StreamResult r = ex.submit(stream).wait();
        EXPECT_GT(r.compute.latencyNs, 0.0);
        EXPECT_EQ(ex.readObject(y), out_ref) << "async path";
    }
}

std::vector<OpKind>
everyOpKind()
{
    std::vector<OpKind> ops;
    ops.reserve(kAllOps.size() + kExtensionOps.size());
    ops.insert(ops.end(), kAllOps.begin(), kAllOps.end());
    ops.insert(ops.end(), kExtensionOps.begin(),
               kExtensionOps.end());
    return ops;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ShardedDeterminismTest,
    ::testing::Combine(::testing::ValuesIn(everyOpKind()),
                       ::testing::Values(size_t{8}, size_t{16}),
                       ::testing::Values(Backend::Simdram,
                                         Backend::SimdramNaive,
                                         Backend::Ambit)),
    [](const auto &info) {
        const Backend b = std::get<2>(info.param);
        return toString(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param)) + "_" +
               (b == Backend::Simdram
                    ? "simdram"
                    : (b == Backend::SimdramNaive ? "naive"
                                                  : "ambit"));
    });

// ---------------------------------------------------------------
// StreamExecutor: asynchronous semantics
// ---------------------------------------------------------------

TEST(StreamExecutor, PipelinesManyStreams)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 300;
    const auto da = randomData(n, 0xff, 3);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    // Submit a chain y = a + a + ... without waiting in between.
    std::vector<StreamHandle> handles;
    handles.push_back(ex.submit({BbopInstr::trsp(a, 8),
                                 BbopInstr::trsp(y, 8),
                                 BbopInstr::binary(OpKind::Add, 8,
                                                   y, a, a)}));
    for (int i = 0; i < 8; ++i)
        handles.push_back(ex.submit(
            {BbopInstr::binary(OpKind::Add, 8, y, a, a)}));
    handles.push_back(ex.submit({BbopInstr::trspInv(y, 8)}));
    for (auto &h : handles) {
        const StreamResult r = h.wait();
        EXPECT_TRUE(h.done());
        EXPECT_GE(r.wallNs, 0.0);
    }
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

TEST(StreamExecutor, EncodedRoundTripAndInitShift)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 300;
    const uint16_t a = ex.defineObject(n, 16);
    const uint16_t y = ex.defineObject(n, 16);

    std::vector<uint64_t> words;
    words.push_back(encodeBbop(BbopInstr::trsp(a, 16)));
    words.push_back(encodeBbop(BbopInstr::init(a, 16, 0x2d)));
    words.push_back(encodeBbop(BbopInstr::trsp(y, 16)));
    words.push_back(encodeBbop(BbopInstr::shift(true, 16, y, a, 4)));
    words.push_back(encodeBbop(BbopInstr::trspInv(y, 16)));
    ex.submit(words).wait();
    for (uint64_t v : ex.readObject(y))
        ASSERT_EQ(v, uint64_t{0x2d} << 4);
}

TEST(StreamExecutor, PerStreamStatsMatchGroupDelta)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 300;
    const uint16_t a = ex.defineObject(n, 16);
    const uint16_t b = ex.defineObject(n, 16);
    const uint16_t y = ex.defineObject(n, 16);
    ex.writeObject(a, randomData(n, 0xffff, 5));
    ex.writeObject(b, randomData(n, 0xffff, 6));
    ex.submit({BbopInstr::trsp(a, 16), BbopInstr::trsp(b, 16),
               BbopInstr::trsp(y, 16)})
        .wait();

    g.resetStats();
    const StreamResult r =
        ex.submit({BbopInstr::binary(OpKind::Add, 16, y, a, b)})
            .wait();
    // The only work since resetStats is this one stream, so its
    // merged per-stream accounting must equal the group's stats.
    expectSameStats(r.compute, g.computeStats());
    EXPECT_EQ(r.instructions, 1u);
    EXPECT_GT(r.compute.aaps, 0u);
    EXPECT_GT(r.wallNs, 0.0);
}

TEST(StreamExecutor, RejectsBadStreamsTyped)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);
    const uint16_t y = ex.defineObject(100, 16);

    // Unknown object id.
    EXPECT_THROW(ex.submit({BbopInstr::trsp(77, 16)}), BbopError);
    // Malformed encoding (garbage opcode bits).
    EXPECT_THROW(ex.submit(std::vector<uint64_t>{0xffffffffull}),
                 BbopError);
    // Operation on an object still in horizontal layout.
    EXPECT_THROW(
        ex.submit({BbopInstr::unary(OpKind::Abs, 16, y, a)}),
        BbopError);
    // Width mismatch with the object table.
    EXPECT_THROW(ex.submit({BbopInstr::trsp(a, 8)}), BbopError);
    // In-place execution.
    EXPECT_THROW(ex.submit({BbopInstr::trsp(a, 16),
                            BbopInstr::binary(OpKind::Add, 16, a,
                                              a, a)}),
                 BbopError);
}

TEST(StreamExecutor, RejectedStreamIsAtomic)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);
    const uint16_t y = ex.defineObject(100, 16);

    // The trsp(a) inside the rejected stream must not leak: a stays
    // horizontal, so using it afterwards is still an error.
    EXPECT_THROW(ex.submit({BbopInstr::trsp(a, 16),
                            BbopInstr::trsp(77, 16)}),
                 BbopError);
    EXPECT_THROW(
        ex.submit({BbopInstr::trsp(y, 16),
                   BbopInstr::unary(OpKind::Abs, 16, y, a)}),
        BbopError);

    // And the executor keeps serving valid streams.
    ex.writeObject(a, std::vector<uint64_t>(100, 7));
    ex.submit({BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16),
               BbopInstr::unary(OpKind::Abs, 16, y, a),
               BbopInstr::trspInv(y, 16)})
        .wait();
    for (uint64_t v : ex.readObject(y))
        ASSERT_EQ(v, 7u);
}

TEST(StreamExecutor, WaitOnEmptyHandleRejected)
{
    StreamHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_FALSE(h.done());
    EXPECT_THROW(h.wait(), FatalError);
}

TEST(StreamExecutor, MixedDecodeAndValidateErrorIsAtomic)
{
    // A stream whose first word decodes fine but would fail
    // validation, and whose second word does not even decode: the
    // whole stream must be rejected with no partial effect — the
    // trsp in word 0 must not leak into the layout state, and the
    // queues must stay empty.
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const uint16_t a = ex.defineObject(100, 16);
    const uint16_t y = ex.defineObject(100, 16);

    std::vector<uint64_t> words;
    words.push_back(encodeBbop(BbopInstr::trsp(a, 16)));
    words.push_back(encodeBbop(BbopInstr::trsp(a, 8)) |
                    0xf); // garbage opcode: decode error
    EXPECT_THROW(ex.submit(words), BbopError);

    // Decode-clean but validation-bad after a good prefix: same
    // atomicity (the good trsp(a) must not commit).
    EXPECT_THROW(ex.submit({BbopInstr::trsp(a, 16),
                            BbopInstr::trsp(y, 8)}),
                 BbopError);

    // Nothing leaked: a is still horizontal, so an op on it is still
    // rejected, nothing was enqueued, and the executor still serves.
    EXPECT_THROW(
        ex.submit({BbopInstr::trsp(y, 16),
                   BbopInstr::unary(OpKind::Abs, 16, y, a)}),
        BbopError);
    EXPECT_EQ(ex.queueHighWatermark(), 0u);
    ex.writeObject(a, std::vector<uint64_t>(100, 3));
    ex.submit({BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16),
               BbopInstr::unary(OpKind::Abs, 16, y, a),
               BbopInstr::trspInv(y, 16)})
        .wait();
    for (uint64_t v : ex.readObject(y))
        ASSERT_EQ(v, 3u);
}

// ---------------------------------------------------------------
// Bounded queues and backpressure
// ---------------------------------------------------------------

/**
 * Pins device @p d's mutex from a dedicated thread (constructor
 * returns once it is held) until release() — so a test can stall
 * that device's worker deterministically without itself holding a
 * device lock while calling into the executor.
 */
class DevicePin
{
  public:
    DevicePin(DeviceGroup &g, size_t d)
    {
        th_ = std::thread([&g, d, this] {
            auto hold = g.lockDevice(d);
            std::unique_lock<std::mutex> lock(mu_);
            pinned_ = true;
            cv_.notify_all();
            cv_.wait(lock, [&] { return released_; });
        });
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return pinned_; });
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            released_ = true;
        }
        cv_.notify_all();
        th_.join();
    }

    ~DevicePin()
    {
        if (th_.joinable())
            release();
    }

  private:
    std::thread th_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool pinned_ = false, released_ = false;
};

TEST(StreamExecutor, BoundedQueueBlocksAndStaysWithinBound)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, {/*maxQueuedStreams=*/2,
                          BackpressurePolicy::Block});
    EXPECT_EQ(ex.options().maxQueuedStreams, 2u);
    const size_t n = 300;
    const auto da = randomData(n, 0xff, 9);
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    ex.writeObject(a, da);

    // Submit far more streams than fit: Block throttles the
    // submitter instead of growing the queues.
    std::vector<StreamHandle> handles;
    handles.push_back(ex.submit({BbopInstr::trsp(a, 8),
                                 BbopInstr::trsp(y, 8)}));
    for (int i = 0; i < 20; ++i)
        handles.push_back(ex.submit(
            {BbopInstr::binary(OpKind::Add, 8, y, a, a)}));
    handles.push_back(ex.submit({BbopInstr::trspInv(y, 8)}));
    for (auto &h : handles) {
        const StreamResult r = h.wait();
        EXPECT_GE(r.queueDepthAtSubmit, 1u);
        EXPECT_LE(r.queueDepthAtSubmit, 2u);
        EXPECT_GE(r.backpressureWaitNs, 0.0);
    }
    EXPECT_GE(ex.queueHighWatermark(), 1u);
    EXPECT_LE(ex.queueHighWatermark(), 2u);
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

TEST(StreamExecutor, RejectPolicyThrowsTypedAndIsAtomic)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, {/*maxQueuedStreams=*/1,
                          BackpressurePolicy::Reject});
    const size_t n = 300;
    const uint16_t a = ex.defineObject(n, 16);
    const uint16_t y = ex.defineObject(n, 16);
    const uint16_t z = ex.defineObject(n, 16);
    ex.writeObject(a, randomData(n, 0xffff, 4));
    ex.submit({BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16)})
        .wait();

    size_t accepted = 0, rejected = 0;
    StreamHandle last;
    {
        // Pin device 0: its worker blocks on the device mutex, so
        // its queue backs up deterministically. With a bound of 1,
        // at most two submits can be accepted (one in flight, one
        // queued) before every further submit must be rejected.
        DevicePin pin(g, 0);
        for (int i = 0; i < 8; ++i) {
            try {
                // The rejected streams carry a trsp(z) so a
                // rejection with side effects would leak layout
                // state — checked below.
                StreamHandle h = ex.submit(
                    {BbopInstr::trsp(z, 16),
                     BbopInstr::binary(OpKind::Add, 16, y, a, a),
                     BbopInstr::trspInv(z, 16)});
                last = h;
                ++accepted;
            } catch (const StreamRejectedError &) {
                ++rejected;
            }
        }
        EXPECT_LE(accepted, 2u);
        EXPECT_GE(rejected, 6u);
    }
    if (last.valid())
        last.wait();
    ex.sync();

    // A queue-full rejection must be side-effect-free: if the last
    // attempt was rejected, z's trsp must not have committed...
    if (accepted == 0) {
        EXPECT_THROW(
            ex.submit({BbopInstr::unary(OpKind::Abs, 16, y, z)}),
            BbopError);
    } else {
        // ...whereas accepted copies did transpose z.
        ex.submit({BbopInstr::binary(OpKind::Add, 16, y, a, z)})
            .wait();
    }
    // And the executor keeps serving normally afterwards.
    ex.submit({BbopInstr::binary(OpKind::Add, 16, y, a, a)}).wait();
    EXPECT_EQ(ex.queueHighWatermark(), 1u);
}

TEST(StreamExecutor, BlockedSubmitterResumesWhenQueueDrains)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g, {/*maxQueuedStreams=*/1,
                          BackpressurePolicy::Block});
    const size_t n = 300;
    const uint16_t a = ex.defineObject(n, 16);
    const uint16_t y = ex.defineObject(n, 16);
    ex.writeObject(a, randomData(n, 0xffff, 8));
    ex.submit({BbopInstr::trsp(a, 16), BbopInstr::trsp(y, 16)})
        .wait();

    std::atomic<int> submitted{0};
    std::thread submitter;
    {
        // While device 0 is pinned, a submitter thread saturates the
        // bound and then blocks; unpinning must wake it and let
        // every stream through.
        DevicePin pin(g, 0);
        submitter = std::thread([&] {
            for (int i = 0; i < 6; ++i) {
                ex.submit(
                    {BbopInstr::binary(OpKind::Add, 16, y, a, a)});
                submitted.fetch_add(1);
            }
        });
        while (submitted.load() < 2)
            std::this_thread::yield();
        // Bounded at 1 queued + 1 in flight: the thread cannot have
        // run far ahead of the stalled device.
        EXPECT_LE(submitted.load(), 3);
    }
    submitter.join();
    EXPECT_EQ(submitted.load(), 6);
    ex.sync();
    ex.submit({BbopInstr::trspInv(y, 16)}).wait();
    const auto da = randomData(n, 0xffff, 8);
    const auto out = ex.readObject(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xffff) << i;
}

// ---------------------------------------------------------------
// Concurrency stress (run under ThreadSanitizer in CI)
// ---------------------------------------------------------------

TEST(StreamExecutor, ConcurrentSubmittersStress)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kStreamsPerThread = 25;
    constexpr size_t n = 1000; // 4 segments: every device active

    DeviceGroup g(testCfg(), 4);
    StreamExecutor ex(g);

    struct Triple
    {
        uint16_t a, b, y;
        std::vector<uint64_t> da, db;
    };
    std::vector<Triple> triples(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        triples[t].a = ex.defineObject(n, 16);
        triples[t].b = ex.defineObject(n, 16);
        triples[t].y = ex.defineObject(n, 16);
        triples[t].da = randomData(n, 0xffff, 100 + t);
        triples[t].db = randomData(n, 0xffff, 200 + t);
        ex.writeObject(triples[t].a, triples[t].da);
        ex.writeObject(triples[t].b, triples[t].db);
        ex.submit({BbopInstr::trsp(triples[t].a, 16),
                   BbopInstr::trsp(triples[t].b, 16),
                   BbopInstr::trsp(triples[t].y, 16)})
            .wait();
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const Triple &tr = triples[t];
            std::vector<StreamHandle> handles;
            for (size_t s = 0; s < kStreamsPerThread; ++s)
                handles.push_back(ex.submit(
                    {BbopInstr::binary(OpKind::Add, 16, tr.y,
                                       tr.a, tr.b)}));
            // Every identical stream must report identical,
            // correctly isolated per-stream stats.
            uint64_t aaps = 0;
            for (auto &h : handles) {
                const StreamResult r = h.wait();
                if (aaps == 0)
                    aaps = r.compute.aaps;
                if (r.compute.aaps != aaps ||
                    r.compute.latencyNs <= 0.0)
                    ++failures;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);

    for (size_t t = 0; t < kThreads; ++t) {
        ex.submit({BbopInstr::trspInv(triples[t].y, 16)}).wait();
        const auto out = ex.readObject(triples[t].y);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i],
                      (triples[t].da[i] + triples[t].db[i]) &
                          0xffff)
                << "thread " << t << " element " << i;
    }
}

// ---------------------------------------------------------------
// Paper workloads through the group
// ---------------------------------------------------------------

TEST(RuntimeApps, TpchRunsShardedAcrossDevices)
{
    DeviceGroup g(testCfg(), 3);
    EXPECT_TRUE(tpchVerify(g));
}

TEST(RuntimeApps, BrightnessRunsShardedAcrossDevices)
{
    DeviceGroup g(testCfg(), 3);
    EXPECT_TRUE(brightnessVerify(g));
}

TEST(RuntimeApps, KnnRunsShardedAcrossDevices)
{
    DeviceGroup g(testCfg(), 4);
    EXPECT_TRUE(knnVerify(g));
}

TEST(RuntimeApps, NnConvTileRunsShardedAcrossDevices)
{
    DeviceGroup g(testCfg(), 4);
    EXPECT_TRUE(nnVerifyConvTile(g));
}

TEST(RuntimeApps, BitweavingRunsShardedAcrossDevices)
{
    DeviceGroup g(testCfg(), 4);
    EXPECT_TRUE(bitweavingVerify(g));
}

TEST(RuntimeApps, AppsWorkOnSingleDeviceGroup)
{
    // A 1-device group degenerates to the plain Processor path.
    DeviceGroup gt(testCfg(), 1);
    EXPECT_TRUE(tpchVerify(gt));
    DeviceGroup gb(testCfg(), 1);
    EXPECT_TRUE(brightnessVerify(gb));
    DeviceGroup gk(testCfg(), 1);
    EXPECT_TRUE(knnVerify(gk));
    DeviceGroup gn(testCfg(), 1);
    EXPECT_TRUE(nnVerifyConvTile(gn));
    DeviceGroup gw(testCfg(), 1);
    EXPECT_TRUE(bitweavingVerify(gw));
}

TEST(RuntimeApps, GroupAndProcessorVerifiesAgreeOnSeeds)
{
    // Same seeds through both entry points: the sharded async path
    // must accept exactly the instances the single Processor does.
    for (uint64_t seed : {1ull, 42ull}) {
        Processor pk(testCfg());
        EXPECT_TRUE(knnVerify(pk, seed));
        DeviceGroup gk(testCfg(), 3);
        EXPECT_TRUE(knnVerify(gk, seed));

        Processor pw(testCfg());
        EXPECT_TRUE(bitweavingVerify(pw, seed));
        DeviceGroup gw(testCfg(), 3);
        EXPECT_TRUE(bitweavingVerify(gw, seed));
    }
}

// ---------------------------------------------------------------
// StreamExecutor: releaseObject
// ---------------------------------------------------------------

TEST(StreamExecutor, ReleasedObjectIsPoisonAndNotRecycledAsId)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 200;
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    const auto da = randomData(n, 0xff, 71);
    ex.writeObject(a, da);
    ex.releaseObject(y);

    // Every entry point rejects the tombstoned id with the typed
    // error; the id itself is never handed out again.
    EXPECT_THROW(ex.submit({BbopInstr::trsp(y, 8)}), BbopError);
    EXPECT_THROW(ex.readObject(y), BbopError);
    EXPECT_THROW(ex.writeObject(y, da), BbopError);
    EXPECT_THROW(ex.objectShape(y), BbopError);
    EXPECT_THROW(ex.releaseObject(y), BbopError); // double release
    const uint16_t z = ex.defineObject(n, 8);
    EXPECT_NE(z, y);

    // The survivor still computes: z reuses y's freed rows.
    ex.submit({BbopInstr::trsp(a, 8), BbopInstr::trsp(z, 8),
               BbopInstr::binary(OpKind::Add, 8, z, a, a),
               BbopInstr::trspInv(z, 8)})
        .wait();
    const auto out = ex.readObject(z);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], (da[i] * 2) & 0xff) << i;
}

TEST(StreamExecutor, ReleaseWaitsForInFlightStreams)
{
    DeviceGroup g(testCfg(), 2);
    StreamExecutor ex(g);
    const size_t n = 300;
    const uint16_t a = ex.defineObject(n, 8);
    const uint16_t y = ex.defineObject(n, 8);
    const auto da = randomData(n, 0xff, 72);
    ex.writeObject(a, da);

    // Pile up async work touching y, then release it immediately:
    // the release must drain the pipeline before freeing rows, and
    // all the handles must still resolve.
    std::vector<StreamHandle> handles;
    handles.push_back(ex.submit({BbopInstr::trsp(a, 8),
                                 BbopInstr::trsp(y, 8),
                                 BbopInstr::binary(OpKind::Add, 8,
                                                   y, a, a)}));
    for (int i = 0; i < 10; ++i)
        handles.push_back(ex.submit(
            {BbopInstr::binary(OpKind::Add, 8, y, a, a)}));
    ex.releaseObject(y);
    for (auto &h : handles) {
        EXPECT_TRUE(h.done());
        EXPECT_GT(h.wait().instructions, 0u);
    }

    // Teardown-and-recreate: the same shape lands on the recycled
    // rows and round-trips host data bit-exactly.
    const uint16_t z = ex.defineObject(n, 8);
    ex.writeObject(z, da);
    EXPECT_EQ(ex.readObject(z), da);
    EXPECT_EQ(ex.readObject(a), da);
}

TEST(StreamExecutor, ReleaseFreesCapacityForRedefinition)
{
    DeviceGroup g(testCfg(), 1);
    StreamExecutor ex(g);
    // Exhaust the device with same-shape objects...
    std::vector<uint16_t> ids;
    for (;;) {
        try {
            ids.push_back(ex.defineObject(256, 16));
        } catch (const FatalError &) {
            break;
        }
    }
    ASSERT_GT(ids.size(), 1u);
    // ... then release/define cycles must work indefinitely off the
    // free list (a leak here would exhaust within a few laps).
    for (int lap = 0; lap < 5; ++lap) {
        ex.releaseObject(ids.back());
        ids.pop_back();
        ids.push_back(ex.defineObject(256, 16));
    }
    const auto data = randomData(256, 0xffff, 73);
    ex.writeObject(ids.back(), data);
    EXPECT_EQ(ex.readObject(ids.back()), data);
}

} // namespace
} // namespace simdram
