/**
 * @file
 * Tests for the features beyond the paper's core: bulk bitwise
 * extension operations, in-DRAM constant initialization (bbop_init),
 * row-renaming shifts, μProgram serialization, and TRA fault
 * injection on the functional path.
 */

#include <gtest/gtest.h>

#include "ambit/ambit_synth.h"
#include "common/error.h"
#include "common/rng.h"
#include "isa/dispatcher.h"
#include "logic/equiv.h"
#include "ops/library.h"
#include "uprog/serialize.h"

namespace simdram
{
namespace
{

DramConfig
cfg()
{
    return DramConfig::forTesting(256, 512);
}

// ---- Extension operations ---------------------------------------------

class ExtensionOpTest
    : public ::testing::TestWithParam<std::tuple<OpKind, Backend>>
{
};

TEST_P(ExtensionOpTest, MatchesHostReference)
{
    const auto [op, backend] = GetParam();
    Processor p(cfg(), backend);
    const size_t n = 300, w = 16;
    Rng rng(0xe57);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xffff;
        db[i] = rng.next() & 0xffff;
    }
    const auto a = p.alloc(n, w);
    const auto b = p.alloc(n, w);
    const auto y = p.alloc(n, w);
    p.store(a, da);
    p.store(b, db);
    p.run(op, y, a, b);
    const auto got = p.load(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], referenceOp(op, w, da[i], db[i])) << i;
}

INSTANTIATE_TEST_SUITE_P(
    BitwiseOps, ExtensionOpTest,
    ::testing::Combine(::testing::ValuesIn(kExtensionOps),
                       ::testing::Values(Backend::Simdram,
                                         Backend::Ambit)),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_" +
               (std::get<1>(info.param) == Backend::Simdram
                    ? "simdram"
                    : "ambit");
    });

TEST(ExtensionOps, EquivalentAcrossVariants)
{
    OperationLibrary lib;
    for (OpKind op : kExtensionOps) {
        const auto r = checkEquivalence(lib.aoig(op, 6),
                                        lib.mig(op, 6));
        EXPECT_TRUE(r.equivalent) << toString(op) << r.message;
        EXPECT_TRUE(r.exhaustive);
    }
}

TEST(ExtensionOps, BitAndCostsOneTraPerBit)
{
    OperationLibrary lib;
    const auto prog = compileAmbit(lib.aoig(OpKind::BitAnd, 8));
    // Ambit: 4 AAPs per AND gate + 8 output copies.
    EXPECT_EQ(prog.aapCount(), 8u * 4u + 8u);
}

// ---- fillConstant / bbop_init ------------------------------------------

TEST(FillConstant, ValuesVisibleOnLoad)
{
    Processor p(cfg());
    const auto v = p.alloc(300, 16);
    p.fillConstant(v, 0xabc);
    EXPECT_EQ(p.load(v), std::vector<uint64_t>(300, 0xabc));
}

TEST(FillConstant, NoChannelTraffic)
{
    Processor p(cfg());
    const auto v = p.alloc(100, 8);
    p.resetStats();
    p.fillConstant(v, 0x5a);
    EXPECT_DOUBLE_EQ(p.transferStats().energyPj, 0.0)
        << "bbop_init must not move data over the channel";
    EXPECT_EQ(p.computeStats().aaps, 8u)
        << "one AAP per bit row per segment";
}

TEST(FillConstant, CheaperThanStore)
{
    Processor p1(cfg()), p2(cfg());
    const auto v1 = p1.alloc(256, 32);
    const auto v2 = p2.alloc(256, 32);
    p1.fillConstant(v1, 7);
    p2.store(v2, std::vector<uint64_t>(256, 7));
    const double e1 = p1.computeStats().energyPj +
                      p1.transferStats().energyPj;
    const double e2 = p2.computeStats().energyPj +
                      p2.transferStats().energyPj;
    EXPECT_LT(e1, e2);
    EXPECT_EQ(p1.load(v1), p2.load(v2));
}

TEST(FillConstant, RejectsOverwideValue)
{
    Processor p(cfg());
    const auto v = p.alloc(10, 4);
    EXPECT_THROW(p.fillConstant(v, 16), FatalError);
}

TEST(FillConstant, UsedInComputation)
{
    Processor p(cfg());
    const size_t n = 200;
    const auto a = p.alloc(n, 8);
    const auto b = p.alloc(n, 8);
    const auto y = p.alloc(n, 8);
    std::vector<uint64_t> da(n);
    for (size_t i = 0; i < n; ++i)
        da[i] = i & 0xff;
    p.store(a, da);
    p.fillConstant(b, 100);
    p.run(OpKind::Add, y, a, b);
    const auto got = p.load(y);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], (da[i] + 100) & 0xff);
}

// ---- Shifts ----------------------------------------------------------------

TEST(Shift, LeftMatchesHost)
{
    Processor p(cfg());
    const size_t n = 300, w = 16;
    Rng rng(0x51f7);
    std::vector<uint64_t> da(n);
    for (auto &v : da)
        v = rng.next() & 0xffff;
    const auto a = p.alloc(n, w);
    const auto y = p.alloc(n, w);
    p.store(a, da);
    for (size_t k : {0u, 1u, 3u, 15u}) {
        p.shiftLeft(y, a, k);
        const auto got = p.load(y);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], (da[i] << k) & 0xffff)
                << "k=" << k << " i=" << i;
    }
}

TEST(Shift, RightMatchesHost)
{
    Processor p(cfg());
    const size_t n = 300, w = 16;
    Rng rng(0x51f8);
    std::vector<uint64_t> da(n);
    for (auto &v : da)
        v = rng.next() & 0xffff;
    const auto a = p.alloc(n, w);
    const auto y = p.alloc(n, w);
    p.store(a, da);
    for (size_t k : {0u, 1u, 4u, 16u}) {
        p.shiftRight(y, a, k);
        const auto got = p.load(y);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], da[i] >> k) << "k=" << k;
    }
}

TEST(Shift, CostIsOneAapPerRow)
{
    Processor p(cfg());
    const auto a = p.alloc(100, 8);
    const auto y = p.alloc(100, 8);
    p.store(a, std::vector<uint64_t>(100, 3));
    p.resetStats();
    p.shiftLeft(y, a, 2);
    EXPECT_EQ(p.computeStats().aaps, 8u)
        << "a shift is pure row copying, one AAP per bit row";
}

TEST(Shift, InPlaceRejected)
{
    Processor p(cfg());
    const auto a = p.alloc(10, 8);
    EXPECT_THROW(p.shiftLeft(a, a, 1), FatalError);
}

TEST(Shift, ShapeMismatchRejected)
{
    Processor p(cfg());
    const auto a = p.alloc(10, 8);
    const auto y = p.alloc(10, 16);
    EXPECT_THROW(p.shiftLeft(y, a, 1), FatalError);
}

// ---- bbop Init/Shift instructions ---------------------------------------

TEST(BbopExt, InitEncodeDecodeRoundTrip)
{
    const BbopInstr i = BbopInstr::init(5, 32, 0x123456789ULL);
    EXPECT_EQ(i.initImmediate(), 0x123456789ULL);
    const BbopInstr back = decodeBbop(encodeBbop(i));
    EXPECT_EQ(back, i);
    EXPECT_EQ(back.initImmediate(), 0x123456789ULL);
}

TEST(BbopExt, InitRejectsHugeImmediate)
{
    EXPECT_THROW(BbopInstr::init(0, 64, 1ULL << 36), FatalError);
}

TEST(BbopExt, AsmForms)
{
    EXPECT_EQ(toAsm(BbopInstr::init(3, 16, 255)),
              "bbop_init.16 d3, 255");
    EXPECT_EQ(toAsm(BbopInstr::shift(true, 8, 2, 1, 3)),
              "bbop_shl.8 d2, d1, 3");
    EXPECT_EQ(toAsm(BbopInstr::shift(false, 8, 2, 1, 3)),
              "bbop_shr.8 d2, d1, 3");
}

TEST(BbopExt, InitAndShiftEndToEnd)
{
    Processor proc(cfg());
    BbopDispatcher d(proc);
    const size_t n = 100;
    const uint16_t a = d.defineObject(n, 16);
    const uint16_t y = d.defineObject(n, 16);
    d.exec(BbopInstr::trsp(a, 16));
    d.exec(BbopInstr::trsp(y, 16));
    d.exec(BbopInstr::init(a, 16, 0x00f3));
    d.exec(BbopInstr::shift(true, 16, y, a, 4));
    d.exec(BbopInstr::trspInv(y, 16));
    EXPECT_EQ(d.readObject(y),
              std::vector<uint64_t>(n, 0x0f30));
}

// ---- μProgram serialization ------------------------------------------------

TEST(Serialize, RoundTripsEveryOpProgram)
{
    OperationLibrary lib;
    for (OpKind op : {OpKind::Add, OpKind::Mul, OpKind::Gt,
                      OpKind::IfElse, OpKind::Bitcount,
                      OpKind::BitXor}) {
        const auto prog = compileMig(lib.mig(op, 8));
        const std::string text = serializeMicroProgram(prog);
        const auto back = parseMicroProgram(text);
        ASSERT_EQ(back.ops.size(), prog.ops.size()) << toString(op);
        for (size_t i = 0; i < prog.ops.size(); ++i) {
            EXPECT_EQ(back.ops[i].kind, prog.ops[i].kind);
            EXPECT_TRUE(back.ops[i].src == prog.ops[i].src);
            if (prog.ops[i].kind == MicroOp::Kind::Aap) {
                EXPECT_TRUE(back.ops[i].dst == prog.ops[i].dst);
            }
        }
        EXPECT_EQ(back.scratchRows, prog.scratchRows);
        ASSERT_EQ(back.inputRegions.size(),
                  prog.inputRegions.size());
        for (size_t r = 0; r < back.inputRegions.size(); ++r) {
            EXPECT_EQ(back.inputRegions[r].name,
                      prog.inputRegions[r].name);
            EXPECT_EQ(back.inputRegions[r].rows,
                      prog.inputRegions[r].rows);
        }
        // Re-serialization is a fixpoint.
        EXPECT_EQ(serializeMicroProgram(back), text);
    }
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_THROW(parseMicroProgram("not a program"), FatalError);
    EXPECT_THROW(parseMicroProgram("; inputs: a[1] outputs: y[1] "
                                   "scratch: 0\nZAP D0\n"),
                 FatalError);
    EXPECT_THROW(parseMicroProgram("; inputs: a[1] outputs: y[1] "
                                   "scratch: 0\nAAP D0 -> Q9\n"),
                 FatalError);
}

// ---- Fault injection ---------------------------------------------------------

TEST(FaultInjection, ZeroProbabilityIsTransparent)
{
    DramConfig c = cfg();
    Subarray sub(c);
    sub.enableTraFaults(0.0, 1);
    BitRow a(c.rowBits), b(c.rowBits), x(c.rowBits);
    a.setWord(0, 0x0f0f);
    b.setWord(0, 0x00ff);
    x.setWord(0, 0x3333);
    sub.poke(SpecialRow::T0, a);
    sub.poke(SpecialRow::T1, b);
    sub.poke(SpecialRow::T2, x);
    sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    EXPECT_EQ(sub.peek(SpecialRow::T0), BitRow::majority3(a, b, x));
    EXPECT_EQ(sub.injectedFaults(), 0u);
}

TEST(FaultInjection, FlipsTrackTheProbability)
{
    DramConfig c = cfg();
    Subarray sub(c);
    sub.enableTraFaults(0.25, 42);
    const size_t trials = 200;
    for (size_t t = 0; t < trials; ++t)
        sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    const double per_bit =
        static_cast<double>(sub.injectedFaults()) /
        static_cast<double>(trials * c.rowBits);
    EXPECT_NEAR(per_bit, 0.25, 0.02);
}

TEST(FaultInjection, CorruptsComputationResults)
{
    // An add on a faulty device must produce wrong lanes; on a
    // healthy device it must not.
    const size_t n = 256;
    Rng rng(7);
    std::vector<uint64_t> da(n), db(n);
    for (size_t i = 0; i < n; ++i) {
        da[i] = rng.next() & 0xff;
        db[i] = rng.next() & 0xff;
    }
    size_t wrong_healthy = 0, wrong_faulty = 0;
    for (bool faulty : {false, true}) {
        Processor p(cfg());
        const auto a = p.alloc(n, 8);
        const auto b = p.alloc(n, 8);
        const auto y = p.alloc(n, 8);
        if (faulty)
            p.device().bank(0).subarray(0).enableTraFaults(0.02, 3);
        p.store(a, da);
        p.store(b, db);
        p.run(OpKind::Add, y, a, b);
        const auto got = p.load(y);
        size_t wrong = 0;
        for (size_t i = 0; i < n; ++i)
            if (got[i] != ((da[i] + db[i]) & 0xff))
                ++wrong;
        (faulty ? wrong_faulty : wrong_healthy) = wrong;
    }
    EXPECT_EQ(wrong_healthy, 0u);
    EXPECT_GT(wrong_faulty, n / 4)
        << "2% per-TRA-bit faults across ~40 TRAs must corrupt "
           "many lanes";
}

TEST(FaultInjection, DisableRestoresCorrectness)
{
    DramConfig c = cfg();
    Subarray sub(c);
    sub.enableTraFaults(1.0, 5);
    sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    EXPECT_GT(sub.injectedFaults(), 0u);
    sub.disableTraFaults();
    const uint64_t before = sub.injectedFaults();
    sub.ap(RowAddr::row(TripleAddr::T0T1T2));
    EXPECT_EQ(sub.injectedFaults(), before);
}

} // namespace
} // namespace simdram
