/**
 * @file
 * Charge-sharing model of triple-row activation under process
 * variation (paper section 5, reliability evaluation).
 *
 * When three cells share charge with a precharged bitline, the final
 * bitline voltage is
 *
 *   V = (Cb * Vdd/2 + sum_i Ci * Vi) / (Cb + sum_i Ci)
 *
 * with Vi = Vdd for a stored 1 and 0 for a stored 0. The sense
 * amplifier resolves MAJ correctly iff sign(V - Vdd/2 - offset)
 * matches the majority of the stored bits. Process variation
 * perturbs every cell capacitance, the bitline capacitance, the cell
 * voltages (leakage/retention), and the sense-amplifier offset; the
 * margin shrinks with technology scaling because Cc shrinks faster
 * than Cb.
 */

#ifndef SIMDRAM_RELIABILITY_VARIATION_H
#define SIMDRAM_RELIABILITY_VARIATION_H

#include <array>
#include <string>

#include "common/rng.h"

namespace simdram
{

/** Nominal electricals of a DRAM technology node. */
struct TechNode
{
    std::string name;      ///< e.g. "22nm".
    double cellCapFf = 0;  ///< Nominal cell capacitance, fF.
    double blCapFf = 0;    ///< Nominal bitline capacitance, fF.
    double vdd = 0;        ///< Supply voltage, V.
};

/** @return The ladder of nodes swept by the reliability bench. */
const std::array<TechNode, 5> &techNodes();

/** Variation magnitudes, as fractions of the nominal values. */
struct VariationParams
{
    double sigmaCellCap = 0;  ///< Relative sigma of each Ci.
    double sigmaBlCap = 0;    ///< Relative sigma of Cb.
    double sigmaVdd = 0;      ///< Relative sigma of each cell's Vi.
    double senseOffsetMv = 0; ///< Absolute sigma of the SA offset.

    /**
     * @return Parameters where every relative sigma is @p frac and
     *         the sense offset is @p frac * 100 mV (so one knob
     *         sweeps the whole corner).
     */
    static VariationParams uniform(double frac);
};

/**
 * Samples one TRA under variation.
 *
 * @param node Technology node.
 * @param var Variation magnitudes.
 * @param bits The three stored bits.
 * @param rng Random source.
 * @return True if the sense amplifier resolves the correct majority.
 */
bool sampleTra(const TechNode &node, const VariationParams &var,
               const std::array<bool, 3> &bits, Rng &rng);

} // namespace simdram

#endif // SIMDRAM_RELIABILITY_VARIATION_H
