#include "reliability/montecarlo.h"

#include <cmath>

namespace simdram
{

McResult
traFailureRate(const TechNode &node, const VariationParams &var,
               size_t samples, uint64_t seed)
{
    Rng rng(seed);
    McResult r;
    r.samples = samples;
    for (size_t i = 0; i < samples; ++i) {
        const uint64_t w = rng.next();
        const std::array<bool, 3> bits = {
            (w & 1) != 0, (w & 2) != 0, (w & 4) != 0};
        if (!sampleTra(node, var, bits, rng))
            ++r.failures;
    }
    r.traFailureRate =
        static_cast<double>(r.failures) /
        static_cast<double>(samples ? samples : 1);
    return r;
}

double
opSuccessProbability(double p_tra, size_t tras)
{
    if (p_tra <= 0.0)
        return 1.0;
    if (p_tra >= 1.0)
        return 0.0;
    return std::exp(static_cast<double>(tras) *
                    std::log1p(-p_tra));
}

} // namespace simdram
