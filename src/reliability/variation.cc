#include "reliability/variation.h"

namespace simdram
{

const std::array<TechNode, 5> &
techNodes()
{
    // Cell capacitance shrinks with the node while the bitline
    // capacitance (dominated by wire length) shrinks more slowly,
    // which is what erodes the TRA margin at smaller nodes.
    static const std::array<TechNode, 5> nodes = {{
        {"55nm", 30.0, 110.0, 1.5},
        {"45nm", 25.0, 100.0, 1.35},
        {"32nm", 20.0, 95.0, 1.25},
        {"22nm", 15.0, 90.0, 1.2},
        {"14nm", 10.0, 85.0, 1.1},
    }};
    return nodes;
}

VariationParams
VariationParams::uniform(double frac)
{
    VariationParams v;
    v.sigmaCellCap = frac;
    v.sigmaBlCap = frac;
    v.sigmaVdd = frac;
    v.senseOffsetMv = frac * 100.0;
    return v;
}

bool
sampleTra(const TechNode &node, const VariationParams &var,
          const std::array<bool, 3> &bits, Rng &rng)
{
    const int ones = (bits[0] ? 1 : 0) + (bits[1] ? 1 : 0) +
                     (bits[2] ? 1 : 0);
    const bool ideal = ones >= 2;

    const double cb = rng.gaussian(node.blCapFf,
                                   var.sigmaBlCap * node.blCapFf);
    double num = cb * node.vdd / 2.0;
    double den = cb;
    for (bool bit : bits) {
        const double ci = rng.gaussian(
            node.cellCapFf, var.sigmaCellCap * node.cellCapFf);
        const double vi =
            bit ? rng.gaussian(node.vdd, var.sigmaVdd * node.vdd)
                : 0.0;
        num += ci * vi;
        den += ci;
    }
    const double v = num / den;
    const double offset =
        rng.gaussian(0.0, var.senseOffsetMv * 1e-3);
    const bool sensed = (v - node.vdd / 2.0 - offset) > 0.0;
    return sensed == ideal;
}

} // namespace simdram
