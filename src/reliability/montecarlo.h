/**
 * @file
 * Monte-Carlo estimation of TRA and whole-operation failure rates
 * under process variation.
 */

#ifndef SIMDRAM_RELIABILITY_MONTECARLO_H
#define SIMDRAM_RELIABILITY_MONTECARLO_H

#include <cstddef>
#include <cstdint>

#include "reliability/variation.h"

namespace simdram
{

/** Result of one Monte-Carlo sweep point. */
struct McResult
{
    double traFailureRate = 0; ///< Per-TRA failure probability.
    size_t samples = 0;        ///< Samples drawn.
    size_t failures = 0;       ///< Failing samples.
};

/**
 * Estimates the per-TRA failure rate at one (node, variation) point
 * with uniformly random stored bits.
 *
 * @param node Technology node.
 * @param var Variation magnitudes.
 * @param samples Number of Monte-Carlo samples.
 * @param seed RNG seed (deterministic sweeps).
 */
McResult traFailureRate(const TechNode &node,
                        const VariationParams &var, size_t samples,
                        uint64_t seed = 42);

/**
 * @return The probability that an operation issuing @p tras
 *         triple-row activations completes with no failure anywhere,
 *         given per-TRA failure rate @p p_tra (independent-fault
 *         approximation, as in the paper's analysis).
 */
double opSuccessProbability(double p_tra, size_t tras);

} // namespace simdram

#endif // SIMDRAM_RELIABILITY_MONTECARLO_H
