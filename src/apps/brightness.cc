#include "apps/brightness.h"

#include <algorithm>

#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace simdram
{

namespace
{

// Shared shape of the small verification image and the host
// reference both verifies compare to.
constexpr size_t kVerifyPixels = 600;
constexpr uint8_t kVerifyBits = 16;
constexpr uint64_t kDelta = 70, kCap = 255;

uint64_t
expectedPixel(uint64_t v)
{
    return std::min<uint64_t>(v + kDelta, kCap);
}

std::vector<uint64_t>
randomImage(uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> img(kVerifyPixels);
    for (auto &v : img)
        v = rng.below(256);
    return img;
}

} // namespace

KernelCost
brightnessCost(BulkEngine &engine, const BrightnessSpec &spec)
{
    KernelCost cost;
    cost.add(engine.opCost(OpKind::Add, spec.bits, spec.pixels));
    cost.add(engine.opCost(OpKind::Gt, spec.bits, spec.pixels));
    cost.add(engine.opCost(OpKind::IfElse, spec.bits, spec.pixels));
    return cost;
}

bool
brightnessVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t pixels = kVerifyPixels;
    constexpr size_t bits = kVerifyBits;
    const std::vector<uint64_t> img = randomImage(seed);

    auto vimg = proc.alloc(pixels, bits);
    auto vdelta = proc.alloc(pixels, bits);
    auto vsum = proc.alloc(pixels, bits);
    auto vcap = proc.alloc(pixels, bits);
    auto movf = proc.alloc(pixels, 1);
    auto vout = proc.alloc(pixels, bits);

    proc.store(vimg, img);
    proc.store(vdelta, std::vector<uint64_t>(pixels, kDelta));
    proc.store(vcap, std::vector<uint64_t>(pixels, kCap));

    proc.run(OpKind::Add, vsum, vimg, vdelta);
    proc.run(OpKind::Gt, movf, vsum, vcap);
    proc.run(OpKind::IfElse, vout, vcap, vsum, movf);

    const auto out = proc.load(vout);
    for (size_t i = 0; i < pixels; ++i)
        if (out[i] != expectedPixel(img[i]))
            return false;
    return true;
}

bool
brightnessVerify(DeviceGroup &group, uint64_t seed)
{
    constexpr size_t pixels = kVerifyPixels;
    constexpr uint8_t bits = kVerifyBits;
    const std::vector<uint64_t> img = randomImage(seed);

    StreamExecutorOptions exOpts;
    exOpts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, exOpts);
    const uint16_t oimg = ex.defineObject(pixels, bits);
    const uint16_t odelta = ex.defineObject(pixels, bits);
    const uint16_t ocap = ex.defineObject(pixels, bits);
    const uint16_t osum = ex.defineObject(pixels, bits);
    const uint16_t oovf = ex.defineObject(pixels, 1);
    const uint16_t oout = ex.defineObject(pixels, bits);
    ex.writeObject(oimg, img);

    // The whole kernel as one stream: layout conversion, in-DRAM
    // constant materialization, saturating add, and readback.
    StreamBuilder b(ex);
    b.trsp(oimg)
        .trsp(odelta)
        .init(odelta, kDelta)
        .trsp(ocap)
        .init(ocap, kCap)
        .trsp(osum)
        .trsp(oovf)
        .trsp(oout)
        .binary(OpKind::Add, osum, oimg, odelta)
        .binary(OpKind::Gt, oovf, osum, ocap)
        .predicated(OpKind::IfElse, oout, ocap, osum, oovf)
        .trspInv(oout);
    const StreamResult r = b.submit().wait();
    if (r.instructions != 12 || r.compute.latencyNs <= 0.0)
        return false;

    const auto out = ex.readObject(oout);
    for (size_t i = 0; i < pixels; ++i)
        if (out[i] != expectedPixel(img[i]))
            return false;
    // The kernel must analyze clean under the submit-time lint.
    return ex.lintDiagnosticCount() == 0;
}

} // namespace simdram
