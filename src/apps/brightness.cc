#include "apps/brightness.h"

#include "common/rng.h"

namespace simdram
{

KernelCost
brightnessCost(BulkEngine &engine, const BrightnessSpec &spec)
{
    KernelCost cost;
    cost.add(engine.opCost(OpKind::Add, spec.bits, spec.pixels));
    cost.add(engine.opCost(OpKind::Gt, spec.bits, spec.pixels));
    cost.add(engine.opCost(OpKind::IfElse, spec.bits, spec.pixels));
    return cost;
}

bool
brightnessVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t pixels = 600, bits = 16;
    constexpr uint64_t delta = 70, cap = 255;

    Rng rng(seed);
    std::vector<uint64_t> img(pixels);
    for (auto &v : img)
        v = rng.below(256);

    auto vimg = proc.alloc(pixels, bits);
    auto vdelta = proc.alloc(pixels, bits);
    auto vsum = proc.alloc(pixels, bits);
    auto vcap = proc.alloc(pixels, bits);
    auto movf = proc.alloc(pixels, 1);
    auto vout = proc.alloc(pixels, bits);

    proc.store(vimg, img);
    proc.store(vdelta, std::vector<uint64_t>(pixels, delta));
    proc.store(vcap, std::vector<uint64_t>(pixels, cap));

    proc.run(OpKind::Add, vsum, vimg, vdelta);
    proc.run(OpKind::Gt, movf, vsum, vcap);
    proc.run(OpKind::IfElse, vout, vcap, vsum, movf);

    const auto out = proc.load(vout);
    for (size_t i = 0; i < pixels; ++i) {
        const uint64_t expect = std::min<uint64_t>(img[i] + delta,
                                                   cap);
        if (out[i] != expect)
            return false;
    }
    return true;
}

} // namespace simdram
