/**
 * @file
 * Quantized neural-network inference kernels: VGG-13, VGG-16, and
 * LeNet-5 (three of the paper's seven application kernels).
 *
 * Networks run with int8 activations/weights and int16 accumulation,
 * the quantization the paper's ML kernels use. SIMDRAM maps each
 * (output-filter, input-channel, kernel-tap) partial product to one
 * bulk multiply + one bulk accumulate over a vector whose lanes are
 * the layer's output positions; ReLU is one bulk op per filter.
 *
 * Substitution note (DESIGN.md): pretrained weights are replaced by
 * seeded random weights — bit-serial cost depends only on layer
 * geometry, and functional correctness is still verified against a
 * host reference on the same data.
 */

#ifndef SIMDRAM_APPS_NN_H
#define SIMDRAM_APPS_NN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** One convolutional layer (square kernels, stride 1). */
struct ConvLayer
{
    size_t inC = 0;   ///< Input channels.
    size_t outC = 0;  ///< Output channels (filters).
    size_t outH = 0;  ///< Output height (after padding).
    size_t outW = 0;  ///< Output width.
    size_t k = 3;     ///< Kernel size.
    bool pool = false;///< Followed by 2x2 max-pool.
};

/** One fully connected layer. */
struct FcLayer
{
    size_t in = 0;  ///< Input neurons.
    size_t out = 0; ///< Output neurons.
};

/** A network description. */
struct NnModel
{
    std::string name;
    std::vector<ConvLayer> convs;
    std::vector<FcLayer> fcs;

    /** @return Total multiply-accumulate count. */
    double macs() const;
};

/** @return The LeNet-5 geometry (28x28 input). */
NnModel lenet();

/** @return The VGG-13 geometry (224x224x3 input). */
NnModel vgg13();

/** @return The VGG-16 geometry (224x224x3 input). */
NnModel vgg16();

/**
 * Prices full inference of @p model on @p engine.
 *
 * @param engine Cost engine.
 * @param model Network geometry.
 * @return Accumulated latency/energy.
 */
KernelCost nnCost(BulkEngine &engine, const NnModel &model);

/**
 * Functionally verifies the SIMDRAM conv mapping: runs one small
 * int8 convolution tile through @p proc and compares every output
 * against a host reference.
 *
 * @param proc Processor to execute on.
 * @param seed Workload seed.
 * @return True on exact match.
 */
bool nnVerifyConvTile(Processor &proc, uint64_t seed = 123);

/** Stream accounting of the DeviceGroup conv path. */
struct NnStreamReport
{
    /** Per-tap streams submitted across all tiles and filters. */
    size_t streams = 0;
    /** Instructions elided by the stream cache (0 when disabled). */
    size_t cachedInstructions = 0;
    /** Transposition-unit row activates paid by all streams. */
    uint64_t transferActivates = 0;
};

/**
 * Multi-device variant: the same conv tile through a StreamExecutor
 * over @p group (bounded queues enabled), lane-per-output-pixel
 * sharded across the group's devices. Each kernel tap is one
 * self-contained bbop stream: it transposes the freshly written
 * activation gather (writeObject already keeps the vertical image
 * coherent, so with @p stream_cache enabled — the default — every
 * one of these per-tap transposes is elided; with it disabled they
 * re-run, bit-exact), broadcasts the tap's scalar weight in DRAM by
 * bbop_init, multiplies, and accumulates; each filter ends with an
 * in-DRAM ReLU. Compares every output against the same host
 * reference as the single-device verify.
 */
bool nnVerifyConvTile(DeviceGroup &group, uint64_t seed = 123,
                      bool stream_cache = true,
                      NnStreamReport *report = nullptr);

} // namespace simdram

#endif // SIMDRAM_APPS_NN_H
