/**
 * @file
 * Image brightness adjustment (paper application #7).
 *
 * Adds a brightness delta to every pixel with saturation at the
 * channel maximum: one add, one compare against the clamp threshold,
 * and one predicated select per pixel — the paper's example of a
 * simple streaming image kernel.
 */

#ifndef SIMDRAM_APPS_BRIGHTNESS_H
#define SIMDRAM_APPS_BRIGHTNESS_H

#include <cstddef>
#include <cstdint>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** Workload shape for the brightness kernel. */
struct BrightnessSpec
{
    size_t pixels = 1 << 22; ///< Pixels (e.g. a 4 MP frame).
    size_t bits = 16;        ///< Working width (8-bit pixels widened).
};

/** Prices the brightness kernel on @p engine. */
KernelCost brightnessCost(BulkEngine &engine,
                          const BrightnessSpec &spec);

/**
 * Functionally verifies saturation behaviour on a small image
 * against a host reference.
 */
bool brightnessVerify(Processor &proc, uint64_t seed = 5);

/**
 * Multi-device variant: runs the same kernel as one bbop instruction
 * stream through a StreamExecutor over @p group, so the image is
 * sharded across the group's devices and the constants are
 * materialized by bbop_init. Verifies against the host reference.
 */
bool brightnessVerify(DeviceGroup &group, uint64_t seed = 5);

} // namespace simdram

#endif // SIMDRAM_APPS_BRIGHTNESS_H
