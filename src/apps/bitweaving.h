/**
 * @file
 * BitWeaving-style column scan (paper application #6).
 *
 * BitWeaving/V stores column codes bit-sliced — exactly SIMDRAM's
 * vertical layout — and evaluates range predicates bit-serially.
 * The kernel here scans a w-bit column for lo <= v < hi, producing a
 * per-row match bitmap in DRAM.
 */

#ifndef SIMDRAM_APPS_BITWEAVING_H
#define SIMDRAM_APPS_BITWEAVING_H

#include <cstddef>
#include <cstdint>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** Workload shape for the BitWeaving scan. */
struct BitweavingSpec
{
    size_t rows = 1 << 22; ///< Column length.
    size_t bits = 12;      ///< Code width.
};

/** Prices the range scan on @p engine. */
KernelCost bitweavingCost(BulkEngine &engine,
                          const BitweavingSpec &spec);

/**
 * Functionally verifies the scan on a small column: compares the
 * in-DRAM match bitmap to a host evaluation.
 */
bool bitweavingVerify(Processor &proc, uint64_t seed = 11);

/**
 * Multi-device variant: the whole scan (range-predicate constants
 * materialized in DRAM by bbop_init, two comparisons, mask combine)
 * is submitted as a single *encoded* bbop word stream to a
 * StreamExecutor over @p group (bounded queues enabled), with the
 * column sharded across the group's devices. Verifies the match
 * bitmap against the same host evaluation.
 */
bool bitweavingVerify(DeviceGroup &group, uint64_t seed = 11);

} // namespace simdram

#endif // SIMDRAM_APPS_BITWEAVING_H
