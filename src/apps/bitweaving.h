/**
 * @file
 * BitWeaving-style column scan (paper application #6).
 *
 * BitWeaving/V stores column codes bit-sliced — exactly SIMDRAM's
 * vertical layout — and evaluates range predicates bit-serially.
 * The kernel here scans a w-bit column for lo <= v < hi, producing a
 * per-row match bitmap in DRAM.
 */

#ifndef SIMDRAM_APPS_BITWEAVING_H
#define SIMDRAM_APPS_BITWEAVING_H

#include <cstddef>
#include <cstdint>

#include "apps/engine.h"
#include "exec/processor.h"

namespace simdram
{

/** Workload shape for the BitWeaving scan. */
struct BitweavingSpec
{
    size_t rows = 1 << 22; ///< Column length.
    size_t bits = 12;      ///< Code width.
};

/** Prices the range scan on @p engine. */
KernelCost bitweavingCost(BulkEngine &engine,
                          const BitweavingSpec &spec);

/**
 * Functionally verifies the scan on a small column: compares the
 * in-DRAM match bitmap to a host evaluation.
 */
bool bitweavingVerify(Processor &proc, uint64_t seed = 11);

} // namespace simdram

#endif // SIMDRAM_APPS_BITWEAVING_H
