#include "apps/tpch.h"

#include "common/rng.h"

namespace simdram
{

LineitemTable
makeLineitem(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    LineitemTable t;
    t.quantity.resize(rows);
    t.discount.resize(rows);
    t.shipdate.resize(rows);
    t.price.resize(rows);
    for (size_t i = 0; i < rows; ++i) {
        t.quantity[i] = 1 + rng.below(50);
        t.discount[i] = rng.below(11);
        t.shipdate[i] = rng.below(2557); // ~7 years of days
        t.price[i] = 100 + rng.below(5900);
    }
    return t;
}

KernelCost
tpchCost(BulkEngine &engine, size_t rows)
{
    KernelCost cost;
    // Five 16-bit comparisons produce the predicate masks.
    cost.add(engine.opCost(OpKind::Ge, 16, rows), 2.0);
    cost.add(engine.opCost(OpKind::Gt, 16, rows), 3.0);
    // Four 1-bit mask combines (bulk bitwise AND, extension op).
    cost.add(engine.opCost(OpKind::BitAnd, 1, rows), 4.0);
    // Selected revenue: multiply then predicate-select.
    cost.add(engine.opCost(OpKind::Mul, 16, rows));
    cost.add(engine.opCost(OpKind::IfElse, 16, rows));
    return cost;
}

bool
tpchVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t rows = 300;
    const LineitemTable t = makeLineitem(rows, seed);
    const Q6Params q;

    auto vcol = proc.alloc(rows, 16);
    auto vconst = proc.alloc(rows, 16);
    auto m1 = proc.alloc(rows, 1);
    auto m2 = proc.alloc(rows, 1);
    auto macc = proc.alloc(rows, 1);
    auto vprice = proc.alloc(rows, 16);
    auto vdisc = proc.alloc(rows, 16);
    auto vrev = proc.alloc(rows, 16);
    auto vsel = proc.alloc(rows, 16);
    auto zero16 = proc.alloc(rows, 16);

    // Constants are materialized by in-DRAM row initialization
    // (bbop_init): no data crosses the memory channel.
    proc.fillConstant(zero16, 0);

    auto fill_const = [&](uint64_t v) { proc.fillConstant(vconst, v); };

    // shipdate >= d1
    proc.store(vcol, t.shipdate);
    fill_const(q.d1);
    proc.run(OpKind::Ge, macc, vcol, vconst);
    // shipdate < d2  (d2 > shipdate)
    fill_const(q.d2);
    proc.run(OpKind::Gt, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, m2, m1, macc);
    // discount >= lo
    proc.store(vcol, t.discount);
    fill_const(q.lo);
    proc.run(OpKind::Ge, m1, vcol, vconst);
    proc.run(OpKind::BitAnd, macc, m1, m2);
    // discount <= hi  (hi >= discount)
    fill_const(q.hi);
    proc.run(OpKind::Ge, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, m2, m1, macc);
    // quantity < qty  (qty > quantity)
    proc.store(vcol, t.quantity);
    fill_const(q.qty);
    proc.run(OpKind::Gt, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, macc, m1, m2);

    // revenue = price * discount where selected
    proc.store(vprice, t.price);
    proc.store(vdisc, t.discount);
    proc.run(OpKind::Mul, vrev, vprice, vdisc);
    proc.run(OpKind::IfElse, vsel, vrev, zero16, macc);

    const auto rev = proc.load(vsel);
    uint64_t sum_sim = 0;
    for (uint64_t v : rev)
        sum_sim += v;

    uint64_t sum_host = 0;
    for (size_t i = 0; i < rows; ++i) {
        const bool hit = t.shipdate[i] >= q.d1 &&
                         t.shipdate[i] < q.d2 &&
                         t.discount[i] >= q.lo &&
                         t.discount[i] <= q.hi &&
                         t.quantity[i] < q.qty;
        if (hit)
            sum_host += t.price[i] * t.discount[i];
    }
    return sum_sim == sum_host;
}

} // namespace simdram
