#include "apps/tpch.h"

#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace simdram
{

LineitemTable
makeLineitem(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    LineitemTable t;
    t.quantity.resize(rows);
    t.discount.resize(rows);
    t.shipdate.resize(rows);
    t.price.resize(rows);
    for (size_t i = 0; i < rows; ++i) {
        t.quantity[i] = 1 + rng.below(50);
        t.discount[i] = rng.below(11);
        t.shipdate[i] = rng.below(2557); // ~7 years of days
        t.price[i] = 100 + rng.below(5900);
    }
    return t;
}

namespace
{

/** Host evaluation of Q6: the reference both verifies compare to. */
uint64_t
q6HostRevenue(const LineitemTable &t, const Q6Params &q)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < t.rows(); ++i) {
        const bool hit = t.shipdate[i] >= q.d1 &&
                         t.shipdate[i] < q.d2 &&
                         t.discount[i] >= q.lo &&
                         t.discount[i] <= q.hi &&
                         t.quantity[i] < q.qty;
        if (hit)
            sum += t.price[i] * t.discount[i];
    }
    return sum;
}

} // namespace

KernelCost
tpchCost(BulkEngine &engine, size_t rows)
{
    KernelCost cost;
    // Five 16-bit comparisons produce the predicate masks.
    cost.add(engine.opCost(OpKind::Ge, 16, rows), 2.0);
    cost.add(engine.opCost(OpKind::Gt, 16, rows), 3.0);
    // Four 1-bit mask combines (bulk bitwise AND, extension op).
    cost.add(engine.opCost(OpKind::BitAnd, 1, rows), 4.0);
    // Selected revenue: multiply then predicate-select.
    cost.add(engine.opCost(OpKind::Mul, 16, rows));
    cost.add(engine.opCost(OpKind::IfElse, 16, rows));
    return cost;
}

bool
tpchVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t rows = 300;
    const LineitemTable t = makeLineitem(rows, seed);
    const Q6Params q;

    auto vcol = proc.alloc(rows, 16);
    auto vconst = proc.alloc(rows, 16);
    auto m1 = proc.alloc(rows, 1);
    auto m2 = proc.alloc(rows, 1);
    auto macc = proc.alloc(rows, 1);
    auto vprice = proc.alloc(rows, 16);
    auto vdisc = proc.alloc(rows, 16);
    auto vrev = proc.alloc(rows, 16);
    auto vsel = proc.alloc(rows, 16);
    auto zero16 = proc.alloc(rows, 16);

    // Constants are materialized by in-DRAM row initialization
    // (bbop_init): no data crosses the memory channel.
    proc.fillConstant(zero16, 0);

    auto fill_const = [&](uint64_t v) { proc.fillConstant(vconst, v); };

    // shipdate >= d1
    proc.store(vcol, t.shipdate);
    fill_const(q.d1);
    proc.run(OpKind::Ge, macc, vcol, vconst);
    // shipdate < d2  (d2 > shipdate)
    fill_const(q.d2);
    proc.run(OpKind::Gt, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, m2, m1, macc);
    // discount >= lo
    proc.store(vcol, t.discount);
    fill_const(q.lo);
    proc.run(OpKind::Ge, m1, vcol, vconst);
    proc.run(OpKind::BitAnd, macc, m1, m2);
    // discount <= hi  (hi >= discount)
    fill_const(q.hi);
    proc.run(OpKind::Ge, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, m2, m1, macc);
    // quantity < qty  (qty > quantity)
    proc.store(vcol, t.quantity);
    fill_const(q.qty);
    proc.run(OpKind::Gt, m1, vconst, vcol);
    proc.run(OpKind::BitAnd, macc, m1, m2);

    // revenue = price * discount where selected
    proc.store(vprice, t.price);
    proc.store(vdisc, t.discount);
    proc.run(OpKind::Mul, vrev, vprice, vdisc);
    proc.run(OpKind::IfElse, vsel, vrev, zero16, macc);

    const auto rev = proc.load(vsel);
    uint64_t sum_sim = 0;
    for (uint64_t v : rev)
        sum_sim += v;

    return sum_sim == q6HostRevenue(t, q);
}

bool
tpchVerify(DeviceGroup &group, uint64_t seed)
{
    constexpr size_t rows = 300;
    constexpr uint8_t kW = 16;
    const LineitemTable t = makeLineitem(rows, seed);
    const Q6Params q;

    StreamExecutorOptions exOpts;
    exOpts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, exOpts);
    const uint16_t oship = ex.defineObject(rows, kW);
    const uint16_t odisc = ex.defineObject(rows, kW);
    const uint16_t oqty = ex.defineObject(rows, kW);
    const uint16_t oprice = ex.defineObject(rows, kW);
    const uint16_t oconst = ex.defineObject(rows, kW);
    const uint16_t om1 = ex.defineObject(rows, 1);
    const uint16_t om2 = ex.defineObject(rows, 1);
    const uint16_t omacc = ex.defineObject(rows, 1);
    const uint16_t orev = ex.defineObject(rows, kW);
    const uint16_t osel = ex.defineObject(rows, kW);
    const uint16_t ozero = ex.defineObject(rows, kW);

    ex.writeObject(oship, t.shipdate);
    ex.writeObject(odisc, t.discount);
    ex.writeObject(oqty, t.quantity);
    ex.writeObject(oprice, t.price);

    // Q6 as one asynchronous stream; the query constants never cross
    // the memory channel (bbop_init), and oconst is re-initialized
    // between predicates — per-device program order makes that safe.
    StreamBuilder b(ex);
    for (uint16_t o : {oship, odisc, oqty, oprice, oconst, om1, om2,
                       omacc, orev, osel, ozero})
        b.trsp(o);
    b.init(ozero, 0);
    // shipdate >= d1
    b.init(oconst, q.d1).binary(OpKind::Ge, omacc, oship, oconst);
    // shipdate < d2  (d2 > shipdate)
    b.init(oconst, q.d2)
        .binary(OpKind::Gt, om1, oconst, oship)
        .binary(OpKind::BitAnd, om2, om1, omacc);
    // discount >= lo
    b.init(oconst, q.lo)
        .binary(OpKind::Ge, om1, odisc, oconst)
        .binary(OpKind::BitAnd, omacc, om1, om2);
    // discount <= hi  (hi >= discount)
    b.init(oconst, q.hi)
        .binary(OpKind::Ge, om1, oconst, odisc)
        .binary(OpKind::BitAnd, om2, om1, omacc);
    // quantity < qty  (qty > quantity)
    b.init(oconst, q.qty)
        .binary(OpKind::Gt, om1, oconst, oqty)
        .binary(OpKind::BitAnd, omacc, om1, om2);
    // revenue = price * discount where selected
    b.binary(OpKind::Mul, orev, oprice, odisc)
        .predicated(OpKind::IfElse, osel, orev, ozero, omacc)
        .trspInv(osel);
    const StreamResult r = b.submit().wait();
    if (r.compute.latencyNs <= 0.0)
        return false;

    uint64_t sum_sim = 0;
    for (uint64_t v : ex.readObject(osel))
        sum_sim += v;

    // The query must analyze clean under the submit-time lint.
    return sum_sim == q6HostRevenue(t, q) &&
           ex.lintDiagnosticCount() == 0;
}

} // namespace simdram
