/**
 * @file
 * TPC-H-style selection/aggregation scan (paper application #5).
 *
 * A Q6-like query over a synthetic lineitem table:
 *
 *   SELECT SUM(price * discount) FROM lineitem
 *   WHERE shipdate >= :d1 AND shipdate < :d2
 *     AND discount BETWEEN :lo AND :hi AND quantity < :q
 *
 * The predicates and the selected-revenue computation run in DRAM
 * (comparisons, 1-bit mask combining via predication, multiply,
 * select); the final sum reduces on the host.
 *
 * Substitution note (DESIGN.md): dbgen data is replaced by a seeded
 * synthetic table with Q6-like value distributions.
 */

#ifndef SIMDRAM_APPS_TPCH_H
#define SIMDRAM_APPS_TPCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** Synthetic lineitem columns. */
struct LineitemTable
{
    std::vector<uint64_t> quantity; ///< 8-bit, 1..50.
    std::vector<uint64_t> discount; ///< 8-bit, cents 0..10.
    std::vector<uint64_t> shipdate; ///< 16-bit day number.
    std::vector<uint64_t> price;    ///< 16-bit price.

    /** @return Number of rows. */
    size_t rows() const { return quantity.size(); }
};

/** @return A deterministic synthetic table with @p rows rows. */
LineitemTable makeLineitem(size_t rows, uint64_t seed = 7);

/** Query parameters. */
struct Q6Params
{
    uint64_t d1 = 200, d2 = 565; ///< Shipdate window.
    uint64_t lo = 5, hi = 7;     ///< Discount band.
    uint64_t qty = 24;           ///< Quantity upper bound.
};

/** Prices the in-DRAM part of the query on @p engine. */
KernelCost tpchCost(BulkEngine &engine, size_t rows);

/**
 * Functionally runs the query on @p proc over a small table and
 * compares the aggregated revenue against a host evaluation.
 */
bool tpchVerify(Processor &proc, uint64_t seed = 99);

/**
 * Multi-device variant: the whole query (predicates, mask combining,
 * revenue computation) is submitted as a single bbop instruction
 * stream to a StreamExecutor over @p group, with the table columns
 * sharded across the group's devices and the query constants
 * materialized in DRAM by bbop_init. The final aggregation reduces
 * on the host, as in the paper.
 */
bool tpchVerify(DeviceGroup &group, uint64_t seed = 99);

} // namespace simdram

#endif // SIMDRAM_APPS_TPCH_H
