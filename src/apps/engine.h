/**
 * @file
 * Bulk-operation cost engines for the application studies.
 *
 * Every application kernel is a sequence of bulk element-wise
 * operations. A BulkEngine prices one bulk operation on a target
 * platform; kernels accumulate those costs, so the same kernel code
 * is evaluated on SIMDRAM (1/4/16 banks), Ambit, the CPU roofline,
 * and the GPU roofline — the comparison of paper section 5.
 *
 * In-DRAM engines price operations from their compiled μPrograms via
 * estimateCompute(); tests verify that this analytic estimate matches
 * the functional simulator's accounting exactly, so application
 * numbers inherit the simulator's fidelity without simulating
 * millions of lanes.
 */

#ifndef SIMDRAM_APPS_ENGINE_H
#define SIMDRAM_APPS_ENGINE_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/cpu_model.h"
#include "common/stats.h"
#include "dram/config.h"
#include "exec/processor.h"
#include "ops/library.h"

namespace simdram
{

/** Prices bulk element-wise operations on one platform. */
class BulkEngine
{
  public:
    virtual ~BulkEngine() = default;

    /** @return Engine name for reports. */
    virtual std::string name() const = 0;

    /**
     * Prices one bulk operation.
     *
     * @param op Operation.
     * @param width Element width in bits.
     * @param elements Number of elements.
     * @return Latency (ns) and energy (pJ) of the operation.
     */
    virtual RunResult opCost(OpKind op, size_t width,
                             size_t elements) = 0;
};

/** SIMDRAM / Ambit engine backed by compiled μPrograms. */
class InDramEngine : public BulkEngine
{
  public:
    /**
     * @param cfg Device configuration (bank count = parallelism).
     * @param backend Compiler backend (Simdram or Ambit).
     * @param name Report name (e.g. "SIMDRAM:16").
     */
    InDramEngine(DramConfig cfg, Backend backend, std::string name);

    std::string name() const override { return name_; }

    RunResult opCost(OpKind op, size_t width,
                     size_t elements) override;

    /** @return The compiled μProgram (cached). */
    const MicroProgram &program(OpKind op, size_t width);

  private:
    DramConfig cfg_;
    Backend backend_;
    std::string name_;
    OperationLibrary lib_;
    std::map<std::pair<OpKind, size_t>,
             std::unique_ptr<MicroProgram>>
        cache_;
};

/** CPU/GPU roofline engine. */
class HostEngine : public BulkEngine
{
  public:
    explicit HostEngine(BaselineParams params) : params_(params) {}

    std::string name() const override { return params_.name; }

    RunResult opCost(OpKind op, size_t width,
                     size_t elements) override;

  private:
    BaselineParams params_;
};

/** Accumulates the cost of a kernel across its bulk operations. */
class KernelCost
{
  public:
    /** Adds one bulk operation's cost. */
    void add(const RunResult &r);

    /** Adds @p count invocations of one bulk operation's cost. */
    void add(const RunResult &r, double count);

    /** @return Total latency in ns. */
    double latencyNs() const { return latency_ns_; }

    /** @return Total energy in pJ. */
    double energyPj() const { return energy_pj_; }

  private:
    double latency_ns_ = 0;
    double energy_pj_ = 0;
};

/**
 * @return The standard engine set for the application benches:
 *         CPU, GPU, Ambit (1 bank), SIMDRAM:1, SIMDRAM:4, SIMDRAM:16.
 */
std::vector<std::unique_ptr<BulkEngine>> standardEngines();

} // namespace simdram

#endif // SIMDRAM_APPS_ENGINE_H
