/**
 * @file
 * k-nearest-neighbor distance kernel (paper application #4).
 *
 * The SIMDRAM-accelerated portion is the bulk distance computation:
 * the L1 distance between one query and every reference point,
 * lane-per-reference (subtract, absolute value, accumulate per
 * dimension). The final top-k selection stays on the host, as in the
 * paper's partitioning.
 */

#ifndef SIMDRAM_APPS_KNN_H
#define SIMDRAM_APPS_KNN_H

#include <cstddef>
#include <cstdint>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** Workload shape for the kNN kernel. */
struct KnnSpec
{
    size_t refs = 1 << 20; ///< Reference points.
    size_t dims = 64;      ///< Dimensions per point.
    size_t bits = 16;      ///< Coordinate/accumulator width.
};

/** Prices the distance computation of @p spec on @p engine. */
KernelCost knnCost(BulkEngine &engine, const KnnSpec &spec);

/**
 * Functionally verifies the kNN mapping on a small instance: runs
 * the L1-distance pipeline through @p proc, picks the nearest
 * neighbor, and compares against a host computation.
 */
bool knnVerify(Processor &proc, uint64_t seed = 321);

/**
 * Multi-device variant: the distance pipeline runs as bbop
 * instruction streams (one per dimension, pipelined without waiting)
 * through a StreamExecutor over @p group, with the reference columns
 * sharded across the group's devices and the query coordinates
 * broadcast by bbop_init. Bounded per-device queues are enabled, so
 * the per-dimension streams exercise backpressure. The final top-k
 * selection stays on the host, as in the paper.
 */
bool knnVerify(DeviceGroup &group, uint64_t seed = 321);

} // namespace simdram

#endif // SIMDRAM_APPS_KNN_H
