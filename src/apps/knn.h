/**
 * @file
 * k-nearest-neighbor distance kernel (paper application #4).
 *
 * The SIMDRAM-accelerated portion is the bulk distance computation:
 * the L1 distance between one query and every reference point,
 * lane-per-reference (subtract, absolute value, accumulate per
 * dimension). The final top-k selection stays on the host, as in the
 * paper's partitioning.
 */

#ifndef SIMDRAM_APPS_KNN_H
#define SIMDRAM_APPS_KNN_H

#include <cstddef>
#include <cstdint>

#include "apps/engine.h"
#include "exec/processor.h"
#include "runtime/device_group.h"

namespace simdram
{

/** Workload shape for the kNN kernel. */
struct KnnSpec
{
    size_t refs = 1 << 20; ///< Reference points.
    size_t dims = 64;      ///< Dimensions per point.
    size_t bits = 16;      ///< Coordinate/accumulator width.
};

/** Prices the distance computation of @p spec on @p engine. */
KernelCost knnCost(BulkEngine &engine, const KnnSpec &spec);

/**
 * Functionally verifies the kNN mapping on a small instance: runs
 * the L1-distance pipeline through @p proc for a batch of queries
 * against one reference set, picks each query's nearest neighbor,
 * and compares against a host computation.
 */
bool knnVerify(Processor &proc, uint64_t seed = 321);

/** Stream accounting of the DeviceGroup knn path (see knnVerify). */
struct KnnStreamReport
{
    /**
     * Streams submitted across all queries: per-dimension distance
     * streams plus each query's accumulator-init and trsp-inv
     * streams.
     */
    size_t streams = 0;
    /** Instructions elided by the stream cache (0 when disabled). */
    size_t cachedInstructions = 0;
    /** Transposition-unit row activates paid by all streams. */
    uint64_t transferActivates = 0;
};

/**
 * Multi-device variant: the distance pipeline runs as bbop
 * instruction streams through a StreamExecutor over @p group, with
 * the reference columns sharded across the group's devices and the
 * query coordinates broadcast by bbop_init. Each per-(query,
 * dimension) stream is self-contained — it re-transposes its
 * reference column before using it — which is exactly the pattern
 * the stream cache exists for: with @p stream_cache enabled (the
 * default) every query after the first reuses the already-resident
 * reference columns instead of re-transposing them, bit-exact with
 * the cache disabled. Streams are pipelined without waiting against
 * bounded per-device queues, so they also exercise backpressure.
 * The final top-k selection stays on the host, as in the paper.
 *
 * @param report Optional out-parameter receiving the per-stream
 *        accounting (trsp work paid, cache hits) for tests and
 *        benchmarks comparing cached vs uncached runs.
 */
bool knnVerify(DeviceGroup &group, uint64_t seed = 321,
               bool stream_cache = true,
               KnnStreamReport *report = nullptr);

} // namespace simdram

#endif // SIMDRAM_APPS_KNN_H
