#include "apps/engine.h"

#include "ambit/ambit_synth.h"
#include "common/error.h"
#include "uprog/allocator.h"

namespace simdram
{

InDramEngine::InDramEngine(DramConfig cfg, Backend backend,
                           std::string name)
    : cfg_(cfg), backend_(backend), name_(std::move(name))
{
    cfg_.validate();
}

const MicroProgram &
InDramEngine::program(OpKind op, size_t width)
{
    const auto key = std::make_pair(op, width);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return *it->second;

    MicroProgram prog;
    switch (backend_) {
      case Backend::Simdram:
        prog = compileMig(lib_.mig(op, width));
        break;
      case Backend::SimdramNaive: {
        CompileOptions opts;
        opts.greedy = false;
        prog = compileMig(lib_.mig(op, width), opts);
        break;
      }
      case Backend::Ambit:
        prog = compileAmbit(lib_.aoig(op, width));
        break;
    }
    auto owned = std::make_unique<MicroProgram>(std::move(prog));
    const MicroProgram &ref = *owned;
    cache_.emplace(key, std::move(owned));
    return ref;
}

RunResult
InDramEngine::opCost(OpKind op, size_t width, size_t elements)
{
    const MicroProgram &prog = program(op, width);
    const DramStats s = estimateCompute(prog, elements, cfg_);
    RunResult r;
    r.engine = name_;
    r.elements = elements;
    r.latencyNs = s.latencyNs;
    r.energyPj = s.energyPj;
    return r;
}

RunResult
HostEngine::opCost(OpKind op, size_t width, size_t elements)
{
    return modelRun(params_, op, width, elements);
}

void
KernelCost::add(const RunResult &r)
{
    latency_ns_ += r.latencyNs;
    energy_pj_ += r.energyPj;
}

void
KernelCost::add(const RunResult &r, double count)
{
    latency_ns_ += r.latencyNs * count;
    energy_pj_ += r.energyPj * count;
}

std::vector<std::unique_ptr<BulkEngine>>
standardEngines()
{
    std::vector<std::unique_ptr<BulkEngine>> engines;
    engines.push_back(
        std::make_unique<HostEngine>(cpuParams()));
    engines.push_back(
        std::make_unique<HostEngine>(gpuParams()));
    engines.push_back(std::make_unique<InDramEngine>(
        DramConfig::simdramConfig(1), Backend::Ambit, "Ambit"));
    engines.push_back(std::make_unique<InDramEngine>(
        DramConfig::simdramConfig(1), Backend::Simdram,
        "SIMDRAM:1"));
    engines.push_back(std::make_unique<InDramEngine>(
        DramConfig::simdramConfig(4), Backend::Simdram,
        "SIMDRAM:4"));
    engines.push_back(std::make_unique<InDramEngine>(
        DramConfig::simdramConfig(16), Backend::Simdram,
        "SIMDRAM:16"));
    return engines;
}

} // namespace simdram
