#include "apps/bitweaving.h"

#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace simdram
{

namespace
{

// Shared shape of the small verification scan.
constexpr size_t kScanRows = 400, kScanBits = 12;
constexpr uint64_t kScanLo = 500, kScanHi = 3000;

std::vector<uint64_t>
randomColumn(uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> col(kScanRows);
    for (auto &v : col)
        v = rng.below(1 << kScanBits);
    return col;
}

bool
bitmapMatchesHost(const std::vector<uint64_t> &col,
                  const std::vector<uint64_t> &match)
{
    for (size_t i = 0; i < kScanRows; ++i) {
        const bool expect = col[i] >= kScanLo && col[i] < kScanHi;
        if ((match[i] & 1) != (expect ? 1u : 0u))
            return false;
    }
    return true;
}

} // namespace

KernelCost
bitweavingCost(BulkEngine &engine, const BitweavingSpec &spec)
{
    KernelCost cost;
    cost.add(engine.opCost(OpKind::Ge, spec.bits, spec.rows));
    cost.add(engine.opCost(OpKind::Gt, spec.bits, spec.rows));
    cost.add(engine.opCost(OpKind::BitAnd, 1, spec.rows));
    return cost;
}

bool
bitweavingVerify(Processor &proc, uint64_t seed)
{
    const std::vector<uint64_t> col = randomColumn(seed);

    auto vcol = proc.alloc(kScanRows, kScanBits);
    auto vconst = proc.alloc(kScanRows, kScanBits);
    auto m1 = proc.alloc(kScanRows, 1);
    auto m2 = proc.alloc(kScanRows, 1);
    auto mout = proc.alloc(kScanRows, 1);

    proc.store(vcol, col);

    // Predicate constants come from in-DRAM initialization.
    proc.fillConstant(vconst, kScanLo);
    proc.run(OpKind::Ge, m1, vcol, vconst);
    proc.fillConstant(vconst, kScanHi);
    proc.run(OpKind::Gt, m2, vconst, vcol);
    proc.run(OpKind::BitAnd, mout, m1, m2);

    return bitmapMatchesHost(col, proc.load(mout));
}

bool
bitweavingVerify(DeviceGroup &group, uint64_t seed)
{
    const std::vector<uint64_t> col = randomColumn(seed);

    StreamExecutorOptions exOpts{/*maxQueuedStreams=*/2,
                                 BackpressurePolicy::Block};
    exOpts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, exOpts);
    const uint16_t ocol = ex.defineObject(kScanRows, kScanBits);
    const uint16_t oconst = ex.defineObject(kScanRows, kScanBits);
    const uint16_t om1 = ex.defineObject(kScanRows, 1);
    const uint16_t om2 = ex.defineObject(kScanRows, 1);
    const uint16_t omout = ex.defineObject(kScanRows, 1);
    ex.writeObject(ocol, col);

    // The whole scan as one stream of encoded 64-bit bbop words —
    // exactly what a host core would write to the controller.
    StreamBuilder b(ex);
    b.trsp(ocol).trsp(oconst).trsp(om1).trsp(om2).trsp(omout);
    b.init(oconst, kScanLo)
        .binary(OpKind::Ge, om1, ocol, oconst)
        .init(oconst, kScanHi)
        .binary(OpKind::Gt, om2, oconst, ocol)
        .binary(OpKind::BitAnd, omout, om1, om2)
        .trspInv(omout);
    const std::vector<uint64_t> words = b.encodeStream();
    b.clear();

    const StreamResult r = ex.submit(words).wait();
    if (r.instructions != words.size() ||
        r.compute.latencyNs <= 0.0)
        return false;

    // The scan must analyze clean under the submit-time lint.
    return bitmapMatchesHost(col, ex.readObject(omout)) &&
           ex.lintDiagnosticCount() == 0;
}

} // namespace simdram
