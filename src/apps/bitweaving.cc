#include "apps/bitweaving.h"

#include "common/rng.h"

namespace simdram
{

KernelCost
bitweavingCost(BulkEngine &engine, const BitweavingSpec &spec)
{
    KernelCost cost;
    cost.add(engine.opCost(OpKind::Ge, spec.bits, spec.rows));
    cost.add(engine.opCost(OpKind::Gt, spec.bits, spec.rows));
    cost.add(engine.opCost(OpKind::BitAnd, 1, spec.rows));
    return cost;
}

bool
bitweavingVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t rows = 400, bits = 12;
    const uint64_t lo = 500, hi = 3000;

    Rng rng(seed);
    std::vector<uint64_t> col(rows);
    for (auto &v : col)
        v = rng.below(1 << bits);

    auto vcol = proc.alloc(rows, bits);
    auto vconst = proc.alloc(rows, bits);
    auto m1 = proc.alloc(rows, 1);
    auto m2 = proc.alloc(rows, 1);
    auto mout = proc.alloc(rows, 1);

    proc.store(vcol, col);

    // Predicate constants come from in-DRAM initialization.
    proc.fillConstant(vconst, lo);
    proc.run(OpKind::Ge, m1, vcol, vconst);
    proc.fillConstant(vconst, hi);
    proc.run(OpKind::Gt, m2, vconst, vcol);
    proc.run(OpKind::BitAnd, mout, m1, m2);

    const auto match = proc.load(mout);
    for (size_t i = 0; i < rows; ++i) {
        const bool expect = col[i] >= lo && col[i] < hi;
        if ((match[i] & 1) != (expect ? 1u : 0u))
            return false;
    }
    return true;
}

} // namespace simdram
