#include "apps/knn.h"

#include "common/rng.h"

namespace simdram
{

KernelCost
knnCost(BulkEngine &engine, const KnnSpec &spec)
{
    KernelCost cost;
    const double d = static_cast<double>(spec.dims);
    cost.add(engine.opCost(OpKind::Sub, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Abs, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Add, spec.bits, spec.refs), d);
    return cost;
}

bool
knnVerify(Processor &proc, uint64_t seed)
{
    constexpr size_t refs = 200, dims = 8, bits = 16;
    constexpr uint64_t mask = (1ULL << bits) - 1;

    Rng rng(seed);
    std::vector<std::vector<uint64_t>> ref(dims,
                                           std::vector<uint64_t>(refs));
    std::vector<uint64_t> query(dims);
    for (auto &col : ref)
        for (auto &v : col)
            v = rng.below(200);
    for (auto &v : query)
        v = rng.below(200);

    auto vref = proc.alloc(refs, bits);
    auto vq = proc.alloc(refs, bits);
    auto vdiff = proc.alloc(refs, bits);
    auto vabs = proc.alloc(refs, bits);
    auto va = proc.alloc(refs, bits);
    auto vb = proc.alloc(refs, bits);

    proc.fillConstant(va, 0);
    bool into_b = true;
    for (size_t d = 0; d < dims; ++d) {
        proc.store(vref, ref[d]);
        proc.fillConstant(vq, query[d]); // broadcast via bbop_init
        proc.run(OpKind::Sub, vdiff, vref, vq);
        proc.run(OpKind::Abs, vabs, vdiff);
        if (into_b)
            proc.run(OpKind::Add, vb, va, vabs);
        else
            proc.run(OpKind::Add, va, vb, vabs);
        into_b = !into_b;
    }
    const auto dist = proc.load(into_b ? va : vb);

    // Host reference + argmin comparison.
    size_t best_sim = 0, best_host = 0;
    uint64_t best_sim_d = ~0ULL, best_host_d = ~0ULL;
    for (size_t i = 0; i < refs; ++i) {
        uint64_t d_host = 0;
        for (size_t d = 0; d < dims; ++d) {
            const int64_t diff = static_cast<int64_t>(ref[d][i]) -
                                 static_cast<int64_t>(query[d]);
            d_host += static_cast<uint64_t>(diff < 0 ? -diff : diff);
        }
        d_host &= mask;
        if (dist[i] != d_host)
            return false;
        if (dist[i] < best_sim_d) {
            best_sim_d = dist[i];
            best_sim = i;
        }
        if (d_host < best_host_d) {
            best_host_d = d_host;
            best_host = i;
        }
    }
    return best_sim == best_host;
}

} // namespace simdram
