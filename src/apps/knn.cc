#include "apps/knn.h"

#include "common/rng.h"
#include "runtime/stream_executor.h"

namespace simdram
{

KernelCost
knnCost(BulkEngine &engine, const KnnSpec &spec)
{
    KernelCost cost;
    const double d = static_cast<double>(spec.dims);
    cost.add(engine.opCost(OpKind::Sub, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Abs, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Add, spec.bits, spec.refs), d);
    return cost;
}

namespace
{

// Shared shape of the small verification instance; both verifies run
// the same data and compare against the same host argmin.
constexpr size_t kRefs = 200, kDims = 8, kBits = 16;
constexpr uint64_t kMask = (1ULL << kBits) - 1;

struct KnnInstance
{
    std::vector<std::vector<uint64_t>> ref; ///< [dim][point].
    std::vector<uint64_t> query;            ///< [dim].
};

KnnInstance
makeInstance(uint64_t seed)
{
    Rng rng(seed);
    KnnInstance in;
    in.ref.assign(kDims, std::vector<uint64_t>(kRefs));
    in.query.resize(kDims);
    for (auto &col : in.ref)
        for (auto &v : col)
            v = rng.below(200);
    for (auto &v : in.query)
        v = rng.below(200);
    return in;
}

/**
 * Checks the simulated L1 distances element-wise against the host
 * and compares the argmins.
 */
bool
distancesMatchHost(const KnnInstance &in,
                   const std::vector<uint64_t> &dist)
{
    size_t best_sim = 0, best_host = 0;
    uint64_t best_sim_d = ~0ULL, best_host_d = ~0ULL;
    for (size_t i = 0; i < kRefs; ++i) {
        uint64_t d_host = 0;
        for (size_t d = 0; d < kDims; ++d) {
            const int64_t diff =
                static_cast<int64_t>(in.ref[d][i]) -
                static_cast<int64_t>(in.query[d]);
            d_host += static_cast<uint64_t>(diff < 0 ? -diff : diff);
        }
        d_host &= kMask;
        if (dist[i] != d_host)
            return false;
        if (dist[i] < best_sim_d) {
            best_sim_d = dist[i];
            best_sim = i;
        }
        if (d_host < best_host_d) {
            best_host_d = d_host;
            best_host = i;
        }
    }
    return best_sim == best_host;
}

} // namespace

bool
knnVerify(Processor &proc, uint64_t seed)
{
    const KnnInstance in = makeInstance(seed);

    auto vref = proc.alloc(kRefs, kBits);
    auto vq = proc.alloc(kRefs, kBits);
    auto vdiff = proc.alloc(kRefs, kBits);
    auto vabs = proc.alloc(kRefs, kBits);
    auto va = proc.alloc(kRefs, kBits);
    auto vb = proc.alloc(kRefs, kBits);

    proc.fillConstant(va, 0);
    bool into_b = true;
    for (size_t d = 0; d < kDims; ++d) {
        proc.store(vref, in.ref[d]);
        proc.fillConstant(vq, in.query[d]); // broadcast via bbop_init
        proc.run(OpKind::Sub, vdiff, vref, vq);
        proc.run(OpKind::Abs, vabs, vdiff);
        if (into_b)
            proc.run(OpKind::Add, vb, va, vabs);
        else
            proc.run(OpKind::Add, va, vb, vabs);
        into_b = !into_b;
    }
    return distancesMatchHost(in, proc.load(into_b ? va : vb));
}

bool
knnVerify(DeviceGroup &group, uint64_t seed)
{
    constexpr auto w = static_cast<uint8_t>(kBits);
    const KnnInstance in = makeInstance(seed);

    // Bounded queues: the per-dimension streams below are submitted
    // without waiting, so submission runs ahead of the devices and
    // the Block policy throttles it.
    StreamExecutor ex(group,
                      {/*maxQueuedStreams=*/2,
                       BackpressurePolicy::Block});

    // One sharded object per reference dimension, so every distance
    // stream is independent of host writes once set up.
    std::vector<uint16_t> oref(kDims);
    for (size_t d = 0; d < kDims; ++d)
        oref[d] = ex.defineObject(kRefs, kBits);
    const uint16_t oq = ex.defineObject(kRefs, kBits);
    const uint16_t odiff = ex.defineObject(kRefs, kBits);
    const uint16_t oabs = ex.defineObject(kRefs, kBits);
    const uint16_t oa = ex.defineObject(kRefs, kBits);
    const uint16_t ob = ex.defineObject(kRefs, kBits);
    for (size_t d = 0; d < kDims; ++d)
        ex.writeObject(oref[d], in.ref[d]);

    std::vector<BbopInstr> setup;
    for (size_t d = 0; d < kDims; ++d)
        setup.push_back(BbopInstr::trsp(oref[d], w));
    for (uint16_t o : {oq, odiff, oabs, oa, ob})
        setup.push_back(BbopInstr::trsp(o, w));
    setup.push_back(BbopInstr::init(oa, w, 0));

    std::vector<StreamHandle> handles;
    handles.push_back(ex.submit(setup));

    // One stream per dimension: broadcast the query coordinate in
    // DRAM (bbop_init), subtract, absolute value, accumulate into
    // the ping-pong accumulator. FIFO order keeps this correct even
    // though nothing waits in between.
    bool into_b = true;
    for (size_t d = 0; d < kDims; ++d) {
        const uint16_t acc_src = into_b ? oa : ob;
        const uint16_t acc_dst = into_b ? ob : oa;
        handles.push_back(ex.submit(
            {BbopInstr::init(oq, w, in.query[d]),
             BbopInstr::binary(OpKind::Sub, w, odiff, oref[d], oq),
             BbopInstr::unary(OpKind::Abs, w, oabs, odiff),
             BbopInstr::binary(OpKind::Add, w, acc_dst, acc_src,
                               oabs)}));
        into_b = !into_b;
    }
    const uint16_t oacc = into_b ? oa : ob;
    handles.push_back(ex.submit({BbopInstr::trspInv(oacc, w)}));

    for (auto &h : handles) {
        const StreamResult r = h.wait();
        if (r.instructions == 0)
            return false;
    }
    // The bound must have been honored by every submit.
    if (ex.queueHighWatermark() == 0 || ex.queueHighWatermark() > 2)
        return false;

    return distancesMatchHost(in, ex.readObject(oacc));
}

} // namespace simdram
