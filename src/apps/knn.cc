#include "apps/knn.h"

#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace simdram
{

KernelCost
knnCost(BulkEngine &engine, const KnnSpec &spec)
{
    KernelCost cost;
    const double d = static_cast<double>(spec.dims);
    cost.add(engine.opCost(OpKind::Sub, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Abs, spec.bits, spec.refs), d);
    cost.add(engine.opCost(OpKind::Add, spec.bits, spec.refs), d);
    return cost;
}

namespace
{

// Shared shape of the small verification instance; both verifies run
// the same data and compare against the same host argmins. Several
// queries run against one reference set — the realistic kNN serving
// pattern, and the one where the stream cache pays off (the
// reference columns are identical from query to query).
constexpr size_t kRefs = 200, kDims = 8, kBits = 16, kQueries = 2;
constexpr uint64_t kMask = (1ULL << kBits) - 1;

struct KnnInstance
{
    std::vector<std::vector<uint64_t>> ref;   ///< [dim][point].
    std::vector<std::vector<uint64_t>> query; ///< [query][dim].
};

KnnInstance
makeInstance(uint64_t seed)
{
    Rng rng(seed);
    KnnInstance in;
    in.ref.assign(kDims, std::vector<uint64_t>(kRefs));
    in.query.assign(kQueries, std::vector<uint64_t>(kDims));
    for (auto &col : in.ref)
        for (auto &v : col)
            v = rng.below(200);
    for (auto &q : in.query)
        for (auto &v : q)
            v = rng.below(200);
    return in;
}

/**
 * Checks the simulated L1 distances of query @p q element-wise
 * against the host and compares the argmins.
 */
bool
distancesMatchHost(const KnnInstance &in, size_t q,
                   const std::vector<uint64_t> &dist)
{
    size_t best_sim = 0, best_host = 0;
    uint64_t best_sim_d = ~0ULL, best_host_d = ~0ULL;
    for (size_t i = 0; i < kRefs; ++i) {
        uint64_t d_host = 0;
        for (size_t d = 0; d < kDims; ++d) {
            const int64_t diff =
                static_cast<int64_t>(in.ref[d][i]) -
                static_cast<int64_t>(in.query[q][d]);
            d_host += static_cast<uint64_t>(diff < 0 ? -diff : diff);
        }
        d_host &= kMask;
        if (dist[i] != d_host)
            return false;
        if (dist[i] < best_sim_d) {
            best_sim_d = dist[i];
            best_sim = i;
        }
        if (d_host < best_host_d) {
            best_host_d = d_host;
            best_host = i;
        }
    }
    return best_sim == best_host;
}

} // namespace

bool
knnVerify(Processor &proc, uint64_t seed)
{
    const KnnInstance in = makeInstance(seed);

    auto vref = proc.alloc(kRefs, kBits);
    auto vq = proc.alloc(kRefs, kBits);
    auto vdiff = proc.alloc(kRefs, kBits);
    auto vabs = proc.alloc(kRefs, kBits);
    auto va = proc.alloc(kRefs, kBits);
    auto vb = proc.alloc(kRefs, kBits);

    for (size_t q = 0; q < kQueries; ++q) {
        proc.fillConstant(va, 0);
        bool into_b = true;
        for (size_t d = 0; d < kDims; ++d) {
            proc.store(vref, in.ref[d]);
            // Broadcast the coordinate via bbop_init.
            proc.fillConstant(vq, in.query[q][d]);
            proc.run(OpKind::Sub, vdiff, vref, vq);
            proc.run(OpKind::Abs, vabs, vdiff);
            if (into_b)
                proc.run(OpKind::Add, vb, va, vabs);
            else
                proc.run(OpKind::Add, va, vb, vabs);
            into_b = !into_b;
        }
        if (!distancesMatchHost(in, q, proc.load(into_b ? va : vb)))
            return false;
    }
    return true;
}

bool
knnVerify(DeviceGroup &group, uint64_t seed, bool stream_cache,
          KnnStreamReport *report)
{
    const KnnInstance in = makeInstance(seed);

    // Bounded queues: the per-dimension streams below are submitted
    // without waiting, so submission runs ahead of the devices and
    // the Block policy throttles it.
    StreamExecutorOptions opts{/*maxQueuedStreams=*/2,
                               BackpressurePolicy::Block};
    opts.enableStreamCache = stream_cache;
    opts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, opts);

    // One sharded object per reference dimension, so every distance
    // stream is independent of host writes once set up.
    std::vector<uint16_t> oref(kDims);
    for (size_t d = 0; d < kDims; ++d)
        oref[d] = ex.defineObject(kRefs, kBits);
    const uint16_t oq = ex.defineObject(kRefs, kBits);
    const uint16_t odiff = ex.defineObject(kRefs, kBits);
    const uint16_t oabs = ex.defineObject(kRefs, kBits);
    const uint16_t oa = ex.defineObject(kRefs, kBits);
    const uint16_t ob = ex.defineObject(kRefs, kBits);
    for (size_t d = 0; d < kDims; ++d)
        ex.writeObject(oref[d], in.ref[d]);

    // Setup covers only the working objects; every reference column
    // is transposed by the distance stream that uses it, keeping
    // those streams self-contained.
    StreamBuilder b(ex);
    for (uint16_t o : {oq, odiff, oabs, oa, ob})
        b.trsp(o);
    StreamHandle setup_h = b.submit();

    KnnStreamReport rep;
    std::vector<uint64_t> dist[kQueries];

    for (size_t q = 0; q < kQueries; ++q) {
        // Reset the ping-pong accumulator, then pipeline one stream
        // per dimension: transpose the reference column (elided by
        // the stream cache for every query after the first),
        // broadcast the query coordinate in DRAM (bbop_init),
        // subtract, absolute value, accumulate. FIFO order keeps
        // this correct even though nothing waits in between.
        std::vector<StreamHandle> handles;
        handles.push_back(b.init(oa, 0).submit());
        PingPong acc{oa, ob};
        for (size_t d = 0; d < kDims; ++d) {
            b.trsp(oref[d])
                .init(oq, in.query[q][d])
                .binary(OpKind::Sub, odiff, oref[d], oq)
                .unary(OpKind::Abs, oabs, odiff)
                .accumulate(acc, oabs);
            handles.push_back(b.submit());
        }
        const uint16_t oacc = acc.result();
        handles.push_back(b.trspInv(oacc).submit());

        for (auto &h : handles) {
            const StreamResult r = h.wait();
            if (r.instructions == 0)
                return false;
            rep.streams += 1;
            rep.cachedInstructions += r.cachedInstructions;
            rep.transferActivates += r.transfer.activates;
        }
        dist[q] = ex.readObject(oacc);
    }
    setup_h.wait();

    // The bound must have been honored by every submit.
    if (ex.queueHighWatermark() == 0 || ex.queueHighWatermark() > 2)
        return false;
    // With the cache on, the second query's reference columns are
    // already resident: its trsp instructions must have been elided.
    if (stream_cache && ex.cacheHits() < kDims)
        return false;
    if (!stream_cache && ex.cacheHits() != 0)
        return false;

    if (report != nullptr)
        *report = rep;
    for (size_t q = 0; q < kQueries; ++q)
        if (!distancesMatchHost(in, q, dist[q]))
            return false;
    // Every stream must analyze clean under the submit-time lint.
    return ex.lintDiagnosticCount() == 0;
}

} // namespace simdram
