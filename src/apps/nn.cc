#include "apps/nn.h"

#include "baseline/host_kernels.h"
#include "common/rng.h"
#include "runtime/stream_executor.h"
#include "stream/stream_builder.h"

namespace simdram
{

double
NnModel::macs() const
{
    double total = 0;
    for (const auto &c : convs)
        total += static_cast<double>(c.outC) * c.inC * c.k * c.k *
                 c.outH * c.outW;
    for (const auto &f : fcs)
        total += static_cast<double>(f.in) * f.out;
    return total;
}

NnModel
lenet()
{
    NnModel m;
    m.name = "LeNet";
    m.convs = {
        {1, 6, 24, 24, 5, true},
        {6, 16, 8, 8, 5, true},
    };
    m.fcs = {{256, 120}, {120, 84}, {84, 10}};
    return m;
}

NnModel
vgg13()
{
    NnModel m;
    m.name = "VGG-13";
    m.convs = {
        {3, 64, 224, 224, 3, false},   {64, 64, 224, 224, 3, true},
        {64, 128, 112, 112, 3, false}, {128, 128, 112, 112, 3, true},
        {128, 256, 56, 56, 3, false},  {256, 256, 56, 56, 3, true},
        {256, 512, 28, 28, 3, false},  {512, 512, 28, 28, 3, true},
        {512, 512, 14, 14, 3, false},  {512, 512, 14, 14, 3, true},
    };
    m.fcs = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
    return m;
}

NnModel
vgg16()
{
    NnModel m;
    m.name = "VGG-16";
    m.convs = {
        {3, 64, 224, 224, 3, false},   {64, 64, 224, 224, 3, true},
        {64, 128, 112, 112, 3, false}, {128, 128, 112, 112, 3, true},
        {128, 256, 56, 56, 3, false},  {256, 256, 56, 56, 3, false},
        {256, 256, 56, 56, 3, true},   {256, 512, 28, 28, 3, false},
        {512, 512, 28, 28, 3, false},  {512, 512, 28, 28, 3, true},
        {512, 512, 14, 14, 3, false},  {512, 512, 14, 14, 3, false},
        {512, 512, 14, 14, 3, true},
    };
    m.fcs = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
    return m;
}

KernelCost
nnCost(BulkEngine &engine, const NnModel &model)
{
    // Batched inference with the standard bit-serial SIMD mapping:
    // one lane per (image, output position, output filter) with a large
    // throughput-oriented batch, so every
    // (input-channel, kernel-tap) pair is one bulk multiply plus one
    // bulk accumulate over all lanes at once. Costs are reported per
    // image (divide the per-batch totals by the batch size).
    KernelCost cost;
    constexpr size_t kAccBits = 16;
    constexpr double kBatch = 1024.0;

    for (const auto &c : model.convs) {
        const size_t lanes = static_cast<size_t>(
            kBatch * static_cast<double>(c.outH * c.outW * c.outC));
        const double taps =
            static_cast<double>(c.inC) * c.k * c.k / kBatch;
        cost.add(engine.opCost(OpKind::Mul, kAccBits, lanes), taps);
        cost.add(engine.opCost(OpKind::Add, kAccBits, lanes), taps);
        cost.add(engine.opCost(OpKind::Relu, kAccBits, lanes),
                 1.0 / kBatch);
        if (c.pool)
            cost.add(engine.opCost(OpKind::Max, kAccBits, lanes / 4),
                     3.0 / kBatch);
    }
    for (size_t i = 0; i < model.fcs.size(); ++i) {
        const auto &f = model.fcs[i];
        const size_t lanes = static_cast<size_t>(
            kBatch * static_cast<double>(f.out));
        cost.add(engine.opCost(OpKind::Mul, kAccBits, lanes),
                 static_cast<double>(f.in) / kBatch);
        cost.add(engine.opCost(OpKind::Add, kAccBits, lanes),
                 static_cast<double>(f.in) / kBatch);
        if (i + 1 < model.fcs.size())
            cost.add(engine.opCost(OpKind::Relu, kAccBits, lanes),
                     1.0 / kBatch);
    }
    return cost;
}

namespace
{

// Shared shape of the verification tile: a 2-in-channel, 2-filter,
// 4x4-output, 3x3 convolution with ReLU, lane-per-output-pixel.
constexpr size_t kInC = 2, kOutC = 2, kOutH = 4, kOutW = 4, kK = 3;
constexpr size_t kInH = kOutH + kK - 1, kInW = kOutW + kK - 1;
constexpr size_t kLanes = kOutH * kOutW;
constexpr size_t kConvBits = 16;
constexpr uint64_t kConvMask = (1ULL << kConvBits) - 1;

struct ConvTile
{
    std::vector<int64_t> input;
    std::vector<int64_t> weight;

    int64_t
    inAt(size_t c, size_t y, size_t x) const
    {
        return input[(c * kInH + y) * kInW + x];
    }

    int64_t
    wAt(size_t f, size_t c, size_t ky, size_t kx) const
    {
        return weight[((f * kInC + c) * kK + ky) * kK + kx];
    }

    /** Activations of one kernel tap, gathered lane-per-pixel. */
    std::vector<uint64_t>
    taps(size_t c, size_t ky, size_t kx) const
    {
        std::vector<uint64_t> xs(kLanes);
        for (size_t oy = 0; oy < kOutH; ++oy)
            for (size_t ox = 0; ox < kOutW; ++ox)
                xs[oy * kOutW + ox] =
                    static_cast<uint64_t>(inAt(c, oy + ky, ox + kx)) &
                    kConvMask;
        return xs;
    }

    /** Host reference for filter @p f, post-ReLU and masked. */
    bool
    matchesHost(size_t f, const std::vector<uint64_t> &got) const
    {
        for (size_t oy = 0; oy < kOutH; ++oy) {
            for (size_t ox = 0; ox < kOutW; ++ox) {
                int64_t sum = 0;
                for (size_t c = 0; c < kInC; ++c)
                    for (size_t ky = 0; ky < kK; ++ky)
                        for (size_t kx = 0; kx < kK; ++kx)
                            sum += inAt(c, oy + ky, ox + kx) *
                                   wAt(f, c, ky, kx);
                const uint64_t expect =
                    sum < 0 ? 0
                            : (static_cast<uint64_t>(sum) &
                               kConvMask);
                if (got[oy * kOutW + ox] != expect)
                    return false;
            }
        }
        return true;
    }
};

ConvTile
makeTile(uint64_t seed)
{
    Rng rng(seed);
    ConvTile t;
    // Small magnitudes keep the int16 accumulator exact.
    t.input.resize(kInC * kInH * kInW);
    for (auto &v : t.input)
        v = static_cast<int64_t>(rng.below(8));
    t.weight.resize(kOutC * kInC * kK * kK);
    for (auto &v : t.weight)
        v = static_cast<int64_t>(rng.below(8)) - 4;
    return t;
}

} // namespace

bool
nnVerifyConvTile(Processor &proc, uint64_t seed)
{
    const ConvTile tile = makeTile(seed);

    // Vectors: activation gather, broadcast weight, product, two
    // ping-pong accumulators, and the result.
    auto vx = proc.alloc(kLanes, kConvBits);
    auto vw = proc.alloc(kLanes, kConvBits);
    auto vp = proc.alloc(kLanes, kConvBits);
    auto va = proc.alloc(kLanes, kConvBits);
    auto vb = proc.alloc(kLanes, kConvBits);
    auto vy = proc.alloc(kLanes, kConvBits);

    for (size_t f = 0; f < kOutC; ++f) {
        proc.fillConstant(va, 0);
        bool into_b = true;
        for (size_t c = 0; c < kInC; ++c) {
            for (size_t ky = 0; ky < kK; ++ky) {
                for (size_t kx = 0; kx < kK; ++kx) {
                    const uint64_t wv =
                        static_cast<uint64_t>(
                            tile.wAt(f, c, ky, kx)) &
                        kConvMask;
                    proc.store(vx, tile.taps(c, ky, kx));
                    // Broadcast the scalar weight without touching
                    // the channel (bbop_init path).
                    proc.fillConstant(vw, wv);
                    proc.run(OpKind::Mul, vp, vx, vw);
                    if (into_b)
                        proc.run(OpKind::Add, vb, va, vp);
                    else
                        proc.run(OpKind::Add, va, vb, vp);
                    into_b = !into_b;
                }
            }
        }
        const auto &acc = into_b ? va : vb;
        proc.run(OpKind::Relu, vy, acc);
        if (!tile.matchesHost(f, proc.load(vy)))
            return false;
    }
    return true;
}

bool
nnVerifyConvTile(DeviceGroup &group, uint64_t seed,
                 bool stream_cache, NnStreamReport *report)
{
    const ConvTile tile = makeTile(seed);

    StreamExecutorOptions opts{/*maxQueuedStreams=*/2,
                               BackpressurePolicy::Block};
    opts.enableStreamCache = stream_cache;
    opts.lintMode = LintMode::Warn;
    StreamExecutor ex(group, opts);
    const uint16_t ox = ex.defineObject(kLanes, kConvBits);
    const uint16_t ow = ex.defineObject(kLanes, kConvBits);
    const uint16_t op = ex.defineObject(kLanes, kConvBits);
    const uint16_t oa = ex.defineObject(kLanes, kConvBits);
    const uint16_t ob = ex.defineObject(kLanes, kConvBits);
    const uint16_t oy = ex.defineObject(kLanes, kConvBits);

    StreamBuilder b(ex);
    for (uint16_t o : {ox, ow, op, oa, ob, oy})
        b.trsp(o);
    b.submit().wait();

    NnStreamReport rep;
    for (size_t f = 0; f < kOutC; ++f) {
        b.init(oa, 0).submit();
        PingPong acc{oa, ob};
        for (size_t c = 0; c < kInC; ++c) {
            for (size_t ky = 0; ky < kK; ++ky) {
                for (size_t kx = 0; kx < kK; ++kx) {
                    const uint64_t wv =
                        static_cast<uint64_t>(
                            tile.wAt(f, c, ky, kx)) &
                        kConvMask;
                    // Activations cross the channel; the scalar
                    // weight broadcasts in DRAM (bbop_init). The
                    // stream is self-contained: it transposes its
                    // own input, which the stream cache elides
                    // because writeObject already left the vertical
                    // image coherent.
                    ex.writeObject(ox, tile.taps(c, ky, kx));
                    const StreamResult r =
                        b.trsp(ox)
                            .init(ow, wv)
                            .binary(OpKind::Mul, op, ox, ow)
                            .accumulate(acc, op)
                            .submit()
                            .wait();
                    rep.streams += 1;
                    rep.cachedInstructions += r.cachedInstructions;
                    rep.transferActivates += r.transfer.activates;
                }
            }
        }
        const uint16_t oacc = acc.result();
        const StreamResult r = b.unary(OpKind::Relu, oy, oacc)
                                   .trspInv(oy)
                                   .submit()
                                   .wait();
        if (r.instructions != 2)
            return false;
        if (!tile.matchesHost(f, ex.readObject(oy)))
            return false;
    }
    // Every per-tap transpose must have been elided when the cache
    // is on, and none when it is off.
    if (stream_cache && ex.cacheHits() < rep.streams)
        return false;
    if (!stream_cache && ex.cacheHits() != 0)
        return false;
    if (report != nullptr)
        *report = rep;
    // Every stream must analyze clean under the submit-time lint.
    return ex.lintDiagnosticCount() == 0;
}

} // namespace simdram
