#include "apps/nn.h"

#include "baseline/host_kernels.h"
#include "common/rng.h"

namespace simdram
{

double
NnModel::macs() const
{
    double total = 0;
    for (const auto &c : convs)
        total += static_cast<double>(c.outC) * c.inC * c.k * c.k *
                 c.outH * c.outW;
    for (const auto &f : fcs)
        total += static_cast<double>(f.in) * f.out;
    return total;
}

NnModel
lenet()
{
    NnModel m;
    m.name = "LeNet";
    m.convs = {
        {1, 6, 24, 24, 5, true},
        {6, 16, 8, 8, 5, true},
    };
    m.fcs = {{256, 120}, {120, 84}, {84, 10}};
    return m;
}

NnModel
vgg13()
{
    NnModel m;
    m.name = "VGG-13";
    m.convs = {
        {3, 64, 224, 224, 3, false},   {64, 64, 224, 224, 3, true},
        {64, 128, 112, 112, 3, false}, {128, 128, 112, 112, 3, true},
        {128, 256, 56, 56, 3, false},  {256, 256, 56, 56, 3, true},
        {256, 512, 28, 28, 3, false},  {512, 512, 28, 28, 3, true},
        {512, 512, 14, 14, 3, false},  {512, 512, 14, 14, 3, true},
    };
    m.fcs = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
    return m;
}

NnModel
vgg16()
{
    NnModel m;
    m.name = "VGG-16";
    m.convs = {
        {3, 64, 224, 224, 3, false},   {64, 64, 224, 224, 3, true},
        {64, 128, 112, 112, 3, false}, {128, 128, 112, 112, 3, true},
        {128, 256, 56, 56, 3, false},  {256, 256, 56, 56, 3, false},
        {256, 256, 56, 56, 3, true},   {256, 512, 28, 28, 3, false},
        {512, 512, 28, 28, 3, false},  {512, 512, 28, 28, 3, true},
        {512, 512, 14, 14, 3, false},  {512, 512, 14, 14, 3, false},
        {512, 512, 14, 14, 3, true},
    };
    m.fcs = {{25088, 4096}, {4096, 4096}, {4096, 1000}};
    return m;
}

KernelCost
nnCost(BulkEngine &engine, const NnModel &model)
{
    // Batched inference with the standard bit-serial SIMD mapping:
    // one lane per (image, output position, output filter) with a large
    // throughput-oriented batch, so every
    // (input-channel, kernel-tap) pair is one bulk multiply plus one
    // bulk accumulate over all lanes at once. Costs are reported per
    // image (divide the per-batch totals by the batch size).
    KernelCost cost;
    constexpr size_t kAccBits = 16;
    constexpr double kBatch = 1024.0;

    for (const auto &c : model.convs) {
        const size_t lanes = static_cast<size_t>(
            kBatch * static_cast<double>(c.outH * c.outW * c.outC));
        const double taps =
            static_cast<double>(c.inC) * c.k * c.k / kBatch;
        cost.add(engine.opCost(OpKind::Mul, kAccBits, lanes), taps);
        cost.add(engine.opCost(OpKind::Add, kAccBits, lanes), taps);
        cost.add(engine.opCost(OpKind::Relu, kAccBits, lanes),
                 1.0 / kBatch);
        if (c.pool)
            cost.add(engine.opCost(OpKind::Max, kAccBits, lanes / 4),
                     3.0 / kBatch);
    }
    for (size_t i = 0; i < model.fcs.size(); ++i) {
        const auto &f = model.fcs[i];
        const size_t lanes = static_cast<size_t>(
            kBatch * static_cast<double>(f.out));
        cost.add(engine.opCost(OpKind::Mul, kAccBits, lanes),
                 static_cast<double>(f.in) / kBatch);
        cost.add(engine.opCost(OpKind::Add, kAccBits, lanes),
                 static_cast<double>(f.in) / kBatch);
        if (i + 1 < model.fcs.size())
            cost.add(engine.opCost(OpKind::Relu, kAccBits, lanes),
                     1.0 / kBatch);
    }
    return cost;
}

bool
nnVerifyConvTile(Processor &proc, uint64_t seed)
{
    // A 2-in-channel, 2-filter, 4x4-output, 3x3 convolution with
    // ReLU, executed on the SIMDRAM substrate lane-per-output-pixel.
    constexpr size_t in_c = 2, out_c = 2, out_h = 4, out_w = 4, k = 3;
    constexpr size_t in_h = out_h + k - 1, in_w = out_w + k - 1;
    constexpr size_t lanes = out_h * out_w;
    constexpr size_t w_bits = 16;
    constexpr uint64_t mask = (1ULL << w_bits) - 1;

    Rng rng(seed);
    // Small magnitudes keep the int16 accumulator exact.
    std::vector<int64_t> input(in_c * in_h * in_w);
    for (auto &v : input)
        v = static_cast<int64_t>(rng.below(8));
    std::vector<int64_t> weight(out_c * in_c * k * k);
    for (auto &v : weight)
        v = static_cast<int64_t>(rng.below(8)) - 4;

    auto in_at = [&](size_t c, size_t y, size_t x) {
        return input[(c * in_h + y) * in_w + x];
    };
    auto w_at = [&](size_t f, size_t c, size_t ky, size_t kx) {
        return weight[((f * in_c + c) * k + ky) * k + kx];
    };

    // Vectors: activation gather, broadcast weight, product, two
    // ping-pong accumulators, and the result.
    auto vx = proc.alloc(lanes, w_bits);
    auto vw = proc.alloc(lanes, w_bits);
    auto vp = proc.alloc(lanes, w_bits);
    auto va = proc.alloc(lanes, w_bits);
    auto vb = proc.alloc(lanes, w_bits);
    auto vy = proc.alloc(lanes, w_bits);

    for (size_t f = 0; f < out_c; ++f) {
        proc.fillConstant(va, 0);
        bool into_b = true;
        for (size_t c = 0; c < in_c; ++c) {
            for (size_t ky = 0; ky < k; ++ky) {
                for (size_t kx = 0; kx < k; ++kx) {
                    std::vector<uint64_t> xs(lanes);
                    for (size_t oy = 0; oy < out_h; ++oy)
                        for (size_t ox = 0; ox < out_w; ++ox)
                            xs[oy * out_w + ox] = static_cast<uint64_t>(
                                in_at(c, oy + ky, ox + kx)) & mask;
                    const uint64_t wv =
                        static_cast<uint64_t>(w_at(f, c, ky, kx)) &
                        mask;
                    proc.store(vx, xs);
                    // Broadcast the scalar weight without touching
                    // the channel (bbop_init path).
                    proc.fillConstant(vw, wv);
                    proc.run(OpKind::Mul, vp, vx, vw);
                    if (into_b)
                        proc.run(OpKind::Add, vb, va, vp);
                    else
                        proc.run(OpKind::Add, va, vb, vp);
                    into_b = !into_b;
                }
            }
        }
        const auto &acc = into_b ? va : vb;
        proc.run(OpKind::Relu, vy, acc);
        const auto got = proc.load(vy);

        // Host reference.
        for (size_t oy = 0; oy < out_h; ++oy) {
            for (size_t ox = 0; ox < out_w; ++ox) {
                int64_t sum = 0;
                for (size_t c = 0; c < in_c; ++c)
                    for (size_t ky = 0; ky < k; ++ky)
                        for (size_t kx = 0; kx < k; ++kx)
                            sum += in_at(c, oy + ky, ox + kx) *
                                   w_at(f, c, ky, kx);
                const uint64_t expect =
                    sum < 0 ? 0 : (static_cast<uint64_t>(sum) & mask);
                if (got[oy * out_w + ox] != expect)
                    return false;
            }
        }
    }
    return true;
}

} // namespace simdram
