#include "baseline/host_kernels.h"

#include "common/error.h"

namespace simdram
{

std::vector<uint64_t>
hostBulkOp(OpKind op, size_t width, const std::vector<uint64_t> &a,
           const std::vector<uint64_t> &b,
           const std::vector<uint64_t> &sel)
{
    const auto sig = signatureOf(op, width);
    if (sig.numInputs == 2 && b.size() != a.size())
        fatal("hostBulkOp: operand size mismatch");
    if (sig.hasSel && sel.size() != a.size())
        fatal("hostBulkOp: predicate size mismatch");

    std::vector<uint64_t> out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const uint64_t bi = sig.numInputs == 2 ? b[i] : 0;
        const bool si = sig.hasSel ? (sel[i] & 1) != 0 : false;
        out[i] = referenceOp(op, width, a[i], bi, si);
    }
    return out;
}

void
hostAdd32(const uint32_t *a, const uint32_t *b, uint32_t *out,
          size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

} // namespace simdram
