/**
 * @file
 * Host (scalar/auto-vectorized) implementations of the operation set.
 *
 * Used as the golden reference for functional verification of every
 * engine, and by the measured-CPU sanity benchmark that checks the
 * roofline model's order of magnitude on this machine.
 */

#ifndef SIMDRAM_BASELINE_HOST_KERNELS_H
#define SIMDRAM_BASELINE_HOST_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ops/op_kind.h"

namespace simdram
{

/**
 * Applies @p op element-wise.
 *
 * @param op Operation.
 * @param width Element width; inputs are masked.
 * @param a First operand vector.
 * @param b Second operand (ignored for unary ops; may be empty).
 * @param sel Predicate bits (if_else only; may be empty otherwise).
 * @return Per-element results per referenceOp() semantics.
 */
std::vector<uint64_t> hostBulkOp(OpKind op, size_t width,
                                 const std::vector<uint64_t> &a,
                                 const std::vector<uint64_t> &b,
                                 const std::vector<uint64_t> &sel = {});

/**
 * Tight 32-bit add loop used by the measured-CPU sanity bench
 * (written so the compiler auto-vectorizes it).
 */
void hostAdd32(const uint32_t *a, const uint32_t *b, uint32_t *out,
               size_t n);

} // namespace simdram

#endif // SIMDRAM_BASELINE_HOST_KERNELS_H
