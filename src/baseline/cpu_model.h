/**
 * @file
 * Roofline performance/energy models for the CPU and GPU baselines.
 *
 * The paper evaluates SIMDRAM against a real multicore CPU and a
 * high-end GPU. Neither is available here, so (per DESIGN.md) both
 * are modeled with a roofline: bulk element-wise kernels stream their
 * operands once, so
 *
 *   time   = max(bytes_moved / mem_bw, elements / alu_ceiling)
 *   energy = bits_moved * pJ/bit + elements * pJ/op
 *
 * Constants below are documented, deliberately favorable-to-baseline
 * round numbers for the class of system the paper used; the benches
 * compare shapes (who wins, roughly by how much), not absolute
 * reproductions of the authors' testbed.
 */

#ifndef SIMDRAM_BASELINE_CPU_MODEL_H
#define SIMDRAM_BASELINE_CPU_MODEL_H

#include <cstddef>
#include <string>

#include "common/stats.h"
#include "ops/op_kind.h"

namespace simdram
{

/** Roofline parameters for a host baseline. */
struct BaselineParams
{
    std::string name;        ///< Engine name for reports.
    double memBwGBs = 0;     ///< Sustained memory bandwidth.
    double pjPerBit = 0;     ///< Memory-system energy per bit moved.
    double pjPerOp = 0;      ///< Core/ALU energy per element op.
    double aluGopsSimple = 0;///< ALU ceiling, cheap ops (32-bit).
    double aluGopsMul = 0;   ///< ALU ceiling, multiply (32-bit).
    double aluGopsDiv = 0;   ///< ALU ceiling, divide (32-bit).
};

/**
 * @return Parameters for the multicore CPU baseline: a desktop-class
 *         part on one DDR4-2400 channel (the same memory system
 *         SIMDRAM computes inside, which is the comparison the paper
 *         makes).
 */
BaselineParams cpuParams();

/**
 * @return Parameters for the GPU baseline: a high-end HBM2 part,
 *         modeled with the effective bandwidth short bulk kernels
 *         sustain (launch/ecc/replay overheads included).
 */
BaselineParams gpuParams();

/** @return Bytes moved per element for @p op at @p width. */
double bytesPerElement(OpKind op, size_t width);

/**
 * Runs the roofline for one bulk operation.
 *
 * @param p Baseline parameters.
 * @param op Operation.
 * @param width Element width in bits.
 * @param elements Number of elements.
 * @return Latency/energy/throughput of the modeled execution.
 */
RunResult modelRun(const BaselineParams &p, OpKind op, size_t width,
                   size_t elements);

} // namespace simdram

#endif // SIMDRAM_BASELINE_CPU_MODEL_H
