#include "baseline/cpu_model.h"

#include <algorithm>

namespace simdram
{

BaselineParams
cpuParams()
{
    BaselineParams p;
    p.name = "CPU";
    // One DDR4-2400 channel: 19.2 GB/s peak, ~80% sustained on a
    // read/write-mixed stream.
    p.memBwGBs = 15.4;
    // End-to-end memory-system energy (DRAM + channel + cache
    // hierarchy) per bit for a streaming access.
    p.pjPerBit = 22.0;
    // Core pipeline energy per element operation (amortized over
    // SIMD lanes).
    p.pjPerOp = 180.0;
    // 8 cores x AVX2: cheap ops are never the bottleneck.
    p.aluGopsSimple = 150.0;
    p.aluGopsMul = 60.0;
    // Integer division does not vectorize; ~20-cycle scalar latency
    // across 8 cores.
    p.aluGopsDiv = 1.2;
    return p;
}

BaselineParams
gpuParams()
{
    BaselineParams p;
    p.name = "GPU";
    // High-end HBM2 GPU: 900 GB/s peak; short bulk kernels sustain a
    // fraction of it once launch and DRAM inefficiencies are paid.
    p.memBwGBs = 220.0;
    // HBM2 + on-package interconnect energy per bit.
    p.pjPerBit = 7.0;
    p.pjPerOp = 25.0;
    p.aluGopsSimple = 4000.0;
    p.aluGopsMul = 2000.0;
    p.aluGopsDiv = 300.0;
    return p;
}

double
bytesPerElement(OpKind op, size_t width)
{
    const auto sig = signatureOf(op, width);
    double bits = static_cast<double>(sig.numInputs) *
                  static_cast<double>(width);
    if (sig.hasSel)
        bits += 1.0;
    bits += static_cast<double>(sig.outWidth);
    return bits / 8.0;
}

RunResult
modelRun(const BaselineParams &p, OpKind op, size_t width,
         size_t elements)
{
    const double bytes =
        bytesPerElement(op, width) * static_cast<double>(elements);

    double alu_gops = p.aluGopsSimple;
    if (op == OpKind::Mul)
        alu_gops = p.aluGopsMul;
    else if (op == OpKind::Div)
        alu_gops = p.aluGopsDiv;
    // Wider elements occupy proportionally more SIMD lanes.
    alu_gops *= 32.0 / static_cast<double>(std::max<size_t>(width, 8));

    const double mem_ns = bytes / p.memBwGBs;
    const double alu_ns = static_cast<double>(elements) / alu_gops;

    RunResult r;
    r.engine = p.name;
    r.elements = elements;
    r.latencyNs = std::max(mem_ns, alu_ns);
    r.energyPj = bytes * 8.0 * p.pjPerBit +
                 static_cast<double>(elements) * p.pjPerOp;
    return r;
}

} // namespace simdram
