#include "runtime/stream_executor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "baseline/host_kernels.h"
#include "common/error.h"
#include "stream/passes.h"

namespace simdram
{

namespace detail
{

/** Shared completion state of one submitted stream. */
struct StreamState
{
    std::mutex mu;
    std::condition_variable cv;
    /** Devices that have not finished this stream yet. */
    size_t remaining = 0;
    StreamResult result;
    /** First error raised during execution, if any. */
    std::exception_ptr error;
    /** Submit-ENTRY time: origin of the end-to-end wall clock
     *  (set before the submit lock and any backpressure wait). */
    std::chrono::steady_clock::time_point t0;
    /** Submission sequence number (error attribution). */
    uint64_t seq = 0;
};

} // namespace detail

/** One entry of the group-wide bbop object table. */
struct StreamExecutor::Object
{
    size_t elements = 0;
    size_t bits = 0;
    std::vector<uint64_t> hostImage;
    /** Sharded vertical storage, reserved at defineObject(). */
    ShardedVec vec;
    /** Layout shadow state, guarded by submit_mu_. */
    bool vertical = false;
    /** Stream-cache shadow state, guarded by submit_mu_. */
    CacheState cache;
    /**
     * Tombstone set by releaseObject(): the group allocation is gone
     * and every further reference to the id is a typed BbopError.
     */
    bool released = false;
};

/**
 * One validated instruction with its operands resolved: the Object
 * (for host-image access) and, per device, the ShardView of every
 * operand. Views are resolved once at submission, so a worker's hot
 * path drives its Processor directly — no group bookkeeping, no
 * locks beyond the device mutex it already holds.
 */
struct StreamExecutor::PreparedInstr
{
    BbopInstr instr;
    /** Elided by the stream cache: workers skip it entirely. */
    bool skip = false;
    Object *dst = nullptr;
    Object *src1 = nullptr;
    Object *src2 = nullptr;
    Object *sel = nullptr;
    /** Per-device views of each operand, shared per object. */
    using Views = PreparedInstrViews;
    Views dstV, src1V, src2V, selV;
};

/** Per-device worker thread and its FIFO of stream jobs. */
struct StreamExecutor::Worker
{
    struct Job
    {
        std::shared_ptr<detail::StreamState> state;
        std::shared_ptr<const std::vector<PreparedInstr>> prog;
    };

    std::thread th;
    std::mutex mu;
    std::condition_variable cv;      ///< New work or stop.
    std::condition_variable idle_cv; ///< Queue drained and not busy.
    std::condition_variable space_cv; ///< A queued job was popped.
    std::deque<Job> q;
    bool busy = false;
    bool stop = false;
};

/**
 * Per-device verification context of one in-flight stream: the
 * pre-stream snapshot of every operand shard this device touches
 * (restore source for retry / side-effect-free failure) and the
 * host-computed shadow of what a fault-free execution must produce.
 * Built once per job under the device lock; attempts re-verify
 * against it.
 */
struct StreamExecutor::ShadowCtx
{
    struct ObjCtx
    {
        Object *obj = nullptr;
        /** This device's shard of the object. */
        DeviceGroup::ShardView view;
        /** Pre-stream vertical lanes (restore + shadow seed). */
        std::vector<uint64_t> initLanes;
        /** Pre-stream host-image slice (restore + shadow seed). */
        std::vector<uint64_t> initHost;
        /** Expected post-stream vertical lanes. */
        std::vector<uint64_t> shadow;
        /** Expected post-stream host-image slice. */
        std::vector<uint64_t> shadowHost;
        /** True if any executed instruction writes the object. */
        bool written = false;
        /** Program index of the last instruction writing it. */
        size_t lastWriter = 0;
    };

    std::map<const Object *, size_t> index;
    std::vector<ObjCtx> objs;
};

namespace
{

constexpr size_t kCleanRun = static_cast<size_t>(-1);

uint64_t
laneMask(size_t bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

/**
 * The Checksum-mode signature of a lane vector: an XOR fold plus the
 * total popcount. Any corruption confined to one lane flips both the
 * fold and (except for compensating flips) the count; corruptions
 * that preserve both folds alias — DualModular exists for those.
 */
std::pair<uint64_t, uint64_t>
foldSignature(const std::vector<uint64_t> &lanes)
{
    uint64_t fold = 0;
    uint64_t pops = 0;
    for (uint64_t w : lanes) {
        fold ^= w;
        pops += static_cast<uint64_t>(std::popcount(w));
    }
    return {fold, pops};
}

} // namespace

StreamExecutor::StreamExecutor(DeviceGroup &group,
                               StreamExecutorOptions opts)
    : group_(&group), opts_(opts)
{
    const size_t devices = group.deviceCount();
    fault_counts_ = std::make_unique<std::atomic<uint64_t>[]>(devices);
    healthy_ = std::make_unique<std::atomic<bool>[]>(devices);
    for (size_t d = 0; d < devices; ++d) {
        fault_counts_[d].store(0, std::memory_order_relaxed);
        healthy_[d].store(true, std::memory_order_relaxed);
    }
    workers_.reserve(devices);
    for (size_t d = 0; d < devices; ++d)
        workers_.push_back(std::make_unique<Worker>());
    for (size_t d = 0; d < devices; ++d)
        workers_[d]->th =
            std::thread([this, d] { workerMain(d); });
}

StreamExecutor::~StreamExecutor()
{
    sync();
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        w->stop = true;
        w->cv.notify_all();
    }
    for (auto &w : workers_)
        w->th.join();
}

size_t
StreamExecutor::workerCount() const
{
    return workers_.size();
}

// The lifetime counters are written only under submit_mu_ but read
// lock-free: a getter must never queue behind (or race with) a
// submitter that holds the lock across a Block-mode backpressure
// wait. Relaxed ordering is enough — each counter is an independent
// monotonic statistic, not a synchronization point.

size_t
StreamExecutor::queueHighWatermark() const
{
    return high_watermark_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::cacheHits() const
{
    return cache_trsp_hits_.load(std::memory_order_relaxed) +
           cache_init_hits_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::cacheTrspHits() const
{
    return cache_trsp_hits_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::cacheInitHits() const
{
    return cache_init_hits_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::optimizedInstructionCount() const
{
    return optimized_count_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::lintDiagnosticCount() const
{
    return lint_count_.load(std::memory_order_relaxed);
}

uint64_t
StreamExecutor::deviceFaultCount(size_t d) const
{
    if (d >= workers_.size())
        fatal("StreamExecutor: bad device index");
    return fault_counts_[d].load(std::memory_order_relaxed);
}

bool
StreamExecutor::deviceHealthy(size_t d) const
{
    if (d >= workers_.size())
        fatal("StreamExecutor: bad device index");
    return healthy_[d].load(std::memory_order_relaxed);
}

size_t
StreamExecutor::quarantinedDeviceCount() const
{
    size_t n = 0;
    for (size_t d = 0; d < workers_.size(); ++d)
        if (!healthy_[d].load(std::memory_order_relaxed))
            ++n;
    return n;
}

std::vector<StreamDiagnostic>
StreamExecutor::drainDiagnostics()
{
    MutexLock lock(submit_mu_);
    std::vector<StreamDiagnostic> out = std::move(lint_diags_);
    lint_diags_.clear();
    return out;
}

StreamExecutor::Object &
StreamExecutor::object(uint16_t id)
{
    if (id >= objects_.size())
        bbopError("StreamExecutor: unknown object id d" +
                  std::to_string(id));
    if (objects_[id]->released)
        bbopError("StreamExecutor: released object id d" +
                  std::to_string(id));
    return *objects_[id];
}

BbopObjectShape
StreamExecutor::shape(uint16_t id) const
{
    const Object &obj = *objects_[id];
    // The validator seeds itself from every table entry, so a
    // tombstone must not throw here; its zero shape instead fails
    // any instruction that references the released id (typed
    // BbopError, stream rejected as a unit).
    if (obj.released)
        return BbopObjectShape{};
    return {obj.elements, obj.bits, obj.vertical};
}

BbopObjectShape
StreamExecutor::objectShape(uint16_t id) const
{
    MutexLock lock(submit_mu_);
    if (id >= objects_.size())
        bbopError("StreamExecutor: unknown object id d" +
                  std::to_string(id));
    if (objects_[id]->released)
        bbopError("StreamExecutor: released object id d" +
                  std::to_string(id));
    return shape(id);
}

uint16_t
StreamExecutor::defineObject(size_t elements, size_t bits)
{
    auto obj = std::make_unique<Object>();
    obj->elements = elements;
    obj->bits = bits;
    obj->hostImage.assign(elements, 0);
    // Reserving the vertical storage up front keeps workers free of
    // allocation: bbop_trsp only moves data. Rows in the functional
    // model exist either way, so this costs no extra memory. The
    // alloc happens before submit_mu_ so defineObject never nests
    // the device mutexes inside the submit lock.
    obj->vec = group_->alloc(elements, bits);
    MutexLock lock(submit_mu_);
    if (objects_.size() >= kNoObject)
        fatal("StreamExecutor: object table full");
    objects_.push_back(std::move(obj));
    return static_cast<uint16_t>(objects_.size() - 1);
}

void
StreamExecutor::releaseObject(uint16_t id)
{
    // Same ordering as writeObject: exclude submitters first, then
    // drain, so no stream referencing the object can be in flight or
    // sneak in while we free the storage.
    MutexLock lock(submit_mu_);
    sync();
    Object &obj = object(id); // BbopError on unknown/double release
    group_->release(obj.vec);
    obj.released = true;
    obj.vec = ShardedVec{};
    obj.hostImage = std::vector<uint64_t>();
    obj.vertical = false;
    obj.cache = CacheState{};
}

void
StreamExecutor::writeObject(uint16_t id,
                            const std::vector<uint64_t> &data)
{
    // Take submit_mu_ BEFORE draining: a submit() sneaking in
    // between sync() and the host-image write would put workers back
    // in flight while we mutate hostImage. Workers never take
    // submit_mu_, so they can still drain while we hold it.
    MutexLock lock(submit_mu_);
    sync();
    Object &obj = object(id);
    if (data.size() != obj.elements)
        fatal("StreamExecutor::writeObject: element count mismatch");
    obj.hostImage = data;
    obj.cache.hasConst = false;
    if (obj.vertical) {
        // Keep the vertical copy coherent, as the dispatcher does on
        // a horizontal write to a transposed object — which also
        // means a subsequent trsp of this object is redundant and
        // the stream cache may elide it.
        group_->store(obj.vec, obj.hostImage);
        obj.cache.vertClean = true;
        obj.cache.cleanGen = group_->mutationGen(obj.vec);
    } else {
        obj.cache.vertClean = false;
    }
}

std::vector<uint64_t>
StreamExecutor::readObject(uint16_t id)
{
    // Same ordering as writeObject: exclude submitters, then drain.
    MutexLock lock(submit_mu_);
    sync();
    return object(id).hostImage;
}

StreamExecutor::PreparedSegment
StreamExecutor::resolveSegment(
    const std::vector<BbopInstr> &seg,
    std::vector<CacheState> &cache,
    std::map<const Object *, PreparedInstrViews> &view_cache)
{
    // The segment has already been validated (twice: the original
    // program, then the optimized lowering — see submitLocked); this
    // only resolves operands and decides stream-cache elisions.

    // Shard geometry is immutable after alloc(), so resolve each
    // distinct object's per-device views once per submission; the
    // instructions share them by pointer, across segments too.
    const size_t devices = workers_.size();
    auto viewsOf = [&](const Object *o) -> PreparedInstr::Views {
        auto it = view_cache.find(o);
        if (it == view_cache.end()) {
            std::vector<DeviceGroup::ShardView> v;
            v.reserve(devices);
            for (size_t d = 0; d < devices; ++d)
                v.push_back(group_->shardView(o->vec, d));
            it = view_cache
                     .emplace(o,
                              std::make_shared<const std::vector<
                                  DeviceGroup::ShardView>>(
                                  std::move(v)))
                     .first;
        }
        return it->second;
    };

    size_t cached_trsp = 0;
    size_t cached_init = 0;
    const bool use_cache = opts_.enableStreamCache;
    // An entry is only trustworthy while no out-of-band DeviceGroup
    // write touched the backing vector since it was recorded.
    auto cacheValid = [&](const Object *o, const CacheState &cs) {
        return cs.vertClean &&
               cs.cleanGen == group_->mutationGen(o->vec);
    };

    std::vector<PreparedInstr> out;
    out.reserve(seg.size());
    for (const BbopInstr &in : seg) {
        // Resolve the well-formed instruction's operands.
        PreparedInstr pi;
        pi.instr = in;
        switch (in.opcode) {
          case BbopOpcode::Trsp:
          case BbopOpcode::TrspInv:
          case BbopOpcode::Init:
            pi.dst = objects_[in.dst].get();
            break;
          case BbopOpcode::ShiftL:
          case BbopOpcode::ShiftR:
            pi.dst = objects_[in.dst].get();
            pi.src1 = objects_[in.src1].get();
            break;
          case BbopOpcode::Op: {
            const auto sig = signatureOf(in.op, in.width);
            pi.dst = objects_[in.dst].get();
            pi.src1 = objects_[in.src1].get();
            if (sig.numInputs == 2)
                pi.src2 = objects_[in.src2].get();
            if (sig.hasSel)
                pi.sel = objects_[in.sel].get();
            break;
          }
        }

        // Stream-cache decision (submission order == execution
        // order, so this pass sees exactly the state each
        // instruction will observe). A redundant trsp/trsp_inv/init
        // is marked skip; every executed instruction updates the
        // scratch shadow.
        switch (in.opcode) {
          case BbopOpcode::Trsp:
          case BbopOpcode::TrspInv: {
            CacheState &cs = cache[in.dst];
            if (use_cache && cacheValid(pi.dst, cs)) {
                // Vertical and horizontal images already coincide:
                // re-running either transposition rewrites identical
                // data.
                pi.skip = true;
                ++cached_trsp;
                break;
            }
            if (in.opcode == BbopOpcode::TrspInv)
                cs.hasConst = false; // host := unknown vertical data
            cs.vertClean = true;
            cs.cleanGen = group_->mutationGen(pi.dst->vec);
            break;
          }
          case BbopOpcode::Init: {
            CacheState &cs = cache[in.dst];
            const uint64_t imm = in.initImmediate();
            if (use_cache && cacheValid(pi.dst, cs) && cs.hasConst &&
                cs.constVal == imm) {
                pi.skip = true;
                ++cached_init;
                break;
            }
            cs.hasConst = true;
            cs.constVal = imm;
            cs.vertClean = true;
            cs.cleanGen = group_->mutationGen(pi.dst->vec);
            break;
          }
          case BbopOpcode::ShiftL:
          case BbopOpcode::ShiftR:
          case BbopOpcode::Op: {
            // The op writes the destination's vertical storage only:
            // the horizontal image goes stale and any constant-ness
            // is gone.
            CacheState &cs = cache[in.dst];
            cs.vertClean = false;
            cs.hasConst = false;
            break;
          }
        }

        // Attach every operand's per-device shard views, so the
        // workers never touch group bookkeeping.
        if (pi.dst != nullptr)
            pi.dstV = viewsOf(pi.dst);
        if (pi.src1 != nullptr)
            pi.src1V = viewsOf(pi.src1);
        if (pi.src2 != nullptr)
            pi.src2V = viewsOf(pi.src2);
        if (pi.sel != nullptr)
            pi.selV = viewsOf(pi.sel);
        out.push_back(std::move(pi));
    }

    PreparedSegment p;
    p.prog = std::make_shared<const std::vector<PreparedInstr>>(
        std::move(out));
    p.cachedTrsp = cached_trsp;
    p.cachedInit = cached_init;
    return p;
}

void
StreamExecutor::reserveQueueSpace(size_t segments)
{
    if (opts_.maxQueuedStreams == 0 ||
        opts_.onFull != BackpressurePolicy::Reject)
        return;
    // submit_mu_ is held: no other submitter can enqueue, and
    // workers only ever shrink their queues, so space observed here
    // still exists when the caller pushes. The whole submission is
    // rejected unless ALL of its segments fit — a partially enqueued
    // program would not be side-effect-free.
    for (auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (w->q.size() + segments > opts_.maxQueuedStreams)
            throw StreamRejectedError(
                "StreamExecutor: device queue full (" +
                std::to_string(opts_.maxQueuedStreams) +
                " streams queued)");
    }
}

StreamHandle
StreamExecutor::submit(const std::vector<BbopInstr> &stream)
{
    // The end-to-end clock starts HERE, before the submit lock: lock
    // contention and the Block-mode backpressure wait are time the
    // caller's request spends in the service, and wallNs promises
    // submit-to-last-device-completion.
    const auto entry = std::chrono::steady_clock::now();
    MutexLock lock(submit_mu_);
    // A raw stream is a one-segment program: lift, optimize,
    // dispatch. Fusion has nothing to merge, so exactly one handle
    // comes back.
    return submitLocked(StreamIR::lift(stream), entry).front();
}

std::vector<StreamHandle>
StreamExecutor::submit(const StreamIR &ir)
{
    const auto entry = std::chrono::steady_clock::now();
    MutexLock lock(submit_mu_);
    return submitLocked(ir, entry);
}

std::vector<StreamHandle>
StreamExecutor::submitLocked(const StreamIR &ir,
                             std::chrono::steady_clock::time_point entry)
{
    if (ir.segments == 0)
        bbopError("StreamExecutor: program has no segments");
    for (const auto &n : ir.nodes)
        if (n.segment >= ir.segments)
            bbopError("StreamExecutor: node segment out of range");

    // Validate the ORIGINAL program as a unit: a malformed
    // instruction anywhere rejects the whole submission with nothing
    // touched. All rule checking lives in the shared validator (the
    // same one the BbopDispatcher uses); it validates against a
    // scratch copy of the layout state, committed only on acceptance.
    BbopValidator validator(*this);
    for (const auto &n : ir.nodes)
        validator.check(n.instr);

    // Run the enabled optimizer passes on a copy — under
    // validatePasses, one pass at a time with the analyzer checking
    // fact preservation in between (same resulting program).
    StreamIR opt = ir;
    const PassOptions popts{
        .trspHoist = opts_.enableTrspHoist,
        .deadWriteElim = opts_.enableDeadWriteElim,
        .fusion = opts_.enableFusion,
    };
    PassStats pstats;
    if (opts_.validatePasses) {
        const TranslationValidation tv = runPassesValidated(
            opt, popts, *this,
            AnalyzerOptions{EntryAssumption::FromView});
        if (!tv.ok())
            throw PassValidationError(
                "StreamExecutor: translation validation failed: " +
                tv.failures.front().message);
        pstats = tv.stats;
    } else {
        pstats = runPasses(opt, popts);
    }

    // Submit-time lint over the optimized program (dead nodes are
    // transparent, so node indices in diagnostics still index the
    // SUBMITTED program). Strict rejects Error findings here — before
    // queue reservation and any commit, as side-effect-free as a
    // validator rejection. Diagnostics are buffered locally and
    // published only if the submission is accepted, so a rejected
    // stream (lint or backpressure) leaves the diagnostic channel
    // untouched too.
    std::vector<StreamDiagnostic> lint;
    if (opts_.lintMode != LintMode::Off) {
        AnalysisResult ar = analyzeStream(
            opt, *this, AnalyzerOptions{EntryAssumption::FromView});
        if (opts_.lintMode == LintMode::Strict) {
            for (const StreamDiagnostic &d : ar.diagnostics)
                if (d.severity == LintSeverity::Error)
                    throw StreamLintError(
                        "StreamExecutor: stream rejected by lint: " +
                        d.message);
        }
        lint = std::move(ar.diagnostics);
    }

    // Lower and re-validate the optimized concatenation: passes must
    // preserve validity and the final layout state (see passes.h), so
    // this is purely a safety net against pass bugs.
    const auto segs = opt.lower();
    {
        BbopValidator recheck(*this);
        for (const auto &seg : segs)
            for (const auto &in : seg)
                recheck.check(in);
    }

    // Per-final-segment as-submitted and pass-removed counts. A fused
    // segment's handle covers every original node folded into it.
    std::vector<size_t> original(opt.segments, 0);
    std::vector<size_t> removed(opt.segments, 0);
    for (const auto &n : opt.nodes) {
        ++original[n.segment];
        if (n.dead)
            ++removed[n.segment];
    }

    // Resolve every segment against one shared stream-cache scratch
    // (committed only on acceptance) and one shared view cache.
    std::vector<CacheState> cache(objects_.size());
    for (size_t i = 0; i < objects_.size(); ++i)
        cache[i] = objects_[i]->cache;
    std::map<const Object *, PreparedInstrViews> views;
    std::vector<PreparedSegment> prepared;
    prepared.reserve(segs.size());
    for (const auto &seg : segs)
        prepared.push_back(resolveSegment(seg, cache, views));

    // Apply Reject backpressure BEFORE committing anything: a
    // submission turned away by a full queue must be as
    // side-effect-free as a malformed one. (Block waits per segment
    // below instead: committing first is invisible — every observer
    // of the shadow state takes submit_mu_, which we hold.)
    reserveQueueSpace(segs.size());

    // Accepted: commit the layout of the ORIGINAL program (passes
    // preserve the final layout state) and the cache shadows.
    const std::vector<bool> &layout = validator.layout();
    for (size_t i = 0; i < objects_.size(); ++i) {
        objects_[i]->vertical = layout[i];
        objects_[i]->cache = cache[i];
    }
    // Single writer (submit_mu_ held), lock-free readers: relaxed
    // read-modify-writes are race-free and never lost.
    for (const auto &p : prepared) {
        cache_trsp_hits_.fetch_add(p.cachedTrsp,
                                   std::memory_order_relaxed);
        cache_init_hits_.fetch_add(p.cachedInit,
                                   std::memory_order_relaxed);
    }
    optimized_count_.fetch_add(pstats.removed(),
                               std::memory_order_relaxed);
    // Publish the lint findings only now that the submission is
    // committed: the counter is the wait-free lifetime total, the
    // buffer feeds drainDiagnostics() (both under submit_mu_).
    if (!lint.empty()) {
        lint_count_.fetch_add(lint.size(), std::memory_order_relaxed);
        for (StreamDiagnostic &d : lint)
            lint_diags_.push_back(std::move(d));
    }

    // One job per final segment, pushed in submission order. Under
    // Block, wait for room before each push — workers drain their
    // FIFOs independently of submit_mu_, so this cannot deadlock.
    const bool block = opts_.maxQueuedStreams > 0 &&
                       opts_.onFull == BackpressurePolicy::Block;
    std::vector<StreamHandle> handles;
    handles.reserve(segs.size());
    for (size_t s = 0; s < segs.size(); ++s) {
        double blockedNs = 0.0;
        if (block) {
            const auto t0 = std::chrono::steady_clock::now();
            for (auto &w : workers_) {
                std::unique_lock<std::mutex> wl(w->mu);
                w->space_cv.wait(wl, [&] {
                    return w->q.size() < opts_.maxQueuedStreams;
                });
            }
            blockedNs = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        }

        auto st = std::make_shared<detail::StreamState>();
        st->remaining = workers_.size();
        st->result.instructions = original[s];
        st->result.optimizedInstructions = removed[s];
        st->result.cachedTrspInstructions = prepared[s].cachedTrsp;
        st->result.cachedInitInstructions = prepared[s].cachedInit;
        st->result.cachedInstructions =
            prepared[s].cachedTrsp + prepared[s].cachedInit;
        st->result.backpressureWaitNs = blockedNs;
        st->seq = stream_seq_.fetch_add(1, std::memory_order_relaxed);
        // Every segment's stream clock is anchored at the SUBMIT
        // ENTRY instant, not "now": by this point the submission may
        // already have waited for the lock and (Block mode) for
        // queue space, and a later segment's e2e latency legitimately
        // includes its predecessors' — that is what the submitter
        // experiences.
        st->t0 = entry;

        size_t depth = 0;
        for (auto &w : workers_) {
            std::lock_guard<std::mutex> wl(w->mu);
            w->q.push_back(Worker::Job{st, prepared[s].prog});
            depth = std::max(depth, w->q.size());
            w->cv.notify_one();
        }
        st->result.queueDepthAtSubmit = depth;
        if (depth > high_watermark_.load(std::memory_order_relaxed))
            high_watermark_.store(depth, std::memory_order_relaxed);

        StreamHandle h;
        h.state_ = std::move(st);
        handles.push_back(std::move(h));
    }
    return handles;
}

StreamHandle
StreamExecutor::submit(const std::vector<uint64_t> &encoded)
{
    const auto entry = std::chrono::steady_clock::now();
    // Decode the whole stream before validating any of it, so a
    // stream mixing decode and validation errors is rejected as a
    // unit either way, with no partial effects.
    std::vector<BbopInstr> stream;
    stream.reserve(encoded.size());
    for (uint64_t w : encoded)
        stream.push_back(decodeBbop(w)); // throws BbopError
    MutexLock lock(submit_mu_);
    return submitLocked(StreamIR::lift(stream), entry).front();
}

void
StreamExecutor::sync()
{
    for (auto &w : workers_) {
        std::unique_lock<std::mutex> lock(w->mu);
        w->idle_cv.wait(lock,
                        [&] { return w->q.empty() && !w->busy; });
    }
}

void
StreamExecutor::workerMain(size_t d)
{
    Worker &w = *workers_[d];
    for (;;) {
        Worker::Job job;
        {
            std::unique_lock<std::mutex> lock(w.mu);
            w.cv.wait(lock,
                      [&] { return w.stop || !w.q.empty(); });
            if (w.q.empty())
                return; // stop requested and queue drained
            job = std::move(w.q.front());
            w.q.pop_front();
            w.busy = true;
            w.space_cv.notify_all(); // a blocked submitter may enter
        }

        std::exception_ptr err;
        DramStats dcompute, dtransfer;
        size_t attempts = 1;
        size_t faults = 0;
        int recoveredOn = -1;
        {
            auto devlock = group_->lockDevice(d);
            const DramStats c0 = group_->deviceComputeStats(d);
            const DramStats t0 = group_->deviceTransferStats(d);
            err = runJob(d, devlock, *job.state, *job.prog, attempts,
                         faults, recoveredOn);
            dcompute = diff(group_->deviceComputeStats(d), c0);
            dtransfer = diff(group_->deviceTransferStats(d), t0);
        }

        {
            detail::StreamState &st = *job.state;
            std::lock_guard<std::mutex> lock(st.mu);
            st.result.compute = merge(st.result.compute, dcompute);
            st.result.transfer =
                merge(st.result.transfer, dtransfer);
            st.result.attempts = std::max(st.result.attempts,
                                          attempts);
            st.result.faultsDetected += faults;
            if (recoveredOn != -1 &&
                st.result.recoveredOnDevice == -1)
                st.result.recoveredOnDevice = recoveredOn;
            if (err && !st.error)
                st.error = err;
            if (--st.remaining == 0) {
                st.result.wallNs =
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - st.t0)
                        .count();
                st.cv.notify_all();
            }
        }

        {
            std::lock_guard<std::mutex> lock(w.mu);
            w.busy = false;
            if (w.q.empty())
                w.idle_cv.notify_all();
        }
    }
}

std::exception_ptr
StreamExecutor::runJob(size_t d,
                       std::unique_lock<std::mutex> &devlock,
                       const detail::StreamState &st,
                       const std::vector<PreparedInstr> &prog,
                       size_t &attempts, size_t &faults,
                       int &recoveredOn)
{
    attempts = 1;
    faults = 0;
    recoveredOn = -1;

    // Per-stream deadline over the end-to-end clock (submit entry →
    // here). A stream that spent its budget queued behind a pinned
    // or slow device fails typed instead of executing late.
    auto deadlineError = [&]() -> std::exception_ptr {
        if (opts_.deadlineUs <= 0.0)
            return nullptr;
        const double elapsedUs =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - st.t0)
                .count();
        if (elapsedUs <= opts_.deadlineUs)
            return nullptr;
        return std::make_exception_ptr(StreamDeadlineError(
            "StreamExecutor: stream s" + std::to_string(st.seq) +
            " exceeded its " + std::to_string(opts_.deadlineUs) +
            "us deadline on device d" + std::to_string(d)));
    };
    if (auto e = deadlineError())
        return e;

    // A quarantined device goes straight to the fallback path: its
    // TRA-free instructions are trustworthy, its bbop ops are not.
    if (!healthy_[d].load(std::memory_order_relaxed)) {
        try {
            fallbackJob(d, prog, recoveredOn);
        } catch (...) {
            return std::current_exception();
        }
        return nullptr;
    }

    // IntegrityMode::Off is the pre-existing hot path: no snapshot,
    // no verification loads, no overhead.
    if (opts_.integrityMode == IntegrityMode::Off) {
        try {
            for (const PreparedInstr &pi : prog)
                execOn(d, pi);
        } catch (...) {
            return std::current_exception();
        }
        return nullptr;
    }

    ShadowCtx ctx;
    try {
        prepareShadow(d, prog, ctx);
    } catch (...) {
        return std::current_exception();
    }

    const size_t maxAttempts =
        std::max<size_t>(opts_.retryPolicy.maxAttempts, 1);
    for (size_t attempt = 1;; ++attempt) {
        attempts = attempt;
        if (attempt > 1) {
            if (auto e = deadlineError())
                return e; // state already restored below
        }

        size_t badOp = kCleanRun;
        try {
            badOp = executeChecked(d, prog, ctx);
        } catch (...) {
            // Execution errors (FatalError et al.) are not faults:
            // no retry, propagate as before.
            return std::current_exception();
        }
        if (badOp == kCleanRun)
            return nullptr;

        // Detected corruption: count it, undo it, then recover.
        ++faults;
        const uint64_t total =
            fault_counts_[d].fetch_add(1,
                                       std::memory_order_relaxed) +
            1;
        try {
            restoreJob(d, ctx);
        } catch (...) {
            return std::current_exception();
        }
        if (opts_.quarantineFaultThreshold > 0 &&
            total >= opts_.quarantineFaultThreshold)
            healthy_[d].store(false, std::memory_order_relaxed);

        if (!healthy_[d].load(std::memory_order_relaxed)) {
            // Quarantined: drain this stream through the fallback
            // path (one more attempt) instead of burning the retry
            // budget against a device we no longer trust.
            try {
                fallbackJob(d, prog, recoveredOn);
            } catch (...) {
                return std::current_exception();
            }
            attempts = attempt + 1;
            return nullptr;
        }

        if (attempt >= maxAttempts)
            return std::make_exception_ptr(StreamFaultError(
                "StreamExecutor: stream s" + std::to_string(st.seq) +
                    " failed integrity verification on device d" +
                    std::to_string(d) + " at op #" +
                    std::to_string(badOp) + " (" +
                    std::to_string(attempt) +
                    " attempts; device state restored)",
                d, st.seq, badOp));

        // Capped exponential backoff, slept OUTSIDE the device lock
        // so synchronous group users and the quarantine fallback of
        // other workers are not blocked behind our wait.
        const RetryPolicy &rp = opts_.retryPolicy;
        if (rp.baseBackoffUs > 0.0) {
            const unsigned shift = static_cast<unsigned>(
                std::min<size_t>(attempt - 1, 30));
            const double backoffUs =
                std::min(rp.baseBackoffUs *
                             static_cast<double>(1ULL << shift),
                         rp.maxBackoffUs);
            devlock.unlock();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::micro>(
                    backoffUs));
            devlock.lock();
        }
    }
}

void
StreamExecutor::prepareShadow(size_t d,
                              const std::vector<PreparedInstr> &prog,
                              ShadowCtx &ctx)
{
    // Find-or-create the per-object context: the first touch loads
    // the device lanes (snapshot doubling as the shadow seed) and
    // copies this device's host-image slice. Returns an INDEX, not a
    // reference: a first touch grows ctx.objs and would invalidate
    // every outstanding ObjCtx reference, so each use below
    // re-derives its reference after all operand touches are done.
    auto touch = [&](Object *o,
                     const DeviceGroup::ShardView &v) -> size_t {
        auto it = ctx.index.find(o);
        if (it == ctx.index.end()) {
            ShadowCtx::ObjCtx oc;
            oc.obj = o;
            oc.view = v;
            oc.initLanes.resize(v.count);
            if (v.count != 0)
                v.proc->loadInto(v.handle, oc.initLanes.data());
            oc.initHost.assign(
                o->hostImage.begin() +
                    static_cast<std::ptrdiff_t>(v.offset),
                o->hostImage.begin() +
                    static_cast<std::ptrdiff_t>(v.offset + v.count));
            oc.shadow = oc.initLanes;
            oc.shadowHost = oc.initHost;
            it = ctx.index.emplace(o, ctx.objs.size()).first;
            ctx.objs.push_back(std::move(oc));
        }
        return it->second;
    };

    // Simulate the program in order against the shadow: simulation
    // order equals this device's execution order, and every device
    // owns a disjoint slice, so host-image updates compose exactly.
    for (size_t i = 0; i < prog.size(); ++i) {
        const PreparedInstr &pi = prog[i];
        if (pi.skip)
            continue;
        const DeviceGroup::ShardView &dv = (*pi.dstV)[d];
        if (dv.count == 0)
            continue; // execOn skips the whole instruction too
        const BbopInstr &in = pi.instr;
        const size_t dstIdx = touch(pi.dst, dv);
        const uint64_t mask = laneMask(pi.dst->bits);
        switch (in.opcode) {
          case BbopOpcode::Trsp: {
            ShadowCtx::ObjCtx &dst = ctx.objs[dstIdx];
            for (size_t k = 0; k < dv.count; ++k)
                dst.shadow[k] = dst.shadowHost[k] & mask;
            break;
          }
          case BbopOpcode::TrspInv: {
            ShadowCtx::ObjCtx &dst = ctx.objs[dstIdx];
            dst.shadowHost = dst.shadow;
            break;
          }
          case BbopOpcode::Init: {
            ShadowCtx::ObjCtx &dst = ctx.objs[dstIdx];
            const uint64_t imm = in.initImmediate();
            std::fill(dst.shadow.begin(), dst.shadow.end(),
                      imm & mask);
            // execOn writes the raw immediate into the host image.
            std::fill(dst.shadowHost.begin(), dst.shadowHost.end(),
                      imm);
            break;
          }
          case BbopOpcode::ShiftL:
          case BbopOpcode::ShiftR: {
            const size_t srcIdx = touch(pi.src1, (*pi.src1V)[d]);
            ShadowCtx::ObjCtx &dst = ctx.objs[dstIdx];
            const ShadowCtx::ObjCtx &src = ctx.objs[srcIdx];
            const size_t k = static_cast<size_t>(in.sel);
            for (size_t e = 0; e < dv.count; ++e) {
                const uint64_t v = src.shadow[e];
                dst.shadow[e] = in.opcode == BbopOpcode::ShiftL
                                    ? (k >= 64 ? 0 : (v << k)) & mask
                                    : (k >= 64 ? 0 : v >> k);
            }
            break;
          }
          case BbopOpcode::Op: {
            const auto sig = signatureOf(in.op, in.width);
            const size_t aIdx = touch(pi.src1, (*pi.src1V)[d]);
            std::vector<uint64_t> b, sel;
            if (sig.numInputs == 2)
                b = ctx.objs[touch(pi.src2, (*pi.src2V)[d])].shadow;
            if (sig.hasSel)
                sel = ctx.objs[touch(pi.sel, (*pi.selV)[d])].shadow;
            std::vector<uint64_t> res = hostBulkOp(
                in.op, in.width, ctx.objs[aIdx].shadow, b, sel);
            for (uint64_t &v : res)
                v &= mask;
            ctx.objs[dstIdx].shadow = std::move(res);
            break;
          }
        }
        ctx.objs[dstIdx].written = true;
        ctx.objs[dstIdx].lastWriter = i;
    }
}

void
StreamExecutor::restoreJob(size_t d, const ShadowCtx &ctx)
{
    (void)d;
    for (const ShadowCtx::ObjCtx &oc : ctx.objs) {
        if (!oc.written || oc.view.count == 0)
            continue;
        oc.view.proc->store(oc.view.handle, oc.initLanes.data(),
                            oc.view.count);
        std::copy(oc.initHost.begin(), oc.initHost.end(),
                  oc.obj->hostImage.begin() +
                      static_cast<std::ptrdiff_t>(oc.view.offset));
        // The rollback rewrote device rows behind the stream cache's
        // back: bump the vector's mutation generation so elisions the
        // rolled-back stream committed (e.g. "vertical image is
        // clean" after its trsp) re-validate instead of reading the
        // restored pre-stream lanes.
        group_->noteExternalMutation(oc.obj->vec);
    }
}

size_t
StreamExecutor::executeChecked(size_t d,
                               const std::vector<PreparedInstr> &prog,
                               const ShadowCtx &ctx)
{
    const bool dual =
        opts_.integrityMode == IntegrityMode::DualModular;
    for (size_t i = 0; i < prog.size(); ++i) {
        const PreparedInstr &pi = prog[i];
        execOn(d, pi);
        if (!dual || pi.skip ||
            pi.instr.opcode != BbopOpcode::Op)
            continue;
        const DeviceGroup::ShardView &dv = (*pi.dstV)[d];
        if (dv.count == 0)
            continue;
        // Temporal redundancy: run the op a second time (in-place
        // execution is forbidden, so the destination is never an
        // input and a re-run is safe) and require lane-for-lane
        // agreement — exact per-op attribution.
        std::vector<uint64_t> r1(dv.count);
        dv.proc->loadInto(dv.handle, r1.data());
        execOn(d, pi);
        std::vector<uint64_t> r2(dv.count);
        dv.proc->loadInto(dv.handle, r2.data());
        if (r1 != r2)
            return i;
    }

    // End-of-stream comparison against the host-computed shadow:
    // signatures under Checksum, lane-exact under DualModular (the
    // arbiter for correlated double faults both runs agreed on).
    for (const ShadowCtx::ObjCtx &oc : ctx.objs) {
        if (!oc.written || oc.view.count == 0)
            continue;
        std::vector<uint64_t> cur(oc.view.count);
        oc.view.proc->loadInto(oc.view.handle, cur.data());
        std::vector<uint64_t> host(
            oc.obj->hostImage.begin() +
                static_cast<std::ptrdiff_t>(oc.view.offset),
            oc.obj->hostImage.begin() +
                static_cast<std::ptrdiff_t>(oc.view.offset +
                                            oc.view.count));
        bool ok;
        if (dual)
            ok = cur == oc.shadow && host == oc.shadowHost;
        else
            ok = foldSignature(cur) == foldSignature(oc.shadow) &&
                 foldSignature(host) == foldSignature(oc.shadowHost);
        if (!ok)
            return oc.lastWriter;
    }
    return kCleanRun;
}

void
StreamExecutor::fallbackJob(size_t d,
                            const std::vector<PreparedInstr> &prog,
                            int &recoveredOn)
{
    for (const PreparedInstr &pi : prog) {
        if (pi.skip)
            continue;
        const DeviceGroup::ShardView &dv = (*pi.dstV)[d];
        if (dv.count == 0)
            continue;
        if (pi.instr.opcode != BbopOpcode::Op) {
            // Transposition, init, and shifts are TRA-free (row
            // copies and column I/O): trustworthy even on the
            // quarantined device.
            execOn(d, pi);
            continue;
        }

        // Re-execute the bbop op off-device: load the operand lanes,
        // compute on the first healthy device (falling back to the
        // host reference kernels when none remains or scratch rows
        // cannot be co-located), and store the result back.
        const BbopInstr &in = pi.instr;
        const auto sig = signatureOf(in.op, in.width);
        std::vector<uint64_t> a(dv.count), b, sel;
        {
            const DeviceGroup::ShardView &sv = (*pi.src1V)[d];
            sv.proc->loadInto(sv.handle, a.data());
        }
        if (sig.numInputs == 2) {
            const DeviceGroup::ShardView &sv = (*pi.src2V)[d];
            b.resize(dv.count);
            sv.proc->loadInto(sv.handle, b.data());
        }
        if (sig.hasSel) {
            const DeviceGroup::ShardView &sv = (*pi.selV)[d];
            sel.resize(dv.count);
            sv.proc->loadInto(sv.handle, sel.data());
        }

        int target = -2;
        for (size_t h = 0; h < workers_.size(); ++h) {
            if (h == d || !healthy_[h].load(std::memory_order_relaxed))
                continue;
            target = static_cast<int>(h);
            break;
        }

        std::vector<uint64_t> res;
        bool done = false;
        if (target >= 0) {
            // Lock order is safe: quarantined workers only ever take
            // a HEALTHY device's lock on top of their own, and
            // healthy workers never take a second device lock.
            auto hlock =
                group_->lockDevice(static_cast<size_t>(target));
            Processor &hp =
                group_->device(static_cast<size_t>(target));
            std::vector<Processor::VecHandle> tmp;
            try {
                const auto va = hp.alloc(dv.count, pi.src1->bits);
                tmp.push_back(va);
                hp.store(va, a.data(), dv.count);
                Processor::VecHandle vb{}, vsel{};
                if (sig.numInputs == 2) {
                    vb = hp.alloc(dv.count, pi.src2->bits);
                    tmp.push_back(vb);
                    hp.store(vb, b.data(), dv.count);
                }
                if (sig.hasSel) {
                    vsel = hp.alloc(dv.count, pi.sel->bits);
                    tmp.push_back(vsel);
                    hp.store(vsel, sel.data(), dv.count);
                }
                const auto vy = hp.alloc(dv.count, pi.dst->bits);
                tmp.push_back(vy);
                if (sig.numInputs == 1)
                    hp.run(in.op, vy, va);
                else if (!sig.hasSel)
                    hp.run(in.op, vy, va, vb);
                else
                    hp.run(in.op, vy, va, vb, vsel);
                res.resize(dv.count);
                hp.loadInto(vy, res.data());
                done = true;
            } catch (const FatalError &) {
                // Scratch rows straddled a subarray boundary (the
                // bump allocator cannot co-locate them): fall back
                // to the host path for this op.
            }
            for (auto it = tmp.rbegin(); it != tmp.rend(); ++it)
                hp.free(*it);
        }
        if (!done) {
            res = hostBulkOp(in.op, in.width, a, b, sel);
            const uint64_t mask = laneMask(pi.dst->bits);
            for (uint64_t &v : res)
                v &= mask;
            target = -2;
        }
        dv.proc->store(dv.handle, res.data(), dv.count);
        if (recoveredOn == -1)
            recoveredOn = target;
    }
}

void
StreamExecutor::execOn(size_t d, const PreparedInstr &pi)
{
    if (pi.skip)
        return; // elided by the stream cache
    const BbopInstr &in = pi.instr;
    const DeviceGroup::ShardView &dst = (*pi.dstV)[d];
    if (dst.count == 0)
        return; // this device holds no shard of the destination
    switch (in.opcode) {
      case BbopOpcode::Trsp:
        dst.proc->store(dst.handle,
                        pi.dst->hostImage.data() + dst.offset,
                        dst.count);
        return;
      case BbopOpcode::TrspInv:
        dst.proc->loadInto(dst.handle,
                           pi.dst->hostImage.data() + dst.offset);
        return;
      case BbopOpcode::Init: {
        const uint64_t imm = in.initImmediate();
        dst.proc->fillConstant(dst.handle, imm);
        // Each worker refreshes its own disjoint slice of the
        // horizontal image, so the whole image is coherent once the
        // stream completes on every device.
        std::fill_n(pi.dst->hostImage.data() + dst.offset,
                    dst.count, imm);
        return;
      }
      case BbopOpcode::ShiftL:
        dst.proc->shiftLeft(dst.handle, (*pi.src1V)[d].handle,
                            static_cast<size_t>(in.sel));
        return;
      case BbopOpcode::ShiftR:
        dst.proc->shiftRight(dst.handle, (*pi.src1V)[d].handle,
                             static_cast<size_t>(in.sel));
        return;
      case BbopOpcode::Op:
        break;
    }

    const auto sig = signatureOf(in.op, in.width);
    if (sig.numInputs == 1)
        dst.proc->run(in.op, dst.handle, (*pi.src1V)[d].handle);
    else if (!sig.hasSel)
        dst.proc->run(in.op, dst.handle, (*pi.src1V)[d].handle,
                      (*pi.src2V)[d].handle);
    else
        dst.proc->run(in.op, dst.handle, (*pi.src1V)[d].handle,
                      (*pi.src2V)[d].handle, (*pi.selV)[d].handle);
}

StreamResult
StreamHandle::wait()
{
    if (!state_)
        fatal("StreamHandle::wait: empty handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->remaining == 0; });
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->result;
}

StreamResult
StreamHandle::waitResult()
{
    if (!state_)
        fatal("StreamHandle::waitResult: empty handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->remaining == 0; });
    return state_->result;
}

bool
StreamHandle::waitFor(double timeoutUs)
{
    if (!state_)
        fatal("StreamHandle::waitFor: empty handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    // Non-consuming: report readiness only. Errors stay parked until
    // wait() collects them, so polling cannot lose a failure.
    return state_->cv.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::micro>(timeoutUs)),
        [&] { return state_->remaining == 0; });
}

bool
StreamHandle::done() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->remaining == 0;
}

} // namespace simdram
