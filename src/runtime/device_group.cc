#include "runtime/device_group.h"

#include <algorithm>

#include "common/error.h"

namespace simdram
{

DeviceGroup::DeviceGroup(DramConfig cfg, size_t devices,
                         Backend backend)
    : backend_(backend)
{
    if (devices == 0)
        fatal("DeviceGroup: device count must be >= 1");
    cfg.validate();
    procs_.reserve(devices);
    for (size_t d = 0; d < devices; ++d)
        procs_.push_back(std::make_unique<Processor>(cfg, backend));
    dev_mu_ = std::make_unique<std::mutex[]>(devices);
    injectors_.resize(devices);
}

void
DeviceGroup::setFaultInjector(size_t d,
                              std::shared_ptr<FaultInjector> injector)
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    auto lock = lockDevice(d);
    injectors_[d] = std::move(injector);
    procs_[d]->setFaultInjector(injectors_[d].get());
}

std::shared_ptr<FaultInjector>
DeviceGroup::faultInjector(size_t d) const
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    auto lock = lockDevice(d);
    return injectors_[d];
}

Processor &
DeviceGroup::device(size_t d)
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return *procs_[d];
}

const DramConfig &
DeviceGroup::config() const
{
    return procs_[0]->config();
}

ShardedVec
DeviceGroup::alloc(size_t elements, size_t bits)
{
    if (elements == 0 || bits == 0)
        fatal("DeviceGroup::alloc: empty vector");

    // Segment-aligned contiguous split: whole rowBits-lane segments
    // go to each device, front-loaded so trailing devices take the
    // slack (possibly an empty shard).
    const size_t lanes = config().rowBits;
    const size_t total_segs = (elements + lanes - 1) / lanes;
    const size_t devices = procs_.size();

    auto vs = std::make_unique<VecState>();
    vs->elements = elements;
    vs->bits = bits;
    vs->handles.resize(devices);
    vs->offsets.assign(devices, 0);
    vs->counts.assign(devices, 0);

    size_t seg_start = 0;
    for (size_t d = 0; d < devices; ++d) {
        const size_t segs =
            total_segs / devices + (d < total_segs % devices ? 1 : 0);
        const size_t offset = seg_start * lanes;
        const size_t count =
            offset < elements
                ? std::min(elements - offset, segs * lanes)
                : 0;
        vs->offsets[d] = std::min(offset, elements);
        vs->counts[d] = count;
        if (count > 0) {
            auto lock = lockDevice(d);
            vs->handles[d] = procs_[d]->alloc(count, bits);
        }
        seg_start += segs;
    }

    std::lock_guard<std::mutex> lock(vec_mu_);
    vecs_.push_back(std::move(vs));
    ShardedVec h;
    h.id = static_cast<uint32_t>(vecs_.size() - 1);
    h.elements = elements;
    h.bits = bits;
    return h;
}

void
DeviceGroup::release(const ShardedVec &v)
{
    VecState *vs = nullptr;
    {
        std::lock_guard<std::mutex> lock(vec_mu_);
        if (!v.valid() || v.id >= vecs_.size())
            fatal("DeviceGroup: invalid sharded-vector handle");
        vs = vecs_[v.id].get();
        if (vs->released)
            fatal("DeviceGroup::release: vector already released");
        vs->released = true;
    }
    vs->gen.fetch_add(1, std::memory_order_relaxed);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs->counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        procs_[d]->free(vs->handles[d]);
        vs->handles[d] = Processor::VecHandle{};
    }
}

const DeviceGroup::VecState &
DeviceGroup::state(const ShardedVec &v) const
{
    std::lock_guard<std::mutex> lock(vec_mu_);
    if (!v.valid() || v.id >= vecs_.size())
        fatal("DeviceGroup: invalid sharded-vector handle");
    if (vecs_[v.id]->released)
        fatal("DeviceGroup: use of released sharded-vector handle");
    return *vecs_[v.id];
}

Processor::VecHandle
DeviceGroup::handleOn(const VecState &vs, size_t d) const
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return vs.handles[d];
}

DeviceGroup::ShardView
DeviceGroup::shardView(const ShardedVec &v, size_t d) const
{
    const VecState &vs = state(v);
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    ShardView view;
    view.proc = procs_[d].get();
    view.handle = vs.handles[d];
    view.offset = vs.offsets[d];
    view.count = vs.counts[d];
    return view;
}

size_t
DeviceGroup::shardOffset(const ShardedVec &v, size_t d) const
{
    const VecState &vs = state(v);
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return vs.offsets[d];
}

size_t
DeviceGroup::shardElements(const ShardedVec &v, size_t d) const
{
    const VecState &vs = state(v);
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return vs.counts[d];
}

std::unique_lock<std::mutex>
DeviceGroup::lockDevice(size_t d) const
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return std::unique_lock<std::mutex>(dev_mu_[d]);
}

DramStats
DeviceGroup::deviceComputeStats(size_t d) const
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return procs_[d]->computeStats();
}

DramStats
DeviceGroup::deviceTransferStats(size_t d) const
{
    if (d >= procs_.size())
        fatal("DeviceGroup: bad device index");
    return procs_[d]->transferStats();
}

void
DeviceGroup::store(const ShardedVec &v,
                   const std::vector<uint64_t> &data)
{
    const VecState &vs = state(v);
    if (data.size() != vs.elements)
        fatal("DeviceGroup::store: element count mismatch");
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        storeShard(d, v, data.data() + vs.offsets[d]);
    }
}

std::vector<uint64_t>
DeviceGroup::load(const ShardedVec &v)
{
    const VecState &vs = state(v);
    std::vector<uint64_t> out(vs.elements);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        loadShard(d, v, out.data() + vs.offsets[d]);
    }
    return out;
}

void
DeviceGroup::fillConstant(const ShardedVec &v, uint64_t value)
{
    const VecState &vs = state(v);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        fillShard(d, v, value);
    }
}

void
DeviceGroup::shiftLeft(const ShardedVec &dst, const ShardedVec &src,
                       size_t k)
{
    const VecState &vs = state(dst);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        shiftShard(d, true, dst, src, k);
    }
}

void
DeviceGroup::shiftRight(const ShardedVec &dst, const ShardedVec &src,
                        size_t k)
{
    const VecState &vs = state(dst);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        shiftShard(d, false, dst, src, k);
    }
}

void
DeviceGroup::run(OpKind op, const ShardedVec &dst,
                 const ShardedVec &a)
{
    const VecState &vs = state(dst);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        runShard(d, op, dst, a);
    }
}

void
DeviceGroup::run(OpKind op, const ShardedVec &dst,
                 const ShardedVec &a, const ShardedVec &b)
{
    const VecState &vs = state(dst);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        runShard(d, op, dst, a, b);
    }
}

void
DeviceGroup::run(OpKind op, const ShardedVec &dst,
                 const ShardedVec &a, const ShardedVec &b,
                 const ShardedVec &sel)
{
    const VecState &vs = state(dst);
    for (size_t d = 0; d < procs_.size(); ++d) {
        if (vs.counts[d] == 0)
            continue;
        auto lock = lockDevice(d);
        runShard(d, op, dst, a, b, sel);
    }
}

DramStats
DeviceGroup::computeStats() const
{
    DramStats total;
    for (size_t d = 0; d < procs_.size(); ++d) {
        auto lock = lockDevice(d);
        total = merge(total, procs_[d]->computeStats());
    }
    return total;
}

DramStats
DeviceGroup::transferStats() const
{
    DramStats total;
    for (size_t d = 0; d < procs_.size(); ++d) {
        auto lock = lockDevice(d);
        total = merge(total, procs_[d]->transferStats());
    }
    return total;
}

void
DeviceGroup::resetStats()
{
    for (size_t d = 0; d < procs_.size(); ++d) {
        auto lock = lockDevice(d);
        procs_[d]->resetStats();
    }
}

uint64_t
DeviceGroup::mutationGen(const ShardedVec &v) const
{
    return state(v).gen.load(std::memory_order_relaxed);
}

void
DeviceGroup::noteExternalMutation(const ShardedVec &v) const
{
    state(v).gen.fetch_add(1, std::memory_order_relaxed);
}

void
DeviceGroup::storeShard(size_t d, const ShardedVec &v,
                        const uint64_t *data)
{
    const VecState &vs = state(v);
    vs.gen.fetch_add(1, std::memory_order_relaxed);
    if (vs.counts[d] == 0)
        return;
    procs_[d]->store(handleOn(vs, d), data, vs.counts[d]);
}

void
DeviceGroup::loadShard(size_t d, const ShardedVec &v, uint64_t *out)
{
    const VecState &vs = state(v);
    if (vs.counts[d] == 0)
        return;
    procs_[d]->loadInto(handleOn(vs, d), out);
}

void
DeviceGroup::fillShard(size_t d, const ShardedVec &v, uint64_t value)
{
    const VecState &vs = state(v);
    vs.gen.fetch_add(1, std::memory_order_relaxed);
    if (vs.counts[d] == 0)
        return;
    procs_[d]->fillConstant(handleOn(vs, d), value);
}

void
DeviceGroup::shiftShard(size_t d, bool left, const ShardedVec &dst,
                        const ShardedVec &src, size_t k)
{
    const VecState &ds = state(dst);
    const VecState &ss = state(src);
    ds.gen.fetch_add(1, std::memory_order_relaxed);
    if (ds.counts[d] == 0 && ss.counts[d] == 0)
        return;
    if (left)
        procs_[d]->shiftLeft(handleOn(ds, d), handleOn(ss, d), k);
    else
        procs_[d]->shiftRight(handleOn(ds, d), handleOn(ss, d), k);
}

void
DeviceGroup::runShard(size_t d, OpKind op, const ShardedVec &dst,
                      const ShardedVec &a)
{
    const VecState &ds = state(dst);
    ds.gen.fetch_add(1, std::memory_order_relaxed);
    if (ds.counts[d] == 0)
        return;
    procs_[d]->run(op, handleOn(ds, d), handleOn(state(a), d));
}

void
DeviceGroup::runShard(size_t d, OpKind op, const ShardedVec &dst,
                      const ShardedVec &a, const ShardedVec &b)
{
    const VecState &ds = state(dst);
    ds.gen.fetch_add(1, std::memory_order_relaxed);
    if (ds.counts[d] == 0)
        return;
    procs_[d]->run(op, handleOn(ds, d), handleOn(state(a), d),
                   handleOn(state(b), d));
}

void
DeviceGroup::runShard(size_t d, OpKind op, const ShardedVec &dst,
                      const ShardedVec &a, const ShardedVec &b,
                      const ShardedVec &sel)
{
    const VecState &ds = state(dst);
    ds.gen.fetch_add(1, std::memory_order_relaxed);
    if (ds.counts[d] == 0)
        return;
    procs_[d]->run(op, handleOn(ds, d), handleOn(state(a), d),
                   handleOn(state(b), d), handleOn(state(sel), d));
}

} // namespace simdram
