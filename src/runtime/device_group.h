/**
 * @file
 * Multi-device runtime, part 1: sharded vectors over a group of
 * SIMDRAM devices.
 *
 * A DeviceGroup owns N independent Processor instances (N simulated
 * memory devices, each with its own banks, transposition unit, and
 * μProgram caches) and shards vectors across them. Shards are
 * segment-aligned: a vector of E elements occupies ceil(E / rowBits)
 * subarray segments, and whole segments are distributed contiguously
 * across the devices, so every per-device piece is itself a valid
 * Processor vector with the same element width. Devices towards the
 * end of the group may receive an empty shard; operations simply skip
 * them.
 *
 *   DeviceGroup g(DramConfig::forTesting(), 4);
 *   auto a = g.alloc(1 << 20, 32);
 *   auto b = g.alloc(1 << 20, 32);
 *   auto y = g.alloc(1 << 20, 32);
 *   g.store(a, data_a);
 *   g.store(b, data_b);
 *   g.run(OpKind::Add, y, a, b);       // each device runs its shard
 *   auto out = g.load(y);
 *   auto stats = g.computeStats();     // merged: latency = max
 *
 * The whole-vector methods are synchronous and deterministic (devices
 * are visited in order on the calling thread). The per-shard
 * primitives at the bottom are the building blocks the asynchronous
 * StreamExecutor drives from its worker threads.
 *
 * Threading model: every access to device d's Processor must hold
 * that device's mutex (lockDevice(d)); the synchronous methods do so
 * internally, while the per-shard primitives leave locking to the
 * caller so a worker can hold the device across a whole batch of
 * instructions. Mixing synchronous whole-vector calls with in-flight
 * StreamExecutor streams is memory-safe but has unspecified ordering;
 * call StreamExecutor::sync() first.
 */

#ifndef SIMDRAM_RUNTIME_DEVICE_GROUP_H
#define SIMDRAM_RUNTIME_DEVICE_GROUP_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "exec/processor.h"

namespace simdram
{

/** A handle to a vector sharded across the devices of a group. */
struct ShardedVec
{
    uint32_t id = UINT32_MAX; ///< Internal identifier.
    size_t elements = 0;      ///< Total elements over all shards.
    size_t bits = 0;          ///< Element width in bits.

    /** @return True if the handle refers to a vector. */
    bool valid() const { return id != UINT32_MAX; }
};

/** N SIMDRAM devices operated as one wide SIMD machine. */
class DeviceGroup
{
  public:
    /**
     * @param cfg Per-device configuration (each device is identical).
     * @param devices Number of devices (>= 1).
     * @param backend μProgram compiler used by every device.
     */
    DeviceGroup(DramConfig cfg, size_t devices,
                Backend backend = Backend::Simdram);

    /** @return The number of devices in the group. */
    size_t deviceCount() const { return procs_.size(); }

    /** @return Device @p d's processor (tests, advanced use). */
    Processor &device(size_t d);

    /** @return The per-device configuration. */
    const DramConfig &config() const;

    /** @return The backend every device compiles with. */
    Backend backend() const { return backend_; }

    /**
     * Allocates a vector of @p elements elements of @p bits bits,
     * sharded segment-aligned across the devices.
     */
    ShardedVec alloc(size_t elements, size_t bits);

    /**
     * Releases @p v: every per-device shard is freed back to its
     * Processor (identically-shaped reallocations recycle the rows;
     * see Processor::free) and the handle becomes invalid — any
     * further use is fatal. The caller must guarantee no stream is
     * in flight against the vector (StreamExecutor::releaseObject
     * syncs first). Double release is fatal.
     */
    void release(const ShardedVec &v);

    /** Stores host data into every shard of @p v. */
    void store(const ShardedVec &v, const std::vector<uint64_t> &data);

    /** Loads @p v back into one contiguous host buffer. */
    std::vector<uint64_t> load(const ShardedVec &v);

    /** Fills every element of @p v with @p value (bbop_init path). */
    void fillConstant(const ShardedVec &v, uint64_t value);

    /** Element-wise logical shift left: dst = src << k. */
    void shiftLeft(const ShardedVec &dst, const ShardedVec &src,
                   size_t k);

    /** Element-wise logical shift right: dst = src >> k. */
    void shiftRight(const ShardedVec &dst, const ShardedVec &src,
                    size_t k);

    /** Executes a unary operation on every shard: dst = op(a). */
    void run(OpKind op, const ShardedVec &dst, const ShardedVec &a);

    /** Executes a binary operation on every shard: dst = op(a, b). */
    void run(OpKind op, const ShardedVec &dst, const ShardedVec &a,
             const ShardedVec &b);

    /** Executes a predicated operation: dst = sel ? a : b. */
    void run(OpKind op, const ShardedVec &dst, const ShardedVec &a,
             const ShardedVec &b, const ShardedVec &sel);

    /**
     * @return Compute statistics merged over the devices: counters
     *         and energy add, latency is the maximum (devices operate
     *         concurrently, like banks within a device).
     */
    DramStats computeStats() const;

    /** @return Host-transfer statistics, merged the same way. */
    DramStats transferStats() const;

    /** Clears statistics on every device. */
    void resetStats();

    // ---- Shard geometry and per-shard primitives ----------------
    //
    // Everything below operates on one device's shard and does NOT
    // lock the device; callers hold lockDevice(d) (the
    // StreamExecutor worker pattern: lock once per batch of
    // instructions).

    /**
     * A fully resolved view of one vector's shard on one device:
     * enough to drive the device's Processor directly, without
     * touching group bookkeeping again. Shard geometry is immutable
     * after alloc(), so views can be resolved once (e.g. at stream
     * submission) and used from worker threads with no locking
     * beyond the device mutex.
     */
    struct ShardView
    {
        Processor *proc = nullptr;   ///< The device's processor.
        Processor::VecHandle handle; ///< Invalid when count == 0.
        size_t offset = 0; ///< First whole-vector element index.
        size_t count = 0;  ///< Elements on this device.
    };

    /** @return The resolved view of @p v's shard on device @p d. */
    ShardView shardView(const ShardedVec &v, size_t d) const;

    /** @return First whole-vector element index of shard @p d. */
    size_t shardOffset(const ShardedVec &v, size_t d) const;

    /** @return Element count of shard @p d (0 = device unused). */
    size_t shardElements(const ShardedVec &v, size_t d) const;

    /** @return The lock guarding device @p d's processor. */
    std::unique_lock<std::mutex> lockDevice(size_t d) const;

    /**
     * Installs @p injector into device @p d (nullptr clears). The
     * group keeps shared ownership so the injector outlives every
     * subarray pointer handed out; installation takes the device
     * lock, so it is safe while a StreamExecutor is attached (the
     * injector takes effect for the next stream on that device).
     */
    void setFaultInjector(size_t d,
                          std::shared_ptr<FaultInjector> injector);

    /** @return Device @p d's installed injector, or nullptr. */
    std::shared_ptr<FaultInjector> faultInjector(size_t d) const;

    /**
     * @return The mutation generation of @p v: a counter bumped by
     *         every DeviceGroup API call that writes the vector
     *         (store/fillConstant/shift/run and their per-shard
     *         variants). Callers that cache derived state — e.g. the
     *         StreamExecutor's trsp/init stream cache — tag their
     *         entries with this generation and re-validate on use, so
     *         out-of-band synchronous writes invalidate the cache.
     *         Writes issued directly against a device's Processor
     *         bypass the counter (the executor's own workers do this
     *         deliberately: their effects are tracked stream-side).
     */
    uint64_t mutationGen(const ShardedVec &v) const;

    /**
     * Declares that @p v's device rows were rewritten OUTSIDE the
     * DeviceGroup API (direct Processor stores), bumping its mutation
     * generation so every generation-tagged cache of derived state
     * re-validates. The StreamExecutor's fault-recovery restore path
     * uses this: rolling a device back to its pre-stream snapshot
     * must invalidate stream-cache entries the rolled-back stream
     * committed, or a later elided transpose would read stale lanes.
     */
    void noteExternalMutation(const ShardedVec &v) const;

    /** @return Device @p d's compute statistics (unmerged). */
    DramStats deviceComputeStats(size_t d) const;

    /** @return Device @p d's transfer statistics (unmerged). */
    DramStats deviceTransferStats(size_t d) const;

    /** Stores shard @p d from @p data (shardElements() elements). */
    void storeShard(size_t d, const ShardedVec &v,
                    const uint64_t *data);

    /** Loads shard @p d into @p out (shardElements() elements). */
    void loadShard(size_t d, const ShardedVec &v, uint64_t *out);

    /** Fills shard @p d of @p v with @p value. */
    void fillShard(size_t d, const ShardedVec &v, uint64_t value);

    /** Shifts shard @p d: dst = left ? src << k : src >> k. */
    void shiftShard(size_t d, bool left, const ShardedVec &dst,
                    const ShardedVec &src, size_t k);

    /** Runs a unary operation on shard @p d. */
    void runShard(size_t d, OpKind op, const ShardedVec &dst,
                  const ShardedVec &a);

    /** Runs a binary operation on shard @p d. */
    void runShard(size_t d, OpKind op, const ShardedVec &dst,
                  const ShardedVec &a, const ShardedVec &b);

    /** Runs a predicated operation on shard @p d. */
    void runShard(size_t d, OpKind op, const ShardedVec &dst,
                  const ShardedVec &a, const ShardedVec &b,
                  const ShardedVec &sel);

  private:
    /** Group-level bookkeeping for one sharded vector. */
    struct VecState
    {
        size_t elements = 0;
        size_t bits = 0;
        /** Per-device handle; invalid where the shard is empty. */
        std::vector<Processor::VecHandle> handles;
        /** Per-device first element index. */
        std::vector<size_t> offsets;
        /** Per-device element count. */
        std::vector<size_t> counts;
        /** Set by release(); any further use of the handle is fatal. */
        bool released = false;
        /** Mutation generation (see mutationGen()); metadata, so
         *  mutable — bumped through const accessors too. */
        mutable std::atomic<uint64_t> gen{0};
    };

    const VecState &state(const ShardedVec &v) const;
    Processor::VecHandle handleOn(const VecState &vs, size_t d) const;

    Backend backend_;
    std::vector<std::unique_ptr<Processor>> procs_;
    /** One mutex per device; see the threading model above. */
    std::unique_ptr<std::mutex[]> dev_mu_;
    /** Per-device fault injectors (shared ownership; may be null).
     *  Guarded by the respective device mutex. */
    std::vector<std::shared_ptr<FaultInjector>> injectors_;

    /**
     * Vector table. Entries are behind unique_ptr so VecState
     * references captured by StreamExecutor jobs stay stable while
     * the table grows; growth itself is serialized by vec_mu_.
     */
    std::vector<std::unique_ptr<VecState>> vecs_;
    mutable std::mutex vec_mu_;
};

} // namespace simdram

#endif // SIMDRAM_RUNTIME_DEVICE_GROUP_H
