/**
 * @file
 * Multi-device runtime, part 2: asynchronous bbop-stream execution.
 *
 * The StreamExecutor is the memory-controller-side service the
 * paper's bbop ISA assumes: the host enqueues encoded bbop
 * instruction streams and continues; the controller executes them
 * behind the scenes. Here, a group-wide object table maps bbop object
 * ids to ShardedVecs, and one worker thread per device replays each
 * submitted stream against that device's shards:
 *
 *   DeviceGroup g(cfg, 4);
 *   StreamExecutor ex(g, {.maxQueuedStreams = 8});
 *   auto a = ex.defineObject(n, 32);
 *   auto y = ex.defineObject(n, 32);
 *   ex.writeObject(a, data);
 *   auto h = ex.submit({BbopInstr::trsp(a, 32),
 *                       BbopInstr::trsp(y, 32),
 *                       BbopInstr::unary(OpKind::Abs, 32, y, a),
 *                       BbopInstr::trspInv(y, 32)});
 *   ... overlap host work, submit more streams ...
 *   StreamResult r = h.wait();   // merged stats + wall clock
 *   auto out = ex.readObject(y);
 *
 * Semantics and guarantees:
 *  - Submission order is execution order on every device, so results
 *    are bit-exact with running the same streams sequentially on a
 *    single Processor holding the whole (unsharded) vectors.
 *  - submit() validates the whole stream through the shared
 *    BbopValidator (src/isa/validate.cc — the same rules the
 *    BbopDispatcher enforces) and throws BbopError without enqueuing
 *    anything if any instruction is malformed: a bad stream is
 *    rejected as a unit and never reaches a device or the object
 *    table.
 *  - Backpressure: with maxQueuedStreams > 0 each device queue is
 *    bounded. A submit() that finds a queue full either blocks until
 *    space frees up (BackpressurePolicy::Block, the default) or
 *    throws the typed StreamRejectedError without any side effect
 *    (BackpressurePolicy::Reject) — a rejected stream leaves layout
 *    state and queues exactly as they were. StreamResult carries the
 *    per-stream watermarks (queue depth at submit, time blocked).
 *  - Each completed stream reports its own DramStats deltas, merged
 *    across devices with merge() (latency = max: devices execute
 *    concurrently), plus submit-to-completion wall time.
 *  - writeObject()/readObject() synchronize (drain all pending
 *    streams) before touching host images.
 *  - Stream cache (StreamExecutorOptions::enableStreamCache, on by
 *    default): repeated bbop_trsp / bbop_trsp_inv / bbop_init of
 *    objects whose tracked state proves them redundant are elided at
 *    submit() time — within one stream and across streams — with
 *    generation-tagged invalidation on every write (bbop op/shift/
 *    init outputs, writeObject, and out-of-band DeviceGroup writes
 *    via mutationGen()). Memory state is bit-exact with the cache
 *    off; only the per-stream DramStats shrink. Pipelined apps that
 *    resubmit self-contained streams (knn re-transposing its
 *    reference set per query, nn re-broadcasting weights per tile)
 *    stop paying for data that has not changed.
 *  - Optimizer passes (src/stream/passes.h): every submitted program
 *    — a raw instruction vector lifted to a one-segment StreamIR, or
 *    a multi-segment IR from StreamBuilder — runs through the pass
 *    pipeline (trsp/init hoisting, dead-write elimination, segment
 *    fusion) before dispatch. Each pass has its own toggle in
 *    StreamExecutorOptions; removed instructions are reported in
 *    StreamResult::optimizedInstructions and never reach a device.
 *    The ORIGINAL program is what submit() validates (atomic reject),
 *    and passes preserve both memory state and final layout state,
 *    so optimization is invisible except in statistics.
 *  - Static analysis (src/analysis, StreamExecutorOptions::lintMode):
 *    Warn runs the dataflow lint at submit time and accumulates
 *    typed diagnostics (wait-free lintDiagnosticCount(), drained via
 *    drainDiagnostics()); Strict additionally rejects Error-level
 *    findings with the typed, synchronous, side-effect-free
 *    StreamLintError. validatePasses machine-checks every optimizer
 *    pass against the analyzer's facts (translation validation) and
 *    rejects the submission with PassValidationError if a pass broke
 *    them.
 */

#ifndef SIMDRAM_RUNTIME_STREAM_EXECUTOR_H
#define SIMDRAM_RUNTIME_STREAM_EXECUTOR_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stream_analyzer.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "isa/bbop.h"
#include "isa/validate.h"
#include "runtime/device_group.h"
#include "stream/stream_ir.h"

namespace simdram
{

namespace detail
{
struct StreamState;
} // namespace detail

/**
 * Raised by submit() under BackpressurePolicy::Reject when a bounded
 * device queue is full. Distinct from BbopError: the stream is
 * well-formed, the service is just saturated — the caller may retry.
 */
class StreamRejectedError : public FatalError
{
  public:
    explicit StreamRejectedError(const std::string &what)
        : FatalError(what)
    {}
};

/** What submit() does when a bounded device queue is full. */
enum class BackpressurePolicy
{
    Block,  ///< Block the submitter until space frees up.
    Reject, ///< Throw StreamRejectedError (no side effects).
};

/**
 * Raised by submit() under LintMode::Strict when the static analyzer
 * (src/analysis) finds an Error-level defect — a read of unwritten
 * data, a layout mismatch, a self-aliasing operand, a shift that
 * zeroes its destination. A subtype of BbopError so the rejection is
 * typed, synchronous, and side-effect-free exactly like a malformed
 * stream: nothing is enqueued, no shadow state moves.
 */
class StreamLintError : public BbopError
{
  public:
    explicit StreamLintError(const std::string &what)
        : BbopError(what)
    {}
};

/**
 * Raised by submit() when StreamExecutorOptions::validatePasses is on
 * and an optimizer pass failed translation validation — it changed
 * the definedness/layout/const state some surviving read observes.
 * This is an optimizer bug, not a caller bug, hence a FatalError
 * rather than a BbopError; the message names the offending pass.
 */
class PassValidationError : public FatalError
{
  public:
    explicit PassValidationError(const std::string &what)
        : FatalError(what)
    {}
};

/**
 * Raised (through StreamHandle::wait) when per-stream integrity
 * checking detected corrupted device results and the retry policy was
 * exhausted before a clean execution. Carries full attribution: which
 * device, which submitted stream (its submission sequence number),
 * and which instruction's output failed verification. The device's
 * pre-stream state is restored before the error surfaces, so a faulted
 * stream is side-effect-free — exactly like a rejected one.
 */
class StreamFaultError : public FatalError
{
  public:
    StreamFaultError(const std::string &what, size_t device,
                     uint64_t streamSeq, size_t opIndex)
        : FatalError(what), device_(device), streamSeq_(streamSeq),
          opIndex_(opIndex)
    {}

    /** @return The device whose execution failed verification. */
    size_t device() const { return device_; }

    /** @return The submission sequence number of the stream. */
    uint64_t streamSeq() const { return streamSeq_; }

    /** @return Index (in the dispatched program) of the instruction
     *          whose output failed verification. */
    size_t opIndex() const { return opIndex_; }

  private:
    size_t device_ = 0;
    uint64_t streamSeq_ = 0;
    size_t opIndex_ = 0;
};

/**
 * Raised (through StreamHandle::wait) when a stream's queue+execute
 * time exceeded StreamExecutorOptions::deadlineUs before a device
 * could start (or retry) it. The clock is the same end-to-end clock
 * as StreamResult::wallNs: it starts at submit() entry.
 */
class StreamDeadlineError : public FatalError
{
  public:
    explicit StreamDeadlineError(const std::string &what)
        : FatalError(what)
    {}
};

/**
 * Per-stream integrity checking performed by the device workers
 * (detection layer of the fault-tolerance pipeline; see README
 * "Fault tolerance").
 */
enum class IntegrityMode
{
    /** No checking; the pre-existing zero-overhead hot path. */
    Off,
    /**
     * Fold every written object's post-execution device lanes into an
     * XOR + popcount signature and compare it against a host-side
     * shadow computed from the instruction semantics. Cheap, catches
     * any single-TRA corruption; multi-bit corruptions that preserve
     * both folds can alias (the dual-modular mode cannot).
     */
    Checksum,
    /**
     * Temporal dual-modular redundancy: every bbop op executes twice
     * and the two results must agree lane-for-lane (exact per-op
     * attribution), with a final lane-exact host-shadow comparison as
     * the arbiter for correlated double faults. Roughly doubles the
     * stream's compute cost.
     */
    DualModular,
};

/** Retry budget for streams whose integrity check failed. */
struct RetryPolicy
{
    /** Total execution attempts per device (1 = no retry). */
    size_t maxAttempts = 1;
    /** Backoff before retry k is baseBackoffUs * 2^(k-1) host us. */
    double baseBackoffUs = 0.0;
    /** Cap on any single backoff sleep. */
    double maxBackoffUs = 10000.0;
};

/** How much the submit-time static analyzer is allowed to do. */
enum class LintMode
{
    Off,    ///< No analysis.
    Warn,   ///< Analyze; accumulate diagnostics, accept the stream.
    Strict, ///< Reject on any Error-level diagnostic (typed,
            ///< synchronous, side-effect-free, like BbopError).
};

/** Tuning knobs of a StreamExecutor. */
struct StreamExecutorOptions
{
    /** Max streams queued (not yet started) per device; 0 = unbounded. */
    size_t maxQueuedStreams = 0;
    /** Behaviour when a bounded queue is full at submit(). */
    BackpressurePolicy onFull = BackpressurePolicy::Block;
    /**
     * Stream-level trsp/init cache: when enabled, submit() elides
     * instructions that are provably redundant against the objects'
     * tracked layout/content state — a bbop_trsp (or trsp_inv) of an
     * object whose vertical and horizontal images are already
     * coherent, or a bbop_init re-broadcasting the value the object
     * already holds everywhere. Elision is decided in submission
     * order, tagged with the DeviceGroup mutation generation of the
     * backing vector (any out-of-band synchronous write invalidates),
     * and is invisible except in statistics: memory state is
     * bit-exact with the cache disabled, per-stream DramStats simply
     * stop paying for re-transposes of unchanged data. Skipped
     * instructions are reported in StreamResult::cachedInstructions.
     */
    bool enableStreamCache = true;
    /**
     * Optimizer pass toggles (src/stream/passes.h), each independent:
     * fusion merges adjacent submitted segments sharing an operand
     * into one device pass; dead-write elimination drops writes
     * overwritten before any read; trsp hoisting statically removes
     * transposes/inits whose effect is already in place within the
     * submitted program (the stream cache above remains the dynamic,
     * cross-submission backstop). All three preserve memory state and
     * final layout bit-exactly.
     */
    bool enableFusion = true;
    bool enableDeadWriteElim = true;
    bool enableTrspHoist = true;
    /**
     * Submit-time static analysis (src/analysis): the dataflow lint
     * runs over the optimized program (node indices still match the
     * submitted program — passes only mark nodes dead) with the
     * object table as the entry state. Off: skip. Warn: accept and
     * accumulate diagnostics (lintDiagnosticCount() /
     * drainDiagnostics()). Strict: reject Error-level findings with
     * the typed StreamLintError before anything is enqueued or
     * committed. Warnings that the enabled passes already acted on
     * (redundant trsps the hoister removed, dead writes DWE
     * eliminated) do not re-fire: the lint sees the program the
     * devices will actually run.
     */
    LintMode lintMode = LintMode::Off;
    /**
     * Translation validation: run the optimizer passes one at a time,
     * re-analyzing in between, and reject the submission with
     * PassValidationError if any pass changed the facts a surviving
     * read observes (see runPassesValidated). The resulting program
     * is identical to the normal pipeline's; this only adds the
     * machine check. Off by default — it triples the submit-time
     * analysis cost; tests and benches turn it on.
     */
    bool validatePasses = false;
    /**
     * Per-stream integrity checking (detection layer of the
     * fault-tolerance pipeline). Off is the pre-existing hot path —
     * no snapshots, no verification loads, no overhead. Checksum and
     * DualModular make each device worker snapshot the stream's
     * operands, verify its own execution against a host-side shadow,
     * and — on a detected fault — restore the pre-stream state and
     * apply retryPolicy / quarantine recovery.
     */
    IntegrityMode integrityMode = IntegrityMode::Off;
    /** Retry budget applied when an integrity check fails. */
    RetryPolicy retryPolicy = {};
    /**
     * Per-stream deadline in host microseconds over the end-to-end
     * clock (submit entry → device start/retry); 0 disables. A worker
     * that picks up (or would retry) a stream past its deadline fails
     * it with StreamDeadlineError instead of executing.
     */
    double deadlineUs = 0.0;
    /**
     * Quarantine: when > 0, a device whose lifetime detected-fault
     * count reaches this threshold is marked unhealthy. Its queued
     * and future streams still execute their TRA-free instructions
     * (row copies, transposition, shifts) locally but every bbop op
     * is re-executed on the first healthy device (or on the host
     * reference path when none remains) and the result is stored
     * back — bounding the blast radius of a noisy device to itself.
     * NOTE: re-executed ops run under the healthy device's lock, so
     * their work leaves that device's FIFO order. 0 disables.
     */
    size_t quarantineFaultThreshold = 0;
};

/** Completion data for one executed stream. */
struct StreamResult
{
    /** Compute stats of this stream, merged over devices. */
    DramStats compute;
    /** Host-transfer (transposition) stats of this stream. */
    DramStats transfer;
    /**
     * End-to-end wall time (host ns): from ENTRY into submit() —
     * before the submit lock, validation, and any Block-mode
     * backpressure wait — to the last device completing the stream.
     * This is the number a serving SLO observes; the backpressure
     * share of it is broken out in backpressureWaitNs. (Historical
     * note: before PR 7 the clock restarted after the backpressure
     * wait, so wallNs silently excluded exactly the time a loaded
     * service spends queueing — see e2eNs()/serviceNs().)
     */
    double wallNs = 0.0;
    /** Number of instructions in the stream (as submitted). */
    size_t instructions = 0;
    /**
     * Of those, how many the stream cache elided as redundant
     * (always 0 when the cache is disabled). Elided instructions
     * contribute nothing to the compute/transfer stats. Always
     * cachedTrspInstructions + cachedInitInstructions.
     */
    size_t cachedInstructions = 0;
    /** Transposition elisions (bbop_trsp / bbop_trsp_inv) of those. */
    size_t cachedTrspInstructions = 0;
    /** Constant-fill elisions (bbop_init) of those. */
    size_t cachedInitInstructions = 0;
    /**
     * Instructions of this stream removed by the optimizer passes
     * (hoisting + dead-write elimination) before dispatch — distinct
     * from cachedInstructions, which attributes the runtime cache.
     */
    size_t optimizedInstructions = 0;
    /**
     * Deepest per-device queue (this stream included) observed when
     * the stream was enqueued — the stream's watermark.
     */
    size_t queueDepthAtSubmit = 0;
    /** Host ns submit() spent blocked on backpressure (Block only). */
    double backpressureWaitNs = 0.0;
    /**
     * Execution attempts the stream needed, maximized over devices
     * (1 = clean first run; includes the quarantine fallback pass).
     * Always 1 with IntegrityMode::Off.
     */
    size_t attempts = 1;
    /** Integrity-check failures detected, summed over devices. */
    size_t faultsDetected = 0;
    /**
     * Where quarantine recovery re-executed this stream's ops:
     * -1 = no quarantine recovery (the common case), >= 0 = the
     * healthy device that ran them, -2 = the host reference path
     * (no healthy device remained).
     */
    int recoveredOnDevice = -1;

    /**
     * @return The true end-to-end latency of the stream: submit entry
     *         to last device completion, backpressure wait included.
     *         An explicit accessor so call sites reading an SLO
     *         number cannot accidentally pick up a partial clock;
     *         always >= backpressureWaitNs.
     */
    double e2eNs() const { return wallNs; }

    /**
     * @return The post-admission share of e2eNs(): queue + execute
     *         time once the stream had secured queue space (the
     *         quantity wallNs used to report before PR 7).
     */
    double serviceNs() const
    {
        return wallNs > backpressureWaitNs
                   ? wallNs - backpressureWaitNs
                   : 0.0;
    }
};

/** Future-style handle to a submitted stream. */
class StreamHandle
{
  public:
    StreamHandle() = default;

    /** @return True if the handle refers to a submitted stream. */
    bool valid() const { return state_ != nullptr; }

    /**
     * Blocks until the stream completes on every device and returns
     * its result. Rethrows any error raised during execution.
     */
    StreamResult wait();

    /**
     * Blocks until the stream completes or @p timeoutUs host
     * microseconds elapse, whichever is first. @return True iff the
     * stream is complete (wait() will not block). Non-consuming and
     * side-effect-free: it never rethrows a stream error — callers
     * still collect the result (or the error) through wait() — so it
     * can be polled to implement caller-side deadlines without
     * blocking forever behind a stalled device.
     */
    bool waitFor(double timeoutUs);

    /**
     * Blocks until the stream completes and returns its result
     * WITHOUT rethrowing an execution error: a failed stream's
     * attempts / faultsDetected / recoveredOnDevice counters are
     * still populated, and accounting layers (tenant chargeback,
     * fault attribution) need them even when wait() would throw.
     * Non-consuming: wait() still reports the error afterwards.
     */
    StreamResult waitResult();

    /** @return True once the stream has completed (non-blocking). */
    bool done() const;

  private:
    friend class StreamExecutor;
    std::shared_ptr<detail::StreamState> state_;
};

/**
 * The abstract bbop-stream service surface: everything a client
 * (StreamBuilder assembling programs, RequestCoalescer batching
 * requests, a tenant's virtual view of a shared executor) needs to
 * define objects, move data, and run streams — without naming the
 * concrete executor. StreamExecutor is the physical implementation;
 * TenantExecutor::view() returns a per-tenant virtualization whose
 * object ids live in that tenant's namespace.
 */
class StreamService
{
  public:
    virtual ~StreamService() = default;

    /** Registers an object of @p elements × @p bits; returns its id. */
    virtual uint16_t defineObject(size_t elements, size_t bits) = 0;

    /**
     * Releases object @p id: its group allocation is freed (after any
     * in-flight streams complete) and every further use of the id is
     * rejected with a typed BbopError.
     */
    virtual void releaseObject(uint16_t id) = 0;

    /** Writes host data into the object's horizontal image. */
    virtual void writeObject(uint16_t id,
                             const std::vector<uint64_t> &data) = 0;

    /** @return The object's current horizontal image. */
    virtual std::vector<uint64_t> readObject(uint16_t id) = 0;

    /** @return Shape/layout of object @p id (BbopError if unknown). */
    virtual BbopObjectShape objectShape(uint16_t id) const = 0;

    /** Validates and enqueues a decoded instruction stream. */
    virtual StreamHandle
    submit(const std::vector<BbopInstr> &stream) = 0;

    /** Validates and enqueues a multi-segment program. */
    virtual std::vector<StreamHandle> submit(const StreamIR &ir) = 0;

    /** Blocks until every stream this service submitted completed. */
    virtual void sync() = 0;
};

/** Asynchronous bbop-stream service over a DeviceGroup. */
class StreamExecutor : public StreamService, private BbopObjectView
{
  public:
    /**
     * Spawns one worker thread per device of @p group (borrowed;
     * must outlive the executor).
     */
    explicit StreamExecutor(DeviceGroup &group)
        : StreamExecutor(group, StreamExecutorOptions{})
    {}

    /** As above, with bounded-queue/backpressure options. */
    StreamExecutor(DeviceGroup &group, StreamExecutorOptions opts);

    /** Drains pending streams and joins the workers. */
    ~StreamExecutor() override;

    StreamExecutor(const StreamExecutor &) = delete;
    StreamExecutor &operator=(const StreamExecutor &) = delete;

    /** @return The device group driven by this executor. */
    DeviceGroup &group() { return *group_; }

    /** @return The executor's options. */
    const StreamExecutorOptions &options() const { return opts_; }

    /**
     * Registers a memory object of @p elements elements of @p bits
     * bits and returns its object id. The vertical (sharded) storage
     * is reserved up front; bbop_trsp populates it.
     */
    uint16_t defineObject(size_t elements, size_t bits) override;

    /**
     * Releases object @p id: drains in-flight streams (so none can
     * still reference the storage), frees the group allocation back
     * to the devices (identically-shaped re-definitions recycle the
     * rows), and marks the id dead — any further bbop reference,
     * read/write, or objectShape() of it raises a typed BbopError.
     * Ids are never reused; the table slot stays as a tombstone.
     */
    void releaseObject(uint16_t id) override;

    /** Writes host data into an object's horizontal image (syncs). */
    void writeObject(uint16_t id,
                     const std::vector<uint64_t> &data) override;

    /** @return The object's current horizontal image (syncs). */
    std::vector<uint64_t> readObject(uint16_t id) override;

    /**
     * Validates and enqueues a decoded instruction stream. Throws
     * BbopError (enqueuing nothing) if any instruction is malformed,
     * and StreamRejectedError (equally without side effects) if a
     * bounded queue is full under BackpressurePolicy::Reject.
     * Thread-safe: streams may be submitted from multiple threads;
     * the submission order defines the execution order.
     */
    StreamHandle submit(const std::vector<BbopInstr> &stream) override;

    /** Decodes a stream of 64-bit bbop words and submits it. */
    StreamHandle submit(const std::vector<uint64_t> &encoded);

    /**
     * Validates and enqueues a multi-segment program (typically built
     * with StreamBuilder). The ORIGINAL program is validated as a
     * unit — a malformed instruction anywhere rejects the whole
     * program atomically — then the enabled optimizer passes run and
     * one stream per surviving segment is dispatched, in order.
     * Returns one handle per final segment (fusion merges handles:
     * a fused segment's handle covers every original segment folded
     * into it). Same backpressure semantics as submit(stream), with
     * Reject requiring room for ALL segments up front.
     */
    std::vector<StreamHandle> submit(const StreamIR &ir) override;

    /**
     * @return Shape and layout state of object @p id, for callers
     *         (StreamBuilder) that derive instruction widths from the
     *         object table. Throws BbopError on unknown ids.
     */
    BbopObjectShape objectShape(uint16_t id) const override;

    /** Blocks until every submitted stream has completed. */
    void sync() override;

    /** @return The number of worker threads (= devices). */
    size_t workerCount() const;

    /**
     * @return The deepest per-device queue depth any submit() has
     *         observed over the executor's lifetime.
     *
     * This and the counters below are wait-free: they read atomics
     * and never touch submit_mu_, so a monitoring thread (e.g. the
     * serving harness polling for its stats roll-up) cannot be
     * starved by a submitter that holds the submit lock across a
     * long Block-mode backpressure wait.
     */
    size_t queueHighWatermark() const;

    /**
     * @return Total instructions elided by the stream cache over the
     *         executor's lifetime (0 when the cache is disabled).
     *         Always cacheTrspHits() + cacheInitHits(). Wait-free,
     *         but the two addends are read independently: a sum
     *         racing a concurrent submit may briefly exclude its
     *         newest hits.
     */
    uint64_t cacheHits() const;

    /** @return Lifetime trsp/trsp_inv elisions by the stream cache. */
    uint64_t cacheTrspHits() const;

    /** @return Lifetime bbop_init elisions by the stream cache. */
    uint64_t cacheInitHits() const;

    /**
     * @return Total instructions removed by the optimizer passes over
     *         the executor's lifetime (0 with all passes disabled).
     */
    uint64_t optimizedInstructionCount() const;

    /**
     * @return Lifetime count of lint diagnostics produced by
     *         Warn/Strict-mode submissions (0 with lintMode Off).
     *         Wait-free like the counters above: a monitor polling
     *         "is the fleet still lint-clean?" never blocks behind a
     *         submitter. Draining does not reset it.
     */
    uint64_t lintDiagnosticCount() const;

    /**
     * @return Every accumulated diagnostic, in submission order,
     *         emptying the buffer. Takes the submit lock (briefly —
     *         the buffer is moved out).
     */
    std::vector<StreamDiagnostic> drainDiagnostics();

    /**
     * @return Lifetime integrity-check failures detected on device
     *         @p d (0 with IntegrityMode::Off). Wait-free, like the
     *         counters above.
     */
    uint64_t deviceFaultCount(size_t d) const;

    /**
     * @return False once device @p d has been quarantined (its
     *         detected-fault count reached quarantineFaultThreshold).
     *         Wait-free.
     */
    bool deviceHealthy(size_t d) const;

    /** @return Number of currently quarantined devices. Wait-free. */
    size_t quarantinedDeviceCount() const;

  private:
    struct Object;
    struct PreparedInstr;
    struct Worker;

    /** Per-device shard views of one operand, shared per object. */
    using PreparedInstrViews =
        std::shared_ptr<const std::vector<DeviceGroup::ShardView>>;

    /**
     * Cache-relevant shadow state of one object, tracked in
     * submission order under submit_mu_ (which matches execution:
     * every device runs streams in submission order, and host
     * accesses drain first).
     */
    struct CacheState
    {
        /** Vertical storage holds exactly the horizontal image. */
        bool vertClean = false;
        /** Both images hold the broadcast constant constVal. */
        bool hasConst = false;
        uint64_t constVal = 0;
        /** DeviceGroup::mutationGen() when vertClean was set. */
        uint64_t cleanGen = 0;
    };

    /** One lowered segment, resolved but not yet committed. */
    struct PreparedSegment
    {
        std::shared_ptr<const std::vector<PreparedInstr>> prog;
        /** trsp/trsp_inv elisions by the stream cache. */
        size_t cachedTrsp = 0;
        /** bbop_init elisions by the stream cache. */
        size_t cachedInit = 0;
    };

    Object &object(uint16_t id) SIMDRAM_REQUIRES(submit_mu_);

    // BbopObjectView over the object table (for the validator and
    // the analyzer; both only run under submit_mu_). The REQUIRES
    // contract is enforced at our direct call sites — calls through
    // the BbopObjectView base are outside the analysis, which is why
    // every such call happens inside submitLocked()/objectShape().
    size_t objectCount() const override SIMDRAM_REQUIRES(submit_mu_)
    {
        return objects_.size();
    }
    BbopObjectShape shape(uint16_t id) const override
        SIMDRAM_REQUIRES(submit_mu_);

    /**
     * Resolves one already-validated segment into per-instruction
     * object pointers and shard views, deciding stream-cache elisions
     * against @p cache (a scratch copy of the per-object shadows,
     * shared across a submission's segments and committed by the
     * caller only on acceptance). Touches no executor state.
     */
    PreparedSegment resolveSegment(
        const std::vector<BbopInstr> &seg,
        std::vector<CacheState> &cache,
        std::map<const Object *, PreparedInstrViews> &views)
        SIMDRAM_REQUIRES(submit_mu_);

    /**
     * Whole submit path for one program; submit_mu_ held. @p entry
     * is the wall-clock instant the public submit() was entered —
     * the origin of every resulting stream's end-to-end clock
     * (StreamResult::wallNs), captured BEFORE the submit lock and
     * any backpressure wait.
     */
    std::vector<StreamHandle> submitLocked(
        const StreamIR &ir,
        std::chrono::steady_clock::time_point entry)
        SIMDRAM_REQUIRES(submit_mu_);

    /**
     * Applies the Reject backpressure policy for a @p segments-job
     * submission: throws StreamRejectedError unless every device
     * queue has room for ALL of them (all-or-nothing — workers only
     * shrink queues, so room observed here still exists at push).
     * Under Block this is a no-op; the per-segment push waits
     * instead. Called with submit_mu_ held, before any commit.
     */
    void reserveQueueSpace(size_t segments)
        SIMDRAM_REQUIRES(submit_mu_);

    void workerMain(size_t d);
    void execOn(size_t d, const PreparedInstr &pi);

    /** Per-device shadow/snapshot state of one in-flight job (one
     *  execution attempt's worth of verification context). */
    struct ShadowCtx;

    /**
     * Runs one dequeued stream on device @p d with the configured
     * detection/recovery pipeline (deadline → attempts → integrity
     * verify → backoff/retry → quarantine fallback). Device lock
     * held via @p devlock (released only around backoff sleeps).
     * @return The error to record, or nullptr on success; fills the
     * per-device attempt/fault/recovery attribution out-params.
     */
    std::exception_ptr
    runJob(size_t d, std::unique_lock<std::mutex> &devlock,
           const detail::StreamState &st,
           const std::vector<PreparedInstr> &prog, size_t &attempts,
           size_t &faults, int &recoveredOn);

    /** Snapshots operands + simulates the host-side shadow. */
    void prepareShadow(size_t d,
                       const std::vector<PreparedInstr> &prog,
                       ShadowCtx &ctx);

    /** Restores device @p d's pre-stream state from the snapshot. */
    void restoreJob(size_t d, const ShadowCtx &ctx);

    /**
     * Executes the program on device @p d, applying the per-op
     * temporal redundancy check under IntegrityMode::DualModular and
     * the end-of-stream shadow comparison for both modes. @return
     * npos on clean verification, else the index of the instruction
     * the detected corruption is attributed to.
     */
    size_t executeChecked(size_t d,
                          const std::vector<PreparedInstr> &prog,
                          const ShadowCtx &ctx);

    /**
     * Quarantine fallback: executes the program for device @p d with
     * every bbop op re-executed on the first healthy device (or the
     * host reference kernels when none remains); TRA-free
     * instructions run on @p d directly. Sets @p recoveredOn.
     */
    void fallbackJob(size_t d,
                     const std::vector<PreparedInstr> &prog,
                     int &recoveredOn);

    DeviceGroup *group_;
    StreamExecutorOptions opts_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Serializes submit()/defineObject() and the object table. */
    mutable Mutex submit_mu_;
    /** The object table, including per-object shadow state. */
    std::vector<std::unique_ptr<Object>> objects_
        SIMDRAM_GUARDED_BY(submit_mu_);
    /** Lint findings accumulated by Warn/Strict submissions, in
     *  submission order, until drainDiagnostics() collects them. */
    std::vector<StreamDiagnostic> lint_diags_
        SIMDRAM_GUARDED_BY(submit_mu_);
    /**
     * Lifetime counters. Writers are serialized by submit_mu_ (so
     * plain read-modify-write under the lock is single-writer), but
     * they are atomics so the getters can read them WITHOUT the
     * lock: a Block-mode submit() holds submit_mu_ for its whole
     * backpressure wait, and a monitoring getter must not block (or
     * race, under TSan) behind it.
     */
    std::atomic<size_t> high_watermark_{0};
    std::atomic<uint64_t> cache_trsp_hits_{0};
    std::atomic<uint64_t> cache_init_hits_{0};
    std::atomic<uint64_t> optimized_count_{0};
    std::atomic<uint64_t> lint_count_{0};
    /** Monotonic stream submission sequence (attribution). */
    std::atomic<uint64_t> stream_seq_{0};
    /**
     * Per-device health state. Written by the owning device's worker
     * (under its device lock), read wait-free by the getters and by
     * quarantined workers scanning for a healthy peer; atomics keep
     * those cross-thread reads race-free.
     */
    std::unique_ptr<std::atomic<uint64_t>[]> fault_counts_;
    std::unique_ptr<std::atomic<bool>[]> healthy_;
};

} // namespace simdram

#endif // SIMDRAM_RUNTIME_STREAM_EXECUTOR_H
