/**
 * @file
 * Multi-device runtime, part 2: asynchronous bbop-stream execution.
 *
 * The StreamExecutor is the memory-controller-side service the
 * paper's bbop ISA assumes: the host enqueues encoded bbop
 * instruction streams and continues; the controller executes them
 * behind the scenes. Here, a group-wide object table maps bbop object
 * ids to ShardedVecs, and one worker thread per device replays each
 * submitted stream against that device's shards:
 *
 *   DeviceGroup g(cfg, 4);
 *   StreamExecutor ex(g, {.maxQueuedStreams = 8});
 *   auto a = ex.defineObject(n, 32);
 *   auto y = ex.defineObject(n, 32);
 *   ex.writeObject(a, data);
 *   auto h = ex.submit({BbopInstr::trsp(a, 32),
 *                       BbopInstr::trsp(y, 32),
 *                       BbopInstr::unary(OpKind::Abs, 32, y, a),
 *                       BbopInstr::trspInv(y, 32)});
 *   ... overlap host work, submit more streams ...
 *   StreamResult r = h.wait();   // merged stats + wall clock
 *   auto out = ex.readObject(y);
 *
 * Semantics and guarantees:
 *  - Submission order is execution order on every device, so results
 *    are bit-exact with running the same streams sequentially on a
 *    single Processor holding the whole (unsharded) vectors.
 *  - submit() validates the whole stream through the shared
 *    BbopValidator (src/isa/validate.cc — the same rules the
 *    BbopDispatcher enforces) and throws BbopError without enqueuing
 *    anything if any instruction is malformed: a bad stream is
 *    rejected as a unit and never reaches a device or the object
 *    table.
 *  - Backpressure: with maxQueuedStreams > 0 each device queue is
 *    bounded. A submit() that finds a queue full either blocks until
 *    space frees up (BackpressurePolicy::Block, the default) or
 *    throws the typed StreamRejectedError without any side effect
 *    (BackpressurePolicy::Reject) — a rejected stream leaves layout
 *    state and queues exactly as they were. StreamResult carries the
 *    per-stream watermarks (queue depth at submit, time blocked).
 *  - Each completed stream reports its own DramStats deltas, merged
 *    across devices with merge() (latency = max: devices execute
 *    concurrently), plus submit-to-completion wall time.
 *  - writeObject()/readObject() synchronize (drain all pending
 *    streams) before touching host images.
 *  - Stream cache (StreamExecutorOptions::enableStreamCache, on by
 *    default): repeated bbop_trsp / bbop_trsp_inv / bbop_init of
 *    objects whose tracked state proves them redundant are elided at
 *    submit() time — within one stream and across streams — with
 *    generation-tagged invalidation on every write (bbop op/shift/
 *    init outputs, writeObject, and out-of-band DeviceGroup writes
 *    via mutationGen()). Memory state is bit-exact with the cache
 *    off; only the per-stream DramStats shrink. Pipelined apps that
 *    resubmit self-contained streams (knn re-transposing its
 *    reference set per query, nn re-broadcasting weights per tile)
 *    stop paying for data that has not changed.
 */

#ifndef SIMDRAM_RUNTIME_STREAM_EXECUTOR_H
#define SIMDRAM_RUNTIME_STREAM_EXECUTOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "isa/bbop.h"
#include "isa/validate.h"
#include "runtime/device_group.h"

namespace simdram
{

namespace detail
{
struct StreamState;
} // namespace detail

/**
 * Raised by submit() under BackpressurePolicy::Reject when a bounded
 * device queue is full. Distinct from BbopError: the stream is
 * well-formed, the service is just saturated — the caller may retry.
 */
class StreamRejectedError : public FatalError
{
  public:
    explicit StreamRejectedError(const std::string &what)
        : FatalError(what)
    {}
};

/** What submit() does when a bounded device queue is full. */
enum class BackpressurePolicy
{
    Block,  ///< Block the submitter until space frees up.
    Reject, ///< Throw StreamRejectedError (no side effects).
};

/** Tuning knobs of a StreamExecutor. */
struct StreamExecutorOptions
{
    /** Max streams queued (not yet started) per device; 0 = unbounded. */
    size_t maxQueuedStreams = 0;
    /** Behaviour when a bounded queue is full at submit(). */
    BackpressurePolicy onFull = BackpressurePolicy::Block;
    /**
     * Stream-level trsp/init cache: when enabled, submit() elides
     * instructions that are provably redundant against the objects'
     * tracked layout/content state — a bbop_trsp (or trsp_inv) of an
     * object whose vertical and horizontal images are already
     * coherent, or a bbop_init re-broadcasting the value the object
     * already holds everywhere. Elision is decided in submission
     * order, tagged with the DeviceGroup mutation generation of the
     * backing vector (any out-of-band synchronous write invalidates),
     * and is invisible except in statistics: memory state is
     * bit-exact with the cache disabled, per-stream DramStats simply
     * stop paying for re-transposes of unchanged data. Skipped
     * instructions are reported in StreamResult::cachedInstructions.
     */
    bool enableStreamCache = true;
};

/** Completion data for one executed stream. */
struct StreamResult
{
    /** Compute stats of this stream, merged over devices. */
    DramStats compute;
    /** Host-transfer (transposition) stats of this stream. */
    DramStats transfer;
    /** Submit-to-last-device-completion wall time (host ns). */
    double wallNs = 0.0;
    /** Number of instructions in the stream (as submitted). */
    size_t instructions = 0;
    /**
     * Of those, how many the stream cache elided as redundant
     * (always 0 when the cache is disabled). Elided instructions
     * contribute nothing to the compute/transfer stats.
     */
    size_t cachedInstructions = 0;
    /**
     * Deepest per-device queue (this stream included) observed when
     * the stream was enqueued — the stream's watermark.
     */
    size_t queueDepthAtSubmit = 0;
    /** Host ns submit() spent blocked on backpressure (Block only). */
    double backpressureWaitNs = 0.0;
};

/** Future-style handle to a submitted stream. */
class StreamHandle
{
  public:
    StreamHandle() = default;

    /** @return True if the handle refers to a submitted stream. */
    bool valid() const { return state_ != nullptr; }

    /**
     * Blocks until the stream completes on every device and returns
     * its result. Rethrows any error raised during execution.
     */
    StreamResult wait();

    /** @return True once the stream has completed (non-blocking). */
    bool done() const;

  private:
    friend class StreamExecutor;
    std::shared_ptr<detail::StreamState> state_;
};

/** Asynchronous bbop-stream service over a DeviceGroup. */
class StreamExecutor : private BbopObjectView
{
  public:
    /**
     * Spawns one worker thread per device of @p group (borrowed;
     * must outlive the executor).
     */
    explicit StreamExecutor(DeviceGroup &group)
        : StreamExecutor(group, StreamExecutorOptions{})
    {}

    /** As above, with bounded-queue/backpressure options. */
    StreamExecutor(DeviceGroup &group, StreamExecutorOptions opts);

    /** Drains pending streams and joins the workers. */
    ~StreamExecutor();

    StreamExecutor(const StreamExecutor &) = delete;
    StreamExecutor &operator=(const StreamExecutor &) = delete;

    /** @return The device group driven by this executor. */
    DeviceGroup &group() { return *group_; }

    /** @return The executor's options. */
    const StreamExecutorOptions &options() const { return opts_; }

    /**
     * Registers a memory object of @p elements elements of @p bits
     * bits and returns its object id. The vertical (sharded) storage
     * is reserved up front; bbop_trsp populates it.
     */
    uint16_t defineObject(size_t elements, size_t bits);

    /** Writes host data into an object's horizontal image (syncs). */
    void writeObject(uint16_t id, const std::vector<uint64_t> &data);

    /** @return The object's current horizontal image (syncs). */
    std::vector<uint64_t> readObject(uint16_t id);

    /**
     * Validates and enqueues a decoded instruction stream. Throws
     * BbopError (enqueuing nothing) if any instruction is malformed,
     * and StreamRejectedError (equally without side effects) if a
     * bounded queue is full under BackpressurePolicy::Reject.
     * Thread-safe: streams may be submitted from multiple threads;
     * the submission order defines the execution order.
     */
    StreamHandle submit(const std::vector<BbopInstr> &stream);

    /** Decodes a stream of 64-bit bbop words and submits it. */
    StreamHandle submit(const std::vector<uint64_t> &encoded);

    /** Blocks until every submitted stream has completed. */
    void sync();

    /** @return The number of worker threads (= devices). */
    size_t workerCount() const;

    /**
     * @return The deepest per-device queue depth any submit() has
     *         observed over the executor's lifetime.
     */
    size_t queueHighWatermark() const;

    /**
     * @return Total instructions elided by the stream cache over the
     *         executor's lifetime (0 when the cache is disabled).
     */
    uint64_t cacheHits() const;

  private:
    struct Object;
    struct PreparedInstr;
    struct Worker;

    /**
     * Cache-relevant shadow state of one object, tracked in
     * submission order under submit_mu_ (which matches execution:
     * every device runs streams in submission order, and host
     * accesses drain first).
     */
    struct CacheState
    {
        /** Vertical storage holds exactly the horizontal image. */
        bool vertClean = false;
        /** Both images hold the broadcast constant constVal. */
        bool hasConst = false;
        uint64_t constVal = 0;
        /** DeviceGroup::mutationGen() when vertClean was set. */
        uint64_t cleanGen = 0;
    };

    /** A validated stream, resolved but not yet committed. */
    struct Prepared
    {
        std::shared_ptr<const std::vector<PreparedInstr>> prog;
        /** Post-stream layout state, applied only on acceptance. */
        std::vector<bool> layout;
        /** Post-stream cache states, applied only on acceptance. */
        std::vector<CacheState> cache;
        /** Instructions elided by the stream cache. */
        size_t cachedCount = 0;
    };

    Object &object(uint16_t id);

    // BbopObjectView over the object table (for the validator).
    size_t objectCount() const override { return objects_.size(); }
    BbopObjectShape shape(uint16_t id) const override;

    /**
     * Validates @p stream through the shared BbopValidator and
     * resolves it into per-instruction object pointers and shard
     * views. Touches no executor state: the caller commits
     * Prepared::layout once the stream is accepted for execution.
     */
    Prepared prepare(const std::vector<BbopInstr> &stream);

    /**
     * Applies the backpressure policy: returns (ns blocked) once
     * every device queue has room, or throws StreamRejectedError.
     * Called with submit_mu_ held, before any state is committed.
     */
    double reserveQueueSpace();

    void workerMain(size_t d);
    void execOn(size_t d, const PreparedInstr &pi);

    DeviceGroup *group_;
    StreamExecutorOptions opts_;
    std::vector<std::unique_ptr<Object>> objects_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Serializes submit()/defineObject() and the object table. */
    mutable std::mutex submit_mu_;
    /** Lifetime queue-depth high watermark; guarded by submit_mu_. */
    size_t high_watermark_ = 0;
    /** Lifetime stream-cache hit count; guarded by submit_mu_. */
    uint64_t cache_hits_ = 0;
};

} // namespace simdram

#endif // SIMDRAM_RUNTIME_STREAM_EXECUTOR_H
