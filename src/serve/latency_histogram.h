/**
 * @file
 * Concurrent log-linear latency histogram for the serving harness.
 *
 * The coalescer records one end-to-end latency per completed request
 * (queue + coalesce + execute, on the corrected StreamResult clock)
 * and the harness reads p50/p99/p999 while traffic is in flight, so
 * the histogram must be cheap and contention-free on the record path:
 * buckets are relaxed atomics (no locks anywhere), and a record() is
 * one fetch_add on a bucket plus one on the total.
 *
 * Buckets are log-linear (HdrHistogram-style): values below
 * 2^kSubBits ns get exact unit buckets; above that, each power-of-two
 * octave is split into 2^kSubBits linear sub-buckets, bounding the
 * relative quantile error at 2^-kSubBits (12.5%) — plenty for SLO
 * percentiles, with a fixed 496-bucket footprint covering the full
 * uint64 ns range (~584 years).
 *
 * Quantile reads snapshot the buckets non-atomically: concurrent
 * records may or may not be included (each bucket is internally
 * consistent, the set is not a point-in-time cut). That is the usual
 * monitoring contract; reset() has the same caveat.
 */

#ifndef SIMDRAM_SERVE_LATENCY_HISTOGRAM_H
#define SIMDRAM_SERVE_LATENCY_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace simdram
{

/** Lock-free log-linear histogram of nanosecond latencies. */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per octave = 2^kSubBits (12.5% error). */
    static constexpr size_t kSubBits = 3;
    /** Total buckets covering [0, 2^64) ns. */
    static constexpr size_t kBuckets =
        ((64 - kSubBits) << kSubBits) + (1 << kSubBits);

    LatencyHistogram() = default;

    /**
     * Copies @p other's counts (per-bucket relaxed reads — not an
     * atomic cut; see the class comment). This is what snapshot()
     * returns; assignment stays deleted (the members are atomics).
     */
    LatencyHistogram(const LatencyHistogram &other) { merge(other); }

    /** Records one latency (negative values clamp to 0). */
    void record(double ns);

    /** @return Number of recorded latencies. */
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /**
     * @return The @p q quantile (q in [0, 1]) as the midpoint of the
     *         bucket holding the ceil(q * count)-th smallest sample;
     *         0 when empty. quantile(1.0) is the top non-empty
     *         bucket's midpoint — see maxNs() for the exact maximum.
     */
    double quantileNs(double q) const;

    /** Convenience quantiles. */
    double p50() const { return quantileNs(0.50); }
    double p99() const { return quantileNs(0.99); }
    double p999() const { return quantileNs(0.999); }

    /** @return The exact largest recorded latency (0 when empty). */
    double maxNs() const
    {
        return static_cast<double>(
            max_.load(std::memory_order_relaxed));
    }

    /** Clears all counts (racy vs concurrent record, see above). */
    void reset();

    /**
     * Adds every bucket of @p other into this histogram (and folds
     * its max), so per-tenant histograms roll up into fleet-wide
     * quantiles: the merged quantiles are exactly those of the
     * concatenated sample sets (both sides bucket identically).
     * Reads of @p other are relaxed per bucket — concurrent records
     * there may or may not be included, the usual monitoring
     * contract. Self-merge is rejected (fatal).
     */
    void merge(const LatencyHistogram &other);

    /**
     * @return A copy of the current counts (same per-bucket caveat
     *         as quantileNs: buckets are read one by one, not as an
     *         atomic cut). The copy is a plain value — quantiles on
     *         it are stable while the original keeps recording.
     */
    LatencyHistogram snapshot() const;

    /** @return The bucket index of @p ns (exposed for tests). */
    static size_t bucketOf(uint64_t ns);

    /** @return The inclusive lower bound of bucket @p idx in ns. */
    static uint64_t bucketLowNs(size_t idx);

    /** @return The exclusive upper bound of bucket @p idx in ns. */
    static uint64_t bucketHighNs(size_t idx);

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> max_{0};
};

} // namespace simdram

#endif // SIMDRAM_SERVE_LATENCY_HISTOGRAM_H
