#include "serve/request_coalescer.h"

#include <algorithm>

#include "common/error.h"

namespace simdram
{

namespace detail
{

/** Shared completion state of one admitted request. */
struct RequestState
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResult result;
    /** Error raised executing the request's batch, if any. */
    std::exception_ptr error;
    /** Arrival at submit() — origin of the end-to-end clock. */
    std::chrono::steady_clock::time_point arrival;
};

} // namespace detail

namespace
{

double
nsBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::nano>(b - a).count();
}

} // namespace

ServeResult
ServeFuture::wait()
{
    if (!state_)
        fatal("ServeFuture::wait: empty handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->result;
}

bool
ServeFuture::done() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

RequestCoalescer::RequestCoalescer(StreamService &ex,
                                   CoalescerOptions opts)
    : ex_(&ex), opts_(opts)
{
    if (opts_.maxBatch == 0)
        fatal("RequestCoalescer: maxBatch must be >= 1");
    if (opts_.maxLingerUs < 0.0)
        fatal("RequestCoalescer: negative linger");
    dispatcher_ = std::thread([this] { dispatcherMain(); });
}

RequestCoalescer::~RequestCoalescer()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    // The dispatcher flushes and completes everything admitted
    // before exiting; blocked Block-mode submitters are woken into
    // an error (destroying a coalescer out from under submitters is
    // a caller bug, but it must not deadlock).
    dispatch_cv_.notify_all();
    admit_cv_.notify_all();
    dispatcher_.join();
}

uint32_t
RequestCoalescer::registerClass(RequestClassSpec spec)
{
    if (spec.elements == 0)
        fatal("RequestCoalescer: class '" + spec.name +
              "' has zero elements");
    if (spec.bits == 0 || spec.bits > 64)
        fatal("RequestCoalescer: class '" + spec.name +
              "' width out of range");
    if (spec.outputBits > 64)
        fatal("RequestCoalescer: class '" + spec.name +
              "' output width out of range");
    if (!spec.emit)
        fatal("RequestCoalescer: class '" + spec.name +
              "' has no emit callback");
    for (const auto &s : spec.shared)
        if (s.size() != spec.elements)
            fatal("RequestCoalescer: class '" + spec.name +
                  "' shared data has wrong lane count");
    auto cs = std::make_unique<ClassState>();
    cs->spec = std::move(spec);
    MutexLock lock(mu_);
    classes_.push_back(std::move(cs));
    return static_cast<uint32_t>(classes_.size() - 1);
}

ServeFuture
RequestCoalescer::submit(uint32_t cls,
                         std::vector<std::vector<uint64_t>> inputs)
{
    const auto arrival = std::chrono::steady_clock::now();

    // Validate the request shape BEFORE touching any shared state,
    // so every throw out of submit() is side-effect-free. Grab the
    // ClassState pointer under mu_ (classes_ may reallocate under a
    // concurrent registerClass); the pointee itself is stable.
    ClassState *csp = nullptr;
    {
        MutexLock lock(mu_);
        if (cls >= classes_.size())
            fatal("RequestCoalescer: unknown class id " +
                  std::to_string(cls));
        csp = classes_[cls].get();
    }
    const RequestClassSpec &spec = csp->spec;
    if (inputs.size() != spec.requestInputs)
        fatal("RequestCoalescer: class '" + spec.name + "' takes " +
              std::to_string(spec.requestInputs) +
              " inputs, got " + std::to_string(inputs.size()));
    for (const auto &in : inputs)
        if (in.size() != spec.elements)
            fatal("RequestCoalescer: class '" + spec.name +
                  "' input has wrong lane count");

    auto st = std::make_shared<detail::RequestState>();
    st->arrival = arrival;

    {
        UniqueLock lock(mu_);
        if (stop_)
            fatal("RequestCoalescer: submit after shutdown began");
        if (opts_.maxPending > 0 && pending_ >= opts_.maxPending) {
            if (opts_.onFull == AdmissionPolicy::Shed) {
                // Typed, synchronous, zero side effects: the request
                // never joined a batch and no future exists.
                shed_.fetch_add(1, std::memory_order_relaxed);
                throw RequestShedError(
                    "RequestCoalescer" +
                    (opts_.tenantTag.empty()
                         ? std::string()
                         : " [tenant " + opts_.tenantTag + "]") +
                    ": pending-request budget exhausted (" +
                    std::to_string(opts_.maxPending) +
                    " requests in flight)");
            }
            // Explicit wait loop (not the predicate overload): the
            // guarded members are read in this scope, where the
            // thread-safety analysis can see the lock is held.
            while (pending_ >= opts_.maxPending && !stop_)
                admit_cv_.wait(lock);
            if (stop_)
                fatal("RequestCoalescer: shut down while blocked "
                      "on admission");
        }
        ++pending_;
        ClassState &cs = *csp;
        if (cs.open.empty())
            cs.openSince = std::chrono::steady_clock::now();
        cs.open.push_back(Pending{st, std::move(inputs)});
        if (cs.open.size() >= opts_.maxBatch) {
            ready_.push_back(Batch{cls, std::move(cs.open)});
            cs.open.clear();
        }
        // Wake the dispatcher either way: a full batch must run now,
        // a first request must arm the linger deadline.
        dispatch_cv_.notify_all();
    }

    ServeFuture f;
    f.state_ = std::move(st);
    return f;
}

void
RequestCoalescer::flush()
{
    MutexLock lock(mu_);
    closeDueLocked(/*force=*/true);
    dispatch_cv_.notify_all();
}

void
RequestCoalescer::drain()
{
    flush();
    UniqueLock lock(mu_);
    for (;;) {
        bool openEmpty = true;
        for (const auto &cs : classes_)
            if (!cs->open.empty())
                openEmpty = false;
        if (pending_ == 0 && ready_.empty() && openEmpty)
            return;
        drain_cv_.wait(lock);
    }
}

size_t
RequestCoalescer::pendingRequests() const
{
    MutexLock lock(mu_);
    return pending_;
}

void
RequestCoalescer::closeDueLocked(bool force)
{
    const auto now = std::chrono::steady_clock::now();
    const auto linger = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::micro>(opts_.maxLingerUs));
    for (uint32_t c = 0; c < classes_.size(); ++c) {
        ClassState &cs = *classes_[c];
        if (cs.open.empty())
            continue;
        if (force || now - cs.openSince >= linger) {
            ready_.push_back(Batch{c, std::move(cs.open)});
            cs.open.clear();
        }
    }
}

void
RequestCoalescer::dispatcherMain()
{
    UniqueLock lock(mu_);
    for (;;) {
        // Stop means "finish everything admitted, then exit": close
        // all open batches so nothing lingers past shutdown.
        if (stop_)
            closeDueLocked(/*force=*/true);

        if (!ready_.empty()) {
            Batch b = std::move(ready_.front());
            ready_.pop_front();
            // Snapshot the slots' completion states before handing
            // the Batch over: executeBatch owns it after the move, so
            // if an exception ever escapes (allocation failure while
            // classifying or slicing) this snapshot is the only route
            // left to the futures. A throwing batch must propagate
            // into every slot's future, never strand a waiter.
            std::vector<std::shared_ptr<detail::RequestState>> slots;
            slots.reserve(b.reqs.size());
            for (const auto &p : b.reqs)
                slots.push_back(p.st);
            lock.unlock();
            try {
                executeBatch(std::move(b));
            } catch (...) {
                failSlots(slots, std::current_exception());
            }
            lock.lock();
            continue;
        }

        // Earliest linger deadline among open batches, if any.
        bool anyOpen = false;
        std::chrono::steady_clock::time_point earliest;
        for (const auto &cs : classes_)
            if (!cs->open.empty()) {
                if (!anyOpen || cs->openSince < earliest)
                    earliest = cs->openSince;
                anyOpen = true;
            }

        if (stop_ && !anyOpen)
            return; // nothing queued, nothing open: all drained

        if (anyOpen) {
            const auto deadline =
                earliest +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::micro>(
                        opts_.maxLingerUs));
            dispatch_cv_.wait_until(lock, deadline);
            closeDueLocked(/*force=*/false);
        } else {
            dispatch_cv_.wait(lock);
        }
    }
}

void
RequestCoalescer::failSlots(
    const std::vector<std::shared_ptr<detail::RequestState>> &slots,
    std::exception_ptr err)
{
    // Every throw point in executeBatch precedes its pending_
    // release, so the whole batch's admission budget is still held
    // when this runs; slots executeBatch already fulfilled (an escape
    // mid-slicing) keep their results — only the stranded ones get
    // the error. Counters are best-effort on this path.
    size_t newlyDone = 0;
    for (const auto &sp : slots) {
        detail::RequestState &st = *sp;
        std::lock_guard<std::mutex> lock(st.mu);
        if (st.done)
            continue;
        st.error = err;
        st.done = true;
        ++newlyDone;
        st.cv.notify_all();
    }
    completed_.fetch_add(newlyDone, std::memory_order_relaxed);
    failed_.fetch_add(newlyDone, std::memory_order_relaxed);
    {
        MutexLock lock(mu_);
        pending_ -= slots.size();
    }
    admit_cv_.notify_all();
    drain_cv_.notify_all();
}

void
RequestCoalescer::ensureObjects(ClassState &cs)
{
    if (cs.objectsReady)
        return;
    const RequestClassSpec &spec = cs.spec;
    const size_t lanes = opts_.maxBatch * spec.elements;

    // Build the group into locals and publish only at the end: a
    // mid-definition failure (tenant quota, subarray capacity)
    // releases whatever was defined and leaves the class untouched,
    // so a later batch retries from scratch instead of emitting
    // against a half-defined object group.
    std::vector<uint16_t> reqObjs;
    std::vector<uint16_t> shObjs;
    uint16_t outObj = kNoObject;
    try {
        reqObjs.reserve(spec.requestInputs);
        for (size_t i = 0; i < spec.requestInputs; ++i)
            reqObjs.push_back(ex_->defineObject(lanes, spec.bits));
        shObjs.reserve(spec.shared.size());
        for (size_t s = 0; s < spec.shared.size(); ++s) {
            shObjs.push_back(ex_->defineObject(lanes, spec.bits));
            // Replicate the class-level data across every request slot
            // ONCE; the executor's stream cache keeps the transposed
            // image resident, so later batches elide these re-trsp's.
            std::vector<uint64_t> rep(lanes);
            for (size_t r = 0; r < opts_.maxBatch; ++r)
                std::copy(spec.shared[s].begin(),
                          spec.shared[s].end(),
                          rep.begin() +
                              static_cast<std::ptrdiff_t>(
                                  r * spec.elements));
            ex_->writeObject(shObjs[s], rep);
        }
        outObj = ex_->defineObject(
            lanes, spec.outputBits ? spec.outputBits : spec.bits);
    } catch (...) {
        for (uint16_t o : reqObjs)
            ex_->releaseObject(o);
        for (uint16_t o : shObjs)
            ex_->releaseObject(o);
        throw;
    }
    cs.requestObjs = std::move(reqObjs);
    cs.sharedObjs = std::move(shObjs);
    cs.outputObj = outObj;
    cs.objectsReady = true;
}

void
RequestCoalescer::executeBatch(Batch batch)
{
    // Take the pointer under mu_ (classes_ may reallocate); the
    // pointee is stable, and its exec-side fields (objects, scratch)
    // are dispatcher-only so no lock is needed past this point.
    ClassState *csp = nullptr;
    {
        MutexLock lock(mu_);
        csp = classes_[batch.cls].get();
    }
    ClassState &cs = *csp;
    const RequestClassSpec &spec = cs.spec;
    const auto dispatchT = std::chrono::steady_clock::now();

    std::exception_ptr err;
    std::vector<uint64_t> out;
    size_t streams = 0;
    try {
        ensureObjects(cs);
        const size_t n = spec.elements;
        const size_t lanes = opts_.maxBatch * n;

        // Lane-concatenate the batch's request inputs, zero-padding
        // the unused slots (their lanes compute garbage that the
        // per-request slicing below never reads).
        std::vector<uint64_t> concat(lanes);
        for (size_t slot = 0; slot < spec.requestInputs; ++slot) {
            std::fill(concat.begin(), concat.end(), 0);
            for (size_t r = 0; r < batch.reqs.size(); ++r)
                std::copy(
                    batch.reqs[r].inputs[slot].begin(),
                    batch.reqs[r].inputs[slot].end(),
                    concat.begin() +
                        static_cast<std::ptrdiff_t>(r * n));
            ex_->writeObject(cs.requestObjs[slot], concat);
        }

        // One fused program per batch: transpose the operands (the
        // stream cache elides every one that is already resident),
        // run the class pipeline, transpose the result back.
        StreamBuilder b(*ex_);
        for (uint16_t o : cs.sharedObjs)
            b.trsp(o);
        for (uint16_t o : cs.requestObjs)
            b.trsp(o);

        BatchLayout layout;
        layout.batch = batch.reqs.size();
        layout.capacity = opts_.maxBatch;
        layout.elements = lanes;
        layout.request = cs.requestObjs;
        layout.shared = cs.sharedObjs;
        layout.output = cs.outputObj;
        layout.scratch = [this, &cs, lanes](size_t i, size_t bits) {
            while (cs.scratchObjs.size() <= i)
                cs.scratchObjs.push_back(kNoObject);
            if (cs.scratchObjs[i] == kNoObject)
                cs.scratchObjs[i] = ex_->defineObject(lanes, bits);
            return cs.scratchObjs[i];
        };
        spec.emit(b, layout);
        b.trspInv(cs.outputObj);

        std::vector<StreamHandle> handles = b.submitAll();
        streams = handles.size();
        for (auto &h : handles)
            h.wait(); // rethrows execution errors
        out = ex_->readObject(cs.outputObj);
    } catch (...) {
        err = std::current_exception();
    }
    const auto doneT = std::chrono::steady_clock::now();

    // Classify the batch's error ONCE, then map it per request: an
    // unrecoverable in-DRAM fault becomes one device-attributed
    // RequestFaultError per slot rather than a batch-wide opaque
    // collapse, so each caller's wait() sees a typed error naming
    // its own request class and the faulting device.
    std::exception_ptr slotErr = err;
    if (err) {
        try {
            std::rethrow_exception(err);
        } catch (const StreamFaultError &e) {
            faulted_.fetch_add(batch.reqs.size(),
                               std::memory_order_relaxed);
            slotErr = std::make_exception_ptr(RequestFaultError(
                "RequestCoalescer: class '" + spec.name +
                    "' batch hit an unrecoverable in-DRAM fault: " +
                    e.what(),
                e.device()));
        } catch (const StreamDeadlineError &) {
            deadlined_.fetch_add(batch.reqs.size(),
                                 std::memory_order_relaxed);
        } catch (...) {
        }
        failed_.fetch_add(batch.reqs.size(),
                          std::memory_order_relaxed);
    }

    // Bump the lifetime counters BEFORE fulfilling any future, so a
    // caller returning from wait() observes them already updated.
    completed_.fetch_add(batch.reqs.size(),
                         std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);

    // Fulfill the per-request futures: slice the batched output and
    // stamp the latency breakdown on the end-to-end clock.
    const size_t n = spec.elements;
    for (size_t r = 0; r < batch.reqs.size(); ++r) {
        detail::RequestState &st = *batch.reqs[r].st;
        std::lock_guard<std::mutex> lock(st.mu);
        if (err) {
            st.error = slotErr;
        } else {
            st.result.output.assign(
                out.begin() + static_cast<std::ptrdiff_t>(r * n),
                out.begin() +
                    static_cast<std::ptrdiff_t>((r + 1) * n));
            st.result.queueNs = nsBetween(st.arrival, dispatchT);
            st.result.executeNs = nsBetween(dispatchT, doneT);
            st.result.totalNs = nsBetween(st.arrival, doneT);
            st.result.batchSize = batch.reqs.size();
            st.result.batchStreams = streams;
            latency_.record(st.result.totalNs);
        }
        st.done = true;
        st.cv.notify_all();
    }

    {
        MutexLock lock(mu_);
        pending_ -= batch.reqs.size();
    }
    admit_cv_.notify_all();
    drain_cv_.notify_all();
}

} // namespace simdram
