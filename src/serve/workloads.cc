#include "serve/workloads.h"

#include "common/error.h"

namespace simdram
{

namespace
{

uint64_t
maskOf(size_t bits)
{
    return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

std::vector<uint64_t>
broadcast(uint64_t v, size_t lanes)
{
    return std::vector<uint64_t>(lanes, v);
}

} // namespace

RequestClassSpec
knnQueryClass(const KnnServeSpec &spec,
              const std::vector<std::vector<uint64_t>> &refColumns)
{
    if (spec.dims == 0)
        fatal("knnQueryClass: zero dims");
    if (refColumns.size() != spec.dims)
        fatal("knnQueryClass: expected one reference column per dim");
    for (const auto &col : refColumns)
        if (col.size() != spec.refs)
            fatal("knnQueryClass: reference column has wrong size");

    RequestClassSpec cls;
    cls.name = "knn-query";
    cls.elements = spec.refs;
    cls.bits = spec.bits;
    cls.requestInputs = spec.dims; // one broadcast coord per dim
    cls.shared = refColumns;
    const size_t dims = spec.dims;
    const size_t bits = spec.bits;
    cls.emit = [dims, bits](StreamBuilder &b, const BatchLayout &L) {
        const uint16_t diff = L.scratch(0, bits);
        if (dims == 1) {
            b.binary(OpKind::Sub, diff, L.shared[0], L.request[0]);
            b.unary(OpKind::Abs, L.output, diff);
            return;
        }
        const uint16_t abs = L.scratch(1, bits);
        // Ping-pong L1 accumulation, exactly the knn app pipeline;
        // the LAST step adds straight into the output object.
        PingPong acc{L.scratch(2, bits), L.scratch(3, bits)};
        b.init(acc.src(), 0);
        for (size_t d = 0; d < dims; ++d) {
            b.binary(OpKind::Sub, diff, L.shared[d], L.request[d]);
            b.unary(OpKind::Abs, abs, diff);
            if (d + 1 == dims)
                b.binary(OpKind::Add, L.output, acc.src(), abs);
            else
                b.accumulate(acc, abs);
        }
    };
    return cls;
}

std::vector<std::vector<uint64_t>>
knnQueryRequest(const KnnServeSpec &spec,
                const std::vector<uint64_t> &coords)
{
    if (coords.size() != spec.dims)
        fatal("knnQueryRequest: wrong coordinate count");
    std::vector<std::vector<uint64_t>> slots;
    slots.reserve(spec.dims);
    for (uint64_t c : coords)
        slots.push_back(broadcast(c & maskOf(spec.bits), spec.refs));
    return slots;
}

std::vector<uint64_t>
knnQueryHost(const KnnServeSpec &spec,
             const std::vector<std::vector<uint64_t>> &refColumns,
             const std::vector<uint64_t> &coords)
{
    const uint64_t mask = maskOf(spec.bits);
    std::vector<uint64_t> dist(spec.refs, 0);
    for (size_t i = 0; i < spec.refs; ++i) {
        uint64_t d = 0;
        for (size_t k = 0; k < spec.dims; ++k) {
            const int64_t diff =
                static_cast<int64_t>(refColumns[k][i]) -
                static_cast<int64_t>(coords[k]);
            d += static_cast<uint64_t>(diff < 0 ? -diff : diff);
        }
        dist[i] = d & mask;
    }
    return dist;
}

RequestClassSpec
brightnessTileClass(const BrightnessTileSpec &spec)
{
    RequestClassSpec cls;
    cls.name = "brightness-tile";
    cls.elements = spec.pixels;
    cls.bits = spec.bits;
    cls.requestInputs = 2; // {pixels, broadcast delta}
    cls.shared = {broadcast(spec.cap & maskOf(spec.bits),
                            spec.pixels)};
    const size_t bits = spec.bits;
    cls.emit = [bits](StreamBuilder &b, const BatchLayout &L) {
        const uint16_t sum = L.scratch(0, bits);
        const uint16_t ovf = L.scratch(1, 1); // relational mask
        b.binary(OpKind::Add, sum, L.request[0], L.request[1]);
        b.binary(OpKind::Gt, ovf, sum, L.shared[0]);
        b.predicated(OpKind::IfElse, L.output, L.shared[0], sum,
                     ovf);
    };
    return cls;
}

std::vector<std::vector<uint64_t>>
brightnessTileRequest(const BrightnessTileSpec &spec,
                      const std::vector<uint64_t> &pixels,
                      uint64_t delta)
{
    if (pixels.size() != spec.pixels)
        fatal("brightnessTileRequest: wrong tile size");
    return {pixels, broadcast(delta & maskOf(spec.bits),
                              spec.pixels)};
}

std::vector<uint64_t>
brightnessTileHost(const BrightnessTileSpec &spec,
                   const std::vector<uint64_t> &pixels,
                   uint64_t delta)
{
    const uint64_t mask = maskOf(spec.bits);
    std::vector<uint64_t> out(pixels.size());
    for (size_t i = 0; i < pixels.size(); ++i) {
        const uint64_t sum = (pixels[i] + delta) & mask;
        out[i] = sum > (spec.cap & mask) ? (spec.cap & mask) : sum;
    }
    return out;
}

RequestClassSpec
tpchFilterClass(const TpchFilterSpec &spec)
{
    RequestClassSpec cls;
    cls.name = "tpch-filter";
    cls.elements = spec.rows;
    cls.bits = spec.bits;
    cls.outputBits = 1; // the result is a relational mask
    cls.requestInputs = 2; // {column, broadcast threshold}
    cls.emit = [](StreamBuilder &b, const BatchLayout &L) {
        b.binary(OpKind::Gt, L.output, L.request[0], L.request[1]);
    };
    return cls;
}

std::vector<std::vector<uint64_t>>
tpchFilterRequest(const TpchFilterSpec &spec,
                  const std::vector<uint64_t> &column,
                  uint64_t threshold)
{
    if (column.size() != spec.rows)
        fatal("tpchFilterRequest: wrong chunk size");
    return {column,
            broadcast(threshold & maskOf(spec.bits), spec.rows)};
}

std::vector<uint64_t>
tpchFilterHost(const TpchFilterSpec &spec,
               const std::vector<uint64_t> &column,
               uint64_t threshold)
{
    const uint64_t mask = maskOf(spec.bits);
    std::vector<uint64_t> out(column.size());
    for (size_t i = 0; i < column.size(); ++i)
        out[i] = (column[i] & mask) > (threshold & mask) ? 1 : 0;
    return out;
}

} // namespace simdram
