/**
 * @file
 * Canned request classes for the serving harness.
 *
 * Each factory wraps one of the repo's app pipelines as a
 * RequestClassSpec the RequestCoalescer can batch: knn queries
 * against a shared reference set, brightness tiles, and tpch-style
 * filter rows. Alongside each class come a request-builder helper
 * (turning the natural request payload into the class's lane-vector
 * input slots) and a host reference (for bit-exactness checks in
 * tests and benches).
 *
 * The common trick: anything that varies per request — a knn query
 * coordinate, a brightness delta, a filter threshold — is
 * materialized as a BROADCAST LANE VECTOR request input rather than
 * a bbop_init immediate, because an init would apply one request's
 * value to every slot of the batch (see RequestClassSpec::emit).
 */

#ifndef SIMDRAM_SERVE_WORKLOADS_H
#define SIMDRAM_SERVE_WORKLOADS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request_coalescer.h"

namespace simdram
{

/** Shape of the knn-query serving class. */
struct KnnServeSpec
{
    size_t refs = 0; ///< Reference points (lanes per request).
    size_t dims = 0; ///< Coordinate dimensions.
    size_t bits = 16;
};

/**
 * Request class computing per-reference L1 distances for one query:
 * request inputs = dims broadcast coordinate vectors (use
 * knnQueryRequest), shared inputs = the dims reference columns
 * (@p refColumns, each spec.refs lanes), output = masked L1
 * distances per reference point.
 */
RequestClassSpec knnQueryClass(
    const KnnServeSpec &spec,
    const std::vector<std::vector<uint64_t>> &refColumns);

/** @return The class's input slots for query @p coords (dims values,
 *          each broadcast across spec.refs lanes). */
std::vector<std::vector<uint64_t>>
knnQueryRequest(const KnnServeSpec &spec,
                const std::vector<uint64_t> &coords);

/** @return Host-computed L1 distances, masked to spec.bits. */
std::vector<uint64_t>
knnQueryHost(const KnnServeSpec &spec,
             const std::vector<std::vector<uint64_t>> &refColumns,
             const std::vector<uint64_t> &coords);

/** Shape of the brightness-tile serving class. */
struct BrightnessTileSpec
{
    size_t pixels = 0; ///< Pixels per tile (lanes per request).
    size_t bits = 16;
    uint64_t cap = 0; ///< Saturation cap (class-wide).
};

/**
 * Request class applying saturating brightening to one tile:
 * request inputs = {pixel vector, broadcast delta} (use
 * brightnessTileRequest), shared input = the broadcast cap,
 * output = min(pixel + delta, cap) per pixel.
 */
RequestClassSpec brightnessTileClass(const BrightnessTileSpec &spec);

/** @return The class's input slots for one tile + delta. */
std::vector<std::vector<uint64_t>>
brightnessTileRequest(const BrightnessTileSpec &spec,
                      const std::vector<uint64_t> &pixels,
                      uint64_t delta);

/** @return Host-computed saturated brightening. */
std::vector<uint64_t>
brightnessTileHost(const BrightnessTileSpec &spec,
                   const std::vector<uint64_t> &pixels,
                   uint64_t delta);

/** Shape of the tpch-filter serving class. */
struct TpchFilterSpec
{
    size_t rows = 0; ///< Rows per request (lanes).
    size_t bits = 32;
};

/**
 * Request class evaluating `col > threshold` over one row chunk:
 * request inputs = {column values, broadcast threshold} (use
 * tpchFilterRequest), no shared inputs, output = 0/1 selection mask.
 */
RequestClassSpec tpchFilterClass(const TpchFilterSpec &spec);

/** @return The class's input slots for one chunk + threshold. */
std::vector<std::vector<uint64_t>>
tpchFilterRequest(const TpchFilterSpec &spec,
                  const std::vector<uint64_t> &column,
                  uint64_t threshold);

/** @return Host-computed 0/1 mask for col > threshold. */
std::vector<uint64_t>
tpchFilterHost(const TpchFilterSpec &spec,
               const std::vector<uint64_t> &column,
               uint64_t threshold);

} // namespace simdram

#endif // SIMDRAM_SERVE_WORKLOADS_H
