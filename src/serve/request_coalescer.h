/**
 * @file
 * Serving harness, part 1: SLO-aware request coalescing.
 *
 * A SIMDRAM device is a batch machine — one bbop stream computes over
 * hundreds of thousands of lanes at the same cost as over hundreds —
 * while a service front-end receives many SMALL independent requests
 * (a knn query, one brightness tile, a batch of tpch filter rows).
 * The RequestCoalescer bridges the two: it groups compatible requests
 * (same registered request class, hence same shape and op pipeline)
 * into batches under a batching policy — flush when maxBatch requests
 * have coalesced OR when the oldest waiter has lingered
 * maxLingerUs — and executes each batch as ONE fused multi-segment
 * StreamBuilder program over lane-concatenated objects. Because every
 * bbop operation is element-wise over lanes, a batch of K requests of
 * n lanes computed as one K*n-lane program is bit-exact with K
 * independent n-lane runs; per-request futures slice the batched
 * result back out.
 *
 *   RequestCoalescer co(ex, {.maxBatch = 8, .maxLingerUs = 200});
 *   const uint32_t cls = co.registerClass(brightnessTileClass(spec));
 *   ServeFuture f = co.submit(cls, brightnessTileRequest(spec, tile, delta));
 *   ... submit more requests, possibly from other threads ...
 *   ServeResult r = f.wait();   // r.output = this request's lanes
 *
 * Admission control sits ABOVE the executor's Block/Reject
 * backpressure (PR 4): the coalescer bounds the number of admitted
 * requests not yet completed (maxPending) and either sheds — the
 * typed RequestShedError, thrown synchronously with zero side
 * effects — or blocks the submitter (AdmissionPolicy). Under the
 * budget, request cost is decoupled from stream cost: one batch is
 * only a handful of device streams no matter how many requests rode
 * in it.
 *
 * Every completed request records its end-to-end latency — arrival
 * at submit() to future fulfillment, i.e. queue + coalesce + execute
 * on the corrected StreamResult::wallNs-style clock — into a
 * lock-free LatencyHistogram for p50/p99/p999 under load.
 *
 * Threading: submit() is thread-safe and cheap (it never executes);
 * a single dispatcher thread closes batches (size- or
 * deadline-triggered) and drives the executor, so batches execute in
 * close order and the executor's stream cache keeps shared operands
 * (request-class reference data) resident across batches. The
 * coalescer assumes it is the only client of its executor's objects;
 * registerClass() calls must not race submit() of the same class.
 */

#ifndef SIMDRAM_SERVE_REQUEST_COALESCER_H
#define SIMDRAM_SERVE_REQUEST_COALESCER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/stream_executor.h"
#include "serve/latency_histogram.h"
#include "stream/stream_builder.h"

namespace simdram
{

/**
 * Raised by submit() under AdmissionPolicy::Shed when the pending-
 * request budget is exhausted. Distinct from StreamRejectedError
 * (the executor's per-device queue bound) and from BbopError (a
 * malformed program): the request is well-formed, the service is
 * saturated at the REQUEST level — the caller may retry later.
 * Shedding is side-effect-free: nothing is enqueued or batched.
 */
class RequestShedError : public FatalError
{
  public:
    explicit RequestShedError(const std::string &what)
        : FatalError(what)
    {}
};

/**
 * Raised out of ServeFuture::wait() when the request's batch hit an
 * unrecoverable in-DRAM fault (the executor's StreamFaultError, after
 * its own retry/quarantine budget was exhausted). Every request of
 * the batch receives its OWN RequestFaultError — the fault is mapped
 * per request rather than collapsing the whole batch into one opaque
 * failure — carrying the faulting device for attribution. The
 * coalescer's objects remain defined; subsequent batches of the class
 * run normally.
 */
class RequestFaultError : public FatalError
{
  public:
    RequestFaultError(const std::string &what, int device)
        : FatalError(what), device_(device)
    {}

    /** @return Device the underlying fault was detected on. */
    int device() const { return device_; }

  private:
    int device_ = -1;
};

/** What submit() does when the pending-request budget is full. */
enum class AdmissionPolicy
{
    Block, ///< Block the submitter until requests complete.
    Shed,  ///< Throw RequestShedError (no side effects).
};

/** Batching and admission knobs of a RequestCoalescer. */
struct CoalescerOptions
{
    /** Requests per batch that force an immediate flush (>= 1).
     *  Also the batch CAPACITY: batch objects hold maxBatch request
     *  slots; partial batches zero-pad the unused slots. Size it so
     *  a class's object group (inputs + output + scratch, each
     *  maxBatch * elements lanes) stays within the device's
     *  co-locatable subarray capacity — the sequential allocator
     *  only guarantees co-location for groups that do not straddle
     *  a subarray's data region. */
    size_t maxBatch = 8;
    /** Max microseconds the oldest request of an open batch may
     *  linger before the batch is flushed anyway (the latency half
     *  of the batching policy; 0 = flush as soon as the dispatcher
     *  sees the batch). */
    double maxLingerUs = 200.0;
    /** Admission budget: max requests admitted but not yet
     *  completed (queued + coalescing + executing); 0 = unbounded. */
    size_t maxPending = 0;
    /** Behaviour when the admission budget is exhausted. */
    AdmissionPolicy onFull = AdmissionPolicy::Shed;
    /**
     * Optional tenant tag, for a coalescer front-ending one tenant's
     * view of a shared TenantExecutor: purely diagnostic — it names
     * the tenant in RequestShedError messages so a multi-tenant
     * service can attribute shed traffic. Admission (maxPending) and
     * the tenant's own quotas compose independently either way.
     */
    std::string tenantTag{};
};

/**
 * The batched objects a request class's emit callback computes over.
 * All objects are lane-concatenations of `capacity` request slots
 * (`elements` = capacity * per-request lanes, same bit width); the
 * first `batch` slots hold live requests, the rest are zero padding
 * whose results are discarded.
 */
struct BatchLayout
{
    size_t batch = 0;    ///< Live requests in this batch.
    size_t capacity = 0; ///< Request slots (= CoalescerOptions::maxBatch).
    size_t elements = 0; ///< Total lanes = capacity * per-request lanes.
    /** Per-request input objects, one per RequestClassSpec slot,
     *  freshly written and transposed for this batch. */
    std::vector<uint16_t> request;
    /** Shared input objects (class-level data replicated across
     *  slots), resident since class setup — their re-transposes are
     *  elided by the executor's stream cache after the first batch. */
    std::vector<uint16_t> shared;
    /** The output object (RequestClassSpec::outputBits wide); the
     *  coalescer transposes it back and slices it per request after
     *  the emitted program runs. */
    uint16_t output = kNoObject;
    /** Scratch objects: scratch(i, bits) returns the i-th scratch,
     *  defining it `bits` wide on first use and reusing it across
     *  batches of the class (1-bit scratches hold relational masks;
     *  an index's width is fixed by its first use). */
    std::function<uint16_t(size_t, size_t)> scratch;
};

/**
 * One coalescable request shape + pipeline. Requests of the same
 * registered class batch together; different classes never mix.
 */
struct RequestClassSpec
{
    /** Diagnostic name ("knn-query", "brightness-tile", ...). */
    std::string name;
    /** Lanes per request (e.g. reference points, tile pixels). */
    size_t elements = 0;
    /** Element width in bits (1..64) of the request/shared inputs. */
    size_t bits = 0;
    /** Output element width; 0 means same as `bits`. Set to 1 for
     *  classes whose result is a relational mask (the ISA requires
     *  1-bit destinations for comparison ops). */
    size_t outputBits = 0;
    /** Per-request input slots each submit() must provide. */
    size_t requestInputs = 0;
    /** Shared input data, one entry per shared slot: `elements`
     *  lanes that every request sees identically (e.g. the knn
     *  reference columns). The coalescer replicates each across the
     *  batch slots once at class setup. */
    std::vector<std::vector<uint64_t>> shared;
    /**
     * Emits the class's compute pipeline into @p b against
     * @p layout. Contract: all request/shared inputs are already
     * transposed when emit runs; emit must leave the result in
     * layout.output (the coalescer appends the inverse transpose);
     * every op must be element-wise over lanes (that is what makes
     * lane-concatenation exact) — in particular, do NOT bbop_init a
     * value that differs per request (materialize it as a request
     * input instead).
     */
    std::function<void(StreamBuilder &, const BatchLayout &)> emit;
};

/** Completion data for one served request. */
struct ServeResult
{
    /** The request's output lanes, sliced from the batched result. */
    std::vector<uint64_t> output;
    /** Arrival to batch dispatch (queue + coalesce linger), ns. */
    double queueNs = 0.0;
    /** Batch dispatch to results read back (execute), ns. */
    double executeNs = 0.0;
    /** End-to-end: arrival at submit() to fulfillment, ns. */
    double totalNs = 0.0;
    /** Live requests in the batch that served this request. */
    size_t batchSize = 0;
    /** Device streams the batch's fused program dispatched as. */
    size_t batchStreams = 0;
};

namespace detail
{
struct RequestState;
} // namespace detail

/** Future-style handle to a submitted request. */
class ServeFuture
{
  public:
    ServeFuture() = default;

    /** @return True if the handle refers to an admitted request. */
    bool valid() const { return state_ != nullptr; }

    /**
     * Blocks until the request's batch completes and returns the
     * sliced result. Rethrows any error raised during execution.
     */
    ServeResult wait();

    /** @return True once the request completed (non-blocking). */
    bool done() const;

  private:
    friend class RequestCoalescer;
    std::shared_ptr<detail::RequestState> state_;
};

/**
 * SLO-aware request-coalescing front-end over a StreamService —
 * the physical StreamExecutor, or one tenant's view of a shared
 * TenantExecutor (every object the coalescer defines then lives in
 * that tenant's namespace and counts against its quotas).
 */
class RequestCoalescer
{
  public:
    /**
     * @param ex Service the batches run through (borrowed; must
     *           outlive the coalescer).
     */
    explicit RequestCoalescer(StreamService &ex)
        : RequestCoalescer(ex, CoalescerOptions{})
    {}

    /** As above, with batching/admission options. */
    RequestCoalescer(StreamService &ex, CoalescerOptions opts);

    /** Flushes and completes every admitted request, then joins the
     *  dispatcher. Do not call submit() concurrently with this. */
    ~RequestCoalescer();

    RequestCoalescer(const RequestCoalescer &) = delete;
    RequestCoalescer &operator=(const RequestCoalescer &) = delete;

    /** @return The coalescer's options. */
    const CoalescerOptions &options() const { return opts_; }

    /**
     * Registers a request class and returns its id. Call before
     * submitting requests of the class; must not race submit().
     * Throws FatalError on malformed specs.
     */
    uint32_t registerClass(RequestClassSpec spec);

    /**
     * Admits one request of class @p cls with one lane vector per
     * request-input slot (each RequestClassSpec::elements long).
     * Cheap and thread-safe: the request only joins its class's open
     * batch; execution happens on the dispatcher thread. Throws
     * FatalError on shape mismatches and RequestShedError (zero side
     * effects) when the admission budget is exhausted under
     * AdmissionPolicy::Shed.
     */
    ServeFuture submit(uint32_t cls,
                       std::vector<std::vector<uint64_t>> inputs);

    /**
     * Closes every open batch and hands it to the dispatcher
     * immediately, ahead of its linger deadline. Does not wait.
     */
    void flush();

    /** flush(), then blocks until every admitted request completed. */
    void drain();

    /** @return Per-request end-to-end latency histogram. */
    const LatencyHistogram &latency() const { return latency_; }

    /** @return Requests completed (fulfilled or failed) so far. */
    uint64_t completedRequests() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

    /** @return Requests shed by admission control so far. */
    uint64_t shedRequests() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

    /** @return Batches dispatched so far. */
    uint64_t dispatchedBatches() const
    {
        return batches_.load(std::memory_order_relaxed);
    }

    /** @return Requests completed with an error (any kind). */
    uint64_t failedRequests() const
    {
        return failed_.load(std::memory_order_relaxed);
    }

    /** @return Requests failed by an in-DRAM fault (their futures
     *  rethrow RequestFaultError). Subset of failedRequests(). */
    uint64_t faultedRequests() const
    {
        return faulted_.load(std::memory_order_relaxed);
    }

    /** @return Requests failed by a stream deadline expiry. Subset
     *  of failedRequests(). */
    uint64_t deadlineExpiredRequests() const
    {
        return deadlined_.load(std::memory_order_relaxed);
    }

    /** @return Requests admitted but not yet completed. */
    size_t pendingRequests() const;

  private:
    /** One admitted, not-yet-dispatched request. */
    struct Pending
    {
        std::shared_ptr<detail::RequestState> st;
        std::vector<std::vector<uint64_t>> inputs;
    };

    /** A closed batch, ready for the dispatcher. */
    struct Batch
    {
        uint32_t cls = 0;
        std::vector<Pending> reqs;
    };

    /** Registered class + its open batch + its batched objects. */
    struct ClassState
    {
        RequestClassSpec spec;
        /** Batched objects, defined on the class's first dispatch. */
        bool objectsReady = false;
        std::vector<uint16_t> requestObjs;
        std::vector<uint16_t> sharedObjs;
        uint16_t outputObj = kNoObject;
        std::vector<uint16_t> scratchObjs;
        /** The open (still coalescing) batch; guarded by mu_. */
        std::vector<Pending> open;
        /** Arrival of the open batch's first request. */
        std::chrono::steady_clock::time_point openSince;
    };

    void dispatcherMain();
    /** Runs one batch through the executor; no coalescer lock held.
     *  Never lets a batch error escape without first fulfilling every
     *  slot's future (faults map to per-request RequestFaultError). */
    void executeBatch(Batch batch) SIMDRAM_EXCLUDES(mu_);
    /** Dispatcher safety net: fulfils any not-yet-done slot of
     *  @p slots with @p err and releases their admission budget, so
     *  an exception escaping executeBatch (e.g. allocation failure
     *  while slicing results) can never strand a ServeFuture. */
    void failSlots(
        const std::vector<std::shared_ptr<detail::RequestState>> &slots,
        std::exception_ptr err) SIMDRAM_EXCLUDES(mu_);
    /** Defines + seeds the class's batched objects (dispatcher only). */
    void ensureObjects(ClassState &cs);
    /** Moves due/flushed open batches to ready_; mu_ held. */
    void closeDueLocked(bool force) SIMDRAM_REQUIRES(mu_);

    StreamService *ex_;
    CoalescerOptions opts_;
    LatencyHistogram latency_;

    mutable Mutex mu_;
    /** condition_variable_any: waits take the annotated Mutex via
     *  UniqueLock (plain condition_variable only accepts
     *  std::unique_lock<std::mutex>, bypassing the annotations). */
    std::condition_variable_any dispatch_cv_; ///< Dispatcher work.
    std::condition_variable_any admit_cv_;    ///< Budget space freed.
    std::condition_variable_any drain_cv_;    ///< A batch completed.
    /** Registered classes; pointers stable while the vector grows. */
    std::vector<std::unique_ptr<ClassState>> classes_
        SIMDRAM_GUARDED_BY(mu_);
    /** Closed batches awaiting execution, in close order. */
    std::deque<Batch> ready_ SIMDRAM_GUARDED_BY(mu_);
    /** Admitted-but-not-completed requests. */
    size_t pending_ SIMDRAM_GUARDED_BY(mu_) = 0;
    bool stop_ SIMDRAM_GUARDED_BY(mu_) = false;

    /** Lifetime stats: written under mu_ or by the dispatcher,
     *  read lock-free by the getters. */
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> faulted_{0};
    std::atomic<uint64_t> deadlined_{0};

    std::thread dispatcher_;
};

} // namespace simdram

#endif // SIMDRAM_SERVE_REQUEST_COALESCER_H
