#include "serve/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace simdram
{

size_t
LatencyHistogram::bucketOf(uint64_t ns)
{
    if (ns < (1ULL << kSubBits))
        return static_cast<size_t>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const uint64_t sub = (ns >> (msb - kSubBits)) &
                         ((1ULL << kSubBits) - 1);
    return ((static_cast<size_t>(msb) - kSubBits + 1) << kSubBits) +
           static_cast<size_t>(sub);
}

uint64_t
LatencyHistogram::bucketLowNs(size_t idx)
{
    if (idx < (1ULL << kSubBits))
        return idx;
    const size_t msb = (idx >> kSubBits) + kSubBits - 1;
    const uint64_t sub = idx & ((1ULL << kSubBits) - 1);
    return (1ULL << msb) | (sub << (msb - kSubBits));
}

uint64_t
LatencyHistogram::bucketHighNs(size_t idx)
{
    if (idx < (1ULL << kSubBits))
        return idx + 1;
    const size_t msb = (idx >> kSubBits) + kSubBits - 1;
    const uint64_t low = bucketLowNs(idx);
    const uint64_t width = 1ULL << (msb - kSubBits);
    // The very top bucket's bound would wrap past 2^64; saturate.
    return low + width >= low
               ? low + width
               : std::numeric_limits<uint64_t>::max();
}

void
LatencyHistogram::record(double ns)
{
    uint64_t v = 0;
    if (ns > 0.0) {
        // Saturate instead of overflowing for absurd inputs.
        const double max64 =
            static_cast<double>(std::numeric_limits<uint64_t>::max());
        v = ns >= max64 ? std::numeric_limits<uint64_t>::max()
                        : static_cast<uint64_t>(ns);
    }
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed))
        ;
}

double
LatencyHistogram::quantileNs(double q) const
{
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Snapshot first so the rank and the walk agree on one total.
    std::array<uint64_t, kBuckets> snap;
    uint64_t total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        snap[i] = buckets_[i].load(std::memory_order_relaxed);
        total += snap[i];
    }
    if (total == 0)
        return 0.0;
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(total))));
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cum += snap[i];
        if (cum >= rank)
            return (static_cast<double>(bucketLowNs(i)) +
                    static_cast<double>(bucketHighNs(i))) /
                   2.0;
    }
    return static_cast<double>(bucketHighNs(kBuckets - 1));
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (&other == this)
        fatal("LatencyHistogram::merge: cannot merge into itself");
    uint64_t added = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        const uint64_t n =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (n == 0)
            continue;
        buckets_[i].fetch_add(n, std::memory_order_relaxed);
        added += n;
    }
    // Add the summed bucket counts, not other.count_: the two could
    // disagree mid-record, and quantileNs ranks against the buckets.
    count_.fetch_add(added, std::memory_order_relaxed);
    const uint64_t omax = other.max_.load(std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (omax > prev && !max_.compare_exchange_weak(
                              prev, omax, std::memory_order_relaxed))
        ;
}

LatencyHistogram
LatencyHistogram::snapshot() const
{
    return LatencyHistogram(*this);
}

void
LatencyHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

} // namespace simdram
