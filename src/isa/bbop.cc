#include "isa/bbop.h"

#include <sstream>

#include "common/error.h"

namespace simdram
{

BbopInstr
BbopInstr::trsp(uint16_t obj, uint8_t width)
{
    BbopInstr i;
    i.opcode = BbopOpcode::Trsp;
    i.width = width;
    i.dst = obj;
    return i;
}

BbopInstr
BbopInstr::trspInv(uint16_t obj, uint8_t width)
{
    BbopInstr i;
    i.opcode = BbopOpcode::TrspInv;
    i.width = width;
    i.dst = obj;
    return i;
}

BbopInstr
BbopInstr::unary(OpKind op, uint8_t width, uint16_t dst,
                 uint16_t src1)
{
    BbopInstr i;
    i.opcode = BbopOpcode::Op;
    i.op = op;
    i.width = width;
    i.dst = dst;
    i.src1 = src1;
    return i;
}

BbopInstr
BbopInstr::binary(OpKind op, uint8_t width, uint16_t dst,
                  uint16_t src1, uint16_t src2)
{
    BbopInstr i = unary(op, width, dst, src1);
    i.src2 = src2;
    return i;
}

BbopInstr
BbopInstr::predicated(OpKind op, uint8_t width, uint16_t dst,
                      uint16_t src1, uint16_t src2, uint16_t sel)
{
    BbopInstr i = binary(op, width, dst, src1, src2);
    i.sel = sel;
    return i;
}

BbopInstr
BbopInstr::init(uint16_t obj, uint8_t width, uint64_t imm)
{
    if (imm >> 36)
        fatal("bbop_init: immediate does not fit in 36 bits");
    BbopInstr i;
    i.opcode = BbopOpcode::Init;
    i.width = width;
    i.dst = obj;
    i.src1 = static_cast<uint16_t>(imm & 0xfff);
    i.src2 = static_cast<uint16_t>((imm >> 12) & 0xfff);
    i.sel = static_cast<uint16_t>((imm >> 24) & 0xfff);
    return i;
}

BbopInstr
BbopInstr::shift(bool left, uint8_t width, uint16_t dst,
                 uint16_t src, uint8_t amount)
{
    BbopInstr i;
    i.opcode = left ? BbopOpcode::ShiftL : BbopOpcode::ShiftR;
    i.width = width;
    i.dst = dst;
    i.src1 = src;
    i.sel = amount;
    return i;
}

uint64_t
BbopInstr::initImmediate() const
{
    return static_cast<uint64_t>(src1) |
           (static_cast<uint64_t>(src2) << 12) |
           (static_cast<uint64_t>(sel) << 24);
}

BbopEffects
effectsOf(const BbopInstr &instr)
{
    BbopEffects e;
    auto read = [&e](uint16_t obj, BbopLoc loc) {
        e.reads[e.numReads++] = {obj, loc};
    };
    auto write = [&e](uint16_t obj, BbopLoc loc) {
        e.writes[e.numWrites++] = {obj, loc};
    };
    switch (instr.opcode) {
      case BbopOpcode::Trsp:
        read(instr.dst, BbopLoc::Host);
        write(instr.dst, BbopLoc::Vert);
        return e;
      case BbopOpcode::TrspInv:
        read(instr.dst, BbopLoc::Vert);
        write(instr.dst, BbopLoc::Host);
        return e;
      case BbopOpcode::Init:
        // In-DRAM row initialization also refreshes the host image
        // (the dispatcher and executor both mirror the constant), so
        // Init is a full write of both locations.
        write(instr.dst, BbopLoc::Vert);
        write(instr.dst, BbopLoc::Host);
        return e;
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR:
        read(instr.src1, BbopLoc::Vert);
        write(instr.dst, BbopLoc::Vert);
        return e;
      case BbopOpcode::Op:
        break;
    }
    const OpSignature sig = signatureOf(instr.op, instr.width);
    read(instr.src1, BbopLoc::Vert);
    if (sig.numInputs == 2)
        read(instr.src2, BbopLoc::Vert);
    if (sig.hasSel)
        read(instr.sel, BbopLoc::Vert);
    write(instr.dst, BbopLoc::Vert);
    return e;
}

uint64_t
encodeBbop(const BbopInstr &instr)
{
    if (instr.width == 0 || instr.width > 64)
        fatal("encodeBbop: bad element width");
    uint64_t w = 0;
    w |= static_cast<uint64_t>(instr.opcode) & 0xf;
    w |= (static_cast<uint64_t>(instr.op) & 0x1f) << 4;
    w |= (static_cast<uint64_t>(instr.width) & 0x7f) << 9;
    w |= (static_cast<uint64_t>(instr.dst) & 0xfff) << 16;
    w |= (static_cast<uint64_t>(instr.src1) & 0xfff) << 28;
    w |= (static_cast<uint64_t>(instr.src2) & 0xfff) << 40;
    w |= (static_cast<uint64_t>(instr.sel) & 0xfff) << 52;
    return w;
}

BbopInstr
decodeBbop(uint64_t w)
{
    const uint64_t opcode_bits = w & 0xf;
    if (opcode_bits > static_cast<uint64_t>(BbopOpcode::ShiftR))
        bbopError("decodeBbop: unknown opcode " +
                  std::to_string(opcode_bits));

    BbopInstr i;
    i.opcode = static_cast<BbopOpcode>(opcode_bits);
    const uint64_t op_bits = (w >> 4) & 0x1f;
    if (i.opcode == BbopOpcode::Op && op_bits >= kOpKindCount)
        bbopError("decodeBbop: unknown operation " +
                  std::to_string(op_bits));
    i.op = static_cast<OpKind>(op_bits);
    i.width = static_cast<uint8_t>((w >> 9) & 0x7f);
    if (i.width == 0 || i.width > 64)
        bbopError("decodeBbop: element width " +
                  std::to_string(int{i.width}) +
                  " outside [1, 64]");
    i.dst = static_cast<uint16_t>((w >> 16) & 0xfff);
    i.src1 = static_cast<uint16_t>((w >> 28) & 0xfff);
    i.src2 = static_cast<uint16_t>((w >> 40) & 0xfff);
    i.sel = static_cast<uint16_t>((w >> 52) & 0xfff);
    return i;
}

std::string
toAsm(const BbopInstr &instr)
{
    std::ostringstream os;
    switch (instr.opcode) {
      case BbopOpcode::Trsp:
        os << "bbop_trsp." << int{instr.width} << " d" << instr.dst;
        return os.str();
      case BbopOpcode::TrspInv:
        os << "bbop_trsp_inv." << int{instr.width} << " d"
           << instr.dst;
        return os.str();
      case BbopOpcode::Init:
        os << "bbop_init." << int{instr.width} << " d" << instr.dst
           << ", " << instr.initImmediate();
        return os.str();
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR:
        os << (instr.opcode == BbopOpcode::ShiftL ? "bbop_shl."
                                                  : "bbop_shr.")
           << int{instr.width} << " d" << instr.dst << ", d"
           << instr.src1 << ", " << int{instr.sel};
        return os.str();
      case BbopOpcode::Op:
        break;
    }
    os << "bbop_" << toString(instr.op) << "." << int{instr.width}
       << " d" << instr.dst << ", d" << instr.src1;
    if (instr.src2 != kNoObject)
        os << ", d" << instr.src2;
    if (instr.sel != kNoObject)
        os << ", d" << instr.sel;
    return os.str();
}

} // namespace simdram
