#include "isa/validate.h"

#include <string>

namespace simdram
{

BbopValidator::BbopValidator(const BbopObjectView &view)
    : view_(&view)
{
    const size_t n = view.objectCount();
    vert_.resize(n);
    for (size_t i = 0; i < n; ++i)
        vert_[i] = view.shape(static_cast<uint16_t>(i)).vertical;
}

BbopObjectShape
BbopValidator::shapeOf(uint16_t id) const
{
    if (id >= view_->objectCount())
        bbopError("bbop: unknown object id d" + std::to_string(id));
    return view_->shape(id);
}

void
BbopValidator::check(const BbopInstr &in)
{
    if (in.width == 0 || in.width > 64)
        bbopError("bbop: element width " +
                  std::to_string(int{in.width}) + " outside [1, 64]");

    switch (in.opcode) {
      case BbopOpcode::Trsp: {
        const BbopObjectShape dst = shapeOf(in.dst);
        if (in.width != dst.bits)
            bbopError("bbop_trsp: width mismatch with object");
        vert_[in.dst] = true;
        return;
      }
      case BbopOpcode::TrspInv: {
        const BbopObjectShape dst = shapeOf(in.dst);
        if (!vert_[in.dst])
            bbopError("bbop_trsp_inv: object is not vertical");
        if (in.width != dst.bits)
            bbopError("bbop_trsp_inv: width mismatch with object");
        return;
      }
      case BbopOpcode::Init: {
        const BbopObjectShape dst = shapeOf(in.dst);
        // Unification fix: bbop_init was the only opcode that never
        // checked its width field against the object — both the
        // dispatcher and the stream executor accepted e.g. a
        // bbop_init.8 on a 16-bit object. Reject it like every other
        // opcode does.
        if (in.width != dst.bits)
            bbopError("bbop_init: width mismatch with object");
        const uint64_t imm = in.initImmediate();
        if (dst.bits < 64 && (imm >> dst.bits) != 0)
            bbopError("bbop_init: immediate wider than the object");
        vert_[in.dst] = true;
        return;
      }
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR: {
        const BbopObjectShape dst = shapeOf(in.dst);
        const BbopObjectShape src = shapeOf(in.src1);
        if (!vert_[in.src1])
            bbopError("bbop_sh*: source object is not vertical");
        if (in.dst == in.src1)
            bbopError("bbop_sh*: in-place shift is not supported");
        if (dst.bits != src.bits || dst.elements != src.elements)
            bbopError("bbop_sh*: shape mismatch");
        if (in.width != dst.bits)
            bbopError("bbop_sh*: width mismatch with objects");
        vert_[in.dst] = true;
        return;
      }
      case BbopOpcode::Op:
        break;
      default:
        // A BbopInstr built from a raw opcode value (decodeBbop
        // rejects these already) must not fall through to the Op
        // rules below.
        bbopError("bbop: unknown opcode " +
                  std::to_string(static_cast<int>(in.opcode)));
    }

    if (static_cast<size_t>(in.op) >= kOpKindCount)
        bbopError("bbop: unknown operation " +
                  std::to_string(static_cast<int>(in.op)));

    const OpSignature sig = signatureOf(in.op, in.width);
    const BbopObjectShape dst = shapeOf(in.dst);
    const BbopObjectShape src1 = shapeOf(in.src1);
    if (!vert_[in.src1])
        bbopError("bbop: source object is not vertical");
    if (in.width != src1.bits)
        bbopError("bbop: instruction width " +
                  std::to_string(int{in.width}) +
                  " does not match source object width " +
                  std::to_string(src1.bits));
    if (dst.bits != sig.outWidth)
        bbopError("bbop: destination object must be " +
                  std::to_string(sig.outWidth) + " bits wide");
    if (in.dst == in.src1 ||
        (sig.numInputs == 2 && in.dst == in.src2) ||
        (sig.hasSel && in.dst == in.sel))
        bbopError("bbop: in-place execution is not supported");
    if (src1.elements != dst.elements)
        bbopError("bbop: operand element counts differ");

    if (sig.numInputs == 2) {
        const BbopObjectShape src2 = shapeOf(in.src2);
        if (!vert_[in.src2])
            bbopError("bbop: source object is not vertical");
        if (src2.bits != in.width)
            bbopError("bbop: operand width mismatch");
        if (src2.elements != dst.elements)
            bbopError("bbop: operand element counts differ");
    }
    if (sig.hasSel) {
        const BbopObjectShape sel = shapeOf(in.sel);
        if (!vert_[in.sel])
            bbopError("bbop: predicate object is not vertical");
        if (sel.bits != 1)
            bbopError("bbop: predicate must be 1 bit wide");
        if (sel.elements != dst.elements)
            bbopError("bbop: operand element counts differ");
    }
    vert_[in.dst] = true;
}

} // namespace simdram
