/**
 * @file
 * THE implementation of the bbop validation rules.
 *
 * The bbop ISA is the contract between the host and the DRAM
 * substrate, and the rules that police it (width ranges, trsp/shift
 * shapes, unknown ids, operation signatures, layout state) must be
 * identical wherever an instruction can enter the machine. Both entry
 * points — the synchronous BbopDispatcher and the asynchronous
 * StreamExecutor — validate through the BbopValidator below; there is
 * deliberately no other copy of these checks in the tree.
 *
 * The validator sees object tables through the small BbopObjectView
 * interface (id -> {elements, bits, vertical}), so it does not care
 * whether objects live on one Processor or are sharded across a
 * DeviceGroup. It is stateful: layout effects of validated
 * instructions are tracked in a scratch copy seeded from the view,
 * which lets a caller validate a whole stream atomically — against
 * the state each instruction will actually observe — and commit the
 * resulting layout only if every instruction passed.
 *
 * Layout rules: every instruction that READS a vertical image
 * (bbop_trsp_inv, operation/shift sources, predicates) requires its
 * operand to be vertical, but any instruction that fully WRITES a
 * destination's vertical image (bbop_trsp, bbop_init, operation and
 * shift destinations) establishes the vertical layout itself — the
 * write covers every bit of the image, so a later vertical read can
 * never observe untransposed data. This is what lets the stream
 * optimizer passes (src/stream) drop a bbop_trsp whose result is
 * overwritten before any read without invalidating the program.
 */

#ifndef SIMDRAM_ISA_VALIDATE_H
#define SIMDRAM_ISA_VALIDATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/bbop.h"

namespace simdram
{

/** Shape and layout state of one bbop object, as validation sees it. */
struct BbopObjectShape
{
    size_t elements = 0; ///< Element count.
    size_t bits = 0;     ///< Element width in bits.
    bool vertical = false; ///< True once transposed to bit-serial layout.
};

/**
 * Read-only view of a bbop object table. Implemented by every owner
 * of such a table (BbopDispatcher, StreamExecutor) to hand its
 * objects to the shared BbopValidator.
 */
class BbopObjectView
{
  public:
    virtual ~BbopObjectView() = default;

    /** @return Number of defined objects (ids are [0, count)). */
    virtual size_t objectCount() const = 0;

    /**
     * @return Shape of object @p id. Only called with
     *         id < objectCount(); unknown ids are rejected by the
     *         validator before this is reached.
     */
    virtual BbopObjectShape shape(uint16_t id) const = 0;
};

/**
 * Validates bbop instructions against a BbopObjectView.
 *
 * Construction snapshots the view's layout state; check() validates
 * one instruction against that evolving snapshot and applies its
 * layout effect, throwing the typed BbopError on the first rule
 * violation. The underlying table is never touched, so a caller can
 * reject a whole stream atomically and commit layout() on success.
 */
class BbopValidator
{
  public:
    /** @param view Object table to validate against (borrowed). */
    explicit BbopValidator(const BbopObjectView &view);

    /**
     * Validates @p instr and, on success, records its layout effect.
     * Throws BbopError iff the instruction is malformed. Callers
     * validating a whole stream call this per instruction on one
     * validator, so each instruction is checked against the state
     * its predecessors will have produced.
     */
    void check(const BbopInstr &instr);

    /**
     * @return Per-object vertical flags after every instruction
     *         validated so far (the state to commit on acceptance).
     */
    const std::vector<bool> &layout() const { return vert_; }

  private:
    /** @return @p id's shape; throws BbopError on unknown ids. */
    BbopObjectShape shapeOf(uint16_t id) const;

    const BbopObjectView *view_;
    /** Scratch layout state; see class comment. */
    std::vector<bool> vert_;
};

} // namespace simdram

#endif // SIMDRAM_ISA_VALIDATE_H
