/**
 * @file
 * The bbop dispatcher: the programmer-visible execution model.
 *
 * The dispatcher owns an object table (the SIMDRAM memory-object
 * metadata the paper keeps alongside the μProgram memory) and drives
 * a Processor from a stream of bbop instructions, modeling the
 * user/compiler -> memory controller path end to end:
 *
 *   BbopDispatcher d(proc);
 *   auto a = d.defineObject(n, 32);
 *   d.writeObject(a, data);           // host-side (horizontal) write
 *   d.exec(BbopInstr::trsp(a, 32));   // move to vertical layout
 *   ...
 *   d.exec(BbopInstr::binary(OpKind::Add, 32, y, a, b));
 *   d.exec(BbopInstr::trspInv(y, 32));
 *   auto out = d.readObject(y);       // host-side read
 */

#ifndef SIMDRAM_ISA_DISPATCHER_H
#define SIMDRAM_ISA_DISPATCHER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/processor.h"
#include "isa/bbop.h"
#include "isa/validate.h"

namespace simdram
{

/**
 * Executes bbop instructions against a Processor.
 *
 * Every instruction is validated by the shared BbopValidator
 * (src/isa/validate.cc) before it touches the machine — the same
 * rules the StreamExecutor enforces at stream submission.
 */
class BbopDispatcher : private BbopObjectView
{
  public:
    /** @param proc Processor to drive (borrowed; must outlive). */
    explicit BbopDispatcher(Processor &proc) : proc_(&proc) {}

    /**
     * Registers a memory object of @p elements elements of
     * @p bits bits and returns its object id.
     */
    uint16_t defineObject(size_t elements, size_t bits);

    /** Writes host data into an object's horizontal image. */
    void writeObject(uint16_t id, const std::vector<uint64_t> &data);

    /** @return The object's current horizontal image. */
    const std::vector<uint64_t> &readObject(uint16_t id) const;

    /** Executes one instruction. */
    void exec(const BbopInstr &instr);

    /** Executes an instruction stream in order. */
    void exec(const std::vector<BbopInstr> &stream);

  private:
    struct ObjectInfo
    {
        size_t elements = 0;
        size_t bits = 0;
        std::vector<uint64_t> hostImage;
        Processor::VecHandle vec; ///< Valid once transposed.
        bool vertical = false;
    };

    ObjectInfo &object(uint16_t id);
    const ObjectInfo &object(uint16_t id) const;

    /** Allocates @p obj's vertical backing vector on first write. */
    void ensureVec(ObjectInfo &obj);

    /** Executes an instruction the validator has already accepted. */
    void execValidated(const BbopInstr &instr);

    // BbopObjectView over the object table (for the validator).
    size_t objectCount() const override { return objects_.size(); }
    BbopObjectShape shape(uint16_t id) const override;

    Processor *proc_;
    std::vector<ObjectInfo> objects_;
};

} // namespace simdram

#endif // SIMDRAM_ISA_DISPATCHER_H
