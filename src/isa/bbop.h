/**
 * @file
 * The bbop ISA extension (paper section 4).
 *
 * SIMDRAM extends the host ISA with bulk-bitwise-operation (bbop)
 * instructions that the memory controller's control unit executes:
 *
 *  - bbop_trsp  obj            : transpose a memory object into the
 *                                vertical layout (through the
 *                                transposition unit);
 *  - bbop_trsp_inv obj         : transpose back to horizontal;
 *  - bbop_<op>  dst, src1[, src2][, sel] : execute operation <op>
 *                                on vertical objects.
 *
 * Instructions are encoded in a single 64-bit word; object sizes and
 * element widths travel with the object table, mirroring how the
 * paper keeps bbop instructions compact while μPrograms and object
 * metadata live in the memory controller.
 *
 * Encoding (LSB first):
 *   [0:3]   opcode        (BbopOpcode)
 *   [4:8]   operation     (OpKind; Op* opcodes only)
 *   [9:15]  element width (bits, 1..64)
 *   [16:27] dst object id
 *   [28:39] src1 object id
 *   [40:51] src2 object id
 *   [52:63] sel object id
 */

#ifndef SIMDRAM_ISA_BBOP_H
#define SIMDRAM_ISA_BBOP_H

#include <cstdint>
#include <string>

#include "common/error.h"
#include "ops/op_kind.h"

namespace simdram
{

/**
 * Error raised for malformed bbop instructions: unknown opcodes or
 * operations, out-of-range widths, unknown object ids, or operands in
 * the wrong layout state. A subtype of FatalError so existing
 * catch-all handling keeps working, while stream-level machinery
 * (StreamExecutor) can reject exactly the offending instruction
 * stream and keep serving others.
 */
class BbopError : public FatalError
{
  public:
    explicit BbopError(const std::string &what) : FatalError(what) {}
};

/** Reports a malformed bbop instruction. */
[[noreturn]] inline void
bbopError(const std::string &what)
{
    throw BbopError(what);
}

/** Top-level bbop opcodes. */
enum class BbopOpcode : uint8_t
{
    Trsp,    ///< Host object -> vertical layout.
    TrspInv, ///< Vertical layout -> host object.
    Op,      ///< Execute an OpKind on vertical objects.
    Init,    ///< Fill a vertical object with an immediate constant
             ///< via in-DRAM row initialization (no channel traffic).
             ///< The immediate travels in the src1/src2/sel fields
             ///< (36 bits).
    ShiftL,  ///< dst = src1 << imm (row-copy shift; imm in sel).
    ShiftR,  ///< dst = src1 >> imm (logical; imm in sel).
};

/** Sentinel for unused object-id fields. */
constexpr uint16_t kNoObject = 0xfff;

/** A decoded bbop instruction. */
struct BbopInstr
{
    BbopOpcode opcode = BbopOpcode::Op;
    OpKind op = OpKind::Add; ///< Valid when opcode == Op.
    uint8_t width = 0;       ///< Element width in bits.
    uint16_t dst = kNoObject;
    uint16_t src1 = kNoObject;
    uint16_t src2 = kNoObject;
    uint16_t sel = kNoObject;

    /** @return A transpose instruction for @p obj. */
    static BbopInstr trsp(uint16_t obj, uint8_t width);

    /** @return An inverse-transpose instruction for @p obj. */
    static BbopInstr trspInv(uint16_t obj, uint8_t width);

    /** @return A unary operation instruction. */
    static BbopInstr unary(OpKind op, uint8_t width, uint16_t dst,
                           uint16_t src1);

    /** @return A binary operation instruction. */
    static BbopInstr binary(OpKind op, uint8_t width, uint16_t dst,
                            uint16_t src1, uint16_t src2);

    /** @return A predicated operation instruction. */
    static BbopInstr predicated(OpKind op, uint8_t width,
                                uint16_t dst, uint16_t src1,
                                uint16_t src2, uint16_t sel);

    /** @return A constant-fill instruction (imm must fit 36 bits). */
    static BbopInstr init(uint16_t obj, uint8_t width, uint64_t imm);

    /** @return A shift instruction (@p left selects direction). */
    static BbopInstr shift(bool left, uint8_t width, uint16_t dst,
                           uint16_t src, uint8_t amount);

    /** @return The 36-bit immediate of an Init instruction. */
    uint64_t initImmediate() const;

    bool operator==(const BbopInstr &o) const = default;
};

/**
 * The two storage locations a bbop instruction can touch per object:
 * the vertical (bit-serial, in-DRAM) image and the horizontal host
 * image. The transposition opcodes move data between them; everything
 * else computes on vertical images only.
 */
enum class BbopLoc : uint8_t
{
    Vert, ///< The transposed, bit-serial image.
    Host, ///< The host-side horizontal image.
};

/** One (object, location) access of a bbop instruction. */
struct BbopAccess
{
    uint16_t obj = kNoObject;
    BbopLoc loc = BbopLoc::Vert;
};

/**
 * The read/write set of one bbop instruction, the dataflow facts the
 * stream optimizer passes (src/stream) reason about. Every write is a
 * FULL write of the named location (this is what makes dead-write
 * elimination and the relaxed layout rules in BbopValidator sound).
 */
struct BbopEffects
{
    BbopAccess reads[4];
    size_t numReads = 0;
    BbopAccess writes[2];
    size_t numWrites = 0;
};

/**
 * @return The read/write set of @p instr:
 *         trsp d      reads host(d), writes vert(d);
 *         trsp_inv d  reads vert(d), writes host(d);
 *         init d      writes vert(d) and host(d), reads nothing;
 *         shl/shr     read vert(src1), write vert(dst);
 *         op          reads vert(src1[, src2][, sel]), writes
 *                     vert(dst).
 */
BbopEffects effectsOf(const BbopInstr &instr);

/** @return The 64-bit encoding of @p instr. */
uint64_t encodeBbop(const BbopInstr &instr);

/**
 * @return The instruction decoded from @p word.
 *
 * Throws BbopError on malformed encodings: an opcode outside the
 * BbopOpcode range, an element width outside [1, 64], or (for Op
 * instructions) an operation field outside the OpKind range.
 */
BbopInstr decodeBbop(uint64_t word);

/** @return Assembly text, e.g. "bbop_add.32 d3, d1, d2". */
std::string toAsm(const BbopInstr &instr);

} // namespace simdram

#endif // SIMDRAM_ISA_BBOP_H
