#include "isa/dispatcher.h"

#include "common/error.h"

namespace simdram
{

uint16_t
BbopDispatcher::defineObject(size_t elements, size_t bits)
{
    if (objects_.size() >= kNoObject)
        fatal("BbopDispatcher: object table full");
    ObjectInfo info;
    info.elements = elements;
    info.bits = bits;
    info.hostImage.assign(elements, 0);
    objects_.push_back(std::move(info));
    return static_cast<uint16_t>(objects_.size() - 1);
}

void
BbopDispatcher::writeObject(uint16_t id,
                            const std::vector<uint64_t> &data)
{
    ObjectInfo &obj = object(id);
    if (data.size() != obj.elements)
        fatal("writeObject: element count mismatch");
    obj.hostImage = data;
    if (obj.vertical) {
        // Keep the vertical copy coherent, as the transposition unit
        // would on a horizontal write to a transposed object.
        proc_->store(obj.vec, obj.hostImage);
    }
}

const std::vector<uint64_t> &
BbopDispatcher::readObject(uint16_t id) const
{
    return object(id).hostImage;
}

BbopObjectShape
BbopDispatcher::shape(uint16_t id) const
{
    const ObjectInfo &obj = objects_[id];
    return {obj.elements, obj.bits, obj.vertical};
}

void
BbopDispatcher::exec(const BbopInstr &instr)
{
    // All rule checking lives in the shared validator.
    BbopValidator validator(*this);
    validator.check(instr);
    execValidated(instr);
}

void
BbopDispatcher::ensureVec(ObjectInfo &obj)
{
    // Instructions that fully write a destination's vertical image
    // (trsp, init, operation and shift dsts) establish the vertical
    // layout themselves — see the layout rules in isa/validate.h —
    // so the backing vector is allocated on first such write.
    if (!obj.vertical) {
        obj.vec = proc_->alloc(obj.elements, obj.bits);
        obj.vertical = true;
    }
}

void
BbopDispatcher::execValidated(const BbopInstr &instr)
{
    switch (instr.opcode) {
      case BbopOpcode::Trsp: {
        ObjectInfo &obj = object(instr.dst);
        ensureVec(obj);
        proc_->store(obj.vec, obj.hostImage);
        return;
      }
      case BbopOpcode::TrspInv: {
        ObjectInfo &obj = object(instr.dst);
        obj.hostImage = proc_->load(obj.vec);
        return;
      }
      case BbopOpcode::Init: {
        ObjectInfo &obj = object(instr.dst);
        ensureVec(obj);
        const uint64_t imm = instr.initImmediate();
        proc_->fillConstant(obj.vec, imm);
        obj.hostImage.assign(obj.elements, imm);
        return;
      }
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR: {
        ObjectInfo &dst_o = object(instr.dst);
        ObjectInfo &src_o = object(instr.src1);
        ensureVec(dst_o);
        const auto amount = static_cast<size_t>(instr.sel);
        if (instr.opcode == BbopOpcode::ShiftL)
            proc_->shiftLeft(dst_o.vec, src_o.vec, amount);
        else
            proc_->shiftRight(dst_o.vec, src_o.vec, amount);
        return;
      }
      case BbopOpcode::Op:
        break;
    }

    ObjectInfo &dst = object(instr.dst);
    ObjectInfo &src1 = object(instr.src1);
    ensureVec(dst);
    const auto sig = signatureOf(instr.op, instr.width);
    if (sig.numInputs == 1) {
        proc_->run(instr.op, dst.vec, src1.vec);
    } else if (!sig.hasSel) {
        ObjectInfo &src2 = object(instr.src2);
        proc_->run(instr.op, dst.vec, src1.vec, src2.vec);
    } else {
        ObjectInfo &src2 = object(instr.src2);
        ObjectInfo &sel = object(instr.sel);
        proc_->run(instr.op, dst.vec, src1.vec, src2.vec, sel.vec);
    }
}

void
BbopDispatcher::exec(const std::vector<BbopInstr> &stream)
{
    // One validator for the whole stream: its layout scratch tracks
    // the same trsp effects execution applies, so each instruction
    // is checked against the state it will actually observe —
    // without re-snapshotting the object table per instruction.
    // Per-instruction semantics are unchanged: a malformed
    // instruction throws after its predecessors executed, exactly
    // like issuing the bbops one at a time.
    BbopValidator validator(*this);
    for (const auto &i : stream) {
        validator.check(i);
        execValidated(i);
    }
}

BbopDispatcher::ObjectInfo &
BbopDispatcher::object(uint16_t id)
{
    if (id >= objects_.size())
        bbopError("BbopDispatcher: unknown object id d" +
                  std::to_string(id));
    return objects_[id];
}

const BbopDispatcher::ObjectInfo &
BbopDispatcher::object(uint16_t id) const
{
    if (id >= objects_.size())
        bbopError("BbopDispatcher: unknown object id d" +
                  std::to_string(id));
    return objects_[id];
}

} // namespace simdram
