#include "isa/dispatcher.h"

#include "common/error.h"

namespace simdram
{

uint16_t
BbopDispatcher::defineObject(size_t elements, size_t bits)
{
    if (objects_.size() >= kNoObject)
        fatal("BbopDispatcher: object table full");
    ObjectInfo info;
    info.elements = elements;
    info.bits = bits;
    info.hostImage.assign(elements, 0);
    objects_.push_back(std::move(info));
    return static_cast<uint16_t>(objects_.size() - 1);
}

void
BbopDispatcher::writeObject(uint16_t id,
                            const std::vector<uint64_t> &data)
{
    ObjectInfo &obj = object(id);
    if (data.size() != obj.elements)
        fatal("writeObject: element count mismatch");
    obj.hostImage = data;
    if (obj.vertical) {
        // Keep the vertical copy coherent, as the transposition unit
        // would on a horizontal write to a transposed object.
        proc_->store(obj.vec, obj.hostImage);
    }
}

const std::vector<uint64_t> &
BbopDispatcher::readObject(uint16_t id) const
{
    return object(id).hostImage;
}

void
BbopDispatcher::exec(const BbopInstr &instr)
{
    if (instr.width == 0 || instr.width > 64)
        bbopError("bbop: element width " +
                  std::to_string(int{instr.width}) +
                  " outside [1, 64]");
    switch (instr.opcode) {
      case BbopOpcode::Trsp: {
        ObjectInfo &obj = object(instr.dst);
        if (instr.width != obj.bits)
            bbopError("bbop_trsp: width mismatch with object");
        if (!obj.vertical) {
            obj.vec = proc_->alloc(obj.elements, obj.bits);
            obj.vertical = true;
        }
        proc_->store(obj.vec, obj.hostImage);
        return;
      }
      case BbopOpcode::TrspInv: {
        ObjectInfo &obj = object(instr.dst);
        if (!obj.vertical)
            bbopError("bbop_trsp_inv: object is not vertical");
        if (instr.width != obj.bits)
            bbopError("bbop_trsp_inv: width mismatch with object");
        obj.hostImage = proc_->load(obj.vec);
        return;
      }
      case BbopOpcode::Init: {
        ObjectInfo &obj = object(instr.dst);
        if (!obj.vertical)
            bbopError("bbop_init: object is not vertical");
        const uint64_t imm = instr.initImmediate();
        if (obj.bits < 64 && (imm >> obj.bits) != 0)
            bbopError("bbop_init: immediate wider than the object");
        proc_->fillConstant(obj.vec, imm);
        obj.hostImage.assign(obj.elements, imm);
        return;
      }
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR: {
        ObjectInfo &dst_o = object(instr.dst);
        ObjectInfo &src_o = object(instr.src1);
        if (!dst_o.vertical || !src_o.vertical)
            bbopError("bbop_sh*: objects must be vertical");
        if (instr.dst == instr.src1)
            bbopError("bbop_sh*: in-place shift is not supported");
        if (dst_o.bits != src_o.bits ||
            dst_o.elements != src_o.elements)
            bbopError("bbop_sh*: shape mismatch");
        if (instr.width != dst_o.bits)
            bbopError("bbop_sh*: width mismatch with objects");
        const auto amount = static_cast<size_t>(instr.sel);
        if (instr.opcode == BbopOpcode::ShiftL)
            proc_->shiftLeft(dst_o.vec, src_o.vec, amount);
        else
            proc_->shiftRight(dst_o.vec, src_o.vec, amount);
        return;
      }
      case BbopOpcode::Op:
        break;
      default:
        // A BbopInstr built from a raw opcode value (decodeBbop
        // rejects these already) must not fall through to the Op
        // path below as the seed code did.
        bbopError("bbop: unknown opcode " +
                  std::to_string(static_cast<int>(instr.opcode)));
    }

    if (static_cast<size_t>(instr.op) >= kOpKindCount)
        bbopError("bbop: unknown operation " +
                  std::to_string(static_cast<int>(instr.op)));

    ObjectInfo &dst = object(instr.dst);
    ObjectInfo &src1 = object(instr.src1);
    if (!dst.vertical)
        bbopError("bbop: destination object is not vertical; "
                  "issue bbop_trsp first");
    if (!src1.vertical)
        bbopError("bbop: source object is not vertical");
    if (instr.width != src1.bits)
        bbopError("bbop: instruction width " +
                  std::to_string(int{instr.width}) +
                  " does not match source object width " +
                  std::to_string(src1.bits));

    const auto sig = signatureOf(instr.op, instr.width);
    if (dst.bits != sig.outWidth)
        bbopError("bbop: destination object must be " +
                  std::to_string(sig.outWidth) + " bits wide");
    if (instr.dst == instr.src1 ||
        (sig.numInputs == 2 && instr.dst == instr.src2) ||
        (sig.hasSel && instr.dst == instr.sel))
        bbopError("bbop: in-place execution is not supported");
    if (src1.elements != dst.elements)
        bbopError("bbop: operand element counts differ");
    if (sig.numInputs == 1) {
        proc_->run(instr.op, dst.vec, src1.vec);
    } else if (!sig.hasSel) {
        ObjectInfo &src2 = object(instr.src2);
        if (!src2.vertical)
            bbopError("bbop: source object is not vertical");
        if (src2.bits != instr.width)
            bbopError("bbop: operand width mismatch");
        if (src2.elements != dst.elements)
            bbopError("bbop: operand element counts differ");
        proc_->run(instr.op, dst.vec, src1.vec, src2.vec);
    } else {
        ObjectInfo &src2 = object(instr.src2);
        ObjectInfo &sel = object(instr.sel);
        if (!src2.vertical || !sel.vertical)
            bbopError("bbop: source object is not vertical");
        if (src2.bits != instr.width)
            bbopError("bbop: operand width mismatch");
        if (src2.elements != dst.elements ||
            sel.elements != dst.elements)
            bbopError("bbop: operand element counts differ");
        if (sel.bits != 1)
            bbopError("bbop: predicate must be 1 bit wide");
        proc_->run(instr.op, dst.vec, src1.vec, src2.vec, sel.vec);
    }
}

void
BbopDispatcher::exec(const std::vector<BbopInstr> &stream)
{
    for (const auto &i : stream)
        exec(i);
}

BbopDispatcher::ObjectInfo &
BbopDispatcher::object(uint16_t id)
{
    if (id >= objects_.size())
        bbopError("BbopDispatcher: unknown object id d" +
                  std::to_string(id));
    return objects_[id];
}

const BbopDispatcher::ObjectInfo &
BbopDispatcher::object(uint16_t id) const
{
    if (id >= objects_.size())
        bbopError("BbopDispatcher: unknown object id d" +
                  std::to_string(id));
    return objects_[id];
}

} // namespace simdram
