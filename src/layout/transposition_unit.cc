#include "layout/transposition_unit.h"

#include "common/error.h"
#include "layout/transpose.h"

namespace simdram
{

void
TranspositionUnit::storeVertical(Subarray &sub, uint32_t base_row,
                                 size_t bits, const uint64_t *elems,
                                 size_t n)
{
    if (n > sub.rowBits())
        fatal("storeVertical: element count exceeds lanes");
    auto rows = elementsToRows(elems, n, bits, sub.rowBits());
    for (size_t j = 0; j < bits; ++j) {
        // Preserve lanes beyond n (other objects may share rows in
        // principle; here lanes >= n always, rows are exclusive).
        sub.pokeData(base_row + j, rows[j]);
    }
    account(bits, n);
}

std::vector<uint64_t>
TranspositionUnit::loadVertical(const Subarray &sub, uint32_t base_row,
                                size_t bits, size_t n)
{
    std::vector<BitRow> rows;
    rows.reserve(bits);
    for (size_t j = 0; j < bits; ++j)
        rows.push_back(sub.peekData(base_row + j));
    account(bits, n);
    return rowsToElements(rows, n);
}

void
TranspositionUnit::account(size_t rows, size_t bits_each)
{
    const DramTiming &t = cfg_.timing;
    // One ACT + column bursts + PRE per row; bursts carry 512 bits.
    const size_t bursts_per_row = (bits_each + 511) / 512;
    stats_.latencyNs +=
        static_cast<double>(rows) *
        (t.tRcd + static_cast<double>(bursts_per_row) * t.tBurst +
         t.tRp);
    stats_.activates += rows;
    stats_.precharges += rows;
    stats_.writes += rows * bursts_per_row;
    stats_.energyPj +=
        static_cast<double>(rows) *
        (cfg_.actEnergyPj(1) + cfg_.preEnergyPj());
    stats_.energyPj += static_cast<double>(rows) *
                       static_cast<double>(bits_each) *
                       cfg_.energy.eIoPjPerBit;
}

} // namespace simdram
