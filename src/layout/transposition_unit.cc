#include "layout/transposition_unit.h"

#include "common/error.h"
#include "layout/transpose.h"

namespace simdram
{

void
TranspositionUnit::storeVertical(Subarray &sub, uint32_t base_row,
                                 size_t bits, const uint64_t *elems,
                                 size_t n)
{
    if (n > sub.rowBits())
        fatal("storeVertical: element count exceeds lanes");
    // Transpose straight into the resident rows; the Into kernel
    // overwrites every word (lanes beyond n become zero), exactly as
    // poking freshly transposed rows did.
    std::vector<BitRow *> rows(bits);
    for (size_t j = 0; j < bits; ++j)
        rows[j] = &sub.pokeDataRow(base_row + j);
    elementsToRowsInto(elems, n, bits, rows.data());
    account(bits, n);
}

std::vector<uint64_t>
TranspositionUnit::loadVertical(const Subarray &sub, uint32_t base_row,
                                size_t bits, size_t n)
{
    std::vector<const BitRow *> rows(bits);
    for (size_t j = 0; j < bits; ++j)
        rows[j] = &sub.peekData(base_row + j);
    account(bits, n);
    std::vector<uint64_t> elems(n, 0);
    rowsToElementsInto(rows.data(), bits, elems.data(), n);
    return elems;
}

void
TranspositionUnit::account(size_t rows, size_t bits_each)
{
    const DramTiming &t = cfg_.timing;
    // One ACT + column bursts + PRE per row; bursts carry 512 bits.
    const size_t bursts_per_row = (bits_each + 511) / 512;
    stats_.latencyNs +=
        static_cast<double>(rows) *
        (t.tRcd + static_cast<double>(bursts_per_row) * t.tBurst +
         t.tRp);
    stats_.activates += rows;
    stats_.precharges += rows;
    stats_.writes += rows * bursts_per_row;
    stats_.energyPj +=
        static_cast<double>(rows) *
        (cfg_.actEnergyPj(1) + cfg_.preEnergyPj());
    stats_.energyPj += static_cast<double>(rows) *
                       static_cast<double>(bits_each) *
                       cfg_.energy.eIoPjPerBit;
}

} // namespace simdram
