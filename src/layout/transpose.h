/**
 * @file
 * Bit-matrix transposition between horizontal (element-per-word) and
 * vertical (bit-per-row) layouts.
 *
 * This is the data-movement kernel inside SIMDRAM's transposition
 * unit: converting a cache line of horizontal elements into vertical
 * bit slices and back. The implementation works on 64x64 bit tiles
 * (the classic recursive swap network a hardware transposition unit
 * would implement with muxes), feeding BitRow words directly — no
 * per-bit access anywhere on the fast path.
 *
 * The Into variants operate through caller-provided row pointers so
 * the transposition unit can convert straight into (or out of) the
 * subarray's resident rows without materializing a std::vector<BitRow>
 * per transfer. The vector-returning functions are thin wrappers.
 * Semantics are defined by refkernel::elementsToRows /
 * refkernel::rowsToElements in common/kernels_ref.h.
 */

#ifndef SIMDRAM_LAYOUT_TRANSPOSE_H
#define SIMDRAM_LAYOUT_TRANSPOSE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitrow.h"

namespace simdram
{

/**
 * Transposes a 64x64 bit matrix in place.
 *
 * @param m 64 words; bit j of word i becomes bit i of word j.
 */
void transpose64(uint64_t m[64]);

/**
 * Converts @p n horizontal elements into @p bits vertical rows
 * written through @p rows (an array of @p bits row pointers, each of
 * identical width >= @p n). Every word of every target row is
 * written: lanes beyond @p n and bit rows beyond 64 become zero.
 *
 * Row j holds bit j of every element: rows[j]->get(i) == bit j of
 * elems[i].
 */
void elementsToRowsInto(const uint64_t *elems, size_t n, size_t bits,
                        BitRow *const *rows);

/**
 * Converts @p bits vertical rows read through @p rows back into @p n
 * horizontal elements (bits above @p bits or above 64 read as zero).
 */
void rowsToElementsInto(const BitRow *const *rows, size_t bits,
                        uint64_t *elems, size_t n);

/**
 * Converts @p n horizontal elements into @p bits vertical rows of
 * width @p lanes (n <= lanes; remaining lanes are zero).
 */
std::vector<BitRow> elementsToRows(const uint64_t *elems, size_t n,
                                   size_t bits, size_t lanes);

/**
 * Converts vertical rows back into @p n horizontal elements
 * (inverse of elementsToRows; bits above rows.size() read as zero).
 */
std::vector<uint64_t> rowsToElements(const std::vector<BitRow> &rows,
                                     size_t n);

} // namespace simdram

#endif // SIMDRAM_LAYOUT_TRANSPOSE_H
