/**
 * @file
 * Bit-matrix transposition between horizontal (element-per-word) and
 * vertical (bit-per-row) layouts.
 *
 * This is the data-movement kernel inside SIMDRAM's transposition
 * unit: converting a cache line of horizontal elements into vertical
 * bit slices and back. The implementation works on 64x64 bit tiles
 * (the classic recursive swap network a hardware transposition unit
 * would implement with muxes).
 */

#ifndef SIMDRAM_LAYOUT_TRANSPOSE_H
#define SIMDRAM_LAYOUT_TRANSPOSE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitrow.h"

namespace simdram
{

/**
 * Transposes a 64x64 bit matrix in place.
 *
 * @param m 64 words; bit j of word i becomes bit i of word j.
 */
void transpose64(uint64_t m[64]);

/**
 * Converts @p n horizontal elements into @p bits vertical rows of
 * width @p lanes (n <= lanes; remaining lanes are zero).
 *
 * Row j holds bit j of every element: rows[j].get(i) == bit j of
 * elems[i].
 */
std::vector<BitRow> elementsToRows(const uint64_t *elems, size_t n,
                                   size_t bits, size_t lanes);

/**
 * Converts vertical rows back into @p n horizontal elements
 * (inverse of elementsToRows; bits above rows.size() read as zero).
 */
std::vector<uint64_t> rowsToElements(const std::vector<BitRow> &rows,
                                     size_t n);

} // namespace simdram

#endif // SIMDRAM_LAYOUT_TRANSPOSE_H
