/**
 * @file
 * The memory-controller transposition unit (system integration,
 * paper section 4).
 *
 * SIMDRAM stores compute operands vertically while the CPU keeps its
 * horizontal layout; the transposition unit converts between the two
 * on the way in and out of the compute subarrays, so only data that
 * participates in in-DRAM computation pays the layout cost and the
 * CPU retains full-bandwidth horizontal access to everything else.
 *
 * Cost model per vertical store/load of an n-element, w-bit object:
 *  - channel transfer of n*w bits at the configured I/O energy and
 *    burst-pipelined latency;
 *  - one row activate/precharge per touched row (w rows per
 *    subarray segment) for the column accesses;
 *  - the transposition network itself is pipelined with the transfer
 *    and adds no serialized latency.
 */

#ifndef SIMDRAM_LAYOUT_TRANSPOSITION_UNIT_H
#define SIMDRAM_LAYOUT_TRANSPOSITION_UNIT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "dram/subarray.h"

namespace simdram
{

/** Converts host data to/from vertical layout with cost accounting. */
class TranspositionUnit
{
  public:
    /** @param cfg Device configuration (copied). */
    explicit TranspositionUnit(const DramConfig &cfg) : cfg_(cfg) {}

    /**
     * Stores @p n elements vertically into rows
     * [base_row, base_row + bits) of @p sub, lanes [0, n).
     */
    void storeVertical(Subarray &sub, uint32_t base_row, size_t bits,
                       const uint64_t *elems, size_t n);

    /** Loads @p n elements back from vertical layout. */
    std::vector<uint64_t> loadVertical(const Subarray &sub,
                                       uint32_t base_row, size_t bits,
                                       size_t n);

    /** @return Accumulated transfer statistics. */
    const DramStats &stats() const { return stats_; }

    /** Clears accumulated statistics. */
    void resetStats() { stats_.reset(); }

  private:
    /** Adds the cost of moving @p rows rows of @p bits_each bits. */
    void account(size_t rows, size_t bits_each);

    DramConfig cfg_;
    DramStats stats_;
};

} // namespace simdram

#endif // SIMDRAM_LAYOUT_TRANSPOSITION_UNIT_H
