#include "layout/transpose.h"

#include <array>
#include <cstring>

#include "common/error.h"

namespace simdram
{

void
transpose64(uint64_t m[64])
{
    // Recursive block-swap network (Hacker's Delight 7-3): swap
    // progressively smaller off-diagonal blocks.
    uint64_t mask = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
            m[k] ^= t;
            m[k + j] ^= t << j;
        }
    }
}

std::vector<BitRow>
elementsToRows(const uint64_t *elems, size_t n, size_t bits,
               size_t lanes)
{
    if (n > lanes)
        fatal("elementsToRows: more elements than lanes");
    std::vector<BitRow> rows(bits, BitRow(lanes));

    // Process tiles of 64 elements; each tile is one 64x64 transpose
    // whose output words land in word column `tile` of each row.
    const size_t tiles = (n + 63) / 64;
    std::array<uint64_t, 64> block;
    for (size_t tile = 0; tile < tiles; ++tile) {
        const size_t base = tile * 64;
        const size_t count = std::min<size_t>(64, n - base);
        block.fill(0);
        // The swap network transposes about the anti-diagonal:
        // (word w, bit b) -> (word 63-b, bit 63-w). Loading element e
        // into word 63-e therefore lands bit j of element e in word
        // 63-j at bit e, so row j reads word 63-j directly.
        for (size_t e = 0; e < count; ++e)
            block[63 - e] = elems[base + e];
        transpose64(block.data());
        for (size_t j = 0; j < bits && j < 64; ++j)
            rows[j].word(tile) = block[63 - j];
    }
    return rows;
}

std::vector<uint64_t>
rowsToElements(const std::vector<BitRow> &rows, size_t n)
{
    std::vector<uint64_t> elems(n, 0);
    if (rows.empty())
        return elems;
    const size_t lanes = rows[0].width();
    if (n > lanes)
        fatal("rowsToElements: more elements than lanes");

    const size_t tiles = (n + 63) / 64;
    std::array<uint64_t, 64> block;
    for (size_t tile = 0; tile < tiles; ++tile) {
        block.fill(0);
        for (size_t j = 0; j < rows.size() && j < 64; ++j)
            block[63 - j] = rows[j].word(tile);
        transpose64(block.data());
        const size_t base = tile * 64;
        const size_t count = std::min<size_t>(64, n - base);
        for (size_t e = 0; e < count; ++e)
            elems[base + e] = block[63 - e];
    }
    return elems;
}

} // namespace simdram
