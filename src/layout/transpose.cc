#include "layout/transpose.h"

#include <array>
#include <cstring>

#include "common/error.h"

namespace simdram
{

void
transpose64(uint64_t m[64])
{
    // Recursive block-swap network (Hacker's Delight 7-3): swap
    // progressively smaller off-diagonal blocks.
    uint64_t mask = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
            m[k] ^= t;
            m[k + j] ^= t << j;
        }
    }
}

void
elementsToRowsInto(const uint64_t *elems, size_t n, size_t bits,
                   BitRow *const *rows)
{
    if (bits == 0)
        return;
    const size_t word_count = rows[0]->wordCount();
    if (n > rows[0]->width())
        fatal("elementsToRows: more elements than lanes");

    // Process tiles of 64 elements; each tile is one 64x64 transpose
    // whose output words land in word column `tile` of each row.
    const size_t tiles = (n + 63) / 64;
    std::array<uint64_t, 64> block;
    for (size_t tile = 0; tile < tiles; ++tile) {
        const size_t base = tile * 64;
        const size_t count = std::min<size_t>(64, n - base);
        block.fill(0);
        // The swap network transposes about the anti-diagonal:
        // (word w, bit b) -> (word 63-b, bit 63-w). Loading element e
        // into word 63-e therefore lands bit j of element e in word
        // 63-j at bit e, so row j reads word 63-j directly.
        for (size_t e = 0; e < count; ++e)
            block[63 - e] = elems[base + e];
        transpose64(block.data());
        for (size_t j = 0; j < bits && j < 64; ++j)
            rows[j]->setWord(tile, block[63 - j]);
    }
    // Zero the lanes beyond n and the bit rows beyond what a 64-bit
    // element can populate, so the rows carry exactly the transposed
    // data (matches the reference kernel, which starts from zeros).
    for (size_t j = 0; j < bits; ++j) {
        const size_t from = j < 64 ? tiles : 0;
        for (size_t t = from; t < word_count; ++t)
            rows[j]->setWord(t, 0);
    }
}

void
rowsToElementsInto(const BitRow *const *rows, size_t bits,
                   uint64_t *elems, size_t n)
{
    if (n == 0)
        return;
    if (bits > 0 && n > rows[0]->width())
        fatal("rowsToElements: more elements than lanes");

    const size_t tiles = (n + 63) / 64;
    std::array<uint64_t, 64> block;
    for (size_t tile = 0; tile < tiles; ++tile) {
        block.fill(0);
        for (size_t j = 0; j < bits && j < 64; ++j)
            block[63 - j] = rows[j]->word(tile);
        transpose64(block.data());
        const size_t base = tile * 64;
        const size_t count = std::min<size_t>(64, n - base);
        for (size_t e = 0; e < count; ++e)
            elems[base + e] = block[63 - e];
    }
}

std::vector<BitRow>
elementsToRows(const uint64_t *elems, size_t n, size_t bits,
               size_t lanes)
{
    if (n > lanes)
        fatal("elementsToRows: more elements than lanes");
    std::vector<BitRow> rows(bits, BitRow(lanes));
    std::vector<BitRow *> ptrs(bits);
    for (size_t j = 0; j < bits; ++j)
        ptrs[j] = &rows[j];
    elementsToRowsInto(elems, n, bits, ptrs.data());
    return rows;
}

std::vector<uint64_t>
rowsToElements(const std::vector<BitRow> &rows, size_t n)
{
    std::vector<uint64_t> elems(n, 0);
    std::vector<const BitRow *> ptrs(rows.size());
    for (size_t j = 0; j < rows.size(); ++j)
        ptrs[j] = &rows[j];
    rowsToElementsInto(ptrs.data(), rows.size(), elems.data(), n);
    return elems;
}

} // namespace simdram
