#include "stream/stream_builder.h"

namespace simdram
{

uint8_t
StreamBuilder::widthOf(uint16_t id) const
{
    // objectShape throws the usual typed BbopError on unknown ids, so
    // a misaddressed builder call fails at build time, not submit.
    return static_cast<uint8_t>(ex_->objectShape(id).bits);
}

void
StreamBuilder::requireKnown(uint16_t id) const
{
    (void)ex_->objectShape(id); // throws BbopError on unknown ids
}

StreamBuilder &
StreamBuilder::append(const BbopInstr &instr)
{
    ir_.nodes.push_back({instr, ir_.segments - 1, false});
    return *this;
}

StreamBuilder &
StreamBuilder::trsp(uint16_t obj)
{
    return append(BbopInstr::trsp(obj, widthOf(obj)));
}

StreamBuilder &
StreamBuilder::trspInv(uint16_t obj)
{
    return append(BbopInstr::trspInv(obj, widthOf(obj)));
}

StreamBuilder &
StreamBuilder::init(uint16_t obj, uint64_t imm)
{
    return append(BbopInstr::init(obj, widthOf(obj), imm));
}

StreamBuilder &
StreamBuilder::unary(OpKind op, uint16_t dst, uint16_t src1)
{
    // Check every operand BEFORE the append mutates the program:
    // widthOf covers only the width-source operand (src1 here), but
    // a bad dst must fail just as eagerly and just as atomically.
    const uint8_t w = widthOf(src1);
    requireKnown(dst);
    return append(BbopInstr::unary(op, w, dst, src1));
}

StreamBuilder &
StreamBuilder::binary(OpKind op, uint16_t dst, uint16_t src1,
                      uint16_t src2)
{
    const uint8_t w = widthOf(src1);
    requireKnown(dst);
    requireKnown(src2);
    return append(BbopInstr::binary(op, w, dst, src1, src2));
}

StreamBuilder &
StreamBuilder::predicated(OpKind op, uint16_t dst, uint16_t src1,
                          uint16_t src2, uint16_t sel)
{
    const uint8_t w = widthOf(src1);
    requireKnown(dst);
    requireKnown(src2);
    requireKnown(sel);
    return append(
        BbopInstr::predicated(op, w, dst, src1, src2, sel));
}

StreamBuilder &
StreamBuilder::shiftLeft(uint16_t dst, uint16_t src, uint8_t amount)
{
    // Shifts take their width from DST (operations take src1's) —
    // so the explicit check covers src.
    const uint8_t w = widthOf(dst);
    requireKnown(src);
    return append(BbopInstr::shift(true, w, dst, src, amount));
}

StreamBuilder &
StreamBuilder::shiftRight(uint16_t dst, uint16_t src, uint8_t amount)
{
    const uint8_t w = widthOf(dst);
    requireKnown(src);
    return append(BbopInstr::shift(false, w, dst, src, amount));
}

StreamBuilder &
StreamBuilder::accumulate(PingPong &acc, uint16_t value)
{
    binary(OpKind::Add, acc.dst(), acc.src(), value);
    acc.flip();
    return *this;
}

StreamBuilder &
StreamBuilder::nextStream()
{
    // An empty segment would dispatch an empty stream; treat repeated
    // boundaries (and a leading one) as one.
    bool currentEmpty = true;
    for (const auto &n : ir_.nodes)
        if (n.segment == ir_.segments - 1) {
            currentEmpty = false;
            break;
        }
    if (!currentEmpty)
        ++ir_.segments;
    return *this;
}

std::vector<uint64_t>
StreamBuilder::encodeStream() const
{
    if (ir_.segments != 1)
        bbopError("StreamBuilder: cannot encode a multi-stream "
                  "program (encoded words carry no boundaries)");
    std::vector<uint64_t> words;
    words.reserve(ir_.nodes.size());
    for (const auto &n : ir_.nodes)
        words.push_back(encodeBbop(n.instr));
    return words;
}

StreamHandle
StreamBuilder::submit()
{
    if (ir_.segments != 1)
        bbopError("StreamBuilder: submit() is for single-stream "
                  "programs; use submitAll()");
    return submitAll().front();
}

std::vector<StreamHandle>
StreamBuilder::submitAll()
{
    // Drop a trailing empty segment (a nextStream() with nothing
    // after it) so no empty stream is dispatched.
    bool lastEmpty = ir_.segments > 1;
    for (const auto &n : ir_.nodes)
        if (n.segment == ir_.segments - 1) {
            lastEmpty = false;
            break;
        }
    if (lastEmpty)
        --ir_.segments;
    auto handles = ex_->submit(ir_);
    clear();
    return handles;
}

void
StreamBuilder::clear()
{
    ir_ = StreamIR{};
}

} // namespace simdram
