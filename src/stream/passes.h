/**
 * @file
 * The stream optimizer passes.
 *
 * Three passes run over a StreamIR between StreamExecutor::submit()
 * and dispatch, in a fixed order:
 *
 *   1. trsp/init hoisting — a forward scan that removes transpose
 *      and constant-fill instructions whose effect is already in
 *      place (the static, whole-program generalization of the
 *      runtime's cross-submission stream cache, which stays as the
 *      dynamic backstop);
 *   2. dead-write elimination — a backward scan over the
 *      effectsOf() read/write sets that removes instructions whose
 *      every written location is overwritten before any read;
 *   3. fusion — adjacent segments that share an operand object are
 *      merged into one device pass, eliding the per-stream
 *      queue/dispatch round trip between them.
 *
 * Every write in the bbop ISA is a FULL write of its location, and
 * the validator lets full vertical writes establish the vertical
 * layout (isa/validate.h), so removing a trsp whose image is
 * overwritten before any read keeps the program valid and the final
 * layout state identical — which is what lets the executor validate
 * the ORIGINAL program and commit that layout (see
 * StreamExecutor::submit).
 *
 * Each pass is individually toggleable (StreamExecutorOptions maps
 * onto PassOptions); runPasses reports per-pass counts in PassStats.
 */

#ifndef SIMDRAM_STREAM_PASSES_H
#define SIMDRAM_STREAM_PASSES_H

#include <cstddef>

#include "stream/stream_ir.h"

namespace simdram
{

/** Which passes to run; all on by default. */
struct PassOptions
{
    bool trspHoist = true;
    bool deadWriteElim = true;
    bool fusion = true;
};

/** What the passes did to one program. */
struct PassStats
{
    size_t hoisted = 0;         ///< Nodes removed by hoisting.
    size_t deadEliminated = 0;  ///< Nodes removed by DWE.
    size_t fusedSegments = 0;   ///< Segments merged away by fusion.

    /** @return Total instructions removed by the scalar passes. */
    size_t removed() const { return hoisted + deadEliminated; }
};

/**
 * Runs the enabled passes over @p ir in place (order: hoist, DWE,
 * fusion) and returns what they did. The IR must be a VALIDATED
 * program: the passes assume every instruction obeys the bbop rules.
 */
PassStats runPasses(StreamIR &ir, const PassOptions &opts);

} // namespace simdram

#endif // SIMDRAM_STREAM_PASSES_H
