#include "stream/stream_ir.h"

namespace simdram
{

StreamIR
StreamIR::lift(const std::vector<BbopInstr> &stream)
{
    StreamIR ir;
    ir.nodes.reserve(stream.size());
    for (const auto &in : stream)
        ir.nodes.push_back({in, 0, false});
    ir.segments = 1;
    return ir;
}

std::vector<std::vector<BbopInstr>>
StreamIR::lower() const
{
    std::vector<std::vector<BbopInstr>> out(segments);
    for (const auto &n : nodes)
        if (!n.dead)
            out[n.segment].push_back(n.instr);
    return out;
}

size_t
StreamIR::liveCount() const
{
    size_t live = 0;
    for (const auto &n : nodes)
        if (!n.dead)
            ++live;
    return live;
}

} // namespace simdram
