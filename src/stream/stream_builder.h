/**
 * @file
 * Fluent construction of bbop stream programs.
 *
 * StreamBuilder replaces hand-rolled std::vector<BbopInstr> assembly:
 * it derives every instruction's element width from the executor's
 * object table (one less thing each call site can get wrong), lets a
 * program span multiple streams with nextStream(), and submits the
 * whole thing through the optimizer pass pipeline:
 *
 *   StreamBuilder b(ex);
 *   b.trsp(a).trsp(w)
 *    .binary(OpKind::Mul, p, a, w)
 *    .nextStream()
 *    .unary(OpKind::Relu, y, p)
 *    .trspInv(y);
 *   auto handles = b.submitAll();   // one handle per final segment
 *
 * The accumulate() helper captures the ping-pong accumulator pattern
 * knn and the nn conv tile share: reductions alternate between two
 * scratch objects because in-place bbop execution is not supported.
 */

#ifndef SIMDRAM_STREAM_STREAM_BUILDER_H
#define SIMDRAM_STREAM_STREAM_BUILDER_H

#include <cstdint>
#include <vector>

#include "runtime/stream_executor.h"
#include "stream/stream_ir.h"

namespace simdram
{

/**
 * Accumulator state for ping-pong reductions: partial sums alternate
 * between two same-shaped scratch objects (dst must differ from src —
 * the ISA forbids in-place execution). src() is the current partial
 * sum, dst() the one the next step writes; StreamBuilder::accumulate
 * emits the step and flips. After the loop, result() names the object
 * holding the final sum.
 */
struct PingPong
{
    uint16_t ping = kNoObject;
    uint16_t pong = kNoObject;
    bool intoPong = true;

    /** @return The object holding the partial sum so far. */
    uint16_t src() const { return intoPong ? ping : pong; }
    /** @return The object the next accumulation step writes. */
    uint16_t dst() const { return intoPong ? pong : ping; }
    /** Advances after a step: the written object becomes src(). */
    void flip() { intoPong = !intoPong; }
    /** @return The object holding the final sum (same as src()). */
    uint16_t result() const { return src(); }
};

/**
 * Builds multi-stream bbop programs against any StreamService — the
 * physical StreamExecutor or a tenant's virtualized view (in which
 * case every id the builder sees lives in that tenant's namespace).
 *
 * Every fluent method validates ALL of its operand ids against the
 * service's object table eagerly: an unknown id throws the typed
 * BbopError at build time with the program unmutated (strong
 * guarantee — the builder remains usable). Note the width-source
 * asymmetry the ISA imposes: operations take their element width
 * from src1, shifts from dst.
 */
class StreamBuilder
{
  public:
    /** @param ex Service whose object table defines widths
     *            (borrowed; must outlive the builder). */
    explicit StreamBuilder(StreamService &ex) : ex_(&ex) {}

    /** Appends bbop_trsp of @p obj (width from the object table). */
    StreamBuilder &trsp(uint16_t obj);

    /** Appends bbop_trsp_inv of @p obj. */
    StreamBuilder &trspInv(uint16_t obj);

    /** Appends bbop_init of @p obj with immediate @p imm. */
    StreamBuilder &init(uint16_t obj, uint64_t imm);

    /** Appends a unary operation (width from @p src1). */
    StreamBuilder &unary(OpKind op, uint16_t dst, uint16_t src1);

    /** Appends a binary operation (width from @p src1). */
    StreamBuilder &binary(OpKind op, uint16_t dst, uint16_t src1,
                          uint16_t src2);

    /** Appends a predicated operation (width from @p src1). */
    StreamBuilder &predicated(OpKind op, uint16_t dst, uint16_t src1,
                              uint16_t src2, uint16_t sel);

    /** Appends bbop_shl dst = src << amount (width from @p dst). */
    StreamBuilder &shiftLeft(uint16_t dst, uint16_t src,
                             uint8_t amount);

    /** Appends bbop_shr dst = src >> amount (width from @p dst). */
    StreamBuilder &shiftRight(uint16_t dst, uint16_t src,
                              uint8_t amount);

    /**
     * Appends one ping-pong accumulation step
     * (acc.dst() = acc.src() + value) and flips @p acc.
     */
    StreamBuilder &accumulate(PingPong &acc, uint16_t value);

    /**
     * Ends the current stream: subsequent instructions go into a new
     * segment, dispatched as its own device pass (unless fusion
     * merges it back). A no-op while the current stream is empty.
     */
    StreamBuilder &nextStream();

    /** @return The program built so far (the builder keeps its own). */
    StreamIR build() const { return ir_; }

    /** @return Number of instructions appended so far. */
    size_t size() const { return ir_.nodes.size(); }

    /**
     * @return The current program encoded as 64-bit bbop words, for
     *         the encoded-submission path. Single-stream programs
     *         only (encoded words carry no segment boundaries);
     *         throws BbopError after nextStream().
     */
    std::vector<uint64_t> encodeStream() const;

    /**
     * Submits a single-stream program and resets the builder for the
     * next one. Throws BbopError if nextStream() split the program —
     * use submitAll() for multi-segment submissions.
     */
    StreamHandle submit();

    /**
     * Submits the whole program (one handle per final segment, in
     * order) and resets the builder.
     */
    std::vector<StreamHandle> submitAll();

    /** Discards everything built so far. */
    void clear();

  private:
    /** Appends @p instr to the current segment. */
    StreamBuilder &append(const BbopInstr &instr);

    /** @return Object @p id's element width as an encodable uint8_t. */
    uint8_t widthOf(uint16_t id) const;

    /**
     * Throws the typed BbopError for an unknown object id. Every
     * fluent method checks ALL of its operand ids (not just the one
     * its width derives from) BEFORE appending anything, so a
     * misaddressed call fails at build time and leaves the
     * partially-built program untouched — the builder stays usable.
     */
    void requireKnown(uint16_t id) const;

    StreamService *ex_;
    StreamIR ir_;
};

} // namespace simdram

#endif // SIMDRAM_STREAM_STREAM_BUILDER_H
