/**
 * @file
 * The typed stream IR the optimizer passes run over.
 *
 * A StreamIR is a flat list of bbop instructions annotated with the
 * two facts the passes need: which SEGMENT (device pass / stream
 * boundary) each instruction belongs to, and whether a pass has
 * already marked it dead. Dataflow facts — defs, uses, per-object
 * layout effects — are not stored; they are recomputed on demand from
 * effectsOf() (src/isa/bbop.h), which keeps the IR trivially
 * consistent under mutation.
 *
 * Lifecycle: StreamBuilder (or StreamIR::lift over a raw instruction
 * vector) produces the IR, runPasses (src/stream/passes.h) mutates it
 * in place, and lower() re-materializes one instruction vector per
 * surviving segment for the executor to dispatch.
 */

#ifndef SIMDRAM_STREAM_STREAM_IR_H
#define SIMDRAM_STREAM_STREAM_IR_H

#include <cstddef>
#include <vector>

#include "isa/bbop.h"

namespace simdram
{

/** One instruction in the IR, with its pass annotations. */
struct StreamNode
{
    BbopInstr instr;
    size_t segment = 0; ///< Which device pass this belongs to.
    bool dead = false;  ///< Set by passes; skipped by lower().
};

/** A multi-segment bbop program in optimizer form. */
struct StreamIR
{
    std::vector<StreamNode> nodes;
    /** Number of segments; node segments are in [0, segments). */
    size_t segments = 1;

    /** @return @p stream lifted into a single-segment IR. */
    static StreamIR lift(const std::vector<BbopInstr> &stream);

    /**
     * @return One instruction vector per segment, in segment order,
     *         dead nodes skipped. Segments that became empty are
     *         still returned (as empty vectors) so callers can map
     *         results back to submission-order segments.
     */
    std::vector<std::vector<BbopInstr>> lower() const;

    /** @return Number of non-dead nodes. */
    size_t liveCount() const;
};

} // namespace simdram

#endif // SIMDRAM_STREAM_STREAM_IR_H
