#include "stream/passes.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace simdram
{

namespace
{

/** @return One-past the largest object id any node touches. */
size_t
objectBound(const StreamIR &ir)
{
    size_t bound = 0;
    for (const auto &n : ir.nodes) {
        const BbopEffects e = effectsOf(n.instr);
        for (size_t i = 0; i < e.numReads; ++i)
            bound = std::max(bound, size_t{e.reads[i].obj} + 1);
        for (size_t i = 0; i < e.numWrites; ++i)
            bound = std::max(bound, size_t{e.writes[i].obj} + 1);
    }
    return bound;
}

/**
 * Forward scan removing trsp/trsp_inv/init instructions whose effect
 * is already in place. Tracks, per object, whether the vertical and
 * host images coincide and whether they hold a known broadcast
 * constant — the same state machine as the runtime stream cache
 * (stream_executor.cc), but static over the whole submitted program,
 * so it fires within one submission where the runtime cache only
 * fires across them. Entry state is all-unknown: nothing is assumed
 * about images produced before this program.
 */
size_t
hoistPass(StreamIR &ir)
{
    struct Fact
    {
        bool mirror = false;   ///< vert image == host image.
        bool hasConst = false; ///< Both hold this broadcast constant.
        uint64_t constVal = 0;
    };
    std::vector<Fact> facts(objectBound(ir));

    size_t hoisted = 0;
    for (auto &n : ir.nodes) {
        if (n.dead)
            continue;
        const BbopInstr &in = n.instr;
        switch (in.opcode) {
          case BbopOpcode::Trsp: {
            Fact &f = facts[in.dst];
            if (f.mirror) {
                n.dead = true;
                ++hoisted;
            } else {
                f.mirror = true;
            }
            break;
          }
          case BbopOpcode::TrspInv: {
            Fact &f = facts[in.dst];
            if (f.mirror) {
                n.dead = true;
                ++hoisted;
            } else {
                f.mirror = true;
                f.hasConst = false;
            }
            break;
          }
          case BbopOpcode::Init: {
            Fact &f = facts[in.dst];
            const uint64_t imm = in.initImmediate();
            if (f.mirror && f.hasConst && f.constVal == imm) {
                n.dead = true;
                ++hoisted;
            } else {
                f.mirror = true;
                f.hasConst = true;
                f.constVal = imm;
            }
            break;
          }
          case BbopOpcode::Op:
          case BbopOpcode::ShiftL:
          case BbopOpcode::ShiftR: {
            Fact &f = facts[in.dst];
            f.mirror = false;
            f.hasConst = false;
            break;
          }
        }
    }
    return hoisted;
}

/**
 * Backward scan removing instructions whose every written location is
 * overwritten (by a surviving instruction) before any read. Both
 * locations of every object are live-out at the end of the program —
 * the host can readObject() and a later submission can read the
 * vertical image — so only writes with an overwriter INSIDE this
 * program are candidates. A removed node is transparent: it neither
 * kills nor revives liveness.
 */
size_t
deadWritePass(StreamIR &ir)
{
    const size_t bound = objectBound(ir);
    // Per (object, location): true iff a surviving later instruction
    // fully overwrites it before anything reads it.
    std::vector<uint8_t> overVert(bound, 0), overHost(bound, 0);
    auto flag = [&](const BbopAccess &a) -> uint8_t & {
        return a.loc == BbopLoc::Vert ? overVert[a.obj]
                                      : overHost[a.obj];
    };

    size_t eliminated = 0;
    for (auto it = ir.nodes.rbegin(); it != ir.nodes.rend(); ++it) {
        if (it->dead)
            continue;
        const BbopEffects e = effectsOf(it->instr);
        bool allOverwritten = e.numWrites > 0;
        for (size_t i = 0; i < e.numWrites; ++i)
            allOverwritten = allOverwritten && flag(e.writes[i]);
        if (allOverwritten) {
            it->dead = true;
            ++eliminated;
            continue;
        }
        for (size_t i = 0; i < e.numWrites; ++i)
            flag(e.writes[i]) = 1;
        for (size_t i = 0; i < e.numReads; ++i)
            flag(e.reads[i]) = 0;
    }
    return eliminated;
}

/**
 * Merges runs of adjacent segments that share an operand object into
 * one segment, then renumbers segments densely. Only adjacent
 * segments merge — the per-device FIFO makes submission order the
 * execution order, and fusing across an unrelated segment would
 * reorder it. Segments whose nodes all died keep their own (empty)
 * slot so results still map back one-to-one.
 */
size_t
fusionPass(StreamIR &ir)
{
    if (ir.segments < 2)
        return 0;

    const size_t bound = objectBound(ir);
    // Per-segment object-touch sets over live nodes.
    std::vector<std::vector<uint8_t>> touches(
        ir.segments, std::vector<uint8_t>(bound, 0));
    for (const auto &n : ir.nodes) {
        if (n.dead)
            continue;
        const BbopEffects e = effectsOf(n.instr);
        for (size_t i = 0; i < e.numReads; ++i)
            touches[n.segment][e.reads[i].obj] = 1;
        for (size_t i = 0; i < e.numWrites; ++i)
            touches[n.segment][e.writes[i].obj] = 1;
    }
    auto shares = [&](const std::vector<uint8_t> &a,
                      const std::vector<uint8_t> &b) {
        for (size_t i = 0; i < a.size(); ++i)
            if (a[i] && b[i])
                return true;
        return false;
    };

    // Greedy chain: fold each segment into the current group when it
    // shares an object with the group's accumulated touch set.
    std::vector<size_t> group(ir.segments, 0);
    std::vector<uint8_t> groupTouch = touches[0];
    size_t groups = 1;
    for (size_t s = 1; s < ir.segments; ++s) {
        if (shares(groupTouch, touches[s])) {
            for (size_t i = 0; i < bound; ++i)
                groupTouch[i] =
                    static_cast<uint8_t>(groupTouch[i] | touches[s][i]);
        } else {
            groupTouch = touches[s];
            ++groups;
        }
        group[s] = groups - 1;
    }
    if (groups == ir.segments)
        return 0;

    for (auto &n : ir.nodes)
        n.segment = group[n.segment];
    const size_t fused = ir.segments - groups;
    ir.segments = groups;
    return fused;
}

} // namespace

PassStats
runPasses(StreamIR &ir, const PassOptions &opts)
{
    PassStats stats;
    if (ir.nodes.empty())
        return stats;
    if (opts.trspHoist)
        stats.hoisted = hoistPass(ir);
    if (opts.deadWriteElim)
        stats.deadEliminated = deadWritePass(ir);
    if (opts.fusion)
        stats.fusedSegments = fusionPass(ir);
    return stats;
}

} // namespace simdram
