#include "common/bitrow.h"

#include <bit>
#include <cassert>

namespace simdram
{

BitRow::BitRow(size_t width, bool value)
    : width_(width), words_((width + 63) / 64, value ? ~0ULL : 0ULL)
{
    trim();
}

bool
BitRow::get(size_t i) const
{
    assert(i < width_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void
BitRow::set(size_t i, bool value)
{
    assert(i < width_);
    const uint64_t mask = 1ULL << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

void
BitRow::fill(bool value)
{
    for (auto &w : words_)
        w = value ? ~0ULL : 0ULL;
    trim();
}

size_t
BitRow::popcount() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

bool
BitRow::allZero() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

bool
BitRow::allOne() const
{
    return popcount() == width_;
}

void
BitRow::invert()
{
    for (auto &w : words_)
        w = ~w;
    trim();
}

BitRow
BitRow::operator~() const
{
    BitRow r = *this;
    r.invert();
    return r;
}

BitRow &
BitRow::operator&=(const BitRow &other)
{
    assert(width_ == other.width_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

BitRow &
BitRow::operator|=(const BitRow &other)
{
    assert(width_ == other.width_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitRow &
BitRow::operator^=(const BitRow &other)
{
    assert(width_ == other.width_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

BitRow
BitRow::majority3(const BitRow &a, const BitRow &b, const BitRow &c)
{
    assert(a.width_ == b.width_ && b.width_ == c.width_);
    BitRow r(a.width_);
    for (size_t i = 0; i < r.words_.size(); ++i) {
        const uint64_t x = a.words_[i], y = b.words_[i], z = c.words_[i];
        r.words_[i] = (x & y) | (y & z) | (x & z);
    }
    return r;
}

BitRow
BitRow::select(const BitRow &sel, const BitRow &t, const BitRow &f)
{
    assert(sel.width_ == t.width_ && t.width_ == f.width_);
    BitRow r(sel.width_);
    for (size_t i = 0; i < r.words_.size(); ++i) {
        const uint64_t s = sel.words_[i];
        r.words_[i] = (s & t.words_[i]) | (~s & f.words_[i]);
    }
    return r;
}

std::string
BitRow::toString(size_t max_bits) const
{
    const size_t n = std::min(max_bits, width_);
    std::string s;
    s.reserve(n + 3);
    for (size_t i = 0; i < n; ++i)
        s.push_back(get(i) ? '1' : '0');
    if (n < width_)
        s += "...";
    return s;
}

void
BitRow::trim()
{
    const size_t rem = width_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (1ULL << rem) - 1;
}

} // namespace simdram
