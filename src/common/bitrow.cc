#include "common/bitrow.h"

#include <bit>
#include <cassert>

#if defined(SIMDRAM_USE_AVX2) && defined(__AVX2__)
#define SIMDRAM_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace simdram
{

BitRow::BitRow(size_t width, bool value)
    : width_(width), words_((width + 63) / 64, value ? ~0ULL : 0ULL)
{
    trimLast();
}

bool
BitRow::get(size_t i) const
{
    assert(i < width_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void
BitRow::set(size_t i, bool value)
{
    assert(i < width_);
    const uint64_t mask = 1ULL << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

void
BitRow::fill(bool value)
{
    for (auto &w : words_)
        w = value ? ~0ULL : 0ULL;
    trimLast();
}

size_t
BitRow::popcount() const
{
    // Four independent accumulators break the loop-carried dependency
    // so the popcounts pipeline (and vectorize with AVX-512 VPOPCNTQ
    // where available).
    const uint64_t *w = words_.data();
    const size_t n = words_.size();
    size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        n0 += static_cast<size_t>(std::popcount(w[i]));
        n1 += static_cast<size_t>(std::popcount(w[i + 1]));
        n2 += static_cast<size_t>(std::popcount(w[i + 2]));
        n3 += static_cast<size_t>(std::popcount(w[i + 3]));
    }
    for (; i < n; ++i)
        n0 += static_cast<size_t>(std::popcount(w[i]));
    return n0 + n1 + n2 + n3;
}

bool
BitRow::allZero() const
{
    for (uint64_t w : words_)
        if (w != 0)
            return false;
    return true;
}

bool
BitRow::allOne() const
{
    return popcount() == width_;
}

void
BitRow::invert()
{
    uint64_t *w = words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        w[i] = ~w[i];
    trimLast();
}

BitRow
BitRow::operator~() const
{
    BitRow r = *this;
    r.invert();
    return r;
}

BitRow &
BitRow::operator&=(const BitRow &other)
{
    assert(width_ == other.width_);
    uint64_t *a = words_.data();
    const uint64_t *b = other.words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        a[i] &= b[i];
    return *this;
}

BitRow &
BitRow::operator|=(const BitRow &other)
{
    assert(width_ == other.width_);
    uint64_t *a = words_.data();
    const uint64_t *b = other.words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        a[i] |= b[i];
    return *this;
}

BitRow &
BitRow::operator^=(const BitRow &other)
{
    assert(width_ == other.width_);
    uint64_t *a = words_.data();
    const uint64_t *b = other.words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        a[i] ^= b[i];
    return *this;
}

void
BitRow::adoptShape(const BitRow &other)
{
    width_ = other.width_;
    words_.resize(other.words_.size());
}

void
BitRow::aapInto(BitRow &dst) const
{
    dst.adoptShape(*this);
    uint64_t *d = dst.words_.data();
    const uint64_t *s = words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        d[i] = s[i];
}

void
BitRow::assignNot(const BitRow &src)
{
    adoptShape(src);
    uint64_t *d = words_.data();
    const uint64_t *s = src.words_.data();
    const size_t n = words_.size();
    for (size_t i = 0; i < n; ++i)
        d[i] = ~s[i];
    trimLast();
}

void
BitRow::andNotInto(BitRow &out, const BitRow &a, const BitRow &b)
{
    assert(a.width_ == b.width_);
    out.adoptShape(a);
    uint64_t *o = out.words_.data();
    const uint64_t *x = a.words_.data();
    const uint64_t *y = b.words_.data();
    const size_t n = out.words_.size();
    for (size_t i = 0; i < n; ++i)
        o[i] = x[i] & ~y[i];
}

void
BitRow::majority3Into(BitRow &out, const BitRow &a, const BitRow &b,
                      const BitRow &c)
{
    assert(a.width_ == b.width_ && b.width_ == c.width_);
    out.adoptShape(a);
    uint64_t *o = out.words_.data();
    const uint64_t *x = a.words_.data();
    const uint64_t *y = b.words_.data();
    const uint64_t *z = c.words_.data();
    const size_t n = out.words_.size();
    size_t i = 0;
#ifdef SIMDRAM_HAVE_AVX2_KERNELS
    for (; i + 4 <= n; i += 4) {
        const __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + i));
        const __m256i vy =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + i));
        const __m256i vz =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(z + i));
        const __m256i r = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(vx, vy),
                            _mm256_and_si256(vy, vz)),
            _mm256_and_si256(vx, vz));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o + i), r);
    }
#endif
    for (; i < n; ++i)
        o[i] = (x[i] & y[i]) | (y[i] & z[i]) | (x[i] & z[i]);
}

void
BitRow::selectInto(BitRow &out, const BitRow &sel, const BitRow &t,
                   const BitRow &f)
{
    assert(sel.width_ == t.width_ && t.width_ == f.width_);
    out.adoptShape(sel);
    uint64_t *o = out.words_.data();
    const uint64_t *s = sel.words_.data();
    const uint64_t *vt = t.words_.data();
    const uint64_t *vf = f.words_.data();
    const size_t n = out.words_.size();
    size_t i = 0;
#ifdef SIMDRAM_HAVE_AVX2_KERNELS
    for (; i + 4 <= n; i += 4) {
        const __m256i vs =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(s + i));
        const __m256i v1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vt + i));
        const __m256i v0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vf + i));
        // (f ^ ((f ^ t) & s)): one fewer logical op than the naive mux.
        const __m256i r = _mm256_xor_si256(
            v0, _mm256_and_si256(_mm256_xor_si256(v0, v1), vs));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o + i), r);
    }
#endif
    for (; i < n; ++i)
        o[i] = vf[i] ^ ((vf[i] ^ vt[i]) & s[i]);
}

BitRow
BitRow::majority3(const BitRow &a, const BitRow &b, const BitRow &c)
{
    BitRow r(a.width());
    majority3Into(r, a, b, c);
    return r;
}

BitRow
BitRow::select(const BitRow &sel, const BitRow &t, const BitRow &f)
{
    BitRow r(sel.width());
    selectInto(r, sel, t, f);
    return r;
}

std::string
BitRow::toString(size_t max_bits) const
{
    const size_t n = std::min(max_bits, width_);
    std::string s;
    s.reserve(n + 3);
    for (size_t i = 0; i < n; ++i)
        s.push_back(get(i) ? '1' : '0');
    if (n < width_)
        s += "...";
    return s;
}

} // namespace simdram
