#include "common/bitrow.h"

#include <algorithm>
#include <bit>
#include <cassert>

#if defined(SIMDRAM_USE_AVX2) && defined(__AVX2__)
#define SIMDRAM_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace simdram
{

std::shared_ptr<uint64_t[]>
BitRow::allocWords(size_t n)
{
    // Single allocation (control block + array), uninitialized:
    // every caller either fills the words or copies over them.
#if defined(__cpp_lib_smart_ptr_for_overwrite)
    return std::make_shared_for_overwrite<uint64_t[]>(n);
#else
    return std::shared_ptr<uint64_t[]>(new uint64_t[n]);
#endif
}

void
BitRow::detachCopy()
{
    const size_t n = wordCount();
    auto fresh = allocWords(n);
    std::copy_n(words_.get(), n, fresh.get());
    words_ = std::move(fresh);
}

void
BitRow::prepareOverwrite(size_t new_width)
{
    const size_t old_n = wordCount();
    width_ = new_width;
    const size_t new_n = wordCount();
    if (new_n == 0) {
        words_.reset();
        return;
    }
    if (words_ == nullptr || old_n != new_n ||
        words_.use_count() > 1)
        words_ = allocWords(new_n);
}

BitRow::BitRow(size_t width, bool value) : width_(width)
{
    const size_t n = wordCount();
    if (n == 0)
        return;
    words_ = allocWords(n);
    std::fill_n(words_.get(), n, value ? ~0ULL : 0ULL);
    words_[n - 1] &= lastWordMask();
}

bool
BitRow::get(size_t i) const
{
    assert(i < width_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void
BitRow::set(size_t i, bool value)
{
    assert(i < width_);
    detach();
    const uint64_t mask = 1ULL << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

void
BitRow::fill(bool value)
{
    prepareOverwrite(width_);
    const size_t n = wordCount();
    if (n == 0)
        return;
    std::fill_n(words_.get(), n, value ? ~0ULL : 0ULL);
    words_[n - 1] &= lastWordMask();
}

size_t
BitRow::popcount() const
{
    // Four independent accumulators break the loop-carried dependency
    // so the popcounts pipeline (and vectorize with AVX-512 VPOPCNTQ
    // where available).
    const uint64_t *w = words_.get();
    const size_t n = wordCount();
    size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        n0 += static_cast<size_t>(std::popcount(w[i]));
        n1 += static_cast<size_t>(std::popcount(w[i + 1]));
        n2 += static_cast<size_t>(std::popcount(w[i + 2]));
        n3 += static_cast<size_t>(std::popcount(w[i + 3]));
    }
    for (; i < n; ++i)
        n0 += static_cast<size_t>(std::popcount(w[i]));
    return n0 + n1 + n2 + n3;
}

bool
BitRow::allZero() const
{
    const uint64_t *w = words_.get();
    const size_t n = wordCount();
    for (size_t i = 0; i < n; ++i)
        if (w[i] != 0)
            return false;
    return true;
}

bool
BitRow::allOne() const
{
    return popcount() == width_;
}

void
BitRow::invert()
{
    const size_t n = wordCount();
    if (n == 0)
        return;
    // Read-modify-write through the (possibly fresh) unique payload.
    const uint64_t *s = words_.get();
    prepareOverwrite(width_);
    uint64_t *d = words_.get();
    for (size_t i = 0; i < n; ++i)
        d[i] = ~s[i];
    d[n - 1] &= lastWordMask();
}

BitRow
BitRow::operator~() const
{
    BitRow r;
    r.assignNot(*this);
    return r;
}

BitRow &
BitRow::operator&=(const BitRow &other)
{
    assert(width_ == other.width_);
    const size_t n = wordCount();
    if (n == 0)
        return *this;
    const uint64_t *s = words_.get();
    const uint64_t *b = other.words_.get();
    prepareOverwrite(width_);
    uint64_t *a = words_.get();
    for (size_t i = 0; i < n; ++i)
        a[i] = s[i] & b[i];
    return *this;
}

BitRow &
BitRow::operator|=(const BitRow &other)
{
    assert(width_ == other.width_);
    const size_t n = wordCount();
    if (n == 0)
        return *this;
    const uint64_t *s = words_.get();
    const uint64_t *b = other.words_.get();
    prepareOverwrite(width_);
    uint64_t *a = words_.get();
    for (size_t i = 0; i < n; ++i)
        a[i] = s[i] | b[i];
    return *this;
}

BitRow &
BitRow::operator^=(const BitRow &other)
{
    assert(width_ == other.width_);
    const size_t n = wordCount();
    if (n == 0)
        return *this;
    const uint64_t *s = words_.get();
    const uint64_t *b = other.words_.get();
    prepareOverwrite(width_);
    uint64_t *a = words_.get();
    for (size_t i = 0; i < n; ++i)
        a[i] = s[i] ^ b[i];
    return *this;
}

bool
BitRow::operator==(const BitRow &other) const
{
    if (width_ != other.width_)
        return false;
    if (words_ == other.words_)
        return true; // shared payload (or both width 0)
    const uint64_t *a = words_.get();
    const uint64_t *b = other.words_.get();
    const size_t n = wordCount();
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

BitRow
BitRow::clone() const
{
    BitRow r;
    r.copyFrom(*this);
    return r;
}

void
BitRow::copyFrom(const BitRow &src)
{
    if (&src == this) {
        detach();
        return;
    }
    const uint64_t *s = src.words_.get();
    prepareOverwrite(src.width_);
    std::copy_n(s, wordCount(), words_.get());
}

void
BitRow::assignNot(const BitRow &src)
{
    const uint64_t *s = src.words_.get();
    prepareOverwrite(src.width_);
    const size_t n = wordCount();
    if (n == 0)
        return;
    uint64_t *d = words_.get();
    for (size_t i = 0; i < n; ++i)
        d[i] = ~s[i];
    d[n - 1] &= lastWordMask();
}

void
BitRow::andNotInto(BitRow &out, const BitRow &a, const BitRow &b)
{
    assert(a.width_ == b.width_);
    const uint64_t *x = a.words_.get();
    const uint64_t *y = b.words_.get();
    out.prepareOverwrite(a.width_);
    uint64_t *o = out.words_.get();
    const size_t n = out.wordCount();
    for (size_t i = 0; i < n; ++i)
        o[i] = x[i] & ~y[i];
}

void
BitRow::majority3Into(BitRow &out, const BitRow &a, const BitRow &b,
                      const BitRow &c)
{
    assert(a.width_ == b.width_ && b.width_ == c.width_);
    // Capture input pointers before preparing the destination: if a
    // shared payload is dropped by `out`, its co-owners (the operand
    // rows) keep it alive.
    const uint64_t *x = a.words_.get();
    const uint64_t *y = b.words_.get();
    const uint64_t *z = c.words_.get();
    out.prepareOverwrite(a.width_);
    uint64_t *o = out.words_.get();
    const size_t n = out.wordCount();
    size_t i = 0;
#ifdef SIMDRAM_HAVE_AVX2_KERNELS
    for (; i + 4 <= n; i += 4) {
        const __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + i));
        const __m256i vy =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + i));
        const __m256i vz =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(z + i));
        const __m256i r = _mm256_or_si256(
            _mm256_or_si256(_mm256_and_si256(vx, vy),
                            _mm256_and_si256(vy, vz)),
            _mm256_and_si256(vx, vz));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o + i), r);
    }
#endif
    for (; i < n; ++i)
        o[i] = (x[i] & y[i]) | (y[i] & z[i]) | (x[i] & z[i]);
}

void
BitRow::selectInto(BitRow &out, const BitRow &sel, const BitRow &t,
                   const BitRow &f)
{
    assert(sel.width_ == t.width_ && t.width_ == f.width_);
    const uint64_t *s = sel.words_.get();
    const uint64_t *vt = t.words_.get();
    const uint64_t *vf = f.words_.get();
    out.prepareOverwrite(sel.width_);
    uint64_t *o = out.words_.get();
    const size_t n = out.wordCount();
    size_t i = 0;
#ifdef SIMDRAM_HAVE_AVX2_KERNELS
    for (; i + 4 <= n; i += 4) {
        const __m256i vs =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(s + i));
        const __m256i v1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vt + i));
        const __m256i v0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(vf + i));
        // (f ^ ((f ^ t) & s)): one fewer logical op than the naive mux.
        const __m256i r = _mm256_xor_si256(
            v0, _mm256_and_si256(_mm256_xor_si256(v0, v1), vs));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o + i), r);
    }
#endif
    for (; i < n; ++i)
        o[i] = vf[i] ^ ((vf[i] ^ vt[i]) & s[i]);
}

BitRow
BitRow::majority3(const BitRow &a, const BitRow &b, const BitRow &c)
{
    BitRow r;
    majority3Into(r, a, b, c);
    return r;
}

BitRow
BitRow::select(const BitRow &sel, const BitRow &t, const BitRow &f)
{
    BitRow r;
    selectInto(r, sel, t, f);
    return r;
}

std::string
BitRow::toString(size_t max_bits) const
{
    const size_t n = std::min(max_bits, width_);
    std::string s;
    s.reserve(n + 3);
    for (size_t i = 0; i < n; ++i)
        s.push_back(get(i) ? '1' : '0');
    if (n < width_)
        s += "...";
    return s;
}

} // namespace simdram
