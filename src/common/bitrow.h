/**
 * @file
 * Packed bit-vector used to model one DRAM row (one bit per bitline).
 *
 * A BitRow is the functional unit of the whole simulator: DRAM rows,
 * sense-amplifier row buffers, and logic-simulation signal values are
 * all BitRows. Bit i of the row corresponds to DRAM column i, i.e.
 * SIMD lane i. All bulk operations are word-parallel over 64-bit
 * words.
 *
 * Storage is copy-on-write: the backing words live in a refcounted
 * payload that copies and copy-assignment *share* in O(1), and every
 * mutating entry point detaches (uniquifies) the payload first. Value
 * semantics are fully preserved — mutating one row never changes
 * another — but the row copies that dominate μProgram replay
 * (RowClone AAPs, C0/C1 constant clones) collapse to a refcount
 * bump: repeated clones of one row intern a single payload until
 * somebody writes. Eager copies remain available through clone() /
 * copyFrom() for the retained seed ("reference") paths whose cost
 * model must not silently improve.
 *
 * The bulk kernels come in two flavours:
 *
 *  - value-returning operations (majority3, select, operator~, ...):
 *    convenient, but each call allocates a fresh result row;
 *  - fused "Into" operations (majority3Into, selectInto, aapInto,
 *    andNotInto, assignNot): write into an existing destination row
 *    with a single pass over the backing words and no allocation
 *    while the destination's payload is unshared (a shared
 *    destination detaches to a fresh payload first, leaving the
 *    co-owners untouched). aapInto is the exception: under CoW a
 *    row-clone copy IS payload sharing, so it is O(1).
 *    These are the hot path of μProgram replay; the word loops are
 *    written over raw pointers so compilers auto-vectorize them, and
 *    an AVX2 intrinsic path is available behind SIMDRAM_USE_AVX2.
 *
 * Thread-safety of the sharing: payload refcounts are atomic
 * (std::shared_ptr), readers never write, and writers always detach,
 * so rows whose payloads happen to be shared may be read and mutated
 * from different threads as long as each *row object* has one owner
 * (the DeviceGroup per-device locking discipline).
 *
 * Semantics of every kernel are defined by the bit-at-a-time
 * reference implementations in common/kernels_ref.h;
 * tests/kernel_diff_test.cc checks the word-parallel paths bit-exact
 * against them, and tests/property_test.cc checks the CoW aliasing
 * invariants (detach-on-write never leaks shared state).
 */

#ifndef SIMDRAM_COMMON_BITROW_H
#define SIMDRAM_COMMON_BITROW_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace simdram
{

/**
 * A fixed-width packed vector of bits with word-parallel bulk logic
 * over copy-on-write storage.
 *
 * Width is set at construction and never changes. Unused bits in the
 * final word are kept at zero as a class invariant so that whole-word
 * comparisons and population counts are exact.
 */
class BitRow
{
  public:
    /** Creates an empty (zero-width) row. */
    BitRow() = default;

    /**
     * Creates a row of @p width bits, all initialized to @p value.
     *
     * @param width Number of bits (DRAM columns).
     * @param value Initial value replicated into every bit.
     */
    explicit BitRow(size_t width, bool value = false);

    // Copies share the payload in O(1) (copy-on-write); moves steal
    // it and leave the source empty (zero-width).
    BitRow(const BitRow &) = default;
    BitRow &operator=(const BitRow &) = default;

    BitRow(BitRow &&other) noexcept
        : width_(other.width_), words_(std::move(other.words_))
    {
        other.width_ = 0;
    }

    BitRow &
    operator=(BitRow &&other) noexcept
    {
        width_ = other.width_;
        words_ = std::move(other.words_);
        other.width_ = 0;
        return *this;
    }

    /** @return The number of bits in the row. */
    size_t width() const { return width_; }

    /** @return The number of 64-bit backing words. */
    size_t wordCount() const { return (width_ + 63) / 64; }

    /** Direct word access (for high-throughput kernels). */
    uint64_t word(size_t i) const
    {
        assert(i < wordCount());
        return words_[i];
    }

    /**
     * Sets backing word @p i to @p w (detaching a shared payload).
     *
     * Writing the last word must not set padding bits above width();
     * that would silently break the invariant operator== and
     * popcount() depend on. Debug builds assert it; callers that
     * batch-write raw words can mask with lastWordMask() or call
     * trimLast() afterwards.
     */
    void
    setWord(size_t i, uint64_t w)
    {
        assert(i < wordCount());
        assert(i + 1 < wordCount() || (w & ~lastWordMask()) == 0);
        detach();
        words_[i] = w;
    }

    /**
     * @return Mask of the valid bits in the last backing word
     *         (all-ones when width() is a multiple of 64 or zero).
     */
    uint64_t
    lastWordMask() const
    {
        const size_t rem = width_ % 64;
        return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
    }

    /**
     * Clears the padding bits above width() in the last word,
     * restoring the class invariant after raw word writes.
     */
    void
    trimLast()
    {
        const size_t n = wordCount();
        if (n == 0)
            return;
        const uint64_t mask = lastWordMask();
        if ((words_[n - 1] & ~mask) == 0)
            return; // invariant already holds; don't detach
        detach();
        words_[n - 1] &= mask;
    }

    /** @return Bit @p i (lane i). */
    bool get(size_t i) const;

    /** Sets bit @p i (lane i) to @p value. */
    void set(size_t i, bool value);

    /** Sets every bit to @p value. */
    void fill(bool value);

    /** @return The number of set bits. */
    size_t popcount() const;

    /** @return True if all bits are zero. */
    bool allZero() const;

    /** @return True if all bits are one. */
    bool allOne() const;

    /** In-place bitwise NOT (respects padding invariant). */
    void invert();

    /** @return Bitwise NOT of this row. */
    BitRow operator~() const;

    BitRow &operator&=(const BitRow &other);
    BitRow &operator|=(const BitRow &other);
    BitRow &operator^=(const BitRow &other);

    friend BitRow operator&(BitRow a, const BitRow &b) { return a &= b; }
    friend BitRow operator|(BitRow a, const BitRow &b) { return a |= b; }
    friend BitRow operator^(BitRow a, const BitRow &b) { return a ^= b; }

    bool operator==(const BitRow &other) const;

    // ---- Copy-on-write introspection and eager copies ---------------

    /**
     * @return True if this row and @p other share one payload (a
     *         write to either would detach it). Width-0 rows never
     *         share. Test/diagnostic hook for the CoW invariants.
     */
    bool
    sharesStorageWith(const BitRow &other) const
    {
        return words_ != nullptr && words_ == other.words_;
    }

    /**
     * Uniquifies the payload now (copying if shared), preserving
     * contents. The retained seed "reference" paths call this to keep
     * their cost model an honest eager-copy baseline; it is never
     * required for correctness.
     */
    void
    detach()
    {
        if (words_ != nullptr && words_.use_count() > 1)
            detachCopy();
    }

    /** @return A deep copy with its own unshared payload. */
    BitRow clone() const;

    /**
     * Eagerly copies @p src into this row (shape and contents),
     * always performing a word-for-word copy into unshared storage —
     * the explicit non-CoW assignment for seed-cost paths.
     */
    void copyFrom(const BitRow &src);

    // ---- Fused in-place kernels (the μProgram replay hot path) ------

    /**
     * Row-clone copy: @p dst takes this row's width and contents.
     *
     * Named after the AAP command it models. Under CoW this is O(1):
     * @p dst drops its payload and shares this row's; the actual word
     * copy happens only if one of the aliases is later written.
     */
    void
    aapInto(BitRow &dst) const
    {
        if (&dst == this)
            return;
        dst.width_ = width_;
        dst.words_ = words_;
    }

    /** *this = ~src, fused (no temporary). */
    void assignNot(const BitRow &src);

    /** out = a & ~b, fused (no temporary). */
    static void andNotInto(BitRow &out, const BitRow &a,
                           const BitRow &b);

    /**
     * out[i] = MAJ(a[i], b[i], c[i]), fused into @p out.
     *
     * @p out may alias any operand (pure element-wise), whether as
     * the same object or through a shared payload.
     */
    static void majority3Into(BitRow &out, const BitRow &a,
                              const BitRow &b, const BitRow &c);

    /** out[i] = sel[i] ? t[i] : f[i], fused into @p out. */
    static void selectInto(BitRow &out, const BitRow &sel,
                           const BitRow &t, const BitRow &f);

    /**
     * Bitwise 3-input majority: out[i] = MAJ(a[i], b[i], c[i]).
     *
     * This is exactly what a DRAM triple-row activation computes via
     * charge sharing on each bitline.
     */
    static BitRow majority3(const BitRow &a, const BitRow &b,
                            const BitRow &c);

    /**
     * Bitwise multiplexer: out[i] = sel[i] ? t[i] : f[i].
     */
    static BitRow select(const BitRow &sel, const BitRow &t,
                         const BitRow &f);

    /**
     * @return A human-readable string of the first @p max_bits bits
     *         (LSB / lane 0 first), e.g. "0110...".
     */
    std::string toString(size_t max_bits = 64) const;

  private:
    /** Allocates an uninitialized payload of @p n words. */
    static std::shared_ptr<uint64_t[]> allocWords(size_t n);

    /** Out-of-line copy half of detach() (payload known shared). */
    void detachCopy();

    /**
     * Prepares this row to be fully overwritten with @p new_width
     * bits: adopts the width and ensures an unshared payload of the
     * right size WITHOUT preserving contents. Callers must capture
     * their input word pointers *before* calling this; co-owners of a
     * previously shared payload keep it alive, so those pointers stay
     * valid even when this row reallocates.
     */
    void prepareOverwrite(size_t new_width);

    size_t width_ = 0;
    /** Refcounted CoW payload; null iff wordCount() == 0. */
    std::shared_ptr<uint64_t[]> words_;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_BITROW_H
