/**
 * @file
 * Packed bit-vector used to model one DRAM row (one bit per bitline).
 *
 * A BitRow is the functional unit of the whole simulator: DRAM rows,
 * sense-amplifier row buffers, and logic-simulation signal values are all
 * BitRows. Bit i of the row corresponds to DRAM column i, i.e. SIMD
 * lane i. All bulk operations are word-parallel over 64-bit words.
 */

#ifndef SIMDRAM_COMMON_BITROW_H
#define SIMDRAM_COMMON_BITROW_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simdram
{

/**
 * A fixed-width packed vector of bits with word-parallel bulk logic.
 *
 * Width is set at construction and never changes. Unused bits in the
 * final word are kept at zero as a class invariant so that whole-word
 * comparisons and population counts are exact.
 */
class BitRow
{
  public:
    /** Creates an empty (zero-width) row. */
    BitRow() = default;

    /**
     * Creates a row of @p width bits, all initialized to @p value.
     *
     * @param width Number of bits (DRAM columns).
     * @param value Initial value replicated into every bit.
     */
    explicit BitRow(size_t width, bool value = false);

    /** @return The number of bits in the row. */
    size_t width() const { return width_; }

    /** @return The number of 64-bit backing words. */
    size_t wordCount() const { return words_.size(); }

    /** Direct word access (for high-throughput kernels). */
    uint64_t word(size_t i) const { return words_[i]; }
    /** Mutable word access; caller must not set padding bits. */
    uint64_t &word(size_t i) { return words_[i]; }

    /** @return Bit @p i (lane i). */
    bool get(size_t i) const;

    /** Sets bit @p i (lane i) to @p value. */
    void set(size_t i, bool value);

    /** Sets every bit to @p value. */
    void fill(bool value);

    /** @return The number of set bits. */
    size_t popcount() const;

    /** @return True if all bits are zero. */
    bool allZero() const;

    /** @return True if all bits are one. */
    bool allOne() const;

    /** In-place bitwise NOT (respects padding invariant). */
    void invert();

    /** @return Bitwise NOT of this row. */
    BitRow operator~() const;

    BitRow &operator&=(const BitRow &other);
    BitRow &operator|=(const BitRow &other);
    BitRow &operator^=(const BitRow &other);

    friend BitRow operator&(BitRow a, const BitRow &b) { return a &= b; }
    friend BitRow operator|(BitRow a, const BitRow &b) { return a |= b; }
    friend BitRow operator^(BitRow a, const BitRow &b) { return a ^= b; }

    bool operator==(const BitRow &other) const = default;

    /**
     * Bitwise 3-input majority: out[i] = MAJ(a[i], b[i], c[i]).
     *
     * This is exactly what a DRAM triple-row activation computes via
     * charge sharing on each bitline.
     */
    static BitRow majority3(const BitRow &a, const BitRow &b,
                            const BitRow &c);

    /**
     * Bitwise multiplexer: out[i] = sel[i] ? t[i] : f[i].
     */
    static BitRow select(const BitRow &sel, const BitRow &t,
                         const BitRow &f);

    /**
     * @return A human-readable string of the first @p max_bits bits
     *         (LSB / lane 0 first), e.g. "0110...".
     */
    std::string toString(size_t max_bits = 64) const;

  private:
    /** Clears the padding bits above width_ in the last word. */
    void trim();

    size_t width_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_BITROW_H
