/**
 * @file
 * Packed bit-vector used to model one DRAM row (one bit per bitline).
 *
 * A BitRow is the functional unit of the whole simulator: DRAM rows,
 * sense-amplifier row buffers, and logic-simulation signal values are all
 * BitRows. Bit i of the row corresponds to DRAM column i, i.e. SIMD
 * lane i. All bulk operations are word-parallel over 64-bit words.
 *
 * The bulk kernels come in two flavours:
 *
 *  - value-returning operations (majority3, select, operator~, ...):
 *    convenient, but each call allocates a fresh result row;
 *  - fused "Into" operations (majority3Into, selectInto, aapInto,
 *    andNotInto, assignNot): write into an existing destination row
 *    with a single pass over the backing words and no allocation.
 *    These are the hot path of μProgram replay; the word loops are
 *    written over raw pointers so compilers auto-vectorize them, and
 *    an AVX2 intrinsic path is available behind SIMDRAM_USE_AVX2.
 *
 * Semantics of every kernel are defined by the bit-at-a-time reference
 * implementations in common/kernels_ref.h; tests/kernel_diff_test.cc
 * checks the word-parallel paths bit-exact against them.
 */

#ifndef SIMDRAM_COMMON_BITROW_H
#define SIMDRAM_COMMON_BITROW_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simdram
{

/**
 * A fixed-width packed vector of bits with word-parallel bulk logic.
 *
 * Width is set at construction and never changes. Unused bits in the
 * final word are kept at zero as a class invariant so that whole-word
 * comparisons and population counts are exact.
 */
class BitRow
{
  public:
    /** Creates an empty (zero-width) row. */
    BitRow() = default;

    /**
     * Creates a row of @p width bits, all initialized to @p value.
     *
     * @param width Number of bits (DRAM columns).
     * @param value Initial value replicated into every bit.
     */
    explicit BitRow(size_t width, bool value = false);

    /** @return The number of bits in the row. */
    size_t width() const { return width_; }

    /** @return The number of 64-bit backing words. */
    size_t wordCount() const { return words_.size(); }

    /** Direct word access (for high-throughput kernels). */
    uint64_t word(size_t i) const { return words_[i]; }

    /**
     * Sets backing word @p i to @p w.
     *
     * Writing the last word must not set padding bits above width();
     * that would silently break the invariant operator== and
     * popcount() depend on. Debug builds assert it; callers that
     * batch-write raw words can mask with lastWordMask() or call
     * trimLast() afterwards.
     */
    void
    setWord(size_t i, uint64_t w)
    {
        assert(i < words_.size());
        assert(i + 1 < words_.size() || (w & ~lastWordMask()) == 0);
        words_[i] = w;
    }

    /**
     * @return Mask of the valid bits in the last backing word
     *         (all-ones when width() is a multiple of 64 or zero).
     */
    uint64_t
    lastWordMask() const
    {
        const size_t rem = width_ % 64;
        return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
    }

    /**
     * Clears the padding bits above width() in the last word,
     * restoring the class invariant after raw word writes.
     */
    void
    trimLast()
    {
        if (!words_.empty())
            words_.back() &= lastWordMask();
    }

    /** @return Bit @p i (lane i). */
    bool get(size_t i) const;

    /** Sets bit @p i (lane i) to @p value. */
    void set(size_t i, bool value);

    /** Sets every bit to @p value. */
    void fill(bool value);

    /** @return The number of set bits. */
    size_t popcount() const;

    /** @return True if all bits are zero. */
    bool allZero() const;

    /** @return True if all bits are one. */
    bool allOne() const;

    /** In-place bitwise NOT (respects padding invariant). */
    void invert();

    /** @return Bitwise NOT of this row. */
    BitRow operator~() const;

    BitRow &operator&=(const BitRow &other);
    BitRow &operator|=(const BitRow &other);
    BitRow &operator^=(const BitRow &other);

    friend BitRow operator&(BitRow a, const BitRow &b) { return a &= b; }
    friend BitRow operator|(BitRow a, const BitRow &b) { return a |= b; }
    friend BitRow operator^(BitRow a, const BitRow &b) { return a ^= b; }

    bool operator==(const BitRow &other) const = default;

    // ---- Fused in-place kernels (the μProgram replay hot path) ------

    /**
     * Row-clone copy: @p dst takes this row's width and contents.
     *
     * Named after the AAP command it models; unlike plain assignment
     * it is guaranteed allocation-free once @p dst has matching
     * capacity, which makes it safe inside replay inner loops.
     */
    void aapInto(BitRow &dst) const;

    /** *this = ~src, fused (no temporary). */
    void assignNot(const BitRow &src);

    /** out = a & ~b, fused (no temporary). */
    static void andNotInto(BitRow &out, const BitRow &a,
                           const BitRow &b);

    /**
     * out[i] = MAJ(a[i], b[i], c[i]), fused into @p out.
     *
     * @p out may alias any operand (pure element-wise).
     */
    static void majority3Into(BitRow &out, const BitRow &a,
                              const BitRow &b, const BitRow &c);

    /** out[i] = sel[i] ? t[i] : f[i], fused into @p out. */
    static void selectInto(BitRow &out, const BitRow &sel,
                           const BitRow &t, const BitRow &f);

    /**
     * Bitwise 3-input majority: out[i] = MAJ(a[i], b[i], c[i]).
     *
     * This is exactly what a DRAM triple-row activation computes via
     * charge sharing on each bitline.
     */
    static BitRow majority3(const BitRow &a, const BitRow &b,
                            const BitRow &c);

    /**
     * Bitwise multiplexer: out[i] = sel[i] ? t[i] : f[i].
     */
    static BitRow select(const BitRow &sel, const BitRow &t,
                         const BitRow &f);

    /**
     * @return A human-readable string of the first @p max_bits bits
     *         (LSB / lane 0 first), e.g. "0110...".
     */
    std::string toString(size_t max_bits = 64) const;

  private:
    /** Resizes to @p other's shape without initializing contents. */
    void adoptShape(const BitRow &other);

    size_t width_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_BITROW_H
