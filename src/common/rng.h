/**
 * @file
 * Deterministic pseudo-random number generation for the whole project.
 *
 * Everything in SIMDRAM that needs randomness (test vectors, synthetic
 * workloads, Monte-Carlo sampling) goes through Rng so that every run of
 * every binary is reproducible from a seed.
 */

#ifndef SIMDRAM_COMMON_RNG_H
#define SIMDRAM_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace simdram
{

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Small, fast, and good enough statistically for workload generation and
 * Monte-Carlo experiments; not for cryptography.
 */
class Rng
{
  public:
    /** Creates a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        uint64_t x = seed;
        for (auto &si : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            si = z ^ (z >> 31);
        }
    }

    /** @return The next 64 uniformly random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return A uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; a simple
        // 128-bit multiply keeps bias negligible for simulation use.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** @return A uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return A sample from N(mean, sigma^2) via Box-Muller. */
    double
    gaussian(double mean, double sigma)
    {
        if (have_cached_) {
            have_cached_ = false;
            return mean + sigma * cached_;
        }
        double u1 = uniform();
        double u2 = uniform();
        while (u1 <= 1e-300) // avoid log(0)
            u1 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return mean + sigma * r * std::cos(theta);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
    double cached_ = 0.0;
    bool have_cached_ = false;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_RNG_H
