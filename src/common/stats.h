/**
 * @file
 * Execution statistics shared by every engine in the project.
 *
 * All performance and energy results in the benches are derived from the
 * counters defined here, accumulated during (functional) execution.
 */

#ifndef SIMDRAM_COMMON_STATS_H
#define SIMDRAM_COMMON_STATS_H

#include <cstdint>
#include <string>

namespace simdram
{

/**
 * Command-level DRAM statistics for one execution.
 *
 * Latency is tracked in nanoseconds and energy in picojoules; both are
 * doubles because DDR timing parameters are sub-nanosecond multiples of
 * the clock.
 */
struct DramStats
{
    uint64_t activates = 0;   ///< Single-row ACTIVATEs issued.
    uint64_t multiActivates = 0; ///< Dual/triple-row (TRA) ACTIVATEs.
    uint64_t precharges = 0;  ///< PRECHARGE commands issued.
    uint64_t aaps = 0;        ///< ACTIVATE-ACTIVATE-PRECHARGE macro-ops.
    uint64_t aps = 0;         ///< ACTIVATE-PRECHARGE macro-ops.
    uint64_t reads = 0;       ///< Column READ bursts (64B).
    uint64_t writes = 0;      ///< Column WRITE bursts (64B).
    uint64_t traFaults = 0;   ///< TRAs whose charge-sharing result was
                              ///< corrupted (injected or statistical).

    double latencyNs = 0.0;   ///< Serialized latency contribution.
    double energyPj = 0.0;    ///< Total energy.

    /** Accumulates @p other into this object (energy adds; see below). */
    DramStats &operator+=(const DramStats &other);

    /**
     * Merges stats from a parallel execution: counters and energy add,
     * latency takes the maximum (banks operate concurrently).
     */
    void mergeParallel(const DramStats &other);

    /** Resets every counter to zero. */
    void reset();

    /** @return A compact single-line summary for logs. */
    std::string summary() const;
};

/** @return @p a + @p b with serial semantics (latency adds). */
DramStats operator+(DramStats a, const DramStats &b);

/**
 * Merges statistics from substrates that execute concurrently
 * (devices of a DeviceGroup, banks of a device): counters and energy
 * add, latency takes the maximum. The aggregation used by the runtime
 * layer when combining per-device accounting.
 */
DramStats merge(const DramStats &a, const DramStats &b);

/**
 * @return The delta between two cumulative snapshots of the same
 *         monotonic counters: @p after - @p before, field by field.
 *         Used to attribute stats to one execution window (e.g. one
 *         stream's share of a device's counters).
 */
DramStats diff(const DramStats &after, const DramStats &before);

/**
 * Result of running a workload on any engine (SIMDRAM, Ambit, CPU
 * model, GPU model): enough to compute throughput and efficiency.
 */
struct RunResult
{
    std::string engine;      ///< Engine name (e.g. "SIMDRAM:16").
    double latencyNs = 0.0;  ///< End-to-end latency.
    double energyPj = 0.0;   ///< End-to-end energy.
    uint64_t elements = 0;   ///< Number of SIMD elements processed.

    /** @return Throughput in giga-operations per second. */
    double throughputGops() const;

    /** @return Energy efficiency in giga-operations per joule. */
    double efficiencyGopsPerJoule() const;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_STATS_H
