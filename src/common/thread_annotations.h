/**
 * @file
 * Clang thread-safety analysis annotations and an annotated mutex.
 *
 * Clang's -Wthread-safety statically checks that every access to a
 * GUARDED_BY member happens with the named mutex held and that
 * REQUIRES contracts hold at every call site. The macros below expand
 * to the corresponding attributes under clang and to nothing under
 * other compilers, so annotating costs nothing on gcc/MSVC while the
 * clang CI jobs (which build with -Werror) enforce the locking
 * discipline at compile time.
 *
 * std::mutex is not an annotated capability type (attaching
 * GUARDED_BY to one trips -Wthread-safety-attributes), so this header
 * also provides the thin annotated wrappers the concurrency-heavy
 * subsystems (StreamExecutor, RequestCoalescer, TenantExecutor) lock
 * through:
 *
 *  - Mutex      — std::mutex with acquire/release annotations;
 *  - MutexLock  — scoped lock_guard equivalent;
 *  - UniqueLock — scoped lock that supports the condition-variable
 *    and unlock-around-work patterns (relockable; pairs with
 *    std::condition_variable_any, which accepts any BasicLockable).
 *
 * Condition variables waiting on a Mutex must be
 * std::condition_variable_any: the plain std::condition_variable
 * only accepts std::unique_lock<std::mutex>, which would bypass the
 * annotations.
 */

#ifndef SIMDRAM_COMMON_THREAD_ANNOTATIONS_H
#define SIMDRAM_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SIMDRAM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SIMDRAM_THREAD_ANNOTATION
#define SIMDRAM_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define SIMDRAM_CAPABILITY(x) SIMDRAM_THREAD_ANNOTATION(capability(x))
#define SIMDRAM_SCOPED_CAPABILITY \
    SIMDRAM_THREAD_ANNOTATION(scoped_lockable)
#define SIMDRAM_GUARDED_BY(x) SIMDRAM_THREAD_ANNOTATION(guarded_by(x))
#define SIMDRAM_PT_GUARDED_BY(x) \
    SIMDRAM_THREAD_ANNOTATION(pt_guarded_by(x))
#define SIMDRAM_REQUIRES(...) \
    SIMDRAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SIMDRAM_EXCLUDES(...) \
    SIMDRAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SIMDRAM_ACQUIRE(...) \
    SIMDRAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SIMDRAM_RELEASE(...) \
    SIMDRAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SIMDRAM_TRY_ACQUIRE(...) \
    SIMDRAM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SIMDRAM_RETURN_CAPABILITY(x) \
    SIMDRAM_THREAD_ANNOTATION(lock_returned(x))
#define SIMDRAM_NO_THREAD_SAFETY_ANALYSIS \
    SIMDRAM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace simdram
{

/** std::mutex annotated as a thread-safety capability. */
class SIMDRAM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SIMDRAM_ACQUIRE() { mu_.lock(); }
    void unlock() SIMDRAM_RELEASE() { mu_.unlock(); }
    bool try_lock() SIMDRAM_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    std::mutex mu_;
};

/** Scoped lock of a Mutex (std::lock_guard equivalent). */
class SIMDRAM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SIMDRAM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() SIMDRAM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Relockable scoped lock of a Mutex: BasicLockable (so it works with
 * std::condition_variable_any::wait) and usable for the
 * unlock-around-long-work pattern. Locked on construction.
 */
class SIMDRAM_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) SIMDRAM_ACQUIRE(mu)
        : mu_(mu), held_(true)
    {
        mu_.lock();
    }
    ~UniqueLock() SIMDRAM_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    void lock() SIMDRAM_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }
    void unlock() SIMDRAM_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    Mutex &mu_;
    bool held_;
};

} // namespace simdram

#endif // SIMDRAM_COMMON_THREAD_ANNOTATIONS_H
