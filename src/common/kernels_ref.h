/**
 * @file
 * Bit-at-a-time reference implementations of the simulator's hot
 * kernels.
 *
 * These are the *semantic definitions* the optimized word-parallel /
 * AVX2 paths in BitRow and layout/transpose are differentially tested
 * against (tests/kernel_diff_test.cc) and benchmarked against
 * (bench/bench_kernels.cc). They are deliberately written one bit at
 * a time with no word-level tricks: slow, obvious, and easy to audit.
 * Do not optimize this file — its only job is to be correct.
 */

#ifndef SIMDRAM_COMMON_KERNELS_REF_H
#define SIMDRAM_COMMON_KERNELS_REF_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitrow.h"

namespace simdram
{
namespace refkernel
{

/** out[i] = MAJ(a[i], b[i], c[i]), one bit at a time. */
inline BitRow
majority3(const BitRow &a, const BitRow &b, const BitRow &c)
{
    BitRow r(a.width());
    for (size_t i = 0; i < a.width(); ++i) {
        const int ones = int(a.get(i)) + int(b.get(i)) + int(c.get(i));
        r.set(i, ones >= 2);
    }
    return r;
}

/** out[i] = sel[i] ? t[i] : f[i], one bit at a time. */
inline BitRow
select(const BitRow &sel, const BitRow &t, const BitRow &f)
{
    BitRow r(sel.width());
    for (size_t i = 0; i < sel.width(); ++i)
        r.set(i, sel.get(i) ? t.get(i) : f.get(i));
    return r;
}

/** out[i] = !a[i], one bit at a time. */
inline BitRow
bitNot(const BitRow &a)
{
    BitRow r(a.width());
    for (size_t i = 0; i < a.width(); ++i)
        r.set(i, !a.get(i));
    return r;
}

/** out[i] = a[i] & !b[i], one bit at a time. */
inline BitRow
andNot(const BitRow &a, const BitRow &b)
{
    BitRow r(a.width());
    for (size_t i = 0; i < a.width(); ++i)
        r.set(i, a.get(i) && !b.get(i));
    return r;
}

/** @return The number of set bits, counted one bit at a time. */
inline size_t
popcount(const BitRow &a)
{
    size_t n = 0;
    for (size_t i = 0; i < a.width(); ++i)
        n += a.get(i) ? 1 : 0;
    return n;
}

/**
 * Horizontal-to-vertical conversion, one bit at a time: row j gets
 * bit j of every element (same contract as simdram::elementsToRows).
 */
inline std::vector<BitRow>
elementsToRows(const uint64_t *elems, size_t n, size_t bits,
               size_t lanes)
{
    std::vector<BitRow> rows(bits, BitRow(lanes));
    for (size_t j = 0; j < bits && j < 64; ++j)
        for (size_t e = 0; e < n; ++e)
            rows[j].set(e, (elems[e] >> j) & 1);
    return rows;
}

/**
 * Vertical-to-horizontal conversion, one bit at a time (same contract
 * as simdram::rowsToElements; bits above 64 rows read as zero).
 */
inline std::vector<uint64_t>
rowsToElements(const std::vector<BitRow> &rows, size_t n)
{
    std::vector<uint64_t> elems(n, 0);
    for (size_t j = 0; j < rows.size() && j < 64; ++j)
        for (size_t e = 0; e < n; ++e)
            if (rows[j].get(e))
                elems[e] |= 1ULL << j;
    return elems;
}

} // namespace refkernel
} // namespace simdram

#endif // SIMDRAM_COMMON_KERNELS_REF_H
