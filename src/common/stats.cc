#include "common/stats.h"

#include <algorithm>
#include <sstream>

namespace simdram
{

DramStats &
DramStats::operator+=(const DramStats &other)
{
    activates += other.activates;
    multiActivates += other.multiActivates;
    precharges += other.precharges;
    aaps += other.aaps;
    aps += other.aps;
    reads += other.reads;
    writes += other.writes;
    traFaults += other.traFaults;
    latencyNs += other.latencyNs;
    energyPj += other.energyPj;
    return *this;
}

void
DramStats::mergeParallel(const DramStats &other)
{
    activates += other.activates;
    multiActivates += other.multiActivates;
    precharges += other.precharges;
    aaps += other.aaps;
    aps += other.aps;
    reads += other.reads;
    writes += other.writes;
    traFaults += other.traFaults;
    latencyNs = std::max(latencyNs, other.latencyNs);
    energyPj += other.energyPj;
}

void
DramStats::reset()
{
    *this = DramStats{};
}

DramStats
operator+(DramStats a, const DramStats &b)
{
    a += b;
    return a;
}

DramStats
merge(const DramStats &a, const DramStats &b)
{
    DramStats m = a;
    m.mergeParallel(b);
    return m;
}

DramStats
diff(const DramStats &after, const DramStats &before)
{
    DramStats d;
    d.activates = after.activates - before.activates;
    d.multiActivates = after.multiActivates - before.multiActivates;
    d.precharges = after.precharges - before.precharges;
    d.aaps = after.aaps - before.aaps;
    d.aps = after.aps - before.aps;
    d.reads = after.reads - before.reads;
    d.writes = after.writes - before.writes;
    d.traFaults = after.traFaults - before.traFaults;
    d.latencyNs = after.latencyNs - before.latencyNs;
    d.energyPj = after.energyPj - before.energyPj;
    return d;
}

std::string
DramStats::summary() const
{
    std::ostringstream os;
    os << "AAP=" << aaps << " AP=" << aps << " ACT=" << activates
       << " TRA=" << multiActivates;
    if (traFaults != 0)
        os << " faults=" << traFaults;
    os << " lat=" << latencyNs << "ns energy=" << energyPj << "pJ";
    return os.str();
}

double
RunResult::throughputGops() const
{
    if (latencyNs <= 0.0)
        return 0.0;
    return static_cast<double>(elements) / latencyNs;
}

double
RunResult::efficiencyGopsPerJoule() const
{
    if (energyPj <= 0.0)
        return 0.0;
    return static_cast<double>(elements) / (energyPj * 1e-3);
}

} // namespace simdram
