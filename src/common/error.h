/**
 * @file
 * Error-reporting helpers.
 *
 * Following the gem5 convention: fatal() is for user/configuration
 * errors the simulation cannot recover from; panic() is for internal
 * invariant violations (simulator bugs). Both throw so that tests can
 * assert on misuse, rather than aborting the process.
 */

#ifndef SIMDRAM_COMMON_ERROR_H
#define SIMDRAM_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace simdram
{

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error("fatal: " + what)
    {}
};

/** Error caused by a violated internal invariant (a simulator bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error("panic: " + what)
    {}
};

/** Reports an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &what)
{
    throw FatalError(what);
}

/** Reports a violated internal invariant. */
[[noreturn]] inline void
panic(const std::string &what)
{
    throw PanicError(what);
}

} // namespace simdram

#endif // SIMDRAM_COMMON_ERROR_H
