/**
 * @file
 * Analytic area model for SIMDRAM's hardware additions (paper
 * section 5: "less than 1% DRAM area overhead").
 *
 * Three additions are accounted for:
 *  1. In-DRAM: the designated compute rows (T0..T3), the DCC pairs,
 *     the constant rows, and the widened row decoder supporting
 *     dual/triple addresses, per subarray.
 *  2. Memory controller: the SIMDRAM control unit (μProgram memory +
 *     sequencing FSM).
 *  3. Memory controller: the transposition unit (two 64x64 bit tile
 *     buffers + swap network + object CAM).
 *
 * Logic and SRAM densities use published 22nm-class figures; the
 * model reports both absolute mm^2 and percentages of a DRAM chip /
 * CPU die, which is what the paper's claim is about.
 */

#ifndef SIMDRAM_AREA_AREA_MODEL_H
#define SIMDRAM_AREA_AREA_MODEL_H

#include <cstddef>
#include <string>
#include <vector>

#include "dram/config.h"

namespace simdram
{

/** One line of the area report. */
struct AreaItem
{
    std::string component; ///< Component name.
    std::string where;     ///< "DRAM chip" or "Memory controller".
    double areaMm2 = 0;    ///< Absolute area.
    double percent = 0;    ///< Relative to its host die.
};

/** Area-model inputs with documented defaults. */
struct AreaParams
{
    double dramChipMm2 = 60.0;   ///< 8 Gb DDR4 die.
    double cpuDieMm2 = 180.0;    ///< Desktop-class CPU die.
    double sramMm2PerKb = 0.0008;///< 22nm SRAM macro density.
    double logicMm2PerKgate = 0.0004; ///< 22nm std-cell density.
    double cellArrayFraction = 0.55;  ///< DRAM die that is cells.
    size_t uprogMemoryKb = 32;   ///< μProgram memory capacity.
    size_t controlFsmKgates = 12;///< Sequencer + bank tracking.
    size_t trspBufferKb = 8;     ///< Two 64x64-bit tile buffers.
    size_t trspLogicKgates = 20; ///< Swap network + object CAM.
};

/**
 * @return The itemized area report for @p cfg under @p params,
 *         ending with DRAM-side and controller-side totals.
 */
std::vector<AreaItem> areaReport(const DramConfig &cfg,
                                 const AreaParams &params = {});

/** @return Total DRAM-chip overhead as a percentage of the die. */
double dramOverheadPercent(const DramConfig &cfg,
                           const AreaParams &params = {});

} // namespace simdram

#endif // SIMDRAM_AREA_AREA_MODEL_H
