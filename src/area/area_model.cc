#include "area/area_model.h"

namespace simdram
{

std::vector<AreaItem>
areaReport(const DramConfig &cfg, const AreaParams &p)
{
    std::vector<AreaItem> items;

    // --- In-DRAM overhead ------------------------------------------------
    // Special rows displace regular rows inside every subarray: 4 T
    // rows + 2 DCC pairs (2 physical rows with double contacts,
    // costed as 4) + 2 constant rows = 10 row-equivalents.
    const double special_rows = 10.0;
    const double row_fraction =
        special_rows / static_cast<double>(cfg.rowsPerSubarray);
    const double cell_overhead_mm2 =
        p.dramChipMm2 * p.cellArrayFraction * row_fraction;
    items.push_back({"compute/DCC/constant rows", "DRAM chip",
                     cell_overhead_mm2,
                     100.0 * cell_overhead_mm2 / p.dramChipMm2});

    // Widened row decoder: dual/triple address groups add ~5% to the
    // subarray row decoder, which is ~4% of the die.
    const double decoder_mm2 = p.dramChipMm2 * 0.04 * 0.05;
    items.push_back({"row decoder extensions", "DRAM chip",
                     decoder_mm2,
                     100.0 * decoder_mm2 / p.dramChipMm2});

    // --- Memory-controller overhead ---------------------------------------
    const double uprog_mm2 =
        static_cast<double>(p.uprogMemoryKb) * p.sramMm2PerKb;
    items.push_back({"control unit: μProgram memory",
                     "Memory controller", uprog_mm2,
                     100.0 * uprog_mm2 / p.cpuDieMm2});

    const double fsm_mm2 =
        static_cast<double>(p.controlFsmKgates) * p.logicMm2PerKgate;
    items.push_back({"control unit: sequencer FSM",
                     "Memory controller", fsm_mm2,
                     100.0 * fsm_mm2 / p.cpuDieMm2});

    const double trsp_mm2 =
        static_cast<double>(p.trspBufferKb) * p.sramMm2PerKb +
        static_cast<double>(p.trspLogicKgates) * p.logicMm2PerKgate;
    items.push_back({"transposition unit", "Memory controller",
                     trsp_mm2, 100.0 * trsp_mm2 / p.cpuDieMm2});

    // --- Totals ------------------------------------------------------------
    double dram_total = cell_overhead_mm2 + decoder_mm2;
    double mc_total = uprog_mm2 + fsm_mm2 + trsp_mm2;
    items.push_back({"TOTAL in-DRAM", "DRAM chip", dram_total,
                     100.0 * dram_total / p.dramChipMm2});
    items.push_back({"TOTAL controller-side", "Memory controller",
                     mc_total, 100.0 * mc_total / p.cpuDieMm2});
    return items;
}

double
dramOverheadPercent(const DramConfig &cfg, const AreaParams &params)
{
    const auto items = areaReport(cfg, params);
    for (const auto &it : items)
        if (it.component == "TOTAL in-DRAM")
            return it.percent;
    return 0.0;
}

} // namespace simdram
