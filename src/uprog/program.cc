#include "uprog/program.h"

#include <sstream>

namespace simdram
{

size_t
MicroProgram::inputRowCount() const
{
    size_t n = 0;
    for (const auto &r : inputRegions)
        n += r.rows;
    return n;
}

size_t
MicroProgram::outputRowCount() const
{
    size_t n = 0;
    for (const auto &r : outputRegions)
        n += r.rows;
    return n;
}

size_t
MicroProgram::virtualRowCount() const
{
    return inputRowCount() + outputRowCount() + scratchRows;
}

size_t
MicroProgram::aapCount() const
{
    size_t n = 0;
    for (const auto &op : ops)
        if (op.kind == MicroOp::Kind::Aap)
            ++n;
    return n;
}

size_t
MicroProgram::apCount() const
{
    return ops.size() - aapCount();
}

double
MicroProgram::latencyNs(const DramTiming &t) const
{
    return static_cast<double>(aapCount()) * t.aapNs() +
           static_cast<double>(apCount()) * t.apNs();
}

double
MicroProgram::energyPj(const DramConfig &cfg) const
{
    double pj = 0.0;
    for (const auto &op : ops) {
        pj += cfg.actEnergyPj(op.src.rowsRaised());
        if (op.kind == MicroOp::Kind::Aap)
            pj += cfg.actEnergyPj(op.dst.rowsRaised());
        pj += cfg.preEnergyPj();
    }
    return pj;
}

std::string
MicroProgram::toString() const
{
    std::ostringstream os;
    os << "; inputs:";
    for (const auto &r : inputRegions)
        os << " " << r.name << "[" << r.rows << "]";
    os << " outputs:";
    for (const auto &r : outputRegions)
        os << " " << r.name << "[" << r.rows << "]";
    os << " scratch: " << scratchRows << "\n";
    for (const auto &op : ops) {
        if (op.kind == MicroOp::Kind::Aap)
            os << "AAP " << simdram::toString(op.src) << " -> "
               << simdram::toString(op.dst) << "\n";
        else
            os << "AP  " << simdram::toString(op.src) << "\n";
    }
    return os.str();
}

DramStats
estimateCompute(const MicroProgram &prog, size_t elements,
                const DramConfig &cfg)
{
    DramStats s;
    const size_t segments = (elements + cfg.rowBits - 1) / cfg.rowBits;
    const size_t per_bank =
        (segments + cfg.computeBanks - 1) / cfg.computeBanks;

    const uint64_t aaps = prog.aapCount();
    const uint64_t aps = prog.apCount();
    s.aaps = aaps * segments;
    s.aps = aps * segments;
    s.latencyNs =
        static_cast<double>(per_bank) * prog.latencyNs(cfg.timing);
    s.energyPj =
        static_cast<double>(segments) * prog.energyPj(cfg);
    return s;
}

} // namespace simdram
