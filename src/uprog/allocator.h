/**
 * @file
 * The MIG-to-μProgram compiler (SIMDRAM framework step 2).
 *
 * Walks the majority-inverter graph in topological order and, for each
 * MAJ node, (1) chooses one of the four triple-row-activation groups
 * and an operand-to-row assignment, (2) emits AAPs to place missing
 * operands (routing complements through the dual-contact cells),
 * (3) emits the TRA, merging the result copy-out into a single AAP
 * when the value must reach a data row, and (4) tracks value locations
 * and liveness so later nodes reuse operands already present in the
 * compute rows and scratch rows are recycled.
 *
 * Two allocation policies are provided:
 *  - greedy (the SIMDRAM approach): minimizes AAPs by scoring every
 *    (triple, operand-permutation) pair against the current row state;
 *  - naive (ablation baseline): fixed triple, always reload, always
 *    spill — what a per-gate recipe with no cross-gate reuse costs.
 */

#ifndef SIMDRAM_UPROG_ALLOCATOR_H
#define SIMDRAM_UPROG_ALLOCATOR_H

#include <cstddef>

#include "logic/circuit.h"
#include "uprog/program.h"

namespace simdram
{

/** Compiler policy knobs. */
struct CompileOptions
{
    bool greedy = true;        ///< Greedy allocation (vs naive).
    size_t maxScratchRows = 512; ///< Hard cap; fatal() if exceeded.
};

/** Compiler outcome statistics. */
struct CompileReport
{
    size_t migGates = 0;    ///< Live MAJ gates compiled.
    size_t aaps = 0;        ///< AAP μOps emitted.
    size_t aps = 0;         ///< AP μOps emitted.
    size_t scratchRows = 0; ///< Scratch high-water mark.
};

/**
 * Compiles a MIG into a μProgram.
 *
 * @param mig A circuit satisfying isMig(); inputs must be grouped in
 *        buses and outputs in output buses.
 * @param opts Allocation policy.
 * @param report Optional out-parameter.
 * @return The compiled μProgram.
 */
MicroProgram compileMig(const Circuit &mig, CompileOptions opts = {},
                        CompileReport *report = nullptr);

} // namespace simdram

#endif // SIMDRAM_UPROG_ALLOCATOR_H
