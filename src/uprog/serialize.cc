#include "uprog/serialize.h"

#include <sstream>

#include "common/error.h"

namespace simdram
{

namespace
{

/** Parses one row-address token ("D17", "T2", "TRA(T0,T1,T2)"...). */
RowAddr
parseRowAddr(const std::string &tok)
{
    static const std::pair<const char *, SpecialRow> kSpecial[] = {
        {"C0", SpecialRow::C0},       {"C1", SpecialRow::C1},
        {"T0", SpecialRow::T0},       {"T1", SpecialRow::T1},
        {"T2", SpecialRow::T2},       {"T3", SpecialRow::T3},
        {"DCC0P", SpecialRow::DCC0P}, {"DCC0N", SpecialRow::DCC0N},
        {"DCC1P", SpecialRow::DCC1P}, {"DCC1N", SpecialRow::DCC1N},
    };

    if (tok.rfind("TRA(", 0) == 0) {
        for (auto t : {TripleAddr::T0T1T2, TripleAddr::T1T2T3,
                       TripleAddr::DCC0T1T2, TripleAddr::DCC1T0T3}) {
            if (toString(RowAddr::row(t)) == tok)
                return RowAddr::row(t);
        }
        fatal("parseMicroProgram: unknown triple address " + tok);
    }
    if (tok.rfind("DUAL(", 0) == 0) {
        for (auto d : {DualAddr::T0T1, DualAddr::T1T2,
                       DualAddr::T2T3, DualAddr::T0T3}) {
            if (toString(RowAddr::row(d)) == tok)
                return RowAddr::row(d);
        }
        fatal("parseMicroProgram: unknown dual address " + tok);
    }
    if (tok.size() >= 2 && tok[0] == 'D' &&
        (tok[1] >= '0' && tok[1] <= '9')) {
        return RowAddr::data(
            static_cast<uint32_t>(std::stoul(tok.substr(1))));
    }
    for (const auto &[name, row] : kSpecial)
        if (tok == name)
            return RowAddr::row(row);
    fatal("parseMicroProgram: unknown row address " + tok);
}

/** Parses region specs like "a[8] b[8]" until a stop word. */
std::vector<RowRegion>
parseRegions(std::istringstream &is, std::string &pending)
{
    std::vector<RowRegion> regions;
    std::string tok;
    while (is >> tok) {
        if (tok == "outputs:" || tok == "scratch:") {
            pending = tok;
            break;
        }
        const auto open = tok.find('[');
        const auto close = tok.find(']');
        if (open == std::string::npos || close == std::string::npos)
            fatal("parseMicroProgram: malformed region " + tok);
        RowRegion r;
        r.name = tok.substr(0, open);
        r.rows = std::stoul(tok.substr(open + 1, close - open - 1));
        regions.push_back(std::move(r));
    }
    return regions;
}

} // namespace

std::string
serializeMicroProgram(const MicroProgram &prog)
{
    return prog.toString();
}

MicroProgram
parseMicroProgram(const std::string &text)
{
    MicroProgram prog;
    std::istringstream lines(text);
    std::string line;

    // Header.
    if (!std::getline(lines, line) || line.rfind(";", 0) != 0)
        fatal("parseMicroProgram: missing header line");
    {
        std::istringstream is(line);
        std::string tok;
        is >> tok; // ";"
        is >> tok;
        if (tok != "inputs:")
            fatal("parseMicroProgram: expected 'inputs:'");
        std::string pending;
        prog.inputRegions = parseRegions(is, pending);
        if (pending != "outputs:")
            fatal("parseMicroProgram: expected 'outputs:'");
        prog.outputRegions = parseRegions(is, pending);
        if (pending != "scratch:")
            fatal("parseMicroProgram: expected 'scratch:'");
        is >> prog.scratchRows;
    }

    // μOps.
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        std::istringstream is(line);
        std::string kind, src;
        is >> kind >> src;
        if (kind == "AAP") {
            std::string arrow, dst;
            is >> arrow >> dst;
            if (arrow != "->")
                fatal("parseMicroProgram: malformed AAP line: " +
                      line);
            prog.ops.push_back(MicroOp::aap(parseRowAddr(src),
                                            parseRowAddr(dst)));
        } else if (kind == "AP") {
            prog.ops.push_back(MicroOp::ap(parseRowAddr(src)));
        } else {
            fatal("parseMicroProgram: unknown op kind: " + kind);
        }
    }
    return prog;
}

} // namespace simdram
