/**
 * @file
 * μPrograms: the DRAM command sequences SIMDRAM executes
 * (framework step 2 output).
 *
 * A μProgram is a sequence of AAP/AP macro-operations over *virtual*
 * data rows plus the subarray's special rows. The virtual row space is
 * laid out as [input regions | output regions | scratch]; the control
 * unit binds virtual rows to physical rows at issue time, which is
 * what lets one stored μProgram serve every operand location (the
 * paper stores μPrograms in a small memory inside the memory
 * controller, indexed by the bbop instruction).
 *
 * The analytic latency/energy accessors use exactly the same
 * per-command constants as the functional Subarray model; a test
 * asserts they agree.
 */

#ifndef SIMDRAM_UPROG_PROGRAM_H
#define SIMDRAM_UPROG_PROGRAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dram/address.h"
#include "dram/config.h"

namespace simdram
{

/** One μOp: an AAP (copy / compute-and-copy) or AP (compute). */
struct MicroOp
{
    /** μOp kinds. */
    enum class Kind : uint8_t
    {
        Aap, ///< ACTIVATE(src) ACTIVATE(dst) PRECHARGE.
        Ap,  ///< ACTIVATE(src) PRECHARGE.
    };

    Kind kind = Kind::Ap;
    RowAddr src; ///< First activation (data source / TRA).
    RowAddr dst; ///< Second activation (copy target; Aap only).

    /** @return An AAP μOp. */
    static MicroOp aap(RowAddr src, RowAddr dst)
    {
        return {Kind::Aap, src, dst};
    }

    /** @return An AP μOp. */
    static MicroOp ap(RowAddr src) { return {Kind::Ap, src, {}}; }
};

/** A named, fixed-width run of virtual rows. */
struct RowRegion
{
    std::string name; ///< Bus name ("a", "b", "sel", "y", ...).
    size_t rows = 0;  ///< Number of rows (bus width in bits).
};

/** A compiled SIMDRAM operation. */
class MicroProgram
{
  public:
    std::vector<MicroOp> ops;            ///< Command sequence.
    std::vector<RowRegion> inputRegions; ///< In bus-declaration order.
    std::vector<RowRegion> outputRegions;///< In bus-declaration order.
    size_t scratchRows = 0;              ///< Scratch rows required.

    /** @return Total input rows across regions. */
    size_t inputRowCount() const;

    /** @return Total output rows across regions. */
    size_t outputRowCount() const;

    /** @return Size of the virtual row space. */
    size_t virtualRowCount() const;

    /** @return Number of AAP μOps. */
    size_t aapCount() const;

    /** @return Number of AP μOps. */
    size_t apCount() const;

    /** @return Latency of one execution (one subarray), in ns. */
    double latencyNs(const DramTiming &t) const;

    /** @return Energy of one execution (one subarray), in pJ. */
    double energyPj(const DramConfig &cfg) const;

    /** @return A printable listing (one μOp per line). */
    std::string toString() const;
};

/**
 * Analytic cost of executing @p prog over @p elements elements on
 * @p cfg: segments of cfg.rowBits lanes are distributed round-robin
 * over cfg.computeBanks banks; banks run concurrently, segments
 * within a bank serialize. Counters/energy cover all segments.
 */
DramStats estimateCompute(const MicroProgram &prog, size_t elements,
                          const DramConfig &cfg);

} // namespace simdram

#endif // SIMDRAM_UPROG_PROGRAM_H
