#include "uprog/allocator.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/error.h"

namespace simdram
{

namespace
{

/** The four TRA groups with their member slots. */
struct TripleInfo
{
    TripleAddr addr;
    // Slots: each is either a T row (0..3) or a DCC cell (0..1).
    struct Slot
    {
        bool isDcc;
        int index; ///< T row index or DCC cell index.
    };
    Slot slots[3];
};

constexpr TripleInfo kTriples[4] = {
    {TripleAddr::T0T1T2,
     {{false, 0}, {false, 1}, {false, 2}}},
    {TripleAddr::T1T2T3,
     {{false, 1}, {false, 2}, {false, 3}}},
    {TripleAddr::DCC0T1T2,
     {{true, 0}, {false, 1}, {false, 2}}},
    {TripleAddr::DCC1T0T3,
     {{true, 1}, {false, 0}, {false, 3}}},
};

constexpr SpecialRow kTRows[4] = {SpecialRow::T0, SpecialRow::T1,
                                  SpecialRow::T2, SpecialRow::T3};
constexpr SpecialRow kDccP[2] = {SpecialRow::DCC0P, SpecialRow::DCC1P};
constexpr SpecialRow kDccN[2] = {SpecialRow::DCC0N, SpecialRow::DCC1N};

constexpr uint32_t kNoValue = UINT32_MAX;

/** State + emission context for one compilation. */
class Compiler
{
  public:
    Compiler(const Circuit &mig, CompileOptions opts)
        : mig_(mig), opts_(opts)
    {
    }

    MicroProgram run(CompileReport *report);

  private:
    // ---- Value-location tracking ------------------------------------

    /** @return All row addresses whose first activation yields @p v. */
    std::vector<RowAddr> directSources(Lit v) const;

    /** @return Number of direct sources of @p v. */
    size_t sourceCount(Lit v) const
    {
        return directSources(v).size();
    }

    /** Record that data (virtual) row @p row now holds @p v. */
    void setDataRow(uint32_t row, Lit v);

    /** Forget the value of data row @p row. */
    void clearDataRow(uint32_t row);

    // ---- Emission helpers --------------------------------------------

    void emitAap(RowAddr src, RowAddr dst);
    void emitAp(RowAddr src);

    /**
     * Makes T row @p t hold value @p v, emitting up to two AAPs
     * (complement values route through a free DCC). @p force reloads
     * even when the row already holds the value (naive policy).
     */
    void loadIntoT(int t, Lit v, bool force = false);

    /**
     * Makes DCC cell @p d hold value @p v (one AAP: through the P
     * port from a direct source of v, or through the N port from a
     * source of !v).
     */
    void loadIntoDcc(int d, Lit v, bool force = false);

    /** @return A DCC cell index safe to clobber (preserves if needed). */
    int pickFreeDcc();

    /** Allocates (or reuses) a scratch virtual row. */
    uint32_t allocScratch();

    /** Preserves @p v to scratch if @p v would otherwise be lost. */
    void preserveIfNeeded(Lit v, const std::vector<RowAddr> &dying);

    /** Copies @p v into virtual data row @p row (1-2 AAPs). */
    void copyValueToDataRow(Lit v, uint32_t row);

    // ---- Node compilation ---------------------------------------------

    void compileNode(uint32_t id, uint32_t next_id);
    void finalizeOutputs();

    /** @return remaining uses of the node behind @p v. */
    uint32_t usesOf(Lit v) const
    {
        return remaining_uses_[Circuit::litNode(v)];
    }

    const Circuit &mig_;
    CompileOptions opts_;
    MicroProgram prog_;

    // Row state. Values are canonical literals; kNoValue = unknown.
    Lit t_val_[4] = {kNoValue, kNoValue, kNoValue, kNoValue};
    Lit dcc_val_[2] = {kNoValue, kNoValue};
    std::unordered_map<uint32_t, Lit> data_val_; // virt row -> lit

    std::vector<uint32_t> remaining_uses_; // per node
    std::vector<uint32_t> free_scratch_;
    size_t scratch_high_water_ = 0;
    uint32_t scratch_base_ = 0; // first scratch virtual row
    int reserved_dcc_ = -1;     // DCC slot of the triple in flight

    // Output bookkeeping: (virtual row, literal wanted, written?).
    struct OutTarget
    {
        uint32_t row;
        Lit lit;
        bool written = false;
    };
    std::vector<OutTarget> out_targets_;
    std::unordered_map<uint32_t, std::vector<size_t>>
        outs_of_node_; // node id -> indices into out_targets_
};

std::vector<RowAddr>
Compiler::directSources(Lit v) const
{
    std::vector<RowAddr> srcs;
    if (v == Circuit::kLit0) {
        srcs.push_back(RowAddr::row(SpecialRow::C0));
        return srcs;
    }
    if (v == Circuit::kLit1) {
        srcs.push_back(RowAddr::row(SpecialRow::C1));
        return srcs;
    }
    for (int i = 0; i < 4; ++i)
        if (t_val_[i] == v)
            srcs.push_back(RowAddr::row(kTRows[i]));
    for (int d = 0; d < 2; ++d) {
        if (dcc_val_[d] == v)
            srcs.push_back(RowAddr::row(kDccP[d]));
        else if (dcc_val_[d] != kNoValue &&
                 dcc_val_[d] == Circuit::litNot(v))
            srcs.push_back(RowAddr::row(kDccN[d]));
    }
    for (const auto &[row, lit] : data_val_)
        if (lit == v)
            srcs.push_back(RowAddr::data(row));
    return srcs;
}

void
Compiler::setDataRow(uint32_t row, Lit v)
{
    data_val_[row] = v;
}

void
Compiler::clearDataRow(uint32_t row)
{
    data_val_.erase(row);
}

void
Compiler::emitAap(RowAddr src, RowAddr dst)
{
    prog_.ops.push_back(MicroOp::aap(src, dst));
}

void
Compiler::emitAp(RowAddr src)
{
    prog_.ops.push_back(MicroOp::ap(src));
}

void
Compiler::loadIntoT(int t, Lit v, bool force)
{
    if (t_val_[t] == v && !force)
        return;
    auto srcs = directSources(v);
    if (!srcs.empty()) {
        emitAap(srcs.front(), RowAddr::row(kTRows[t]));
        t_val_[t] = v;
        return;
    }
    // Only the complement exists somewhere: route through a DCC.
    auto csrcs = directSources(Circuit::litNot(v));
    if (csrcs.empty())
        panic("loadIntoT: value " + std::to_string(v) +
              " has no live source (compiler bug)");
    const int d = pickFreeDcc();
    // Writing !v through the N port leaves the cell holding v.
    emitAap(csrcs.front(), RowAddr::row(kDccN[d]));
    dcc_val_[d] = v;
    emitAap(RowAddr::row(kDccP[d]), RowAddr::row(kTRows[t]));
    t_val_[t] = v;
}

void
Compiler::loadIntoDcc(int d, Lit v, bool force)
{
    if (dcc_val_[d] == v && !force)
        return;
    auto srcs = directSources(v);
    if (!srcs.empty()) {
        emitAap(srcs.front(), RowAddr::row(kDccP[d]));
        dcc_val_[d] = v;
        return;
    }
    auto csrcs = directSources(Circuit::litNot(v));
    if (csrcs.empty())
        panic("loadIntoDcc: value has no live source (compiler bug)");
    emitAap(csrcs.front(), RowAddr::row(kDccN[d]));
    dcc_val_[d] = v;
}

int
Compiler::pickFreeDcc()
{
    // Prefer a cell holding nothing or a dead value; never touch the
    // DCC reserved as a slot of the triple being assembled.
    for (int d = 0; d < 2; ++d) {
        if (d == reserved_dcc_)
            continue;
        if (dcc_val_[d] == kNoValue)
            return d;
    }
    for (int d = 0; d < 2; ++d) {
        if (d == reserved_dcc_)
            continue;
        const Lit v = dcc_val_[d];
        if (v == Circuit::kLit0 || v == Circuit::kLit1 ||
            usesOf(v) == 0)
            return d;
    }
    // Remaining cells hold live values; preserve, then reuse.
    for (int d = 0; d < 2; ++d) {
        if (d == reserved_dcc_)
            continue;
        preserveIfNeeded(dcc_val_[d], {RowAddr::row(kDccP[d]),
                                       RowAddr::row(kDccN[d])});
        return d;
    }
    panic("pickFreeDcc: no cell available");
}

uint32_t
Compiler::allocScratch()
{
    if (!free_scratch_.empty()) {
        const uint32_t row = free_scratch_.back();
        free_scratch_.pop_back();
        return row;
    }
    const uint32_t row =
        scratch_base_ + static_cast<uint32_t>(scratch_high_water_);
    ++scratch_high_water_;
    if (scratch_high_water_ > opts_.maxScratchRows)
        fatal("compileMig: scratch row budget exceeded (" +
              std::to_string(opts_.maxScratchRows) + ")");
    return row;
}

void
Compiler::preserveIfNeeded(Lit v, const std::vector<RowAddr> &dying)
{
    if (v == kNoValue || v == Circuit::kLit0 || v == Circuit::kLit1)
        return;
    if (usesOf(v) == 0)
        return;
    // Count sources that are not about to be destroyed.
    auto srcs = directSources(v);
    size_t surviving = 0;
    for (const auto &s : srcs) {
        bool dies = false;
        for (const auto &d : dying)
            if (s == d)
                dies = true;
        if (!dies)
            ++surviving;
    }
    if (surviving > 0)
        return;
    // Also fine if the complement survives in a DCC cell (still
    // reachable through the other port).
    const uint32_t row = allocScratch();
    // Source: the first dying location still valid right now.
    emitAap(dying.front(), RowAddr::data(row));
    setDataRow(row, v);
}

void
Compiler::copyValueToDataRow(Lit v, uint32_t row)
{
    auto srcs = directSources(v);
    if (!srcs.empty()) {
        emitAap(srcs.front(), RowAddr::data(row));
        setDataRow(row, v);
        return;
    }
    auto csrcs = directSources(Circuit::litNot(v));
    if (csrcs.empty())
        panic("copyValueToDataRow: value has no live source");
    const int d = pickFreeDcc();
    emitAap(csrcs.front(), RowAddr::row(kDccN[d]));
    dcc_val_[d] = v;
    emitAap(RowAddr::row(kDccP[d]), RowAddr::data(row));
    setDataRow(row, v);
}

void
Compiler::compileNode(uint32_t id, uint32_t next_id)
{
    const Node &nd = mig_.node(id);
    const std::array<Lit, 3> fanin = nd.fanin;
    const Lit result = Circuit::lit(id);

    // ---- Choose triple + assignment ---------------------------------
    int best_triple = 0;
    std::array<int, 3> best_perm = {0, 1, 2}; // fanin index per slot
    if (opts_.greedy) {
        int best_cost = INT32_MAX;
        static constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1},
                                             {1, 0, 2}, {1, 2, 0},
                                             {2, 0, 1}, {2, 1, 0}};
        for (int ti = 0; ti < 4; ++ti) {
            const TripleInfo &tri = kTriples[ti];
            for (const auto &perm : kPerms) {
                int cost = 0;
                for (int s = 0; s < 3; ++s) {
                    const Lit f = fanin[perm[s]];
                    const auto &slot = tri.slots[s];
                    if (slot.isDcc) {
                        if (dcc_val_[slot.index] == f)
                            continue;
                        // One AAP whichever polarity is available.
                        cost += 10;
                        // Penalize clobbering a live cell value.
                        const Lit cur = dcc_val_[slot.index];
                        if (cur != kNoValue && cur != Circuit::kLit0 &&
                            cur != Circuit::kLit1 && usesOf(cur) > 0)
                            cost += 4;
                    } else {
                        const Lit cur = t_val_[slot.index];
                        if (cur == f)
                            continue;
                        const bool direct =
                            !directSources(f).empty();
                        cost += direct ? 10 : 20;
                        if (cur != kNoValue && cur != Circuit::kLit0 &&
                            cur != Circuit::kLit1 && usesOf(cur) > 0)
                            cost += 4;
                    }
                }
                if (cost < best_cost) {
                    best_cost = cost;
                    best_triple = ti;
                    best_perm = {perm[0], perm[1], perm[2]};
                }
            }
        }
    }

    const TripleInfo &tri = kTriples[best_triple];
    const bool naive = !opts_.greedy;

    // Reserve the triple's DCC slot so complement routing for the
    // other operands never clobbers it.
    reserved_dcc_ = -1;
    for (int s = 0; s < 3; ++s)
        if (tri.slots[s].isDcc)
            reserved_dcc_ = tri.slots[s].index;

    // ---- Emit operand loads, ordered so that no load destroys the
    // ---- last copy of a value another pending load still needs. ----
    struct PendingLoad
    {
        int slot;
        Lit value;
        bool done;
    };
    std::array<PendingLoad, 3> loads;
    for (int s = 0; s < 3; ++s)
        loads[s] = {s, fanin[best_perm[s]], false};

    // Mark already-satisfied slots first (greedy reuse).
    if (!naive) {
        for (auto &ld : loads) {
            const auto &slot = tri.slots[ld.slot];
            const Lit cur = slot.isDcc ? dcc_val_[slot.index]
                                       : t_val_[slot.index];
            if (cur == ld.value)
                ld.done = true;
        }
    }

    auto slot_addr = [&](int s) {
        const auto &slot = tri.slots[s];
        return slot.isDcc ? RowAddr::row(kDccP[slot.index])
                          : RowAddr::row(kTRows[slot.index]);
    };
    auto all_done = [&] {
        return std::all_of(loads.begin(), loads.end(),
                           [](const PendingLoad &l) {
                               return l.done;
                           });
    };

    for (int guard = 0; !all_done(); ++guard) {
        if (guard > 12)
            panic("compileNode: load ordering did not converge");
        // Pick an undone load whose target is not the unique source
        // of another pending load's value.
        int chosen = -1;
        for (int i = 0; i < 3 && chosen < 0; ++i) {
            if (loads[i].done)
                continue;
            const RowAddr target = slot_addr(loads[i].slot);
            bool conflict = false;
            for (int j = 0; j < 3; ++j) {
                if (j == i || loads[j].done)
                    continue;
                const auto srcs = directSources(loads[j].value);
                bool target_is_src = false;
                for (const auto &srow : srcs)
                    if (srow == target)
                        target_is_src = true;
                if (target_is_src && srcs.size() == 1)
                    conflict = true;
            }
            if (!conflict)
                chosen = i;
        }
        if (chosen < 0) {
            // Swap cycle: bounce one pending single-source value to
            // scratch, then retry.
            bool bounced = false;
            for (int j = 0; j < 3 && !bounced; ++j) {
                if (loads[j].done)
                    continue;
                const auto srcs = directSources(loads[j].value);
                if (srcs.size() == 1) {
                    const uint32_t row = allocScratch();
                    emitAap(srcs.front(), RowAddr::data(row));
                    setDataRow(row, loads[j].value);
                    bounced = true;
                }
            }
            if (!bounced)
                chosen = 0; // no real conflict remains; take any
            else
                continue;
            while (loads[chosen].done)
                ++chosen;
        }

        auto &ld = loads[chosen];
        const auto &slot = tri.slots[ld.slot];
        // Preserve the clobbered slot value if it is still needed.
        const Lit cur =
            slot.isDcc ? dcc_val_[slot.index] : t_val_[slot.index];
        if (cur != kNoValue) {
            std::vector<RowAddr> dying = {slot_addr(ld.slot)};
            if (slot.isDcc)
                dying.push_back(RowAddr::row(kDccN[slot.index]));
            preserveIfNeeded(cur, dying);
        }
        if (slot.isDcc)
            loadIntoDcc(slot.index, ld.value, naive);
        else
            loadIntoT(slot.index, ld.value, naive);
        ld.done = true;
    }
    reserved_dcc_ = -1;

    // ---- Consume fanins (liveness) -----------------------------------
    for (const Lit f : fanin) {
        const uint32_t n = Circuit::litNode(f);
        if (n != 0 && remaining_uses_[n] > 0)
            --remaining_uses_[n];
    }

    // ---- Preserve any last-copy values the TRA will destroy ----------
    for (int s = 0; s < 3; ++s) {
        const auto &slot = tri.slots[s];
        const Lit v =
            slot.isDcc ? dcc_val_[slot.index] : t_val_[slot.index];
        if (v == kNoValue)
            continue;
        // All three slot locations die simultaneously.
        std::vector<RowAddr> dying;
        for (int s2 = 0; s2 < 3; ++s2)
            dying.push_back(slot_addr(s2));
        // The DCC N-port view dies too.
        for (int s2 = 0; s2 < 3; ++s2)
            if (tri.slots[s2].isDcc)
                dying.push_back(
                    RowAddr::row(kDccN[tri.slots[s2].index]));
        preserveIfNeeded(v, dying);
    }

    // ---- Free scratch rows of dead values -----------------------------
    {
        std::vector<uint32_t> dead_rows;
        for (const auto &[row, lit] : data_val_) {
            if (row < scratch_base_)
                continue; // inputs/outputs are never recycled
            const uint32_t n = Circuit::litNode(lit);
            if (remaining_uses_[n] == 0) {
                dead_rows.push_back(row);
            }
        }
        for (uint32_t row : dead_rows) {
            clearDataRow(row);
            free_scratch_.push_back(row);
        }
    }

    // ---- Compute + copy-out -------------------------------------------
    const RowAddr tra = RowAddr::row(tri.addr);

    // Output rows wanting the value directly.
    std::vector<size_t> plus_outs, minus_outs;
    auto it = outs_of_node_.find(id);
    if (it != outs_of_node_.end()) {
        for (size_t oi : it->second) {
            if (out_targets_[oi].written)
                continue;
            if (out_targets_[oi].lit == result)
                plus_outs.push_back(oi);
            else
                minus_outs.push_back(oi);
        }
    }

    // How many *gate* consumers remain (output uses are tracked in
    // out_targets_ and consume one remaining use each when written).
    const uint32_t out_uses =
        static_cast<uint32_t>(plus_outs.size() + minus_outs.size());
    const uint32_t gate_uses =
        remaining_uses_[id] >= out_uses
            ? remaining_uses_[id] - out_uses
            : 0;
    const bool consumer_is_next = gate_uses == 1 && next_id != 0 && [&] {
        for (const Lit f : mig_.node(next_id).fanin)
            if (Circuit::litNode(f) == id)
                return true;
        return false;
    }();
    const bool need_spill =
        naive || gate_uses >= 2 ||
        (gate_uses == 1 && !consumer_is_next);

    bool computed = false;
    if (!plus_outs.empty()) {
        const uint32_t row0 = out_targets_[plus_outs[0]].row;
        emitAap(tra, RowAddr::data(row0));
        setDataRow(row0, result);
        out_targets_[plus_outs[0]].written = true;
        --remaining_uses_[id];
        computed = true;
        for (size_t k = 1; k < plus_outs.size(); ++k) {
            const uint32_t row = out_targets_[plus_outs[k]].row;
            emitAap(RowAddr::data(row0), RowAddr::data(row));
            setDataRow(row, result);
            out_targets_[plus_outs[k]].written = true;
            --remaining_uses_[id];
        }
    } else if (need_spill) {
        const uint32_t row = allocScratch();
        emitAap(tra, RowAddr::data(row));
        setDataRow(row, result);
        computed = true;
    }
    if (!computed)
        emitAp(tra);

    // The TRA left `result` in all three slots.
    for (int s = 0; s < 3; ++s) {
        const auto &slot = tri.slots[s];
        if (slot.isDcc)
            dcc_val_[slot.index] = result;
        else
            t_val_[slot.index] = result;
    }

    // Complemented output targets: read !result through a DCC.
    for (size_t oi : minus_outs) {
        const uint32_t row = out_targets_[oi].row;
        copyValueToDataRow(Circuit::litNot(result), row);
        out_targets_[oi].written = true;
        --remaining_uses_[id];
    }
}

void
Compiler::finalizeOutputs()
{
    for (auto &t : out_targets_) {
        if (t.written)
            continue;
        auto it = data_val_.find(t.row);
        if (it != data_val_.end() && it->second == t.lit) {
            t.written = true;
            continue;
        }
        copyValueToDataRow(t.lit, t.row);
        t.written = true;
    }
}

MicroProgram
Compiler::run(CompileReport *report)
{
    if (!mig_.isMig())
        fatal("compileMig: circuit contains non-majority gates");

    // ---- Virtual row layout -------------------------------------------
    uint32_t next_row = 0;
    std::unordered_map<uint32_t, uint32_t> input_row_of;
    for (const std::string &name : mig_.inputBusNames()) {
        const auto *bus = mig_.inputBus(name);
        prog_.inputRegions.push_back({name, bus->size()});
        for (Lit l : *bus) {
            if (Circuit::litCompl(l))
                fatal("compileMig: complemented input-bus literal");
            input_row_of[Circuit::litNode(l)] = next_row++;
        }
    }
    std::vector<std::pair<uint32_t, Lit>> output_rows;
    for (const std::string &name : mig_.outputBusNames()) {
        const auto *bus = mig_.outputBus(name);
        prog_.outputRegions.push_back({name, bus->size()});
        for (Lit l : *bus)
            output_rows.emplace_back(next_row++, l);
    }
    scratch_base_ = next_row;

    // Input rows hold input values from the start.
    for (const auto &[node, row] : input_row_of)
        setDataRow(row, Circuit::lit(node));

    // ---- Liveness -------------------------------------------------------
    const auto order = mig_.topoOrder();
    remaining_uses_.assign(mig_.nodeCount(), 0);
    for (uint32_t id : order)
        for (const Lit f : mig_.node(id).fanin)
            ++remaining_uses_[Circuit::litNode(f)];
    for (Lit o : mig_.outputs())
        ++remaining_uses_[Circuit::litNode(o)];

    // ---- Output targets --------------------------------------------------
    for (const auto &[row, lit] : output_rows) {
        const uint32_t node = Circuit::litNode(lit);
        OutTarget t{row, lit, false};
        out_targets_.push_back(t);
        outs_of_node_[node].push_back(out_targets_.size() - 1);
    }

    // ---- Compile ----------------------------------------------------------
    for (size_t i = 0; i < order.size(); ++i) {
        const uint32_t next_id =
            i + 1 < order.size() ? order[i + 1] : 0;
        compileNode(order[i], next_id);
    }
    finalizeOutputs();

    prog_.scratchRows = scratch_high_water_;

    if (report) {
        report->migGates = order.size();
        report->aaps = prog_.aapCount();
        report->aps = prog_.apCount();
        report->scratchRows = scratch_high_water_;
    }
    return std::move(prog_);
}

} // namespace

MicroProgram
compileMig(const Circuit &mig, CompileOptions opts,
           CompileReport *report)
{
    Compiler c(mig, opts);
    return c.run(report);
}

} // namespace simdram
