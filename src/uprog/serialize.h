/**
 * @file
 * μProgram (de)serialization.
 *
 * The paper stores μPrograms in a small memory inside the memory
 * controller, populated at boot/install time. This module provides
 * the corresponding persistence format: a line-oriented text listing
 * that round-trips exactly through MicroProgram::toString(), so
 * compiled programs can be inspected, shipped, and reloaded without
 * recompiling their circuits.
 *
 * Format (one header line, then one μOp per line):
 *
 *   ; inputs: a[8] b[8] outputs: y[8] scratch: 4
 *   AAP C0 -> T0
 *   AAP D0 -> T1
 *   AP  TRA(T0,T1,T2)
 *   ...
 */

#ifndef SIMDRAM_UPROG_SERIALIZE_H
#define SIMDRAM_UPROG_SERIALIZE_H

#include <string>

#include "uprog/program.h"

namespace simdram
{

/** @return The textual form of @p prog (same as prog.toString()). */
std::string serializeMicroProgram(const MicroProgram &prog);

/**
 * Parses a μProgram from its textual form.
 *
 * @param text A listing produced by serializeMicroProgram().
 * @return The parsed program.
 * @throws FatalError on malformed input.
 */
MicroProgram parseMicroProgram(const std::string &text);

} // namespace simdram

#endif // SIMDRAM_UPROG_SERIALIZE_H
