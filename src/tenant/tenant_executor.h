/**
 * @file
 * Multi-tenant stream service: one physical StreamExecutor shared
 * safely by many tenants.
 *
 * The TenantExecutor virtualizes a StreamExecutor the way a
 * hypervisor virtualizes parallel hardware: each registered tenant
 * gets
 *
 *  - an isolated OBJECT NAMESPACE — per-tenant virtual ids, mapped
 *    to physical executor ids at submit time. A tenant cannot name
 *    another tenant's objects at all (its map only contains its
 *    own), and an unknown or released virtual id is rejected with a
 *    typed BbopError synchronously, before the stream reaches
 *    validation, with nothing enqueued;
 *
 *  - OBJECT QUOTAS — maxObjects / maxObjectBits budgets enforced at
 *    defineObject() with a typed, side-effect-free TenantQuotaError;
 *
 *  - STREAM QUOTAS — maxPendingStreams bounds the tenant's admitted
 *    but not yet completed streams, layered above the executor's
 *    per-device bounded queues. Per tenant, a full quota either
 *    blocks the submitter (TenantQuotaPolicy::Block) or throws the
 *    typed TenantQuotaError with zero side effects
 *    (TenantQuotaPolicy::Shed);
 *
 *  - WEIGHTED-FAIR SCHEDULING — submitted streams first land in the
 *    tenant's own pending queue and are drained into the executor by
 *    deficit-weighted round-robin (deficit round robin with
 *    per-visit grant weight × quantumInstructions, cost = stream
 *    instruction count): a tenant of weight 3 gets 3× the
 *    instruction share of a weight-1 tenant while both are
 *    backlogged, and a flooding tenant cannot starve anyone. NOTE
 *    the semantics change vs raw StreamExecutor use: streams of
 *    DIFFERENT tenants execute in weighted-fair order, not global
 *    FIFO submission order (one tenant's own streams still run in
 *    its submission order);
 *
 *  - OBSERVABILITY ROLL-UPS — per-tenant DramStats deltas,
 *    queued/executed/shed/failed counters, live-object usage, and a
 *    per-tenant LatencyHistogram, all summing to the independently
 *    accumulated fleet totals (fleetStats()/fleetLatency()).
 *
 * Dispatch modes: by default a scheduler thread drains the pending
 * queues as streams arrive. With TenantExecutorOptions::
 * manualDispatch the scheduler thread is not started and dispatch
 * happens only inside drain()/drainTenant()/view-submit on the
 * calling thread — fully deterministic for tests and benches (the
 * DRR pick order depends only on registration order, weights, and
 * the queued streams).
 *
 * Tenant views: view(tid) returns a StreamService facade whose
 * object ids live in the tenant's namespace, so the whole serving
 * stack (StreamBuilder, RequestCoalescer) runs unmodified on behalf
 * of one tenant of a shared executor.
 *
 * Lock ordering: the executor's internal mutex is never held across
 * calls into the underlying StreamExecutor (whose submit lock can be
 * held across long Block-mode backpressure waits).
 */

#ifndef SIMDRAM_TENANT_TENANT_EXECUTOR_H
#define SIMDRAM_TENANT_TENANT_EXECUTOR_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "runtime/stream_executor.h"
#include "serve/latency_histogram.h"

namespace simdram
{

/**
 * Raised when a tenant quota is exhausted: the object budget at
 * defineObject(), or the pending-stream budget at submit() under
 * TenantQuotaPolicy::Shed. Distinct from BbopError (malformed or
 * misaddressed stream) and StreamRejectedError (the executor's
 * per-device queue bound): the request is well-formed, THIS tenant
 * is over ITS budget. Always side-effect-free — nothing is defined,
 * enqueued, or batched.
 */
class TenantQuotaError : public FatalError
{
  public:
    explicit TenantQuotaError(const std::string &what)
        : FatalError(what)
    {}
};

/** What submit() does when the tenant's stream quota is full. */
enum class TenantQuotaPolicy
{
    Block, ///< Block the submitter until the tenant's streams drain.
    Shed,  ///< Throw TenantQuotaError (no side effects).
};

/** Registration-time configuration of one tenant. */
struct TenantConfig
{
    /** Diagnostic name, used in error messages. */
    std::string name;
    /** Weighted-fair share (>= 1): per DRR visit the tenant's
     *  deficit grows by weight × quantumInstructions. */
    size_t weight = 1;
    /** Max live objects (0 = unbounded). */
    size_t maxObjects = 0;
    /** Max summed live elements × bits (0 = unbounded). */
    size_t maxObjectBits = 0;
    /** Max streams admitted but not yet completed (0 = unbounded). */
    size_t maxPendingStreams = 0;
    /** Behaviour when maxPendingStreams is reached at submit(). */
    TenantQuotaPolicy onFull = TenantQuotaPolicy::Shed;
};

/** Tuning knobs of a TenantExecutor. */
struct TenantExecutorOptions
{
    /**
     * When true, no scheduler thread is started: pending streams are
     * dispatched only inside drain()/drainTenant() (and view
     * submits), on the calling thread, making the DRR dispatch order
     * fully deterministic. Block-mode quota waits then need another
     * thread to drive dispatch.
     */
    bool manualDispatch = false;
    /**
     * DRR quantum: instructions granted per visit per weight unit.
     * Streams costlier than one grant still dispatch — the deficit
     * carries over visits — so no stream starves; smaller quanta
     * interleave tenants more finely at slightly more scheduling
     * work. Tests pin it to 1 for exact dispatch patterns.
     */
    size_t quantumInstructions = 64;
    /**
     * Record the tenant id of every dispatched stream, in dispatch
     * order, retrievable via dispatchOrder() — the fairness tests'
     * and bench's ground truth. Off by default (unbounded growth).
     */
    bool recordDispatchOrder = false;
};

/** Per-tenant (and fleet-wide) observability roll-up. */
struct TenantStats
{
    /** Compute stats of completed streams, merge()-accumulated. */
    DramStats compute;
    /** Host-transfer stats of completed streams. */
    DramStats transfer;
    /** Streams admitted (queued or beyond). */
    uint64_t submitted = 0;
    /** Streams completed successfully. */
    uint64_t executed = 0;
    /** Streams that completed with an error (malformed, ...). */
    uint64_t failed = 0;
    /** Streams shed by the pending-stream quota. */
    uint64_t shed = 0;
    /** Of failed: streams whose integrity verification failed after
     *  the retry budget (StreamFaultError). */
    uint64_t faultedStreams = 0;
    /** Of failed: streams that missed the executor deadline
     *  (StreamDeadlineError). */
    uint64_t deadlineExpiredStreams = 0;
    /** Integrity-check failures detected in this tenant's streams
     *  (summed over devices; recovered faults included). */
    uint64_t faultsDetected = 0;
    /** Completed streams that needed more than one attempt. */
    uint64_t retriedStreams = 0;
    /** Completed streams recovered via quarantine re-execution. */
    uint64_t recoveredStreams = 0;
    /** As-submitted instructions of completed streams. */
    uint64_t instructions = 0;
    /** Of those, elided by the executor's stream cache. */
    uint64_t cachedInstructions = 0;
    /** Of those, removed by the optimizer passes. */
    uint64_t optimizedInstructions = 0;
    /** Currently live (defined, not released) objects. */
    size_t liveObjects = 0;
    /** Summed elements × bits of the live objects. */
    size_t liveObjectBits = 0;
};

/** Completion data for one tenant stream (all its segments). */
struct TenantStreamResult
{
    /** Per-segment results, in segment order. */
    std::vector<StreamResult> segments;
    /** Compute stats merged over the segments. */
    DramStats compute;
    /** Host-transfer stats merged over the segments. */
    DramStats transfer;
    /** Tenant-side end-to-end: submit(tid) entry to completion. */
    double e2eNs = 0.0;
    /** As-submitted instructions, summed over segments. */
    size_t instructions = 0;
    /** Stream-cache elisions, summed. */
    size_t cachedInstructions = 0;
    /** Optimizer-pass removals, summed. */
    size_t optimizedInstructions = 0;
};

namespace detail
{
struct TenantStreamState;
} // namespace detail

/**
 * Future-style handle to a tenant stream. Unlike StreamHandle it
 * covers the whole submission (every segment) and the time spent in
 * the tenant's pending queue before dispatch.
 */
class TenantStreamHandle
{
  public:
    TenantStreamHandle() = default;

    /** @return True if the handle refers to an admitted stream. */
    bool valid() const { return state_ != nullptr; }

    /**
     * Blocks until the stream completed on every device and returns
     * its result. Rethrows any error raised at dispatch (validation)
     * or during execution.
     */
    TenantStreamResult wait();

    /** @return True once the stream completed (non-blocking). */
    bool done() const;

  private:
    friend class TenantExecutor;
    std::shared_ptr<detail::TenantStreamState> state_;
};

/** Virtualizes one StreamExecutor across registered tenants. */
class TenantExecutor
{
  public:
    /**
     * @param ex Physical executor (borrowed; must outlive this).
     *           The TenantExecutor assumes it is the executor's only
     *           client: objects defined out-of-band are invisible to
     *           every tenant, but out-of-band submits would bypass
     *           the fair scheduler.
     */
    explicit TenantExecutor(StreamExecutor &ex)
        : TenantExecutor(ex, TenantExecutorOptions{})
    {}

    /** As above, with scheduling options. */
    TenantExecutor(StreamExecutor &ex, TenantExecutorOptions opts);

    /** Drains every tenant, then joins the service threads. */
    ~TenantExecutor();

    TenantExecutor(const TenantExecutor &) = delete;
    TenantExecutor &operator=(const TenantExecutor &) = delete;

    /** @return The executor's options. */
    const TenantExecutorOptions &options() const { return opts_; }

    /**
     * Registers a tenant and returns its id. Weight 0 is rejected
     * (fatal) — a zero-weight tenant would never dispatch.
     */
    uint32_t registerTenant(TenantConfig cfg);

    /**
     * Tears a tenant down: drains its streams, releases every live
     * object back to the devices (the leak-free teardown path), and
     * marks the id dead — any further use is fatal. Does not block
     * other tenants beyond the shared release sync.
     */
    void unregisterTenant(uint32_t tid);

    /**
     * Defines an object in @p tid's namespace and returns its
     * VIRTUAL id. Throws the side-effect-free TenantQuotaError when
     * the tenant's object budget (maxObjects / maxObjectBits) is
     * exhausted — object quotas always throw; TenantQuotaPolicy
     * applies to streams only (objects never free up by waiting).
     */
    uint16_t defineObject(uint32_t tid, size_t elements, size_t bits);

    /** Releases virtual object @p vid (drains the tenant first). */
    void releaseObject(uint32_t tid, uint16_t vid);

    /** Writes host data into @p vid (drains the tenant first, so the
     *  write lands in the tenant's program order). */
    void writeObject(uint32_t tid, uint16_t vid,
                     const std::vector<uint64_t> &data);

    /** @return @p vid's horizontal image (drains the tenant first). */
    std::vector<uint64_t> readObject(uint32_t tid, uint16_t vid);

    /** @return Shape/layout of @p vid (BbopError if unknown). */
    BbopObjectShape objectShape(uint32_t tid, uint16_t vid) const;

    /**
     * Admits a stream into @p tid's pending queue. Ids are VIRTUAL:
     * translation to physical ids happens here, synchronously —
     * an unknown, foreign, or released id throws the typed BbopError
     * with nothing enqueued. A full stream quota sheds or blocks per
     * the tenant's TenantQuotaPolicy. Malformed-but-addressable
     * streams are NOT rejected here: validation happens at dispatch
     * and the error arrives through the handle, leaving every other
     * tenant untouched.
     */
    TenantStreamHandle submit(uint32_t tid,
                              const std::vector<BbopInstr> &stream);

    /** As above for a multi-segment program. */
    TenantStreamHandle submit(uint32_t tid, const StreamIR &ir);

    /**
     * @return A StreamService facade for @p tid, for running
     *         StreamBuilder / RequestCoalescer per tenant. The view
     *         borrows this executor; its submit() dispatches the
     *         stream (inline under manualDispatch) and returns the
     *         physical handles. Valid until the executor dies.
     */
    StreamService &view(uint32_t tid);

    /**
     * Dispatches every pending stream (DRR order) and blocks until
     * all tenants are idle. THE deterministic driver under
     * manualDispatch.
     */
    void drain();

    /** drain() for one tenant (still dispatches others' pending —
     *  scheduling order is global). */
    void drainTenant(uint32_t tid);

    /** @return A copy of @p tid's roll-up. */
    TenantStats stats(uint32_t tid) const;

    /**
     * @return The independently accumulated fleet-wide roll-up.
     *         Under drain() the per-tenant stats sum (counters add,
     *         DramStats merge) exactly to this.
     */
    TenantStats fleetStats() const;

    /** @return @p tid's per-stream e2e latency histogram. */
    const LatencyHistogram &latency(uint32_t tid) const;

    /** @return Per-tenant histograms merged into fleet quantiles. */
    LatencyHistogram fleetLatency() const;

    /** @return Dispatched tenant ids in dispatch order (empty unless
     *          TenantExecutorOptions::recordDispatchOrder). */
    std::vector<uint32_t> dispatchOrder() const;

    /** @return The number of registered (live) tenants. */
    size_t tenantCount() const;

  private:
    friend class TenantView;
    struct TenantState;
    struct PendingStream;
    struct ReapJob;

    TenantState &tenantLocked(uint32_t tid) const
        SIMDRAM_REQUIRES(mu_);
    /** Translates @p ir's virtual ids to physical ids (mu_ held). */
    StreamIR translateLocked(const TenantState &t,
                             const StreamIR &ir) const
        SIMDRAM_REQUIRES(mu_);
    /** Translates one instruction's operand fields in place. */
    void translateInstr(const TenantState &t, BbopInstr &in) const;

    TenantStreamHandle submitTranslated(uint32_t tid,
                                        const StreamIR &ir);
    /** View-submit: dispatch (inline under manualDispatch), then
     *  return the physical handles (rethrows dispatch errors). */
    std::vector<StreamHandle> submitForHandles(uint32_t tid,
                                               const StreamIR &ir);

    /** DRR pick of the next stream to dispatch (mu_ held). */
    bool pickLocked(uint32_t &tid, PendingStream &job)
        SIMDRAM_REQUIRES(mu_);
    /** Dispatches one picked stream; true if one was dispatched.
     *  Caller holds dispatch_mu_ (NOT mu_). */
    bool dispatchNext()
        SIMDRAM_REQUIRES(dispatch_mu_) SIMDRAM_EXCLUDES(mu_);
    /** Dispatches until every pending queue is empty. */
    void pump() SIMDRAM_EXCLUDES(dispatch_mu_, mu_);

    bool anyPendingLocked() const SIMDRAM_REQUIRES(mu_);
    size_t totalInflightLocked() const SIMDRAM_REQUIRES(mu_);

    void schedulerMain();
    void reaperMain();

    StreamExecutor *ex_;
    TenantExecutorOptions opts_;

    /** Serializes dispatchers so executor submission order == DRR
     *  order. Taken before (never inside) mu_. */
    Mutex dispatch_mu_;

    mutable Mutex mu_;
    /** condition_variable_any: waits take the annotated Mutex via
     *  UniqueLock. */
    std::condition_variable_any sched_cv_; ///< Pending (auto mode).
    std::condition_variable_any reap_cv_;  ///< Work to reap.
    std::condition_variable_any drain_cv_; ///< A stream completed.

    /** Tenant table; entries stable behind unique_ptr, never reused. */
    std::vector<std::unique_ptr<TenantState>> tenants_
        SIMDRAM_GUARDED_BY(mu_);
    /** Dispatched streams awaiting completion, FIFO (streams
     *  complete in executor submission order). */
    std::deque<ReapJob> reap_ SIMDRAM_GUARDED_BY(mu_);
    /** DRR cursor and whether the cursor tenant holds its grant. */
    size_t cursor_ SIMDRAM_GUARDED_BY(mu_) = 0;
    bool granted_ SIMDRAM_GUARDED_BY(mu_) = false;
    /** Fleet roll-up, accumulated alongside the per-tenant stats. */
    TenantStats fleet_ SIMDRAM_GUARDED_BY(mu_);
    std::vector<uint32_t> dispatch_order_ SIMDRAM_GUARDED_BY(mu_);
    bool stop_ SIMDRAM_GUARDED_BY(mu_) = false;

    std::thread scheduler_; ///< Not started under manualDispatch.
    std::thread reaper_;
};

} // namespace simdram

#endif // SIMDRAM_TENANT_TENANT_EXECUTOR_H
