#include "tenant/tenant_executor.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace simdram
{

namespace detail
{

/** Shared completion state of one tenant stream. */
struct TenantStreamState
{
    std::mutex mu;
    std::condition_variable cv;
    /** The stream reached the physical executor (or failed there). */
    bool dispatched = false;
    bool done = false;
    /** First error: dispatch-time validation or execution. */
    std::exception_ptr error;
    /** Physical handles, one per final segment (set at dispatch). */
    std::vector<StreamHandle> inner;
    TenantStreamResult result;
    /** Tenant-side submit entry: origin of the e2e clock. */
    std::chrono::steady_clock::time_point t0;
};

} // namespace detail

/** One admitted, not-yet-dispatched stream (ids already physical). */
struct TenantExecutor::PendingStream
{
    StreamIR ir;
    std::shared_ptr<detail::TenantStreamState> st;
    /** DRR cost: instruction count of the stream. */
    size_t cost = 1;
};

/** One dispatched stream awaiting completion. */
struct TenantExecutor::ReapJob
{
    uint32_t tid = 0;
    std::shared_ptr<detail::TenantStreamState> st;
};

/** Everything the executor tracks about one tenant. */
struct TenantExecutor::TenantState
{
    TenantConfig cfg;
    bool dead = false;

    /** The namespace: virtual id = index. Slots are never reused. */
    struct Obj
    {
        uint16_t phys = kNoObject;
        size_t elements = 0;
        size_t bits = 0;
        bool released = false;
    };
    std::vector<Obj> objs;

    /** Admitted (queued or dispatched), not yet completed. */
    size_t inflight = 0;
    std::deque<PendingStream> pending;
    /** DRR deficit, in instructions. */
    size_t deficit = 0;
    /** inflight dropped / tenant died. condition_variable_any: the
     *  waits hold the executor's annotated Mutex via UniqueLock. */
    std::condition_variable_any admit_cv;

    TenantStats stats;
    LatencyHistogram lat;
    std::unique_ptr<StreamService> viewSvc;
};

/**
 * A tenant's StreamService facade: every id is a virtual id of that
 * tenant, every operation delegates to the owning TenantExecutor.
 */
class TenantView : public StreamService
{
  public:
    TenantView(TenantExecutor &te, uint32_t tid)
        : te_(&te), tid_(tid)
    {}

    uint16_t defineObject(size_t elements, size_t bits) override
    {
        return te_->defineObject(tid_, elements, bits);
    }
    void releaseObject(uint16_t id) override
    {
        te_->releaseObject(tid_, id);
    }
    void writeObject(uint16_t id,
                     const std::vector<uint64_t> &data) override
    {
        te_->writeObject(tid_, id, data);
    }
    std::vector<uint64_t> readObject(uint16_t id) override
    {
        return te_->readObject(tid_, id);
    }
    BbopObjectShape objectShape(uint16_t id) const override
    {
        return te_->objectShape(tid_, id);
    }
    StreamHandle submit(const std::vector<BbopInstr> &stream) override
    {
        // A raw stream is a one-segment program: exactly one handle.
        return te_->submitForHandles(tid_, StreamIR::lift(stream))
            .front();
    }
    std::vector<StreamHandle> submit(const StreamIR &ir) override
    {
        return te_->submitForHandles(tid_, ir);
    }
    void sync() override { te_->drainTenant(tid_); }

  private:
    TenantExecutor *te_;
    uint32_t tid_;
};

TenantExecutor::TenantExecutor(StreamExecutor &ex,
                               TenantExecutorOptions opts)
    : ex_(&ex), opts_(opts)
{
    if (opts_.quantumInstructions == 0)
        fatal("TenantExecutor: quantumInstructions must be >= 1");
    reaper_ = std::thread([this] { reaperMain(); });
    if (!opts_.manualDispatch)
        scheduler_ = std::thread([this] { schedulerMain(); });
}

TenantExecutor::~TenantExecutor()
{
    drain();
    {
        MutexLock lock(mu_);
        stop_ = true;
        sched_cv_.notify_all();
        reap_cv_.notify_all();
    }
    if (scheduler_.joinable())
        scheduler_.join();
    reaper_.join();
}

TenantExecutor::TenantState &
TenantExecutor::tenantLocked(uint32_t tid) const
{
    if (tid >= tenants_.size())
        fatal("TenantExecutor: unknown tenant id " +
              std::to_string(tid));
    TenantState &t = *tenants_[tid];
    if (t.dead)
        fatal("TenantExecutor: tenant '" + t.cfg.name +
              "' is unregistered");
    return t;
}

uint32_t
TenantExecutor::registerTenant(TenantConfig cfg)
{
    if (cfg.weight == 0)
        fatal("TenantExecutor: tenant weight must be >= 1");
    MutexLock lock(mu_);
    auto t = std::make_unique<TenantState>();
    t->cfg = std::move(cfg);
    tenants_.push_back(std::move(t));
    const uint32_t tid = static_cast<uint32_t>(tenants_.size() - 1);
    tenants_[tid]->viewSvc =
        std::make_unique<TenantView>(*this, tid);
    return tid;
}

void
TenantExecutor::unregisterTenant(uint32_t tid)
{
    drainTenant(tid);
    std::vector<uint16_t> toRelease;
    {
        MutexLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        for (auto &o : t.objs)
            if (!o.released) {
                toRelease.push_back(o.phys);
                o.released = true;
            }
        fleet_.liveObjects -= t.stats.liveObjects;
        fleet_.liveObjectBits -= t.stats.liveObjectBits;
        t.stats.liveObjects = 0;
        t.stats.liveObjectBits = 0;
        t.dead = true;
        t.deficit = 0;
        // Any Block-mode submitter still waiting must observe the
        // death and fail instead of hanging.
        t.admit_cv.notify_all();
    }
    // The group allocations go back to the devices; each release
    // syncs the executor, so this never races in-flight streams.
    for (uint16_t phys : toRelease)
        ex_->releaseObject(phys);
}

size_t
TenantExecutor::tenantCount() const
{
    MutexLock lock(mu_);
    size_t live = 0;
    for (const auto &t : tenants_)
        if (!t->dead)
            ++live;
    return live;
}

uint16_t
TenantExecutor::defineObject(uint32_t tid, size_t elements,
                             size_t bits)
{
    const size_t cost = elements * bits;
    {
        MutexLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        // Quota check BEFORE any effect: a rejected define leaves
        // both namespaces and budgets exactly as they were. Object
        // quotas always throw — TenantQuotaPolicy governs streams
        // only (waiting cannot free objects).
        if (t.cfg.maxObjects != 0 &&
            t.stats.liveObjects >= t.cfg.maxObjects)
            throw TenantQuotaError(
                "TenantExecutor: tenant '" + t.cfg.name +
                "' object budget exhausted (" +
                std::to_string(t.cfg.maxObjects) + " objects)");
        if (t.cfg.maxObjectBits != 0 &&
            t.stats.liveObjectBits + cost > t.cfg.maxObjectBits)
            throw TenantQuotaError(
                "TenantExecutor: tenant '" + t.cfg.name +
                "' bit budget exhausted (" +
                std::to_string(t.cfg.maxObjectBits) + " bits)");
        // Reserve under the lock; rolled back if the physical define
        // fails below.
        t.stats.liveObjects += 1;
        t.stats.liveObjectBits += cost;
        fleet_.liveObjects += 1;
        fleet_.liveObjectBits += cost;
    }

    uint16_t phys = kNoObject;
    try {
        phys = ex_->defineObject(elements, bits);
    } catch (...) {
        MutexLock lock(mu_);
        TenantState &t = *tenants_[tid];
        t.stats.liveObjects -= 1;
        t.stats.liveObjectBits -= cost;
        fleet_.liveObjects -= 1;
        fleet_.liveObjectBits -= cost;
        throw;
    }

    MutexLock lock(mu_);
    TenantState &t = *tenants_[tid];
    t.objs.push_back(TenantState::Obj{phys, elements, bits, false});
    return static_cast<uint16_t>(t.objs.size() - 1);
}

void
TenantExecutor::releaseObject(uint32_t tid, uint16_t vid)
{
    // Drain first so the release lands in the tenant's program
    // order: its queued streams may still reference the object.
    drainTenant(tid);
    uint16_t phys = kNoObject;
    {
        MutexLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        if (vid >= t.objs.size() || t.objs[vid].released)
            bbopError("TenantExecutor: tenant '" + t.cfg.name +
                      "': unknown object id d" +
                      std::to_string(vid));
        TenantState::Obj &o = t.objs[vid];
        o.released = true;
        phys = o.phys;
        const size_t cost = o.elements * o.bits;
        t.stats.liveObjects -= 1;
        t.stats.liveObjectBits -= cost;
        fleet_.liveObjects -= 1;
        fleet_.liveObjectBits -= cost;
    }
    ex_->releaseObject(phys);
}

void
TenantExecutor::writeObject(uint32_t tid, uint16_t vid,
                            const std::vector<uint64_t> &data)
{
    // Host accesses are per-tenant barriers (mirroring the physical
    // executor, whose write/read sync()): queued streams of this
    // tenant complete first, so the write lands in program order.
    drainTenant(tid);
    uint16_t phys = kNoObject;
    {
        MutexLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        if (vid >= t.objs.size() || t.objs[vid].released)
            bbopError("TenantExecutor: tenant '" + t.cfg.name +
                      "': unknown object id d" +
                      std::to_string(vid));
        phys = t.objs[vid].phys;
    }
    ex_->writeObject(phys, data);
}

std::vector<uint64_t>
TenantExecutor::readObject(uint32_t tid, uint16_t vid)
{
    drainTenant(tid);
    uint16_t phys = kNoObject;
    {
        MutexLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        if (vid >= t.objs.size() || t.objs[vid].released)
            bbopError("TenantExecutor: tenant '" + t.cfg.name +
                      "': unknown object id d" +
                      std::to_string(vid));
        phys = t.objs[vid].phys;
    }
    return ex_->readObject(phys);
}

BbopObjectShape
TenantExecutor::objectShape(uint32_t tid, uint16_t vid) const
{
    uint16_t phys = kNoObject;
    {
        MutexLock lock(mu_);
        const TenantState &t = tenantLocked(tid);
        if (vid >= t.objs.size() || t.objs[vid].released)
            bbopError("TenantExecutor: tenant '" + t.cfg.name +
                      "': unknown object id d" +
                      std::to_string(vid));
        phys = t.objs[vid].phys;
    }
    return ex_->objectShape(phys);
}

void
TenantExecutor::translateInstr(const TenantState &t,
                               BbopInstr &in) const
{
    auto tr = [&](uint16_t vid) -> uint16_t {
        if (vid >= t.objs.size() || t.objs[vid].released)
            bbopError("TenantExecutor: tenant '" + t.cfg.name +
                      "': unknown object id d" +
                      std::to_string(vid));
        return t.objs[vid].phys;
    };
    // Translate exactly the fields that name objects; immediate
    // fields (Init's 36-bit constant in src1/src2/sel, the shifts'
    // amount in sel) pass through untouched. After this, no field
    // the executor dereferences can carry an untranslated id — a
    // tenant physically cannot address another tenant's objects.
    switch (in.opcode) {
      case BbopOpcode::Trsp:
      case BbopOpcode::TrspInv:
      case BbopOpcode::Init:
        in.dst = tr(in.dst);
        return;
      case BbopOpcode::ShiftL:
      case BbopOpcode::ShiftR:
        in.dst = tr(in.dst);
        in.src1 = tr(in.src1);
        return;
      case BbopOpcode::Op:
        in.dst = tr(in.dst);
        in.src1 = tr(in.src1);
        // Unused operand slots hold kNoObject; a real operand id can
        // never collide with it (both tables cap below kNoObject).
        if (in.src2 != kNoObject)
            in.src2 = tr(in.src2);
        if (in.sel != kNoObject)
            in.sel = tr(in.sel);
        return;
    }
    bbopError("TenantExecutor: unknown opcode " +
              std::to_string(static_cast<int>(in.opcode)));
}

StreamIR
TenantExecutor::translateLocked(const TenantState &t,
                                const StreamIR &ir) const
{
    StreamIR out = ir;
    for (auto &n : out.nodes)
        translateInstr(t, n.instr);
    return out;
}

TenantStreamHandle
TenantExecutor::submit(uint32_t tid,
                       const std::vector<BbopInstr> &stream)
{
    return submit(tid, StreamIR::lift(stream));
}

TenantStreamHandle
TenantExecutor::submit(uint32_t tid, const StreamIR &ir)
{
    return submitTranslated(tid, ir);
}

TenantStreamHandle
TenantExecutor::submitTranslated(uint32_t tid, const StreamIR &ir)
{
    const auto entry = std::chrono::steady_clock::now();
    auto st = std::make_shared<detail::TenantStreamState>();
    st->t0 = entry;
    {
        UniqueLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        // Translation first: an unknown/foreign/released id throws
        // the typed BbopError HERE, synchronously, before the stream
        // can reach validation or any queue — side-effect-free.
        StreamIR translated = translateLocked(t, ir);

        // Stream quota, layered above the executor's device queues.
        if (t.cfg.maxPendingStreams != 0 &&
            t.inflight >= t.cfg.maxPendingStreams) {
            if (t.cfg.onFull == TenantQuotaPolicy::Shed) {
                ++t.stats.shed;
                ++fleet_.shed;
                throw TenantQuotaError(
                    "TenantExecutor: tenant '" + t.cfg.name +
                    "' stream quota exhausted (" +
                    std::to_string(t.cfg.maxPendingStreams) +
                    " streams in flight)");
            }
            // Block: wait for this tenant's own streams to complete.
            // Only mu_ is held, so dispatch and reaping continue.
            // Explicit loop (not the predicate overload) so the
            // thread-safety analysis sees the guarded reads in a
            // scope that holds mu_.
            while (!t.dead &&
                   t.inflight >= t.cfg.maxPendingStreams)
                t.admit_cv.wait(lock);
            if (t.dead)
                fatal("TenantExecutor: tenant '" + t.cfg.name +
                      "' unregistered while blocked on quota");
        }

        ++t.inflight;
        ++t.stats.submitted;
        ++fleet_.submitted;
        PendingStream p;
        p.cost = std::max<size_t>(1, translated.nodes.size());
        p.ir = std::move(translated);
        p.st = st;
        t.pending.push_back(std::move(p));
        sched_cv_.notify_one();
    }
    TenantStreamHandle h;
    h.state_ = std::move(st);
    return h;
}

std::vector<StreamHandle>
TenantExecutor::submitForHandles(uint32_t tid, const StreamIR &ir)
{
    TenantStreamHandle h = submitTranslated(tid, ir);
    // Under manualDispatch nothing else drives the scheduler, so a
    // view submit pumps inline (still strict DRR order — the pump
    // drains every tenant's due work, not just ours).
    if (opts_.manualDispatch)
        pump();
    auto &st = *h.state_;
    std::unique_lock<std::mutex> lock(st.mu);
    st.cv.wait(lock, [&] { return st.dispatched; });
    if (st.error)
        std::rethrow_exception(st.error);
    return st.inner;
}

bool
TenantExecutor::anyPendingLocked() const
{
    for (const auto &t : tenants_)
        if (!t->dead && !t->pending.empty())
            return true;
    return false;
}

size_t
TenantExecutor::totalInflightLocked() const
{
    size_t n = 0;
    for (const auto &t : tenants_)
        n += t->inflight;
    return n;
}

bool
TenantExecutor::pickLocked(uint32_t &tid, PendingStream &job)
{
    const size_t n = tenants_.size();
    if (n == 0)
        return false;
    // Deficit round robin: each visit to a backlogged tenant grants
    // weight × quantum instructions; the head stream dispatches once
    // the accumulated deficit covers its cost, so weights translate
    // to instruction shares while the deficit carry-over keeps
    // expensive streams from starving.
    for (;;) {
        if (!anyPendingLocked())
            return false;
        for (size_t i = 0; i < n; ++i) {
            TenantState &t = *tenants_[cursor_];
            if (t.dead || t.pending.empty()) {
                t.deficit = 0;
                granted_ = false;
                cursor_ = (cursor_ + 1) % n;
                continue;
            }
            if (!granted_) {
                t.deficit +=
                    t.cfg.weight * opts_.quantumInstructions;
                granted_ = true;
            }
            if (t.pending.front().cost <= t.deficit) {
                t.deficit -= t.pending.front().cost;
                tid = static_cast<uint32_t>(cursor_);
                job = std::move(t.pending.front());
                t.pending.pop_front();
                if (t.pending.empty()) {
                    // Standard DRR: an emptied queue forfeits its
                    // leftover deficit (no banking while idle).
                    t.deficit = 0;
                    granted_ = false;
                }
                if (opts_.recordDispatchOrder)
                    dispatch_order_.push_back(tid);
                return true;
            }
            // Not enough deficit yet: carry it, move on.
            granted_ = false;
            cursor_ = (cursor_ + 1) % n;
        }
    }
}

bool
TenantExecutor::dispatchNext()
{
    uint32_t tid = 0;
    PendingStream job;
    {
        MutexLock lock(mu_);
        if (!pickLocked(tid, job))
            return false;
    }

    // Physical submission OUTSIDE mu_: it may block on the
    // executor's own backpressure, and validation errors must only
    // fail THIS stream.
    std::vector<StreamHandle> inner;
    std::exception_ptr err;
    try {
        inner = ex_->submit(job.ir);
    } catch (...) {
        err = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lock(job.st->mu);
        job.st->dispatched = true;
        if (err) {
            job.st->error = err;
            job.st->done = true;
        } else {
            job.st->inner = std::move(inner);
        }
        job.st->cv.notify_all();
    }

    MutexLock lock(mu_);
    if (err) {
        // Rejected at validation: the executor enqueued nothing, so
        // the stream completes here — failed, isolated to its
        // tenant.
        TenantState &t = *tenants_[tid];
        ++t.stats.failed;
        ++fleet_.failed;
        --t.inflight;
        t.admit_cv.notify_all();
        drain_cv_.notify_all();
    } else {
        reap_.push_back(ReapJob{tid, std::move(job.st)});
        reap_cv_.notify_one();
    }
    return true;
}

void
TenantExecutor::pump()
{
    // One dispatcher at a time, so executor submission order is
    // exactly the DRR pick order. Never hold mu_ around this.
    MutexLock lock(dispatch_mu_);
    while (dispatchNext()) {
    }
}

void
TenantExecutor::drain()
{
    for (;;) {
        pump();
        UniqueLock lock(mu_);
        if (reap_.empty() && totalInflightLocked() == 0)
            return;
        if (anyPendingLocked())
            continue; // raced with a submitter: dispatch again
        while (!(reap_.empty() && totalInflightLocked() == 0) &&
               !anyPendingLocked())
            drain_cv_.wait(lock);
        if (reap_.empty() && totalInflightLocked() == 0)
            return;
    }
}

void
TenantExecutor::drainTenant(uint32_t tid)
{
    for (;;) {
        pump();
        UniqueLock lock(mu_);
        TenantState &t = tenantLocked(tid);
        if (t.inflight == 0)
            return;
        if (!t.pending.empty())
            continue;
        while (t.inflight != 0 && t.pending.empty())
            drain_cv_.wait(lock);
        if (t.inflight == 0)
            return;
    }
}

StreamService &
TenantExecutor::view(uint32_t tid)
{
    MutexLock lock(mu_);
    return *tenantLocked(tid).viewSvc;
}

TenantStats
TenantExecutor::stats(uint32_t tid) const
{
    MutexLock lock(mu_);
    if (tid >= tenants_.size())
        fatal("TenantExecutor: unknown tenant id " +
              std::to_string(tid));
    return tenants_[tid]->stats;
}

TenantStats
TenantExecutor::fleetStats() const
{
    MutexLock lock(mu_);
    return fleet_;
}

const LatencyHistogram &
TenantExecutor::latency(uint32_t tid) const
{
    MutexLock lock(mu_);
    if (tid >= tenants_.size())
        fatal("TenantExecutor: unknown tenant id " +
              std::to_string(tid));
    return tenants_[tid]->lat;
}

LatencyHistogram
TenantExecutor::fleetLatency() const
{
    MutexLock lock(mu_);
    LatencyHistogram out;
    for (const auto &t : tenants_)
        out.merge(t->lat);
    return out;
}

std::vector<uint32_t>
TenantExecutor::dispatchOrder() const
{
    MutexLock lock(mu_);
    return dispatch_order_;
}

void
TenantExecutor::schedulerMain()
{
    for (;;) {
        {
            UniqueLock lock(mu_);
            while (!stop_ && !anyPendingLocked())
                sched_cv_.wait(lock);
            if (stop_ && !anyPendingLocked())
                return;
        }
        pump();
    }
}

void
TenantExecutor::reaperMain()
{
    for (;;) {
        ReapJob job;
        {
            UniqueLock lock(mu_);
            while (!stop_ && reap_.empty())
                reap_cv_.wait(lock);
            if (reap_.empty())
                return; // stop requested and everything reaped
            job = std::move(reap_.front());
            reap_.pop_front();
        }

        // Wait for the physical handles OUTSIDE mu_. FIFO reaping is
        // safe: the executor completes streams in submission order,
        // so the front job finishes no later than any behind it.
        detail::TenantStreamState &st = *job.st;
        TenantStreamResult res;
        std::exception_ptr err;
        for (auto &h : st.inner) {
            try {
                res.segments.push_back(h.wait());
            } catch (...) {
                if (!err)
                    err = std::current_exception();
                // A failed segment still carries its recovery
                // accounting (attempts, faultsDetected): collect the
                // result non-throwingly so chargeback and the
                // per-tenant fault counters see the whole story.
                res.segments.push_back(h.waitResult());
            }
        }
        for (const StreamResult &r : res.segments) {
            res.compute = merge(res.compute, r.compute);
            res.transfer = merge(res.transfer, r.transfer);
            res.instructions += r.instructions;
            res.cachedInstructions += r.cachedInstructions;
            res.optimizedInstructions += r.optimizedInstructions;
        }
        res.e2eNs = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - st.t0)
                        .count();
        const double e2e = res.e2eNs;

        {
            std::lock_guard<std::mutex> lock(st.mu);
            if (err)
                st.error = err;
            st.result = std::move(res);
            st.done = true;
            st.cv.notify_all();
        }

        // Classify the failure by type so a noisy device is visible
        // per tenant: integrity faults and missed deadlines get their
        // own counters next to the generic failed/shed split.
        bool faulted = false;
        bool deadlined = false;
        if (err) {
            try {
                std::rethrow_exception(err);
            } catch (const StreamFaultError &) {
                faulted = true;
            } catch (const StreamDeadlineError &) {
                deadlined = true;
            } catch (...) {
            }
        }
        size_t faultsDetected = 0;
        bool retried = false;
        bool recovered = false;
        // The per-segment results were moved into the shared state
        // above; the reaper is their only writer, so this re-read is
        // race-free (waiters only copy under st.mu).
        for (const StreamResult &r : job.st->result.segments) {
            faultsDetected += r.faultsDetected;
            retried = retried || r.attempts > 1;
            recovered = recovered || r.recoveredOnDevice != -1;
        }

        MutexLock lock(mu_);
        TenantState &t = *tenants_[job.tid];
        const TenantStreamResult &done = job.st->result;
        if (err) {
            ++t.stats.failed;
            ++fleet_.failed;
            if (faulted) {
                ++t.stats.faultedStreams;
                ++fleet_.faultedStreams;
            }
            if (deadlined) {
                ++t.stats.deadlineExpiredStreams;
                ++fleet_.deadlineExpiredStreams;
            }
        } else {
            ++t.stats.executed;
            ++fleet_.executed;
            if (retried) {
                ++t.stats.retriedStreams;
                ++fleet_.retriedStreams;
            }
            if (recovered) {
                ++t.stats.recoveredStreams;
                ++fleet_.recoveredStreams;
            }
            t.lat.record(e2e);
        }
        t.stats.faultsDetected += faultsDetected;
        fleet_.faultsDetected += faultsDetected;
        // Chargeback accrues even on a failed stream: whatever
        // segments ran consumed real device work.
        t.stats.compute = merge(t.stats.compute, done.compute);
        t.stats.transfer = merge(t.stats.transfer, done.transfer);
        t.stats.instructions += done.instructions;
        t.stats.cachedInstructions += done.cachedInstructions;
        t.stats.optimizedInstructions += done.optimizedInstructions;
        fleet_.compute = merge(fleet_.compute, done.compute);
        fleet_.transfer = merge(fleet_.transfer, done.transfer);
        fleet_.instructions += done.instructions;
        fleet_.cachedInstructions += done.cachedInstructions;
        fleet_.optimizedInstructions += done.optimizedInstructions;
        --t.inflight;
        t.admit_cv.notify_all();
        drain_cv_.notify_all();
    }
}

TenantStreamResult
TenantStreamHandle::wait()
{
    if (!state_)
        fatal("TenantStreamHandle::wait: empty handle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error)
        std::rethrow_exception(state_->error);
    return state_->result;
}

bool
TenantStreamHandle::done() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

} // namespace simdram
