/**
 * @file
 * The Ambit baseline: compiling AND/OR/NOT circuits with Ambit's
 * fixed per-gate command recipes.
 *
 * Ambit (Seshadri et al., MICRO 2017) executes bulk bitwise AND, OR,
 * and NOT with fixed command sequences:
 *
 *   AND(a,b) -> r : AAP(a,T0)  AAP(b,T1)  AAP(C0,T2)  AAP(TRA,r)
 *   OR(a,b)  -> r : AAP(a,T0)  AAP(b,T1)  AAP(C1,T2)  AAP(TRA,r)
 *   NOT(a)   -> r : AAP(a,DCC0P)  AAP(DCC0N,r)
 *
 * Complex operations are realized gate by gate over these recipes,
 * with every intermediate value living in a data (scratch) row. This
 * mirrors how prior work built operations from Ambit's primitives and
 * is the baseline the SIMDRAM paper compares against: no cross-gate
 * operand reuse in the compute rows, and one TRA per 2-input gate
 * instead of one per 3-input majority.
 */

#ifndef SIMDRAM_AMBIT_AMBIT_SYNTH_H
#define SIMDRAM_AMBIT_AMBIT_SYNTH_H

#include "logic/circuit.h"
#include "uprog/allocator.h"
#include "uprog/program.h"

namespace simdram
{

/**
 * Compiles an AND/OR/NOT circuit into a μProgram using Ambit's fixed
 * per-gate recipes.
 *
 * @param aoig A circuit satisfying isAoig().
 * @param report Optional out-parameter.
 * @return The compiled μProgram.
 */
MicroProgram compileAmbit(const Circuit &aoig,
                          CompileReport *report = nullptr);

} // namespace simdram

#endif // SIMDRAM_AMBIT_AMBIT_SYNTH_H
