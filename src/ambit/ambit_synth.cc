#include "ambit/ambit_synth.h"

#include <unordered_map>

#include "common/error.h"

namespace simdram
{

namespace
{

/** Per-gate recipe emitter with scratch-row recycling. */
class AmbitCompiler
{
  public:
    explicit AmbitCompiler(const Circuit &aoig) : c_(aoig) {}

    MicroProgram run(CompileReport *report);

  private:
    /**
     * Emits the loads placing literal @p l into T row @p t.
     * Complemented literals pass through the dual-contact cell
     * (Ambit's NOT), costing one extra AAP.
     */
    void loadOperand(Lit l, SpecialRow t);

    /** @return The data row holding the (uncomplemented) node. */
    uint32_t rowOfNode(uint32_t node) const;

    uint32_t allocScratch();
    void freeDeadScratch(uint32_t node);

    const Circuit &c_;
    MicroProgram prog_;
    std::unordered_map<uint32_t, uint32_t> row_of_node_;
    std::vector<uint32_t> remaining_uses_;
    std::vector<uint32_t> free_scratch_;
    size_t scratch_high_water_ = 0;
    uint32_t scratch_base_ = 0;
};

void
AmbitCompiler::loadOperand(Lit l, SpecialRow t)
{
    const uint32_t node = Circuit::litNode(l);
    RowAddr src;
    if (node == 0) {
        // Constant literal: read the matching constant row directly.
        src = RowAddr::row(Circuit::litCompl(l) ? SpecialRow::C1
                                                : SpecialRow::C0);
        prog_.ops.push_back(MicroOp::aap(src, RowAddr::row(t)));
        return;
    }
    src = RowAddr::data(rowOfNode(node));
    if (Circuit::litCompl(l)) {
        // Ambit NOT: copy into the DCC, read back the negated port.
        prog_.ops.push_back(
            MicroOp::aap(src, RowAddr::row(SpecialRow::DCC0P)));
        prog_.ops.push_back(MicroOp::aap(
            RowAddr::row(SpecialRow::DCC0N), RowAddr::row(t)));
    } else {
        prog_.ops.push_back(MicroOp::aap(src, RowAddr::row(t)));
    }
}

uint32_t
AmbitCompiler::rowOfNode(uint32_t node) const
{
    auto it = row_of_node_.find(node);
    if (it == row_of_node_.end())
        panic("compileAmbit: node value not materialized");
    return it->second;
}

uint32_t
AmbitCompiler::allocScratch()
{
    if (!free_scratch_.empty()) {
        const uint32_t row = free_scratch_.back();
        free_scratch_.pop_back();
        return row;
    }
    const uint32_t row =
        scratch_base_ + static_cast<uint32_t>(scratch_high_water_);
    ++scratch_high_water_;
    return row;
}

void
AmbitCompiler::freeDeadScratch(uint32_t node)
{
    if (remaining_uses_[node] != 0)
        return;
    auto it = row_of_node_.find(node);
    if (it == row_of_node_.end() || it->second < scratch_base_)
        return; // inputs/outputs are not recycled
    free_scratch_.push_back(it->second);
    row_of_node_.erase(it);
}

MicroProgram
AmbitCompiler::run(CompileReport *report)
{
    if (!c_.isAoig())
        fatal("compileAmbit: circuit contains majority gates");

    // Virtual row layout mirrors compileMig's.
    uint32_t next_row = 0;
    for (const std::string &name : c_.inputBusNames()) {
        const auto *bus = c_.inputBus(name);
        prog_.inputRegions.push_back({name, bus->size()});
        for (Lit l : *bus) {
            if (Circuit::litCompl(l))
                fatal("compileAmbit: complemented input-bus literal");
            row_of_node_[Circuit::litNode(l)] = next_row++;
        }
    }
    std::vector<std::pair<uint32_t, Lit>> output_rows;
    for (const std::string &name : c_.outputBusNames()) {
        const auto *bus = c_.outputBus(name);
        prog_.outputRegions.push_back({name, bus->size()});
        for (Lit l : *bus)
            output_rows.emplace_back(next_row++, l);
    }
    scratch_base_ = next_row;

    const auto order = c_.topoOrder();
    remaining_uses_.assign(c_.nodeCount(), 0);
    for (uint32_t id : order)
        for (int i = 0; i < 2; ++i)
            ++remaining_uses_[Circuit::litNode(c_.node(id).fanin[i])];
    for (Lit o : c_.outputs())
        ++remaining_uses_[Circuit::litNode(o)];

    for (uint32_t id : order) {
        const Node &nd = c_.node(id);
        loadOperand(nd.fanin[0], SpecialRow::T0);
        loadOperand(nd.fanin[1], SpecialRow::T1);
        const SpecialRow ctrl = nd.kind == NodeKind::And2
                                    ? SpecialRow::C0
                                    : SpecialRow::C1;
        prog_.ops.push_back(MicroOp::aap(
            RowAddr::row(ctrl), RowAddr::row(SpecialRow::T2)));

        const uint32_t dst = allocScratch();
        prog_.ops.push_back(
            MicroOp::aap(RowAddr::row(TripleAddr::T0T1T2),
                         RowAddr::data(dst)));
        row_of_node_[id] = dst;

        for (int i = 0; i < 2; ++i) {
            const uint32_t n = Circuit::litNode(nd.fanin[i]);
            if (n != 0) {
                --remaining_uses_[n];
                freeDeadScratch(n);
            }
        }
    }

    // Copy node values into the output rows.
    for (const auto &[row, l] : output_rows) {
        const uint32_t node = Circuit::litNode(l);
        RowAddr src;
        if (node == 0) {
            src = RowAddr::row(Circuit::litCompl(l) ? SpecialRow::C1
                                                    : SpecialRow::C0);
            prog_.ops.push_back(
                MicroOp::aap(src, RowAddr::data(row)));
            continue;
        }
        src = RowAddr::data(rowOfNode(node));
        if (Circuit::litCompl(l)) {
            prog_.ops.push_back(MicroOp::aap(
                src, RowAddr::row(SpecialRow::DCC0P)));
            prog_.ops.push_back(
                MicroOp::aap(RowAddr::row(SpecialRow::DCC0N),
                             RowAddr::data(row)));
        } else {
            prog_.ops.push_back(MicroOp::aap(src, RowAddr::data(row)));
        }
    }

    prog_.scratchRows = scratch_high_water_;
    if (report) {
        report->migGates = order.size();
        report->aaps = prog_.aapCount();
        report->aps = prog_.apCount();
        report->scratchRows = scratch_high_water_;
    }
    return std::move(prog_);
}

} // namespace

MicroProgram
compileAmbit(const Circuit &aoig, CompileReport *report)
{
    AmbitCompiler c(aoig);
    return c.run(report);
}

} // namespace simdram
