/**
 * @file
 * Static analysis over the stream IR: a forward dataflow engine and a
 * rule-based lint framework.
 *
 * The runtime BbopValidator (src/isa/validate.h) polices the ISA
 * contract — widths, shapes, ids, layout state — but knows nothing
 * about dataflow: it happily accepts a program that reads an object
 * nothing ever wrote, transposes stale host data over a freshly
 * computed vertical image, or performs work the optimizer should have
 * elided. With four layers mechanically emitting bbop programs
 * (apps → StreamBuilder → optimizer passes → coalescer fusion), those
 * bugs deserve to be caught BEFORE a device executes anything.
 *
 * analyzeStream() walks a StreamIR in submission order, tracking a
 * per-object abstract state derived from effectsOf():
 *
 *  - definedness  — Unwritten / Partial / Full, per storage location
 *    (the vertical bit-serial image and the horizontal host image);
 *  - layout       — Unknown / Horizontal / Vertical, mirroring the
 *    executor's layout commit rules (full vertical writes establish
 *    the vertical layout);
 *  - const-ness   — whether both images provably hold one broadcast
 *    constant (the same facts the trsp/init hoisting pass computes);
 *  - last writer  — the node index that last wrote each location.
 *
 * Lint rules evaluate against that state and emit typed
 * StreamDiagnostics (rule id, severity, node index, object id,
 * human-readable message). Malformedness per se is NOT re-implemented
 * here: the analyzer runs the shared BbopValidator alongside its own
 * transfer function and wraps any BbopError as a Malformed
 * diagnostic, so the analyzer is stricter than the validator by
 * construction, never looser.
 *
 * runPassesValidated() is the translation-validation harness: it
 * analyzes the IR before and after each enabled optimizer pass and
 * checks the pass preserved the live-semantics facts — every
 * surviving read observes the same definedness/layout/const state,
 * no dead node is resurrected, and the per-object exit state is
 * unchanged. Failures name the offending pass.
 */

#ifndef SIMDRAM_ANALYSIS_STREAM_ANALYZER_H
#define SIMDRAM_ANALYSIS_STREAM_ANALYZER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/bbop.h"
#include "isa/validate.h"
#include "stream/passes.h"
#include "stream/stream_ir.h"

namespace simdram
{

/** The lint rules the analyzer ships with. */
enum class LintRule : uint8_t
{
    /** The shared BbopValidator rejected the instruction. */
    Malformed,
    /** Read of an object no instruction (or entry state) ever wrote. */
    ReadUnwritten,
    /** Use reads a location holding stale or absent data (e.g. an
     *  operation on a never-transposed object, or a bbop_trsp that
     *  would clobber a newer vertical image with old host data). */
    LayoutMismatch,
    /** Write overwritten before any read of it (end-of-program is
     *  live-out for both locations, exactly as in the DWE pass). */
    DeadWrite,
    /** trsp/trsp_inv whose images already coincide — the hoisting
     *  pass should have elided it. */
    RedundantTrsp,
    /** init re-broadcasting a constant already in place. */
    RedundantInit,
    /** Operation or shift whose destination aliases a source. */
    SelfAlias,
    /** Shift amount >= element width: the result is always zero.
     *  The ISA validator accepts this; the analyzer rejects it. */
    ShiftOverflow,
};

/** @return The stable kebab-case id of @p rule (e.g. "dead-write"). */
const char *lintRuleId(LintRule rule);

/** Severity of one diagnostic. Strict mode rejects on any Error. */
enum class LintSeverity : uint8_t
{
    Warning,
    Error,
};

/** One finding of the analyzer. */
struct StreamDiagnostic
{
    LintRule rule = LintRule::Malformed;
    LintSeverity severity = LintSeverity::Error;
    /** Index into StreamIR::nodes of the offending instruction. For
     *  DeadWrite this is the WRITER that is dead, not the overwriter. */
    size_t node = 0;
    /** Primary object the rule fired on. */
    uint16_t obj = kNoObject;
    /** Human-readable message, prefixed with the rule id. */
    std::string message;
};

/** Definedness of one object across its two storage locations. */
enum class Definedness : uint8_t
{
    Unwritten, ///< Neither location holds data.
    Partial,   ///< Exactly one location holds the current value.
    Full,      ///< Both locations hold the current value.
};

/** Abstract layout of one object, as the executor would commit it. */
enum class AbstractLayout : uint8_t
{
    Unknown,    ///< Nothing known (object never touched).
    Horizontal, ///< Host image only; vertical reads would be rejected.
    Vertical,   ///< Vertical image established by a full write.
};

/** Sentinel node index: "no instruction" (entry state). */
constexpr size_t kNoNode = static_cast<size_t>(-1);

/** Exit (or entry) abstract state of one object. */
struct AbstractObjectState
{
    Definedness def = Definedness::Unwritten;
    AbstractLayout layout = AbstractLayout::Unknown;
    /** Both images provably hold constVal everywhere. */
    bool isConst = false;
    uint64_t constVal = 0;
    /** Node that last wrote any location of the object. */
    size_t lastWriter = kNoNode;

    bool operator==(const AbstractObjectState &o) const = default;
};

/** State of ONE storage location, as a read observes it. */
enum class LocDefinedness : uint8_t
{
    Absent,  ///< Nothing ever wrote this location.
    Stale,   ///< The current value lives in the other location.
    Current, ///< This location holds the object's latest value.
};

/**
 * The abstract state one read observes, recorded per surviving node
 * for translation validation. Deliberately EXCLUDES lastWriter: a
 * pass may legitimately change which node produces a value (hoisting
 * removes a rewrite of identical data) without changing the value
 * semantics the read observes. The definedness fact is scoped to the
 * location the read touches, NOT the whole object, for the same
 * reason: dead-write elimination removing a dead write to the OTHER
 * location (e.g. a trsp_inv host copy nothing reads) changes the
 * object's overall definedness at this point without changing a bit
 * of what this read sees.
 */
struct ReadFact
{
    uint16_t obj = kNoObject;
    BbopLoc loc = BbopLoc::Vert;
    LocDefinedness def = LocDefinedness::Absent;
    AbstractLayout layout = AbstractLayout::Unknown;
    bool isConst = false;
    uint64_t constVal = 0;

    bool operator==(const ReadFact &o) const = default;
};

/** What the entry state assumes about objects the program reads. */
enum class EntryAssumption : uint8_t
{
    /**
     * Nothing is written before the program runs: the first touch of
     * every object must be a write (bbop_init, or an operation/shift
     * destination) or the analyzer reports ReadUnwritten. The right
     * mode for analyzing a program as a self-contained unit.
     */
    Unwritten,
    /**
     * Seed from a BbopObjectView the way the executor sees its table:
     * every object's host image exists (defineObject zero-fills it,
     * writeObject/ trsp_inv keep it live), and the vertical image is
     * current iff the view reports the object vertical. The right
     * mode at submit time, where prior streams and host writes have
     * already produced state.
     */
    FromView,
};

/** Tuning of one analyzeStream() run. */
struct AnalyzerOptions
{
    EntryAssumption entry = EntryAssumption::Unwritten;
};

/** Everything one analyzeStream() run produced. */
struct AnalysisResult
{
    /** All findings, in program order (DeadWrite is reported at the
     *  overwrite point but anchored to the dead writer's node). */
    std::vector<StreamDiagnostic> diagnostics;
    /**
     * Per node (indexed like StreamIR::nodes): the abstract state
     * each of its reads observed, in effectsOf() order. Dead nodes
     * get an empty vector — they were not analyzed.
     */
    std::vector<std::vector<ReadFact>> nodeReads;
    /** Per object id: abstract state after the whole program. */
    std::vector<AbstractObjectState> exitState;

    /** @return Number of Error-severity diagnostics. */
    size_t errorCount() const;

    /** @return Number of diagnostics of rule @p rule. */
    size_t count(LintRule rule) const;
};

/**
 * A trivial self-describing object table, for analyzing programs
 * standalone (tests, tooling) without an executor or dispatcher:
 *
 *   BbopObjectTable t;
 *   uint16_t a = t.define(64, 8);
 *   auto result = analyzeStream(ir, t);
 */
class BbopObjectTable : public BbopObjectView
{
  public:
    /** Registers an object and returns its id. */
    uint16_t define(size_t elements, size_t bits,
                    bool vertical = false)
    {
        shapes_.push_back({elements, bits, vertical});
        return static_cast<uint16_t>(shapes_.size() - 1);
    }

    size_t objectCount() const override { return shapes_.size(); }
    BbopObjectShape shape(uint16_t id) const override
    {
        return shapes_[id];
    }

  private:
    std::vector<BbopObjectShape> shapes_;
};

/**
 * Analyzes @p ir against @p view in submission order and returns the
 * diagnostics plus the dataflow facts translation validation needs.
 * Dead nodes are skipped (they will not execute). Never throws on a
 * malformed program — malformedness becomes Malformed diagnostics and
 * the analysis continues optimistically past the bad instruction.
 */
AnalysisResult analyzeStream(const StreamIR &ir,
                             const BbopObjectView &view,
                             const AnalyzerOptions &opts = {});

/** One translation-validation violation, attributed to its pass. */
struct PassValidationFailure
{
    /** Which pass broke the facts: "trsp-hoist", "dead-write-elim",
     *  or "fusion". */
    std::string pass;
    /** Node whose facts changed (kNoNode for exit-state mismatches). */
    size_t node = kNoNode;
    std::string message;
};

/** Outcome of a validated pass pipeline run. */
struct TranslationValidation
{
    /** Cumulative pass statistics (as runPasses would report). */
    PassStats stats;
    /** Empty iff every enabled pass preserved the analysis facts. */
    std::vector<PassValidationFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Runs the enabled optimizer passes over @p ir one at a time (same
 * fixed order as runPasses: hoist, DWE, fusion), analyzing the IR
 * before and after each and checking that the pass preserved the
 * live-semantics facts:
 *
 *  - every node alive after the pass observes exactly the ReadFacts
 *    it observed before (same definedness / layout / const state on
 *    every read);
 *  - no node dead before the pass is alive after it;
 *  - the per-object exit state (definedness, layout, const-ness —
 *    not last-writer) is unchanged.
 *
 * The resulting @p ir is identical to what runPasses(ir, opts) would
 * have produced; violations are returned, not thrown, so a harness
 * can report every failure with the pass that caused it.
 */
TranslationValidation
runPassesValidated(StreamIR &ir, const PassOptions &opts,
                   const BbopObjectView &view,
                   const AnalyzerOptions &aopts = {});

} // namespace simdram

#endif // SIMDRAM_ANALYSIS_STREAM_ANALYZER_H
